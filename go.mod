module locusroute

go 1.22

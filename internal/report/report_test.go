package report

import (
	"strings"
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

func routedArray(t *testing.T, seed int64) *costarray.CostArray {
	t.Helper()
	c := circuit.MustGenerate(circuit.GenParams{
		Name: "r", Channels: 6, Grids: 60, Wires: 50, MeanSpan: 10, Seed: seed,
	})
	_, arr := route.Sequential(c, route.Params{Iterations: 2})
	return arr
}

func TestAnalyzeBasics(t *testing.T) {
	arr := routedArray(t, 1)
	a := Analyze(arr, 5)
	if a.Height != arr.CircuitHeight() {
		t.Errorf("height %d != array height %d", a.Height, arr.CircuitHeight())
	}
	if len(a.Channels) != 6 {
		t.Fatalf("channels = %d", len(a.Channels))
	}
	// Sum of per-channel tracks equals circuit height.
	var sum int64
	for _, ch := range a.Channels {
		sum += int64(ch.Tracks)
		if ch.Tracks > 0 && arr.At(ch.PeakX, ch.Channel) != ch.Tracks {
			t.Errorf("channel %d peak mismatch", ch.Channel)
		}
		if ch.Utilisation < 0 || ch.Utilisation > 1 {
			t.Errorf("channel %d utilisation %f out of range", ch.Channel, ch.Utilisation)
		}
	}
	if sum != a.Height {
		t.Errorf("channel tracks sum %d != height %d", sum, a.Height)
	}
	if len(a.HotSpots) != 5 {
		t.Errorf("hot spots = %d, want 5", len(a.HotSpots))
	}
	for i := 1; i < len(a.HotSpots); i++ {
		if a.HotSpots[i].Wires > a.HotSpots[i-1].Wires {
			t.Errorf("hot spots must be sorted by congestion")
		}
	}
	if a.OccupiedCells <= 0 || a.OccupiedCells > a.TotalCells {
		t.Errorf("occupied = %d of %d", a.OccupiedCells, a.TotalCells)
	}
}

func TestAnalyzeEmptyArray(t *testing.T) {
	arr := costarray.New(geom.Grid{Channels: 3, Grids: 10})
	a := Analyze(arr, 3)
	if a.Height != 0 || a.OccupiedCells != 0 || len(a.HotSpots) != 0 {
		t.Errorf("empty array analysis wrong: %+v", a)
	}
	if !strings.Contains(a.String(), "circuit height 0") {
		t.Errorf("render: %s", a.String())
	}
}

func TestAnalyzeRender(t *testing.T) {
	out := Analyze(routedArray(t, 2), 3).String()
	for _, want := range []string{"per-channel routing tracks", "hottest cells", "Utilisation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	a := routedArray(t, 3)
	d, err := Compare(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d.CellsChanged != 0 || d.ChannelsChanged != 0 || d.HeightA != d.HeightB {
		t.Errorf("identical arrays differ: %+v", d)
	}
}

func TestCompareDifferent(t *testing.T) {
	a := routedArray(t, 3)
	b := a.Clone()
	b.Add(5, 2, 7)
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellsChanged != 1 {
		t.Errorf("CellsChanged = %d, want 1", d.CellsChanged)
	}
	if !strings.Contains(d.String(), "1 cells differ") {
		t.Errorf("render: %s", d.String())
	}
}

func TestCompareGridMismatch(t *testing.T) {
	a := costarray.New(geom.Grid{Channels: 3, Grids: 10})
	b := costarray.New(geom.Grid{Channels: 4, Grids: 10})
	if _, err := Compare(a, b); err == nil {
		t.Errorf("grid mismatch must fail")
	}
}

// Package report analyses routing results: per-channel track usage (the
// components of the circuit height metric), congestion hot spots, and
// comparisons between two routings of the same circuit. The router and
// the simulators produce numbers; this package explains them.
package report

import (
	"fmt"
	"sort"
	"strings"

	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
)

// ChannelUsage describes one routing channel of a finished routing.
type ChannelUsage struct {
	Channel int
	// Tracks is the max number of wires through any grid of the channel
	// — the channel's contribution to circuit height.
	Tracks int32
	// PeakX is the grid column where the maximum occurs (first one).
	PeakX int
	// Mean is the average occupancy across the channel.
	Mean float64
	// Utilisation is Mean / Tracks (how evenly the channel is filled).
	Utilisation float64
}

// Analysis summarises a routed cost array.
type Analysis struct {
	Grid     geom.Grid
	Height   int64
	Channels []ChannelUsage
	// HotSpots are the most congested cells, most congested first.
	HotSpots []HotSpot
	// OccupiedCells / TotalCells give the routing density.
	OccupiedCells, TotalCells int
}

// HotSpot is one highly congested cell.
type HotSpot struct {
	At    geom.Point
	Wires int32
}

// Analyze builds the full analysis of a routed cost array; topN bounds
// the hot spot list.
func Analyze(a *costarray.CostArray, topN int) *Analysis {
	if topN <= 0 {
		topN = 10
	}
	g := a.Grid()
	out := &Analysis{Grid: g, Height: a.CircuitHeight(), TotalCells: g.Cells()}

	var spots []HotSpot
	for y := 0; y < g.Channels; y++ {
		row := a.Row(y)
		usage := ChannelUsage{Channel: y}
		var sum int64
		for x, v := range row {
			if v > usage.Tracks {
				usage.Tracks = v
				usage.PeakX = x
			}
			if v != 0 {
				out.OccupiedCells++
				spots = append(spots, HotSpot{At: geom.Pt(x, y), Wires: v})
			}
			sum += int64(v)
		}
		usage.Mean = float64(sum) / float64(g.Grids)
		if usage.Tracks > 0 {
			usage.Utilisation = usage.Mean / float64(usage.Tracks)
		}
		out.Channels = append(out.Channels, usage)
	}

	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Wires != spots[j].Wires {
			return spots[i].Wires > spots[j].Wires
		}
		if spots[i].At.Y != spots[j].At.Y {
			return spots[i].At.Y < spots[j].At.Y
		}
		return spots[i].At.X < spots[j].At.X
	})
	if len(spots) > topN {
		spots = spots[:topN]
	}
	out.HotSpots = spots
	return out
}

// String renders the analysis as text tables.
func (a *Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit height %d across %d channels; %d of %d cells occupied (%.1f%%)\n\n",
		a.Height, len(a.Channels), a.OccupiedCells, a.TotalCells,
		100*float64(a.OccupiedCells)/float64(a.TotalCells))

	t := metrics.NewTable("per-channel routing tracks",
		"Channel", "Tracks", "Peak at", "Mean", "Utilisation")
	for _, ch := range a.Channels {
		t.Add(fmt.Sprintf("%d", ch.Channel), fmt.Sprintf("%d", ch.Tracks),
			fmt.Sprintf("x=%d", ch.PeakX), fmt.Sprintf("%.2f", ch.Mean),
			fmt.Sprintf("%.0f%%", ch.Utilisation*100))
	}
	sb.WriteString(t.String())

	if len(a.HotSpots) > 0 {
		sb.WriteByte('\n')
		h := metrics.NewTable("hottest cells", "Cell", "Wires")
		for _, s := range a.HotSpots {
			h.Add(s.At.String(), fmt.Sprintf("%d", s.Wires))
		}
		sb.WriteString(h.String())
	}
	return sb.String()
}

// Delta compares two routings of the same circuit (e.g. two update
// strategies, or sequential vs parallel).
type Delta struct {
	HeightA, HeightB int64
	// ChannelsChanged counts channels whose track count differs.
	ChannelsChanged int
	// CellsChanged counts cells with different occupancy.
	CellsChanged int
}

// Compare builds the difference report between two routed arrays. It
// returns an error if the grids differ.
func Compare(a, b *costarray.CostArray) (Delta, error) {
	if a.Grid() != b.Grid() {
		return Delta{}, fmt.Errorf("report: grids differ: %+v vs %+v", a.Grid(), b.Grid())
	}
	d := Delta{HeightA: a.CircuitHeight(), HeightB: b.CircuitHeight()}
	g := a.Grid()
	for y := 0; y < g.Channels; y++ {
		if a.MaxInRow(y) != b.MaxInRow(y) {
			d.ChannelsChanged++
		}
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			if ra[x] != rb[x] {
				d.CellsChanged++
			}
		}
	}
	return d, nil
}

// String renders the comparison.
func (d Delta) String() string {
	return fmt.Sprintf("height %d vs %d (%+d); %d channels and %d cells differ",
		d.HeightA, d.HeightB, d.HeightB-d.HeightA, d.ChannelsChanged, d.CellsChanged)
}

package route

import (
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
)

// Scratch is the reusable per-worker state of the routing kernel. One
// Scratch belongs to exactly one thread of control — a sequential run,
// one shared memory goroutine or logical process, or one message passing
// processor — for the whole run, so the kernel can evaluate and
// materialise routes without per-wire allocation:
//
//   - visited is an epoch-stamped grid that replaces the per-wire
//     map[Point]bool: bumping epoch "clears" it in O(1), and a cell is a
//     duplicate within the current wire iff its stamp equals epoch.
//   - cells accumulates the winning path of the wire being routed; the
//     kernel costs candidates by walking their coordinates against the
//     CostView and materialises cells only for the winner.
//   - pins caches each wire's sorted pin list across rip-up iterations,
//     keyed by wire ID and validated against the wire pointer.
//
// Scratch is not safe for concurrent use. The CostView stays the seam
// between the kernel and its callers: tracing, atomics, and message
// passing views all observe exactly the reads and writes the sequential
// reference kernel performs, in the same order.
type Scratch struct {
	grid    geom.Grid
	visited []uint64
	epoch   uint64
	cells   []geom.Point
	coster  costSink
	pins    map[int]pinEntry
}

// pinEntry is one cached sorted pin list. The wire pointer validates the
// entry: a different *Wire with the same ID (e.g. a synthetic per-segment
// wire) recomputes rather than reusing stale pins.
type pinEntry struct {
	w    *circuit.Wire
	pins []geom.Point
}

// NewScratch returns a Scratch sized for grid g.
func NewScratch(g geom.Grid) *Scratch {
	s := &Scratch{}
	s.ensure(g)
	return s
}

// ensure (re)sizes the visited grid when the scratch first sees a grid or
// the grid changes (tests reuse one scratch across differently sized
// arrays; production runs hit this once).
func (s *Scratch) ensure(g geom.Grid) {
	if s.grid == g && s.visited != nil {
		return
	}
	s.grid = g
	s.visited = make([]uint64, g.Cells())
	s.epoch = 0
	s.cells = s.cells[:0]
}

// SortedPins returns w's pins sorted by (X, Y), cached for the lifetime
// of the scratch. Callers must not mutate the returned slice, and must
// not mutate w.Pins while the scratch is in use.
func (s *Scratch) SortedPins(w *circuit.Wire) []geom.Point {
	if e, ok := s.pins[w.ID]; ok && e.w == w {
		return e.pins
	}
	pins := sortedPins(w)
	if s.pins == nil {
		s.pins = make(map[int]pinEntry)
	}
	s.pins[w.ID] = pinEntry{w: w, pins: pins}
	return pins
}

// RouteWire evaluates the candidate routes for w against view and returns
// the best one, exactly as the package-level RouteWire does, reusing the
// scratch's buffers. It does not modify the view; call Commit to place
// the wire.
func (s *Scratch) RouteWire(view CostView, w *circuit.Wire, params Params) Eval {
	params = params.withDefaults()
	s.ensure(view.Grid())
	return s.routePins(view, s.SortedPins(w), params)
}

// RoutePair routes the two-pin segment between a and b — the
// strict-ownership scheme's unit of work. The pins are put in canonical
// (X, Y) order first, matching RouteWire on a two-pin wire.
func (s *Scratch) RoutePair(view CostView, a, b geom.Point, params Params) Eval {
	params = params.withDefaults()
	s.ensure(view.Grid())
	if b.X < a.X || (b.X == a.X && b.Y < a.Y) {
		a, b = b, a
	}
	s.beginWire()
	var ev Eval
	ev.Cost, ev.CellsExamined = s.routeSegment(view, a, b, params)
	ev.Path = s.takePath()
	return ev
}

// routePins decomposes the sorted pin list into two-pin segments and
// routes each, deduplicating the per-wire path via the epoch grid.
func (s *Scratch) routePins(view CostView, pins []geom.Point, params Params) Eval {
	s.beginWire()
	var ev Eval
	for i := 0; i+1 < len(pins); i++ {
		cost, examined := s.routeSegment(view, pins[i], pins[i+1], params)
		ev.Cost += cost
		ev.CellsExamined += examined
	}
	ev.Path = s.takePath()
	return ev
}

// beginWire starts a new wire: a fresh epoch makes every visited stamp
// stale without touching the grid, and the cell accumulator rewinds.
func (s *Scratch) beginWire() {
	s.epoch++
	s.cells = s.cells[:0]
}

// takePath copies the accumulated winning cells into a caller-owned Path
// (callers retain paths across iterations for rip-up, so the scratch
// buffer cannot be handed out). This is the kernel's only allocation.
func (s *Scratch) takePath() Path {
	if len(s.cells) == 0 {
		return Path{}
	}
	out := make([]geom.Point, len(s.cells))
	copy(out, s.cells)
	return Path{Cells: out}
}

// visit implements cellSink for winner materialisation: append the cell
// to the wire's path unless this wire already holds it.
func (s *Scratch) visit(x, y int) {
	idx := y*s.grid.Grids + x
	if s.visited[idx] == s.epoch {
		return
	}
	s.visited[idx] = s.epoch
	s.cells = append(s.cells, geom.Pt(x, y))
}

// routeSegment enumerates the low-bend candidate routes between p and q —
// the HVH family over sampled jog columns, then the VHV family over the
// extended pin band — costing each by walking its coordinates against the
// view, and materialises cells only for the cheapest (ties broken by
// enumeration order). Both passes share one walker, so the reads the
// costing pass performs and the cells the winner contributes are the same
// sequence by construction.
func (s *Scratch) routeSegment(view CostView, p, q geom.Point, params Params) (cost int64, examined int) {
	grid := view.Grid()
	s.coster.view = view
	best := int64(-1)
	bestVHV := false
	bestM := 0

	consider := func(vhv bool, m int) {
		s.coster.sum, s.coster.n = 0, 0
		if vhv {
			walkVHV(p, q, m, &s.coster)
		} else {
			walkHVH(p, q, m, &s.coster)
		}
		examined += s.coster.n
		if best < 0 || s.coster.sum < best {
			best, bestVHV, bestM = s.coster.sum, vhv, m
		}
	}

	// HVH family: xm samples the span [p.X, q.X], at most
	// MaxHVHCandidates of them, always including both endpoints.
	x0, x1 := p.X, q.X
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	span := x1 - x0
	stride := 1
	if span+1 > params.MaxHVHCandidates {
		stride = (span + params.MaxHVHCandidates) / params.MaxHVHCandidates
	}
	for xm := x0; ; xm += stride {
		if xm > x1 {
			break
		}
		consider(false, xm)
		if stride > 1 && xm < x1 && xm+stride > x1 {
			xm = x1 - stride // make sure the far end is always sampled
		}
	}

	// VHV family: ym ranges over the pin band extended by
	// VHVDetourChannels in each direction, clamped to the grid.
	y0, y1 := p.Y, q.Y
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	y0 -= params.VHVDetourChannels
	y1 += params.VHVDetourChannels
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= grid.Channels {
		y1 = grid.Channels - 1
	}
	for ym := y0; ym <= y1; ym++ {
		consider(true, ym)
	}

	// Materialise only the winner; this pass reads nothing from the view,
	// so traced executions observe candidate evaluation reads only.
	if bestVHV {
		walkVHV(p, q, bestM, s)
	} else {
		walkHVH(p, q, bestM, s)
	}
	s.coster.view = nil
	return best, examined
}

// cellSink receives the cells of one candidate route in path order.
type cellSink interface {
	visit(x, y int)
}

// costSink sums view costs over a candidate walk.
type costSink struct {
	view CostView
	sum  int64
	n    int
}

func (k *costSink) visit(x, y int) {
	k.sum += int64(k.view.Cost(x, y))
	k.n++
}

// runWalker emits the cells of a candidate's horizontal and vertical runs
// with adjacent duplicates (the corners where runs meet) skipped — the
// same sequence the materialised hvhPath/vhvPath lists hold.
type runWalker struct {
	sink         cellSink
	lastX, lastY int
	started      bool
}

func (w *runWalker) emit(x, y int) {
	if w.started && x == w.lastX && y == w.lastY {
		return
	}
	w.started = true
	w.lastX, w.lastY = x, y
	w.sink.visit(x, y)
}

func (w *runWalker) horizontal(y, x0, x1 int) {
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0; ; x += step {
		w.emit(x, y)
		if x == x1 {
			break
		}
	}
}

func (w *runWalker) vertical(x, y0, y1 int) {
	step := 1
	if y1 < y0 {
		step = -1
	}
	for y := y0; ; y += step {
		w.emit(x, y)
		if y == y1 {
			break
		}
	}
}

// walkHVH visits the cells of the horizontal-vertical-horizontal route
// through jog column xm, in path order.
func walkHVH(p, q geom.Point, xm int, sink cellSink) {
	w := runWalker{sink: sink}
	w.horizontal(p.Y, p.X, xm)
	w.vertical(xm, p.Y, q.Y)
	w.horizontal(q.Y, xm, q.X)
}

// walkVHV visits the cells of the vertical-horizontal-vertical route
// through crossing channel ym, in path order.
func walkVHV(p, q geom.Point, ym int, sink cellSink) {
	w := runWalker{sink: sink}
	w.vertical(p.X, p.Y, ym)
	w.horizontal(ym, p.X, q.X)
	w.vertical(q.X, ym, q.Y)
}

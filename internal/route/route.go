// Package route implements the LocusRoute routing algorithm (Section 3 of
// the paper): each wire is routed along the path with the minimal sum of
// cost array entries, choosing among the low-bend routes between its pins;
// several rip-up-and-reroute iterations improve the final quality.
//
// The router core is written against the CostView interface so the same
// algorithm drives three executions: the sequential reference router, each
// message passing node's local view, and the traced shared memory version
// (where every read and write is recorded for the coherence simulator).
package route

import (
	"sort"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
)

// CostView is the router's window onto a cost array. Implementations
// decide where reads and writes actually land (a private copy, a shared
// array, a traced array).
type CostView interface {
	// Grid returns the array dimensions.
	Grid() geom.Grid
	// Cost returns the current cost at (x, y).
	Cost(x, y int) int32
	// AddCost adds d (+1 route, -1 rip-up) to the cell at (x, y).
	AddCost(x, y int, d int32)
}

// Params tunes the router.
type Params struct {
	// Iterations is the number of routing iterations; each wire is routed
	// once per iteration, with rip-up before rerouting (>=1). The paper
	// notes several iterations improve final quality.
	Iterations int
	// MaxHVHCandidates caps the number of horizontal-vertical-horizontal
	// candidate routes evaluated per two-pin segment. Long wires have
	// hundreds of possible jog columns; LocusRoute samples the locus. A
	// value <= 0 means DefaultHVHCandidates.
	MaxHVHCandidates int
	// VHVDetourChannels is how many channels beyond the pin band the
	// vertical-horizontal-vertical family may detour into (0 keeps the
	// horizontal segment strictly between the pin channels).
	VHVDetourChannels int
}

// DefaultHVHCandidates bounds the HVH locus sampling.
const DefaultHVHCandidates = 24

// DefaultParams are the parameters used by all paper experiments.
func DefaultParams() Params {
	return Params{Iterations: 3, MaxHVHCandidates: DefaultHVHCandidates, VHVDetourChannels: 1}
}

// Normalized returns p with the defaults every routing driver applies
// (Iterations floored at 1, MaxHVHCandidates defaulted). Exported so
// alternative drivers (internal/part) reproduce Sequential's parameter
// handling exactly.
func (p Params) Normalized() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.Iterations <= 0 {
		p.Iterations = 1
	}
	if p.MaxHVHCandidates <= 0 {
		p.MaxHVHCandidates = DefaultHVHCandidates
	}
	return p
}

// Path is the set of grid cells a routed wire occupies, deduplicated
// within the wire (a wire crossing a cell twice still counts once in the
// cost array).
type Path struct {
	Cells []geom.Point
}

// Len returns the number of cells in the path.
func (p Path) Len() int { return len(p.Cells) }

// Bounds returns the bounding box of the path's cells.
func (p Path) Bounds() geom.Rect {
	var bb geom.Rect
	for _, c := range p.Cells {
		bb = bb.AddPoint(c)
	}
	return bb
}

// Eval holds the result of evaluating a wire against a cost view.
type Eval struct {
	Path Path
	// Cost is the sum of cost array entries along the chosen path at the
	// time it was chosen; the occupancy factor is the sum of these over
	// all wires (Section 3).
	Cost int64
	// CellsExamined counts cost reads made during candidate evaluation,
	// the work unit of the compute-time model.
	CellsExamined int
}

// RouteWire evaluates the candidate routes for w against view and returns
// the best one. It does not modify the view; call Commit to place the
// wire. Multi-pin wires are decomposed into two-pin segments between
// consecutive pins sorted by X, as LocusRoute does; the per-wire path is
// the deduplicated union of segment paths.
//
// This standalone form builds a fresh Scratch per call and is meant for
// tests and one-off evaluations; hot paths hold a Scratch per worker and
// call its RouteWire method instead.
func RouteWire(view CostView, w *circuit.Wire, params Params) Eval {
	var s Scratch
	return s.RouteWire(view, w, params)
}

// PathCost returns the sum of cost entries along the (deduplicated) path
// as seen through view — the occupancy contribution of a wire routed at
// this moment (Section 3 of the paper). Callers measure it against the
// authoritative array of their paradigm just before committing.
func PathCost(view CostView, path Path) int64 {
	var c int64
	for _, cell := range path.Cells {
		c += int64(view.Cost(cell.X, cell.Y))
	}
	return c
}

// Commit adds one wire along path in view.
func Commit(view CostView, path Path) {
	for _, c := range path.Cells {
		view.AddCost(c.X, c.Y, 1)
	}
}

// RipUp removes one wire along path in view (decrementing the cost array
// locations in its path, as the paper describes for rerouting).
func RipUp(view CostView, path Path) {
	for _, c := range path.Cells {
		view.AddCost(c.X, c.Y, -1)
	}
}

// sortedPins returns the wire's pins sorted by (X, Y) without mutating
// the wire. Already-sorted pin lists (the common case for generated
// circuits) are returned as-is, without copying; callers must treat the
// result as read-only.
func sortedPins(w *circuit.Wire) []geom.Point {
	sorted := true
	for i := 1; i < len(w.Pins); i++ {
		if pinLess(w.Pins[i], w.Pins[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return w.Pins
	}
	pins := make([]geom.Point, len(w.Pins))
	copy(pins, w.Pins)
	sort.Slice(pins, func(i, j int) bool { return pinLess(pins[i], pins[j]) })
	return pins
}

// pinLess is the pin ordering of the segment decomposition: by X, ties by
// Y.
func pinLess(a, b geom.Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// hvhPath builds the cell list for the horizontal-vertical-horizontal
// route through jog column xm, deduplicating the two corner cells. It is
// the reference materialisation of walkHVH, kept for tests that compare
// the kernel against explicitly built candidate paths.
func hvhPath(p, q geom.Point, xm int) []geom.Point {
	cells := make([]geom.Point, 0, absInt(p.X-q.X)+absInt(p.Y-q.Y)+2)
	cells = appendHorizontal(cells, p.Y, p.X, xm)
	cells = appendVertical(cells, xm, p.Y, q.Y)
	cells = appendHorizontal(cells, q.Y, xm, q.X)
	return dedupeAdjacent(cells)
}

// vhvPath builds the cell list for the vertical-horizontal-vertical route
// through crossing channel ym (reference materialisation of walkVHV).
func vhvPath(p, q geom.Point, ym int) []geom.Point {
	cells := make([]geom.Point, 0, absInt(p.X-q.X)+absInt(p.Y-q.Y)+2)
	cells = appendVertical(cells, p.X, p.Y, ym)
	cells = appendHorizontal(cells, ym, p.X, q.X)
	cells = appendVertical(cells, q.X, ym, q.Y)
	return dedupeAdjacent(cells)
}

// appendHorizontal appends the cells of the horizontal run at channel y
// from x0 to x1 inclusive (either direction).
func appendHorizontal(cells []geom.Point, y, x0, x1 int) []geom.Point {
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0; ; x += step {
		cells = append(cells, geom.Pt(x, y))
		if x == x1 {
			break
		}
	}
	return cells
}

// appendVertical appends the cells of the vertical run at column x from y0
// to y1 inclusive.
func appendVertical(cells []geom.Point, x, y0, y1 int) []geom.Point {
	step := 1
	if y1 < y0 {
		step = -1
	}
	for y := y0; ; y += step {
		cells = append(cells, geom.Pt(x, y))
		if y == y1 {
			break
		}
	}
	return cells
}

// dedupeAdjacent removes consecutive duplicate cells (the corners where
// segments meet). Candidate paths never revisit a non-adjacent cell.
func dedupeAdjacent(cells []geom.Point) []geom.Point {
	out := cells[:0]
	for i, c := range cells {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

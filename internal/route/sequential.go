package route

import (
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
)

// ArrayView adapts a plain *costarray.CostArray to CostView. It is the
// view used by the sequential reference router and by tests.
type ArrayView struct {
	A *costarray.CostArray
}

// Grid implements CostView.
func (v ArrayView) Grid() geom.Grid { return v.A.Grid() }

// Cost implements CostView.
func (v ArrayView) Cost(x, y int) int32 { return v.A.At(x, y) }

// AddCost implements CostView.
func (v ArrayView) AddCost(x, y int, d int32) { v.A.Add(x, y, d) }

// Result summarises a complete routing run.
type Result struct {
	// CircuitHeight is the total number of routing tracks required (sum
	// over channels of the max wires through any grid). Lower is better.
	CircuitHeight int64
	// Occupancy is the occupancy factor: the sum over all wires of the
	// path cost at the time the wire was (last) routed. Lower is better.
	Occupancy int64
	// CellsExamined is the total evaluation work across all iterations.
	CellsExamined int64
	// WiresRouted counts wire routings performed (wires x iterations).
	WiresRouted int
}

// Sequential routes the whole circuit on a single consistent cost array —
// the uniprocessor baseline both parallel versions are compared against.
// It returns the final cost array alongside the result so callers can
// inspect or render the routing.
func Sequential(c *circuit.Circuit, params Params) (Result, *costarray.CostArray) {
	params = params.withDefaults()
	arr := costarray.New(c.Grid)
	view := ArrayView{A: arr}
	scratch := NewScratch(c.Grid)
	paths := make([]Path, len(c.Wires))
	lastCost := make([]int64, len(c.Wires))
	var res Result

	for iter := 0; iter < params.Iterations; iter++ {
		for i := range c.Wires {
			w := &c.Wires[i]
			if iter > 0 {
				RipUp(view, paths[i])
			}
			ev := scratch.RouteWire(view, w, params)
			cost := PathCost(ArrayView{A: arr}, ev.Path)
			Commit(view, ev.Path)
			paths[i] = ev.Path
			lastCost[i] = cost
			res.CellsExamined += int64(ev.CellsExamined)
			res.WiresRouted++
		}
	}

	res.CircuitHeight = arr.CircuitHeight()
	for _, c := range lastCost {
		res.Occupancy += c
	}
	return res, arr
}

package route

import (
	"math/rand"
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
)

func evalsEqual(a, b Eval) bool {
	if a.Cost != b.Cost || a.CellsExamined != b.CellsExamined || a.Path.Len() != b.Path.Len() {
		return false
	}
	for i := range a.Path.Cells {
		if a.Path.Cells[i] != b.Path.Cells[i] {
			return false
		}
	}
	return true
}

// A reused Scratch must produce exactly the evaluation a fresh one does,
// wire after wire, on a congested array — cost, work count, and the cell
// sequence of the path.
func TestScratchReuseMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	v := emptyView(8, 120)
	for i := 0; i < 400; i++ {
		v.A.Add(rng.Intn(120), rng.Intn(8), int32(rng.Intn(5)))
	}
	s := NewScratch(v.Grid())
	for trial := 0; trial < 200; trial++ {
		nPins := 2 + rng.Intn(3)
		pins := make([]geom.Point, nPins)
		for i := range pins {
			pins[i] = geom.Pt(rng.Intn(120), rng.Intn(8))
		}
		w := &circuit.Wire{ID: trial, Pins: pins}
		got := s.RouteWire(v, w, DefaultParams())
		want := RouteWire(v, w, DefaultParams())
		if !evalsEqual(got, want) {
			t.Fatalf("trial %d: scratch eval %+v != standalone %+v", trial, got, want)
		}
		// Routing must also mutate the array the same way either path
		// would; commit some wires so later trials see congestion.
		if trial%3 == 0 {
			Commit(v, got.Path)
		}
	}
}

// The sorted-pin cache is keyed by wire ID but validated by pointer: a
// different wire with a recycled ID must not reuse stale pins.
func TestScratchPinCacheInvalidation(t *testing.T) {
	v := emptyView(6, 40)
	s := NewScratch(v.Grid())

	w1 := &circuit.Wire{ID: 7, Pins: []geom.Point{geom.Pt(30, 2), geom.Pt(5, 1)}}
	ev1 := s.RouteWire(v, w1, DefaultParams())
	if !pathSet(ev1.Path)[geom.Pt(30, 2)] || !pathSet(ev1.Path)[geom.Pt(5, 1)] {
		t.Fatalf("first wire path misses its pins: %v", ev1.Path.Cells)
	}

	// Same ID, different wire object and different pins.
	w2 := &circuit.Wire{ID: 7, Pins: []geom.Point{geom.Pt(10, 5), geom.Pt(20, 0)}}
	ev2 := s.RouteWire(v, w2, DefaultParams())
	set := pathSet(ev2.Path)
	if !set[geom.Pt(10, 5)] || !set[geom.Pt(20, 0)] {
		t.Fatalf("recycled-ID wire routed with stale pins: %v", ev2.Path.Cells)
	}
	if set[geom.Pt(5, 1)] {
		t.Fatalf("recycled-ID wire path contains the old wire's pin")
	}

	// Re-routing the first wire again (same pointer) must hit the cache
	// and still be correct.
	ev1b := s.RouteWire(v, w1, DefaultParams())
	if !evalsEqual(ev1, ev1b) {
		t.Fatalf("cached re-route differs: %+v vs %+v", ev1, ev1b)
	}
}

// RoutePair must match RouteWire on the equivalent two-pin wire, in both
// argument orders (the kernel canonicalises pin order itself).
func TestRoutePairMatchesTwoPinWire(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := emptyView(6, 60)
	for i := 0; i < 150; i++ {
		v.A.Add(rng.Intn(60), rng.Intn(6), int32(rng.Intn(4)))
	}
	s := NewScratch(v.Grid())
	for trial := 0; trial < 100; trial++ {
		a := geom.Pt(rng.Intn(60), rng.Intn(6))
		b := geom.Pt(rng.Intn(60), rng.Intn(6))
		want := RouteWire(v, &circuit.Wire{ID: trial, Pins: []geom.Point{a, b}}, DefaultParams())
		for _, pair := range [][2]geom.Point{{a, b}, {b, a}} {
			got := s.RoutePair(v, pair[0], pair[1], DefaultParams())
			if !evalsEqual(got, want) {
				t.Fatalf("trial %d: RoutePair(%v,%v) %+v != RouteWire %+v",
					trial, pair[0], pair[1], got, want)
			}
		}
	}
}

// One scratch must survive a change of grid size between calls (tests
// reuse scratches across arrays; production never does).
func TestScratchGridResize(t *testing.T) {
	small := emptyView(4, 20)
	big := emptyView(8, 200)
	s := NewScratch(small.Grid())

	w := &circuit.Wire{ID: 1, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(15, 3)}}
	if got, want := s.RouteWire(small, w, DefaultParams()), RouteWire(small, w, DefaultParams()); !evalsEqual(got, want) {
		t.Fatalf("small grid: %+v != %+v", got, want)
	}
	w2 := &circuit.Wire{ID: 2, Pins: []geom.Point{geom.Pt(5, 6), geom.Pt(180, 0)}}
	if got, want := s.RouteWire(big, w2, DefaultParams()), RouteWire(big, w2, DefaultParams()); !evalsEqual(got, want) {
		t.Fatalf("big grid: %+v != %+v", got, want)
	}
	if got, want := s.RouteWire(small, w, DefaultParams()), RouteWire(small, w, DefaultParams()); !evalsEqual(got, want) {
		t.Fatalf("back to small grid: %+v != %+v", got, want)
	}
}

// The walkers must enumerate exactly the cells of the materialised
// reference paths, in order — the invariant that keeps the cost-only
// pass and the winner materialisation (and thus every trace) identical.
func TestWalkersMatchReferencePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		p := geom.Pt(rng.Intn(50), rng.Intn(8))
		q := geom.Pt(rng.Intn(50), rng.Intn(8))
		xm := min(p.X, q.X) + rng.Intn(absInt(p.X-q.X)+1)
		ym := rng.Intn(8)

		check := func(name string, ref []geom.Point, walk func(sink cellSink)) {
			var got []geom.Point
			walk(collectSink{cells: &got})
			if len(got) != len(ref) {
				t.Fatalf("trial %d %s: %d cells, reference %d (%v vs %v)",
					trial, name, len(got), len(ref), got, ref)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d %s: cell %d = %v, reference %v", trial, name, i, got[i], ref[i])
				}
			}
		}
		check("hvh", hvhPath(p, q, xm), func(sink cellSink) { walkHVH(p, q, xm, sink) })
		check("vhv", vhvPath(p, q, ym), func(sink cellSink) { walkVHV(p, q, ym, sink) })
	}
}

// collectSink records walked cells for the walker equivalence test.
type collectSink struct{ cells *[]geom.Point }

func (c collectSink) visit(x, y int) { *c.cells = append(*c.cells, geom.Pt(x, y)) }

package route

import (
	"testing"

	"locusroute/internal/circuit"
)

// benchCircuit is a mid-size synthetic circuit for kernel benchmarks
// (independent of the experiments package to avoid an import cycle).
func benchCircuit(b *testing.B) *circuit.Circuit {
	b.Helper()
	return circuit.MustGenerate(circuit.GenParams{
		Name: "bench", Channels: 10, Grids: 341, Wires: 420, MeanSpan: 25, Seed: 7,
	})
}

// BenchmarkRouteWire measures the allocation-free kernel as the backends
// use it: one Scratch reused across wires and iterations.
func BenchmarkRouteWire(b *testing.B) {
	c := benchCircuit(b)
	_, arr := Sequential(c, Params{Iterations: 1})
	view := ArrayView{A: arr}
	scratch := NewScratch(c.Grid)
	params := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.RouteWire(view, &c.Wires[i%len(c.Wires)], params)
	}
}

// BenchmarkRouteWireStandalone measures the compatibility wrapper, which
// builds a fresh Scratch per call — the shape tests use, not the hot
// path.
func BenchmarkRouteWireStandalone(b *testing.B) {
	c := benchCircuit(b)
	_, arr := Sequential(c, Params{Iterations: 1})
	view := ArrayView{A: arr}
	params := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouteWire(view, &c.Wires[i%len(c.Wires)], params)
	}
}

// BenchmarkSequentialFullRun measures a complete three-iteration
// sequential routing run — every wire routed, ripped up, and rerouted —
// with allocation tracking.
func BenchmarkSequentialFullRun(b *testing.B) {
	c := benchCircuit(b)
	params := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(c, params)
	}
}

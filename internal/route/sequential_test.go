package route

import (
	"testing"

	"locusroute/internal/circuit"
)

func TestSequentialRoutesEverything(t *testing.T) {
	c := circuit.MustGenerate(circuit.GenParams{
		Name: "t", Channels: 6, Grids: 60, Wires: 40, MeanSpan: 8, Seed: 3,
	})
	res, arr := Sequential(c, Params{Iterations: 2})
	if res.WiresRouted != 80 {
		t.Errorf("WiresRouted = %d, want 80", res.WiresRouted)
	}
	if res.CircuitHeight <= 0 {
		t.Errorf("CircuitHeight = %d, must be positive", res.CircuitHeight)
	}
	if arr.CircuitHeight() != res.CircuitHeight {
		t.Errorf("result height %d != array height %d", res.CircuitHeight, arr.CircuitHeight())
	}
	// Total wire-cells in the array equal the sum of final path lengths;
	// in particular the array must be non-negative everywhere.
	for _, v := range arr.Cells() {
		if v < 0 {
			t.Fatalf("negative cost cell after sequential routing")
		}
	}
}

func TestSequentialIterationsImproveOrHold(t *testing.T) {
	c := circuit.MustGenerate(circuit.BnrELike(5))
	one, _ := Sequential(c, Params{Iterations: 1})
	three, _ := Sequential(c, Params{Iterations: 3})
	// The paper: performing several iterations improves the final
	// solution quality. Allow equality (already converged) but not
	// significant regression.
	if float64(three.CircuitHeight) > float64(one.CircuitHeight)*1.02 {
		t.Errorf("3 iterations height %d much worse than 1 iteration %d",
			three.CircuitHeight, one.CircuitHeight)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	c := circuit.MustGenerate(circuit.MDCLike(2))
	a, _ := Sequential(c, DefaultParams())
	b, _ := Sequential(c, DefaultParams())
	if a != b {
		t.Errorf("sequential routing must be deterministic: %+v vs %+v", a, b)
	}
}

func TestSequentialOccupancyPositive(t *testing.T) {
	c := circuit.MustGenerate(circuit.BnrELike(5))
	res, _ := Sequential(c, DefaultParams())
	if res.Occupancy <= 0 {
		t.Errorf("occupancy = %d on a real circuit, must be positive", res.Occupancy)
	}
	if res.CellsExamined <= 0 {
		t.Errorf("cells examined must be positive")
	}
}

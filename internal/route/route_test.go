package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
)

func emptyView(channels, grids int) ArrayView {
	return ArrayView{A: costarray.New(geom.Grid{Channels: channels, Grids: grids})}
}

func wire(pins ...geom.Point) *circuit.Wire {
	return &circuit.Wire{ID: 0, Pins: pins}
}

func pathSet(p Path) map[geom.Point]bool {
	m := make(map[geom.Point]bool, len(p.Cells))
	for _, c := range p.Cells {
		m[c] = true
	}
	return m
}

func TestRouteStraightHorizontal(t *testing.T) {
	v := emptyView(4, 20)
	ev := RouteWire(v, wire(geom.Pt(2, 1), geom.Pt(8, 1)), Params{Iterations: 1})
	if ev.Cost != 0 {
		t.Errorf("cost on empty array = %d, want 0", ev.Cost)
	}
	// Straight route: 7 cells from (2,1) to (8,1).
	if ev.Path.Len() != 7 {
		t.Errorf("path len = %d, want 7; cells=%v", ev.Path.Len(), ev.Path.Cells)
	}
	set := pathSet(ev.Path)
	for x := 2; x <= 8; x++ {
		if !set[geom.Pt(x, 1)] {
			t.Errorf("missing cell (%d,1)", x)
		}
	}
}

func TestRouteLShaped(t *testing.T) {
	v := emptyView(6, 20)
	ev := RouteWire(v, wire(geom.Pt(2, 1), geom.Pt(10, 4)), Params{Iterations: 1})
	// Any minimal route has dx+dy+1 = 8+3+1 = 12 cells.
	if ev.Path.Len() != 12 {
		t.Errorf("path len = %d, want 12", ev.Path.Len())
	}
	set := pathSet(ev.Path)
	if !set[geom.Pt(2, 1)] || !set[geom.Pt(10, 4)] {
		t.Errorf("path must contain both pins")
	}
}

func TestRouteAvoidsCongestion(t *testing.T) {
	v := emptyView(3, 10)
	// Block the straight channel between the pins with high cost.
	for x := 1; x <= 8; x++ {
		v.A.Set(x, 1, 100)
	}
	ev := RouteWire(v, wire(geom.Pt(0, 1), geom.Pt(9, 1)), Params{Iterations: 1, VHVDetourChannels: 2})
	// The router should detour through channel 0 or 2 rather than pay
	// 8*100 in channel 1.
	if ev.Cost >= 800 {
		t.Errorf("router did not avoid congestion: cost=%d path=%v", ev.Cost, ev.Path.Cells)
	}
	set := pathSet(ev.Path)
	detour := false
	for c := range set {
		if c.Y != 1 {
			detour = true
		}
	}
	if !detour {
		t.Errorf("expected a detour out of channel 1")
	}
}

func TestRoutePrefersCheaperJog(t *testing.T) {
	v := emptyView(4, 12)
	// Two pins in different channels; make one jog column expensive.
	for y := 0; y < 4; y++ {
		v.A.Set(5, y, 50)
	}
	ev := RouteWire(v, wire(geom.Pt(2, 0), geom.Pt(9, 3)), Params{Iterations: 1})
	for _, c := range ev.Path.Cells {
		if c.X == 5 && c.Y > 0 && c.Y < 3 {
			t.Errorf("path jogs through expensive column 5: %v", ev.Path.Cells)
		}
	}
}

func TestCommitRipUpInverse(t *testing.T) {
	v := emptyView(4, 20)
	ev := RouteWire(v, wire(geom.Pt(1, 0), geom.Pt(15, 3)), Params{Iterations: 1})
	Commit(v, ev.Path)
	if v.A.NonZeroCells() != ev.Path.Len() {
		t.Errorf("commit marked %d cells, path has %d", v.A.NonZeroCells(), ev.Path.Len())
	}
	RipUp(v, ev.Path)
	if v.A.NonZeroCells() != 0 {
		t.Errorf("ripup must restore zero array, %d cells remain", v.A.NonZeroCells())
	}
}

func TestMultiPinDecomposition(t *testing.T) {
	v := emptyView(4, 30)
	w := wire(geom.Pt(20, 2), geom.Pt(5, 1), geom.Pt(12, 3))
	ev := RouteWire(v, w, Params{Iterations: 1})
	set := pathSet(ev.Path)
	for _, p := range w.Pins {
		if !set[p] {
			t.Errorf("multi-pin path must contain pin %v", p)
		}
	}
	// Dedup: no cell appears twice.
	if len(set) != ev.Path.Len() {
		t.Errorf("path has duplicate cells: %d unique of %d", len(set), ev.Path.Len())
	}
}

func TestRouteDeterministic(t *testing.T) {
	mk := func() Eval {
		v := emptyView(6, 40)
		v.A.Set(10, 2, 3)
		v.A.Set(11, 2, 3)
		return RouteWire(v, wire(geom.Pt(2, 1), geom.Pt(30, 4), geom.Pt(17, 0)), DefaultParams())
	}
	a, b := mk(), mk()
	if a.Cost != b.Cost || a.Path.Len() != b.Path.Len() {
		t.Fatalf("routing must be deterministic")
	}
	for i := range a.Path.Cells {
		if a.Path.Cells[i] != b.Path.Cells[i] {
			t.Fatalf("path cell %d differs", i)
		}
	}
}

func TestRouteCostMatchesArraySum(t *testing.T) {
	// The reported Cost must equal the sum of array values over the path
	// (the wire's own contribution is not in the array at choice time).
	v := emptyView(5, 25)
	for x := 0; x < 25; x++ {
		for y := 0; y < 5; y++ {
			v.A.Set(x, y, int32((x+y)%4))
		}
	}
	ev := RouteWire(v, wire(geom.Pt(3, 1), geom.Pt(20, 3)), Params{Iterations: 1})
	var want int64
	for _, c := range ev.Path.Cells {
		want += int64(v.A.At(c.X, c.Y))
	}
	if ev.Cost != want {
		t.Errorf("Cost = %d, path sum = %d", ev.Cost, want)
	}
}

func TestHVHStrideSamplesEndpoints(t *testing.T) {
	// Long segment with a cheap jog only at the far end; the stride
	// sampling must still find routes through the endpoints.
	v := emptyView(3, 200)
	ev := RouteWire(v, wire(geom.Pt(0, 0), geom.Pt(199, 2)), Params{Iterations: 1, MaxHVHCandidates: 8})
	if ev.Path.Len() == 0 {
		t.Fatalf("no path found")
	}
	set := pathSet(ev.Path)
	if !set[geom.Pt(0, 0)] || !set[geom.Pt(199, 2)] {
		t.Errorf("path must contain both pins")
	}
}

func TestCellsExaminedPositive(t *testing.T) {
	v := emptyView(4, 50)
	ev := RouteWire(v, wire(geom.Pt(0, 0), geom.Pt(49, 3)), DefaultParams())
	if ev.CellsExamined < ev.Path.Len() {
		t.Errorf("CellsExamined = %d, must be at least the path length %d",
			ev.CellsExamined, ev.Path.Len())
	}
}

func TestPathBounds(t *testing.T) {
	v := emptyView(4, 20)
	ev := RouteWire(v, wire(geom.Pt(3, 1), geom.Pt(10, 2)), Params{Iterations: 1, VHVDetourChannels: 0})
	bb := ev.Path.Bounds()
	if !bb.ContainsRect(geom.R(3, 1, 10, 2)) {
		t.Errorf("path bounds %v must contain the pin box", bb)
	}
}

// Property: for a two-pin wire, the chosen path's consecutive cells are
// grid-adjacent (a connected route) and the path never costs more than
// the two baseline single-bend routes.
func TestRoutePathProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 150; trial++ {
		v := emptyView(6, 48)
		for i := 0; i < 60; i++ {
			v.A.Add(rng.Intn(48), rng.Intn(6), int32(rng.Intn(4)))
		}
		p1 := geom.Pt(rng.Intn(48), rng.Intn(6))
		p2 := geom.Pt(rng.Intn(48), rng.Intn(6))
		if p1 == p2 {
			continue
		}
		ev := RouteWire(v, wire(p1, p2), DefaultParams())
		// Connectivity.
		for i := 1; i < len(ev.Path.Cells); i++ {
			if ev.Path.Cells[i-1].Manhattan(ev.Path.Cells[i]) != 1 {
				t.Fatalf("trial %d: disconnected path at %d: %v -> %v",
					trial, i, ev.Path.Cells[i-1], ev.Path.Cells[i])
			}
		}
		// Endpoints present.
		set := pathSet(ev.Path)
		if !set[p1] || !set[p2] {
			t.Fatalf("trial %d: endpoints missing", trial)
		}
		// Never worse than the two L-shaped baselines.
		for _, baseline := range [][]geom.Point{
			hvhPath(p1, p2, p1.X), // V then H ... via corner at p1.X
			hvhPath(p1, p2, p2.X), // H then V ... via corner at p2.X
		} {
			var cost int64
			for _, c := range baseline {
				cost += int64(v.A.At(c.X, c.Y))
			}
			if ev.Cost > cost {
				t.Fatalf("trial %d: chosen cost %d worse than baseline %d", trial, ev.Cost, cost)
			}
		}
	}
}

// Property: rip-up exactly undoes commit on arbitrary arrays.
func TestCommitRipUpProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := emptyView(5, 30)
		before := v.A.Clone()
		p1 := geom.Pt(rng.Intn(30), rng.Intn(5))
		p2 := geom.Pt(rng.Intn(30), rng.Intn(5))
		p3 := geom.Pt(rng.Intn(30), rng.Intn(5))
		ev := RouteWire(v, wire(p1, p2, p3), DefaultParams())
		Commit(v, ev.Path)
		RipUp(v, ev.Path)
		return v.A.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

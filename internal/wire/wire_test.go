package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"locusroute/internal/geom"
)

// sampleRequests covers the request field space: flags, empty and
// populated strings, zero and boundary pins.
func sampleRequests() []*Request {
	return []*Request{
		{Circuit: "bnrE", WireID: 7, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}},
		{Circuit: "svc", WireID: 0, Pins: []geom.Point{geom.Pt(0, 0)}, Commit: true},
		{Circuit: "c", WireID: maxID, Pins: []geom.Point{geom.Pt(maxCoord, maxCoord)},
			DeadlineMillis: 250, Client: "loadgen-3"},
		{Circuit: "", WireID: 1, Pins: nil, DeadlineMillis: 1 << 40},
		{Circuit: "bnrE", WireID: 7, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)},
			Traced: true, TraceID: "client-abc123"},
		{Circuit: "svc", WireID: 3, Pins: []geom.Point{geom.Pt(1, 1)}, Commit: true,
			Traced: true},
	}
}

// sampleResponses covers both response shapes: OK with every evaluation
// field and flag combination, and each error status with and without a
// retry hint.
func sampleResponses() []*Response {
	return []*Response{
		{Status: StatusOK, Shard: 3, WireID: 7, Cost: 412, PathCells: 38, CellsExamined: 512,
			BatchSize: 4, BatchIndex: 2, Committed: true, WaitMicros: 1200},
		{Status: StatusOK, Cached: true},
		{Status: StatusOK, Committed: true, Cached: true, Cost: 1 << 40},
		{Status: StatusShed, RetryAfterSeconds: 2, Message: "at capacity"},
		{Status: StatusRateLimited, RetryAfterSeconds: 1, Message: "client over limit"},
		{Status: StatusBreakerOpen, RetryAfterSeconds: 5, Message: "breaker open"},
		{Status: StatusDeadline, Message: "deadline exceeded"},
		{Status: StatusDraining},
		{Status: StatusUnknownCircuit, Message: "no circuit \"x\""},
		{Status: StatusBadRequest, Message: "pin outside grid"},
		{Status: StatusInfeasible, Message: "deadline below admission floor"},
		{Status: StatusOK, Shard: 1, WireID: 3, Cost: 99, PathCells: 12, CellsExamined: 80,
			BatchSize: 1, WaitMicros: 45, Traced: true, RequestID: "r0000002a",
			Stages: []StagePair{{Stage: 0, Ns: 12_400}, {Stage: 3, Ns: 901_000}, {Stage: 5, Ns: 310}}},
		{Status: StatusOK, Cached: true, Traced: true, RequestID: "client-abc123"},
		{Status: StatusShed, RetryAfterSeconds: 2, Message: "at capacity",
			Traced: true, RequestID: "r00000001", Stages: []StagePair{{Stage: 0, Ns: 8_000}}},
	}
}

// TestRequestRoundTrip checks encode->decode is the identity over the
// request samples.
func TestRequestRoundTrip(t *testing.T) {
	for _, r := range sampleRequests() {
		buf, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatalf("AppendRequest(%+v): %v", r, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", r, got)
		}
	}
}

// TestResponseRoundTrip checks encode->decode is the identity over the
// response samples, including that error fields don't leak into OK
// frames and vice versa.
func TestResponseRoundTrip(t *testing.T) {
	for _, r := range sampleResponses() {
		buf, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("AppendResponse(%+v): %v", r, err)
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", r, got)
		}
	}
}

// TestFrameRoundTrip checks the length-prefixed framing through a byte
// stream, including back-to-back frames on one reader.
func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	reqs := sampleRequests()
	for _, r := range reqs {
		var err error
		stream, err = AppendRequestFrame(stream, r)
		if err != nil {
			t.Fatalf("AppendRequestFrame: %v", err)
		}
	}
	rd := bytes.NewReader(stream)
	var buf []byte
	for i, want := range reqs {
		var err error
		buf, err = ReadFrame(rd, buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d mismatch:\n in: %+v\nout: %+v", i, want, got)
		}
	}
	if _, err := ReadFrame(rd, buf); err != io.EOF {
		t.Errorf("ReadFrame at clean end = %v, want io.EOF", err)
	}
}

// TestReadFrameErrors checks the framing layer's failure modes: a
// truncated payload is ErrUnexpectedEOF, an oversized prefix is rejected
// before allocation.
func TestReadFrameErrors(t *testing.T) {
	frame, err := AppendRequestFrame(nil, sampleRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:2]), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated prefix: err = %v, want io.ErrUnexpectedEOF", err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:]), nil); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Errorf("oversized prefix: err = %v, want MaxFrame rejection", err)
	}
}

// TestDecodeRejections walks the decoder's rejection rules: wrong
// version, wrong kind, unknown flags and statuses, non-minimal varints,
// and trailing bytes all fail loudly.
func TestDecodeRejections(t *testing.T) {
	req, err := AppendRequest(nil, sampleRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := AppendResponse(nil, sampleResponses()[0])
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(buf []byte, at int, b byte) []byte {
		out := append([]byte(nil), buf...)
		out[at] = b
		return out
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad version", mutate(req, 0, 9), "version"},
		{"response as request", resp, "frame kind"},
		{"unknown request flags", mutate(req, 2, 0x80), "flags"},
		{"trailing bytes", append(append([]byte(nil), req...), 0), "trailing"},
		// wireID 7 is a 1-byte varint at offset 3; 0x87 0x00 is the same
		// value non-minimally.
		{"non-minimal varint", append(append(append([]byte(nil), req[:3]...), 0x87, 0x00), req[4:]...), "non-minimal"},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.buf); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	if _, err := DecodeResponse(mutate(resp, 2, byte(statusMax)+1)); err == nil || !strings.Contains(err.Error(), "status") {
		t.Errorf("unknown status: err = %v, want status rejection", err)
	}
	if _, err := DecodeResponse(req); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Errorf("request as response: err = %v, want frame kind rejection", err)
	}
}

// TestEncodeRejections checks the encoder refuses out-of-domain fields
// rather than truncating them.
func TestEncodeRejections(t *testing.T) {
	reqCases := []*Request{
		{Circuit: strings.Repeat("x", MaxName+1)},
		{Client: strings.Repeat("x", MaxName+1)},
		{WireID: -1},
		{WireID: maxID + 1},
		{DeadlineMillis: -1},
		{Pins: make([]geom.Point, MaxPins+1)},
		{Pins: []geom.Point{geom.Pt(maxCoord+1, 0)}},
		{Pins: []geom.Point{geom.Pt(0, -1)}},
		{Traced: true, TraceID: strings.Repeat("x", MaxName+1)},
		{TraceID: "set-but-untraced"},
	}
	for _, r := range reqCases {
		if _, err := AppendRequest(nil, r); err == nil {
			t.Errorf("AppendRequest accepted out-of-domain %+v", r)
		}
	}
	respCases := []*Response{
		{Status: statusMax + 1},
		{Status: StatusOK, Cost: -1},
		{Status: StatusShed, RetryAfterSeconds: -1},
		{Status: StatusShed, Message: strings.Repeat("x", MaxMessage+1)},
		{Status: StatusOK, RequestID: "leak-on-untraced"},
		{Status: StatusOK, Stages: []StagePair{{Stage: 0, Ns: 1}}},
		{Status: StatusOK, Traced: true, RequestID: strings.Repeat("x", MaxName+1)},
		{Status: StatusOK, Traced: true, Stages: make([]StagePair, MaxStages+1)},
		{Status: StatusOK, Traced: true, Stages: []StagePair{{Stage: 0, Ns: -1}}},
	}
	for _, r := range respCases {
		if _, err := AppendResponse(nil, r); err == nil {
			t.Errorf("AppendResponse accepted out-of-domain %+v", r)
		}
	}
}

// TestUntracedFrameGolden pins the exact bytes of an untraced request —
// the layout peers from before the traced frame pair speak — so adding
// kinds 3/4 can never perturb kind-1 encoding, and pins that a traced
// request is the same layout under kind 3 plus the trailing trace id.
func TestUntracedFrameGolden(t *testing.T) {
	plain := &Request{Circuit: "bnrE", WireID: 7, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}}
	buf, err := AppendRequest(nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		1, 1, 0, // version, kind, flags
		7, 0, // wire id, deadline
		4, 'b', 'n', 'r', 'E', // circuit
		0,                       // client
		2,                       // pin count
		2, 0, 1, 0, 40, 0, 4, 0, // pins, u16 LE
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("untraced request bytes drifted:\ngot:  %x\nwant: %x", buf, want)
	}

	traced := *plain
	traced.Traced = true
	traced.TraceID = "t1"
	tbuf, err := AppendRequest(nil, &traced)
	if err != nil {
		t.Fatal(err)
	}
	twant := append(append([]byte{1, 3}, want[2:]...), 2, 't', '1')
	if !bytes.Equal(tbuf, twant) {
		t.Fatalf("traced request bytes drifted:\ngot:  %x\nwant: %x", tbuf, twant)
	}
}

// TestStatusHTTPEquivalence pins the status-to-HTTP map against the JSON
// layer's vocabulary, so the two transports can never drift silently.
func TestStatusHTTPEquivalence(t *testing.T) {
	want := map[Status]int{
		StatusOK:             200,
		StatusBadRequest:     400,
		StatusUnknownCircuit: 404,
		StatusShed:           429,
		StatusRateLimited:    429,
		StatusDraining:       503,
		StatusBreakerOpen:    503,
		StatusDeadline:       504,
		StatusInfeasible:     504,
		StatusConflict:       409,
		StatusStoreFull:      507,
	}
	for s, code := range want {
		if got := s.HTTPStatus(); got != code {
			t.Errorf("%v.HTTPStatus() = %d, want %d", s, got, code)
		}
	}
}

package wire

import (
	"bufio"
	"fmt"
	"net"
)

// Conn is a client connection speaking the binary protocol: one
// request/response exchange at a time, with both directions' buffers
// reused across calls so the steady state is allocation-free. It is not
// safe for concurrent use; pool Conns instead, as cmd/locusload does.
type Conn struct {
	nc   net.Conn
	br   *bufio.Reader
	wbuf []byte
	rbuf []byte
}

// Dial connects to a locusd binary listener.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReader(nc)}
}

// Do sends one request and reads its response. A transport or framing
// error leaves the connection unusable; protocol-level failures arrive
// as a Response with a non-OK Status, not an error.
func (c *Conn) Do(req *Request) (*Response, error) {
	buf, err := AppendRequestFrame(c.wbuf[:0], req)
	if err != nil {
		return nil, err
	}
	c.wbuf = buf
	if _, err := c.nc.Write(buf); err != nil {
		return nil, fmt.Errorf("wire: write request: %w", err)
	}
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, fmt.Errorf("wire: read response: %w", err)
	}
	c.rbuf = payload
	return DecodeResponse(payload)
}

// DoUpload sends one circuit upload and reads its admin response.
func (c *Conn) DoUpload(u *Upload) (*AdminResponse, error) {
	return c.admin(func(dst []byte) ([]byte, error) { return AppendUploadFrame(dst, u) })
}

// DoMutate sends one mutation batch and reads its admin response.
func (c *Conn) DoMutate(m *Mutate) (*AdminResponse, error) {
	return c.admin(func(dst []byte) ([]byte, error) { return AppendMutateFrame(dst, m) })
}

// DoEvict sends one eviction and reads its admin response.
func (c *Conn) DoEvict(e *Evict) (*AdminResponse, error) {
	return c.admin(func(dst []byte) ([]byte, error) { return AppendEvictFrame(dst, e) })
}

// admin runs one lifecycle exchange: frame, write, read, decode.
func (c *Conn) admin(frame func([]byte) ([]byte, error)) (*AdminResponse, error) {
	buf, err := frame(c.wbuf[:0])
	if err != nil {
		return nil, err
	}
	c.wbuf = buf
	if _, err := c.nc.Write(buf); err != nil {
		return nil, fmt.Errorf("wire: write request: %w", err)
	}
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, fmt.Errorf("wire: read response: %w", err)
	}
	c.rbuf = payload
	return DecodeAdminResponse(payload)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

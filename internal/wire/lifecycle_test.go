package wire

import (
	"reflect"
	"testing"

	"locusroute/internal/geom"
)

// sampleUploads covers the upload field space: empty and populated wire
// lists, boundary coordinates, zero grids (the codec's job is the byte
// contract; semantic validity is the store's).
func sampleUploads() []*Upload {
	return []*Upload{
		{Name: "dyn", Channels: 6, Grids: 80, Wires: []UploadWire{
			{ID: 0, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}},
			{ID: 7, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(79, 5), geom.Pt(12, 2)}},
		}, Client: "uploader"},
		{Name: "empty", Channels: 1, Grids: 1},
		{Name: "edge", Channels: maxCoord, Grids: maxCoord, Wires: []UploadWire{
			{ID: maxID, Pins: []geom.Point{geom.Pt(maxCoord, maxCoord)}},
			{ID: 3},
		}},
		{Name: "", Channels: 0, Grids: 0},
	}
}

// sampleMutates covers every op code, empty pin lists (reroute-in-place,
// remove) and populated ones.
func sampleMutates() []*Mutate {
	return []*Mutate{
		{Circuit: "dyn", Client: "mutator", Ops: []MutateOp{
			{Op: OpAdd, WireID: 900, Pins: []geom.Point{geom.Pt(1, 1), geom.Pt(30, 3)}},
			{Op: OpRemove, WireID: 7},
			{Op: OpReroute, WireID: 0},
			{Op: OpReroute, WireID: 3, Pins: []geom.Point{geom.Pt(5, 5), geom.Pt(6, 0)}},
		}},
		{Circuit: "dyn"},
		{Circuit: "c", Ops: []MutateOp{{Op: OpAdd, WireID: maxID,
			Pins: []geom.Point{geom.Pt(maxCoord, 0), geom.Pt(0, maxCoord)}}}},
	}
}

func sampleEvicts() []*Evict {
	return []*Evict{
		{Circuit: "dyn", Client: "op"},
		{Circuit: "x"},
		{Circuit: "", Client: ""},
	}
}

// sampleAdminResponses covers both shapes: OK with and without results,
// and the error statuses including the lifecycle-specific ones.
func sampleAdminResponses() []*AdminResponse {
	return []*AdminResponse{
		{Status: StatusOK, Epoch: 42, Wires: 401, Results: []OpOutcome{
			{Op: OpAdd, WireID: 900, Cost: 312, PathCells: 40, CellsExamined: 512},
			{Op: OpRemove, WireID: 7},
			{Op: OpReroute, WireID: 0, Cost: 88, PathCells: 12, CellsExamined: 130},
		}},
		{Status: StatusOK},
		{Status: StatusOK, Epoch: 1 << 40, Wires: maxID},
		{Status: StatusConflict, Message: "circuit \"dyn\" already served"},
		{Status: StatusStoreFull, RetryAfterSeconds: 3, Message: "memory budget exhausted"},
		{Status: StatusUnknownCircuit, Message: "no circuit \"x\""},
		{Status: StatusBadRequest, Message: "op 2: unknown wire 9"},
		{Status: StatusDraining},
	}
}

// TestLifecycleRoundTrips checks encode->decode is the identity over
// every lifecycle frame's samples.
func TestLifecycleRoundTrips(t *testing.T) {
	for _, u := range sampleUploads() {
		buf, err := AppendUpload(nil, u)
		if err != nil {
			t.Fatalf("AppendUpload(%+v): %v", u, err)
		}
		got, err := DecodeUpload(buf)
		if err != nil {
			t.Fatalf("DecodeUpload(%+v): %v", u, err)
		}
		if !reflect.DeepEqual(got, u) {
			t.Errorf("upload round trip mismatch:\n in: %+v\nout: %+v", u, got)
		}
	}
	for _, m := range sampleMutates() {
		buf, err := AppendMutate(nil, m)
		if err != nil {
			t.Fatalf("AppendMutate(%+v): %v", m, err)
		}
		got, err := DecodeMutate(buf)
		if err != nil {
			t.Fatalf("DecodeMutate(%+v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("mutate round trip mismatch:\n in: %+v\nout: %+v", m, got)
		}
	}
	for _, e := range sampleEvicts() {
		buf, err := AppendEvict(nil, e)
		if err != nil {
			t.Fatalf("AppendEvict(%+v): %v", e, err)
		}
		got, err := DecodeEvict(buf)
		if err != nil {
			t.Fatalf("DecodeEvict(%+v): %v", e, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("evict round trip mismatch:\n in: %+v\nout: %+v", e, got)
		}
	}
	for _, r := range sampleAdminResponses() {
		buf, err := AppendAdminResponse(nil, r)
		if err != nil {
			t.Fatalf("AppendAdminResponse(%+v): %v", r, err)
		}
		got, err := DecodeAdminResponse(buf)
		if err != nil {
			t.Fatalf("DecodeAdminResponse(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("admin response round trip mismatch:\n in: %+v\nout: %+v", r, got)
		}
	}
}

// TestPayloadKind pins the dispatch peek: every frame kind identifies
// itself, and short or foreign-version payloads report 0.
func TestPayloadKind(t *testing.T) {
	u, _ := AppendUpload(nil, sampleUploads()[0])
	m, _ := AppendMutate(nil, sampleMutates()[0])
	e, _ := AppendEvict(nil, sampleEvicts()[0])
	a, _ := AppendAdminResponse(nil, sampleAdminResponses()[0])
	req, _ := AppendRequest(nil, sampleRequests()[0])
	cases := []struct {
		payload []byte
		want    byte
	}{
		{req, KindRequest},
		{u, KindUpload},
		{m, KindMutate},
		{e, KindEvict},
		{a, KindAdminResponse},
		{nil, 0},
		{[]byte{Version}, 0},
		{[]byte{Version + 1, KindRequest}, 0},
	}
	for _, c := range cases {
		if got := PayloadKind(c.payload); got != c.want {
			t.Errorf("PayloadKind(%x) = %d, want %d", c.payload, got, c.want)
		}
	}
}

// TestLifecycleDecodeRejections checks the codec rejects op codes and
// statuses outside the vocabulary, and cross-kind confusion.
func TestLifecycleDecodeRejections(t *testing.T) {
	m, _ := AppendMutate(nil, &Mutate{Circuit: "c", Ops: []MutateOp{{Op: OpAdd, WireID: 1}}})
	bad := append([]byte(nil), m...)
	bad[len(bad)-3] = 9 // op byte -> unknown code
	if _, err := DecodeMutate(bad); err == nil {
		t.Error("DecodeMutate accepted an unknown op code")
	}
	u, _ := AppendUpload(nil, sampleUploads()[0])
	if _, err := DecodeMutate(u); err == nil {
		t.Error("DecodeMutate accepted an upload frame")
	}
	if _, err := DecodeUpload(m); err == nil {
		t.Error("DecodeUpload accepted a mutate frame")
	}
	a, _ := AppendAdminResponse(nil, &AdminResponse{Status: StatusDraining})
	bad = append([]byte(nil), a...)
	bad[2] = byte(statusMax) + 1
	if _, err := DecodeAdminResponse(bad); err == nil {
		t.Error("DecodeAdminResponse accepted an unknown status")
	}
	if _, err := AppendMutate(nil, &Mutate{Ops: []MutateOp{{Op: 0}}}); err == nil {
		t.Error("AppendMutate accepted op code 0")
	}
	if _, err := AppendUpload(nil, &Upload{Channels: maxCoord + 1, Grids: 1}); err == nil {
		t.Error("AppendUpload accepted an out-of-domain grid")
	}
}

package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it
// must never panic, and anything it accepts must re-encode to the same
// bytes — the same decode-encode contract internal/msg's fuzzer pins.
func FuzzDecodeRequest(f *testing.F) {
	for _, r := range sampleRequests() {
		buf, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameRequest})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range sampleResponses() {
		buf, err := AppendResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameResponse, byte(StatusOK)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		out, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("decoded response failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it
// must never panic, and anything it accepts must re-encode to the same
// bytes — the same decode-encode contract internal/msg's fuzzer pins.
func FuzzDecodeRequest(f *testing.F) {
	for _, r := range sampleRequests() {
		buf, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameRequest})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range sampleResponses() {
		buf, err := AppendResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameResponse, byte(StatusOK)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		out, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("decoded response failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeUpload pins the upload frame's decode-encode round trip.
func FuzzDecodeUpload(f *testing.F) {
	for _, u := range sampleUploads() {
		buf, err := AppendUpload(nil, u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameUpload})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpload(data)
		if err != nil {
			return
		}
		out, err := AppendUpload(nil, u)
		if err != nil {
			t.Fatalf("decoded upload failed to re-encode: %v (%+v)", err, u)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeMutate pins the mutate frame's decode-encode round trip.
func FuzzDecodeMutate(f *testing.F) {
	for _, m := range sampleMutates() {
		buf, err := AppendMutate(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameMutate})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMutate(data)
		if err != nil {
			return
		}
		out, err := AppendMutate(nil, m)
		if err != nil {
			t.Fatalf("decoded mutate failed to re-encode: %v (%+v)", err, m)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeEvict pins the evict frame's decode-encode round trip.
func FuzzDecodeEvict(f *testing.F) {
	for _, e := range sampleEvicts() {
		buf, err := AppendEvict(nil, e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameEvict})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEvict(data)
		if err != nil {
			return
		}
		out, err := AppendEvict(nil, e)
		if err != nil {
			t.Fatalf("decoded evict failed to re-encode: %v (%+v)", err, e)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeAdminResponse pins the admin response's decode-encode round
// trip.
func FuzzDecodeAdminResponse(f *testing.F) {
	for _, r := range sampleAdminResponses() {
		buf, err := AppendAdminResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, frameAdminResponse, byte(StatusOK)})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeAdminResponse(data)
		if err != nil {
			return
		}
		out, err := AppendAdminResponse(nil, r)
		if err != nil {
			t.Fatalf("decoded admin response failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

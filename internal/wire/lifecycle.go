package wire

// The circuit-lifecycle frames: runtime upload (kind 5), mutation
// (kind 6) and eviction (kind 7), answered by one shared admin response
// (kind 8). They follow the same packed-field discipline and round-trip
// contract as the route pair, and double as the circuit store's WAL
// record payloads (internal/store) — a replayed log re-decodes with the
// exact code path the live transport uses.
//
//	upload (client -> server)
//	  version=1, kind=5, str8 name, str8 client,
//	  uvarint channels, uvarint grids, uvarint wire count,
//	  wire count x (uvarint wire id, uvarint pin count,
//	                pin count x (uint16 LE x, uint16 LE y))
//
//	mutate (client -> server)
//	  version=1, kind=6, str8 circuit, str8 client, uvarint op count,
//	  op count x (op byte (1 add, 2 remove, 3 reroute), uvarint wire id,
//	              uvarint pin count, pin count x (uint16 LE x, uint16 LE y))
//
//	evict (client -> server)
//	  version=1, kind=7, str8 circuit, str8 client
//
//	admin response (server -> client)
//	  version=1, kind=8, status byte
//	  status OK: uvarint epoch, uvarint wires, uvarint result count,
//	    result count x (op byte, uvarint wire id, uvarint cost,
//	                    uvarint path cells, uvarint cells examined)
//	  status != OK: uvarint retry-after seconds (0 = no hint),
//	    str16 message
//
// The frames carry geometry and identity only — no deadlines, no trace
// ids. Lifecycle operations are rare control-plane traffic; the data
// plane's latency machinery does not apply to them.

import (
	"encoding/binary"
	"fmt"

	"locusroute/internal/geom"
)

// Size bounds for the lifecycle frames.
const (
	// MaxWires bounds an upload's wire list.
	MaxWires = 1 << 16
	// MaxOps bounds a mutate frame's operation list.
	MaxOps = 1 << 10
)

// Mutation op codes. The values are the protocol bytes and match
// internal/store's OpKind values one-to-one.
const (
	OpAdd     uint8 = 1
	OpRemove  uint8 = 2
	OpReroute uint8 = 3
)

// Upload is one circuit upload: the full wire list, routed to a
// baseline by the server on acceptance.
type Upload struct {
	// Name names the circuit (<= MaxName bytes).
	Name string
	// Channels and Grids are the grid shape; coordinates must fit 16
	// bits. Semantic validity (>= 1) is the store's check, not the
	// codec's.
	Channels int
	Grids    int
	// Wires is the circuit's wire list.
	Wires []UploadWire
	// Client identifies the caller ("" = the remote host).
	Client string
}

// UploadWire is one wire of an uploaded circuit.
type UploadWire struct {
	ID   int
	Pins []geom.Point
}

// Mutate is one atomic batch of mutations against a served circuit.
type Mutate struct {
	Circuit string
	Client  string
	Ops     []MutateOp
}

// MutateOp is one mutation: add a wire (pins required), remove one
// (pins ignored), or reroute one (empty pins = keep the existing pins,
// re-route against current congestion).
type MutateOp struct {
	Op     uint8
	WireID int
	Pins   []geom.Point
}

// Evict removes a circuit from service.
type Evict struct {
	Circuit string
	Client  string
}

// AdminResponse answers any lifecycle frame. On StatusOK, Epoch and
// Wires describe the circuit's post-operation state and Results carries
// one outcome per mutate op (empty for upload and evict).
type AdminResponse struct {
	Status Status

	// Post-operation state, meaningful only on StatusOK.
	Epoch   uint64
	Wires   int
	Results []OpOutcome

	// Error fields, meaningful only on non-OK statuses.
	RetryAfterSeconds int
	Message           string
}

// OpOutcome reports one applied mutation: the committed path's cost and
// size for add/reroute, zeros for remove.
type OpOutcome struct {
	Op            uint8
	WireID        int
	Cost          int64
	PathCells     int
	CellsExamined int
}

// AppendUpload appends u's payload (no length prefix) to dst.
func AppendUpload(dst []byte, u *Upload) ([]byte, error) {
	if len(u.Name) > MaxName {
		return nil, fmt.Errorf("wire: circuit name %d bytes (max %d)", len(u.Name), MaxName)
	}
	if len(u.Client) > MaxName {
		return nil, fmt.Errorf("wire: client identity %d bytes (max %d)", len(u.Client), MaxName)
	}
	if u.Channels < 0 || u.Channels > maxCoord || u.Grids < 0 || u.Grids > maxCoord {
		return nil, fmt.Errorf("wire: grid %dx%d outside the 16-bit coordinate domain", u.Channels, u.Grids)
	}
	if len(u.Wires) > MaxWires {
		return nil, fmt.Errorf("wire: %d wires (max %d)", len(u.Wires), MaxWires)
	}
	dst = append(dst, Version, frameUpload)
	dst = appendStr8(dst, u.Name)
	dst = appendStr8(dst, u.Client)
	dst = binary.AppendUvarint(dst, uint64(u.Channels))
	dst = binary.AppendUvarint(dst, uint64(u.Grids))
	dst = binary.AppendUvarint(dst, uint64(len(u.Wires)))
	for i := range u.Wires {
		var err error
		dst, err = appendWire(dst, u.Wires[i].ID, u.Wires[i].Pins)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeUpload unmarshals an upload payload produced by AppendUpload.
// Anything it accepts re-encodes to the identical bytes.
func DecodeUpload(buf []byte) (*Upload, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	d.expect("frame kind", frameUpload)
	u := &Upload{}
	u.Name = d.str8("name")
	u.Client = d.str8("client")
	u.Channels = int(d.uvarint("channels", maxCoord))
	u.Grids = int(d.uvarint("grids", maxCoord))
	nwires := int(d.uvarint("wire count", MaxWires))
	for i := 0; i < nwires && d.err == nil; i++ {
		id, pins := decodeWire(&d)
		u.Wires = append(u.Wires, UploadWire{ID: id, Pins: pins})
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return u, nil
}

// AppendMutate appends m's payload (no length prefix) to dst.
func AppendMutate(dst []byte, m *Mutate) ([]byte, error) {
	if len(m.Circuit) > MaxName {
		return nil, fmt.Errorf("wire: circuit name %d bytes (max %d)", len(m.Circuit), MaxName)
	}
	if len(m.Client) > MaxName {
		return nil, fmt.Errorf("wire: client identity %d bytes (max %d)", len(m.Client), MaxName)
	}
	if len(m.Ops) > MaxOps {
		return nil, fmt.Errorf("wire: %d ops (max %d)", len(m.Ops), MaxOps)
	}
	dst = append(dst, Version, frameMutate)
	dst = appendStr8(dst, m.Circuit)
	dst = appendStr8(dst, m.Client)
	dst = binary.AppendUvarint(dst, uint64(len(m.Ops)))
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Op < OpAdd || op.Op > OpReroute {
			return nil, fmt.Errorf("wire: unknown op code %d", op.Op)
		}
		dst = append(dst, op.Op)
		var err error
		dst, err = appendWire(dst, op.WireID, op.Pins)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeMutate unmarshals a mutate payload produced by AppendMutate.
// Anything it accepts re-encodes to the identical bytes.
func DecodeMutate(buf []byte) (*Mutate, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	d.expect("frame kind", frameMutate)
	m := &Mutate{}
	m.Circuit = d.str8("circuit")
	m.Client = d.str8("client")
	nops := int(d.uvarint("op count", MaxOps))
	for i := 0; i < nops && d.err == nil; i++ {
		op := d.byte("op code")
		if d.err == nil && (op < OpAdd || op > OpReroute) {
			d.fail("unknown op code %d", op)
			break
		}
		id, pins := decodeWire(&d)
		m.Ops = append(m.Ops, MutateOp{Op: op, WireID: id, Pins: pins})
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendEvict appends e's payload (no length prefix) to dst.
func AppendEvict(dst []byte, e *Evict) ([]byte, error) {
	if len(e.Circuit) > MaxName {
		return nil, fmt.Errorf("wire: circuit name %d bytes (max %d)", len(e.Circuit), MaxName)
	}
	if len(e.Client) > MaxName {
		return nil, fmt.Errorf("wire: client identity %d bytes (max %d)", len(e.Client), MaxName)
	}
	dst = append(dst, Version, frameEvict)
	dst = appendStr8(dst, e.Circuit)
	dst = appendStr8(dst, e.Client)
	return dst, nil
}

// DecodeEvict unmarshals an evict payload produced by AppendEvict.
// Anything it accepts re-encodes to the identical bytes.
func DecodeEvict(buf []byte) (*Evict, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	d.expect("frame kind", frameEvict)
	e := &Evict{}
	e.Circuit = d.str8("circuit")
	e.Client = d.str8("client")
	if err := d.finish(); err != nil {
		return nil, err
	}
	return e, nil
}

// AppendAdminResponse appends r's payload (no length prefix) to dst.
func AppendAdminResponse(dst []byte, r *AdminResponse) ([]byte, error) {
	if r.Status > statusMax {
		return nil, fmt.Errorf("wire: unknown status %d", r.Status)
	}
	dst = append(dst, Version, frameAdminResponse, byte(r.Status))
	if r.Status == StatusOK {
		if r.Wires < 0 || r.Wires > maxID {
			return nil, fmt.Errorf("wire: wire count %d outside [0, %d]", r.Wires, maxID)
		}
		if len(r.Results) > MaxOps {
			return nil, fmt.Errorf("wire: %d results (max %d)", len(r.Results), MaxOps)
		}
		dst = binary.AppendUvarint(dst, r.Epoch)
		dst = binary.AppendUvarint(dst, uint64(r.Wires))
		dst = binary.AppendUvarint(dst, uint64(len(r.Results)))
		for i := range r.Results {
			res := &r.Results[i]
			if res.Op < OpAdd || res.Op > OpReroute {
				return nil, fmt.Errorf("wire: unknown op code %d", res.Op)
			}
			for _, f := range []struct {
				name string
				v    int64
			}{
				{"wire id", int64(res.WireID)},
				{"cost", res.Cost},
				{"path cells", int64(res.PathCells)},
				{"cells examined", int64(res.CellsExamined)},
			} {
				if f.v < 0 {
					return nil, fmt.Errorf("wire: negative %s %d", f.name, f.v)
				}
			}
			dst = append(dst, res.Op)
			dst = binary.AppendUvarint(dst, uint64(res.WireID))
			dst = binary.AppendUvarint(dst, uint64(res.Cost))
			dst = binary.AppendUvarint(dst, uint64(res.PathCells))
			dst = binary.AppendUvarint(dst, uint64(res.CellsExamined))
		}
	} else {
		if r.RetryAfterSeconds < 0 {
			return nil, fmt.Errorf("wire: negative retry-after %d", r.RetryAfterSeconds)
		}
		if len(r.Message) > MaxMessage {
			return nil, fmt.Errorf("wire: message %d bytes (max %d)", len(r.Message), MaxMessage)
		}
		dst = binary.AppendUvarint(dst, uint64(r.RetryAfterSeconds))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Message)))
		dst = append(dst, r.Message...)
	}
	return dst, nil
}

// DecodeAdminResponse unmarshals a payload produced by
// AppendAdminResponse. Anything it accepts re-encodes to the identical
// bytes.
func DecodeAdminResponse(buf []byte) (*AdminResponse, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	d.expect("frame kind", frameAdminResponse)
	status := Status(d.byte("status"))
	if d.err == nil && status > statusMax {
		d.err = fmt.Errorf("wire: unknown status %d", status)
	}
	r := &AdminResponse{Status: status}
	if d.err == nil && status == StatusOK {
		r.Epoch = d.uvarint("epoch", 1<<62)
		r.Wires = int(d.uvarint("wires", maxID))
		nres := int(d.uvarint("result count", MaxOps))
		for i := 0; i < nres && d.err == nil; i++ {
			op := d.byte("op code")
			if d.err == nil && (op < OpAdd || op > OpReroute) {
				d.fail("unknown op code %d", op)
				break
			}
			r.Results = append(r.Results, OpOutcome{
				Op:            op,
				WireID:        int(d.uvarint("wire id", maxID)),
				Cost:          int64(d.uvarint("cost", 1<<62)),
				PathCells:     int(d.uvarint("path cells", maxID)),
				CellsExamined: int(d.uvarint("cells examined", maxID)),
			})
		}
	} else if d.err == nil {
		r.RetryAfterSeconds = int(d.uvarint("retry-after", maxID))
		r.Message = d.str16("message")
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// AppendUploadFrame appends the framed (length-prefixed) upload to dst.
func AppendUploadFrame(dst []byte, u *Upload) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendUpload(dst, u) })
}

// AppendMutateFrame appends the framed (length-prefixed) mutate to dst.
func AppendMutateFrame(dst []byte, m *Mutate) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendMutate(dst, m) })
}

// AppendEvictFrame appends the framed (length-prefixed) evict to dst.
func AppendEvictFrame(dst []byte, e *Evict) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendEvict(dst, e) })
}

// AppendAdminResponseFrame appends the framed (length-prefixed) admin
// response to dst.
func AppendAdminResponseFrame(dst []byte, r *AdminResponse) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendAdminResponse(dst, r) })
}

// appendWire appends the shared wire-geometry layout: uvarint id,
// uvarint pin count, then 16-bit LE coordinate pairs.
func appendWire(dst []byte, id int, pins []geom.Point) ([]byte, error) {
	if id < 0 || id > maxID {
		return nil, fmt.Errorf("wire: wire id %d outside [0, %d]", id, maxID)
	}
	if len(pins) > MaxPins {
		return nil, fmt.Errorf("wire: %d pins (max %d)", len(pins), MaxPins)
	}
	dst = binary.AppendUvarint(dst, uint64(id))
	dst = binary.AppendUvarint(dst, uint64(len(pins)))
	for _, p := range pins {
		if p.X < 0 || p.X > maxCoord || p.Y < 0 || p.Y > maxCoord {
			return nil, fmt.Errorf("wire: pin %v outside the 16-bit coordinate domain", p)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(p.X))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Y))
	}
	return dst, nil
}

// decodeWire is appendWire's decoder twin.
func decodeWire(d *decoder) (id int, pins []geom.Point) {
	id = int(d.uvarint("wire id", maxID))
	npins := int(d.uvarint("pin count", MaxPins))
	for i := 0; i < npins && d.err == nil; i++ {
		x := d.u16("pin x")
		y := d.u16("pin y")
		pins = append(pins, geom.Pt(int(x), int(y)))
	}
	return id, pins
}

// Package wire is the binary route-request protocol of locusd: the
// service-layer answer to the paper's finding that message packing cost,
// not compute, dominates the MP router — at millions of requests the
// HTTP/JSON hot path is mostly encoding overhead. The protocol reuses
// internal/msg's packed-field discipline (fixed little-endian fields
// where the domain is bounded, minimal varints where it is not) and its
// fuzz contract: decoders never panic, and anything a decoder accepts
// re-encodes to the identical bytes.
//
// Framing is length-prefixed over a byte stream (TCP):
//
//	uint32 LE payload length | payload (<= MaxFrame bytes)
//
// Every payload starts with a version byte and a frame-kind byte, so the
// protocol can grow new frame types and incompatible revisions without
// guesswork on either side. Version 1 defines four frames — the traced
// pair (kinds 3 and 4) was added for request tracing as new frame kinds
// rather than a version bump, so old peers keep decoding kinds 1 and 2
// byte-identically and reject the traced kinds cleanly:
//
//	request  (client -> server)
//	  version=1, kind=1, flags (bit0 commit), uvarint wire id,
//	  uvarint deadline_ms, str8 circuit, str8 client,
//	  uvarint pin count, pin count x (uint16 LE x, uint16 LE y)
//
//	response (server -> client)
//	  version=1, kind=2, status byte
//	  status OK: uvarint shard, uvarint wire id, uvarint cost,
//	    uvarint path cells, uvarint cells examined, uvarint batch size,
//	    uvarint batch index, uvarint wait micros,
//	    flags (bit0 committed, bit1 cached)
//	  status != OK: uvarint retry-after seconds (0 = no hint),
//	    str16 message
//
//	traced request (client -> server)
//	  version=1, kind=3, then the kind-1 request layout after the kind
//	  byte, then str8 trace id ("" = server mints one)
//
//	traced response (server -> client)
//	  version=1, kind=4, then the kind-2 response layout after the kind
//	  byte, then str8 request id, uvarint stage count (<= MaxStages),
//	  stage count x (stage byte, uvarint nanoseconds)
//
// str8 is a 1-byte length followed by raw bytes (<= 255); str16 a 2-byte
// LE length (<= MaxMessage). Varints are unsigned LEB128 and must be
// minimal: a decoder rejecting non-canonical encodings is what makes the
// decode-encode round trip exact, which the fuzz tests enforce the same
// way internal/msg's do.
//
// The JSON/HTTP endpoints remain the compatibility layer; this protocol
// is additive and carries exactly the same request and response fields.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"locusroute/internal/geom"
)

// Version is the protocol revision this package speaks. A frame whose
// version byte differs is rejected whole — fields are not renegotiated
// per frame.
const Version = 1

// Frame kinds.
const (
	frameRequest        = 1
	frameResponse       = 2
	frameRequestTraced  = 3
	frameResponseTraced = 4
	frameUpload         = 5
	frameMutate         = 6
	frameEvict          = 7
	frameAdminResponse  = 8
)

// Exported frame-kind values for dispatchers (see PayloadKind). The
// lifecycle frames (upload/mutate/evict and their shared admin response)
// are documented in lifecycle.go.
const (
	KindRequest        = frameRequest
	KindResponse       = frameResponse
	KindRequestTraced  = frameRequestTraced
	KindResponseTraced = frameResponseTraced
	KindUpload         = frameUpload
	KindMutate         = frameMutate
	KindEvict          = frameEvict
	KindAdminResponse  = frameAdminResponse
)

// PayloadKind peeks at a framed payload's kind byte so a server can
// dispatch before committing to a decoder. It returns 0 (never a valid
// kind) for payloads too short to carry one or with a foreign version.
func PayloadKind(payload []byte) byte {
	if len(payload) < 2 || payload[0] != Version {
		return 0
	}
	return payload[1]
}

// Size bounds. Oversized fields are encode and decode errors, never
// silent truncations.
const (
	// MaxFrame bounds one framed payload; ReadFrame rejects larger
	// length prefixes before allocating.
	MaxFrame = 1 << 20
	// MaxName bounds the circuit and client identity strings (str8).
	MaxName = 255
	// MaxMessage bounds a response's error message (str16).
	MaxMessage = 1 << 12
	// MaxPins bounds a request's pin list.
	MaxPins = 1 << 12
	// MaxStages bounds a traced response's stage list.
	MaxStages = 32
	// maxCoord matches internal/msg's 16-bit grid coordinate domain.
	maxCoord = 1<<16 - 1
	// maxID bounds wire ids to the portable int range.
	maxID = 1<<31 - 1
)

// Request flag bits.
const (
	flagCommit = 1 << 0
	reqFlagAll = flagCommit
)

// Response flag bits.
const (
	flagCommitted = 1 << 0
	flagCached    = 1 << 1
	respFlagAll   = flagCommitted | flagCached
)

// Status is a response's outcome code. The zero value is success; the
// non-zero codes mirror the HTTP error vocabulary of the JSON layer so
// the two transports report identical outcomes.
type Status uint8

const (
	StatusOK Status = iota
	// StatusBadRequest rejects a malformed or invalid request (bad
	// payload, out-of-grid pins, too few pins).
	StatusBadRequest
	// StatusUnknownCircuit rejects a request naming an unserved circuit.
	StatusUnknownCircuit
	// StatusShed rejects a request at a full admission gate, including
	// criticality eviction; RetryAfterSeconds carries the backlog
	// estimate.
	StatusShed
	// StatusRateLimited rejects a request over its client's token
	// bucket; RetryAfterSeconds carries the refill time.
	StatusRateLimited
	// StatusDraining rejects new work during graceful shutdown.
	StatusDraining
	// StatusBreakerOpen rejects while the circuit breaker is open;
	// RetryAfterSeconds carries the cooldown remainder.
	StatusBreakerOpen
	// StatusDeadline reports a deadline that expired while the request
	// was queued or mid-batch.
	StatusDeadline
	// StatusInfeasible rejects a deadline below the admission floor.
	StatusInfeasible
	// StatusConflict rejects an upload naming a circuit already served,
	// or a mutation/eviction of a circuit that is not store-backed.
	StatusConflict
	// StatusStoreFull rejects an upload the circuit store's memory
	// budget cannot admit.
	StatusStoreFull

	statusMax = StatusStoreFull
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusUnknownCircuit:
		return "unknown-circuit"
	case StatusShed:
		return "shed"
	case StatusRateLimited:
		return "rate-limited"
	case StatusDraining:
		return "draining"
	case StatusBreakerOpen:
		return "breaker-open"
	case StatusDeadline:
		return "deadline"
	case StatusInfeasible:
		return "infeasible"
	case StatusConflict:
		return "conflict"
	case StatusStoreFull:
		return "store-full"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// HTTPStatus maps the code to the HTTP status the JSON layer reports for
// the same outcome — the cross-transport equivalence the tests pin.
func (s Status) HTTPStatus() int {
	switch s {
	case StatusOK:
		return 200
	case StatusUnknownCircuit:
		return 404
	case StatusShed, StatusRateLimited:
		return 429
	case StatusDraining, StatusBreakerOpen:
		return 503
	case StatusDeadline, StatusInfeasible:
		return 504
	case StatusConflict:
		return 409
	case StatusStoreFull:
		return 507
	}
	return 400
}

// Request is one route request: the binary twin of the JSON /route body
// plus the client identity the HTTP layer carries as a header.
type Request struct {
	// Circuit names a preloaded circuit (<= MaxName bytes).
	Circuit string
	// WireID labels the wire (non-negative).
	WireID int
	// Pins are the wire terminals; coordinates must fit 16 bits.
	Pins []geom.Point
	// DeadlineMillis bounds queue wait + evaluation (0 = the server's
	// default deadline).
	DeadlineMillis int64
	// Commit places the evaluated path on the serving replica.
	Commit bool
	// Client identifies the caller for rate limiting ("" = the remote
	// host, as for HTTP).
	Client string
	// Traced selects the traced request frame (kind 3), asking the
	// server for a traced response that echoes the request id and the
	// per-stage latency breakdown. Untraced requests encode exactly as
	// they did before the traced pair existed.
	Traced bool
	// TraceID is the caller-supplied request id the server adopts ("" =
	// the server mints one); carried only on traced frames.
	TraceID string
}

// Response is one route outcome: on StatusOK the evaluation fields of
// the JSON RouteResponse, otherwise the error vocabulary (retry hint +
// message).
type Response struct {
	Status Status

	// Evaluation fields, meaningful only on StatusOK.
	Shard         int
	WireID        int
	Cost          int64
	PathCells     int
	CellsExamined int
	BatchSize     int
	BatchIndex    int
	Committed     bool
	Cached        bool
	WaitMicros    int64

	// Error fields, meaningful only on non-OK statuses.
	RetryAfterSeconds int
	Message           string

	// Traced selects the traced response frame (kind 4): the plain
	// layout plus RequestID and Stages. Servers send it only in answer
	// to traced requests.
	Traced bool
	// RequestID is the server-assigned (or adopted) request id.
	RequestID string
	// Stages is the per-stage latency breakdown; stage bytes index
	// reqtrace's taxonomy, which this package does not interpret.
	Stages []StagePair
}

// StagePair is one stage's share of a traced response's latency
// breakdown.
type StagePair struct {
	Stage uint8
	Ns    int64
}

// AppendRequest appends r's payload (no length prefix) to dst.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if len(r.Circuit) > MaxName {
		return nil, fmt.Errorf("wire: circuit name %d bytes (max %d)", len(r.Circuit), MaxName)
	}
	if len(r.Client) > MaxName {
		return nil, fmt.Errorf("wire: client identity %d bytes (max %d)", len(r.Client), MaxName)
	}
	if r.WireID < 0 || r.WireID > maxID {
		return nil, fmt.Errorf("wire: wire id %d outside [0, %d]", r.WireID, maxID)
	}
	if r.DeadlineMillis < 0 {
		return nil, fmt.Errorf("wire: negative deadline %d ms", r.DeadlineMillis)
	}
	if len(r.Pins) > MaxPins {
		return nil, fmt.Errorf("wire: %d pins (max %d)", len(r.Pins), MaxPins)
	}
	if !r.Traced && r.TraceID != "" {
		return nil, fmt.Errorf("wire: trace id set on an untraced request")
	}
	if len(r.TraceID) > MaxName {
		return nil, fmt.Errorf("wire: trace id %d bytes (max %d)", len(r.TraceID), MaxName)
	}
	var flags byte
	if r.Commit {
		flags |= flagCommit
	}
	kind := byte(frameRequest)
	if r.Traced {
		kind = frameRequestTraced
	}
	dst = append(dst, Version, kind, flags)
	dst = binary.AppendUvarint(dst, uint64(r.WireID))
	dst = binary.AppendUvarint(dst, uint64(r.DeadlineMillis))
	dst = appendStr8(dst, r.Circuit)
	dst = appendStr8(dst, r.Client)
	dst = binary.AppendUvarint(dst, uint64(len(r.Pins)))
	for _, p := range r.Pins {
		if p.X < 0 || p.X > maxCoord || p.Y < 0 || p.Y > maxCoord {
			return nil, fmt.Errorf("wire: pin %v outside the 16-bit coordinate domain", p)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(p.X))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Y))
	}
	if r.Traced {
		dst = appendStr8(dst, r.TraceID)
	}
	return dst, nil
}

// DecodeRequest unmarshals a request payload produced by AppendRequest.
// Anything it accepts re-encodes to the identical bytes.
func DecodeRequest(buf []byte) (*Request, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	kind := d.byte("frame kind")
	if d.err == nil && kind != frameRequest && kind != frameRequestTraced {
		d.fail("frame kind %d, want %d or %d", kind, frameRequest, frameRequestTraced)
	}
	flags := d.byte("flags")
	r := &Request{Traced: d.err == nil && kind == frameRequestTraced}
	r.WireID = int(d.uvarint("wire id", maxID))
	r.DeadlineMillis = int64(d.uvarint("deadline", 1<<62))
	r.Circuit = d.str8("circuit")
	r.Client = d.str8("client")
	npins := int(d.uvarint("pin count", MaxPins))
	if d.err == nil && flags&^byte(reqFlagAll) != 0 {
		d.err = fmt.Errorf("wire: unknown request flags %#x", flags)
	}
	for i := 0; i < npins && d.err == nil; i++ {
		x := d.u16("pin x")
		y := d.u16("pin y")
		r.Pins = append(r.Pins, geom.Pt(int(x), int(y)))
	}
	if r.Traced {
		r.TraceID = d.str8("trace id")
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	r.Commit = flags&flagCommit != 0
	return r, nil
}

// AppendResponse appends r's payload (no length prefix) to dst.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if r.Status > statusMax {
		return nil, fmt.Errorf("wire: unknown status %d", r.Status)
	}
	if !r.Traced && (r.RequestID != "" || len(r.Stages) > 0) {
		return nil, fmt.Errorf("wire: trace fields set on an untraced response")
	}
	kind := byte(frameResponse)
	if r.Traced {
		kind = frameResponseTraced
	}
	dst = append(dst, Version, kind, byte(r.Status))
	if r.Status == StatusOK {
		for _, f := range []struct {
			name string
			v    int64
		}{
			{"shard", int64(r.Shard)},
			{"wire id", int64(r.WireID)},
			{"cost", r.Cost},
			{"path cells", int64(r.PathCells)},
			{"cells examined", int64(r.CellsExamined)},
			{"batch size", int64(r.BatchSize)},
			{"batch index", int64(r.BatchIndex)},
			{"wait micros", r.WaitMicros},
		} {
			if f.v < 0 {
				return nil, fmt.Errorf("wire: negative %s %d", f.name, f.v)
			}
			dst = binary.AppendUvarint(dst, uint64(f.v))
		}
		var flags byte
		if r.Committed {
			flags |= flagCommitted
		}
		if r.Cached {
			flags |= flagCached
		}
		dst = append(dst, flags)
	} else {
		if r.RetryAfterSeconds < 0 {
			return nil, fmt.Errorf("wire: negative retry-after %d", r.RetryAfterSeconds)
		}
		if len(r.Message) > MaxMessage {
			return nil, fmt.Errorf("wire: message %d bytes (max %d)", len(r.Message), MaxMessage)
		}
		dst = binary.AppendUvarint(dst, uint64(r.RetryAfterSeconds))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Message)))
		dst = append(dst, r.Message...)
	}
	if r.Traced {
		if len(r.RequestID) > MaxName {
			return nil, fmt.Errorf("wire: request id %d bytes (max %d)", len(r.RequestID), MaxName)
		}
		if len(r.Stages) > MaxStages {
			return nil, fmt.Errorf("wire: %d stages (max %d)", len(r.Stages), MaxStages)
		}
		dst = appendStr8(dst, r.RequestID)
		dst = binary.AppendUvarint(dst, uint64(len(r.Stages)))
		for _, sp := range r.Stages {
			if sp.Ns < 0 {
				return nil, fmt.Errorf("wire: negative stage duration %d ns", sp.Ns)
			}
			dst = append(dst, sp.Stage)
			dst = binary.AppendUvarint(dst, uint64(sp.Ns))
		}
	}
	return dst, nil
}

// DecodeResponse unmarshals a response payload produced by
// AppendResponse. Anything it accepts re-encodes to the identical bytes.
func DecodeResponse(buf []byte) (*Response, error) {
	d := decoder{buf: buf}
	d.expect("version", Version)
	kind := d.byte("frame kind")
	if d.err == nil && kind != frameResponse && kind != frameResponseTraced {
		d.fail("frame kind %d, want %d or %d", kind, frameResponse, frameResponseTraced)
	}
	status := Status(d.byte("status"))
	if d.err == nil && status > statusMax {
		d.err = fmt.Errorf("wire: unknown status %d", status)
	}
	r := &Response{Status: status, Traced: d.err == nil && kind == frameResponseTraced}
	if d.err == nil && status == StatusOK {
		r.Shard = int(d.uvarint("shard", maxID))
		r.WireID = int(d.uvarint("wire id", maxID))
		r.Cost = int64(d.uvarint("cost", 1<<62))
		r.PathCells = int(d.uvarint("path cells", maxID))
		r.CellsExamined = int(d.uvarint("cells examined", maxID))
		r.BatchSize = int(d.uvarint("batch size", maxID))
		r.BatchIndex = int(d.uvarint("batch index", maxID))
		r.WaitMicros = int64(d.uvarint("wait micros", 1<<62))
		flags := d.byte("flags")
		if d.err == nil && flags&^byte(respFlagAll) != 0 {
			d.err = fmt.Errorf("wire: unknown response flags %#x", flags)
		}
		r.Committed = flags&flagCommitted != 0
		r.Cached = flags&flagCached != 0
	} else if d.err == nil {
		r.RetryAfterSeconds = int(d.uvarint("retry-after", maxID))
		r.Message = d.str16("message")
	}
	if r.Traced {
		r.RequestID = d.str8("request id")
		nstages := int(d.uvarint("stage count", MaxStages))
		for i := 0; i < nstages && d.err == nil; i++ {
			st := d.byte("stage")
			ns := int64(d.uvarint("stage ns", 1<<62))
			r.Stages = append(r.Stages, StagePair{Stage: st, Ns: ns})
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// AppendRequestFrame appends the framed (length-prefixed) request to
// dst, ready for a single Write.
func AppendRequestFrame(dst []byte, r *Request) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendRequest(dst, r) })
}

// AppendResponseFrame appends the framed (length-prefixed) response to
// dst, ready for a single Write.
func AppendResponseFrame(dst []byte, r *Response) ([]byte, error) {
	return appendFrame(dst, func(dst []byte) ([]byte, error) { return AppendResponse(dst, r) })
}

// appendFrame reserves the length prefix, appends the payload, and
// back-fills the prefix.
func appendFrame(dst []byte, payload func([]byte) ([]byte, error)) ([]byte, error) {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := payload(dst)
	if err != nil {
		return nil, err
	}
	n := len(dst) - at - 4
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d bytes (max %d)", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[at:], uint32(n))
	return dst, nil
}

// ReadFrame reads one length-prefixed payload, reusing buf when it is
// large enough. It returns io.EOF only on a clean boundary (no bytes
// read); a frame cut short mid-payload is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// appendStr8 appends a 1-byte-length string; the caller has bounded it.
func appendStr8(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// decoder is a cursor over one payload with sticky error state: every
// accessor returns the zero value once an error is recorded, and finish
// rejects trailing bytes — a decoded value therefore describes the whole
// payload exactly.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *decoder) byte(name string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at %s", name)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) expect(name string, want byte) {
	if got := d.byte(name); d.err == nil && got != want {
		d.fail("%s %d, want %d", name, got, want)
	}
}

func (d *decoder) u16(name string) uint16 {
	if d.err != nil {
		return 0
	}
	if d.off+2 > len(d.buf) {
		d.fail("truncated at %s", name)
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// uvarint decodes a minimal unsigned varint bounded by max. Rejecting
// non-minimal encodings (a multi-byte varint whose last byte is zero)
// keeps decode-encode an exact round trip.
func (d *decoder) uvarint(name string, max uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at %s", name)
		return 0
	}
	if n > 1 && d.buf[d.off+n-1] == 0 {
		d.fail("non-minimal varint at %s", name)
		return 0
	}
	d.off += n
	if v > max {
		d.fail("%s %d exceeds %d", name, v, max)
		return 0
	}
	return v
}

func (d *decoder) str8(name string) string {
	n := int(d.byte(name))
	return d.take(name, n)
}

func (d *decoder) str16(name string) string {
	n := int(d.u16(name))
	if d.err == nil && n > MaxMessage {
		d.fail("%s %d bytes (max %d)", name, n, MaxMessage)
		return ""
	}
	return d.take(name, n)
}

func (d *decoder) take(name string, n int) string {
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated at %s", name)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// Package metrics provides the small reporting utilities the experiment
// drivers and commands share: aligned text tables and number formatting
// matching the paper's conventions.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; it panics if the cell count does not match the
// header, because that is a programming error in a driver.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns",
			len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MB formats a byte count as megabytes with three decimals, the paper's
// "MBytes Xfrd." convention.
func MB(bytes int64) string { return fmt.Sprintf("%.3f", float64(bytes)/1e6) }

// Seconds formats a float seconds value with three decimals.
func Seconds(s float64) string { return fmt.Sprintf("%.3f", s) }

// Ratio formats a ratio like "1.43x".
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "A", "LongHeader", "C")
	tab.Add("1", "2", "3")
	tab.Add("wide-cell", "x", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "LongHeader") {
		t.Errorf("header missing: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
	// Columns aligned: the "2" of row 1 and "x" of row 2 start at the
	// same offset.
	if strings.Index(lines[3], "2") == strings.Index(lines[4], "x") {
		// Both rows have first column widths padded to "wide-cell".
	} else {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableAddPanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("wrong cell count must panic")
		}
	}()
	tab := NewTable("t", "A", "B")
	tab.Add("only-one")
}

func TestFormatters(t *testing.T) {
	if MB(862000) != "0.862" {
		t.Errorf("MB = %q", MB(862000))
	}
	if Seconds(1.2345) != "1.234" && Seconds(1.2345) != "1.235" {
		t.Errorf("Seconds = %q", Seconds(1.2345))
	}
	if Ratio(1.434) != "1.43x" {
		t.Errorf("Ratio = %q", Ratio(1.434))
	}
}

func TestEmptyTable(t *testing.T) {
	tab := NewTable("", "X")
	out := tab.String()
	if !strings.HasPrefix(out, "X\n") {
		t.Errorf("empty table output = %q", out)
	}
}

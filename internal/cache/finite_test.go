package cache

import (
	"testing"

	"locusroute/internal/trace"
)

func TestFiniteValidation(t *testing.T) {
	if _, err := NewFinite(0, 8, 4); err == nil {
		t.Errorf("zero procs must fail")
	}
	if _, err := NewFinite(2, 7, 4); err == nil {
		t.Errorf("bad line size must fail")
	}
	if _, err := NewFinite(2, 8, 0); err == nil {
		t.Errorf("zero capacity must fail")
	}
}

func TestFiniteMatchesInfiniteWhenLarge(t *testing.T) {
	// With capacity above the working set, the finite cache behaves
	// exactly like the infinite one.
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		tr.Append(trace.Ref{Proc: i % 3, Addr: uint64((i * 4) % 128), Op: trace.Write})
		tr.Append(trace.Ref{Proc: (i + 1) % 3, Addr: uint64((i * 4) % 128), Op: trace.Read})
	}
	inf, err := Replay(tr, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := ReplayFinite(tr, 3, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Bytes() != fin.Bytes() {
		t.Errorf("large finite cache traffic %d != infinite %d", fin.Bytes(), inf.Bytes())
	}
}

func TestFiniteCapacityMissesAddTraffic(t *testing.T) {
	// One processor streaming over a working set larger than its cache:
	// every revisit is a capacity miss in the small cache, a hit in the
	// infinite one.
	tr := &trace.Trace{}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 64; i++ {
			tr.Append(trace.Ref{Proc: 0, Addr: uint64(i * 8), Op: trace.Read})
		}
	}
	inf, _ := Replay(tr, 1, 8)
	small, _ := ReplayFinite(tr, 1, 8, 8)
	if small.Bytes() <= inf.Bytes() {
		t.Errorf("small cache (%d B) must exceed infinite (%d B)", small.Bytes(), inf.Bytes())
	}
	if small.Fills != 3*64 {
		t.Errorf("every access must miss in the tiny cache: fills=%d", small.Fills)
	}
}

func TestFiniteDirtyEvictionWritesBack(t *testing.T) {
	s, _ := NewFinite(1, 8, 2)
	// Write three distinct lines: the first (dirty) is evicted with a
	// writeback.
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Write})
	s.Access(trace.Ref{Proc: 0, Addr: 8, Op: trace.Write})
	s.Access(trace.Ref{Proc: 0, Addr: 16, Op: trace.Write})
	tr := s.Traffic()
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	if tr.Writebacks != 1 || tr.WritebackBytes != 8 {
		t.Errorf("dirty eviction must write back: %+v", tr)
	}
}

func TestFiniteLRUKeepsHotLine(t *testing.T) {
	s, _ := NewFinite(1, 8, 2)
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Read})  // A
	s.Access(trace.Ref{Proc: 0, Addr: 8, Op: trace.Read})  // B
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Read})  // A again (hot)
	s.Access(trace.Ref{Proc: 0, Addr: 16, Op: trace.Read}) // C evicts B
	fills := s.Traffic().Fills
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Read}) // A must still hit
	if s.Traffic().Fills != fills {
		t.Errorf("hot line was evicted by LRU")
	}
	s.Access(trace.Ref{Proc: 0, Addr: 8, Op: trace.Read}) // B must miss
	if s.Traffic().Fills != fills+1 {
		t.Errorf("cold line should have been evicted")
	}
}

func TestFiniteCoherenceStillWorks(t *testing.T) {
	s, _ := NewFinite(2, 8, 16)
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Read})
	s.Access(trace.Ref{Proc: 1, Addr: 0, Op: trace.Write})
	tr := s.Traffic()
	if tr.Invalidations != 1 {
		t.Errorf("write must invalidate the other copy: %+v", tr)
	}
	// Processor 0 rereads: writeback by 1 + refetch.
	before := tr.Bytes()
	s.Access(trace.Ref{Proc: 0, Addr: 0, Op: trace.Read})
	if s.Traffic().Bytes() != before+8+8 {
		t.Errorf("refetch accounting wrong: %+v", s.Traffic())
	}
}

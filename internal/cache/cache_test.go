package cache

import (
	"testing"

	"locusroute/internal/trace"
)

func ref(proc int, addr uint64, op trace.Op) trace.Ref {
	return trace.Ref{Proc: proc, Addr: addr, Op: op}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Errorf("zero processors must fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Errorf("zero line size must fail")
	}
	if _, err := New(4, 6); err == nil {
		t.Errorf("non-multiple-of-word line size must fail")
	}
	if _, err := New(4, 8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestColdReadMiss(t *testing.T) {
	s, _ := New(2, 8)
	s.Access(ref(0, 0, trace.Read))
	tr := s.Traffic()
	if tr.Fills != 1 || tr.FillBytes != 8 {
		t.Errorf("cold miss: %+v", tr)
	}
	// Second read to the same line: hit, no traffic.
	s.Access(ref(0, 4, trace.Read))
	if s.Traffic().Bytes() != 8 {
		t.Errorf("hit must not add traffic: %+v", s.Traffic())
	}
}

func TestFirstWriteToCleanCausesWordWrite(t *testing.T) {
	s, _ := New(2, 8)
	s.Access(ref(0, 0, trace.Read))  // fill clean
	s.Access(ref(0, 0, trace.Write)) // word write, line -> dirty
	tr := s.Traffic()
	if tr.WriteWords != 1 || tr.WriteWordBytes != WordSize {
		t.Errorf("word write missing: %+v", tr)
	}
	// Subsequent writes to the dirty line are free.
	s.Access(ref(0, 4, trace.Write))
	if s.Traffic().Bytes() != 8+WordSize {
		t.Errorf("write to dirty line must be free: %+v", s.Traffic())
	}
}

func TestWriteInvalidatesOtherCopies(t *testing.T) {
	s, _ := New(3, 8)
	s.Access(ref(0, 0, trace.Read))
	s.Access(ref(1, 0, trace.Read))
	s.Access(ref(2, 0, trace.Read))
	s.Access(ref(0, 0, trace.Write))
	tr := s.Traffic()
	if tr.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", tr.Invalidations)
	}
	// Processor 1 rereads: refetch fill (plus writeback of 0's dirty
	// copy).
	before := s.Traffic().Bytes()
	s.Access(ref(1, 0, trace.Read))
	tr = s.Traffic()
	if tr.Bytes() != before+8+8 {
		t.Errorf("refetch must cost writeback + fill: %+v", tr)
	}
	if tr.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", tr.Writebacks)
	}
	if s.AttributedRefetchBytes() != 8 {
		t.Errorf("refetch bytes = %d, want 8", s.AttributedRefetchBytes())
	}
}

func TestWriteMissFillsThenWrites(t *testing.T) {
	s, _ := New(2, 16)
	s.Access(ref(0, 0, trace.Write))
	tr := s.Traffic()
	if tr.FillBytes != 16 || tr.WriteWordBytes != WordSize {
		t.Errorf("write miss: %+v", tr)
	}
}

func TestPrivateDataNoCoherenceTraffic(t *testing.T) {
	// Two processors touching disjoint lines: only cold fills and word
	// writes, no invalidations, no writebacks, no refetches.
	s, _ := New(2, 8)
	for i := 0; i < 10; i++ {
		s.Access(ref(0, uint64(i*8), trace.Read))
		s.Access(ref(0, uint64(i*8), trace.Write))
		s.Access(ref(1, uint64(1000+i*8), trace.Read))
		s.Access(ref(1, uint64(1000+i*8), trace.Write))
	}
	tr := s.Traffic()
	if tr.Invalidations != 0 || tr.Writebacks != 0 || s.AttributedRefetchBytes() != 0 {
		t.Errorf("private data caused coherence traffic: %+v", tr)
	}
}

func TestLargerLinesMoreTrafficUnderSharing(t *testing.T) {
	// The paper's Table 3 shape: with fine-grain interleaved sharing,
	// doubling the line size increases total traffic.
	mkTrace := func() *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 500; i++ {
			addr := uint64((i * 4) % 256)
			tr.Append(trace.Ref{Proc: i % 4, Addr: addr, Op: trace.Write})
			tr.Append(trace.Ref{Proc: (i + 1) % 4, Addr: addr, Op: trace.Read})
		}
		return tr
	}
	var last int64 = -1
	for _, ls := range []int{4, 8, 16, 32} {
		tr, err := Replay(mkTrace(), 4, ls)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Bytes() <= last {
			t.Errorf("line %d: traffic %d did not grow from %d", ls, tr.Bytes(), last)
		}
		last = tr.Bytes()
	}
}

func TestPingPongWriteSharing(t *testing.T) {
	// Two processors alternately writing one word: each write after the
	// first by a processor is to an invalidated line -> writeback +
	// fill + word write every time.
	s, _ := New(2, 8)
	for i := 0; i < 4; i++ {
		s.Access(ref(0, 0, trace.Write))
		s.Access(ref(1, 0, trace.Write))
	}
	tr := s.Traffic()
	if tr.Invalidations < 7 {
		t.Errorf("ping-pong must invalidate every round: %+v", tr)
	}
	if s.AttributedWriteFraction() < 0.8 {
		t.Errorf("write-dominated workload: attributed write fraction = %f",
			s.AttributedWriteFraction())
	}
}

func TestReplayCountsRefs(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(ref(0, 0, trace.Read))
	tr.Append(ref(1, 8, trace.Write))
	got, err := Replay(tr, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Refs != 2 {
		t.Errorf("Refs = %d, want 2", got.Refs)
	}
}

func TestAccessPanicsOnBadProc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range processor must panic")
		}
	}()
	s, _ := New(2, 8)
	s.Access(ref(5, 0, trace.Read))
}

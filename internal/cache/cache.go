// Package cache simulates a bus-based Write Back with Invalidate cache
// coherence protocol (Archibald & Baer style) over a shared reference
// trace, and accounts the bus traffic in bytes — the shared memory side of
// the paper's traffic comparison (Section 5.2).
//
// Per the paper, caches are infinite (traffic is purely coherence and
// cold-miss traffic, not capacity misses) and traffic has three parts:
//
//  1. a processor's initial access to a location misses and brings the
//     line into its cache (a line fill);
//  2. the first write to a clean line causes a word write on the shared
//     bus, and every other cache holding the line invalidates its copy;
//  3. an access to a line that was invalidated refetches it from memory
//     (another line fill), with a dirty owner first writing the line
//     back.
package cache

import (
	"fmt"

	"locusroute/internal/obs"
	"locusroute/internal/trace"
)

// WordSize is the width in bytes of the bus word write caused by the
// first write to a clean line.
const WordSize = 4

// lineState is a per-(processor, line) coherence state.
type lineState uint8

const (
	invalid lineState = iota
	shared            // present and clean
	dirty             // present and modified (exclusive)
)

// Traffic is the bus-byte accounting of a simulation.
type Traffic struct {
	FillBytes      int64 // line fills (cold misses and refetches)
	WriteWordBytes int64 // word writes announcing a write to a clean line
	WritebackBytes int64 // dirty lines written back when another cache needs them
	Fills          int64
	WriteWords     int64
	Writebacks     int64
	Invalidations  int64 // copies invalidated in other caches
	Refs           int64
}

// Bytes returns total bus traffic in bytes.
func (t Traffic) Bytes() int64 { return t.FillBytes + t.WriteWordBytes + t.WritebackBytes }

// MBytes returns total bus traffic in megabytes (10^6 bytes, as the
// paper's tables report).
func (t Traffic) MBytes() float64 { return float64(t.Bytes()) / 1e6 }

// WriteFraction returns the fraction of bytes caused by writes (word
// writes, invalidation-induced refetches are not separable here, so this
// counts word writes and writebacks). The paper reports over 80% of
// shared memory bytes are caused by writes when refetches are attributed
// to the invalidating writes; see Simulator.AttributedWriteFraction for
// that attribution.
func (t Traffic) WriteFraction() float64 {
	b := t.Bytes()
	if b == 0 {
		return 0
	}
	return float64(t.WriteWordBytes+t.WritebackBytes) / float64(b)
}

// Simulator replays a trace against per-processor infinite caches.
type Simulator struct {
	lineSize int
	procs    int
	state    []map[uint64]lineState // per processor: line -> state
	// everIn[line] marks lines some cache has held, so refetch fills can
	// be distinguished from cold fills.
	coldDone map[uint64]map[int]bool
	// invalidatedBy attributes a later refetch to the write that killed
	// the line, for the writes-cause-most-traffic analysis.
	refetchBytes int64
	traffic      Traffic
}

// New builds a simulator for procs processors with the given cache line
// size in bytes (a positive multiple of WordSize).
func New(procs, lineSize int) (*Simulator, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("cache: processor count %d must be positive", procs)
	}
	if lineSize <= 0 || lineSize%WordSize != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a positive multiple of %d",
			lineSize, WordSize)
	}
	s := &Simulator{
		lineSize: lineSize,
		procs:    procs,
		state:    make([]map[uint64]lineState, procs),
		coldDone: make(map[uint64]map[int]bool),
	}
	for i := range s.state {
		s.state[i] = make(map[uint64]lineState)
	}
	return s, nil
}

// LineSize returns the configured line size in bytes.
func (s *Simulator) LineSize() int { return s.lineSize }

// Traffic returns the accumulated accounting.
func (s *Simulator) Traffic() Traffic { return s.traffic }

// AttributedRefetchBytes returns the fill bytes attributable to
// invalidations (refetches) rather than cold misses.
func (s *Simulator) AttributedRefetchBytes() int64 { return s.refetchBytes }

// AttributedWriteFraction returns the fraction of all bus bytes caused by
// writes when invalidation-induced refetches are charged to the writes
// that caused them — the paper's "over 80% of the bytes transferred...
// are caused by writes" statistic.
func (s *Simulator) AttributedWriteFraction() float64 {
	b := s.traffic.Bytes()
	if b == 0 {
		return 0
	}
	return float64(s.traffic.WriteWordBytes+s.traffic.WritebackBytes+s.refetchBytes) / float64(b)
}

// Doc renders the simulator's accumulated traffic as an observability
// document, including the refetch attribution only the simulator (not a
// bare Traffic) knows.
func (s *Simulator) Doc() obs.CacheDoc {
	t := s.traffic
	return obs.CacheDoc{
		LineSize:       s.lineSize,
		Refs:           t.Refs,
		Bytes:          t.Bytes(),
		FillBytes:      t.FillBytes,
		WriteWordBytes: t.WriteWordBytes,
		WritebackBytes: t.WritebackBytes,
		Fills:          t.Fills,
		WriteWords:     t.WriteWords,
		Writebacks:     t.Writebacks,
		Invalidations:  t.Invalidations,
		RefetchBytes:   s.refetchBytes,
		WriteFraction:  s.AttributedWriteFraction(),
	}
}

// Access replays one reference.
func (s *Simulator) Access(r trace.Ref) {
	if r.Proc < 0 || r.Proc >= s.procs {
		panic(fmt.Sprintf("cache: reference from processor %d of %d", r.Proc, s.procs))
	}
	s.traffic.Refs++
	line := r.Addr / uint64(s.lineSize)
	st := s.state[r.Proc][line]

	if st == invalid {
		// Miss: a dirty owner must write the line back first.
		s.writebackIfDirty(line, r.Proc)
		s.fill(line, r.Proc)
		st = shared
	}

	if r.Op == trace.Write && st != dirty {
		// First write to a clean line: word write on the bus, every
		// other copy invalidates.
		s.traffic.WriteWords++
		s.traffic.WriteWordBytes += WordSize
		for p := 0; p < s.procs; p++ {
			if p != r.Proc && s.state[p][line] != invalid {
				s.state[p][line] = invalid
				s.traffic.Invalidations++
			}
		}
		st = dirty
	}
	s.state[r.Proc][line] = st
}

func (s *Simulator) writebackIfDirty(line uint64, except int) {
	for p := 0; p < s.procs; p++ {
		if p != except && s.state[p][line] == dirty {
			s.state[p][line] = shared
			s.traffic.Writebacks++
			s.traffic.WritebackBytes += int64(s.lineSize)
		}
	}
}

func (s *Simulator) fill(line uint64, proc int) {
	s.traffic.Fills++
	s.traffic.FillBytes += int64(s.lineSize)
	had := s.coldDone[line]
	if had == nil {
		had = make(map[int]bool)
		s.coldDone[line] = had
	}
	if had[proc] {
		// This processor held the line before: the fill is a refetch
		// caused by an invalidation.
		s.refetchBytes += int64(s.lineSize)
	}
	had[proc] = true
}

// Replay runs an entire (time-ordered) trace and returns the traffic.
func Replay(t *trace.Trace, procs, lineSize int) (Traffic, error) {
	s, err := New(procs, lineSize)
	if err != nil {
		return Traffic{}, err
	}
	for _, r := range t.Refs {
		s.Access(r)
	}
	return s.Traffic(), nil
}

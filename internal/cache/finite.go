package cache

import (
	"container/list"
	"fmt"

	"locusroute/internal/trace"
)

// FiniteSimulator extends the infinite-cache coherence simulation with a
// bounded per-processor cache (fully associative, LRU replacement), the
// configuration the paper's footnote 3 sets aside: "a small cache will
// have a higher miss rate requiring more data fetches from main memory."
// It exists to quantify that footnote — capacity misses add traffic on
// top of the coherence traffic the infinite model isolates.
type FiniteSimulator struct {
	lineSize  int
	procs     int
	capacity  int // lines per processor cache
	state     []map[uint64]*finiteLine
	lru       []*list.List // front = most recent; values are line addrs
	coldDone  map[uint64]map[int]bool
	refetch   int64
	evictions int64
	traffic   Traffic
}

type finiteLine struct {
	st  lineState
	pos *list.Element
}

// NewFinite builds a finite-cache simulator with capacityLines lines per
// processor.
func NewFinite(procs, lineSize, capacityLines int) (*FiniteSimulator, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("cache: processor count %d must be positive", procs)
	}
	if lineSize <= 0 || lineSize%WordSize != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a positive multiple of %d",
			lineSize, WordSize)
	}
	if capacityLines <= 0 {
		return nil, fmt.Errorf("cache: capacity %d lines must be positive", capacityLines)
	}
	s := &FiniteSimulator{
		lineSize: lineSize,
		procs:    procs,
		capacity: capacityLines,
		state:    make([]map[uint64]*finiteLine, procs),
		lru:      make([]*list.List, procs),
		coldDone: make(map[uint64]map[int]bool),
	}
	for i := range s.state {
		s.state[i] = make(map[uint64]*finiteLine)
		s.lru[i] = list.New()
	}
	return s, nil
}

// Traffic returns the accumulated accounting.
func (s *FiniteSimulator) Traffic() Traffic { return s.traffic }

// Evictions returns the number of capacity evictions performed.
func (s *FiniteSimulator) Evictions() int64 { return s.evictions }

// Access replays one reference.
func (s *FiniteSimulator) Access(r trace.Ref) {
	if r.Proc < 0 || r.Proc >= s.procs {
		panic(fmt.Sprintf("cache: reference from processor %d of %d", r.Proc, s.procs))
	}
	s.traffic.Refs++
	line := r.Addr / uint64(s.lineSize)
	fl := s.state[r.Proc][line]

	if fl == nil || fl.st == invalid {
		// Miss: write back a remote dirty owner, fill, maybe evict.
		s.writebackIfDirty(line, r.Proc)
		s.fill(line, r.Proc)
		if fl == nil {
			fl = &finiteLine{}
			s.state[r.Proc][line] = fl
			fl.pos = s.lru[r.Proc].PushFront(line)
			s.evictIfNeeded(r.Proc)
		}
		fl.st = shared
	}
	s.lru[r.Proc].MoveToFront(fl.pos)

	if r.Op == trace.Write && fl.st != dirty {
		s.traffic.WriteWords++
		s.traffic.WriteWordBytes += WordSize
		for p := 0; p < s.procs; p++ {
			if p == r.Proc {
				continue
			}
			if other := s.state[p][line]; other != nil && other.st != invalid {
				other.st = invalid
				s.traffic.Invalidations++
			}
		}
		fl.st = dirty
	}
}

func (s *FiniteSimulator) evictIfNeeded(proc int) {
	for s.lru[proc].Len() > s.capacity {
		victim := s.lru[proc].Back()
		addr := victim.Value.(uint64)
		fl := s.state[proc][addr]
		if fl.st == dirty {
			// Dirty eviction writes the line back to memory.
			s.traffic.Writebacks++
			s.traffic.WritebackBytes += int64(s.lineSize)
		}
		s.lru[proc].Remove(victim)
		delete(s.state[proc], addr)
		s.evictions++
	}
}

func (s *FiniteSimulator) writebackIfDirty(line uint64, except int) {
	for p := 0; p < s.procs; p++ {
		if p == except {
			continue
		}
		if fl := s.state[p][line]; fl != nil && fl.st == dirty {
			fl.st = shared
			s.traffic.Writebacks++
			s.traffic.WritebackBytes += int64(s.lineSize)
		}
	}
}

func (s *FiniteSimulator) fill(line uint64, proc int) {
	s.traffic.Fills++
	s.traffic.FillBytes += int64(s.lineSize)
	had := s.coldDone[line]
	if had == nil {
		had = make(map[int]bool)
		s.coldDone[line] = had
	}
	if had[proc] {
		s.refetch += int64(s.lineSize)
	}
	had[proc] = true
}

// ReplayFinite runs a whole trace through a finite-cache simulation.
func ReplayFinite(t *trace.Trace, procs, lineSize, capacityLines int) (Traffic, error) {
	s, err := NewFinite(procs, lineSize, capacityLines)
	if err != nil {
		return Traffic{}, err
	}
	for _, r := range t.Refs {
		s.Access(r)
	}
	return s.Traffic(), nil
}

// Package cli is the shared flag plumbing of the locusroute commands:
// the -par/-json/-cpuprofile trio, benchmark/circuit selection, and the
// helpers that turn those flags into pools, collectors and snapshots.
// Every command registers the subsets it supports, so flag names,
// defaults, help text and validation stay uniform across paper,
// mproute, smtrace, locusroute and locusd.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"locusroute/internal/circuit"
	"locusroute/internal/obs"
	"locusroute/internal/par"
)

// ParErrorf is the uniform -par validation failure: every command
// rejects -par values below one with this exact text.
func ParErrorf(n int) error {
	return fmt.Errorf("-par must be at least 1 (got %d)", n)
}

// Common bundles the flags shared across commands. Zero value plus the
// Add* registrars is the intended use; Validate runs after flag.Parse.
type Common struct {
	// Par is the concurrent-simulation bound (-par). Defaults to
	// GOMAXPROCS; values below 1 are rejected by Validate.
	Par int
	// JSONPath is the -json observability document destination ("" =
	// off, "-" = stdout).
	JSONPath string
	// CPUProfile is the -cpuprofile destination ("" = off).
	CPUProfile string
	// Bench and Seed select a builtin benchmark circuit (-bench, -seed).
	Bench string
	Seed  int64
	// CircuitFile overrides the builtin benchmark with a circuit file
	// (-circuit), when registered.
	CircuitFile string

	name   string
	hasPar bool
}

// New returns a Common for the named command; the name prefixes the
// recorded -json command line.
func New(name string) *Common {
	return &Common{name: name}
}

// AddPar registers -par. The default is GOMAXPROCS; detail extends the
// shared help text with command-specific behaviour.
func (c *Common) AddPar(fs *flag.FlagSet, detail string) {
	help := "concurrent simulations (default GOMAXPROCS)"
	if detail != "" {
		help += "; " + detail
	}
	fs.IntVar(&c.Par, "par", runtime.GOMAXPROCS(0), help)
	c.hasPar = true
}

// AddObs registers -json and -cpuprofile.
func (c *Common) AddObs(fs *flag.FlagSet) {
	fs.StringVar(&c.JSONPath, "json", "", `write an observability JSON document to this file ("-" = stdout)`)
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
}

// AddBench registers -bench and -seed (builtin benchmark selection).
func (c *Common) AddBench(fs *flag.FlagSet) {
	fs.StringVar(&c.Bench, "bench", "bnrE", "builtin benchmark: bnrE or MDC")
	fs.Int64Var(&c.Seed, "seed", 1, "benchmark generator seed")
}

// AddCircuitFile registers -circuit (route a circuit file instead of a
// builtin benchmark).
func (c *Common) AddCircuitFile(fs *flag.FlagSet) {
	fs.StringVar(&c.CircuitFile, "circuit", "", "circuit file to route (text format; overrides -bench)")
}

// Validate checks the parsed flags; call it right after flag.Parse.
func (c *Common) Validate() error {
	if c.hasPar && c.Par < 1 {
		return ParErrorf(c.Par)
	}
	return nil
}

// Pool returns the worker pool sized by -par.
func (c *Common) Pool() *par.Pool { return par.New(c.Par) }

// Collector returns an enabled collector when -json was given, else nil
// (the disabled collector).
func (c *Common) Collector() *obs.Collector {
	if c.JSONPath == "" {
		return nil
	}
	return obs.NewCollector()
}

// StartProfile starts the CPU profile when -cpuprofile was given and
// returns the stop function (a no-op otherwise).
func (c *Common) StartProfile() (func(), error) {
	return obs.StartCPUProfile(c.CPUProfile)
}

// LoadCircuit loads the selected circuit: the -circuit file when
// registered and set, else the builtin -bench benchmark at -seed.
func (c *Common) LoadCircuit() (*circuit.Circuit, error) {
	if c.CircuitFile != "" {
		f, err := os.Open(c.CircuitFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Read(f)
	}
	switch c.Bench {
	case "bnrE":
		return circuit.Generate(circuit.BnrELike(c.Seed))
	case "MDC":
		return circuit.Generate(circuit.MDCLike(c.Seed))
	}
	return nil, fmt.Errorf("unknown benchmark %q (want bnrE or MDC)", c.Bench)
}

// Command reconstructs the invocation line recorded in -json documents.
func (c *Common) Command() string {
	return strings.Join(append([]string{c.name}, os.Args[1:]...), " ")
}

// WriteSnapshot writes the collector's document to the -json
// destination; a nil collector or unset -json is a no-op.
func (c *Common) WriteSnapshot(col *obs.Collector) error {
	if c.JSONPath == "" || !col.Enabled() {
		return nil
	}
	return col.Snapshot(c.Command()).WriteFile(c.JSONPath)
}

// Package cli is the shared flag plumbing of the locusroute commands:
// the -par/-json/-cpuprofile trio, benchmark/circuit selection, and the
// helpers that turn those flags into pools, collectors and snapshots.
// Every command registers the subsets it supports, so flag names,
// defaults, help text and validation stay uniform across paper,
// mproute, smtrace, locusroute and locusd.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/policy"
)

// ParErrorf is the uniform -par validation failure: every command
// rejects -par values below one with this exact text.
func ParErrorf(n int) error {
	return fmt.Errorf("-par must be at least 1 (got %d)", n)
}

// Common bundles the flags shared across commands. Zero value plus the
// Add* registrars is the intended use; Validate runs after flag.Parse.
type Common struct {
	// Par is the concurrent-simulation bound (-par). Defaults to
	// GOMAXPROCS; values below 1 are rejected by Validate.
	Par int
	// JSONPath is the -json observability document destination ("" =
	// off, "-" = stdout).
	JSONPath string
	// CPUProfile is the -cpuprofile destination ("" = off).
	CPUProfile string
	// Bench and Seed select a builtin benchmark circuit (-bench, -seed).
	Bench string
	Seed  int64
	// CircuitFile overrides the builtin benchmark with a circuit file
	// (-circuit), when registered.
	CircuitFile string
	// Policy flags (AddPolicy): the request-path chain of the serving
	// daemon. Zero values disable each element.
	AdmitFloor      time.Duration
	RateLimit       float64
	RateBurst       int
	BreakerFailures int
	BreakerCooldown time.Duration
	CacheSize       int
	EDF             bool

	name      string
	hasPar    bool
	hasPolicy bool
}

// New returns a Common for the named command; the name prefixes the
// recorded -json command line.
func New(name string) *Common {
	return &Common{name: name}
}

// AddPar registers -par. The default is GOMAXPROCS; detail extends the
// shared help text with command-specific behaviour.
func (c *Common) AddPar(fs *flag.FlagSet, detail string) {
	help := "concurrent simulations (default GOMAXPROCS)"
	if detail != "" {
		help += "; " + detail
	}
	fs.IntVar(&c.Par, "par", runtime.GOMAXPROCS(0), help)
	c.hasPar = true
}

// AddObs registers -json and -cpuprofile.
func (c *Common) AddObs(fs *flag.FlagSet) {
	fs.StringVar(&c.JSONPath, "json", "", `write an observability JSON document to this file ("-" = stdout)`)
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
}

// AddBench registers -bench and -seed (builtin benchmark selection).
func (c *Common) AddBench(fs *flag.FlagSet) {
	fs.StringVar(&c.Bench, "bench", "bnrE", "builtin benchmark: bnrE or MDC")
	fs.Int64Var(&c.Seed, "seed", 1, "benchmark generator seed")
}

// AddCircuitFile registers -circuit (route a circuit file instead of a
// builtin benchmark).
func (c *Common) AddCircuitFile(fs *flag.FlagSet) {
	fs.StringVar(&c.CircuitFile, "circuit", "", "circuit file to route (text format; overrides -bench)")
}

// AddPolicy registers the request-path policy-chain flags of the
// serving daemon. Every element defaults to off, keeping the chain nil
// (zero-cost) unless asked for.
func (c *Common) AddPolicy(fs *flag.FlagSet) {
	fs.DurationVar(&c.AdmitFloor, "admit-floor", 0,
		"reject requests whose deadline slack is below this floor (0 = no deadline admission)")
	fs.Float64Var(&c.RateLimit, "rate-limit", 0,
		"per-client sustained requests/second (0 = no rate limiting)")
	fs.IntVar(&c.RateBurst, "rate-burst", 0,
		"per-client burst size (0 = ceil of -rate-limit)")
	fs.IntVar(&c.BreakerFailures, "breaker-failures", 0,
		"consecutive deadline failures tripping the circuit breaker (0 = no breaker)")
	fs.DurationVar(&c.BreakerCooldown, "breaker-cooldown", time.Second,
		"how long a tripped breaker stays open before probing")
	fs.IntVar(&c.CacheSize, "cache-size", 0,
		"result cache entries, keyed by (circuit, wire set, cost epoch) (0 = no cache)")
	fs.BoolVar(&c.EDF, "edf", false,
		"earliest-deadline-first batch ordering and least-critical-first shedding")
	c.hasPolicy = true
}

// Policy returns the chain configuration built from the AddPolicy
// flags (the zero Config when AddPolicy was not registered).
func (c *Common) Policy() policy.Config {
	return policy.Config{
		AdmitFloor:      c.AdmitFloor,
		RatePerSec:      c.RateLimit,
		Burst:           c.RateBurst,
		BreakerFailures: c.BreakerFailures,
		BreakerCooldown: c.BreakerCooldown,
		CacheEntries:    c.CacheSize,
		EDF:             c.EDF,
	}
}

// Validate checks the parsed flags; call it right after flag.Parse.
func (c *Common) Validate() error {
	if c.hasPar && c.Par < 1 {
		return ParErrorf(c.Par)
	}
	if c.hasPolicy {
		if c.RateLimit < 0 {
			return fmt.Errorf("-rate-limit must be >= 0 (got %g)", c.RateLimit)
		}
		if c.RateBurst < 0 {
			return fmt.Errorf("-rate-burst must be >= 0 (got %d)", c.RateBurst)
		}
		if c.BreakerFailures < 0 {
			return fmt.Errorf("-breaker-failures must be >= 0 (got %d)", c.BreakerFailures)
		}
		if c.CacheSize < 0 {
			return fmt.Errorf("-cache-size must be >= 0 (got %d)", c.CacheSize)
		}
		if c.AdmitFloor < 0 {
			return fmt.Errorf("-admit-floor must be >= 0 (got %v)", c.AdmitFloor)
		}
	}
	return nil
}

// Pool returns the worker pool sized by -par.
func (c *Common) Pool() *par.Pool { return par.New(c.Par) }

// Collector returns an enabled collector when -json was given, else nil
// (the disabled collector).
func (c *Common) Collector() *obs.Collector {
	if c.JSONPath == "" {
		return nil
	}
	return obs.NewCollector()
}

// StartProfile starts the CPU profile when -cpuprofile was given and
// returns the stop function (a no-op otherwise).
func (c *Common) StartProfile() (func(), error) {
	return obs.StartCPUProfile(c.CPUProfile)
}

// LoadCircuit loads the selected circuit: the -circuit file when
// registered and set, else the builtin -bench benchmark at -seed.
func (c *Common) LoadCircuit() (*circuit.Circuit, error) {
	if c.CircuitFile != "" {
		f, err := os.Open(c.CircuitFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Read(f)
	}
	switch c.Bench {
	case "bnrE":
		return circuit.Generate(circuit.BnrELike(c.Seed))
	case "MDC":
		return circuit.Generate(circuit.MDCLike(c.Seed))
	}
	return nil, fmt.Errorf("unknown benchmark %q (want bnrE or MDC)", c.Bench)
}

// Command reconstructs the invocation line recorded in -json documents.
func (c *Common) Command() string {
	return strings.Join(append([]string{c.name}, os.Args[1:]...), " ")
}

// WriteSnapshot writes the collector's document to the -json
// destination; a nil collector or unset -json is a no-op.
func (c *Common) WriteSnapshot(col *obs.Collector) error {
	if c.JSONPath == "" || !col.Enabled() {
		return nil
	}
	return col.Snapshot(c.Command()).WriteFile(c.JSONPath)
}

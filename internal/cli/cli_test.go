package cli

import (
	"flag"
	"strings"
	"testing"
)

// parse builds a fresh flag set with every group registered and parses
// args.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	c := New("test")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.AddPar(fs, "")
	c.AddObs(fs)
	c.AddBench(fs)
	c.AddCircuitFile(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestParValidationUniform pins the shared -par contract: values below
// one fail with the exact text every command reports.
func TestParValidationUniform(t *testing.T) {
	for _, bad := range []int{0, -3} {
		c := parse(t)
		c.Par = bad
		err := c.Validate()
		if err == nil {
			t.Fatalf("par=%d accepted", bad)
		}
		want := "-par must be at least 1"
		if !strings.HasPrefix(err.Error(), want) {
			t.Errorf("par=%d error %q, want prefix %q", bad, err, want)
		}
	}
	if err := parse(t, "-par", "1").Validate(); err != nil {
		t.Errorf("par=1 rejected: %v", err)
	}
	// The default (GOMAXPROCS) always validates.
	if err := parse(t).Validate(); err != nil {
		t.Errorf("default par rejected: %v", err)
	}
}

// TestLoadCircuitSelection covers benchmark selection and the unknown
// benchmark error.
func TestLoadCircuitSelection(t *testing.T) {
	c := parse(t, "-bench", "MDC", "-seed", "3")
	circ, err := c.LoadCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if circ.Name != "MDC-like" {
		t.Errorf("loaded circuit %q, want MDC-like", circ.Name)
	}
	c = parse(t, "-bench", "nope")
	if _, err := c.LoadCircuit(); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestCollectorGating checks the collector only exists under -json.
func TestCollectorGating(t *testing.T) {
	if col := parse(t).Collector(); col.Enabled() {
		t.Error("collector enabled without -json")
	}
	if col := parse(t, "-json", "-").Collector(); !col.Enabled() {
		t.Error("collector disabled with -json")
	}
}

// TestPoolSizing checks the pool takes its capacity from -par.
func TestPoolSizing(t *testing.T) {
	c := parse(t, "-par", "3")
	if got := c.Pool().Workers(); got != 3 {
		t.Errorf("pool capacity %d, want 3", got)
	}
}

package experiments

import (
	"bytes"
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/obs"
	"locusroute/internal/par"
)

// TestRenderSetIdenticalAcrossPoolSizes is the parallel driver's
// determinism contract: the rendered tables AND the observability JSON
// document must be byte-identical whether one simulation runs at a time
// or eight do. The name list covers every merge shape: a plain MP sweep
// (1), paired cells (blocking, network), a traced SM run with concurrent
// cache replays (3), heterogeneous cells (comparison), post-processed
// rows (6), and a two-circuit compute-only table (locality).
func TestRenderSetIdenticalAcrossPoolSizes(t *testing.T) {
	names := []string{"1", "blocking", "3", "comparison", "6", "network", "locality"}
	bnrE := smallCircuit()
	mdc := circuit.MustGenerate(circuit.GenParams{
		Name: "small2", Channels: 8, Grids: 96, Wires: 90, MeanSpan: 12,
		LongFrac: 0.1, Seed: 6,
	})
	render := func(workers int) (string, []byte) {
		t.Helper()
		s := smallSetup()
		s.Pool = par.New(workers)
		s.Obs = obs.NewCollector()
		tables, err := RenderSet(names, bnrE, mdc, s)
		if err != nil {
			t.Fatal(err)
		}
		var text bytes.Buffer
		for _, tb := range tables {
			text.WriteString(tb)
			text.WriteByte('\n')
		}
		var doc bytes.Buffer
		if err := s.Obs.Snapshot("test").WriteJSON(&doc); err != nil {
			t.Fatal(err)
		}
		return text.String(), doc.Bytes()
	}
	text1, doc1 := render(1)
	text8, doc8 := render(8)
	if text1 != text8 {
		t.Errorf("rendered tables differ between -par 1 and -par 8:\n--- par 1 ---\n%s\n--- par 8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(doc1, doc8) {
		t.Errorf("observability documents differ between -par 1 and -par 8 (%d vs %d bytes)", len(doc1), len(doc8))
	}
}

// TestRenderUnknownTable checks the driver reports bad names as errors
// (the commands exit non-zero on them rather than panicking).
func TestRenderUnknownTable(t *testing.T) {
	if _, err := Render("no-such-table", smallCircuit(), smallCircuit(), smallSetup()); err == nil {
		t.Fatal("want an error for an unknown table name")
	}
}

package experiments

import (
	"fmt"

	"locusroute/internal/circuit"
)

// TableNames returns the tables `paper -all` regenerates, in print
// order. The robustness sweep is not included (it is far slower than
// everything else combined), nor is the traced critical-path
// comparison (its rows come from event-traced runs; keeping it out of
// -all keeps the golden output byte-identical with tracing off), nor
// the partition sweep (its Time column is real wall clock, which no
// golden output can pin); request any of them by name.
func TableNames() []string {
	return []string{
		"1", "2", "blocking", "mixed", "3", "comparison", "4", "5", "6",
		"locality", "packets", "distribution", "ownership", "network",
		"ordering", "topology",
	}
}

// RobustnessSeeds are the circuit generator seeds the named robustness
// table sweeps.
func RobustnessSeeds() []int64 { return []int64{1, 2, 3, 4, 5} }

// Render regenerates one named table (a TableNames entry, "robustness",
// "critpath", or "partition") and returns its rendered text. bnrE is
// the primary benchmark circuit; mdc joins it for the two-circuit
// locality tables.
func Render(name string, bnrE, mdc *circuit.Circuit, s Setup) (string, error) {
	both := []*circuit.Circuit{bnrE, mdc}
	switch name {
	case "1":
		rows, err := Table1(bnrE, s)
		return render(RenderTable1, rows, err)
	case "2":
		rows, err := Table2(bnrE, s)
		return render(RenderTable2, rows, err)
	case "3":
		rows, err := Table3(bnrE, s)
		return render(RenderTable3, rows, err)
	case "4":
		rows, err := Table4(both, s)
		return render(RenderTable4, rows, err)
	case "5":
		rows, err := Table5(both, s)
		return render(RenderTable5, rows, err)
	case "6":
		rows, err := Table6(bnrE, s)
		return render(RenderTable6, rows, err)
	case "blocking":
		rows, err := Blocking(bnrE, s)
		return render(RenderBlocking, rows, err)
	case "mixed":
		rows, err := Mixed(bnrE, s)
		return render(RenderMixed, rows, err)
	case "locality":
		rows, err := Locality(both, s)
		return render(RenderLocality, rows, err)
	case "comparison":
		rows, err := Comparison(bnrE, s)
		return render(RenderComparison, rows, err)
	case "packets":
		rows, err := PacketStructures(bnrE, s)
		return render(RenderPacketStructures, rows, err)
	case "distribution":
		rows, err := WireDistribution(bnrE, s)
		return render(RenderWireDistribution, rows, err)
	case "ownership":
		rows, err := CostArrayDistribution(bnrE, s)
		return render(RenderCostArrayDistribution, rows, err)
	case "ordering":
		rows, err := WireOrdering(bnrE, s)
		return render(RenderWireOrdering, rows, err)
	case "topology":
		rows, err := Topology(bnrE, s)
		return render(RenderTopology, rows, err)
	case "network":
		rows, err := NetworkSensitivity(bnrE, s)
		return render(RenderNetworkSensitivity, rows, err)
	case "robustness":
		rows, err := Robustness(RobustnessSeeds(), s)
		return render(RenderRobustness, rows, err)
	case "critpath":
		rows, err := CritPath(bnrE, s)
		return render(RenderCritPath, rows, err)
	case "partition":
		rows, err := Partition(bnrE, s, s.Partitions)
		return render(RenderPartition, rows, err)
	default:
		return "", fmt.Errorf("experiments: unknown table %q", name)
	}
}

func render[R any](fn func([]R) string, rows []R, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return fn(rows), nil
}

// RenderSet regenerates the named tables — each one an independent cell
// running concurrently — and returns the rendered text in name order.
// Observability documents are likewise adopted in name order, so both
// the printed tables and a -json document are byte-identical at every
// pool capacity.
//
// Table cells enter through a gate sized to the pool: an in-flight table
// pins its reference traces and simulators, and without the gate every
// table starts at once, their leaves interleave through the pool, and no
// table finishes (or frees anything) until near the end of the run. The
// gate keeps at most pool-many tables' state live, which is what bounds
// `paper -all` peak memory near the serial driver's.
func RenderSet(names []string, bnrE, mdc *circuit.Circuit, s Setup) ([]string, error) {
	return gatedCells(s, names, func(name string, sub Setup) (string, error) {
		return Render(name, bnrE, mdc, sub)
	})
}

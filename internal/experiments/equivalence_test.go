package experiments

import (
	"fmt"
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

// quality is the (circuit height, occupancy factor) pair every backend
// reports.
type quality struct{ Height, Occupancy int64 }

// equivalenceGolden pins the routing quality of every execution backend
// on three seeded bnrE-like circuits. The values are produced by the one
// shared routing kernel, so any change that perturbs candidate
// enumeration order, tie-breaking, or the work count shows up here
// immediately — across all four backends at once.
//
// The live backends run with one worker (their only deterministic
// configuration); the traced SM and DES MP runtimes are deterministic at
// any processor count and run with four.
var equivalenceGolden = map[int64]map[string]quality{
	1: {
		"sequential":       {51, 7542},
		"sm-live-1p":       {51, 7542},
		"sm-traced-4p":     {52, 7039},
		"mp-des-4p":        {51, 7677},
		"mp-des-4p-wire":   {53, 7682},
		"mp-des-4p-region": {52, 7699},
		"mp-live-1p":       {51, 7542},
	},
	2: {
		"sequential":       {49, 7307},
		"sm-live-1p":       {49, 7307},
		"sm-traced-4p":     {50, 7108},
		"mp-des-4p":        {50, 7250},
		"mp-des-4p-wire":   {48, 7218},
		"mp-des-4p-region": {49, 7187},
		"mp-live-1p":       {49, 7307},
	},
	3: {
		"sequential":       {50, 6767},
		"sm-live-1p":       {50, 6767},
		"sm-traced-4p":     {52, 6221},
		"mp-des-4p":        {51, 6679},
		"mp-des-4p-wire":   {51, 6776},
		"mp-des-4p-region": {50, 6739},
		"mp-live-1p":       {50, 6767},
	},
}

func equivCircuit(seed int64) *circuit.Circuit {
	return circuit.MustGenerate(circuit.GenParams{
		Name: "equiv", Channels: 10, Grids: 160, Wires: 180, MeanSpan: 20, Seed: seed,
	})
}

// TestCrossBackendEquivalence routes the same seeded circuits through
// sequential, shared memory (live and traced), and message passing (DES
// and live) and checks each against its golden quality values. Each
// seed is an independent unit of work and runs as a parallel subtest.
func TestCrossBackendEquivalence(t *testing.T) {
	for seed, golden := range equivalenceGolden {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			testCrossBackendEquivalence(t, seed, golden)
		})
	}
}

func testCrossBackendEquivalence(t *testing.T, seed int64, golden map[string]quality) {
	c := equivCircuit(seed)
	params := route.DefaultParams()
	params.Iterations = 2

	got := make(map[string]quality)

	seq, _ := route.Sequential(c, params)
	got["sequential"] = quality{seq.CircuitHeight, seq.Occupancy}

	smLive, err := sm.RunLive(c, sm.Config{Procs: 1, Router: params})
	if err != nil {
		t.Fatalf("seed %d: sm.RunLive: %v", seed, err)
	}
	got["sm-live-1p"] = quality{smLive.CircuitHeight, smLive.Occupancy}

	smTr, _, err := sm.RunTraced(c, sm.Config{Procs: 4, Router: params})
	if err != nil {
		t.Fatalf("seed %d: sm.RunTraced: %v", seed, err)
	}
	got["sm-traced-4p"] = quality{smTr.CircuitHeight, smTr.Occupancy}

	part4, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatalf("seed %d: partition: %v", seed, err)
	}
	cfg4 := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	cfg4.Procs = 4
	cfg4.Router = params
	des, err := mp.Run(c, assign.AssignThreshold(c, part4, 1000), cfg4)
	if err != nil {
		t.Fatalf("seed %d: mp.Run: %v", seed, err)
	}
	got["mp-des-4p"] = quality{des.CircuitHeight, des.Occupancy}

	// The packet-structure ablations ride the same DES runtime and
	// protocol; pinning them here catches changes that perturb only
	// the wire-based or whole-region update paths.
	for name, structure := range map[string]mp.PacketStructure{
		"mp-des-4p-wire":   mp.StructureWireBased,
		"mp-des-4p-region": mp.StructureWholeRegion,
	} {
		cfgS := mp.DefaultConfig(mp.SenderInitiated(2, 10))
		cfgS.Procs = 4
		cfgS.Router = params
		cfgS.Packets = structure
		res, err := mp.Run(c, assign.AssignThreshold(c, part4, 1000), cfgS)
		if err != nil {
			t.Fatalf("seed %d: mp.Run %s: %v", seed, name, err)
		}
		got[name] = quality{res.CircuitHeight, res.Occupancy}
	}

	part1, err := geom.NewPartition(c.Grid, 1, 1)
	if err != nil {
		t.Fatalf("seed %d: partition 1x1: %v", seed, err)
	}
	cfg1 := mp.DefaultConfig(mp.SenderInitiated(2, 10))
	cfg1.Procs = 1
	cfg1.Router = params
	live, err := mp.RunLive(c, assign.AssignThreshold(c, part1, 1000), cfg1)
	if err != nil {
		t.Fatalf("seed %d: mp.RunLive: %v", seed, err)
	}
	got["mp-live-1p"] = quality{live.CircuitHeight, live.Occupancy}

	for backend, want := range golden {
		if got[backend] != want {
			t.Errorf("seed %d %s: (height, occupancy) = %v, golden %v",
				seed, backend, got[backend], want)
		}
	}

	// A single worker removes all interference, so the live backends
	// must reproduce the sequential reference exactly — the strongest
	// statement that all four backends share one kernel.
	for _, backend := range []string{"sm-live-1p", "mp-live-1p"} {
		if got[backend] != got["sequential"] {
			t.Errorf("seed %d: %s %v != sequential %v",
				seed, backend, got[backend], got["sequential"])
		}
	}
}

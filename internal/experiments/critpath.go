package experiments

import (
	"fmt"
	"io"

	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/tracev"
)

// --- Critical-path analysis (tracev consumer) ----------------------------

// CritPathRow is one traced run's critical-path attribution: how the
// run's simulated time splits across categories *on the path that sets
// it*, rather than in aggregate across nodes (which is what the obs
// per-node clocks report).
type CritPathRow struct {
	Label    string
	TotalS   float64
	ComputeS float64
	PacketS  float64
	BlockedS float64
	BarrierS float64
	NetworkS float64
	Hops     int
	Steps    int
}

// critPathTasks returns the configurations the critical-path table
// compares: the Section 5.1.3 blocking/non-blocking pairs, where blocked
// time should appear on the path only for the blocking runs, and the
// Section 4.3.1 packet-structure alternatives, where whole-region
// packets shift path time from compute to packet handling.
func critPathTasks() []critTask {
	var tasks []critTask
	for _, rrd := range []int{5, 10} {
		tasks = append(tasks,
			critTask{label: fmt.Sprintf("RRD=%d non-blocking", rrd), strategy: mp.ReceiverInitiated(1, rrd, false)},
			critTask{label: fmt.Sprintf("RRD=%d blocking", rrd), strategy: mp.ReceiverInitiated(1, rrd, true)})
	}
	for _, structure := range []mp.PacketStructure{
		mp.StructureBbox, mp.StructureWireBased, mp.StructureWholeRegion,
	} {
		tasks = append(tasks, critTask{
			label:    "SI " + structure.String(),
			strategy: Table4Strategy(),
			packets:  structure,
		})
	}
	return tasks
}

type critTask struct {
	label    string
	strategy mp.Strategy
	packets  mp.PacketStructure
}

// CritPath runs each configuration with event tracing and extracts the
// critical path from its trace. Every cell owns a private tracer —
// tracing is confined to one DES run — so the cells fan out through the
// pool like any other table and the rows are deterministic at every
// capacity.
func CritPath(c *circuit.Circuit, s Setup) ([]CritPathRow, error) {
	return cells(s, critPathTasks(), func(t critTask, sub Setup) (CritPathRow, error) {
		cfg := mp.DefaultConfig(t.strategy)
		cfg.Procs = sub.Procs
		cfg.Router = sub.routerParams()
		cfg.Packets = t.packets
		cfg.Trace = tracev.New(0)
		asn, err := sub.assignment(c)
		if err != nil {
			return CritPathRow{}, err
		}
		if _, err := runConfigured(c, sub, cfg, asn, "critpath/"+t.label); err != nil {
			return CritPathRow{}, err
		}
		cp, err := tracev.Analyze(cfg.Trace.Events())
		if err != nil {
			return CritPathRow{}, fmt.Errorf("experiments: critical path %q: %w", t.label, err)
		}
		return CritPathRow{
			Label:    t.label,
			TotalS:   float64(cp.TotalNs) / 1e9,
			ComputeS: cp.Seconds(tracev.CatCompute),
			PacketS:  cp.Seconds(tracev.CatPacket),
			BlockedS: cp.Seconds(tracev.CatBlocked),
			BarrierS: cp.Seconds(tracev.CatBarrier),
			NetworkS: cp.Seconds(tracev.CatNetwork),
			Hops:     cp.Hops,
			Steps:    len(cp.Steps),
		}, nil
	})
}

// RenderCritPath renders the critical-path comparison.
func RenderCritPath(rows []CritPathRow) string {
	t := metrics.NewTable("Critical path: where the time that sets the run goes (s on path)",
		"Schedule", "Time (s)", "Compute", "Packet", "Blocked", "Barrier", "Network", "Hops")
	for _, r := range rows {
		t.Add(r.Label,
			metrics.Seconds(r.TotalS),
			fmt.Sprintf("%.3f", r.ComputeS),
			fmt.Sprintf("%.3f", r.PacketS),
			fmt.Sprintf("%.3f", r.BlockedS),
			fmt.Sprintf("%.3f", r.BarrierS),
			fmt.Sprintf("%.3f", r.NetworkS),
			fmt.Sprintf("%d", r.Hops))
	}
	return t.String()
}

// WriteTrace runs the paper's standard sender initiated schedule on c
// with event tracing and writes the run's Chrome trace-event document to
// w (open it at ui.perfetto.dev). It returns the run's critical path so
// the caller can print a summary next to the file. The traced run is a
// single leaf simulation with a private tracer; callers that also fan
// out other work must keep the trace-producing run serial (cmd/paper
// rejects -trace with -par > 1).
func WriteTrace(c *circuit.Circuit, s Setup, w io.Writer) (*tracev.CriticalPath, error) {
	cfg := mp.DefaultConfig(Table4Strategy())
	cfg.Procs = s.Procs
	cfg.Router = s.routerParams()
	cfg.Trace = tracev.New(0)
	asn, err := s.assignment(c)
	if err != nil {
		return nil, err
	}
	if _, err := runConfigured(c, s, cfg, asn, "trace/"+c.Name); err != nil {
		return nil, err
	}
	if err := cfg.Trace.WriteChrome(w, mp.ChromeOptions(c.Name, cfg.Procs)); err != nil {
		return nil, fmt.Errorf("experiments: write trace: %w", err)
	}
	cp, err := tracev.Analyze(cfg.Trace.Events())
	if err != nil {
		return nil, fmt.Errorf("experiments: critical path: %w", err)
	}
	return cp, nil
}

package experiments

import (
	"fmt"

	"locusroute/internal/circuit"
	"locusroute/internal/mesh"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/sim"
)

// NetworkRow is one configuration of the blocking-penalty sweep.
type NetworkRow struct {
	Label       string
	NonBlockSec float64
	BlockSec    float64
	// Penalty is blocking time over non-blocking time (1.0 = free).
	Penalty float64
}

// NetworkSensitivity tests the paper's Section 5.1.3 prediction: "with a
// higher performance interconnection network, lower overhead on message
// reception, and a better heuristic for requesting updates, the blocking
// strategy would probably become more effective."
//
// The sweep separates the prediction's ingredients. Speeding the network
// alone barely moves the penalty — the wait is dominated by the
// responder's service latency (requests are only handled between wires),
// not by transit. The "better heuristic" — requesting updates further in
// advance — is what closes the gap: with enough lookahead the responses
// are already home when the blocking check runs.
//
// Each (configuration, blocking mode) pair is an independent cell; rows
// are assembled from the pairs after the fan-out.
func NetworkSensitivity(c *circuit.Circuit, s Setup) ([]NetworkRow, error) {
	type cfgRow struct {
		label string
		ahead int
		net   mesh.Params
	}
	ametek := mesh.DefaultParams()
	fast := mesh.Params{HopTime: 6 * sim.Nanosecond, ProcessTime: 125 * sim.Nanosecond}
	rows := []cfgRow{
		{"ahead=1, Ametek network", 1, ametek},
		{"ahead=5 (paper), Ametek network", 5, ametek},
		{"ahead=5, 16x faster network", 5, fast},
		{"ahead=20, Ametek network", 20, ametek},
		{"ahead=60, Ametek network", 60, ametek},
	}
	type task struct {
		row      cfgRow
		blocking bool
	}
	var tasks []task
	for _, row := range rows {
		tasks = append(tasks, task{row, false}, task{row, true})
	}
	secs, err := cells(s, tasks, func(t task, sub Setup) (float64, error) {
		cfg := mp.DefaultConfig(mp.ReceiverInitiated(1, 5, t.blocking))
		cfg.Procs = sub.Procs
		cfg.Router = sub.routerParams()
		cfg.Net = t.row.net
		cfg.RequestAhead = t.row.ahead
		mode := "non-blocking"
		if t.blocking {
			mode = "blocking"
		}
		asn, err := sub.assignment(c)
		if err != nil {
			return 0, err
		}
		res, err := runConfigured(c, sub, cfg, asn, fmt.Sprintf("network/%s, %s", t.row.label, mode))
		if err != nil {
			return 0, err
		}
		return res.Time.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []NetworkRow
	for i, row := range rows {
		nb, bl := secs[2*i], secs[2*i+1]
		out = append(out, NetworkRow{
			Label:       row.label,
			NonBlockSec: nb,
			BlockSec:    bl,
			Penalty:     bl / nb,
		})
	}
	return out, nil
}

// RenderNetworkSensitivity renders the blocking-penalty sweep.
func RenderNetworkSensitivity(rows []NetworkRow) string {
	t := metrics.NewTable(
		"Section 5.1.3 prediction: what shrinks the blocking penalty (RLD=1 RRD=5)",
		"Configuration", "Non-blocking (s)", "Blocking (s)", "Penalty")
	for _, r := range rows {
		t.Add(r.Label, metrics.Seconds(r.NonBlockSec), metrics.Seconds(r.BlockSec),
			metrics.Ratio(r.Penalty))
	}
	return t.String()
}

// TopologyRow is one interconnect-shape measurement.
type TopologyRow struct {
	Label      string
	CktHt      int64
	MBytes     float64
	Seconds    float64
	Contention float64 // total head blocking, seconds
}

// Topology runs the same 16-processor workload over different k-ary
// n-cube shapes — CBS's general form. The cost array partition (and so
// the protocol's behaviour) is identical; only transport latency and
// contention change. The hypercube's shorter diameter and extra links
// reduce contention; the ring concentrates everything on few links.
func Topology(c *circuit.Circuit, s Setup) ([]TopologyRow, error) {
	type shape struct {
		label string
		dims  []int
	}
	shapes := []shape{
		{"2-D mesh (paper)", nil}, // default squarest 2-D network
		{"ring", []int{s.Procs}},
	}
	// A binary hypercube exists when the processor count is a power of
	// two.
	if s.Procs&(s.Procs-1) == 0 && s.Procs > 1 {
		var dims []int
		for n := s.Procs; n > 1; n /= 2 {
			dims = append(dims, 2)
		}
		shapes = append(shapes, shape{"binary hypercube", dims})
	}
	return cells(s, shapes, func(sh shape, sub Setup) (TopologyRow, error) {
		cfg := mp.DefaultConfig(Table4Strategy())
		cfg.Procs = sub.Procs
		cfg.Router = sub.routerParams()
		cfg.Topology = sh.dims
		asn, err := sub.assignment(c)
		if err != nil {
			return TopologyRow{}, err
		}
		res, err := runConfigured(c, sub, cfg, asn, "topology/"+sh.label)
		if err != nil {
			return TopologyRow{}, err
		}
		return TopologyRow{
			Label:      sh.label,
			CktHt:      res.CircuitHeight,
			MBytes:     res.MBytes(),
			Seconds:    res.Time.Seconds(),
			Contention: res.Net.ContentionDelay.Seconds(),
		}, nil
	})
}

// RenderTopology renders the interconnect-shape sweep.
func RenderTopology(rows []TopologyRow) string {
	t := metrics.NewTable("Extension: interconnect topology (k-ary n-cube shapes, 16 processors)",
		"Topology", "Ckt Ht.", "MBytes Xfrd.", "Time (s)", "Contention (s)")
	for _, r := range rows {
		t.Add(r.Label, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes),
			metrics.Seconds(r.Seconds), fmt.Sprintf("%.6f", r.Contention))
	}
	return t.String()
}

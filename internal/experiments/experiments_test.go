package experiments

import (
	"strings"
	"testing"

	"locusroute/internal/circuit"
)

// smallSetup keeps unit-test experiment runs quick; the full-scale paper
// tables run in the benchmarks and cmd/paper.
func smallSetup() Setup {
	return Setup{Procs: 4, Iterations: 2, Threshold: 1000}
}

func smallCircuit() *circuit.Circuit {
	return circuit.MustGenerate(circuit.GenParams{
		Name: "small", Channels: 8, Grids: 96, Wires: 90, MeanSpan: 12,
		LongFrac: 0.1, Seed: 5,
	})
}

// must unwraps a driver result, failing the test on error. Curried so a
// multi-value driver call can feed it directly: must(Table1(c, s))(t).
func must[R any](rows []R, err error) func(testing.TB) []R {
	return func(tb testing.TB) []R {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		return rows
	}
}

func TestTable1ShapeSmall(t *testing.T) {
	rows := must(Table1(smallCircuit(), smallSetup()))(t)
	if len(rows) != 12 {
		t.Fatalf("Table 1 must have 12 rows, got %d", len(rows))
	}
	// Within each SendRmtData group, traffic decreases as SendLocData
	// updates become rarer (1 -> 20 wires between updates).
	for g := 0; g < 3; g++ {
		first, last := rows[g*4], rows[g*4+3]
		if first.MBytes <= last.MBytes {
			t.Errorf("group %d: SLD=1 traffic %.3f must exceed SLD=20 traffic %.3f",
				g, first.MBytes, last.MBytes)
		}
		if first.Seconds < last.Seconds {
			t.Errorf("group %d: frequent updates should not be faster (%.3f vs %.3f)",
				g, first.Seconds, last.Seconds)
		}
		// Sublinear: 20x fewer updates must not mean anywhere near 20x
		// less traffic (the bounding box slack effect).
		if first.MBytes/last.MBytes > 15 {
			t.Errorf("group %d: traffic scaling %.1fx is not sublinear",
				g, first.MBytes/last.MBytes)
		}
	}
}

func TestTable2ShapeSmall(t *testing.T) {
	rows := must(Table2(smallCircuit(), smallSetup()))(t)
	if len(rows) != 9 {
		t.Fatalf("Table 2 must have 9 rows, got %d", len(rows))
	}
	for g := 0; g < 3; g++ {
		r5, r30 := rows[g*3], rows[g*3+2]
		if r5.MBytes <= r30.MBytes {
			t.Errorf("group %d: RRD=5 traffic %.3f must exceed RRD=30 traffic %.3f",
				g, r5.MBytes, r30.MBytes)
		}
	}
}

func TestSenderReceiverTrafficOrdering(t *testing.T) {
	c := smallCircuit()
	s := smallSetup()
	t1 := must(Table1(c, s))(t)
	t2 := must(Table2(c, s))(t)
	var maxReceiver, minSender float64
	minSender = 1e18
	for _, r := range t1 {
		if r.MBytes < minSender {
			minSender = r.MBytes
		}
	}
	for _, r := range t2 {
		if r.MBytes > maxReceiver {
			maxReceiver = r.MBytes
		}
	}
	// The paper: sender initiated traffic is roughly an order of
	// magnitude above receiver initiated. At minimum the families must
	// be well separated at their extremes.
	if t1[0].MBytes <= t2[len(t2)-1].MBytes*5 {
		t.Errorf("sender max %.3f must be well above receiver min %.3f",
			t1[0].MBytes, t2[len(t2)-1].MBytes)
	}
	_ = maxReceiver
	_ = minSender
}

func TestBlockingShapeSmall(t *testing.T) {
	rows := must(Blocking(smallCircuit(), smallSetup()))(t)
	if len(rows)%2 != 0 {
		t.Fatalf("blocking rows must pair up")
	}
	for i := 0; i < len(rows); i += 2 {
		nb, bl := rows[i], rows[i+1]
		if bl.Seconds < nb.Seconds {
			t.Errorf("blocking %q (%.3fs) must not beat non-blocking (%.3fs)",
				bl.Label, bl.Seconds, nb.Seconds)
		}
		// Quality about the same (the paper's observation): within 15%.
		lo, hi := float64(nb.CktHt)*0.85, float64(nb.CktHt)*1.15
		if float64(bl.CktHt) < lo || float64(bl.CktHt) > hi {
			t.Errorf("blocking quality %d far from non-blocking %d", bl.CktHt, nb.CktHt)
		}
	}
}

func TestMixedShapeSmall(t *testing.T) {
	rows := must(Mixed(smallCircuit(), smallSetup()))(t)
	if len(rows) != 3 {
		t.Fatalf("mixed comparison must have 3 rows")
	}
	sender, receiver, mixed := rows[0], rows[1], rows[2]
	// The paper: mixed schemes improve the occupancy factor over either
	// pure scheme, at traffic below the frequent sender schedule.
	if mixed.Occupancy > sender.Occupancy || mixed.Occupancy > receiver.Occupancy {
		t.Errorf("mixed occupancy %d must beat pure sender %d and receiver %d",
			mixed.Occupancy, sender.Occupancy, receiver.Occupancy)
	}
	// At full scale mixed traffic undercuts the frequent sender schedule;
	// at this reduced scale allow near-equality.
	if mixed.MBytes > sender.MBytes*1.1 {
		t.Errorf("mixed traffic %.3f must not exceed the frequent sender schedule %.3f",
			mixed.MBytes, sender.MBytes)
	}
}

func TestTable3ShapeSmall(t *testing.T) {
	rows := must(Table3(smallCircuit(), smallSetup()))(t)
	if len(rows) != 4 {
		t.Fatalf("Table 3 must have 4 rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MBytes <= rows[i-1].MBytes {
			t.Errorf("traffic must grow with line size: %v then %v",
				rows[i-1], rows[i])
		}
	}
	// Significant growth overall (paper: more than 6x from 4 to 32).
	if rows[3].MBytes/rows[0].MBytes < 2 {
		t.Errorf("traffic growth %.1fx from 4B to 32B lines is too weak",
			rows[3].MBytes/rows[0].MBytes)
	}
	// Writes dominate the bus bytes (paper: over 80%).
	for _, r := range rows {
		if r.WriteFraction < 0.6 {
			t.Errorf("line %d: write fraction %.2f too low", r.LineSize, r.WriteFraction)
		}
	}
}

func TestTable4ShapeSmall(t *testing.T) {
	c := smallCircuit()
	rows := must(Table4([]*circuit.Circuit{c}, smallSetup()))(t)
	if len(rows) != 4 {
		t.Fatalf("Table 4 must have 4 rows per circuit")
	}
	byMethod := map[string]Table4Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	rr := byMethod["round robin"]
	inf := byMethod["ThresholdCost = inf."]
	t30 := byMethod["ThresholdCost = 30"]
	// Locality must not make quality worse than round robin (the paper:
	// it improves it by up to 5%).
	if inf.CktHt > rr.CktHt+2 {
		t.Errorf("pure locality quality %d worse than round robin %d", inf.CktHt, rr.CktHt)
	}
	// Pure locality suffers the load imbalance: worst (or tied worst)
	// execution time; the balanced threshold is fastest.
	if inf.Seconds < t30.Seconds {
		t.Errorf("pure locality (%.3fs) must not beat the balanced threshold (%.3fs)",
			inf.Seconds, t30.Seconds)
	}
}

func TestTable6ShapeSmall(t *testing.T) {
	s := smallSetup()
	rows := must(Table6(smallCircuit(), s))(t)
	if len(rows) != 4 {
		t.Fatalf("Table 6 must have 4 rows")
	}
	// Time decreases monotonically with processors.
	for i := 1; i < len(rows); i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Errorf("time must fall with processors: %d procs %.3fs vs %d procs %.3fs",
				rows[i].Procs, rows[i].Seconds, rows[i-1].Procs, rows[i-1].Seconds)
		}
	}
	// Quality does not improve with more processors (staleness).
	if rows[3].CktHt < rows[0].CktHt-2 {
		t.Errorf("16-proc quality %d markedly better than 2-proc %d",
			rows[3].CktHt, rows[0].CktHt)
	}
	// Speedup at the largest count is real (> half of linear).
	last := rows[len(rows)-1]
	if last.Speedup < float64(last.Procs)/4 {
		t.Errorf("speedup %.1f at %d procs is implausibly low", last.Speedup, last.Procs)
	}
}

func TestLocalityShapeSmall(t *testing.T) {
	c := smallCircuit()
	rows := must(Locality([]*circuit.Circuit{c}, smallSetup()))(t)
	byMethod := map[string]float64{}
	for _, r := range rows {
		byMethod[r.Method] = r.Measure
	}
	if byMethod["ThresholdCost = inf."] >= byMethod["round robin"] {
		t.Errorf("pure locality measure %.2f must beat round robin %.2f",
			byMethod["ThresholdCost = inf."], byMethod["round robin"])
	}
}

func TestComparisonShapeSmall(t *testing.T) {
	rows := must(Comparison(smallCircuit(), smallSetup()))(t)
	if len(rows) != 3 {
		t.Fatalf("comparison must have 3 rows")
	}
	smRow, snd, rcv := rows[0], rows[1], rows[2]
	// The paper's traffic cascade: shared memory >> sender initiated >
	// receiver initiated.
	if smRow.MBytes <= snd.MBytes*2 {
		t.Errorf("SM traffic %.3f must be well above sender MP %.3f", smRow.MBytes, snd.MBytes)
	}
	if snd.MBytes <= rcv.MBytes {
		t.Errorf("sender MP traffic %.3f must exceed receiver MP %.3f", snd.MBytes, rcv.MBytes)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	c := smallCircuit()
	s := smallSetup()
	outs := []string{
		RenderTable1(must(Table1(c, s))(t)[:2]),
		RenderTable2(must(Table2(c, s))(t)[:2]),
		RenderTable3(must(Table3(c, s))(t)),
		RenderTable4(must(Table4([]*circuit.Circuit{c}, s))(t)),
		RenderTable5(must(Table5([]*circuit.Circuit{c}, s))(t)),
		RenderTable6(must(Table6(c, s))(t)),
		RenderBlocking(must(Blocking(c, s))(t)),
		RenderMixed(must(Mixed(c, s))(t)),
		RenderLocality(must(Locality([]*circuit.Circuit{c}, s))(t)),
		RenderComparison(must(Comparison(c, s))(t)),
	}
	for i, out := range outs {
		if !strings.Contains(out, "\n---") && !strings.Contains(out, "--") {
			t.Errorf("render %d produced no table separator:\n%s", i, out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("render %d too short:\n%s", i, out)
		}
	}
}

func TestBenchmarkCircuitsMatchPaperDimensions(t *testing.T) {
	b := BnrE()
	if len(b.Wires) != 420 || b.Grid.Channels != 10 || b.Grid.Grids != 341 {
		t.Errorf("bnrE-like shape wrong: %d wires, %dx%d", len(b.Wires), b.Grid.Channels, b.Grid.Grids)
	}
	m := MDC()
	if len(m.Wires) != 573 || m.Grid.Channels != 12 || m.Grid.Grids != 386 {
		t.Errorf("MDC-like shape wrong: %d wires, %dx%d", len(m.Wires), m.Grid.Channels, m.Grid.Grids)
	}
}

func TestTable5ShapeSmall(t *testing.T) {
	c := smallCircuit()
	rows := must(Table5([]*circuit.Circuit{c}, smallSetup()))(t)
	if len(rows) != 4 {
		t.Fatalf("Table 5 must have 4 rows per circuit")
	}
	byMethod := map[string]Table5Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	// Locality reduces coherence traffic relative to round robin.
	if byMethod["ThresholdCost = inf."].MBytes >= byMethod["round robin"].MBytes {
		t.Errorf("local SM traffic %.3f must undercut round robin %.3f",
			byMethod["ThresholdCost = inf."].MBytes, byMethod["round robin"].MBytes)
	}
}

func TestRobustnessSweepSmall(t *testing.T) {
	// A single-seed sweep exercises the plumbing; the full sweep runs in
	// cmd/paper -table robustness.
	s := smallSetup()
	rows := must(Robustness([]int64{2}, s))(t)
	if len(rows) != 5 {
		t.Fatalf("want 5 claims, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != 1 {
			t.Errorf("claim %q total = %d, want 1", r.Claim, r.Total)
		}
		if r.Margin <= 0 {
			t.Errorf("claim %q margin = %f", r.Claim, r.Margin)
		}
	}
	out := RenderRobustness(rows)
	if len(out) == 0 {
		t.Errorf("empty render")
	}
}

func TestAblationsSmall(t *testing.T) {
	c := smallCircuit()
	s := smallSetup()

	packets := must(PacketStructures(c, s))(t)
	if len(packets) != 3 {
		t.Fatalf("want 3 packet structures")
	}
	var bbox, whole PacketRow
	for _, r := range packets {
		switch r.Structure {
		case "bbox":
			bbox = r
		case "whole-region":
			whole = r
		}
	}
	if whole.MBytes <= bbox.MBytes {
		t.Errorf("whole-region traffic %.3f must exceed bbox %.3f", whole.MBytes, bbox.MBytes)
	}

	dist := must(WireDistribution(c, s))(t)
	if len(dist) != 2 {
		t.Fatalf("want 2 distribution rows")
	}

	own := must(CostArrayDistribution(c, s))(t)
	if len(own) != 2 {
		t.Fatalf("want 2 ownership rows")
	}
	if own[1].CktHt < own[0].CktHt-2 {
		t.Errorf("strict ownership quality %d should not beat replicated views %d",
			own[1].CktHt, own[0].CktHt)
	}

	for _, out := range []string{
		RenderPacketStructures(packets),
		RenderWireDistribution(dist),
		RenderCostArrayDistribution(own),
	} {
		if len(out) < 50 {
			t.Errorf("render too short: %q", out)
		}
	}
}

func TestNetworkSensitivitySmall(t *testing.T) {
	rows := must(NetworkSensitivity(smallCircuit(), smallSetup()))(t)
	if len(rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	// Deeper lookahead must not worsen the blocking penalty (the paper's
	// "better heuristic" prediction); compare ahead=1 vs ahead=60.
	if rows[4].Penalty > rows[0].Penalty+0.05 {
		t.Errorf("deep lookahead penalty %.2f should not exceed shallow %.2f",
			rows[4].Penalty, rows[0].Penalty)
	}
	for _, r := range rows {
		if r.Penalty < 0.9 {
			t.Errorf("%s: blocking implausibly faster (%.2f)", r.Label, r.Penalty)
		}
	}
	if out := RenderNetworkSensitivity(rows); len(out) < 50 {
		t.Errorf("render too short")
	}
}

func TestWireOrderingSmall(t *testing.T) {
	rows := must(WireOrdering(smallCircuit(), smallSetup()))(t)
	if len(rows) != 3 {
		t.Fatalf("want 3 orderings")
	}
	for _, r := range rows {
		if r.CktHt <= 0 {
			t.Errorf("%s: height %d", r.Order, r.CktHt)
		}
	}
	if out := RenderWireOrdering(rows); len(out) < 50 {
		t.Errorf("render too short")
	}
}

func TestTopologySmall(t *testing.T) {
	rows := must(Topology(smallCircuit(), smallSetup()))(t)
	if len(rows) != 3 {
		t.Fatalf("want 3 topologies")
	}
	// Identical protocol behaviour: same traffic bytes on every shape.
	for _, r := range rows[1:] {
		if r.MBytes != rows[0].MBytes {
			t.Errorf("traffic must be topology-independent: %.3f vs %.3f",
				r.MBytes, rows[0].MBytes)
		}
	}
	if out := RenderTopology(rows); len(out) < 50 {
		t.Errorf("render too short")
	}
}

package experiments

import (
	"fmt"
	"math"

	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
)

// RobustnessRow summarises one claim across seeds.
type RobustnessRow struct {
	Claim string
	Held  int
	Total int
	// Margin is the mean of the claim's margin metric across seeds (the
	// ratio that should exceed 1.0).
	Margin float64
}

// robustnessCheck is one comparative claim; margin returns the ratio
// that should exceed 1.0 for the claim to hold.
type robustnessCheck struct {
	name   string
	margin func(c *circuit.Circuit, s Setup) (float64, error)
}

func robustnessChecks() []robustnessCheck {
	return []robustnessCheck{
		{
			name: "sender traffic > receiver traffic",
			margin: func(c *circuit.Circuit, s Setup) (float64, error) {
				snd, err := runMP(c, s, mp.SenderInitiated(2, 5), "snd")
				if err != nil {
					return 0, err
				}
				rcv, err := runMP(c, s, mp.ReceiverInitiated(1, 5, false), "rcv")
				if err != nil {
					return 0, err
				}
				return snd.MBytes / math.Max(rcv.MBytes, 1e-9), nil
			},
		},
		{
			name: "rarer receiver updates -> less traffic",
			margin: func(c *circuit.Circuit, s Setup) (float64, error) {
				eager, err := runMP(c, s, mp.ReceiverInitiated(1, 5, false), "eager")
				if err != nil {
					return 0, err
				}
				lazy, err := runMP(c, s, mp.ReceiverInitiated(1, 30, false), "lazy")
				if err != nil {
					return 0, err
				}
				return eager.MBytes / math.Max(lazy.MBytes, 1e-9), nil
			},
		},
		{
			name: "SM traffic grows 4B -> 32B lines",
			margin: func(c *circuit.Circuit, s Setup) (float64, error) {
				rows, err := Table3(c, s)
				if err != nil {
					return 0, err
				}
				return rows[len(rows)-1].MBytes / math.Max(rows[0].MBytes, 1e-9), nil
			},
		},
		{
			name: "pure locality slower than balanced threshold",
			margin: func(c *circuit.Circuit, s Setup) (float64, error) {
				rows, err := Table4([]*circuit.Circuit{c}, s)
				if err != nil {
					return 0, err
				}
				var t30, inf float64
				for _, r := range rows {
					switch r.Method {
					case "ThresholdCost = 30":
						t30 = r.Seconds
					case "ThresholdCost = inf.":
						inf = r.Seconds
					}
				}
				return inf / math.Max(t30, 1e-9), nil
			},
		},
		{
			name: "quality degrades 2 -> 16 processors",
			margin: func(c *circuit.Circuit, s Setup) (float64, error) {
				rows, err := Table6(c, s)
				if err != nil {
					return 0, err
				}
				return float64(rows[len(rows)-1].CktHt) / math.Max(float64(rows[0].CktHt), 1), nil
			},
		},
	}
}

// Robustness re-checks the paper's headline comparative claims across
// several circuit generator seeds, reporting how often each holds. The
// synthetic circuits make absolute numbers seed-dependent; the claims the
// reproduction stands on should hold for most seeds. Every seed×check
// pair is an independent cell (some fan out further internally); margins
// are folded into per-claim rows after the fan-out.
func Robustness(seeds []int64, s Setup) ([]RobustnessRow, error) {
	checks := robustnessChecks()
	type task struct {
		seed  int64
		check int
	}
	var tasks []task
	for _, seed := range seeds {
		for i := range checks {
			tasks = append(tasks, task{seed: seed, check: i})
		}
	}
	// Gated: a task can run a whole nested table (Table3 pins a trace
	// and four simulators), so only pool-many tasks are in flight.
	margins, err := gatedCells(s, tasks, func(t task, sub Setup) (float64, error) {
		c, err := circuit.Generate(circuit.BnrELike(t.seed))
		if err != nil {
			return 0, fmt.Errorf("experiments: robustness seed %d: %w", t.seed, err)
		}
		return checks[t.check].margin(c, sub)
	})
	if err != nil {
		return nil, err
	}

	rows := make([]RobustnessRow, len(checks))
	for i, ch := range checks {
		rows[i].Claim = ch.name
	}
	for ti, m := range margins {
		i := tasks[ti].check
		rows[i].Total++
		rows[i].Margin += m
		if m > 1 {
			rows[i].Held++
		}
	}
	for i := range rows {
		if rows[i].Total > 0 {
			rows[i].Margin /= float64(rows[i].Total)
		}
	}
	return rows, nil
}

// RenderRobustness renders the robustness sweep.
func RenderRobustness(rows []RobustnessRow) string {
	t := metrics.NewTable("Robustness: headline claims across circuit seeds",
		"Claim", "Held", "Mean margin")
	for _, r := range rows {
		t.Add(r.Claim, fmt.Sprintf("%d/%d", r.Held, r.Total), fmt.Sprintf("%.2fx", r.Margin))
	}
	return t.String()
}

package experiments

import (
	"fmt"
	"math"

	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
)

// RobustnessRow summarises one claim across seeds.
type RobustnessRow struct {
	Claim string
	Held  int
	Total int
	// Margin is the mean of the claim's margin metric across seeds (the
	// ratio that should exceed 1.0).
	Margin float64
}

// Robustness re-checks the paper's headline comparative claims across
// several circuit generator seeds, reporting how often each holds. The
// synthetic circuits make absolute numbers seed-dependent; the claims the
// reproduction stands on should hold for most seeds.
func Robustness(seeds []int64, s Setup) []RobustnessRow {
	type check struct {
		name   string
		margin func(c *circuit.Circuit) float64 // >1 means the claim held
	}
	checks := []check{
		{
			name: "sender traffic > receiver traffic",
			margin: func(c *circuit.Circuit) float64 {
				snd := runMP(c, s, mp.SenderInitiated(2, 5), "snd")
				rcv := runMP(c, s, mp.ReceiverInitiated(1, 5, false), "rcv")
				return snd.MBytes / math.Max(rcv.MBytes, 1e-9)
			},
		},
		{
			name: "rarer receiver updates -> less traffic",
			margin: func(c *circuit.Circuit) float64 {
				eager := runMP(c, s, mp.ReceiverInitiated(1, 5, false), "eager")
				lazy := runMP(c, s, mp.ReceiverInitiated(1, 30, false), "lazy")
				return eager.MBytes / math.Max(lazy.MBytes, 1e-9)
			},
		},
		{
			name: "SM traffic grows 4B -> 32B lines",
			margin: func(c *circuit.Circuit) float64 {
				rows := Table3(c, s)
				return rows[len(rows)-1].MBytes / math.Max(rows[0].MBytes, 1e-9)
			},
		},
		{
			name: "pure locality slower than balanced threshold",
			margin: func(c *circuit.Circuit) float64 {
				rows := Table4([]*circuit.Circuit{c}, s)
				var t30, inf float64
				for _, r := range rows {
					switch r.Method {
					case "ThresholdCost = 30":
						t30 = r.Seconds
					case "ThresholdCost = inf.":
						inf = r.Seconds
					}
				}
				return inf / math.Max(t30, 1e-9)
			},
		},
		{
			name: "quality degrades 2 -> 16 processors",
			margin: func(c *circuit.Circuit) float64 {
				rows := Table6(c, s)
				return float64(rows[len(rows)-1].CktHt) / math.Max(float64(rows[0].CktHt), 1)
			},
		},
	}

	rows := make([]RobustnessRow, len(checks))
	for i, ch := range checks {
		rows[i].Claim = ch.name
	}
	for _, seed := range seeds {
		params := circuit.BnrELike(seed)
		c := circuit.MustGenerate(params)
		for i, ch := range checks {
			m := ch.margin(c)
			rows[i].Total++
			rows[i].Margin += m
			if m > 1 {
				rows[i].Held++
			}
		}
	}
	for i := range rows {
		if rows[i].Total > 0 {
			rows[i].Margin /= float64(rows[i].Total)
		}
	}
	return rows
}

// RenderRobustness renders the robustness sweep.
func RenderRobustness(rows []RobustnessRow) string {
	t := metrics.NewTable("Robustness: headline claims across circuit seeds",
		"Claim", "Held", "Mean margin")
	for _, r := range rows {
		t.Add(r.Claim, fmt.Sprintf("%d/%d", r.Held, r.Total), fmt.Sprintf("%.2fx", r.Margin))
	}
	return t.String()
}

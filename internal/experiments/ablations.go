package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
)

// --- Ablation: update packet structures (Section 4.3.1) ------------------

// PacketRow is one packet-structure measurement.
type PacketRow struct {
	Structure string
	CktHt     int64
	MBytes    float64
	Packets   int64
	Seconds   float64
}

// PacketStructures compares the paper's chosen bounding-box packet
// structure against the two alternatives it discusses: wire-based
// packets (no rip-up/reroute cancellation) and whole-region packets
// (bytes for unchanged cells). Run with the standard sender initiated
// schedule.
func PacketStructures(c *circuit.Circuit, s Setup) ([]PacketRow, error) {
	structures := []mp.PacketStructure{
		mp.StructureBbox, mp.StructureWireBased, mp.StructureWholeRegion,
	}
	return cells(s, structures, func(structure mp.PacketStructure, sub Setup) (PacketRow, error) {
		cfg := mp.DefaultConfig(Table4Strategy())
		cfg.Procs = sub.Procs
		cfg.Router = sub.routerParams()
		cfg.Packets = structure
		asn, err := sub.assignment(c)
		if err != nil {
			return PacketRow{}, err
		}
		res, err := runConfigured(c, sub, cfg, asn, "packets/"+structure.String())
		if err != nil {
			return PacketRow{}, err
		}
		return PacketRow{
			Structure: structure.String(),
			CktHt:     res.CircuitHeight,
			MBytes:    res.MBytes(),
			Packets:   res.Net.Packets,
			Seconds:   res.Time.Seconds(),
		}, nil
	})
}

// RenderPacketStructures renders the packet structure ablation.
func RenderPacketStructures(rows []PacketRow) string {
	t := metrics.NewTable("Ablation (Section 4.3.1): update packet structures",
		"Structure", "Ckt Ht.", "MBytes Xfrd.", "Packets", "Time (s)")
	for _, r := range rows {
		t.Add(r.Structure, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes),
			fmt.Sprintf("%d", r.Packets), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: dynamic vs static wire assignment (Section 4.2) -----------

// DistributionRow is one wire-distribution measurement.
type DistributionRow struct {
	Method  string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// WireDistribution compares the paper's chosen static assignment against
// the dynamic request/grant scheme it rejects for its distribution
// latency (wire requests are only serviced when the assignment processor
// checks its queue between wires).
func WireDistribution(c *circuit.Circuit, s Setup) ([]DistributionRow, error) {
	return cells(s, []bool{false, true}, func(dynamic bool, sub Setup) (DistributionRow, error) {
		cfg := mp.DefaultConfig(Table4Strategy())
		cfg.Procs = sub.Procs
		cfg.Router = sub.routerParams()
		cfg.DynamicWires = dynamic
		label := "static (ThresholdCost)"
		if dynamic {
			label = "dynamic (request/grant)"
		}
		asn, err := sub.assignment(c)
		if err != nil {
			return DistributionRow{}, err
		}
		res, err := runConfigured(c, sub, cfg, asn, "distribution/"+label)
		if err != nil {
			return DistributionRow{}, err
		}
		return DistributionRow{
			Method:  label,
			CktHt:   res.CircuitHeight,
			MBytes:  res.MBytes(),
			Seconds: res.Time.Seconds(),
		}, nil
	})
}

// RenderWireDistribution renders the wire distribution ablation.
func RenderWireDistribution(rows []DistributionRow) string {
	t := metrics.NewTable("Ablation (Section 4.2): wire distribution",
		"Method", "Ckt Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Method, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: cost array distribution (Section 4.1) ---------------------

// OwnershipRow is one cost-array-distribution measurement.
type OwnershipRow struct {
	Scheme  string
	CktHt   int64
	MBytes  float64
	Packets int64
	Seconds float64
}

// CostArrayDistribution compares the paper's chosen replicated-view
// design against the strict region ownership scheme it rejects: no
// update traffic at all, but per-region greedy routing, task-passing
// messages, and the load imbalance of region-bound work.
func CostArrayDistribution(c *circuit.Circuit, s Setup) ([]OwnershipRow, error) {
	schemes := []func(Setup) (OwnershipRow, error){
		func(sub Setup) (OwnershipRow, error) {
			chosen := mp.DefaultConfig(Table4Strategy())
			chosen.Procs = sub.Procs
			chosen.Router = sub.routerParams()
			asn, err := sub.assignment(c)
			if err != nil {
				return OwnershipRow{}, err
			}
			res, err := runConfigured(c, sub, chosen, asn, "ownership/replicated views")
			if err != nil {
				return OwnershipRow{}, err
			}
			return OwnershipRow{
				Scheme: "replicated views + updates", CktHt: res.CircuitHeight,
				MBytes: res.MBytes(), Packets: res.Net.Packets, Seconds: res.Time.Seconds(),
			}, nil
		},
		func(sub Setup) (OwnershipRow, error) {
			strict := mp.DefaultConfig(mp.Strategy{})
			strict.Procs = sub.Procs
			strict.Router = sub.routerParams()
			strict.StrictOwnership = true
			part, err := sub.partition(c)
			if err != nil {
				return OwnershipRow{}, err
			}
			asn := assign.AssignThreshold(c, part, assign.ThresholdInfinity)
			res, err := runConfigured(c, sub, strict, asn, "ownership/strict")
			if err != nil {
				return OwnershipRow{}, err
			}
			return OwnershipRow{
				Scheme: "strict region ownership", CktHt: res.CircuitHeight,
				MBytes: res.MBytes(), Packets: res.Net.Packets, Seconds: res.Time.Seconds(),
			}, nil
		},
	}
	return cells(s, schemes, func(fn func(Setup) (OwnershipRow, error), sub Setup) (OwnershipRow, error) {
		return fn(sub)
	})
}

// RenderCostArrayDistribution renders the ownership ablation.
func RenderCostArrayDistribution(rows []OwnershipRow) string {
	t := metrics.NewTable("Ablation (Section 4.1): cost array distribution",
		"Scheme", "Ckt Ht.", "MBytes Xfrd.", "Packets", "Time (s)")
	for _, r := range rows {
		t.Add(r.Scheme, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes),
			fmt.Sprintf("%d", r.Packets), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: wire routing order -----------------------------------------

// OrderRow is one wire-ordering measurement.
type OrderRow struct {
	Order   string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// WireOrdering sweeps the order in which each processor routes its
// assigned wires. The paper routes in circuit order; longest-first is
// the classic router heuristic (place the hard wires while the array is
// empty), shortest-first the adversarial baseline.
func WireOrdering(c *circuit.Circuit, s Setup) ([]OrderRow, error) {
	orders := []assign.WireOrder{
		assign.NaturalOrder, assign.LongestFirst, assign.ShortestFirst,
	}
	return cells(s, orders, func(order assign.WireOrder, sub Setup) (OrderRow, error) {
		asn, err := sub.assignment(c)
		if err != nil {
			return OrderRow{}, err
		}
		asn.Order = order
		r, err := runMPAssigned(c, sub, Table4Strategy(), asn, order.String())
		if err != nil {
			return OrderRow{}, err
		}
		return OrderRow{
			Order: order.String(), CktHt: r.CktHt, MBytes: r.MBytes, Seconds: r.Seconds,
		}, nil
	})
}

// RenderWireOrdering renders the wire ordering ablation.
func RenderWireOrdering(rows []OrderRow) string {
	t := metrics.NewTable("Ablation: per-processor wire routing order",
		"Order", "Ckt Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Order, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
)

// --- Ablation: update packet structures (Section 4.3.1) ------------------

// PacketRow is one packet-structure measurement.
type PacketRow struct {
	Structure string
	CktHt     int64
	MBytes    float64
	Packets   int64
	Seconds   float64
}

// PacketStructures compares the paper's chosen bounding-box packet
// structure against the two alternatives it discusses: wire-based
// packets (no rip-up/reroute cancellation) and whole-region packets
// (bytes for unchanged cells). Run with the standard sender initiated
// schedule.
func PacketStructures(c *circuit.Circuit, s Setup) []PacketRow {
	var rows []PacketRow
	for _, structure := range []mp.PacketStructure{
		mp.StructureBbox, mp.StructureWireBased, mp.StructureWholeRegion,
	} {
		cfg := mp.DefaultConfig(Table4Strategy())
		cfg.Procs = s.Procs
		cfg.Router = s.routerParams()
		cfg.Packets = structure
		res := runConfigured(c, s, cfg, s.assignment(c), "packets/"+structure.String())
		rows = append(rows, PacketRow{
			Structure: structure.String(),
			CktHt:     res.CircuitHeight,
			MBytes:    res.MBytes(),
			Packets:   res.Net.Packets,
			Seconds:   res.Time.Seconds(),
		})
	}
	return rows
}

// RenderPacketStructures renders the packet structure ablation.
func RenderPacketStructures(rows []PacketRow) string {
	t := metrics.NewTable("Ablation (Section 4.3.1): update packet structures",
		"Structure", "Ckt Ht.", "MBytes Xfrd.", "Packets", "Time (s)")
	for _, r := range rows {
		t.Add(r.Structure, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes),
			fmt.Sprintf("%d", r.Packets), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: dynamic vs static wire assignment (Section 4.2) -----------

// DistributionRow is one wire-distribution measurement.
type DistributionRow struct {
	Method  string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// WireDistribution compares the paper's chosen static assignment against
// the dynamic request/grant scheme it rejects for its distribution
// latency (wire requests are only serviced when the assignment processor
// checks its queue between wires).
func WireDistribution(c *circuit.Circuit, s Setup) []DistributionRow {
	var rows []DistributionRow
	for _, dynamic := range []bool{false, true} {
		cfg := mp.DefaultConfig(Table4Strategy())
		cfg.Procs = s.Procs
		cfg.Router = s.routerParams()
		cfg.DynamicWires = dynamic
		label := "static (ThresholdCost)"
		if dynamic {
			label = "dynamic (request/grant)"
		}
		res := runConfigured(c, s, cfg, s.assignment(c), "distribution/"+label)
		rows = append(rows, DistributionRow{
			Method:  label,
			CktHt:   res.CircuitHeight,
			MBytes:  res.MBytes(),
			Seconds: res.Time.Seconds(),
		})
	}
	return rows
}

// RenderWireDistribution renders the wire distribution ablation.
func RenderWireDistribution(rows []DistributionRow) string {
	t := metrics.NewTable("Ablation (Section 4.2): wire distribution",
		"Method", "Ckt Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Method, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: cost array distribution (Section 4.1) ---------------------

// OwnershipRow is one cost-array-distribution measurement.
type OwnershipRow struct {
	Scheme  string
	CktHt   int64
	MBytes  float64
	Packets int64
	Seconds float64
}

// CostArrayDistribution compares the paper's chosen replicated-view
// design against the strict region ownership scheme it rejects: no
// update traffic at all, but per-region greedy routing, task-passing
// messages, and the load imbalance of region-bound work.
func CostArrayDistribution(c *circuit.Circuit, s Setup) []OwnershipRow {
	var rows []OwnershipRow

	chosen := mp.DefaultConfig(Table4Strategy())
	chosen.Procs = s.Procs
	chosen.Router = s.routerParams()
	res := runConfigured(c, s, chosen, s.assignment(c), "ownership/replicated views")
	rows = append(rows, OwnershipRow{
		Scheme: "replicated views + updates", CktHt: res.CircuitHeight,
		MBytes: res.MBytes(), Packets: res.Net.Packets, Seconds: res.Time.Seconds(),
	})

	strict := mp.DefaultConfig(mp.Strategy{})
	strict.Procs = s.Procs
	strict.Router = s.routerParams()
	strict.StrictOwnership = true
	asn := assign.AssignThreshold(c, s.partition(c), assign.ThresholdInfinity)
	res = runConfigured(c, s, strict, asn, "ownership/strict")
	rows = append(rows, OwnershipRow{
		Scheme: "strict region ownership", CktHt: res.CircuitHeight,
		MBytes: res.MBytes(), Packets: res.Net.Packets, Seconds: res.Time.Seconds(),
	})
	return rows
}

// RenderCostArrayDistribution renders the ownership ablation.
func RenderCostArrayDistribution(rows []OwnershipRow) string {
	t := metrics.NewTable("Ablation (Section 4.1): cost array distribution",
		"Scheme", "Ckt Ht.", "MBytes Xfrd.", "Packets", "Time (s)")
	for _, r := range rows {
		t.Add(r.Scheme, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes),
			fmt.Sprintf("%d", r.Packets), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// --- Ablation: wire routing order -----------------------------------------

// OrderRow is one wire-ordering measurement.
type OrderRow struct {
	Order   string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// WireOrdering sweeps the order in which each processor routes its
// assigned wires. The paper routes in circuit order; longest-first is
// the classic router heuristic (place the hard wires while the array is
// empty), shortest-first the adversarial baseline.
func WireOrdering(c *circuit.Circuit, s Setup) []OrderRow {
	var rows []OrderRow
	for _, order := range []assign.WireOrder{
		assign.NaturalOrder, assign.LongestFirst, assign.ShortestFirst,
	} {
		asn := s.assignment(c)
		asn.Order = order
		r := runMPAssigned(c, s, Table4Strategy(), asn, order.String())
		rows = append(rows, OrderRow{
			Order: order.String(), CktHt: r.CktHt, MBytes: r.MBytes, Seconds: r.Seconds,
		})
	}
	return rows
}

// RenderWireOrdering renders the wire ordering ablation.
func RenderWireOrdering(rows []OrderRow) string {
	t := metrics.NewTable("Ablation: per-processor wire routing order",
		"Order", "Ckt Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Order, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// Package experiments contains one driver per table of the paper's
// evaluation (Section 5), plus the Section 5.1.3 blocking/mixed
// comparisons and the Section 5.3.3 locality measure. Each driver returns
// typed rows and can render itself as an aligned text table; the cmd/paper
// binary and the repository benchmarks are thin wrappers around these.
//
// The benchmark circuits are seeded synthetic stand-ins for the paper's
// unpublished bnrE and MDC netlists (see internal/circuit); absolute
// numbers therefore differ from the paper, but the comparative shapes the
// paper's conclusions rest on are reproduced (EXPERIMENTS.md records
// paper-vs-measured for every row).
package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

// DefaultSeed fixes the benchmark circuit generation.
const DefaultSeed = 1

// BnrE returns the bnrE-like benchmark circuit (420 wires, 10x341).
func BnrE() *circuit.Circuit { return circuit.MustGenerate(circuit.BnrELike(DefaultSeed)) }

// MDC returns the MDC-like benchmark circuit (573 wires, 12x386).
func MDC() *circuit.Circuit { return circuit.MustGenerate(circuit.MDCLike(DefaultSeed)) }

// Setup carries the choices shared by all experiments.
type Setup struct {
	// Procs is the processor count (paper default: 16, a 4x4 grid).
	Procs int
	// Iterations of rip-up-and-reroute.
	Iterations int
	// Threshold is the ThresholdCost of the standard wire assignment
	// (the paper's tables 1, 2 and 6 use a locality assignment; 1000
	// reproduces their configuration).
	Threshold int
	// Obs, when non-nil, collects one observability document per routing
	// run the drivers perform (cmd/paper -json). Nil disables collection;
	// the rendered tables are identical either way.
	Obs *obs.Collector
}

// DefaultSetup returns the 16-processor configuration most tables use.
func DefaultSetup() Setup {
	return Setup{Procs: 16, Iterations: route.DefaultParams().Iterations, Threshold: 1000}
}

func (s Setup) routerParams() route.Params {
	p := route.DefaultParams()
	p.Iterations = s.Iterations
	return p
}

func (s Setup) partition(c *circuit.Circuit) geom.Partition {
	px, py := geom.SquarestFactors(s.Procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		panic(fmt.Sprintf("experiments: partition %d procs on %q: %v", s.Procs, c.Name, err))
	}
	return part
}

func (s Setup) assignment(c *circuit.Circuit) *assign.Assignment {
	return assign.AssignThreshold(c, s.partition(c), s.Threshold)
}

// MPRow is one message passing run in the units of the paper's tables.
type MPRow struct {
	Label     string
	Strategy  mp.Strategy
	CktHt     int64
	Occupancy int64
	MBytes    float64
	Seconds   float64
}

// runMP executes one message passing cell with the setup's standard
// assignment.
func runMP(c *circuit.Circuit, s Setup, st mp.Strategy, label string) MPRow {
	return runMPAssigned(c, s, st, s.assignment(c), label)
}

func runMPAssigned(c *circuit.Circuit, s Setup, st mp.Strategy, asn *assign.Assignment, label string) MPRow {
	cfg := mp.DefaultConfig(st)
	cfg.Procs = s.Procs
	cfg.Router = s.routerParams()
	res := runConfigured(c, s, cfg, asn, label)
	return MPRow{
		Label:     label,
		Strategy:  st,
		CktHt:     res.CircuitHeight,
		Occupancy: res.Occupancy,
		MBytes:    res.MBytes(),
		Seconds:   res.Time.Seconds(),
	}
}

// runConfigured executes one message passing run from a fully prepared
// config (callers set ablation knobs before handing it over). When the
// setup carries a collector, an observer is attached for the run and
// its document recorded under label.
func runConfigured(c *circuit.Circuit, s Setup, cfg mp.Config, asn *assign.Assignment, label string) mp.Result {
	if s.Obs.Enabled() {
		cfg.Obs = obs.NewMP(cfg.Procs)
	}
	res, err := mp.Run(c, asn, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: mp run %q: %v", label, err))
	}
	if s.Obs.Enabled() {
		s.Obs.Append(mp.ObsRun(label, "mp-des", c.Name, cfg, res))
	}
	return res
}

// smQuality runs the traced shared memory router and returns its result
// plus the reference trace (callers replay it through the cache
// simulator at the line sizes they need; replays attach their traffic to
// the run's document when a collector is recording).
func smQuality(c *circuit.Circuit, s Setup, order sm.Order, asn *assign.Assignment, label string) (sm.Result, *traceHandle) {
	cfg := sm.DefaultConfig()
	cfg.Procs = s.Procs
	cfg.Router = s.routerParams()
	cfg.Order = order
	cfg.Assignment = asn
	res, tr, err := sm.RunTraced(c, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: sm run: %v", err))
	}
	h := &traceHandle{tr: tr, procs: s.Procs}
	if s.Obs.Enabled() {
		h.run = s.Obs.Append(sm.ObsRun(label, "sm-traced", c.Name, cfg, res))
	}
	return res, h
}

// renderMPTable renders MP rows with the paper's column names.
func renderMPTable(title string, rows []MPRow) string {
	t := metrics.NewTable(title,
		"Schedule", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Label,
			fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%d", r.Occupancy),
			fmt.Sprintf("%.3f", r.MBytes),
			metrics.Seconds(r.Seconds))
	}
	return t.String()
}

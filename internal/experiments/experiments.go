// Package experiments contains one driver per table of the paper's
// evaluation (Section 5), plus the Section 5.1.3 blocking/mixed
// comparisons and the Section 5.3.3 locality measure. Each driver returns
// typed rows and can render itself as an aligned text table; the cmd/paper
// binary and the repository benchmarks are thin wrappers around these.
//
// The benchmark circuits are seeded synthetic stand-ins for the paper's
// unpublished bnrE and MDC netlists (see internal/circuit); absolute
// numbers therefore differ from the paper, but the comparative shapes the
// paper's conclusions rest on are reproduced (EXPERIMENTS.md records
// paper-vs-measured for every row).
//
// # Parallel driver
//
// Every independent unit of work — each cell of a schedule sweep, each
// cache replay, each ablation point, each robustness seed×check pair —
// fans out through cells/par.Gather against a forked Setup, bounded by
// Setup.Pool at the leaf simulations only. Results and observability
// documents are merged in submission order, never completion order, so a
// driver's output (rows, rendered tables, and -json documents) is a pure
// function of its inputs regardless of the pool's capacity.
package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
)

// DefaultSeed fixes the benchmark circuit generation.
const DefaultSeed = 1

// BnrE returns the bnrE-like benchmark circuit (420 wires, 10x341).
func BnrE() *circuit.Circuit { return circuit.MustGenerate(circuit.BnrELike(DefaultSeed)) }

// MDC returns the MDC-like benchmark circuit (573 wires, 12x386).
func MDC() *circuit.Circuit { return circuit.MustGenerate(circuit.MDCLike(DefaultSeed)) }

// Setup carries the choices shared by all experiments.
type Setup struct {
	// Procs is the processor count (paper default: 16, a 4x4 grid).
	Procs int
	// Iterations of rip-up-and-reroute.
	Iterations int
	// Threshold is the ThresholdCost of the standard wire assignment
	// (the paper's tables 1, 2 and 6 use a locality assignment; 1000
	// reproduces their configuration).
	Threshold int
	// Obs, when non-nil, collects one observability document per routing
	// run the drivers perform (cmd/paper -json). Nil disables collection;
	// the rendered tables are identical either way.
	Obs *obs.Collector
	// Pool bounds how many leaf simulations (DES runs, traced routings,
	// cache replays) execute concurrently. Nil leaves the fan-out
	// unbounded; par.New(1) is the serial mode. Results are merged in
	// submission order, so output never depends on the pool's capacity.
	Pool *par.Pool
	// Partitions is the leaf-count sweep of the partition table (nil
	// sweeps 1, 2, 4, 8). Only the "partition" table reads it.
	Partitions []int
}

// DefaultSetup returns the 16-processor configuration most tables use.
func DefaultSetup() Setup {
	return Setup{Procs: 16, Iterations: route.DefaultParams().Iterations, Threshold: 1000}
}

// Fork returns a copy of s whose collector (when recording) is a fresh
// private one, plus a drain function returning the documents the forked
// copy accumulated. The parallel drivers run each independent cell on a
// forked setup and Adopt the drained documents in submission order, which
// keeps -json output byte-identical at every pool capacity.
func (s Setup) Fork() (Setup, func() []*obs.Run) {
	if !s.Obs.Enabled() {
		return s, func() []*obs.Run { return nil }
	}
	sub := s
	sub.Obs = obs.NewCollector()
	return sub, sub.Obs.Take
}

// cells is the drivers' fan-out primitive: fn runs for every item on its
// own goroutine against a forked setup, and once all cells finish, their
// results and observability documents are stitched together in item
// order. Heavy work inside fn must gate itself with the setup's pool
// (runConfigured, smQuality and traceHandle.simulate do).
func cells[T, R any](s Setup, items []T, fn func(T, Setup) (R, error)) ([]R, error) {
	type cell struct {
		out  R
		runs []*obs.Run
	}
	cs, err := par.Gather(items, func(_ int, item T) (cell, error) {
		sub, drain := s.Fork()
		out, err := fn(item, sub)
		return cell{out: out, runs: drain()}, err
	})
	if err != nil {
		return nil, err
	}
	out := make([]R, len(cs))
	for i, c := range cs {
		out[i] = c.out
		s.Obs.Adopt(c.runs)
	}
	return out, nil
}

// gatedCells is cells with an admission gate sized to the pool: at most
// pool-many cells are in flight at once. Use it when each cell pins
// heavy intermediate state for its whole lifetime — a reference trace, a
// coherence simulator, a nested table — so that peak memory stays a
// rolling window of pool-many cells rather than the sum over all of
// them. The gate is private to the call, so nested fan-outs each gate
// their own level and cannot deadlock on each other (see par.Gate).
func gatedCells[T, R any](s Setup, items []T, fn func(T, Setup) (R, error)) ([]R, error) {
	gate := par.NewGate(s.Pool.Workers())
	return cells(s, items, func(item T, sub Setup) (R, error) {
		gate.Enter()
		defer gate.Leave()
		return fn(item, sub)
	})
}

func (s Setup) routerParams() route.Params {
	p := route.DefaultParams()
	p.Iterations = s.Iterations
	return p
}

func (s Setup) partition(c *circuit.Circuit) (geom.Partition, error) {
	px, py := geom.SquarestFactors(s.Procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		return geom.Partition{}, fmt.Errorf("experiments: partition %d procs on %q: %w", s.Procs, c.Name, err)
	}
	return part, nil
}

func (s Setup) assignment(c *circuit.Circuit) (*assign.Assignment, error) {
	part, err := s.partition(c)
	if err != nil {
		return nil, err
	}
	return assign.AssignThreshold(c, part, s.Threshold), nil
}

// MPRow is one message passing run in the units of the paper's tables.
type MPRow struct {
	Label     string
	Strategy  mp.Strategy
	CktHt     int64
	Occupancy int64
	MBytes    float64
	Seconds   float64
}

// runMP executes one message passing cell with the setup's standard
// assignment.
func runMP(c *circuit.Circuit, s Setup, st mp.Strategy, label string) (MPRow, error) {
	asn, err := s.assignment(c)
	if err != nil {
		return MPRow{}, err
	}
	return runMPAssigned(c, s, st, asn, label)
}

func runMPAssigned(c *circuit.Circuit, s Setup, st mp.Strategy, asn *assign.Assignment, label string) (MPRow, error) {
	cfg := mp.DefaultConfig(st)
	cfg.Procs = s.Procs
	cfg.Router = s.routerParams()
	res, err := runConfigured(c, s, cfg, asn, label)
	if err != nil {
		return MPRow{}, err
	}
	return MPRow{
		Label:     label,
		Strategy:  st,
		CktHt:     res.CircuitHeight,
		Occupancy: res.Occupancy,
		MBytes:    res.MBytes(),
		Seconds:   res.Time.Seconds(),
	}, nil
}

// runConfigured executes one message passing run from a fully prepared
// config (callers set ablation knobs before handing it over). The DES run
// holds a pool slot — it is a leaf computation. When the setup carries a
// collector, an observer is attached for the run and its document
// recorded under label.
func runConfigured(c *circuit.Circuit, s Setup, cfg mp.Config, asn *assign.Assignment, label string) (mp.Result, error) {
	if s.Obs.Enabled() {
		cfg.Obs = obs.NewMP(cfg.Procs)
	}
	var res mp.Result
	var err error
	s.Pool.Run(func() { res, err = mp.Run(c, asn, cfg) })
	if err != nil {
		return mp.Result{}, fmt.Errorf("experiments: mp run %q: %w", label, err)
	}
	if s.Obs.Enabled() {
		s.Obs.Append(mp.ObsRun(label, "mp-des", c.Name, cfg, res))
	}
	return res, nil
}

// smQuality runs the traced shared memory router and returns its result
// plus the reference trace (callers replay it through the cache
// simulator at the line sizes they need; replays attach their traffic to
// the run's document when a collector is recording). The traced routing
// holds a pool slot.
func smQuality(c *circuit.Circuit, s Setup, order sm.Order, asn *assign.Assignment, label string) (sm.Result, *traceHandle, error) {
	cfg := sm.DefaultConfig()
	cfg.Procs = s.Procs
	cfg.Router = s.routerParams()
	cfg.Order = order
	cfg.Assignment = asn
	var (
		res sm.Result
		tr  *trace.Trace
		err error
	)
	s.Pool.Run(func() { res, tr, err = sm.RunTraced(c, cfg) })
	if err != nil {
		return sm.Result{}, nil, fmt.Errorf("experiments: sm run %q: %w", label, err)
	}
	h := &traceHandle{tr: tr, procs: s.Procs}
	if s.Obs.Enabled() {
		h.run = s.Obs.Append(sm.ObsRun(label, "sm-traced", c.Name, cfg, res))
	}
	return res, h, nil
}

// renderMPTable renders MP rows with the paper's column names.
func renderMPTable(title string, rows []MPRow) string {
	t := metrics.NewTable(title,
		"Schedule", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Label,
			fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%d", r.Occupancy),
			fmt.Sprintf("%.3f", r.MBytes),
			metrics.Seconds(r.Seconds))
	}
	return t.String()
}

package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
)

// traceHandle pairs a reference trace with the processor count that
// produced it.
type traceHandle struct {
	tr    *trace.Trace
	procs int
	// run, when non-nil, is the collector's document for the traced run
	// that produced the trace; each replay appends its traffic to it.
	run *obs.Run
}

// replay runs the coherence simulator at the given line size and returns
// it (callers read Traffic or the attributed write fraction off it).
func (h *traceHandle) replay(lineSize int) *cache.Simulator {
	sim, err := cache.New(h.procs, lineSize)
	if err != nil {
		panic(fmt.Sprintf("experiments: cache replay: %v", err))
	}
	for _, ref := range h.tr.Refs {
		sim.Access(ref)
	}
	if h.run != nil {
		h.run.Cache = append(h.run.Cache, sim.Doc())
	}
	return sim
}

// --- Table 1: network traffic using sender initiated updates ------------

// Table1Schedules are the (SendRmtData, SendLocData) pairs of Table 1.
func Table1Schedules() []mp.Strategy {
	var out []mp.Strategy
	for _, srd := range []int{2, 5, 10} {
		for _, sld := range []int{1, 5, 10, 20} {
			out = append(out, mp.SenderInitiated(srd, sld))
		}
	}
	return out
}

// Table1 sweeps the sender initiated update frequencies on circuit c.
func Table1(c *circuit.Circuit, s Setup) []MPRow {
	var rows []MPRow
	for _, st := range Table1Schedules() {
		label := fmt.Sprintf("SRD=%d SLD=%d", st.SendRmtData, st.SendLocData)
		rows = append(rows, runMP(c, s, st, label))
	}
	return rows
}

// RenderTable1 renders Table 1.
func RenderTable1(rows []MPRow) string {
	return renderMPTable("Table 1: network traffic using sender initiated updates", rows)
}

// --- Table 2: non-blocking receiver initiated updates -------------------

// Table2Schedules are the (ReqLocData, ReqRmtData) pairs of Table 2.
func Table2Schedules() []mp.Strategy {
	var out []mp.Strategy
	for _, rld := range []int{1, 2, 10} {
		for _, rrd := range []int{5, 10, 30} {
			out = append(out, mp.ReceiverInitiated(rld, rrd, false))
		}
	}
	return out
}

// Table2 sweeps the non-blocking receiver initiated update frequencies.
func Table2(c *circuit.Circuit, s Setup) []MPRow {
	var rows []MPRow
	for _, st := range Table2Schedules() {
		label := fmt.Sprintf("RLD=%d RRD=%d", st.ReqLocData, st.ReqRmtData)
		rows = append(rows, runMP(c, s, st, label))
	}
	return rows
}

// RenderTable2 renders Table 2.
func RenderTable2(rows []MPRow) string {
	return renderMPTable("Table 2: traffic using non-blocking receiver initiated updates", rows)
}

// --- Section 5.1.3: blocking vs non-blocking and mixed schedules --------

// Blocking compares blocking against non-blocking receiver initiated
// runs on the same schedules: quality is expected to be about the same
// while blocking execution time is substantially larger.
func Blocking(c *circuit.Circuit, s Setup) []MPRow {
	var rows []MPRow
	for _, rrd := range []int{5, 10} {
		nb := mp.ReceiverInitiated(1, rrd, false)
		bl := mp.ReceiverInitiated(1, rrd, true)
		rows = append(rows,
			runMP(c, s, nb, fmt.Sprintf("RRD=%d non-blocking", rrd)),
			runMP(c, s, bl, fmt.Sprintf("RRD=%d blocking", rrd)))
	}
	return rows
}

// RenderBlocking renders the blocking comparison.
func RenderBlocking(rows []MPRow) string {
	return renderMPTable("Section 5.1.3: blocking vs non-blocking receiver initiated", rows)
}

// MixedSchedule is the paper's example mixed schedule: SendLocData = 5,
// SendRmtData = 2, ReqLocData = 1, ReqRmtData = 5.
func MixedSchedule() mp.Strategy {
	return mp.Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5}
}

// Mixed runs the paper's mixed schedule alongside the pure schemes it is
// compared against in Section 5.1.3: the most frequent sender initiated
// schedule (whose traffic it roughly halves) and the matching receiver
// initiated schedule.
func Mixed(c *circuit.Circuit, s Setup) []MPRow {
	return []MPRow{
		runMP(c, s, mp.SenderInitiated(2, 1), "pure sender SRD=2 SLD=1"),
		runMP(c, s, mp.ReceiverInitiated(1, 5, false), "pure receiver RLD=1 RRD=5"),
		runMP(c, s, MixedSchedule(), "mixed SLD=5 SRD=2 RLD=1 RRD=5"),
	}
}

// RenderMixed renders the mixed-schedule comparison.
func RenderMixed(rows []MPRow) string {
	return renderMPTable("Section 5.1.3: mixed update schedules", rows)
}

// --- Table 3: shared memory traffic as a function of cache line size ----

// Table3Row is one line-size measurement of the shared memory version.
type Table3Row struct {
	Circuit  string
	LineSize int
	MBytes   float64
	CktHt    int64
	// WriteFraction is the fraction of bytes attributable to writes
	// (word writes, writebacks, invalidation refetches); the paper
	// reports over 80%.
	WriteFraction float64
}

// Table3LineSizes are the cache line sizes of Table 3.
func Table3LineSizes() []int { return []int{4, 8, 16, 32} }

// Table3 measures shared memory bus traffic at each line size, using the
// paper's default dynamic (distributed loop) wire distribution.
func Table3(c *circuit.Circuit, s Setup) []Table3Row {
	res, h := smQuality(c, s, sm.Dynamic, nil, "table3")
	var rows []Table3Row
	for _, ls := range Table3LineSizes() {
		sim := h.replay(ls)
		tr := sim.Traffic()
		rows = append(rows, Table3Row{
			Circuit:       c.Name,
			LineSize:      ls,
			MBytes:        tr.MBytes(),
			CktHt:         res.CircuitHeight,
			WriteFraction: sim.AttributedWriteFraction(),
		})
	}
	return rows
}

// RenderTable3 renders Table 3.
func RenderTable3(rows []Table3Row) string {
	t := metrics.NewTable("Table 3: traffic as a function of cache line size (shared memory)",
		"Circuit", "Cache Line Size", "MBytes Transferred", "Write Fraction")
	for _, r := range rows {
		t.Add(r.Circuit, fmt.Sprintf("%d", r.LineSize),
			fmt.Sprintf("%.3f", r.MBytes), fmt.Sprintf("%.0f%%", r.WriteFraction*100))
	}
	return t.String()
}

// --- Tables 4 and 5: effect of locality ---------------------------------

// AssignmentMethod is one row of the locality tables.
type AssignmentMethod struct {
	Label     string
	Threshold int // -1 marks round robin
}

// LocalityMethods are the four assignment methods of Tables 4 and 5.
func LocalityMethods() []AssignmentMethod {
	return []AssignmentMethod{
		{Label: "round robin", Threshold: -1},
		{Label: "ThresholdCost = 30", Threshold: 30},
		{Label: "ThresholdCost = 1000", Threshold: 1000},
		{Label: "ThresholdCost = inf.", Threshold: assign.ThresholdInfinity},
	}
}

func (m AssignmentMethod) build(c *circuit.Circuit, s Setup) *assign.Assignment {
	part := s.partition(c)
	if m.Threshold < 0 {
		return assign.AssignRoundRobin(c, part)
	}
	return assign.AssignThreshold(c, part, m.Threshold)
}

// Table4Row is one message passing locality measurement.
type Table4Row struct {
	Circuit string
	Method  string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// Table4Strategy is the sender initiated schedule Tables 4 and 6 use
// (SendRmtData = 2, SendLocData = 10, matching the paper's cross-table
// row: same traffic and time as Table 1's corresponding entry).
func Table4Strategy() mp.Strategy { return mp.SenderInitiated(2, 10) }

// Table4 measures the effect of wire assignment locality on the message
// passing version (sender initiated).
func Table4(circuits []*circuit.Circuit, s Setup) []Table4Row {
	var rows []Table4Row
	for _, c := range circuits {
		for _, m := range LocalityMethods() {
			r := runMPAssigned(c, s, Table4Strategy(), m.build(c, s), m.Label)
			rows = append(rows, Table4Row{
				Circuit: c.Name, Method: m.Label,
				CktHt: r.CktHt, MBytes: r.MBytes, Seconds: r.Seconds,
			})
		}
	}
	return rows
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	t := metrics.NewTable("Table 4: effect of locality (message passing, sender initiated)",
		"Ckt.", "Asmt. Method", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// Table5Row is one shared memory locality measurement.
type Table5Row struct {
	Circuit string
	Method  string
	CktHt   int64
	MBytes  float64
}

// Table5LineSize is the cache line size Table 5 reports (8 bytes).
const Table5LineSize = 8

// Table5 measures the effect of wire assignment locality on the shared
// memory version: static assignments replace the distributed loop, and
// traffic comes from the coherence simulator at 8-byte lines.
func Table5(circuits []*circuit.Circuit, s Setup) []Table5Row {
	var rows []Table5Row
	for _, c := range circuits {
		for _, m := range LocalityMethods() {
			res, h := smQuality(c, s, sm.Static, m.build(c, s), "table5/"+m.Label)
			rows = append(rows, Table5Row{
				Circuit: c.Name, Method: m.Label,
				CktHt:  res.CircuitHeight,
				MBytes: h.replay(Table5LineSize).Traffic().MBytes(),
			})
		}
	}
	return rows
}

// RenderTable5 renders Table 5.
func RenderTable5(rows []Table5Row) string {
	t := metrics.NewTable("Table 5: effect of locality (shared memory, 8-byte lines)",
		"Ckt.", "Asmt. Method", "Ckt. Height", "MBytes Xfrd.")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes))
	}
	return t.String()
}

// --- Table 6: effect of the number of processors -------------------------

// Table6Row is one processor-count measurement.
type Table6Row struct {
	Circuit   string
	Procs     int
	CktHt     int64
	Occupancy int64
	MBytes    float64
	Seconds   float64
	// Speedup is computed the paper's way: relative to the two-processor
	// run, multiplied by two.
	Speedup float64
}

// Table6Procs are the processor counts of Table 6.
func Table6Procs() []int { return []int{2, 4, 9, 16} }

// Table6 measures quality, traffic and time as the processor count grows
// (sender initiated schedule, locality assignment rebuilt per count).
func Table6(c *circuit.Circuit, s Setup) []Table6Row {
	var rows []Table6Row
	var base float64
	for _, procs := range Table6Procs() {
		sp := s
		sp.Procs = procs
		r := runMP(c, sp, Table4Strategy(), fmt.Sprintf("%d procs", procs))
		row := Table6Row{
			Circuit: c.Name, Procs: procs,
			CktHt: r.CktHt, Occupancy: r.Occupancy,
			MBytes: r.MBytes, Seconds: r.Seconds,
		}
		if procs == 2 {
			base = r.Seconds
		}
		if base > 0 {
			row.Speedup = base / r.Seconds * 2
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable6 renders Table 6.
func RenderTable6(rows []Table6Row) string {
	t := metrics.NewTable("Table 6: effect of number of processors (sender initiated)",
		"Ckt", "Num Procs.", "Ckt. Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)", "Speedup")
	for _, r := range rows {
		t.Add(r.Circuit, fmt.Sprintf("%d", r.Procs), fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%d", r.Occupancy), fmt.Sprintf("%.3f", r.MBytes),
			metrics.Seconds(r.Seconds), metrics.Ratio(r.Speedup))
	}
	return t.String()
}

// --- Section 5.3.3: the locality measure ---------------------------------

// LocalityRow is one locality-measure computation.
type LocalityRow struct {
	Circuit string
	Method  string
	Measure float64
}

// Locality computes the paper's locality measure (average hops between
// routing processor and owning processor) for each assignment method.
func Locality(circuits []*circuit.Circuit, s Setup) []LocalityRow {
	var rows []LocalityRow
	for _, c := range circuits {
		part := s.partition(c)
		for _, m := range LocalityMethods() {
			rows = append(rows, LocalityRow{
				Circuit: c.Name, Method: m.Label,
				Measure: assign.LocalityMeasure(c, part, m.build(c, s)),
			})
		}
	}
	return rows
}

// RenderLocality renders the locality measure table.
func RenderLocality(rows []LocalityRow) string {
	t := metrics.NewTable("Section 5.3.3: locality measure (avg hops from router to owner)",
		"Ckt.", "Asmt. Method", "Locality")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%.2f", r.Measure))
	}
	return t.String()
}

// --- Cross-paradigm comparison (Section 5.2) -----------------------------

// ComparisonRow contrasts the paradigms on one circuit.
type ComparisonRow struct {
	Variant string
	CktHt   int64
	MBytes  float64
}

// Comparison reproduces the Section 5.2 traffic/quality comparison:
// shared memory (8-byte lines) vs the best sender initiated and receiver
// initiated message passing schedules.
func Comparison(c *circuit.Circuit, s Setup) []ComparisonRow {
	res, h := smQuality(c, s, sm.Dynamic, nil, "comparison/shared memory")
	rows := []ComparisonRow{{
		Variant: "shared memory (8B lines)",
		CktHt:   res.CircuitHeight,
		MBytes:  h.replay(Table5LineSize).Traffic().MBytes(),
	}}
	snd := runMP(c, s, mp.SenderInitiated(2, 5), "sender")
	rcv := runMP(c, s, mp.ReceiverInitiated(1, 5, false), "receiver")
	rows = append(rows,
		ComparisonRow{Variant: "MP sender initiated (SRD=2 SLD=5)", CktHt: snd.CktHt, MBytes: snd.MBytes},
		ComparisonRow{Variant: "MP receiver initiated (RLD=1 RRD=5)", CktHt: rcv.CktHt, MBytes: rcv.MBytes},
	)
	return rows
}

// RenderComparison renders the cross-paradigm comparison.
func RenderComparison(rows []ComparisonRow) string {
	t := metrics.NewTable("Section 5.2: shared memory vs message passing",
		"Variant", "Ckt. Ht.", "MBytes Xfrd.")
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes))
	}
	return t.String()
}

package experiments

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/metrics"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
)

// traceHandle pairs a reference trace with the processor count that
// produced it.
type traceHandle struct {
	tr    *trace.Trace
	procs int
	// run, when non-nil, is the collector's document for the traced run
	// that produced the trace; each replay appends its traffic to it.
	run *obs.Run
}

// simulate replays the trace through a fresh coherence simulator at the
// given line size, holding a pool slot for the replay. Concurrent calls
// are safe: the trace is read-only and each call owns its simulator.
func (h *traceHandle) simulate(pool *par.Pool, lineSize int) (*cache.Simulator, error) {
	sim, err := cache.New(h.procs, lineSize)
	if err != nil {
		return nil, fmt.Errorf("experiments: cache replay: %w", err)
	}
	pool.Run(func() {
		for _, ref := range h.tr.Refs {
			sim.Access(ref)
		}
	})
	return sim, nil
}

// record attaches a finished replay's traffic to the traced run's
// document. Callers that simulate concurrently must record in line-size
// order so the document is deterministic.
func (h *traceHandle) record(sim *cache.Simulator) {
	if h.run != nil {
		h.run.Cache = append(h.run.Cache, sim.Doc())
	}
}

// replay is simulate plus record, for callers with a single replay.
func (h *traceHandle) replay(pool *par.Pool, lineSize int) (*cache.Simulator, error) {
	sim, err := h.simulate(pool, lineSize)
	if err != nil {
		return nil, err
	}
	h.record(sim)
	return sim, nil
}

// --- Table 1: network traffic using sender initiated updates ------------

// Table1Schedules are the (SendRmtData, SendLocData) pairs of Table 1.
func Table1Schedules() []mp.Strategy {
	var out []mp.Strategy
	for _, srd := range []int{2, 5, 10} {
		for _, sld := range []int{1, 5, 10, 20} {
			out = append(out, mp.SenderInitiated(srd, sld))
		}
	}
	return out
}

// mpSweep routes one cell per strategy concurrently and merges the rows
// in schedule order.
func mpSweep(c *circuit.Circuit, s Setup, schedules []mp.Strategy, label func(mp.Strategy) string) ([]MPRow, error) {
	return cells(s, schedules, func(st mp.Strategy, sub Setup) (MPRow, error) {
		return runMP(c, sub, st, label(st))
	})
}

// Table1 sweeps the sender initiated update frequencies on circuit c.
func Table1(c *circuit.Circuit, s Setup) ([]MPRow, error) {
	return mpSweep(c, s, Table1Schedules(), func(st mp.Strategy) string {
		return fmt.Sprintf("SRD=%d SLD=%d", st.SendRmtData, st.SendLocData)
	})
}

// RenderTable1 renders Table 1.
func RenderTable1(rows []MPRow) string {
	return renderMPTable("Table 1: network traffic using sender initiated updates", rows)
}

// --- Table 2: non-blocking receiver initiated updates -------------------

// Table2Schedules are the (ReqLocData, ReqRmtData) pairs of Table 2.
func Table2Schedules() []mp.Strategy {
	var out []mp.Strategy
	for _, rld := range []int{1, 2, 10} {
		for _, rrd := range []int{5, 10, 30} {
			out = append(out, mp.ReceiverInitiated(rld, rrd, false))
		}
	}
	return out
}

// Table2 sweeps the non-blocking receiver initiated update frequencies.
func Table2(c *circuit.Circuit, s Setup) ([]MPRow, error) {
	return mpSweep(c, s, Table2Schedules(), func(st mp.Strategy) string {
		return fmt.Sprintf("RLD=%d RRD=%d", st.ReqLocData, st.ReqRmtData)
	})
}

// RenderTable2 renders Table 2.
func RenderTable2(rows []MPRow) string {
	return renderMPTable("Table 2: traffic using non-blocking receiver initiated updates", rows)
}

// --- Section 5.1.3: blocking vs non-blocking and mixed schedules --------

// Blocking compares blocking against non-blocking receiver initiated
// runs on the same schedules: quality is expected to be about the same
// while blocking execution time is substantially larger.
func Blocking(c *circuit.Circuit, s Setup) ([]MPRow, error) {
	type task struct {
		st    mp.Strategy
		label string
	}
	var tasks []task
	for _, rrd := range []int{5, 10} {
		tasks = append(tasks,
			task{mp.ReceiverInitiated(1, rrd, false), fmt.Sprintf("RRD=%d non-blocking", rrd)},
			task{mp.ReceiverInitiated(1, rrd, true), fmt.Sprintf("RRD=%d blocking", rrd)})
	}
	return cells(s, tasks, func(t task, sub Setup) (MPRow, error) {
		return runMP(c, sub, t.st, t.label)
	})
}

// RenderBlocking renders the blocking comparison.
func RenderBlocking(rows []MPRow) string {
	return renderMPTable("Section 5.1.3: blocking vs non-blocking receiver initiated", rows)
}

// MixedSchedule is the paper's example mixed schedule: SendLocData = 5,
// SendRmtData = 2, ReqLocData = 1, ReqRmtData = 5.
func MixedSchedule() mp.Strategy {
	return mp.Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5}
}

// Mixed runs the paper's mixed schedule alongside the pure schemes it is
// compared against in Section 5.1.3: the most frequent sender initiated
// schedule (whose traffic it roughly halves) and the matching receiver
// initiated schedule.
func Mixed(c *circuit.Circuit, s Setup) ([]MPRow, error) {
	type task struct {
		st    mp.Strategy
		label string
	}
	tasks := []task{
		{mp.SenderInitiated(2, 1), "pure sender SRD=2 SLD=1"},
		{mp.ReceiverInitiated(1, 5, false), "pure receiver RLD=1 RRD=5"},
		{MixedSchedule(), "mixed SLD=5 SRD=2 RLD=1 RRD=5"},
	}
	return cells(s, tasks, func(t task, sub Setup) (MPRow, error) {
		return runMP(c, sub, t.st, t.label)
	})
}

// RenderMixed renders the mixed-schedule comparison.
func RenderMixed(rows []MPRow) string {
	return renderMPTable("Section 5.1.3: mixed update schedules", rows)
}

// --- Table 3: shared memory traffic as a function of cache line size ----

// Table3Row is one line-size measurement of the shared memory version.
type Table3Row struct {
	Circuit  string
	LineSize int
	MBytes   float64
	CktHt    int64
	// WriteFraction is the fraction of bytes attributable to writes
	// (word writes, writebacks, invalidation refetches); the paper
	// reports over 80%.
	WriteFraction float64
}

// Table3LineSizes are the cache line sizes of Table 3.
func Table3LineSizes() []int { return []int{4, 8, 16, 32} }

// Table3 measures shared memory bus traffic at each line size, using the
// paper's default dynamic (distributed loop) wire distribution. One
// traced routing feeds all replays, which run concurrently and record in
// line-size order.
func Table3(c *circuit.Circuit, s Setup) ([]Table3Row, error) {
	res, h, err := smQuality(c, s, sm.Dynamic, nil, "table3")
	if err != nil {
		return nil, err
	}
	sims, err := par.Gather(Table3LineSizes(), func(_ int, ls int) (*cache.Simulator, error) {
		return h.simulate(s.Pool, ls)
	})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for i, sim := range sims {
		h.record(sim)
		tr := sim.Traffic()
		rows = append(rows, Table3Row{
			Circuit:       c.Name,
			LineSize:      Table3LineSizes()[i],
			MBytes:        tr.MBytes(),
			CktHt:         res.CircuitHeight,
			WriteFraction: sim.AttributedWriteFraction(),
		})
	}
	return rows, nil
}

// RenderTable3 renders Table 3.
func RenderTable3(rows []Table3Row) string {
	t := metrics.NewTable("Table 3: traffic as a function of cache line size (shared memory)",
		"Circuit", "Cache Line Size", "MBytes Transferred", "Write Fraction")
	for _, r := range rows {
		t.Add(r.Circuit, fmt.Sprintf("%d", r.LineSize),
			fmt.Sprintf("%.3f", r.MBytes), fmt.Sprintf("%.0f%%", r.WriteFraction*100))
	}
	return t.String()
}

// --- Tables 4 and 5: effect of locality ---------------------------------

// AssignmentMethod is one row of the locality tables.
type AssignmentMethod struct {
	Label     string
	Threshold int // -1 marks round robin
}

// LocalityMethods are the four assignment methods of Tables 4 and 5.
func LocalityMethods() []AssignmentMethod {
	return []AssignmentMethod{
		{Label: "round robin", Threshold: -1},
		{Label: "ThresholdCost = 30", Threshold: 30},
		{Label: "ThresholdCost = 1000", Threshold: 1000},
		{Label: "ThresholdCost = inf.", Threshold: assign.ThresholdInfinity},
	}
}

func (m AssignmentMethod) build(c *circuit.Circuit, s Setup) (*assign.Assignment, error) {
	part, err := s.partition(c)
	if err != nil {
		return nil, err
	}
	if m.Threshold < 0 {
		return assign.AssignRoundRobin(c, part), nil
	}
	return assign.AssignThreshold(c, part, m.Threshold), nil
}

// localityCell is one circuit×method cell of Tables 4, 5 and the
// locality measure.
type localityCell struct {
	c *circuit.Circuit
	m AssignmentMethod
}

func localityCells(circuits []*circuit.Circuit) []localityCell {
	var out []localityCell
	for _, c := range circuits {
		for _, m := range LocalityMethods() {
			out = append(out, localityCell{c: c, m: m})
		}
	}
	return out
}

// Table4Row is one message passing locality measurement.
type Table4Row struct {
	Circuit string
	Method  string
	CktHt   int64
	MBytes  float64
	Seconds float64
}

// Table4Strategy is the sender initiated schedule Tables 4 and 6 use
// (SendRmtData = 2, SendLocData = 10, matching the paper's cross-table
// row: same traffic and time as Table 1's corresponding entry).
func Table4Strategy() mp.Strategy { return mp.SenderInitiated(2, 10) }

// Table4 measures the effect of wire assignment locality on the message
// passing version (sender initiated).
func Table4(circuits []*circuit.Circuit, s Setup) ([]Table4Row, error) {
	// Plain cells: an MP cell holds no reference trace, so there is
	// nothing heavy to gate (contrast Table5).
	return cells(s, localityCells(circuits), func(t localityCell, sub Setup) (Table4Row, error) {
		asn, err := t.m.build(t.c, sub)
		if err != nil {
			return Table4Row{}, err
		}
		r, err := runMPAssigned(t.c, sub, Table4Strategy(), asn, t.m.Label)
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			Circuit: t.c.Name, Method: t.m.Label,
			CktHt: r.CktHt, MBytes: r.MBytes, Seconds: r.Seconds,
		}, nil
	})
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	t := metrics.NewTable("Table 4: effect of locality (message passing, sender initiated)",
		"Ckt.", "Asmt. Method", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%.3f", r.MBytes), metrics.Seconds(r.Seconds))
	}
	return t.String()
}

// Table5Row is one shared memory locality measurement.
type Table5Row struct {
	Circuit string
	Method  string
	CktHt   int64
	MBytes  float64
}

// Table5LineSize is the cache line size Table 5 reports (8 bytes).
const Table5LineSize = 8

// Table5 measures the effect of wire assignment locality on the shared
// memory version: static assignments replace the distributed loop, and
// traffic comes from the coherence simulator at 8-byte lines.
func Table5(circuits []*circuit.Circuit, s Setup) ([]Table5Row, error) {
	// Each cell pins a full reference trace between its traced run and
	// its replay, so admission is gated to pool width.
	return gatedCells(s, localityCells(circuits), func(t localityCell, sub Setup) (Table5Row, error) {
		asn, err := t.m.build(t.c, sub)
		if err != nil {
			return Table5Row{}, err
		}
		res, h, err := smQuality(t.c, sub, sm.Static, asn, "table5/"+t.m.Label)
		if err != nil {
			return Table5Row{}, err
		}
		sim, err := h.replay(sub.Pool, Table5LineSize)
		if err != nil {
			return Table5Row{}, err
		}
		return Table5Row{
			Circuit: t.c.Name, Method: t.m.Label,
			CktHt:  res.CircuitHeight,
			MBytes: sim.Traffic().MBytes(),
		}, nil
	})
}

// RenderTable5 renders Table 5.
func RenderTable5(rows []Table5Row) string {
	t := metrics.NewTable("Table 5: effect of locality (shared memory, 8-byte lines)",
		"Ckt.", "Asmt. Method", "Ckt. Height", "MBytes Xfrd.")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes))
	}
	return t.String()
}

// --- Table 6: effect of the number of processors -------------------------

// Table6Row is one processor-count measurement.
type Table6Row struct {
	Circuit   string
	Procs     int
	CktHt     int64
	Occupancy int64
	MBytes    float64
	Seconds   float64
	// Speedup is computed the paper's way: relative to the two-processor
	// run, multiplied by two.
	Speedup float64
}

// Table6Procs are the processor counts of Table 6.
func Table6Procs() []int { return []int{2, 4, 9, 16} }

// Table6 measures quality, traffic and time as the processor count grows
// (sender initiated schedule, locality assignment rebuilt per count).
// Speedups are derived after the fan-out from the two-processor row.
func Table6(c *circuit.Circuit, s Setup) ([]Table6Row, error) {
	rows, err := cells(s, Table6Procs(), func(procs int, sub Setup) (Table6Row, error) {
		sub.Procs = procs
		r, err := runMP(c, sub, Table4Strategy(), fmt.Sprintf("%d procs", procs))
		if err != nil {
			return Table6Row{}, err
		}
		return Table6Row{
			Circuit: c.Name, Procs: procs,
			CktHt: r.CktHt, Occupancy: r.Occupancy,
			MBytes: r.MBytes, Seconds: r.Seconds,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var base float64
	for i := range rows {
		if rows[i].Procs == 2 {
			base = rows[i].Seconds
		}
		if base > 0 {
			rows[i].Speedup = base / rows[i].Seconds * 2
		}
	}
	return rows, nil
}

// RenderTable6 renders Table 6.
func RenderTable6(rows []Table6Row) string {
	t := metrics.NewTable("Table 6: effect of number of processors (sender initiated)",
		"Ckt", "Num Procs.", "Ckt. Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)", "Speedup")
	for _, r := range rows {
		t.Add(r.Circuit, fmt.Sprintf("%d", r.Procs), fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%d", r.Occupancy), fmt.Sprintf("%.3f", r.MBytes),
			metrics.Seconds(r.Seconds), metrics.Ratio(r.Speedup))
	}
	return t.String()
}

// --- Section 5.3.3: the locality measure ---------------------------------

// LocalityRow is one locality-measure computation.
type LocalityRow struct {
	Circuit string
	Method  string
	Measure float64
}

// Locality computes the paper's locality measure (average hops between
// routing processor and owning processor) for each assignment method.
func Locality(circuits []*circuit.Circuit, s Setup) ([]LocalityRow, error) {
	return cells(s, localityCells(circuits), func(t localityCell, sub Setup) (LocalityRow, error) {
		part, err := sub.partition(t.c)
		if err != nil {
			return LocalityRow{}, err
		}
		asn, err := t.m.build(t.c, sub)
		if err != nil {
			return LocalityRow{}, err
		}
		return LocalityRow{
			Circuit: t.c.Name, Method: t.m.Label,
			Measure: assign.LocalityMeasure(t.c, part, asn),
		}, nil
	})
}

// RenderLocality renders the locality measure table.
func RenderLocality(rows []LocalityRow) string {
	t := metrics.NewTable("Section 5.3.3: locality measure (avg hops from router to owner)",
		"Ckt.", "Asmt. Method", "Locality")
	for _, r := range rows {
		t.Add(r.Circuit, r.Method, fmt.Sprintf("%.2f", r.Measure))
	}
	return t.String()
}

// --- Cross-paradigm comparison (Section 5.2) -----------------------------

// ComparisonRow contrasts the paradigms on one circuit.
type ComparisonRow struct {
	Variant string
	CktHt   int64
	MBytes  float64
}

// Comparison reproduces the Section 5.2 traffic/quality comparison:
// shared memory (8-byte lines) vs the best sender initiated and receiver
// initiated message passing schedules. The three variants run
// concurrently as heterogeneous cells.
func Comparison(c *circuit.Circuit, s Setup) ([]ComparisonRow, error) {
	variants := []func(Setup) (ComparisonRow, error){
		func(sub Setup) (ComparisonRow, error) {
			res, h, err := smQuality(c, sub, sm.Dynamic, nil, "comparison/shared memory")
			if err != nil {
				return ComparisonRow{}, err
			}
			sim, err := h.replay(sub.Pool, Table5LineSize)
			if err != nil {
				return ComparisonRow{}, err
			}
			return ComparisonRow{
				Variant: "shared memory (8B lines)",
				CktHt:   res.CircuitHeight,
				MBytes:  sim.Traffic().MBytes(),
			}, nil
		},
		func(sub Setup) (ComparisonRow, error) {
			r, err := runMP(c, sub, mp.SenderInitiated(2, 5), "sender")
			if err != nil {
				return ComparisonRow{}, err
			}
			return ComparisonRow{Variant: "MP sender initiated (SRD=2 SLD=5)", CktHt: r.CktHt, MBytes: r.MBytes}, nil
		},
		func(sub Setup) (ComparisonRow, error) {
			r, err := runMP(c, sub, mp.ReceiverInitiated(1, 5, false), "receiver")
			if err != nil {
				return ComparisonRow{}, err
			}
			return ComparisonRow{Variant: "MP receiver initiated (RLD=1 RRD=5)", CktHt: r.CktHt, MBytes: r.MBytes}, nil
		},
	}
	return cells(s, variants, func(fn func(Setup) (ComparisonRow, error), sub Setup) (ComparisonRow, error) {
		return fn(sub)
	})
}

// RenderComparison renders the cross-paradigm comparison.
func RenderComparison(rows []ComparisonRow) string {
	t := metrics.NewTable("Section 5.2: shared memory vs message passing",
		"Variant", "Ckt. Ht.", "MBytes Xfrd.")
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%d", r.CktHt), fmt.Sprintf("%.3f", r.MBytes))
	}
	return t.String()
}

package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCritPathShapeSmall(t *testing.T) {
	rows := must(CritPath(smallCircuit(), smallSetup()))(t)
	if len(rows) != 7 {
		t.Fatalf("critpath table must have 7 rows, got %d", len(rows))
	}
	for _, r := range rows {
		sum := r.ComputeS + r.PacketS + r.BlockedS + r.BarrierS + r.NetworkS
		if math.Abs(sum-r.TotalS) > 1e-9 {
			t.Errorf("%s: path categories sum to %.9f, total is %.9f", r.Label, sum, r.TotalS)
		}
		if r.Steps == 0 {
			t.Errorf("%s: empty critical path", r.Label)
		}
		// Section 5.1.3's property on the path: only blocking schedules
		// can carry blocked time.
		if strings.Contains(r.Label, "non-blocking") || strings.HasPrefix(r.Label, "SI ") {
			if r.BlockedS != 0 {
				t.Errorf("%s: non-blocking run reports %.9fs blocked on its critical path", r.Label, r.BlockedS)
			}
		}
	}
}

func TestCritPathExcludedFromAllTables(t *testing.T) {
	// The critpath rows come from traced runs; keeping the table out of
	// `paper -all` is what keeps the golden output hash stable.
	for _, name := range TableNames() {
		if name == "critpath" {
			t.Fatal("critpath must not be part of `paper -all`")
		}
	}
	// It must still be reachable by name.
	if _, err := Render("critpath", smallCircuit(), smallCircuit(), smallSetup()); err != nil {
		t.Fatalf("Render(critpath) failed: %v", err)
	}
}

func TestWriteTraceProducesValidDocument(t *testing.T) {
	var buf bytes.Buffer
	cp, err := WriteTrace(smallCircuit(), smallSetup(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if cp == nil || len(cp.Steps) == 0 {
		t.Fatal("traced run has no critical path")
	}
}

package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/metrics"
	"locusroute/internal/obs"
	"locusroute/internal/part"
	"locusroute/internal/route"
)

// --- Partition-parallel routing sweep ------------------------------------

// PartitionRow is one configuration of the partition-parallel sweep: a
// partition count (0 labels the sequential baseline), the realised tree
// shape, the boundary-wire cost of that shape, the routing quality, and
// the measured wall clock against the sequential baseline.
type PartitionRow struct {
	Label         string
	Partitions    int
	Depth         int
	BoundaryWires int
	BoundaryFrac  float64
	CktHt         int64
	Occupancy     int64
	WallS         float64
	Speedup       float64
	// RouteHash fingerprints the final cost array (sha256, truncated);
	// equal hashes mean bit-identical routed state. The partitions=1 row
	// always matches the sequential baseline.
	RouteHash string
	// MatchesSeq reports whether the final cost array is bit-identical
	// to the sequential baseline's.
	MatchesSeq bool
}

// Partition sweeps the partition-parallel router over the given leaf
// counts (nil sweeps 1, 2, 4, 8) against the sequential baseline.
// Unlike the simulated tables, the Time column here is real wall clock —
// the rows' quality and hash columns are deterministic, but the timing
// (and therefore the speedup) varies run to run and with the host's
// core count, which is one reason this table stays out of `paper -all`.
// Cells run serially, never through the pool: concurrent cells would
// contend for cores and corrupt each other's wall-clock measurements.
func Partition(c *circuit.Circuit, s Setup, counts []int) ([]PartitionRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	params := s.routerParams()

	seqStart := time.Now()
	seqRes, seqArr := route.Sequential(c, params)
	seqWall := time.Since(seqStart).Seconds()
	seqHash := hashArray(seqArr)
	rows := []PartitionRow{{
		Label:      "sequential",
		CktHt:      seqRes.CircuitHeight,
		Occupancy:  seqRes.Occupancy,
		WallS:      seqWall,
		Speedup:    1,
		RouteHash:  seqHash,
		MatchesSeq: true,
	}}
	if s.Obs.Enabled() {
		s.Obs.Append(obs.Run{
			Name: "partition/sequential", Backend: "sequential", Circuit: c.Name, Procs: 1,
			Quality: &obs.Quality{CircuitHeight: seqRes.CircuitHeight, Occupancy: seqRes.Occupancy},
		})
	}

	for _, n := range counts {
		label := fmt.Sprintf("partitioned p=%d", n)
		start := time.Now()
		res, arr, st, err := part.Route(c, params, part.Config{Partitions: n})
		if err != nil {
			return nil, fmt.Errorf("experiments: partition sweep %q: %w", label, err)
		}
		wall := time.Since(start).Seconds()
		rows = append(rows, PartitionRow{
			Label:         label,
			Partitions:    st.Partitions,
			Depth:         st.Depth,
			BoundaryWires: st.BoundaryWires,
			BoundaryFrac:  st.BoundaryFrac(),
			CktHt:         res.CircuitHeight,
			Occupancy:     res.Occupancy,
			WallS:         wall,
			Speedup:       seqWall / wall,
			RouteHash:     hashArray(arr),
			MatchesSeq:    arr.Equal(seqArr),
		})
		if s.Obs.Enabled() {
			s.Obs.Append(obs.Run{
				Name: "partition/" + label, Backend: "partitioned", Circuit: c.Name, Procs: st.Partitions,
				Quality: &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
				Partition: &obs.PartitionDoc{
					Partitions: st.Partitions, Depth: st.Depth,
					BoundaryWires: st.BoundaryWires, BoundaryFrac: st.BoundaryFrac(),
					LevelWires: st.LevelWires, RegionWallNs: st.RegionWallNs,
				},
			})
		}
	}
	return rows, nil
}

// hashArray fingerprints a cost array's cells (truncated sha256 over the
// little-endian int32 cells).
func hashArray(a *costarray.CostArray) string {
	h := sha256.New()
	var buf [4]byte
	for _, v := range a.Cells() {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// RenderPartition renders the partition sweep.
func RenderPartition(rows []PartitionRow) string {
	t := metrics.NewTable("Partition-parallel routing: speedup x tree depth x boundary fraction",
		"Config", "Parts", "Depth", "Bdry Wires", "Bdry Frac", "Ckt Ht.", "Occup.", "Time (s)", "Speedup", "Route Hash", "= Seq")
	for _, r := range rows {
		parts, depth := "-", "-"
		if r.Partitions > 0 {
			parts = fmt.Sprintf("%d", r.Partitions)
			depth = fmt.Sprintf("%d", r.Depth)
		}
		match := "no"
		if r.MatchesSeq {
			match = "yes"
		}
		t.Add(r.Label,
			parts,
			depth,
			fmt.Sprintf("%d", r.BoundaryWires),
			fmt.Sprintf("%.3f", r.BoundaryFrac),
			fmt.Sprintf("%d", r.CktHt),
			fmt.Sprintf("%d", r.Occupancy),
			metrics.Seconds(r.WallS),
			fmt.Sprintf("%.2fx", r.Speedup),
			r.RouteHash,
			match)
	}
	return t.String()
}

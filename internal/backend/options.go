package backend

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/part"
	"locusroute/internal/route"
	"locusroute/internal/tracev"
)

// assignMethod selects how wires are distributed across processors.
type assignMethod int

const (
	// assignDefault lets each backend pick its paper baseline: the
	// dynamic distributed loop for shared memory, ThresholdCost=1000 for
	// message passing.
	assignDefault assignMethod = iota
	assignDynamic
	assignRoundRobin
	assignThreshold
	assignLocality
)

func (m assignMethod) String() string {
	switch m {
	case assignDynamic:
		return "dynamic"
	case assignRoundRobin:
		return "round-robin"
	case assignThreshold:
		return "threshold"
	case assignLocality:
		return "pure-locality"
	}
	return "default"
}

// config accumulates the functional options; each constructor validates
// it against what its backend supports.
type config struct {
	procs      int
	procsSet   bool
	iterations int
	router     route.Params

	method    assignMethod
	threshold int

	strategy    *Strategy
	packets     mp.PacketStructure
	packetsSet  bool
	topology    []int
	dynamic     bool
	strict      bool
	blockingSet bool

	partitions    int
	partitionsSet bool
	negotiated    *part.Negotiated

	collector *obs.Collector
	tracer    *tracev.Tracer
}

func defaultConfig() config {
	return config{procs: 16, router: route.DefaultParams(), threshold: 1000}
}

// Option configures a backend at construction time.
type Option func(*config)

// WithProcs sets the processor count (goroutines, logical processes or
// simulated mesh nodes, per backend). Backends default to the paper's 16;
// the sequential backend is always 1 and rejects any other value.
func WithProcs(n int) Option {
	return func(c *config) { c.procs = n; c.procsSet = true }
}

// WithIterations sets the rip-up-and-reroute iteration count (the paper
// uses 3). Requests may still override it per call.
func WithIterations(n int) Option {
	return func(c *config) { c.iterations = n }
}

// WithRouter replaces the full router parameter set (candidate bounds,
// detour channels). WithIterations still applies on top.
func WithRouter(p route.Params) Option {
	return func(c *config) { c.router = p }
}

// WithDynamicOrder selects the shared memory distributed loop: processes
// repeatedly take the next wire from a shared counter (the paper's
// baseline, and the default). Shared memory backends only.
func WithDynamicOrder() Option {
	return func(c *config) { c.method = assignDynamic }
}

// WithRoundRobin distributes wires round-robin across processors,
// ignoring locality (the paper's load-balance-only extreme).
func WithRoundRobin() Option {
	return func(c *config) { c.method = assignRoundRobin }
}

// WithThreshold assigns wires cheaper than cost to the owner of their
// leftmost pin and longer wires by load balance (Section 4.2; the
// paper's compromise is cost 1000, the message passing default).
func WithThreshold(cost int) Option {
	return func(c *config) { c.method = assignThreshold; c.threshold = cost }
}

// WithPureLocality assigns every wire to the owner of its leftmost pin
// (ThresholdCost = infinity): minimal traffic, worst load balance.
func WithPureLocality() Option {
	return func(c *config) { c.method = assignLocality }
}

// WithStrategy sets the message passing update schedule. Message passing
// backends only; the default is the paper's standard sender initiated
// schedule, SenderInitiated(2, 10).
func WithStrategy(st Strategy) Option {
	return func(c *config) { c.strategy = &st }
}

// WithBlocking makes receiver initiated requests blocking (Section
// 5.1.3). It adjusts the configured strategy, so it composes with
// WithStrategy in either order.
func WithBlocking() Option {
	return func(c *config) { c.blockingSet = true }
}

// PacketStructure aliases the update packet structure ablation
// (Section 4.3.1).
type PacketStructure = mp.PacketStructure

// Packet structure values for WithPackets.
const (
	PacketsBbox        = mp.StructureBbox
	PacketsWireBased   = mp.StructureWireBased
	PacketsWholeRegion = mp.StructureWholeRegion
)

// WithPackets selects the update packet structure (default bounding
// box, the paper's choice). Message passing backends only.
func WithPackets(ps PacketStructure) Option {
	return func(c *config) { c.packets = ps; c.packetsSet = true }
}

// WithTopology replaces the squarest 2-D mesh with a general k-ary
// n-cube interconnect shape; the dimensions must multiply to the
// processor count. Message passing DES backend only.
func WithTopology(dims ...int) Option {
	return func(c *config) { c.topology = append([]int(nil), dims...) }
}

// WithDynamicWires enables the dynamic wire assignment ablation
// (Section 4.2): processors request wires from node 0 over the network.
// Message passing DES backend only.
func WithDynamicWires() Option {
	return func(c *config) { c.dynamic = true }
}

// WithStrictOwnership enables the strict region ownership ablation
// (Section 4.1): no replicated views, routing tasks cross region
// boundaries instead of update packets. Forces the pure-locality
// assignment. Message passing DES backend only.
func WithStrictOwnership() Option {
	return func(c *config) { c.strict = true; c.method = assignLocality }
}

// WithPartitions sets the partitioned backend's leaf-region count:
// recursive bisection splits the grid into n regions routed
// concurrently. 1 reproduces the sequential backend bit-for-bit; the
// default is part.DefaultPartitions (4), a machine-independent constant
// so the routing stays a pure function of its inputs. Partitioned
// backend only.
func WithPartitions(n int) Option {
	return func(c *config) { c.partitions = n; c.partitionsSet = true }
}

// Negotiated aliases the negotiated-congestion schedule configuration
// (internal/part): pres_fac start/multiplier/cap, history increment,
// cell capacity, and the pass bound. The zero value of every field
// selects its default.
type Negotiated = part.Negotiated

// WithNegotiatedCongestion switches routing to the PathFinder/VPR-style
// negotiated-congestion schedule: a first pass routes by length, later
// passes escalate a present-congestion factor, charge history to cells
// that stay overused, and rip up only the wires crossing them. Applies
// to the sequential and partitioned backends; it is orthogonal to
// partitioning.
func WithNegotiatedCongestion(n Negotiated) Option {
	return func(c *config) { c.negotiated = &n }
}

// WithObserver attaches a collector: every Route appends its run's
// observability document (quality, per-node times, traffic, phases) to
// col. The run itself is byte-identical with or without an observer.
func WithObserver(col *obs.Collector) Option {
	return func(c *config) { c.collector = col }
}

// WithTracer attaches an event-level recorder to the message passing
// DES backend. A tracer is confined to one run — a backend constructed
// with one must not Route concurrently.
func WithTracer(tr *tracev.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// apply folds the options over the default configuration.
func apply(opts []Option) config {
	c := defaultConfig()
	for _, o := range opts {
		o(&c)
	}
	return c
}

// optionRule is one row of the kind×option validation table: a
// construction option (or option family), the predicate that detects
// it was supplied, and the backend kinds that accept it. reject walks
// the table, so which option works on which backend is declared in
// exactly one place — adding an option or a backend means editing a
// row, never a constructor.
type optionRule struct {
	// option names the rejected option in the error message.
	option string
	// set reports whether the caller supplied the option.
	set func(*config) bool
	// kinds lists the backends that accept the option.
	kinds []Kind
	// note, when non-empty, replaces the generic guidance with a more
	// specific pointer.
	note string
}

func (r *optionRule) accepts(kind Kind) bool {
	for _, k := range r.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// kindList renders the accepting kinds for an error message:
// "the mp-des backend", "the mp-des and mp-live backends".
func kindList(kinds []Kind) string {
	if len(kinds) == 1 {
		return fmt.Sprintf("the %s backend", kinds[0])
	}
	s := "the "
	for i, k := range kinds {
		switch {
		case i == len(kinds)-1:
			s += fmt.Sprintf("and %s backends", k)
		case i > 0:
			s += fmt.Sprintf("%s, ", k)
		default:
			s += fmt.Sprintf("%s ", k)
		}
	}
	return s
}

// optionRules is the single source of truth for which construction
// option applies to which backend kind. Value-range validation (a
// supplied value being out of range for a backend that accepts the
// option) stays in reject below.
var optionRules = []optionRule{
	{option: "WithStrategy", set: func(c *config) bool { return c.strategy != nil },
		kinds: []Kind{MPDES, MPLive}},
	{option: "WithBlocking", set: func(c *config) bool { return c.blockingSet },
		kinds: []Kind{MPDES, MPLive}},
	{option: "WithPackets", set: func(c *config) bool { return c.packetsSet },
		kinds: []Kind{MPDES, MPLive}},
	{option: "WithTopology", set: func(c *config) bool { return len(c.topology) > 0 },
		kinds: []Kind{MPDES}},
	{option: "WithDynamicWires", set: func(c *config) bool { return c.dynamic },
		kinds: []Kind{MPDES}},
	{option: "WithStrictOwnership", set: func(c *config) bool { return c.strict },
		kinds: []Kind{MPDES}},
	{option: "WithTracer", set: func(c *config) bool { return c.tracer != nil },
		kinds: []Kind{MPDES}},
	// Any explicit wire distribution: the sequential backend routes
	// every wire itself and the partitioned backend distributes by
	// footprint, so neither takes an assignment method.
	{option: "wire distribution (WithDynamicOrder/WithRoundRobin/WithThreshold/WithPureLocality)",
		set:   func(c *config) bool { return c.method != assignDefault },
		kinds: []Kind{SMLive, SMTraced, MPDES, MPLive}},
	// The dynamic distributed loop specifically is shared memory only.
	{option: "WithDynamicOrder", set: func(c *config) bool { return c.method == assignDynamic },
		kinds: []Kind{SMLive, SMTraced},
		note:  "it is the shared memory distributed loop; message passing uses WithDynamicWires"},
	{option: "WithProcs", set: func(c *config) bool { return c.procsSet && c.procs != 1 },
		kinds: []Kind{SMLive, SMTraced, MPDES, MPLive, Partitioned},
		note:  "the sequential backend routes on one processor"},
	{option: "WithPartitions", set: func(c *config) bool { return c.partitionsSet },
		kinds: []Kind{Partitioned}},
	{option: "WithNegotiatedCongestion", set: func(c *config) bool { return c.negotiated != nil },
		kinds: []Kind{Sequential, Partitioned}},
}

// reject returns an error when an option inapplicable to kind was set
// (driven by optionRules) or when a supplied value is out of range.
func (c *config) reject(kind Kind) error {
	for i := range optionRules {
		r := &optionRules[i]
		if !r.set(c) || r.accepts(kind) {
			continue
		}
		if r.note != "" {
			return fmt.Errorf("locusroute: %s applies to %s, not %s: %s",
				r.option, kindList(r.kinds), kind, r.note)
		}
		return fmt.Errorf("locusroute: %s applies to %s, not %s", r.option, kindList(r.kinds), kind)
	}
	if c.partitionsSet && c.partitions < 1 {
		return fmt.Errorf("locusroute: partition count %d must be positive", c.partitions)
	}
	if kind != Sequential && c.procs < 1 {
		return fmt.Errorf("locusroute: processor count %d must be positive", c.procs)
	}
	return nil
}

// params returns the router parameters with the iteration override
// applied; reqIters (a per-request override) wins over the configured
// value when positive.
func (c *config) params(reqIters int) route.Params {
	p := c.router
	if c.iterations > 0 {
		p.Iterations = c.iterations
	}
	if reqIters > 0 {
		p.Iterations = reqIters
	}
	return p
}

// assignment builds the wire distribution for circ on a procs-processor
// partition. Used by the message passing backends (always) and the
// shared memory backends (static orders only).
func (c *config) assignment(circ *circuit.Circuit, procs int) (*assign.Assignment, geom.Partition, error) {
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(circ.Grid, px, py)
	if err != nil {
		return nil, geom.Partition{}, err
	}
	method := c.method
	if method == assignDefault {
		method = assignThreshold
	}
	switch method {
	case assignRoundRobin:
		return assign.AssignRoundRobin(circ, part), part, nil
	case assignThreshold:
		th := c.threshold
		if th < 0 {
			th = assign.ThresholdInfinity
		}
		return assign.AssignThreshold(circ, part, th), part, nil
	case assignLocality:
		return assign.AssignThreshold(circ, part, assign.ThresholdInfinity), part, nil
	}
	return nil, geom.Partition{}, fmt.Errorf("locusroute: assignment method %v needs no precomputed assignment", method)
}

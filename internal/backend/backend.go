// Package backend is the backend core of the LocusRoute reproduction:
// one Backend interface over the four ways of running the same routing
// workload that the paper compares (Martonosi & Gupta, ICPP 1989),
// built with functional options and safe for concurrent Route calls.
//
// This package is internal so the serving layer (internal/locusd) can
// construct backends without importing the public facade; embedders use
// pkg/locusroute, which re-exports this surface one-to-one. The
// behavioural contract — validation (requests are rejected, never
// clamped), context handling at run boundaries, per-kind option
// rejection — lives here; pkg/locusroute adds nothing but names.
package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/mp"
	"locusroute/internal/sm"
	"locusroute/internal/trace"
)

// Kind identifies one of the six backend implementations.
type Kind string

const (
	// Sequential is the uniprocessor reference router.
	Sequential Kind = "sequential"
	// SMLive is the shared memory router on real goroutines and one
	// atomic cost array.
	SMLive Kind = "sm-live"
	// SMTraced is the Tango-style multiplexed shared memory router that
	// records every shared reference for the coherence simulator.
	SMTraced Kind = "sm-traced"
	// MPDES is the message passing router on the simulated mesh
	// (discrete-event simulation; reports simulated time and traffic).
	MPDES Kind = "mp-des"
	// MPLive is the message passing router on real goroutines whose only
	// interaction is marshalled packets over channels.
	MPLive Kind = "mp-live"
	// Partitioned is the partition-parallel router: a recursive bisection
	// of the grid whose leaf regions route concurrently on one shared
	// cost array, with boundary-crossing wires reconciled serially at
	// each tree level. One partition is bit-identical to Sequential.
	Partitioned Kind = "partitioned"
)

// Kinds lists every backend kind in a stable order.
func Kinds() []Kind { return []Kind{Sequential, SMLive, SMTraced, MPDES, MPLive, Partitioned} }

// Circuit, Wire and Pin alias the repository's circuit model so callers
// of the public API can name them without reaching into internal
// packages.
type (
	Circuit = circuit.Circuit
	Wire    = circuit.Wire
	Pin     = geom.Point
	Grid    = geom.Grid
)

// Strategy aliases the message passing update schedule (see the paper's
// Figure 3 taxonomy).
type Strategy = mp.Strategy

// SenderInitiated returns the pure sender initiated schedule of the
// paper's Table 1; the standard schedule is SenderInitiated(2, 10).
func SenderInitiated(sendRmt, sendLoc int) Strategy { return mp.SenderInitiated(sendRmt, sendLoc) }

// ReceiverInitiated returns the pure receiver initiated schedule of
// Table 2, blocking or not (Section 5.1.3).
func ReceiverInitiated(reqLoc, reqRmt int, blocking bool) Strategy {
	return mp.ReceiverInitiated(reqLoc, reqRmt, blocking)
}

// BnrE generates the synthetic stand-in for the paper's bnrE benchmark
// (420 wires, 10 channels x 341 grids) from the given seed.
func BnrE(seed int64) (*Circuit, error) { return circuit.Generate(circuit.BnrELike(seed)) }

// MDC generates the synthetic stand-in for the paper's MDC benchmark
// (573 wires, 12 channels x 386 grids) from the given seed.
func MDC(seed int64) (*Circuit, error) { return circuit.Generate(circuit.MDCLike(seed)) }

// ReadCircuit parses a circuit from the repository's text format and
// validates it.
func ReadCircuit(r io.Reader) (*Circuit, error) { return circuit.Read(r) }

// Request asks a backend to route one circuit.
type Request struct {
	// Circuit is the circuit to route (required). Every wire must lie
	// inside the circuit's grid; Route returns an *OutsideGridError
	// otherwise — requests are rejected, never clamped.
	Circuit *Circuit
	// Iterations overrides the backend's rip-up-and-reroute iteration
	// count for this request (0 keeps the configured value).
	Iterations int
	// Name labels the run in observability documents; empty uses the
	// circuit name.
	Name string
}

// OutsideGridError reports a request wire whose pin lies outside the
// loaded circuit's grid.
type OutsideGridError struct {
	WireID   int
	Pin      Pin
	Channels int
	Grids    int
}

// Error implements error.
func (e *OutsideGridError) Error() string {
	return fmt.Sprintf("locusroute: wire %d pin %v outside the %d-channel x %d-grid circuit (requests are rejected, not clamped)",
		e.WireID, e.Pin, e.Channels, e.Grids)
}

// ErrNoCircuit is returned by Route when the request has no circuit.
var ErrNoCircuit = errors.New("locusroute: request has no circuit")

// ValidateRequest checks a request the way every backend's Route does:
// the circuit must be present, structurally valid, and every wire pin
// inside the grid. Exposed so admission layers can reject bad requests
// before spending a worker on them.
func ValidateRequest(req Request) error {
	if req.Circuit == nil {
		return ErrNoCircuit
	}
	if err := ValidateWires(req.Circuit.Grid, req.Circuit.Wires); err != nil {
		return err
	}
	if err := req.Circuit.Validate(); err != nil {
		return fmt.Errorf("locusroute: %w", err)
	}
	return nil
}

// ValidateWires checks that every wire has at least two pins and every
// pin lies inside grid g, returning an *OutsideGridError for the first
// escapee. This is the boundary where out-of-grid references become
// errors instead of the silent clamping internal layers would apply.
func ValidateWires(g geom.Grid, wires []Wire) error {
	bounds := g.Bounds()
	for i := range wires {
		w := &wires[i]
		if len(w.Pins) < 2 {
			return fmt.Errorf("locusroute: wire %d has %d pins, need at least 2", w.ID, len(w.Pins))
		}
		for _, p := range w.Pins {
			if !p.In(bounds) {
				return &OutsideGridError{WireID: w.ID, Pin: p, Channels: g.Channels, Grids: g.Grids}
			}
		}
	}
	return nil
}

// Result is the unified outcome of routing one circuit through any
// backend. The quality measures are always present; paradigm-specific
// detail rides in the MP/SM/RefTrace fields of the producing backend.
type Result struct {
	// Backend is the implementation that produced the result.
	Backend Kind
	// Circuit is the routed circuit's name.
	Circuit string
	// Procs is the processor count the backend ran with.
	Procs int
	// CircuitHeight and Occupancy are the paper's quality measures
	// (Section 3); lower is better.
	CircuitHeight int64
	Occupancy     int64
	// WiresRouted counts wire routings performed (wires x iterations;
	// zero where the backend does not report it).
	WiresRouted int
	// CellsExamined is the total route-evaluation work.
	CellsExamined int64
	// SimTime is the virtual execution time of the DES and traced
	// backends (zero for live backends, which run on the wall clock).
	SimTime time.Duration
	// Wall is the wall-clock duration of the Route call.
	Wall time.Duration
	// Final is the ground-truth cost array after the run — the routed
	// congestion state, used to seed serving replicas and render
	// heatmaps.
	Final *costarray.CostArray
	// MP carries the full message passing result (traffic breakdown,
	// busy-time split) when the backend is MPDES or MPLive.
	MP *mp.Result
	// SM carries the full shared memory result when the backend is
	// SMLive or SMTraced.
	SM *sm.Result
	// RefTrace is the shared-reference trace of an SMTraced run, ready
	// for the coherence simulator; nil for every other backend.
	RefTrace *trace.Trace
}

// Backend routes circuits through one of the paper's implementations.
type Backend interface {
	// Route routes the request's circuit and reports the unified result.
	// The context is honoured at run boundaries: a request that is
	// cancelled before or during the run returns ctx.Err(), though an
	// in-flight run finishes in the background (its result discarded) —
	// the simulators have no preemption points.
	Route(ctx context.Context, req Request) (Result, error)
	// Kind identifies the implementation.
	Kind() Kind
	// Procs reports the configured processor count.
	Procs() int
}

// New constructs the backend named by kind. It is the string-driven
// dispatch used by commands and the serving daemon; the per-kind
// constructors are the typed equivalents.
func New(kind Kind, opts ...Option) (Backend, error) {
	switch kind {
	case Sequential:
		return NewSequential(opts...)
	case SMLive:
		return NewSharedMemory(opts...)
	case SMTraced:
		return NewTracedSharedMemory(opts...)
	case MPDES:
		return NewMessagePassing(opts...)
	case MPLive:
		return NewLiveMessagePassing(opts...)
	case Partitioned:
		return NewPartitioned(opts...)
	}
	return nil, fmt.Errorf("locusroute: unknown backend kind %q (want one of %v)", kind, Kinds())
}

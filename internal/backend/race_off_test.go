//go:build !race

package backend

// raceEnabled reports whether this test binary was built with the race
// detector; alloc-count assertions are skipped under it (instrumentation
// adds allocations that are not the code's own).
const raceEnabled = false

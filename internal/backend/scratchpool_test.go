package backend

import (
	"testing"

	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// TestScratchPoolAllocs pins the pooled per-request routing cost: a
// Get/RouteWire/Put cycle must stay at the reused-scratch allocation
// floor (the caller-owned Path copy), not the 12 allocs/op of the
// standalone fresh-Scratch path recorded in BENCH_route.json.
func TestScratchPoolAllocs(t *testing.T) {
	c, err := BnrE(7)
	if err != nil {
		t.Fatal(err)
	}
	arr := costarray.New(c.Grid)
	view := route.ArrayView{A: arr}
	params := route.DefaultParams()
	w := &c.Wires[17]
	var pool ScratchPool
	// Warm the pool and the per-wire pin cache outside the measurement.
	s := pool.Get(c.Grid)
	s.RouteWire(view, w, params)
	pool.Put(c.Grid, s)

	avg := testing.AllocsPerRun(200, func() {
		s := pool.Get(c.Grid)
		s.RouteWire(view, w, params)
		pool.Put(c.Grid, s)
	})
	if raceEnabled {
		// The pooled path still ran above for data-race coverage; only
		// the count is skipped — race instrumentation allocates on the
		// sync.Pool path, inflating AllocsPerRun beyond the code's own.
		t.Skip("allocation counts are inflated under the race detector; the <=2 pin runs in the non-race suite")
	}
	// One allocation is inherent (takePath's caller-owned copy); allow
	// one more for pool-internal noise. The fresh-Scratch path costs 12.
	if avg > 2 {
		t.Errorf("pooled route cycle costs %.1f allocs/op, want <= 2 (fresh Scratch costs 12)", avg)
	}
}

// TestScratchPoolPerGrid checks that scratches are segregated by grid:
// a scratch returned for one grid shape is never handed out for
// another, so alternating circuits cannot thrash each other's visited
// arrays.
func TestScratchPoolPerGrid(t *testing.T) {
	gA := geom.Grid{Channels: 10, Grids: 341}
	gB := geom.Grid{Channels: 12, Grids: 386}
	var pool ScratchPool
	a := pool.Get(gA)
	pool.Put(gA, a)
	b := pool.Get(gB)
	if a == b {
		t.Fatal("pool handed a scratch sized for grid A out for grid B")
	}
	pool.Put(gB, b)
	// Putting nil is a no-op, not a panic (drain paths pass through).
	pool.Put(gA, nil)
}

// TestScratchPoolZeroValue checks the zero value works without any
// constructor, matching the Server embedding in locusd.
func TestScratchPoolZeroValue(t *testing.T) {
	var pool ScratchPool
	g := geom.Grid{Channels: 4, Grids: 16}
	s := pool.Get(g)
	if s == nil {
		t.Fatal("zero-value pool returned nil scratch")
	}
	pool.Put(g, s)
}

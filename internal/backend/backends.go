package backend

import (
	"context"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/mp"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/part"
	"locusroute/internal/route"
	"locusroute/internal/sm"
)

// NewSequential constructs the uniprocessor reference router: one
// consistent cost array, the baseline both parallel paradigms are
// measured against.
func NewSequential(opts ...Option) (Backend, error) {
	c := apply(opts)
	if err := c.reject(Sequential); err != nil {
		return nil, err
	}
	return &seqBackend{cfg: c}, nil
}

// NewPartitioned constructs the partition-parallel router: the grid is
// recursively bisected into WithPartitions leaf regions whose wires
// route concurrently on one shared cost array (wires are classified by
// pin-bounding-box footprint into the deepest region containing them),
// while boundary-crossing wires route serially at their tree level
// against the merged state. With one partition the result is
// bit-identical to the sequential backend.
func NewPartitioned(opts ...Option) (Backend, error) {
	c := apply(opts)
	if err := c.reject(Partitioned); err != nil {
		return nil, err
	}
	return &partBackend{cfg: c}, nil
}

// NewSharedMemory constructs the shared memory router on real
// goroutines: an unlocked atomic cost array, a distributed loop (or a
// static assignment via WithRoundRobin/WithThreshold/WithPureLocality)
// and a barrier per iteration.
func NewSharedMemory(opts ...Option) (Backend, error) {
	return newSM(SMLive, opts)
}

// NewTracedSharedMemory constructs the Tango-style multiplexed shared
// memory router: a deterministic virtual-time execution whose every
// shared reference is recorded; the result carries the reference trace
// for the coherence simulator.
func NewTracedSharedMemory(opts ...Option) (Backend, error) {
	return newSM(SMTraced, opts)
}

// NewMessagePassing constructs the message passing router on the
// simulated mesh (discrete-event simulation): replicated views kept
// consistent by an explicit update schedule, reporting simulated time
// and network traffic.
func NewMessagePassing(opts ...Option) (Backend, error) {
	return newMP(MPDES, opts)
}

// NewLiveMessagePassing constructs the message passing router on real
// goroutines whose only interaction is marshalled packets over
// channels — the same protocol the simulated mesh measures.
func NewLiveMessagePassing(opts ...Option) (Backend, error) {
	return newMP(MPLive, opts)
}

// run wraps a backend's synchronous routing function with the shared
// request validation, context handling and wall-clock measurement. The
// context is honoured at run boundaries: if it is cancelled mid-run the
// call returns ctx.Err() while the abandoned run finishes in the
// background (the simulators have no preemption points) and its result
// is discarded.
func run(ctx context.Context, req Request, fn func() (Result, error)) (Result, error) {
	if err := ValidateRequest(req); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	if ctx.Done() == nil {
		// No cancellation possible: run on this goroutine.
		res, err := fn()
		if err != nil {
			return Result{}, err
		}
		res.Wall = time.Since(start)
		return res, nil
	}
	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := fn()
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			return Result{}, out.err
		}
		out.res.Wall = time.Since(start)
		return out.res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// observe appends the run document to the configured collector, if any.
func observe(col *obs.Collector, doc obs.Run) {
	col.Append(doc)
}

// runName labels the run in observability documents.
func runName(req Request) string {
	if req.Name != "" {
		return req.Name
	}
	return req.Circuit.Name
}

// seqBackend is the sequential reference implementation.
type seqBackend struct{ cfg config }

func (b *seqBackend) Kind() Kind { return Sequential }
func (b *seqBackend) Procs() int { return 1 }

func (b *seqBackend) Route(ctx context.Context, req Request) (Result, error) {
	return run(ctx, req, func() (Result, error) {
		params := b.cfg.params(req.Iterations)
		var res route.Result
		var arr *costarray.CostArray
		var pdoc *obs.PartitionDoc
		if b.cfg.negotiated != nil {
			// Negotiated congestion on the sequential shape: the
			// single-leaf partition driver, which routes every wire in ID
			// order on one goroutine.
			pres, parr, st, err := part.Route(req.Circuit, params,
				part.Config{Partitions: 1, Negotiated: b.cfg.negotiated})
			if err != nil {
				return Result{}, err
			}
			res, arr, pdoc = pres, parr, partitionDoc(st)
		} else {
			res, arr = route.Sequential(req.Circuit, params)
		}
		out := Result{
			Backend:       Sequential,
			Circuit:       req.Circuit.Name,
			Procs:         1,
			CircuitHeight: res.CircuitHeight,
			Occupancy:     res.Occupancy,
			WiresRouted:   res.WiresRouted,
			CellsExamined: res.CellsExamined,
			Final:         arr,
		}
		observe(b.cfg.collector, obs.Run{
			Name: runName(req), Backend: string(Sequential), Circuit: req.Circuit.Name, Procs: 1,
			Quality:   &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
			Partition: pdoc,
		})
		return out, nil
	})
}

// partBackend is the partition-parallel implementation.
type partBackend struct{ cfg config }

func (b *partBackend) Kind() Kind { return Partitioned }
func (b *partBackend) Procs() int { return b.cfg.procs }

func (b *partBackend) Route(ctx context.Context, req Request) (Result, error) {
	return run(ctx, req, func() (Result, error) {
		// The pool bounds concurrent region routing at the configured
		// processor count; the routing itself is a pure function of
		// (circuit, params, partitions), so the bound affects only wall
		// time, never results.
		pcfg := part.Config{
			Partitions: b.cfg.partitions,
			Workers:    par.New(b.cfg.procs),
			Negotiated: b.cfg.negotiated,
		}
		res, arr, st, err := part.Route(req.Circuit, b.cfg.params(req.Iterations), pcfg)
		if err != nil {
			return Result{}, err
		}
		out := Result{
			Backend:       Partitioned,
			Circuit:       req.Circuit.Name,
			Procs:         b.cfg.procs,
			CircuitHeight: res.CircuitHeight,
			Occupancy:     res.Occupancy,
			WiresRouted:   res.WiresRouted,
			CellsExamined: res.CellsExamined,
			Final:         arr,
		}
		observe(b.cfg.collector, obs.Run{
			Name: runName(req), Backend: string(Partitioned), Circuit: req.Circuit.Name, Procs: b.cfg.procs,
			Quality:   &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
			Partition: partitionDoc(st),
		})
		return out, nil
	})
}

// partitionDoc renders partition stats into the obs section.
func partitionDoc(st *part.Stats) *obs.PartitionDoc {
	if st == nil {
		return nil
	}
	return &obs.PartitionDoc{
		Partitions:      st.Partitions,
		Depth:           st.Depth,
		BoundaryWires:   st.BoundaryWires,
		BoundaryFrac:    st.BoundaryFrac(),
		LevelWires:      st.LevelWires,
		RegionWallNs:    st.RegionWallNs,
		NegotiatedIters: st.NegotiatedIters,
		OverusedCells:   st.OverusedCells,
		PresFacFinal:    st.PresFacFinal,
	}
}

// smBackend covers the live and traced shared memory implementations.
type smBackend struct {
	kind Kind
	cfg  config
}

func newSM(kind Kind, opts []Option) (Backend, error) {
	c := apply(opts)
	if err := c.reject(kind); err != nil {
		return nil, err
	}
	return &smBackend{kind: kind, cfg: c}, nil
}

func (b *smBackend) Kind() Kind { return b.kind }
func (b *smBackend) Procs() int { return b.cfg.procs }

// smConfig assembles a fresh sm.Config for one request, building the
// static assignment when a non-dynamic distribution was configured.
func (b *smBackend) smConfig(circ *circuit.Circuit, req Request) (sm.Config, error) {
	cfg := sm.DefaultConfig()
	cfg.Procs = b.cfg.procs
	cfg.Router = b.cfg.params(req.Iterations)
	if m := b.cfg.method; m != assignDefault && m != assignDynamic {
		asn, _, err := b.cfg.assignment(circ, cfg.Procs)
		if err != nil {
			return sm.Config{}, err
		}
		cfg.Order = sm.Static
		cfg.Assignment = asn
	}
	if b.cfg.collector.Enabled() && b.kind == SMLive {
		cfg.Obs = obs.NewSM()
	}
	return cfg, nil
}

func (b *smBackend) Route(ctx context.Context, req Request) (Result, error) {
	return run(ctx, req, func() (Result, error) {
		cfg, err := b.smConfig(req.Circuit, req)
		if err != nil {
			return Result{}, err
		}
		var res sm.Result
		var ref *Result
		if b.kind == SMTraced {
			smRes, tr, err := sm.RunTraced(req.Circuit, cfg)
			if err != nil {
				return Result{}, err
			}
			res = smRes
			ref = &Result{RefTrace: tr, SimTime: time.Duration(res.Span)}
		} else {
			smRes, err := sm.RunLive(req.Circuit, cfg)
			if err != nil {
				return Result{}, err
			}
			res = smRes
			ref = &Result{}
		}
		out := *ref
		out.Backend = b.kind
		out.Circuit = req.Circuit.Name
		out.Procs = cfg.Procs
		out.CircuitHeight = res.CircuitHeight
		out.Occupancy = res.Occupancy
		out.WiresRouted = res.WiresRouted
		out.CellsExamined = res.CellsExamined
		out.Final = res.Final
		smCopy := res
		out.SM = &smCopy
		observe(b.cfg.collector, sm.ObsRun(runName(req), string(b.kind), req.Circuit.Name, cfg, res))
		return out, nil
	})
}

// mpBackend covers the DES and live message passing implementations.
type mpBackend struct {
	kind Kind
	cfg  config
}

func newMP(kind Kind, opts []Option) (Backend, error) {
	c := apply(opts)
	if err := c.reject(kind); err != nil {
		return nil, err
	}
	return &mpBackend{kind: kind, cfg: c}, nil
}

func (b *mpBackend) Kind() Kind { return b.kind }
func (b *mpBackend) Procs() int { return b.cfg.procs }

// mpConfig assembles a fresh mp.Config for one request. Each call gets
// its own observer and configuration, so a backend routes concurrent
// requests safely (except under WithTracer, which is one-run-at-a-time).
func (b *mpBackend) mpConfig(req Request) mp.Config {
	st := mp.SenderInitiated(2, 10) // the paper's standard schedule
	if b.cfg.strategy != nil {
		st = *b.cfg.strategy
	}
	if b.cfg.blockingSet {
		st.Blocking = true
	}
	if b.cfg.strict {
		st = Strategy{} // strict ownership has no views to update
	}
	cfg := mp.DefaultConfig(st)
	cfg.Procs = b.cfg.procs
	cfg.Router = b.cfg.params(req.Iterations)
	if b.cfg.packetsSet {
		cfg.Packets = b.cfg.packets
	}
	cfg.Topology = b.cfg.topology
	cfg.DynamicWires = b.cfg.dynamic
	cfg.StrictOwnership = b.cfg.strict
	cfg.Trace = b.cfg.tracer
	if b.cfg.collector.Enabled() {
		cfg.Obs = obs.NewMP(cfg.Procs)
	}
	return cfg
}

func (b *mpBackend) Route(ctx context.Context, req Request) (Result, error) {
	return run(ctx, req, func() (Result, error) {
		cfg := b.mpConfig(req)
		asn, _, err := b.cfg.assignment(req.Circuit, cfg.Procs)
		if err != nil {
			return Result{}, err
		}
		runFn := mp.Run
		if b.kind == MPLive {
			runFn = mp.RunLive
		}
		res, err := runFn(req.Circuit, asn, cfg)
		if err != nil {
			return Result{}, err
		}
		out := Result{
			Backend:       b.kind,
			Circuit:       req.Circuit.Name,
			Procs:         cfg.Procs,
			CircuitHeight: res.CircuitHeight,
			Occupancy:     res.Occupancy,
			CellsExamined: res.CellsExamined,
			SimTime:       time.Duration(res.Time),
			Final:         res.Final,
		}
		mpCopy := res
		out.MP = &mpCopy
		observe(b.cfg.collector, mp.ObsRun(runName(req), string(b.kind), req.Circuit.Name, cfg, res))
		return out, nil
	})
}

package backend

import (
	"sync"

	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// ScratchPool recycles route.Scratch values across independent routing
// calls. A fresh Scratch costs one visited-grid allocation plus the
// kernel's map/buffer growth — BENCH_route.json records the standalone
// path at 12 allocs per wire versus 1 for a reused scratch — so
// per-request routing (locusd's serving path, one wire per request)
// pools them instead of allocating.
//
// Scratches are segregated by grid: a Scratch's visited array is sized
// for one grid, and feeding it a different shape forces a reallocation
// (route.Scratch.ensure). A single pool serving two circuits with
// different grids would thrash — every Get could surface a scratch
// sized for the other circuit — so the pool keys a sync.Pool per grid.
// The key space is bounded by the set of distinct grids the process
// serves, which is the set of loaded circuits.
//
// The zero value is ready to use. All methods are safe for concurrent
// use; the Scratches themselves remain single-threaded between Get and
// Put.
type ScratchPool struct {
	pools sync.Map // geom.Grid -> *sync.Pool of *route.Scratch
}

// pool returns the per-grid sync.Pool, creating it on first use.
func (p *ScratchPool) pool(g geom.Grid) *sync.Pool {
	if sp, ok := p.pools.Load(g); ok {
		return sp.(*sync.Pool)
	}
	sp, _ := p.pools.LoadOrStore(g, &sync.Pool{
		New: func() any { return route.NewScratch(g) },
	})
	return sp.(*sync.Pool)
}

// Get returns a Scratch sized for grid g, reusing a previously Put one
// when available. The caller owns it until Put.
func (p *ScratchPool) Get(g geom.Grid) *route.Scratch {
	return p.pool(g).Get().(*route.Scratch)
}

// Put returns a Scratch obtained from Get(g) to the pool. The caller
// must not use s afterwards.
func (p *ScratchPool) Put(g geom.Grid, s *route.Scratch) {
	if s == nil {
		return
	}
	p.pool(g).Put(s)
}

package backend

import (
	"context"
	"testing"

	"locusroute/internal/obs"
)

// TestPartitionedBackendMatchesSequential pins the backend-level
// equivalence: the partitioned backend at one partition produces the
// same quality numbers and the same final cost array as the sequential
// backend, across seeds. (The kernel-level byte-for-byte pin lives in
// internal/part; this covers the option plumbing.)
func TestPartitionedBackendMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		c, err := BnrE(seed)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewSequential()
		if err != nil {
			t.Fatal(err)
		}
		part1, err := NewPartitioned(WithPartitions(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.Route(context.Background(), Request{Circuit: c})
		if err != nil {
			t.Fatal(err)
		}
		got, err := part1.Route(context.Background(), Request{Circuit: c})
		if err != nil {
			t.Fatal(err)
		}
		if got.CircuitHeight != want.CircuitHeight || got.Occupancy != want.Occupancy ||
			got.WiresRouted != want.WiresRouted || got.CellsExamined != want.CellsExamined {
			t.Errorf("seed %d: partitioned(1) quality %+v != sequential %+v", seed, got, want)
		}
		if !got.Final.Equal(want.Final) {
			t.Errorf("seed %d: partitioned(1) final cost array differs from sequential", seed)
		}
	}
}

// TestPartitionedBackendDeterministic: the partitioned backend is a
// pure function of its inputs regardless of the processor bound.
func TestPartitionedBackendDeterministic(t *testing.T) {
	c, err := BnrE(5)
	if err != nil {
		t.Fatal(err)
	}
	var ref Result
	for i, procs := range []int{1, 2, 8} {
		be, err := NewPartitioned(WithPartitions(4), WithProcs(procs))
		if err != nil {
			t.Fatal(err)
		}
		res, err := be.Route(context.Background(), Request{Circuit: c})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.CircuitHeight != ref.CircuitHeight || res.Occupancy != ref.Occupancy ||
			res.CellsExamined != ref.CellsExamined {
			t.Errorf("procs %d: result %+v differs from procs-1 reference %+v", procs, res, ref)
		}
		if !res.Final.Equal(ref.Final) {
			t.Errorf("procs %d: final cost array depends on the processor bound", procs)
		}
	}
}

// TestPartitionedObserverDoc: the partition section rides in the run
// document with the region counters filled in.
func TestPartitionedObserverDoc(t *testing.T) {
	c, err := BnrE(1)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	be, err := NewPartitioned(WithPartitions(4), WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Route(context.Background(), Request{Circuit: c}); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot("test")
	if len(snap.Runs) != 1 {
		t.Fatalf("collector has %d runs, want 1", len(snap.Runs))
	}
	p := snap.Runs[0].Partition
	if p == nil {
		t.Fatal("run document has no partition section")
	}
	if p.Partitions != 4 {
		t.Errorf("partition doc reports %d partitions, want 4", p.Partitions)
	}
	if p.BoundaryWires <= 0 || p.BoundaryFrac <= 0 {
		t.Errorf("partition doc has no boundary wires (%d, %v); bnrE has long wires", p.BoundaryWires, p.BoundaryFrac)
	}
	if len(p.RegionWallNs) == 0 {
		t.Error("partition doc has no per-region timings")
	}
}

// TestNegotiatedOnSequentialBackend: WithNegotiatedCongestion composes
// with the sequential backend and surfaces the schedule counters.
func TestNegotiatedOnSequentialBackend(t *testing.T) {
	c, err := BnrE(1)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	be, err := NewSequential(WithNegotiatedCongestion(Negotiated{}), WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Route(context.Background(), Request{Circuit: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.CircuitHeight <= 0 || res.Final == nil {
		t.Errorf("degenerate negotiated result: %+v", res)
	}
	p := col.Snapshot("test").Runs[0].Partition
	if p == nil || p.NegotiatedIters < 1 {
		t.Errorf("negotiated run document missing schedule counters: %+v", p)
	}
}

// TestPartitionOptionRejection: the new options fail on backends they
// do not apply to, at construction.
func TestPartitionOptionRejection(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"partitions on sequential", func() error {
			_, err := NewSequential(WithPartitions(4))
			return err
		}},
		{"partitions on MP", func() error {
			_, err := NewMessagePassing(WithPartitions(4))
			return err
		}},
		{"zero partitions", func() error {
			_, err := NewPartitioned(WithPartitions(0))
			return err
		}},
		{"negotiation on SM", func() error {
			_, err := NewSharedMemory(WithNegotiatedCongestion(Negotiated{}))
			return err
		}},
		{"wire distribution on partitioned", func() error {
			_, err := NewPartitioned(WithRoundRobin())
			return err
		}},
	}
	for _, cse := range cases {
		if cse.err() == nil {
			t.Errorf("%s: constructor accepted an inapplicable configuration", cse.name)
		}
	}
}

//go:build race

package backend

const raceEnabled = true

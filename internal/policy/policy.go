// Package policy is the composable request-path layer of the routing
// service: a Chain of small, independently testable elements that decide
// what happens to a request before it reaches a serving shard — deadline
// admission, per-client rate limiting, circuit breaking, result caching,
// and criticality-aware (earliest-deadline-first) scheduling.
//
// Every element follows the nil-receiver zero-cost discipline of
// internal/obs and internal/tracev: a nil element (and a nil *Chain)
// ignores every call, so a service built with the chain fully disabled
// pays a single pointer test per request — ~0 ns/op, 0 allocs/op, within
// noise of a service with no chain at all (BENCH_policy.json pins this).
//
// The chain's stages map onto the request lifecycle:
//
//	Admit   deadline -> rate limit -> breaker   (reject before queueing)
//	Lookup  result cache                        (answer without routing)
//	queue   Sched / EDFQueue                    (order + shed by criticality)
//	Store   result cache                        (publish the evaluation)
//	Observe breaker feedback                    (failures trip it open)
//	Release aborted admission                   (shed/evicted: no outcome)
//
// Every successful Admit is balanced by exactly one terminal call:
// Observe for requests that ran to an outcome (served, cached, or
// deadline-expired), Release for requests aborted before evaluation
// (shed at a full gate, evicted by preemption). Feeding an abort to
// Observe would fabricate evidence — and leaking a half-open breaker
// probe wedges the breaker open until restart.
//
// Elements never import the service that hosts them; they speak the
// neutral Request vocabulary below and report their decisions as typed
// errors the host maps to transport codes (HTTP 429/503/504).
package policy

import (
	"errors"
	"time"

	"locusroute/internal/geom"
)

// Request is the policy-relevant shape of one service request. The host
// builds it on the stack from its own request type; elements read it and
// never retain it.
type Request struct {
	// Client identifies the caller for per-client rate limiting ("" is a
	// valid shared identity).
	Client string
	// Circuit names the target circuit (cache key component).
	Circuit string
	// Key fingerprints the request's wire set (KeyPins; cache key
	// component).
	Key uint64
	// Deadline is the request's completion deadline — its criticality
	// under EDF: earlier deadline = more critical. The zero time means
	// "no deadline" (least critical, always admissible).
	Deadline time.Time
	// Commit marks a mutating request: never served from or stored to
	// the result cache.
	Commit bool
}

// Sentinel errors for the chain's rejections. Elements wrap them in
// typed errors carrying retry hints; hosts match with errors.Is/As.
var (
	// ErrDeadlineInfeasible rejects a request whose deadline cannot be
	// met even by an empty server (slack below the admission floor).
	ErrDeadlineInfeasible = errors.New("policy: deadline infeasible, not admitted")
	// ErrRateLimited rejects a request over its client's token bucket.
	ErrRateLimited = errors.New("policy: client over rate limit")
	// ErrBreakerOpen rejects every request while the circuit breaker is
	// open.
	ErrBreakerOpen = errors.New("policy: circuit breaker open")
	// ErrEvicted sheds an already-queued request preempted by a more
	// critical arrival at a full admission gate.
	ErrEvicted = errors.New("policy: shed for a more critical request")
)

// Counter is one exported element statistic: a monotonic count with the
// metadata the /metrics exposition needs.
type Counter struct {
	Name  string // metric suffix, snake_case
	Help  string
	Value int64
}

// Element is the read-side contract every chain element satisfies: a
// stable name and its counters, rendered by the host's /metrics and
// /debug/vars surfaces. Decision methods are per-element (Admit on the
// gatekeepers, Get/Put on the cache, queue operations on the scheduler)
// because their signatures differ.
type Element interface {
	// Name is the element's stable identifier (a Prometheus label value).
	Name() string
	// Counters returns the element's statistics in a stable order.
	Counters() []Counter
}

// Config sizes every element; a zero field leaves that element out of
// the chain entirely (nil, zero-cost). The zero Config builds no chain.
type Config struct {
	// AdmitFloor enables deadline admission: requests whose deadline
	// slack is below this floor are rejected up front (ErrDeadlineInfeasible).
	AdmitFloor time.Duration
	// RatePerSec enables per-client token-bucket rate limiting at this
	// sustained rate; Burst is the bucket depth (0 = ceil(RatePerSec),
	// minimum 1).
	RatePerSec float64
	Burst      int
	// BreakerFailures enables the circuit breaker: this many consecutive
	// failures trip it open for BreakerCooldown (0 cooldown = 1s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// CacheEntries enables the result cache with this capacity.
	CacheEntries int
	// EDF enables the criticality scheduler: earliest-deadline-first
	// ordering inside the batch window, least-critical-first shedding at
	// a full admission gate.
	EDF bool
}

// Enabled reports whether the configuration enables any element.
func (c Config) Enabled() bool {
	return c.AdmitFloor > 0 || c.RatePerSec > 0 || c.BreakerFailures > 0 ||
		c.CacheEntries > 0 || c.EDF
}

// Chain is the composed policy pipeline. A nil *Chain (what New returns
// for a fully disabled Config) ignores every call at the cost of one
// pointer test — hosts hold a *Chain unconditionally and never branch on
// configuration themselves.
type Chain struct {
	deadline *Deadline
	limit    *RateLimit
	breaker  *Breaker
	cache    *Cache
	sched    *Sched
}

// New builds the chain cfg describes, or nil when cfg enables nothing.
func New(cfg Config) *Chain {
	if !cfg.Enabled() {
		return nil
	}
	c := &Chain{}
	if cfg.AdmitFloor > 0 {
		c.deadline = NewDeadline(cfg.AdmitFloor)
	}
	if cfg.RatePerSec > 0 {
		c.limit = NewRateLimit(cfg.RatePerSec, cfg.Burst)
	}
	if cfg.BreakerFailures > 0 {
		c.breaker = NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)
	}
	if cfg.CacheEntries > 0 {
		c.cache = NewCache(cfg.CacheEntries)
	}
	if cfg.EDF {
		c.sched = NewSched()
	}
	return c
}

// Admit runs the gatekeeping stages in order — deadline feasibility,
// rate limit, breaker — returning the first rejection.
func (c *Chain) Admit(now time.Time, req *Request) error {
	if c == nil {
		return nil
	}
	if err := c.deadline.Admit(now, req); err != nil {
		return err
	}
	if err := c.limit.Admit(now, req); err != nil {
		return err
	}
	return c.breaker.Admit(now, req)
}

// ElementTimer receives one element's admission-decision duration. The
// serving layer threads a traced request's span recorder here.
type ElementTimer func(element string, d time.Duration)

// AdmitTimed is Admit with per-element attribution: timer receives each
// enabled gatekeeper's decision time, including the one that rejects.
// The untimed Admit stays the hot path — hosts call AdmitTimed only for
// traced requests, so untraced admissions pay no extra clock reads.
func (c *Chain) AdmitTimed(now time.Time, req *Request, timer ElementTimer) error {
	if c == nil {
		return nil
	}
	if timer == nil {
		return c.Admit(now, req)
	}
	if c.deadline != nil {
		t0 := time.Now()
		err := c.deadline.Admit(now, req)
		timer(c.deadline.Name(), time.Since(t0))
		if err != nil {
			return err
		}
	}
	if c.limit != nil {
		t0 := time.Now()
		err := c.limit.Admit(now, req)
		timer(c.limit.Name(), time.Since(t0))
		if err != nil {
			return err
		}
	}
	if c.breaker != nil {
		t0 := time.Now()
		err := c.breaker.Admit(now, req)
		timer(c.breaker.Name(), time.Since(t0))
		if err != nil {
			return err
		}
	}
	return nil
}

// Lookup consults the result cache; a commit request or a disabled cache
// always misses. epoch is the host's current cost epoch for the circuit.
func (c *Chain) Lookup(req *Request, epoch uint64) (any, bool) {
	if c == nil || req.Commit {
		return nil, false
	}
	return c.cache.Get(req.Circuit, req.Key, epoch)
}

// Store publishes an evaluated result under the epoch the evaluation
// observed. Commit requests are never cached.
func (c *Chain) Store(req *Request, epoch uint64, v any) {
	if c == nil || req.Commit {
		return
	}
	c.cache.Put(req.Circuit, req.Key, epoch, v)
}

// Observe feeds one completed request's outcome to the breaker.
func (c *Chain) Observe(now time.Time, failed bool) {
	if c == nil {
		return
	}
	c.breaker.Observe(now, failed)
}

// Release balances an Admit whose request never reached evaluation —
// shed at a full admission gate or evicted by preemption. The breaker
// gets a neutral probe release instead of a fabricated outcome.
func (c *Chain) Release() {
	if c == nil {
		return
	}
	c.breaker.Release()
}

// Sched returns the criticality scheduler, nil when EDF is disabled.
// Hosts use it both as the on/off switch for EDF dispatch and as the
// counter sink for scheduling decisions.
func (c *Chain) Sched() *Sched {
	if c == nil {
		return nil
	}
	return c.sched
}

// Elements returns the enabled elements in pipeline order, for metrics
// export. Nil chain returns nil.
func (c *Chain) Elements() []Element {
	if c == nil {
		return nil
	}
	var out []Element
	if c.deadline != nil {
		out = append(out, c.deadline)
	}
	if c.limit != nil {
		out = append(out, c.limit)
	}
	if c.breaker != nil {
		out = append(out, c.breaker)
	}
	if c.cache != nil {
		out = append(out, c.cache)
	}
	if c.sched != nil {
		out = append(out, c.sched)
	}
	return out
}

// KeyPins fingerprints a pin sequence with FNV-1a: the cache's wire-set
// key. Pin order matters — the service caches what it was asked, not a
// canonicalised wire.
func KeyPins(pins []geom.Point) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range pins {
		h ^= uint64(uint32(p.X))
		h *= prime64
		h ^= uint64(uint32(p.Y))
		h *= prime64
	}
	return h
}

package policy

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sched is the criticality scheduler element: it switches the host from
// FIFO round-robin dispatch to earliest-deadline-first ordering inside
// the batch window, and from indiscriminate shedding to
// least-critical-first shedding at a full admission gate. The data
// structure doing the work is EDFQueue; Sched itself carries the
// element identity and the scheduling counters the host bumps.
//
// A nil *Sched means EDF is off; hosts use the nil test as the mode
// switch and fall back to their FIFO path.
type Sched struct {
	scheduled atomic.Int64
	batches   atomic.Int64
	evictions atomic.Int64
}

// NewSched returns the scheduler element.
func NewSched() *Sched { return &Sched{} }

// NoteScheduled counts one request entering an EDF queue.
func (s *Sched) NoteScheduled() {
	if s != nil {
		s.scheduled.Add(1)
	}
}

// NoteBatch counts one EDF-ordered batch closing.
func (s *Sched) NoteBatch() {
	if s != nil {
		s.batches.Add(1)
	}
}

// NoteEviction counts one queued request shed for a more critical
// arrival.
func (s *Sched) NoteEviction() {
	if s != nil {
		s.evictions.Add(1)
	}
}

// Name implements Element.
func (s *Sched) Name() string { return "edf" }

// Counters implements Element.
func (s *Sched) Counters() []Counter {
	return []Counter{
		{Name: "scheduled_total", Help: "requests entered into EDF queues", Value: s.scheduled.Load()},
		{Name: "batches_total", Help: "EDF-ordered batches dispatched", Value: s.batches.Load()},
		{Name: "evictions_total", Help: "queued requests shed for more critical arrivals", Value: s.evictions.Load()},
	}
}

// Item is one queued request: its deadline (criticality) and an opaque
// host value. An Item belongs to at most one EDFQueue at a time.
type Item struct {
	Deadline time.Time
	Value    any
	pos      int // heap index; -1 once removed
}

// EDFQueue is a deadline-ordered request queue: Push admits in O(log n),
// PopBatch drains up to a batch in earliest-deadline-first order, and
// EvictSlackest removes the least-critical entry — the preemption the
// criticality-aware shed uses. All methods are safe for concurrent use;
// an item removed by one path (pop, evict) is invisible to every other,
// which is what makes the host's one-completion-per-request invariant
// easy to keep.
//
// C is a one-slot wake channel: Push signals it, consumers wait on it.
// Because the slot is buffered, a signal sent between a consumer's
// empty-check and its wait is never lost; consumers that drain only part
// of the queue must Signal again so a sibling picks up the rest.
type EDFQueue struct {
	mu     sync.Mutex
	heap   []*Item // min-heap on Deadline; zero deadline sorts last
	notify chan struct{}
}

// NewEDFQueue returns an empty queue.
func NewEDFQueue() *EDFQueue {
	return &EDFQueue{notify: make(chan struct{}, 1)}
}

// DeadlineLess is the criticality order: a is more critical than b when
// its deadline is earlier. The zero time (no deadline) is least
// critical and sorts after every real deadline. Exported so hosts
// comparing candidate shed victims rank them exactly as the queue does.
func DeadlineLess(a, b time.Time) bool {
	if a.IsZero() {
		return false
	}
	if b.IsZero() {
		return true
	}
	return a.Before(b)
}

// Push enqueues it and signals a waiting consumer.
func (q *EDFQueue) Push(it *Item) {
	q.mu.Lock()
	it.pos = len(q.heap)
	q.heap = append(q.heap, it)
	q.up(it.pos)
	q.mu.Unlock()
	q.Signal()
}

// PopBatch removes and returns up to max items in deadline order
// (earliest first). It returns nil when the queue is empty.
func (q *EDFQueue) PopBatch(max int) []*Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 || max < 1 {
		return nil
	}
	if max > len(q.heap) {
		max = len(q.heap)
	}
	out := make([]*Item, 0, max)
	for len(out) < max && len(q.heap) > 0 {
		out = append(out, q.popMin())
	}
	return out
}

// Len reports the queued item count.
func (q *EDFQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// SlackestDeadline peeks the least-critical queued deadline (the
// latest, with "no deadline" counting as infinitely late). ok is false
// on an empty queue.
func (q *EDFQueue) SlackestDeadline() (deadline time.Time, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	i := q.slackestLocked()
	if i < 0 {
		return time.Time{}, false
	}
	return q.heap[i].Deadline, true
}

// EvictSlackest removes and returns the least-critical queued item,
// provided it is strictly less critical than tighterThan (a zero
// tighterThan preempts only no-deadline entries). It returns nil when
// no entry qualifies — the caller's request is then the least critical
// and must be shed itself.
func (q *EDFQueue) EvictSlackest(tighterThan time.Time) *Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	i := q.slackestLocked()
	if i < 0 {
		return nil
	}
	if !DeadlineLess(tighterThan, q.heap[i].Deadline) {
		return nil
	}
	return q.remove(i)
}

// slackestLocked finds the max-deadline index, -1 when empty. The max
// of a min-heap lives in the leaves; scanning the whole slice is simple
// and the queue is bounded by the host's admission gate.
func (q *EDFQueue) slackestLocked() int {
	if len(q.heap) == 0 {
		return -1
	}
	max := 0
	for i := 1; i < len(q.heap); i++ {
		if DeadlineLess(q.heap[max].Deadline, q.heap[i].Deadline) {
			max = i
		}
	}
	return max
}

// C is the wake channel: one buffered signal per Push.
func (q *EDFQueue) C() <-chan struct{} { return q.notify }

// Signal re-arms the wake channel without enqueueing; consumers call it
// after a partial drain so siblings see the remainder.
func (q *EDFQueue) Signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// popMin removes the heap root. Caller holds the lock.
func (q *EDFQueue) popMin() *Item { return q.remove(0) }

// remove deletes index i from the heap. Caller holds the lock.
func (q *EDFQueue) remove(i int) *Item {
	it := q.heap[i]
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	it.pos = -1
	return it
}

func (q *EDFQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].pos = i
	q.heap[j].pos = j
}

func (q *EDFQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !DeadlineLess(q.heap[i].Deadline, q.heap[parent].Deadline) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *EDFQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.heap) && DeadlineLess(q.heap[l].Deadline, q.heap[min].Deadline) {
			min = l
		}
		if r < len(q.heap) && DeadlineLess(q.heap[r].Deadline, q.heap[min].Deadline) {
			min = r
		}
		if min == i {
			return
		}
		q.swap(i, min)
		i = min
	}
}

package policy

import (
	"sync"
	"sync/atomic"
)

// Cache is the result cache, keyed by (circuit, wire-set key, cost
// epoch). The epoch is the host's commit counter for the circuit: every
// committed path bumps it, so a hit is only possible while the
// congestion state a result was computed against is still current —
// commits invalidate by advancing the epoch, never by scanning the
// cache. Stale-epoch entries age out through the FIFO ring.
//
// Values are opaque (any); the host stores its own response type.
// A nil *Cache never hits and stores nothing, at zero cost.
type Cache struct {
	cap int

	mu      sync.Mutex
	entries map[cacheKey]any
	ring    []cacheKey // insertion order, for FIFO eviction
	next    int

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64
}

type cacheKey struct {
	circuit string
	key     uint64
	epoch   uint64
}

// NewCache returns a result cache holding up to capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[cacheKey]any, capacity),
		ring:    make([]cacheKey, 0, capacity),
	}
}

// Get returns the value stored for (circuit, key, epoch), if any.
func (c *Cache) Get(circuit string, key, epoch uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	ck := cacheKey{circuit: circuit, key: key, epoch: epoch}
	c.mu.Lock()
	v, ok := c.entries[ck]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores v under (circuit, key, epoch), evicting the oldest entry
// at capacity. Re-storing an existing key overwrites in place.
func (c *Cache) Put(circuit string, key, epoch uint64, v any) {
	if c == nil {
		return
	}
	ck := cacheKey{circuit: circuit, key: key, epoch: epoch}
	c.mu.Lock()
	if _, exists := c.entries[ck]; exists {
		c.entries[ck] = v
		c.mu.Unlock()
		c.stores.Add(1)
		return
	}
	evicted := false
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, ck)
	} else {
		delete(c.entries, c.ring[c.next])
		c.ring[c.next] = ck
		c.next = (c.next + 1) % c.cap
		evicted = true
	}
	c.entries[ck] = v
	c.mu.Unlock()
	c.stores.Add(1)
	if evicted {
		c.evictions.Add(1)
	}
}

// Len reports the live entry count (for tests and vars).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Name implements Element.
func (c *Cache) Name() string { return "cache" }

// Counters implements Element.
func (c *Cache) Counters() []Counter {
	return []Counter{
		{Name: "hits_total", Help: "requests answered from the result cache", Value: c.hits.Load()},
		{Name: "misses_total", Help: "cache lookups that missed", Value: c.misses.Load()},
		{Name: "stores_total", Help: "results stored in the cache", Value: c.stores.Load()},
		{Name: "evictions_total", Help: "entries evicted at capacity", Value: c.evictions.Load()},
		{Name: "entries", Help: "live cache entries", Value: int64(c.Len())},
	}
}

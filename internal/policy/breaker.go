package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerOpenError is Breaker's rejection; RetryAfter is the cooldown
// remaining, the host's Retry-After hint on 503 responses.
type BreakerOpenError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("policy: circuit breaker open (retry in %v)", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrBreakerOpen) hold.
func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// Breaker is a consecutive-failure circuit breaker: threshold failures
// in a row trip it open, rejecting every request for the cooldown; the
// first request after the cooldown runs as a half-open probe whose
// outcome closes or re-opens it. It protects the batch pipeline from
// deadline-expiry storms — when every evaluation is already too late,
// fast rejection drains the queue faster than futile routing does.
//
// A nil *Breaker admits everything at zero cost.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool

	admitted atomic.Int64
	rejected atomic.Int64
	trips    atomic.Int64
}

// NewBreaker returns a breaker tripping after threshold consecutive
// failures, staying open for cooldown (<= 0 defaults to 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Admit passes requests while closed, rejects while open, and admits a
// single probe at a time once the cooldown elapses.
func (b *Breaker) Admit(now time.Time, req *Request) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	switch b.state {
	case breakerOpen:
		if wait := b.cooldown - now.Sub(b.openedAt); wait > 0 {
			b.mu.Unlock()
			b.rejected.Add(1)
			return &BreakerOpenError{RetryAfter: wait}
		}
		b.state = breakerHalfOpen
		b.probing = true
	case breakerHalfOpen:
		if b.probing {
			b.mu.Unlock()
			b.rejected.Add(1)
			return &BreakerOpenError{RetryAfter: 0}
		}
		b.probing = true
	}
	b.mu.Unlock()
	b.admitted.Add(1)
	return nil
}

// Observe feeds one completed (previously admitted) request's outcome
// into the state machine.
func (b *Breaker) Observe(now time.Time, failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !failed {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.trips.Add(1)
		}
	case breakerHalfOpen:
		b.probing = false
		if failed {
			b.state = breakerOpen
			b.openedAt = now
			b.trips.Add(1)
		} else {
			b.state = breakerClosed
			b.consecutive = 0
		}
	case breakerOpen:
		// A straggler from before the trip; the trip already counted it.
	}
}

// Release returns an admitted request's slot without an outcome: the
// request was shed at the admission gate or evicted by preemption
// before any evaluation ran, so it is evidence of neither health nor
// failure. In half-open state it frees the probe slot — leaving the
// state half-open — so the next arrival can probe; in closed state the
// consecutive-failure streak is untouched. Every successful Admit must
// be balanced by exactly one Observe or Release: a leaked half-open
// probe would wedge the breaker rejecting every request until restart.
func (b *Breaker) Release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State reports the current state name (for tests and vars).
func (b *Breaker) State() string {
	if b == nil {
		return breakerClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Name implements Element.
func (b *Breaker) Name() string { return "breaker" }

// Counters implements Element.
func (b *Breaker) Counters() []Counter {
	return []Counter{
		{Name: "admitted_total", Help: "requests admitted through the breaker", Value: b.admitted.Load()},
		{Name: "rejected_total", Help: "requests rejected while the breaker was open", Value: b.rejected.Load()},
		{Name: "trips_total", Help: "times the breaker tripped open", Value: b.trips.Load()},
	}
}

package policy

import (
	"testing"
	"time"

	"locusroute/internal/geom"
)

// The enabled/disabled benchmark pairs below pin the nil-receiver
// zero-cost discipline: every element's disabled variant runs on a nil
// receiver and must stay at ~0 ns/op with 0 allocs/op, so a service
// built with the chain off pays nothing for having the hooks in place.
// BENCH_policy.json records the measured baselines.

var benchReq = Request{Client: "bench", Circuit: "bnrE", Key: 0xdeadbeef}

func BenchmarkChainDisabled(b *testing.B) {
	c := New(Config{}) // nil
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Admit(now, &benchReq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainFull(b *testing.B) {
	c := New(Config{
		AdmitFloor: time.Millisecond, RatePerSec: 1e12, Burst: 1 << 30,
		BreakerFailures: 1 << 30, CacheEntries: 1024, EDF: true,
	})
	now := time.Now()
	req := benchReq
	req.Deadline = now.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Admit(now, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeadlineDisabled(b *testing.B) {
	var d *Deadline
	now := time.Now()
	req := benchReq
	req.Deadline = now.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Admit(now, &req)
	}
}

func BenchmarkDeadlineEnabled(b *testing.B) {
	d := NewDeadline(time.Millisecond)
	now := time.Now()
	req := benchReq
	req.Deadline = now.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Admit(now, &req)
	}
}

func BenchmarkRateLimitDisabled(b *testing.B) {
	var l *RateLimit
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Admit(now, &benchReq)
	}
}

func BenchmarkRateLimitEnabled(b *testing.B) {
	l := NewRateLimit(1e12, 1<<30) // never rejects: measures the bucket path
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Admit(now, &benchReq)
	}
}

func BenchmarkBreakerDisabled(b *testing.B) {
	var br *Breaker
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = br.Admit(now, &benchReq)
		br.Observe(now, false)
	}
}

func BenchmarkBreakerEnabled(b *testing.B) {
	br := NewBreaker(1<<30, time.Second)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = br.Admit(now, &benchReq)
		br.Observe(now, false)
	}
}

func BenchmarkCacheDisabled(b *testing.B) {
	var c *Cache
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = c.Get("bnrE", 1, 0)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(64)
	c.Put("bnrE", 1, 0, "v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("bnrE", 1, 0); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSchedDisabled(b *testing.B) {
	var s *Sched
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.NoteScheduled()
	}
}

func BenchmarkEDFQueuePushPop(b *testing.B) {
	q := NewEDFQueue()
	base := time.Now()
	items := make([]Item, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range items {
			items[j] = Item{Deadline: base.Add(time.Duration((i*31+j*17)%1000) * time.Millisecond)}
			q.Push(&items[j])
		}
		if got := len(q.PopBatch(len(items))); got != len(items) {
			b.Fatalf("popped %d of %d", got, len(items))
		}
	}
}

func BenchmarkKeyPins(b *testing.B) {
	pins := []geom.Point{{X: 2, Y: 1}, {X: 40, Y: 4}, {X: 17, Y: 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = KeyPins(pins)
	}
}

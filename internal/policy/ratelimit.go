package policy

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// maxClients bounds the per-client bucket map; past it the
// longest-idle bucket is recycled, so an adversary churning identities
// cannot grow the map without bound (a recycled client restarts with a
// full bucket, which only errs in the client's favour).
const maxClients = 4096

// RateLimitedError is RateLimit's rejection: it carries the time until
// the client's bucket refills one token, the Retry-After hint the host
// surfaces on 429 responses.
type RateLimitedError struct {
	Client     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("policy: client %q over rate limit (retry in %v)", e.Client, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrRateLimited) hold.
func (e *RateLimitedError) Unwrap() error { return ErrRateLimited }

// RateLimit is a per-client token bucket: each client sustains rate
// requests per second with bursts up to burst. Buckets refill lazily on
// access, so an idle limiter costs nothing.
//
// A nil *RateLimit admits everything at zero cost.
type RateLimit struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket

	admitted atomic.Int64
	limited  atomic.Int64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimit returns a limiter at rate requests/second per client.
// burst < 1 defaults to ceil(rate), minimum 1.
func NewRateLimit(rate float64, burst int) *RateLimit {
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &RateLimit{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// Admit takes one token from req.Client's bucket, or rejects with a
// *RateLimitedError telling the client when a token will exist.
func (l *RateLimit) Admit(now time.Time, req *Request) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	b := l.buckets[req.Client]
	if b == nil {
		if len(l.buckets) >= maxClients {
			l.evictIdlest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[req.Client] = b
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt.Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		l.mu.Unlock()
		l.admitted.Add(1)
		return nil
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	l.mu.Unlock()
	l.limited.Add(1)
	return &RateLimitedError{Client: req.Client, RetryAfter: wait}
}

// evictIdlest drops the bucket with the oldest refill stamp. Called with
// the lock held; linear over the (bounded) map.
func (l *RateLimit) evictIdlest() {
	var victim string
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = k, b.last, false
		}
	}
	delete(l.buckets, victim)
}

// Clients reports the tracked client count (for tests and vars).
func (l *RateLimit) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Name implements Element.
func (l *RateLimit) Name() string { return "ratelimit" }

// Counters implements Element.
func (l *RateLimit) Counters() []Counter {
	return []Counter{
		{Name: "admitted_total", Help: "requests within their client's rate", Value: l.admitted.Load()},
		{Name: "limited_total", Help: "requests rejected over their client's rate", Value: l.limited.Load()},
		{Name: "clients", Help: "client buckets currently tracked", Value: int64(l.Clients())},
	}
}

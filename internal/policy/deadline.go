package policy

import (
	"sync/atomic"
	"time"
)

// Deadline is the admission element that rejects requests whose deadline
// cannot be met even by an idle server: if the remaining slack is below
// the configured floor (the host's minimum service time — at least one
// batch window), queueing the request would only burn a slot before a
// guaranteed 504. Rejecting at ingress converts that to an immediate,
// cheap answer.
//
// A nil *Deadline admits everything at zero cost.
type Deadline struct {
	floor    time.Duration
	admitted atomic.Int64
	refused  atomic.Int64
}

// NewDeadline returns a deadline-admission element with the given
// minimum-slack floor.
func NewDeadline(floor time.Duration) *Deadline {
	return &Deadline{floor: floor}
}

// Admit rejects req when its deadline slack at now is below the floor.
// A zero deadline means "no deadline" and always passes.
func (d *Deadline) Admit(now time.Time, req *Request) error {
	if d == nil {
		return nil
	}
	if !req.Deadline.IsZero() && req.Deadline.Sub(now) < d.floor {
		d.refused.Add(1)
		return ErrDeadlineInfeasible
	}
	d.admitted.Add(1)
	return nil
}

// Name implements Element.
func (d *Deadline) Name() string { return "deadline" }

// Counters implements Element.
func (d *Deadline) Counters() []Counter {
	return []Counter{
		{Name: "admitted_total", Help: "requests with feasible deadlines", Value: d.admitted.Load()},
		{Name: "refused_total", Help: "requests refused for infeasible deadlines", Value: d.refused.Load()},
	}
}

package policy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"locusroute/internal/geom"
)

// t0 is a fixed base instant: the elements take explicit clocks, so the
// tests never sleep.
var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports enabled")
	}
	cases := []Config{
		{AdmitFloor: time.Millisecond},
		{RatePerSec: 1},
		{BreakerFailures: 1},
		{CacheEntries: 1},
		{EDF: true},
	}
	for _, c := range cases {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}

// TestNilChainZeroCost pins the nil-receiver contract: a disabled chain
// is a nil pointer and every call on it is a no-op.
func TestNilChainZeroCost(t *testing.T) {
	c := New(Config{})
	if c != nil {
		t.Fatal("New(zero Config) != nil")
	}
	req := Request{Client: "x", Circuit: "c", Key: 1}
	if err := c.Admit(t0, &req); err != nil {
		t.Errorf("nil chain Admit = %v", err)
	}
	if _, ok := c.Lookup(&req, 0); ok {
		t.Error("nil chain Lookup hit")
	}
	c.Store(&req, 0, "v")
	c.Observe(t0, true)
	c.Release()
	if c.Sched() != nil {
		t.Error("nil chain Sched != nil")
	}
	if c.Elements() != nil {
		t.Error("nil chain Elements != nil")
	}
}

func TestChainElementsOrder(t *testing.T) {
	c := New(Config{
		AdmitFloor: time.Millisecond, RatePerSec: 1, BreakerFailures: 1,
		CacheEntries: 1, EDF: true,
	})
	var names []string
	for _, el := range c.Elements() {
		names = append(names, el.Name())
	}
	want := []string{"deadline", "ratelimit", "breaker", "cache", "edf"}
	if len(names) != len(want) {
		t.Fatalf("Elements = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", names, want)
		}
	}
}

func TestDeadlineAdmit(t *testing.T) {
	d := NewDeadline(100 * time.Millisecond)
	tight := &Request{Deadline: t0.Add(50 * time.Millisecond)}
	if err := d.Admit(t0, tight); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Errorf("50ms slack under 100ms floor: err = %v, want ErrDeadlineInfeasible", err)
	}
	loose := &Request{Deadline: t0.Add(time.Second)}
	if err := d.Admit(t0, loose); err != nil {
		t.Errorf("1s slack: err = %v", err)
	}
	none := &Request{}
	if err := d.Admit(t0, none); err != nil {
		t.Errorf("no deadline: err = %v", err)
	}
	counters := map[string]int64{}
	for _, c := range d.Counters() {
		counters[c.Name] = c.Value
	}
	if counters["admitted_total"] != 2 || counters["refused_total"] != 1 {
		t.Errorf("counters = %v, want admitted 2, refused 1", counters)
	}
	var nilD *Deadline
	if err := nilD.Admit(t0, tight); err != nil {
		t.Errorf("nil Deadline rejects: %v", err)
	}
}

// TestRateLimitRefill drives the token bucket with a synthetic clock:
// burst admits, the next request is limited with a refill hint, and
// advancing the clock by the refill interval admits again.
func TestRateLimitRefill(t *testing.T) {
	l := NewRateLimit(2, 2) // 2 rps, burst 2
	req := &Request{Client: "a"}
	for i := 0; i < 2; i++ {
		if err := l.Admit(t0, req); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	err := l.Admit(t0, req)
	var rle *RateLimitedError
	if !errors.As(err, &rle) || !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst err = %v, want *RateLimitedError wrapping ErrRateLimited", err)
	}
	if rle.RetryAfter <= 0 || rle.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want (0, 1s] at 2 rps", rle.RetryAfter)
	}
	// Half a second refills one token at 2 rps.
	if err := l.Admit(t0.Add(500*time.Millisecond), req); err != nil {
		t.Errorf("after refill: %v", err)
	}
	// A different client has its own bucket.
	if err := l.Admit(t0, &Request{Client: "b"}); err != nil {
		t.Errorf("fresh client: %v", err)
	}
	if got := l.Clients(); got != 2 {
		t.Errorf("Clients = %d, want 2", got)
	}
}

func TestRateLimitBurstDefault(t *testing.T) {
	l := NewRateLimit(2.5, 0)
	if l.burst != 3 {
		t.Errorf("burst default = %v, want ceil(2.5) = 3", l.burst)
	}
	l = NewRateLimit(0.2, 0)
	if l.burst != 1 {
		t.Errorf("burst default = %v, want minimum 1", l.burst)
	}
}

// TestRateLimitEviction pins the identity-churn bound: past maxClients
// the longest-idle bucket is recycled instead of growing the map.
func TestRateLimitEviction(t *testing.T) {
	l := NewRateLimit(1, 1)
	for i := 0; i < maxClients+10; i++ {
		// Later clients touch later instants, so the earliest clients
		// are the idlest and get recycled.
		now := t0.Add(time.Duration(i) * time.Millisecond)
		l.Admit(now, &Request{Client: fmt.Sprintf("client-%d", i)})
	}
	if got := l.Clients(); got > maxClients {
		t.Errorf("Clients = %d, want <= %d", got, maxClients)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, time.Second)
	req := &Request{}
	// Three consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		if err := b.Admit(t0, req); err != nil {
			t.Fatalf("closed admit %d: %v", i, err)
		}
		b.Observe(t0, true)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state after 3 failures = %q, want open", got)
	}
	err := b.Admit(t0.Add(100*time.Millisecond), req)
	var boe *BreakerOpenError
	if !errors.As(err, &boe) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open admit err = %v, want *BreakerOpenError wrapping ErrBreakerOpen", err)
	}
	if boe.RetryAfter <= 0 || boe.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want remaining cooldown", boe.RetryAfter)
	}
	// Past the cooldown a single probe is admitted; a second concurrent
	// request is still rejected.
	probe := t0.Add(1100 * time.Millisecond)
	if err := b.Admit(probe, req); err != nil {
		t.Fatalf("probe admit: %v", err)
	}
	if err := b.Admit(probe, req); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("second half-open admit err = %v, want ErrBreakerOpen", err)
	}
	// A successful probe closes the breaker.
	b.Observe(probe, false)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after good probe = %q, want closed", got)
	}
	// A failed probe re-opens it.
	for i := 0; i < 3; i++ {
		b.Admit(probe, req)
		b.Observe(probe, true)
	}
	reprobe := probe.Add(1100 * time.Millisecond)
	if err := b.Admit(reprobe, req); err != nil {
		t.Fatalf("re-probe admit: %v", err)
	}
	b.Observe(reprobe, true)
	if got := b.State(); got != "open" {
		t.Errorf("state after failed probe = %q, want open", got)
	}
	counters := map[string]int64{}
	for _, c := range b.Counters() {
		counters[c.Name] = c.Value
	}
	if counters["trips_total"] != 3 {
		t.Errorf("trips_total = %d, want 3 (initial, re-trip, failed probe)", counters["trips_total"])
	}
}

// TestBreakerReleaseFreesProbe pins the abort path: a half-open probe
// that is shed or evicted before evaluation must free the probe slot
// without closing the breaker — and without it, every later Admit is
// rejected forever.
func TestBreakerReleaseFreesProbe(t *testing.T) {
	b := NewBreaker(1, time.Second)
	req := &Request{}
	if err := b.Admit(t0, req); err != nil {
		t.Fatalf("closed admit: %v", err)
	}
	b.Observe(t0, true) // threshold 1: trip
	if got := b.State(); got != "open" {
		t.Fatalf("state after failure = %q, want open", got)
	}
	probe := t0.Add(1100 * time.Millisecond)
	if err := b.Admit(probe, req); err != nil {
		t.Fatalf("probe admit after cooldown: %v", err)
	}
	if err := b.Admit(probe, req); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second half-open admit err = %v, want ErrBreakerOpen (probe slot taken)", err)
	}
	// The probe aborts before evaluation (shed at the gate): Release
	// frees the slot but yields no outcome.
	b.Release()
	if got := b.State(); got != "half-open" {
		t.Fatalf("state after Release = %q, want half-open (no outcome observed)", got)
	}
	if err := b.Admit(probe, req); err != nil {
		t.Fatalf("re-probe after Release: %v (leaked probe slot wedges the breaker)", err)
	}
	b.Observe(probe, false)
	if got := b.State(); got != "closed" {
		t.Errorf("state after good probe = %q, want closed", got)
	}
}

// TestBreakerReleaseKeepsClosedStreak pins the closed-state side: an
// aborted request is not a success, so Release must not reset the
// consecutive-failure count the way Observe(false) does.
func TestBreakerReleaseKeepsClosedStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	req := &Request{}
	b.Admit(t0, req)
	b.Observe(t0, true)
	b.Release() // a shed request mid-streak: neither success nor failure
	b.Admit(t0, req)
	b.Observe(t0, true)
	if got := b.State(); got != "open" {
		t.Errorf("state = %q, want open (Release reset the failure streak)", got)
	}
	var nilB *Breaker
	nilB.Release()
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	b.Observe(t0, true)
	b.Observe(t0, false)
	b.Observe(t0, true)
	if got := b.State(); got != "closed" {
		t.Errorf("state after interleaved outcomes = %q, want closed (streak reset)", got)
	}
}

func TestCacheHitMissEpoch(t *testing.T) {
	c := NewCache(2)
	c.Put("bnrE", 42, 0, "v0")
	if v, ok := c.Get("bnrE", 42, 0); !ok || v != "v0" {
		t.Errorf("Get same epoch = %v, %v; want v0, true", v, ok)
	}
	if _, ok := c.Get("bnrE", 42, 1); ok {
		t.Error("Get after epoch bump hit stale entry")
	}
	if _, ok := c.Get("MDC", 42, 0); ok {
		t.Error("Get different circuit hit")
	}
	// Overwrite in place.
	c.Put("bnrE", 42, 0, "v1")
	if v, _ := c.Get("bnrE", 42, 0); v != "v1" {
		t.Errorf("overwritten value = %v, want v1", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", c.Len())
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("x", 1, 0, 1)
	c.Put("x", 2, 0, 2)
	c.Put("x", 3, 0, 3) // evicts key 1
	if _, ok := c.Get("x", 1, 0); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get("x", 2, 0); !ok {
		t.Error("second entry evicted early")
	}
	if _, ok := c.Get("x", 3, 0); !ok {
		t.Error("newest entry missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	counters := map[string]int64{}
	for _, cc := range c.Counters() {
		counters[cc.Name] = cc.Value
	}
	if counters["evictions_total"] != 1 {
		t.Errorf("evictions_total = %d, want 1", counters["evictions_total"])
	}
}

func TestKeyPins(t *testing.T) {
	a := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	b := []geom.Point{{X: 3, Y: 4}, {X: 1, Y: 2}}
	if KeyPins(a) == KeyPins(b) {
		t.Error("pin order does not affect the key")
	}
	if KeyPins(a) != KeyPins([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}) {
		t.Error("identical pin sets hash differently")
	}
	if KeyPins(nil) != KeyPins([]geom.Point{}) {
		t.Error("empty pin sets hash differently")
	}
}

func TestDeadlineLess(t *testing.T) {
	early, late := t0, t0.Add(time.Second)
	var zero time.Time
	cases := []struct {
		a, b time.Time
		want bool
	}{
		{early, late, true},
		{late, early, false},
		{early, early, false},
		{zero, early, false}, // no deadline is least critical
		{early, zero, true},
		{zero, zero, false},
	}
	for _, c := range cases {
		if got := DeadlineLess(c.a, c.b); got != c.want {
			t.Errorf("DeadlineLess(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestEDFQueueOrder pins the tentpole ordering property: PopBatch
// returns items earliest-deadline-first regardless of arrival order,
// with no-deadline items last.
func TestEDFQueueOrder(t *testing.T) {
	q := NewEDFQueue()
	deadlines := []int{300, 100, 0, 200, 50} // ms; 0 = none
	for i, ms := range deadlines {
		var d time.Time
		if ms > 0 {
			d = t0.Add(time.Duration(ms) * time.Millisecond)
		}
		q.Push(&Item{Deadline: d, Value: i})
	}
	batch := q.PopBatch(10)
	var got []int
	for _, it := range batch {
		got = append(got, it.Value.(int))
	}
	want := []int{4, 1, 3, 0, 2} // 50ms, 100ms, 200ms, 300ms, none
	if len(got) != len(want) {
		t.Fatalf("PopBatch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopBatch order = %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len after full drain = %d, want 0", q.Len())
	}
	if q.PopBatch(1) != nil {
		t.Error("PopBatch on empty queue != nil")
	}
}

func TestEDFQueuePartialBatch(t *testing.T) {
	q := NewEDFQueue()
	for i := 0; i < 5; i++ {
		q.Push(&Item{Deadline: t0.Add(time.Duration(i) * time.Millisecond), Value: i})
	}
	batch := q.PopBatch(3)
	if len(batch) != 3 || batch[0].Value != 0 || batch[2].Value != 2 {
		t.Fatalf("PopBatch(3) = %v", batch)
	}
	if q.Len() != 2 {
		t.Errorf("Len after partial drain = %d, want 2", q.Len())
	}
}

// TestEvictSlackest pins the shedding rule: the evicted item is the
// least-critical one, and only when strictly less critical than the
// preemptor.
func TestEvictSlackest(t *testing.T) {
	q := NewEDFQueue()
	q.Push(&Item{Deadline: t0.Add(100 * time.Millisecond), Value: "tight"})
	q.Push(&Item{Deadline: t0.Add(900 * time.Millisecond), Value: "slack"})
	q.Push(&Item{Value: "none"}) // no deadline: slackest of all

	d, ok := q.SlackestDeadline()
	if !ok || !d.IsZero() {
		t.Fatalf("SlackestDeadline = %v, %v; want zero time, true", d, ok)
	}
	// A preemptor with any real deadline beats the no-deadline entry.
	it := q.EvictSlackest(t0.Add(time.Second))
	if it == nil || it.Value != "none" {
		t.Fatalf("EvictSlackest evicted %v, want the no-deadline item", it)
	}
	// Now the 900ms item is slackest; a 500ms preemptor beats it.
	it = q.EvictSlackest(t0.Add(500 * time.Millisecond))
	if it == nil || it.Value != "slack" {
		t.Fatalf("EvictSlackest evicted %v, want the 900ms item", it)
	}
	// A 500ms preemptor does NOT beat the remaining 100ms item.
	if it := q.EvictSlackest(t0.Add(500 * time.Millisecond)); it != nil {
		t.Fatalf("EvictSlackest evicted %v against a more critical queue", it.Value)
	}
	// A no-deadline preemptor never evicts anything with a deadline.
	if it := q.EvictSlackest(time.Time{}); it != nil {
		t.Fatalf("zero-deadline preemptor evicted %v", it.Value)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	// The evicted items must be gone from later pops.
	batch := q.PopBatch(10)
	if len(batch) != 1 || batch[0].Value != "tight" {
		t.Fatalf("final PopBatch = %v, want only the tight item", batch)
	}
}

func TestEDFQueueSignal(t *testing.T) {
	q := NewEDFQueue()
	q.Push(&Item{Deadline: t0})
	select {
	case <-q.C():
	default:
		t.Fatal("Push did not signal the wake channel")
	}
	// The channel is one-buffered: many pushes, one pending signal.
	q.Push(&Item{Deadline: t0})
	q.Push(&Item{Deadline: t0})
	select {
	case <-q.C():
	default:
		t.Fatal("second signal missing")
	}
	select {
	case <-q.C():
		t.Fatal("wake channel buffered more than one signal")
	default:
	}
	// Signal re-arms without a push.
	q.Signal()
	select {
	case <-q.C():
	default:
		t.Fatal("Signal did not re-arm the channel")
	}
}

// TestEDFQueueConcurrent hammers the queue from pushers, poppers and
// evictors at once; run under -race this pins the locking discipline.
// Every pushed item must be consumed exactly once across the two
// removal paths.
func TestEDFQueueConcurrent(t *testing.T) {
	q := NewEDFQueue()
	const pushers, perPusher = 4, 200
	total := pushers * perPusher

	var consumed sync.Map
	count := func(it *Item) {
		if _, dup := consumed.LoadOrStore(it, true); dup {
			t.Error("item consumed twice")
		}
	}

	var push sync.WaitGroup
	for p := 0; p < pushers; p++ {
		push.Add(1)
		go func(p int) {
			defer push.Done()
			for i := 0; i < perPusher; i++ {
				// Every deadline is after t0, so the evictor's t0
				// preemptor can always evict whatever is slackest.
				q.Push(&Item{Deadline: t0.Add(time.Duration(p*perPusher+i+1) * time.Microsecond), Value: p})
			}
		}(p)
	}

	done := make(chan struct{})
	var drain sync.WaitGroup
	drain.Add(2)
	go func() {
		defer drain.Done()
		for {
			for _, it := range q.PopBatch(16) {
				count(it)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	go func() {
		defer drain.Done()
		for {
			if it := q.EvictSlackest(t0); it != nil {
				count(it)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	push.Wait()
	// Let the consumers drain the remainder, then check exactly-once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		consumed.Range(func(_, _ any) bool { n++; return true })
		if n == total && q.Len() == 0 {
			break
		}
		if time.Now().After(deadline) {
			close(done)
			drain.Wait()
			t.Fatalf("consumed %d of %d items before timeout (queue len %d)", n, total, q.Len())
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	drain.Wait()
}

// Package assign implements the static wire assignment strategies of
// Section 4.2 of the paper and the locality measure of Section 5.3.3.
//
// The paper's strategies:
//
//   - Round robin: wire i goes to processor i mod P — the extreme
//     non-local baseline.
//   - ThresholdCost: wires with length cost below ThresholdCost are
//     assigned to the owner processor of their leftmost pin (locality);
//     longer wires, which have limited locality anyway, are held back and
//     assigned in a final step to balance the load, ignoring locality.
//     ThresholdCost = 0 degenerates to pure load balancing and
//     ThresholdInfinity to pure locality (every wire to its leftmost
//     pin's owner), which exhibits the paper's load imbalance.
//
// The same assignments drive both paradigms: they fix which processor
// routes which wires in the message passing version, and which logical
// process routes which wires in the locality experiments of the shared
// memory version (Table 5).
package assign

import (
	"fmt"
	"math"
	"sort"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
)

// ThresholdInfinity makes every wire assign by locality (no load-balance
// backfill). Any threshold above the largest possible wire cost behaves
// identically.
const ThresholdInfinity = math.MaxInt

// Method identifies an assignment strategy for reporting.
type Method int

const (
	// RoundRobin assigns wire i to processor i mod P.
	RoundRobin Method = iota
	// Threshold assigns by leftmost-pin locality below a cost threshold
	// and by load balancing above it.
	Threshold
)

// String names the method as the paper's tables do.
func (m Method) String() string {
	switch m {
	case RoundRobin:
		return "round robin"
	case Threshold:
		return "ThresholdCost"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// WireOrder selects the order in which each processor routes its
// assigned wires — a classic router heuristic knob. The paper routes in
// circuit order; LongestFirst places the hardest wires while the cost
// array is emptiest.
type WireOrder int

const (
	// NaturalOrder routes wires in circuit (netlist) order.
	NaturalOrder WireOrder = iota
	// LongestFirst routes each processor's longest wires first.
	LongestFirst
	// ShortestFirst routes each processor's shortest wires first.
	ShortestFirst
)

// String names the order.
func (o WireOrder) String() string {
	switch o {
	case NaturalOrder:
		return "natural"
	case LongestFirst:
		return "longest-first"
	case ShortestFirst:
		return "shortest-first"
	}
	return fmt.Sprintf("WireOrder(%d)", int(o))
}

// Assignment maps every wire of a circuit to a processor.
type Assignment struct {
	// Proc[i] is the processor that routes circuit wire index i.
	Proc []int
	// NumProcs is the processor count the assignment was built for.
	NumProcs int
	// Cost[i] is the wire's length cost, captured at construction so
	// orderings need no circuit access.
	Cost []int
	// Order is the per-processor routing order (default NaturalOrder).
	Order WireOrder
}

// WiresOf returns the wire indices assigned to proc in the assignment's
// routing order — the static per-processor work list.
func (a *Assignment) WiresOf(proc int) []int {
	var out []int
	for i, p := range a.Proc {
		if p == proc {
			out = append(out, i)
		}
	}
	switch a.Order {
	case LongestFirst:
		sort.SliceStable(out, func(x, y int) bool { return a.Cost[out[x]] > a.Cost[out[y]] })
	case ShortestFirst:
		sort.SliceStable(out, func(x, y int) bool { return a.Cost[out[x]] < a.Cost[out[y]] })
	}
	return out
}

// Counts returns how many wires each processor received.
func (a *Assignment) Counts() []int {
	counts := make([]int, a.NumProcs)
	for _, p := range a.Proc {
		counts[p]++
	}
	return counts
}

// Imbalance returns max/mean of the per-processor wire counts (1.0 is a
// perfect balance). Returns 0 for an empty assignment.
func (a *Assignment) Imbalance() float64 {
	counts := a.Counts()
	if len(a.Proc) == 0 || a.NumProcs == 0 {
		return 0
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(len(a.Proc)) / float64(a.NumProcs)
	return float64(maxC) / mean
}

// Validate checks the assignment covers every wire with a valid processor.
func (a *Assignment) Validate(c *circuit.Circuit) error {
	if len(a.Proc) != len(c.Wires) {
		return fmt.Errorf("assign: %d assignments for %d wires", len(a.Proc), len(c.Wires))
	}
	for i, p := range a.Proc {
		if p < 0 || p >= a.NumProcs {
			return fmt.Errorf("assign: wire %d assigned to invalid processor %d", i, p)
		}
	}
	return nil
}

// AssignRoundRobin distributes wires round robin over the partition's
// processors, ignoring locality entirely.
func AssignRoundRobin(c *circuit.Circuit, part geom.Partition) *Assignment {
	a := newAssignment(c, part.Procs())
	for i := range c.Wires {
		a.Proc[i] = i % part.Procs()
	}
	return a
}

// newAssignment allocates an assignment with the wire costs captured.
func newAssignment(c *circuit.Circuit, procs int) *Assignment {
	a := &Assignment{
		Proc:     make([]int, len(c.Wires)),
		NumProcs: procs,
		Cost:     make([]int, len(c.Wires)),
	}
	for i := range c.Wires {
		a.Cost[i] = c.Wires[i].Cost()
	}
	return a
}

// AssignThreshold implements the paper's ThresholdCost strategy. Wires
// with Cost() < threshold go to the owner of their leftmost pin. The
// remaining (long) wires are assigned in a final step to the processors
// with the least load, ignoring locality. Load is measured in estimated
// routing work (wire cost + 1), not wire count, so one long wire
// counterweighs several short ones.
func AssignThreshold(c *circuit.Circuit, part geom.Partition, threshold int) *Assignment {
	a := newAssignment(c, part.Procs())
	load := make([]int, part.Procs())

	var held []int // indices of long wires for the backfill step
	for i := range c.Wires {
		w := &c.Wires[i]
		if w.Cost() < threshold {
			p := part.Owner(w.LeftmostPin())
			a.Proc[i] = p
			load[p] += w.Cost() + 1
		} else {
			held = append(held, i)
		}
	}

	// Final step: longest wires first onto the least-loaded processor
	// (greedy LPT), ignoring locality. Ties broken by wire index then
	// processor index for determinism.
	sort.SliceStable(held, func(x, y int) bool {
		return c.Wires[held[x]].Cost() > c.Wires[held[y]].Cost()
	})
	for _, i := range held {
		p := leastLoaded(load)
		a.Proc[i] = p
		load[p] += c.Wires[i].Cost() + 1
	}
	return a
}

func leastLoaded(load []int) int {
	best := 0
	for p, l := range load {
		if l < load[best] {
			best = p
		}
	}
	return best
}

// LocalityMeasure computes the paper's quantitative locality measure: a
// weighted average of the distance, in horizontal or vertical mesh hops,
// between the processor routing a wire segment and the processor that owns
// the region the segment lies in. A measure of 0 means every cell is
// routed by its owner (perfect locality). The weight of each (wire,
// region) pair is the number of the wire's bounding-box cells in that
// region — a static proxy for the cells the wire's routes will touch.
func LocalityMeasure(c *circuit.Circuit, part geom.Partition, a *Assignment) float64 {
	var weighted, total float64
	for i := range c.Wires {
		w := &c.Wires[i]
		router := a.Proc[i]
		bb := w.Bounds()
		for _, owner := range part.RegionsTouching(bb) {
			overlap := bb.Intersect(part.Region(owner)).Area()
			weighted += float64(overlap) * float64(part.MeshDistance(router, owner))
			total += float64(overlap)
		}
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

package assign

import (
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
)

func testSetup(t *testing.T, seed int64) (*circuit.Circuit, geom.Partition) {
	t.Helper()
	c := circuit.MustGenerate(circuit.BnrELike(seed))
	part, err := geom.NewPartition(c.Grid, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c, part
}

func TestRoundRobinBalanced(t *testing.T) {
	c, part := testSetup(t, 1)
	a := AssignRoundRobin(c, part)
	if err := a.Validate(c); err != nil {
		t.Fatal(err)
	}
	counts := a.Counts()
	minC, maxC := counts[0], counts[0]
	for _, v := range counts {
		if v < minC {
			minC = v
		}
		if v > maxC {
			maxC = v
		}
	}
	if maxC-minC > 1 {
		t.Errorf("round robin counts must differ by at most 1: %v", counts)
	}
}

func TestThresholdZeroIsPureLoadBalance(t *testing.T) {
	c, part := testSetup(t, 1)
	a := AssignThreshold(c, part, 0)
	if err := a.Validate(c); err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(); imb > 1.35 {
		t.Errorf("pure load balance imbalance = %f, expected near 1", imb)
	}
}

func TestThresholdInfinityIsPureLocality(t *testing.T) {
	c, part := testSetup(t, 1)
	a := AssignThreshold(c, part, ThresholdInfinity)
	if err := a.Validate(c); err != nil {
		t.Fatal(err)
	}
	for i := range c.Wires {
		want := part.Owner(c.Wires[i].LeftmostPin())
		if a.Proc[i] != want {
			t.Fatalf("wire %d assigned to %d, leftmost-pin owner is %d", i, a.Proc[i], want)
		}
	}
}

func TestThresholdLocalityImprovesWithThreshold(t *testing.T) {
	c, part := testSetup(t, 1)
	rr := LocalityMeasure(c, part, AssignRoundRobin(c, part))
	t30 := LocalityMeasure(c, part, AssignThreshold(c, part, 30))
	tInf := LocalityMeasure(c, part, AssignThreshold(c, part, ThresholdInfinity))
	if !(tInf < t30 && t30 < rr) {
		t.Errorf("locality must improve with threshold: rr=%.3f t30=%.3f inf=%.3f",
			rr, t30, tInf)
	}
}

func TestThresholdInfinityWorsensBalance(t *testing.T) {
	c, part := testSetup(t, 1)
	bal := AssignThreshold(c, part, 30).Imbalance()
	inf := AssignThreshold(c, part, ThresholdInfinity).Imbalance()
	// The paper: strict locality leads to load imbalances (Section 4.2).
	if inf <= bal {
		t.Errorf("pure locality should be less balanced: inf=%.3f bal=%.3f", inf, bal)
	}
}

func TestWiresOfPartitionsAllWires(t *testing.T) {
	c, part := testSetup(t, 2)
	a := AssignThreshold(c, part, 1000)
	total := 0
	seen := make(map[int]bool)
	for p := 0; p < part.Procs(); p++ {
		for _, w := range a.WiresOf(p) {
			if seen[w] {
				t.Fatalf("wire %d assigned twice", w)
			}
			seen[w] = true
			total++
		}
	}
	if total != len(c.Wires) {
		t.Errorf("WiresOf covers %d wires, want %d", total, len(c.Wires))
	}
}

func TestLocalityMeasureZeroForOwnerAssignment(t *testing.T) {
	// A circuit of 1x1-bounding-box... impossible (2 pins). Use wires
	// confined to one region and assign them to that region's owner.
	g := geom.Grid{Channels: 8, Grids: 32}
	part, _ := geom.NewPartition(g, 4, 2)
	r0 := part.Region(0)
	c := &circuit.Circuit{
		Name: "local",
		Grid: g,
		Wires: []circuit.Wire{
			{ID: 0, Pins: []circuit.Pin{geom.Pt(r0.X0, r0.Y0), geom.Pt(r0.X1-1, r0.Y1-1)}},
		},
	}
	a := &Assignment{Proc: []int{0}, NumProcs: part.Procs()}
	if m := LocalityMeasure(c, part, a); m != 0 {
		t.Errorf("in-region wire routed by owner must have locality 0, got %f", m)
	}
	// Same wire routed by the far corner processor: positive measure.
	far := &Assignment{Proc: []int{part.Procs() - 1}, NumProcs: part.Procs()}
	if m := LocalityMeasure(c, part, far); m <= 0 {
		t.Errorf("remote routing must have positive locality measure, got %f", m)
	}
}

func TestLocalityMeasureBnrEWorseThanMDC(t *testing.T) {
	// The paper reports bnrE locality 1.21 vs MDC 0.91 under the most
	// local assignment — bnrE has inherently worse locality. Our
	// synthetic circuits preserve that ordering.
	bnrE := circuit.MustGenerate(circuit.BnrELike(1))
	mdc := circuit.MustGenerate(circuit.MDCLike(1))
	pb, _ := geom.NewPartition(bnrE.Grid, 4, 4)
	pm, _ := geom.NewPartition(mdc.Grid, 4, 4)
	mb := LocalityMeasure(bnrE, pb, AssignThreshold(bnrE, pb, ThresholdInfinity))
	mm := LocalityMeasure(mdc, pm, AssignThreshold(mdc, pm, ThresholdInfinity))
	if mb <= mm {
		t.Errorf("bnrE-like locality (%f) should be worse than MDC-like (%f)", mb, mm)
	}
	// Both should be in the paper's ballpark (order of one hop).
	if mb < 0.2 || mb > 3.5 || mm < 0.1 || mm > 3 {
		t.Errorf("locality measures out of plausible band: bnrE=%f mdc=%f", mb, mm)
	}
}

func TestMethodString(t *testing.T) {
	if RoundRobin.String() != "round robin" || Threshold.String() != "ThresholdCost" {
		t.Errorf("method names changed: %q %q", RoundRobin.String(), Threshold.String())
	}
}

func TestAssignmentValidateErrors(t *testing.T) {
	c, _ := testSetup(t, 1)
	bad := &Assignment{Proc: []int{0}, NumProcs: 4}
	if err := bad.Validate(c); err == nil {
		t.Errorf("short assignment must fail validation")
	}
	full := &Assignment{Proc: make([]int, len(c.Wires)), NumProcs: 4}
	full.Proc[0] = 99
	if err := full.Validate(c); err == nil {
		t.Errorf("out-of-range processor must fail validation")
	}
}

func TestWireOrdering(t *testing.T) {
	c, part := testSetup(t, 1)
	a := AssignThreshold(c, part, 1000)
	natural := a.WiresOf(0)

	a.Order = LongestFirst
	longest := a.WiresOf(0)
	if len(longest) != len(natural) {
		t.Fatalf("ordering must not change membership")
	}
	for i := 1; i < len(longest); i++ {
		if a.Cost[longest[i-1]] < a.Cost[longest[i]] {
			t.Fatalf("longest-first violated at %d", i)
		}
	}

	a.Order = ShortestFirst
	shortest := a.WiresOf(0)
	for i := 1; i < len(shortest); i++ {
		if a.Cost[shortest[i-1]] > a.Cost[shortest[i]] {
			t.Fatalf("shortest-first violated at %d", i)
		}
	}

	// Same set either way.
	set := map[int]bool{}
	for _, wi := range natural {
		set[wi] = true
	}
	for _, wi := range longest {
		if !set[wi] {
			t.Fatalf("wire %d appeared from nowhere", wi)
		}
	}
}

func TestWireOrderStrings(t *testing.T) {
	if NaturalOrder.String() != "natural" || LongestFirst.String() != "longest-first" ||
		ShortestFirst.String() != "shortest-first" {
		t.Errorf("order names changed")
	}
}

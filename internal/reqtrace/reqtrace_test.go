package reqtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"log/slog"
)

func TestStageNamesRoundTrip(t *testing.T) {
	want := []string{"admit", "queue", "batch", "route", "commit", "respond"}
	if int(NumStages) != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, name := range want {
		st := Stage(i)
		if st.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", i, st.String(), name)
		}
		got, ok := StageByName(name)
		if !ok || got != st {
			t.Errorf("StageByName(%q) = %v, %v; want %v, true", name, got, ok, st)
		}
	}
	if _, ok := StageByName("warp"); ok {
		t.Error("StageByName accepted an unknown name")
	}
	if s := Stage(200).String(); s != "stage200" {
		t.Errorf("out-of-range stage = %q", s)
	}
}

func TestOutcomeNames(t *testing.T) {
	want := []string{"ok", "cached", "rejected", "denied", "shed", "evicted", "expired"}
	if int(NumOutcomes) != len(want) {
		t.Fatalf("NumOutcomes = %d, want %d", NumOutcomes, len(want))
	}
	for i, name := range want {
		if got := Outcome(i).String(); got != name {
			t.Errorf("Outcome(%d).String() = %q, want %q", i, got, name)
		}
	}
}

// TestNilTracer pins the disabled-path contract: every method on a nil
// tracer and its inert span is a no-op.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Now() != 0 {
		t.Error("nil tracer clock is not 0")
	}
	if from, to := tr.CaptureFor(time.Second); from != 0 || to != 0 {
		t.Error("nil tracer opened a capture window")
	}
	if tr.Records() != nil {
		t.Error("nil tracer returned records")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("nil tracer returned stats")
	}
	s := tr.Begin("id", "c", "cl", 7)
	if s.Traced() {
		t.Error("span from nil tracer is live")
	}
	if s.ID() != "" {
		t.Error("span from nil tracer has an id")
	}
	s.Mark(StageAdmit)
	s.MarkAt(StageQueue, 42)
	s.Element("cache", time.Millisecond)
	s.SetShard(3)
	if s.Finish(OutcomeOK, nil) {
		t.Error("span from nil tracer finished live")
	}
}

func TestMintAndAdopt(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 8})
	s1 := tr.Begin("", "c", "", 1)
	s2 := tr.Begin("client-xyz", "c", "", 2)
	if got := s1.ID(); got != "r00000001" {
		t.Errorf("minted id = %q, want r00000001", got)
	}
	if got := s2.ID(); got != "client-xyz" {
		t.Errorf("adopted id = %q, want client-xyz", got)
	}
	var r1, r2 Rec
	if !s1.Finish(OutcomeOK, &r1) {
		t.Fatal("s1 did not finish live")
	}
	if r1.ID != 1 || r1.IDString() != "r00000001" {
		t.Errorf("finished rec = %+v", r1)
	}
	s2.Finish(OutcomeOK, &r2)
	if r2.ID != 2 || r2.TraceID != "client-xyz" || r2.IDString() != "client-xyz" {
		t.Errorf("adopted rec = %+v", r2)
	}
}

// TestTelescoping pins the central invariant: the per-stage breakdown
// sums to wall latency exactly, in integer nanoseconds, no matter how
// the boundaries were marked.
func TestTelescoping(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 8})
	s := tr.Begin("", "c", "cl", 9)
	s.Mark(StageAdmit)
	time.Sleep(time.Millisecond)
	s.Mark(StageQueue)
	// Externally captured stamps, as the shard loop hands back.
	now := tr.Now()
	s.MarkAt(StageBatch, now)
	s.MarkAt(StageRoute, now+2_000_000)
	s.MarkAt(StageCommit, now+2_500_000)
	var rec Rec
	if !s.Finish(OutcomeOK, &rec) {
		t.Fatal("span did not finish")
	}
	var sum int64
	for _, ns := range rec.Stages {
		if ns < 0 {
			t.Fatalf("negative stage duration: %+v", rec.Stages)
		}
		sum += ns
	}
	if sum != rec.Wall {
		t.Fatalf("stages sum %d != wall %d", sum, rec.Wall)
	}
	if rec.Wall < 3_000_000 {
		t.Fatalf("wall %dns does not cover the marked boundaries", rec.Wall)
	}
	if rec.Stages[StageRoute] != 2_000_000 || rec.Stages[StageCommit] != 500_000 {
		t.Fatalf("stamped stages = %+v", rec.Stages)
	}
}

// TestMarkAtClamp pins the defense against misordered stamps: a stamp
// earlier than the previous boundary charges zero and the invariant
// holds.
func TestMarkAtClamp(t *testing.T) {
	tr := New(Options{})
	s := tr.Begin("", "c", "", 1)
	s.Mark(StageAdmit)
	s.MarkAt(StageQueue, -5) // before the span began
	var rec Rec
	s.Finish(OutcomeOK, &rec)
	if rec.Stages[StageQueue] != 0 {
		t.Fatalf("clamped stamp charged %dns", rec.Stages[StageQueue])
	}
	var sum int64
	for _, ns := range rec.Stages {
		sum += ns
	}
	if sum != rec.Wall {
		t.Fatalf("stages sum %d != wall %d after clamp", sum, rec.Wall)
	}
}

func TestFinishOnce(t *testing.T) {
	tr := New(Options{Sample: 1})
	s := tr.Begin("", "c", "", 1)
	if !s.Finish(OutcomeOK, nil) {
		t.Fatal("first finish not live")
	}
	if s.Finish(OutcomeOK, nil) {
		t.Fatal("second finish was live")
	}
	if got := tr.Stats().Finished; got != 1 {
		t.Fatalf("finished = %d, want 1", got)
	}
}

func TestElementTiming(t *testing.T) {
	tr := New(Options{Sample: 1})
	s := tr.Begin("", "c", "", 1)
	s.Element("deadline", 1500*time.Nanosecond)
	s.Element("cache", 300*time.Nanosecond)
	var rec Rec
	s.Finish(OutcomeOK, &rec)
	want := []ElementNs{{"deadline", 1500}, {"cache", 300}}
	if len(rec.Policy) != len(want) {
		t.Fatalf("policy = %+v", rec.Policy)
	}
	for i, e := range want {
		if rec.Policy[i] != e {
			t.Fatalf("policy[%d] = %+v, want %+v", i, rec.Policy[i], e)
		}
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{Sample: 3, Capacity: 16})
	for i := 0; i < 9; i++ {
		s := tr.Begin("", "c", "", i)
		s.Finish(OutcomeOK, nil)
	}
	st := tr.Stats()
	if st.Finished != 9 || st.Retained != 3 {
		t.Fatalf("stats = %+v, want 9 finished / 3 retained", st)
	}
	// Sample 0 retains nothing outside a capture window.
	tr0 := New(Options{Sample: 0, Capacity: 16})
	for i := 0; i < 5; i++ {
		s := tr0.Begin("", "c", "", i)
		s.Finish(OutcomeOK, nil)
	}
	if st := tr0.Stats(); st.Retained != 0 || st.Finished != 5 {
		t.Fatalf("sample-0 stats = %+v", st)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		s := tr.Begin("", "c", "", i)
		s.Finish(OutcomeOK, nil)
	}
	st := tr.Stats()
	if st.Retained != 4 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want 4 retained / 6 dropped", st)
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if want := uint64(7 + i); r.ID != want {
			t.Fatalf("records[%d].ID = %d, want %d (oldest first)", i, r.ID, want)
		}
	}
}

func TestCaptureWindow(t *testing.T) {
	tr := New(Options{Sample: 0, Capacity: 16})
	from, to := tr.CaptureFor(time.Minute)
	if to-from != int64(time.Minute) {
		t.Fatalf("window = [%d, %d]", from, to)
	}
	s := tr.Begin("", "c", "", 1)
	s.Finish(OutcomeOK, nil)
	if st := tr.Stats(); st.Retained != 1 {
		t.Fatalf("capture window did not retain: %+v", st)
	}
	// A shorter overlapping request for the window only extends it.
	if _, to2 := tr.CaptureFor(time.Second); to2 >= to {
		t.Fatalf("shorter window reported end %d >= %d", to2, to)
	}
	s2 := tr.Begin("", "c", "", 2)
	s2.Finish(OutcomeOK, nil)
	if st := tr.Stats(); st.Retained != 2 {
		t.Fatalf("extended window did not retain: %+v", st)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := New(Options{SlowLog: time.Nanosecond, Logger: lg})
	s := tr.Begin("req-7", "bnrE-like", "cli", 42)
	s.Mark(StageAdmit)
	s.SetShard(2)
	s.Element("cache", time.Microsecond)
	s.Finish(OutcomeOK, nil)
	if got := tr.Stats().Slow; got != 1 {
		t.Fatalf("slow = %d, want 1", got)
	}
	line := buf.String()
	for _, want := range []string{
		`"msg":"slow request"`, `"request_id":"req-7"`, `"circuit":"bnrE-like"`,
		`"outcome":"ok"`, `"shard":2`, `"client":"cli"`, `"policy"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %s in %s", want, line)
		}
	}
	// Below-threshold requests do not log.
	tr2 := New(Options{SlowLog: time.Hour, Logger: lg})
	s2 := tr2.Begin("", "c", "", 1)
	s2.Finish(OutcomeOK, nil)
	if got := tr2.Stats().Slow; got != 0 {
		t.Fatalf("fast request logged as slow")
	}
}

// chromeEvent is the slice of the trace-event format the structural
// checks need.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestWriteChrome pins the structural validity of the export: parseable
// JSON, balanced B/E per track, non-decreasing timestamps per track,
// and at least one request span carrying its id.
func TestWriteChrome(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 16})
	// Two overlapping requests (stage stamps in the synthetic future)
	// must land on distinct lanes.
	s1 := tr.Begin("", "c", "", 1)
	base := tr.Now()
	s1.MarkAt(StageAdmit, base+1000)
	s1.MarkAt(StageRoute, base+10_000_000)
	s2 := tr.Begin("want-this-id", "c", "", 2)
	s2.MarkAt(StageRoute, base+5_000_000)
	s1.Finish(OutcomeOK, nil)
	s2.Finish(OutcomeOK, nil)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}

	depth := map[int]int{}
	lastTS := map[int]float64{}
	requests := 0
	reqTids := map[int]bool{}
	sawAdopted := false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			depth[e.Tid]++
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				t.Fatalf("unbalanced E on tid %d", e.Tid)
			}
		default:
			continue
		}
		if e.Ts < lastTS[e.Tid] {
			t.Fatalf("timestamps regress on tid %d: %v < %v", e.Tid, e.Ts, lastTS[e.Tid])
		}
		lastTS[e.Tid] = e.Ts
		if e.Ph == "B" && e.Name == "request" {
			requests++
			reqTids[e.Tid] = true
			if e.Cat != "request" {
				t.Errorf("request span cat = %q", e.Cat)
			}
			if _, ok := e.Args["request_id"]; !ok {
				t.Errorf("request span missing request_id arg: %+v", e.Args)
			}
			if e.Args["label"] == "want-this-id" {
				sawAdopted = true
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d ends at depth %d", tid, d)
		}
	}
	if requests != 2 {
		t.Fatalf("request spans = %d, want 2", requests)
	}
	if len(reqTids) != 2 {
		t.Fatalf("overlapping requests share a lane: tids %v", reqTids)
	}
	if !sawAdopted {
		t.Fatal("adopted id label missing from export")
	}
}

// TestWriteChromeWindow pins the [from, to] filter: records finishing
// outside the window are excluded.
func TestWriteChromeWindow(t *testing.T) {
	tr := New(Options{Sample: 1, Capacity: 16})
	s := tr.Begin("", "c", "", 1)
	s.Finish(OutcomeOK, nil)
	end := tr.Now()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, end+1_000_000, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"name":"request"`)) {
		t.Fatal("record outside the window was exported")
	}
}

// TestDisabledZeroAlloc pins the nil-receiver cost contract at the unit
// level; the benchmark pins the ns/op side.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Begin("", "c", "cl", 1)
		s.Mark(StageAdmit)
		s.MarkAt(StageQueue, 0)
		s.Element("cache", time.Microsecond)
		s.SetShard(1)
		s.Finish(OutcomeOK, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

// TestUnsampledZeroAlloc pins the enabled-but-unsampled fast path: no
// retention, no client id, no policy detail — no allocations.
func TestUnsampledZeroAlloc(t *testing.T) {
	tr := New(Options{Sample: 0})
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Begin("", "c", "cl", 1)
		s.Mark(StageAdmit)
		s.Mark(StageQueue)
		s.Finish(OutcomeOK, nil)
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %.1f/op, want 0", allocs)
	}
}

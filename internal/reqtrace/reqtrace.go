// Package reqtrace is the request-lifecycle tracing layer for the
// serving path: every locusd request carries a process-unique id
// (minted at ingress or adopted from the client) and a span whose stage
// durations tile the request's lifetime, so the per-stage breakdown
// sums to observed wall latency by construction — the serving-path form
// of the paper's §5.1.3 accounting, where categories are exhaustive and
// telescoping rather than sampled.
//
// The package follows tracev's discipline: a nil *Tracer ignores every
// call after one pointer test, so the disabled path costs zero
// allocations and single-digit nanoseconds (pinned by benchmark), and
// finished records land in a fixed-capacity ring that overwrites oldest
// — tracing can stay on in production without unbounded growth. Unlike
// tracev (confined to one DES goroutine) the ring here takes a mutex,
// because requests finish concurrently; the lock is touched only for
// retained records, never on the unsampled fast path.
package reqtrace

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one interval of a request's lifetime. The intervals
// tile ingress→finish with no gaps: each Mark charges the time since
// the previous boundary, so the sum over stages telescopes to wall
// latency exactly (in integer nanoseconds — no rounding slack).
//
// Append new stages before NumStages; never renumber, the binary
// protocol carries these bytes.
type Stage uint8

const (
	// StageAdmit covers ingress to dispatch: validation, the policy
	// admission chain (per-element detail lands in Rec.Policy), cache
	// lookup, and the concurrency-gate wait.
	StageAdmit Stage = iota
	// StageQueue covers dispatch to batch pickup: the EDF heap or FIFO
	// shard-queue wait until a batch loop collected the request.
	StageQueue
	// StageBatch covers batch pickup to this wire's evaluation: the
	// in-batch wait while earlier members of the same batch route.
	StageBatch
	// StageRoute covers the kernel evaluation of the request's wire.
	StageRoute
	// StageCommit covers committing the routed path onto the replica.
	StageCommit
	// StageRespond covers the handoff back to the waiting caller: the
	// done-channel send, waiter wakeup, and span finalisation. Early
	// failures (rejected, denied, shed) charge their tail here too.
	StageRespond

	// NumStages bounds the stage enum.
	NumStages
)

var stageNames = [NumStages]string{"admit", "queue", "batch", "route", "commit", "respond"}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", uint8(s))
}

// StageByName inverts Stage.String; ok is false for unknown names.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Outcome classifies how a request's span ended.
type Outcome uint8

const (
	// OutcomeOK is a routed (and possibly committed) request.
	OutcomeOK Outcome = iota
	// OutcomeCached is a policy-cache hit: no dispatch happened.
	OutcomeCached
	// OutcomeRejected is a validation failure (unknown circuit, bad
	// wire, oversized trace id).
	OutcomeRejected
	// OutcomeDenied is a policy-chain or draining refusal.
	OutcomeDenied
	// OutcomeShed is a concurrency-gate refusal (no slot, no victim).
	OutcomeShed
	// OutcomeEvicted is a queued request shed by the EDF scheduler in
	// favour of a more critical one.
	OutcomeEvicted
	// OutcomeExpired is a deadline that passed before routing finished.
	OutcomeExpired

	// NumOutcomes bounds the outcome enum.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"ok", "cached", "rejected", "denied", "shed", "evicted", "expired"}

func (o Outcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome%d", uint8(o))
}

// ElementNs is one policy element's share of the admission decision.
type ElementNs struct {
	Element string
	Ns      int64
}

// MaxTraceID bounds a client-supplied trace id; the binary protocol's
// str8 fields impose the same limit, so both transports agree.
const MaxTraceID = 255

// Rec is one finished request's flat record. Times are nanoseconds on
// the owning tracer's clock (monotonic since the tracer's epoch).
type Rec struct {
	// ID is the process-unique minted id (monotonic from 1).
	ID uint64
	// TraceID is the client-supplied id when one was adopted; empty
	// means the request is known only by its minted id.
	TraceID string
	// Circuit, Client, Wire, Shard locate the request.
	Circuit string
	Client  string
	Wire    int
	Shard   int
	// Start is the ingress timestamp; Wall is end−Start, and equals the
	// sum over Stages exactly.
	Start int64
	Wall  int64
	// Stages is the exhaustive per-stage breakdown (ns).
	Stages [NumStages]int64
	// Policy is the per-element admission timing, when captured.
	Policy []ElementNs
	// Outcome classifies the ending.
	Outcome Outcome
}

// IDString is the id echoed to callers: the adopted client id when one
// exists, else the minted id rendered as "r%08x".
func (r *Rec) IDString() string {
	if r.TraceID != "" {
		return r.TraceID
	}
	return fmt.Sprintf("r%08x", r.ID)
}

// End is the finish timestamp on the tracer clock.
func (r *Rec) End() int64 { return r.Start + r.Wall }

// Options configures a Tracer. The zero value samples nothing and logs
// nothing but still mints ids and serves live captures.
type Options struct {
	// Capacity bounds the ring of retained records; <=0 selects
	// DefaultCapacity. Overwrites oldest when full.
	Capacity int
	// Sample retains every Nth finished request in the ring (1 = all,
	// 0 = none outside live-capture windows).
	Sample int
	// SlowLog emits a structured log line for any request whose wall
	// latency meets the threshold; 0 disables.
	SlowLog time.Duration
	// Logger receives slow-request lines; nil uses slog.Default.
	Logger *slog.Logger
	// Process names the Chrome-trace process; empty means "locusd".
	Process string
}

// DefaultCapacity is the ring size when Options.Capacity is unset.
const DefaultCapacity = 4096

// Tracer owns the id counter, the clock, and the ring of finished
// records. All methods are safe on a nil receiver (no-ops) and for
// concurrent use.
type Tracer struct {
	opts  Options
	epoch time.Time

	lastID       atomic.Uint64 // minted request ids
	finished     atomic.Uint64 // spans finished (sampling counter)
	slow         atomic.Uint64 // slow-log lines emitted
	captureUntil atomic.Int64  // live-capture window end, tracer clock

	mu      sync.Mutex
	recs    []Rec
	next    int    // overwrite cursor once len(recs) == cap
	dropped uint64 // records overwritten
}

// New builds a Tracer. Begin/Finish on the result are allocation-free
// for unsampled requests with no client id.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Sample < 0 {
		o.Sample = 0
	}
	if o.Process == "" {
		o.Process = "locusd"
	}
	return &Tracer{opts: o, epoch: time.Now()}
}

// Enabled reports whether tracing is on (receiver non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Options returns the tracer's resolved configuration.
func (t *Tracer) Options() Options {
	if t == nil {
		return Options{}
	}
	return t.opts
}

// Now is the tracer clock: monotonic nanoseconds since the tracer was
// built. 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Begin opens a span for one request, minting its id and stamping
// ingress. traceID is the client-supplied id to adopt ("" mints only);
// the caller bounds it by MaxTraceID. On a nil tracer the returned span
// is inert: every method on it is a no-op after one test. The wrapper
// stays within the inlining budget so the disabled path pays only the
// pointer test and the zero-value store.
func (t *Tracer) Begin(traceID, circuit, client string, wire int) Span {
	if t == nil {
		return Span{}
	}
	return t.begin(traceID, circuit, client, wire)
}

func (t *Tracer) begin(traceID, circuit, client string, wire int) Span {
	now := t.Now()
	r := recPool.Get().(*Rec)
	pol := r.Policy[:0] // keep the pooled slice's capacity across reuse
	*r = Rec{
		ID:      t.lastID.Add(1),
		TraceID: traceID,
		Circuit: circuit,
		Client:  client,
		Wire:    wire,
		Shard:   -1,
		Start:   now,
		Policy:  pol,
	}
	return Span{tr: t, last: now, rec: r}
}

// recPool recycles the per-request records. Keeping Rec behind a
// pointer makes Span three words, so the disabled path's zero-value
// span costs a store instead of a Rec-sized memclr (the pinned
// BenchmarkDisabledSpan budget), and the pooled Policy slice makes
// per-element timing allocation-free at steady state. Any copy of a
// record that outlives the span (ring retention, Finish's out
// parameter) must deep-copy Policy — the pooled backing array is
// reused by a later request.
var recPool = sync.Pool{New: func() any { return new(Rec) }}

// clonePolicy detaches a record's Policy from the pooled backing array.
func clonePolicy(r *Rec) {
	if len(r.Policy) > 0 {
		r.Policy = append([]ElementNs(nil), r.Policy...)
	} else {
		r.Policy = nil
	}
}

// CaptureFor opens (or extends) a live-capture window: every request
// finishing before it closes is retained in the ring regardless of the
// sampling rate. Returns the window bounds [from, to] on the tracer
// clock.
func (t *Tracer) CaptureFor(d time.Duration) (from, to int64) {
	if t == nil {
		return 0, 0
	}
	from = t.Now()
	to = from + int64(d)
	for {
		cur := t.captureUntil.Load()
		if cur >= to || t.captureUntil.CompareAndSwap(cur, to) {
			return from, to
		}
	}
}

// Records returns a snapshot of the retained records, oldest first.
func (t *Tracer) Records() []Rec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Rec, 0, len(t.recs))
	out = append(out, t.recs[t.next:]...)
	out = append(out, t.recs[:t.next]...)
	return out
}

// Stats is the tracer's lifetime accounting for /debug/vars.
type Stats struct {
	Finished uint64 `json:"finished"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	Slow     uint64 `json:"slow"`
	Sample   int    `json:"sample"`
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	retained, dropped := len(t.recs), t.dropped
	t.mu.Unlock()
	return Stats{
		Finished: t.finished.Load(),
		Retained: retained,
		Dropped:  dropped,
		Slow:     t.slow.Load(),
		Sample:   t.opts.Sample,
	}
}

// finish runs retention and the slow log for one closed span's record.
func (t *Tracer) finish(r *Rec) {
	if t.opts.SlowLog > 0 && r.Wall >= int64(t.opts.SlowLog) {
		t.slow.Add(1)
		t.logSlow(r)
	}
	n := t.finished.Add(1)
	sampled := t.opts.Sample > 0 && n%uint64(t.opts.Sample) == 0
	captured := t.captureUntil.Load() >= r.End()
	if !sampled && !captured {
		return
	}
	cp := *r
	clonePolicy(&cp) // the retained copy outlives the pooled record
	t.mu.Lock()
	if len(t.recs) < t.opts.Capacity {
		t.recs = append(t.recs, cp)
	} else {
		t.recs[t.next] = cp
		t.next++
		if t.next == t.opts.Capacity {
			t.next = 0
		}
		t.dropped++
	}
	t.mu.Unlock()
}

// logSlow emits one structured line with the full stage breakdown, so a
// single outlier is attributable without a capture running.
func (t *Tracer) logSlow(r *Rec) {
	lg := t.opts.Logger
	if lg == nil {
		lg = slog.Default()
	}
	attrs := make([]slog.Attr, 0, 8+int(NumStages))
	attrs = append(attrs,
		slog.String("request_id", r.IDString()),
		slog.String("circuit", r.Circuit),
		slog.Int("wire", r.Wire),
		slog.String("outcome", r.Outcome.String()),
		slog.Int64("wall_us", r.Wall/1e3),
	)
	if r.Client != "" {
		attrs = append(attrs, slog.String("client", r.Client))
	}
	if r.Shard >= 0 {
		attrs = append(attrs, slog.Int("shard", r.Shard))
	}
	for st := Stage(0); st < NumStages; st++ {
		if ns := r.Stages[st]; ns > 0 {
			attrs = append(attrs, slog.Int64(st.String()+"_us", ns/1e3))
		}
	}
	if len(r.Policy) > 0 {
		pol := make([]slog.Attr, 0, len(r.Policy))
		for _, e := range r.Policy {
			pol = append(pol, slog.Int64(e.Element+"_us", e.Ns/1e3))
		}
		attrs = append(attrs, slog.Attr{Key: "policy", Value: slog.GroupValue(pol...)})
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
}

// Span accumulates one request's stage boundaries. It is a three-word
// value holding a pooled record; the owner calls pointer methods on the
// copy it holds, and exactly one copy may Finish. A span with a nil
// tracer ignores everything.
type Span struct {
	tr   *Tracer
	last int64 // previous stage boundary on the tracer clock
	rec  *Rec  // pooled; non-nil exactly while tr is non-nil
}

// Traced reports whether the span is live (tracer enabled, not yet
// finished).
func (s *Span) Traced() bool { return s.tr != nil }

// ID is the id echoed to the caller; empty on an untraced span.
func (s *Span) ID() string {
	if s.tr == nil {
		return ""
	}
	return s.rec.IDString()
}

// Mark charges the time since the previous boundary to st and advances
// the boundary to now. The wrapper keeps the nil test within the
// inlining budget (the clock read pushes the combined body over it), so
// untraced spans pay nothing here.
func (s *Span) Mark(st Stage) {
	if s.tr == nil {
		return
	}
	s.markNow(st)
}

func (s *Span) markNow(st Stage) { s.markAt(st, s.tr.Now()) }

// MarkAt charges up to an externally captured stamp (from the same
// tracer's clock) to st. The shard loop stamps stage boundaries and
// hands them back through the done channel, so it never touches the
// span of a waiter that may already have abandoned it; the waiter
// merges the stamps here.
func (s *Span) MarkAt(st Stage, at int64) {
	if s.tr == nil {
		return
	}
	s.markAt(st, at)
}

func (s *Span) markAt(st Stage, at int64) {
	if at < s.last {
		// Stamps arrive ordered (channel handoff happens-before), so
		// this only defends against a caller bug; clamping keeps the
		// sum-to-wall invariant intact by charging zero.
		at = s.last
	}
	s.rec.Stages[st] += at - s.last
	s.last = at
}

// Element records one policy element's admission-decision time.
func (s *Span) Element(element string, d time.Duration) {
	if s.tr == nil {
		return
	}
	s.rec.Policy = append(s.rec.Policy, ElementNs{Element: element, Ns: int64(d)})
}

// SetShard records which shard executed the request.
func (s *Span) SetShard(shard int) {
	if s.tr == nil {
		return
	}
	s.rec.Shard = shard
}

// Finish closes the span: the tail since the last boundary is charged
// to StageRespond, wall latency is fixed as the telescoped sum, the
// slow log fires if due, and the record enters the ring when sampled or
// inside a capture window. When rec is non-nil the finished record is
// copied into it. Reports whether the span was live; a span finishes at
// most once. Taking the record through an out-parameter (rather than a
// return value) keeps the disabled path free of a Rec-sized zeroing,
// which the pinned BenchmarkDisabledSpan budget does not fit.
func (s *Span) Finish(out Outcome, rec *Rec) bool {
	if s.tr == nil {
		return false
	}
	s.finish(out, rec)
	return true
}

func (s *Span) finish(out Outcome, rec *Rec) {
	s.markNow(StageRespond)
	r := s.rec
	r.Outcome = out
	r.Wall = s.last - r.Start
	s.tr.finish(r)
	if rec != nil {
		*rec = *r
		clonePolicy(rec) // the caller's copy outlives the pooled record
	}
	s.tr, s.rec = nil, nil
	recPool.Put(r)
}

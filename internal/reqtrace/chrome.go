package reqtrace

import (
	"fmt"
	"io"
	"sort"

	"locusroute/internal/tracev"
)

// stageKind maps the request stage taxonomy onto tracev's appended
// request-lifecycle kinds, so the Chrome export reuses tracev's writer
// (categories, arg keys, byte-stable timestamps) unchanged.
var stageKind = [NumStages]tracev.Kind{
	StageAdmit:   tracev.KindReqAdmit,
	StageQueue:   tracev.KindReqQueue,
	StageBatch:   tracev.KindReqBatch,
	StageRoute:   tracev.KindReqRoute,
	StageCommit:  tracev.KindReqCommit,
	StageRespond: tracev.KindReqRespond,
}

// WriteChrome renders the retained records finishing within [from, to]
// (tracer-clock ns; to <= 0 means unbounded) as a Chrome trace-event
// JSON document through tracev's writer. Each record becomes one
// enclosing request span tiled by its non-zero stage sub-spans, all
// carrying the request's minted id as the span arg.
//
// Requests overlap in time, and the Chrome format nests same-track
// B/E spans strictly, so records are assigned to synthetic lane tracks
// greedily (first lane whose previous request ended by this one's
// start). Within a lane spans are therefore disjoint and ascending,
// which keeps every track's events balanced and monotonic — the
// structural property the trace tests and CI pin.
func (t *Tracer) WriteChrome(w io.Writer, from, to int64) error {
	recs := t.Records()
	sel := make([]Rec, 0, len(recs))
	for _, r := range recs {
		if end := r.End(); end >= from && (to <= 0 || end <= to) {
			sel = append(sel, r)
		}
	}
	sort.Slice(sel, func(i, j int) bool {
		if sel[i].Start != sel[j].Start {
			return sel[i].Start < sel[j].Start
		}
		return sel[i].ID < sel[j].ID
	})

	// Greedy lane assignment (interval colouring on start-sorted
	// intervals uses the minimum number of lanes).
	lanes := []int64{} // per lane: end of its latest request
	lane := make([]int32, len(sel))
	events := 0
	for i, r := range sel {
		assigned := -1
		for li, lastEnd := range lanes {
			if lastEnd <= r.Start {
				assigned = li
				break
			}
		}
		if assigned < 0 {
			assigned = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[assigned] = r.End()
		lane[i] = int32(assigned)
		events += 2
		for _, ns := range r.Stages {
			if ns > 0 {
				events += 2
			}
		}
	}

	tr := tracev.New(events + 1)
	for i := range sel {
		r := &sel[i]
		id := int64(r.ID)
		tr.Begin(lane[i], r.Start, tracev.KindRequest, id)
		at := r.Start
		for st := Stage(0); st < NumStages; st++ {
			ns := r.Stages[st]
			if ns == 0 {
				continue
			}
			tr.Begin(lane[i], at, stageKind[st], id)
			at += ns
			tr.End(lane[i], at, stageKind[st], id)
		}
		tr.End(lane[i], at, tracev.KindRequest, id)
	}

	process := "locusd"
	if t != nil && t.opts.Process != "" {
		process = t.opts.Process
	}
	byID := make(map[int64]string, len(sel))
	for i := range sel {
		byID[int64(sel[i].ID)] = sel[i].IDString()
	}
	return tr.WriteChrome(w, tracev.ChromeOptions{
		Process: process,
		TrackName: func(track int32) string {
			return fmt.Sprintf("lane %d", track)
		},
		ArgName: func(k tracev.Kind, arg int64) string {
			return byID[arg]
		},
	})
}

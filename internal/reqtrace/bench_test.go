package reqtrace

import (
	"testing"
)

// BenchmarkDisabledSpan is the pinned disabled-path cost: a nil tracer's
// full span lifecycle must stay allocation-free and in single-digit
// nanoseconds, so leaving the hooks compiled into the serving path is
// free when tracing is off (BENCH_reqtrace.json records the numbers).
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin("", "bnrE-like", "client", i)
		s.Mark(StageAdmit)
		s.MarkAt(StageQueue, 0)
		s.SetShard(1)
		s.Finish(OutcomeOK, nil)
	}
}

// BenchmarkUnsampledSpan is the enabled-but-unretained path: ids are
// minted and stages marked, but the record is dropped (Sample 0, no
// capture window) — the cost a production deployment pays per request
// with tracing on.
func BenchmarkUnsampledSpan(b *testing.B) {
	tr := New(Options{Sample: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin("", "bnrE-like", "client", i)
		s.Mark(StageAdmit)
		s.Mark(StageQueue)
		s.Mark(StageRoute)
		s.SetShard(1)
		s.Finish(OutcomeOK, nil)
	}
}

// BenchmarkSampledSpan retains every record into the ring (the most
// expensive configuration: mutex + copy per request).
func BenchmarkSampledSpan(b *testing.B) {
	tr := New(Options{Sample: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin("", "bnrE-like", "client", i)
		s.Mark(StageAdmit)
		s.Mark(StageQueue)
		s.Mark(StageRoute)
		s.SetShard(1)
		s.Finish(OutcomeOK, nil)
	}
}

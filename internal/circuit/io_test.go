package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := MustGenerate(BnrELike(11))
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Grid != orig.Grid || len(got.Wires) != len(orig.Wires) {
		t.Fatalf("header mismatch: %q %+v %d", got.Name, got.Grid, len(got.Wires))
	}
	for i := range orig.Wires {
		if got.Wires[i].ID != orig.Wires[i].ID {
			t.Fatalf("wire %d id mismatch", i)
		}
		if len(got.Wires[i].Pins) != len(orig.Wires[i].Pins) {
			t.Fatalf("wire %d pin count mismatch", i)
		}
		for j := range orig.Wires[i].Pins {
			if got.Wires[i].Pins[j] != orig.Wires[i].Pins[j] {
				t.Fatalf("wire %d pin %d mismatch", i, j)
			}
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
circuit demo 4 20

wire 0 0 0 10 1
# another
wire 1 2 2 15 3
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Wires) != 2 || c.Grid.Channels != 4 || c.Grid.Grids != 20 {
		t.Errorf("parsed %+v", c)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "wire 0 0 0 1 1\n"},
		{"dup header", "circuit a 4 10\ncircuit b 4 10\n"},
		{"bad directive", "circuit a 4 10\nblah\n"},
		{"odd pin coords", "circuit a 4 10\nwire 0 0 0 1\n"},
		{"one pin", "circuit a 4 10\nwire 0 0 0\n"},
		{"off grid", "circuit a 4 10\nwire 0 0 0 99 0\n"},
		{"empty", ""},
		{"bad dims", "circuit a x y\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteRejectsWhitespaceName(t *testing.T) {
	c := MustGenerate(BnrELike(1))
	c.Name = "bad name"
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Errorf("whitespace in name must be rejected")
	}
}

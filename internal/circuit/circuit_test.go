package circuit

import (
	"testing"

	"locusroute/internal/geom"
)

func TestWireBoundsAndCost(t *testing.T) {
	w := Wire{ID: 0, Pins: []Pin{geom.Pt(10, 2), geom.Pt(30, 5), geom.Pt(20, 3)}}
	bb := w.Bounds()
	if bb != geom.R(10, 2, 30, 5) {
		t.Errorf("Bounds = %v", bb)
	}
	// Netlist-order polyline: (10,2)->(30,5) is 23, (30,5)->(20,3) is 12.
	if got := w.Cost(); got != 35 {
		t.Errorf("Cost = %d, want 35", got)
	}
}

func TestWireCostZeroLength(t *testing.T) {
	w := Wire{ID: 0, Pins: []Pin{geom.Pt(5, 5), geom.Pt(5, 5)}}
	if got := w.Cost(); got != 0 {
		t.Errorf("coincident pins cost = %d, want 0", got)
	}
}

func TestLeftmostPin(t *testing.T) {
	w := Wire{Pins: []Pin{geom.Pt(7, 1), geom.Pt(3, 9), geom.Pt(3, 2)}}
	if got := w.LeftmostPin(); got != geom.Pt(3, 2) {
		t.Errorf("LeftmostPin = %v, want (3,2)", got)
	}
}

func TestWireValidate(t *testing.T) {
	g := geom.Grid{Channels: 10, Grids: 100}
	if err := (&Wire{ID: 1, Pins: []Pin{geom.Pt(0, 0)}}).Validate(g); err == nil {
		t.Errorf("single-pin wire must be invalid")
	}
	if err := (&Wire{ID: 1, Pins: []Pin{geom.Pt(0, 0), geom.Pt(100, 0)}}).Validate(g); err == nil {
		t.Errorf("off-grid pin must be invalid")
	}
	if err := (&Wire{ID: 1, Pins: []Pin{geom.Pt(0, 0), geom.Pt(99, 9)}}).Validate(g); err != nil {
		t.Errorf("valid wire rejected: %v", err)
	}
}

func TestCircuitValidateDuplicateIDs(t *testing.T) {
	c := &Circuit{
		Name: "t",
		Grid: geom.Grid{Channels: 4, Grids: 10},
		Wires: []Wire{
			{ID: 1, Pins: []Pin{geom.Pt(0, 0), geom.Pt(5, 0)}},
			{ID: 1, Pins: []Pin{geom.Pt(1, 1), geom.Pt(6, 1)}},
		},
	}
	if err := c.Validate(); err == nil {
		t.Errorf("duplicate wire IDs must be invalid")
	}
}

func TestComputeStats(t *testing.T) {
	c := &Circuit{
		Name: "t",
		Grid: geom.Grid{Channels: 4, Grids: 100},
		Wires: []Wire{
			{ID: 0, Pins: []Pin{geom.Pt(0, 0), geom.Pt(10, 0)}},
			{ID: 1, Pins: []Pin{geom.Pt(0, 1), geom.Pt(90, 1), geom.Pt(50, 2)}},
		},
	}
	s := ComputeStats(c)
	if s.Wires != 2 || s.Pins != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.MultiPin != 1 {
		t.Errorf("MultiPin = %d, want 1", s.MultiPin)
	}
	if s.LongWires != 1 { // wire 1 cost = 90+1 = 91 >= 60
		t.Errorf("LongWires = %d, want 1", s.LongWires)
	}
	if s.MaxCost != 131 {
		t.Errorf("MaxCost = %d, want 131", s.MaxCost)
	}
}

package circuit

import (
	"fmt"
	"math/rand"

	"locusroute/internal/geom"
)

// GenParams configures the synthetic standard cell circuit generator.
//
// The generator models the empirical structure of standard cell netlists
// that the paper's experiments depend on:
//
//   - most wires are short and local (a geometric horizontal span),
//   - a minority of wires are long, stretching across many owned regions
//     (these are what limit exploitable locality, Section 5.3.3),
//   - wires span few channels vertically (cells sit in rows),
//   - pin positions cluster around a wire's own neighbourhood, and
//   - wire "centres" are spread over the whole area with mild clustering,
//     so locality-based assignment has load imbalance to fight
//     (Section 4.2).
type GenParams struct {
	Name     string
	Channels int
	Grids    int
	Wires    int

	// MeanSpan is the mean horizontal span of short wires, in grid
	// columns (geometric distribution).
	MeanSpan float64
	// LongFrac is the fraction of wires drawn as long wires whose span is
	// uniform over [Grids/4, Grids-1].
	LongFrac float64
	// MaxChanSpan bounds the vertical (channel) span of a wire.
	MaxChanSpan int
	// PinDist gives the probability of 2, 3, 4, 5 pins; it is normalised
	// internally. A zero value defaults to {0.60, 0.25, 0.10, 0.05}.
	PinDist [4]float64
	// Cluster controls spatial clustering of wire centres: 0 is uniform;
	// larger values concentrate wires around ClusterCount hot spots,
	// creating the load imbalance that pure locality assignment suffers.
	Cluster      float64
	ClusterCount int
	// Seed makes generation reproducible.
	Seed int64
}

func (p GenParams) withDefaults() GenParams {
	if p.PinDist == ([4]float64{}) {
		p.PinDist = [4]float64{0.60, 0.25, 0.10, 0.05}
	}
	if p.MeanSpan <= 0 {
		p.MeanSpan = 14
	}
	if p.MaxChanSpan <= 0 {
		p.MaxChanSpan = 3
	}
	if p.ClusterCount <= 0 {
		p.ClusterCount = 5
	}
	return p
}

// BnrELike returns generator parameters matched to the published bnrE
// statistics: 420 wires on a 10 channel x 341 grid circuit. bnrE has the
// poorer locality of the two benchmarks (locality measure ~1.21 at 16
// processors), so it gets a slightly longer wire mix and stronger
// clustering.
func BnrELike(seed int64) GenParams {
	return GenParams{
		Name:         "bnrE-like",
		Channels:     10,
		Grids:        341,
		Wires:        420,
		MeanSpan:     16,
		LongFrac:     0.12,
		MaxChanSpan:  4,
		Cluster:      0.5,
		ClusterCount: 4,
		Seed:         seed,
	}
}

// MDCLike returns generator parameters matched to the published MDC
// statistics: 573 wires on a 12 channel x 386 grid circuit, with better
// locality (~0.91) than bnrE: shorter wires, weaker clustering.
func MDCLike(seed int64) GenParams {
	return GenParams{
		Name:         "MDC-like",
		Channels:     12,
		Grids:        386,
		Wires:        573,
		MeanSpan:     12,
		LongFrac:     0.08,
		MaxChanSpan:  3,
		Cluster:      0.35,
		ClusterCount: 6,
		Seed:         seed,
	}
}

// Scaled returns p blown up by the given factor: the wire count grows
// scale×, and the grid grows by a pair of per-axis factors whose product
// is ~scale (floor/ceil of sqrt), so wire-length statistics and density
// stay roughly constant while the circuit gets big enough for intra-
// circuit parallelism to pay. The long-wire fraction shrinks by the
// vertical factor so the number of grid-spanning wires — which become
// boundary wires under any partition — grows only linearly rather than
// with the wire count. scale <= 1 returns p unchanged.
func Scaled(p GenParams, scale int) GenParams {
	if scale <= 1 {
		return p
	}
	kc := 1
	for (kc+1)*(kc+1) <= scale {
		kc++
	}
	kg := (scale + kc - 1) / kc
	p.Name = fmt.Sprintf("%s-x%d", p.Name, scale)
	p.Channels *= kc
	p.Grids *= kg
	p.Wires *= scale
	p.LongFrac /= float64(kc)
	p.ClusterCount *= kc
	return p
}

// Generate builds a synthetic circuit from params. The same params always
// produce the same circuit.
func Generate(params GenParams) (*Circuit, error) {
	p := params.withDefaults()
	g := geom.Grid{Channels: p.Channels, Grids: p.Grids}
	if !g.Valid() {
		return nil, fmt.Errorf("circuit: invalid dimensions %dx%d", p.Channels, p.Grids)
	}
	if p.Wires <= 0 {
		return nil, fmt.Errorf("circuit: wire count %d must be positive", p.Wires)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Hot spots for clustering.
	hot := make([]geom.Point, p.ClusterCount)
	for i := range hot {
		hot[i] = geom.Pt(rng.Intn(g.Grids), rng.Intn(g.Channels))
	}

	c := &Circuit{Name: p.Name, Grid: g, Wires: make([]Wire, 0, p.Wires)}
	for id := 0; id < p.Wires; id++ {
		w := Wire{ID: id, Pins: genPins(rng, p, g, hot)}
		c.Wires = append(c.Wires, w)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: generator produced invalid circuit: %w", err)
	}
	return c, nil
}

// MustGenerate is Generate for known-good presets; it panics on error.
func MustGenerate(params GenParams) *Circuit {
	c, err := Generate(params)
	if err != nil {
		panic(err)
	}
	return c
}

func genPins(rng *rand.Rand, p GenParams, g geom.Grid, hot []geom.Point) []Pin {
	// Wire centre: blend of uniform and a hot spot.
	var cx, cy int
	if rng.Float64() < p.Cluster {
		h := hot[rng.Intn(len(hot))]
		cx = h.X + int(rng.NormFloat64()*float64(g.Grids)/12)
		cy = h.Y + int(rng.NormFloat64()*float64(g.Channels)/4)
	} else {
		cx = rng.Intn(g.Grids)
		cy = rng.Intn(g.Channels)
	}
	centre := g.Clamp(geom.Pt(cx, cy))

	// Horizontal span: geometric short wires, occasional long wires.
	var span int
	long := rng.Float64() < p.LongFrac
	if long {
		lo := g.Grids / 4
		span = lo + rng.Intn(g.Grids-lo)
	} else {
		span = 1 + geometric(rng, p.MeanSpan)
		if span >= g.Grids {
			span = g.Grids - 1
		}
	}
	chanSpan := rng.Intn(p.MaxChanSpan + 1)
	if chanSpan >= g.Channels {
		chanSpan = g.Channels - 1
	}

	npins := 2 + weightedIndex(rng, p.PinDist[:])
	if long {
		// Long nets in real standard cell circuits are high-fanout
		// (clocks, resets, buses): give them extra scattered pins. Their
		// netlist-order polyline cost can then exceed 1000, populating
		// the band between ThresholdCost = 1000 and infinity.
		npins += 3 + rng.Intn(7)
	}
	pins := make([]Pin, 0, npins)
	x0 := centre.X - span/2
	y0 := centre.Y - chanSpan/2
	for i := 0; i < npins; i++ {
		var px, py int
		switch i {
		case 0: // anchor left end
			px, py = x0, y0
		case 1: // anchor right end
			px, py = x0+span, y0+chanSpan
		default: // interior pins
			px = x0 + rng.Intn(span+1)
			py = y0 + rng.Intn(chanSpan+1)
		}
		pins = append(pins, g.Clamp(geom.Pt(px, py)))
	}
	// Degenerate wires (all pins at one point after clamping) still need
	// two distinct pins to be routable in a meaningful sense; nudge.
	if allSame(pins) {
		q := pins[0]
		if q.X+1 < g.Grids {
			q.X++
		} else {
			q.X--
		}
		pins[len(pins)-1] = q
	}
	return pins
}

func allSame(pins []Pin) bool {
	for _, p := range pins[1:] {
		if p != pins[0] {
			return false
		}
	}
	return true
}

// geometric draws from a geometric distribution with the given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 0
	}
	p := 1 / mean
	n := 0
	for rng.Float64() > p {
		n++
		if float64(n) > mean*20 { // hard safety bound
			break
		}
	}
	return n
}

// weightedIndex picks an index with the given (unnormalised) weights.
func weightedIndex(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for i, v := range w {
		r -= v
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format is deliberately simple and line-oriented so benchmark
// circuits can be inspected, diffed and hand-edited:
//
//	circuit <name> <channels> <grids>
//	wire <id> <x1> <y1> <x2> <y2> [...]
//	...
//
// Blank lines and lines starting with '#' are ignored.

// Write serialises the circuit to w in the text format.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	name := c.Name
	if name == "" {
		name = "unnamed"
	}
	if strings.ContainsAny(name, " \t\n") {
		return fmt.Errorf("circuit: name %q must not contain whitespace", name)
	}
	if _, err := fmt.Fprintf(bw, "circuit %s %d %d\n", name, c.Grid.Channels, c.Grid.Grids); err != nil {
		return err
	}
	for i := range c.Wires {
		wire := &c.Wires[i]
		if _, err := fmt.Fprintf(bw, "wire %d", wire.ID); err != nil {
			return err
		}
		for _, p := range wire.Pins {
			if _, err := fmt.Fprintf(bw, " %d %d", p.X, p.Y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a circuit from r and validates it.
func Read(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var c *Circuit
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if c != nil {
				return nil, fmt.Errorf("circuit: line %d: duplicate circuit header", lineno)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("circuit: line %d: want 'circuit <name> <channels> <grids>'", lineno)
			}
			var channels, grids int
			if _, err := fmt.Sscanf(fields[2]+" "+fields[3], "%d %d", &channels, &grids); err != nil {
				return nil, fmt.Errorf("circuit: line %d: %v", lineno, err)
			}
			c = &Circuit{Name: fields[1]}
			c.Grid.Channels, c.Grid.Grids = channels, grids
		case "wire":
			if c == nil {
				return nil, fmt.Errorf("circuit: line %d: wire before circuit header", lineno)
			}
			if len(fields) < 6 || len(fields)%2 != 0 {
				return nil, fmt.Errorf("circuit: line %d: want 'wire <id> <x> <y> <x> <y> ...'", lineno)
			}
			var w Wire
			if _, err := fmt.Sscanf(fields[1], "%d", &w.ID); err != nil {
				return nil, fmt.Errorf("circuit: line %d: bad wire id: %v", lineno, err)
			}
			for i := 2; i < len(fields); i += 2 {
				var p Pin
				if _, err := fmt.Sscanf(fields[i]+" "+fields[i+1], "%d %d", &p.X, &p.Y); err != nil {
					return nil, fmt.Errorf("circuit: line %d: bad pin: %v", lineno, err)
				}
				w.Pins = append(w.Pins, p)
			}
			c.Wires = append(c.Wires, w)
		default:
			return nil, fmt.Errorf("circuit: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: no circuit header found")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Package circuit models standard cell circuits for the router: a routing
// grid, and wires (nets) with pins at grid locations.
//
// The two benchmark circuits of the paper — bnrE (420 wires, 10 channels x
// 341 grids, Bell-Northern Research) and MDC (573 wires, 12 channels x 386
// grids, University of Toronto MDC) — were never published, so this package
// provides seeded synthetic generators matched to their published
// statistics (see Generate and the BnrELike/MDCLike presets). The
// experiments depend only on those statistics, not on the exact netlists.
package circuit

import (
	"fmt"

	"locusroute/internal/geom"
)

// Pin is a wire terminal at a grid location.
type Pin = geom.Point

// Wire is a net to be routed: an ordered list of pins. The router
// decomposes multi-pin wires into two-pin segments between consecutive
// pins sorted by X, as LocusRoute does.
type Wire struct {
	ID   int
	Pins []Pin
}

// Bounds returns the bounding box of the wire's pins.
func (w *Wire) Bounds() geom.Rect {
	var bb geom.Rect
	for _, p := range w.Pins {
		bb = bb.AddPoint(p)
	}
	return bb
}

// Cost is the wire-length cost measure the static assignment phase uses
// (Section 4.2): a quick length estimate — the Manhattan length of the
// polyline through the pins in netlist order. For two-pin wires this is
// the bounding-box half-perimeter; long high-fanout wires can exceed
// 1000, which is what distinguishes ThresholdCost = 1000 from
// ThresholdCost = infinity in the locality experiments. Wires with Cost
// below ThresholdCost are assigned by locality, longer wires by load
// balancing.
func (w *Wire) Cost() int {
	cost := 0
	for i := 0; i+1 < len(w.Pins); i++ {
		cost += w.Pins[i].Manhattan(w.Pins[i+1])
	}
	return cost
}

// LeftmostPin returns the pin with the smallest X (ties broken by smallest
// Y). The paper assigns local wires to the owner of this pin.
func (w *Wire) LeftmostPin() Pin {
	best := w.Pins[0]
	for _, p := range w.Pins[1:] {
		if p.X < best.X || (p.X == best.X && p.Y < best.Y) {
			best = p
		}
	}
	return best
}

// Validate checks the wire is routable on grid g.
func (w *Wire) Validate(g geom.Grid) error {
	if len(w.Pins) < 2 {
		return fmt.Errorf("circuit: wire %d has %d pins, need at least 2", w.ID, len(w.Pins))
	}
	for _, p := range w.Pins {
		if !p.In(g.Bounds()) {
			return fmt.Errorf("circuit: wire %d pin %v outside grid %dx%d",
				w.ID, p, g.Grids, g.Channels)
		}
	}
	return nil
}

// Circuit is a standard cell circuit: a routing grid and its wires.
type Circuit struct {
	Name  string
	Grid  geom.Grid
	Wires []Wire
}

// Validate checks every wire in the circuit.
func (c *Circuit) Validate() error {
	if !c.Grid.Valid() {
		return fmt.Errorf("circuit %q: invalid grid %+v", c.Name, c.Grid)
	}
	seen := make(map[int]bool, len(c.Wires))
	for i := range c.Wires {
		w := &c.Wires[i]
		if err := w.Validate(c.Grid); err != nil {
			return err
		}
		if seen[w.ID] {
			return fmt.Errorf("circuit %q: duplicate wire id %d", c.Name, w.ID)
		}
		seen[w.ID] = true
	}
	return nil
}

// Stats summarises a circuit for reporting and generator verification.
type Stats struct {
	Wires        int
	Pins         int
	MeanCost     float64 // mean wire half-perimeter cost
	MaxCost      int
	MeanSpanX    float64 // mean horizontal span
	MeanSpanY    float64 // mean channel span
	LongWires    int     // wires with Cost >= LongWireCost
	MultiPin     int     // wires with more than 2 pins
	GridCells    int
	WiresPerCell float64
}

// LongWireCost is the cost at or above which a wire counts as "long" in
// Stats (a reporting convention, not an algorithm parameter).
const LongWireCost = 60

// ComputeStats summarises the circuit.
func ComputeStats(c *Circuit) Stats {
	s := Stats{Wires: len(c.Wires), GridCells: c.Grid.Cells()}
	var costSum, spanXSum, spanYSum int
	for i := range c.Wires {
		w := &c.Wires[i]
		s.Pins += len(w.Pins)
		cost := w.Cost()
		costSum += cost
		if cost > s.MaxCost {
			s.MaxCost = cost
		}
		if cost >= LongWireCost {
			s.LongWires++
		}
		if len(w.Pins) > 2 {
			s.MultiPin++
		}
		bb := w.Bounds()
		spanXSum += bb.Dx() - 1
		spanYSum += bb.Dy() - 1
	}
	if s.Wires > 0 {
		s.MeanCost = float64(costSum) / float64(s.Wires)
		s.MeanSpanX = float64(spanXSum) / float64(s.Wires)
		s.MeanSpanY = float64(spanYSum) / float64(s.Wires)
	}
	if s.GridCells > 0 {
		s.WiresPerCell = float64(s.Wires) / float64(s.GridCells)
	}
	return s
}

// String renders the stats in a human-readable one-per-line form.
func (s Stats) String() string {
	return fmt.Sprintf(
		"wires=%d pins=%d meanCost=%.1f maxCost=%d meanSpanX=%.1f meanSpanY=%.1f long=%d multiPin=%d",
		s.Wires, s.Pins, s.MeanCost, s.MaxCost, s.MeanSpanX, s.MeanSpanY, s.LongWires, s.MultiPin)
}

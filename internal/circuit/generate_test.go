package circuit

import (
	"testing"

	"locusroute/internal/geom"
)

func TestGenerateBnrELikeMatchesPublishedShape(t *testing.T) {
	c := MustGenerate(BnrELike(1))
	if c.Grid != (geom.Grid{Channels: 10, Grids: 341}) {
		t.Errorf("grid = %+v", c.Grid)
	}
	if len(c.Wires) != 420 {
		t.Errorf("wires = %d, want 420", len(c.Wires))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(c)
	// Short-wire-dominated distribution with a long tail.
	if s.MeanCost < 5 || s.MeanCost > 150 {
		t.Errorf("mean cost %f out of plausible band", s.MeanCost)
	}
	if s.LongWires == 0 {
		t.Errorf("expected some long wires (limits on locality, Section 5.3.3)")
	}
	if s.LongWires > len(c.Wires)/2 {
		t.Errorf("too many long wires: %d", s.LongWires)
	}
	if s.MultiPin == 0 {
		t.Errorf("expected some multi-pin wires")
	}
}

func TestGenerateMDCLikeMatchesPublishedShape(t *testing.T) {
	c := MustGenerate(MDCLike(1))
	if c.Grid != (geom.Grid{Channels: 12, Grids: 386}) {
		t.Errorf("grid = %+v", c.Grid)
	}
	if len(c.Wires) != 573 {
		t.Errorf("wires = %d, want 573", len(c.Wires))
	}
	// MDC has better locality: shorter mean span than bnrE at same seed.
	b := MustGenerate(BnrELike(1))
	sb, sm := ComputeStats(b), ComputeStats(c)
	if sm.MeanSpanX >= sb.MeanSpanX {
		t.Errorf("MDC-like mean span %f should be below bnrE-like %f",
			sm.MeanSpanX, sb.MeanSpanX)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(BnrELike(7))
	b := MustGenerate(BnrELike(7))
	if len(a.Wires) != len(b.Wires) {
		t.Fatalf("wire counts differ")
	}
	for i := range a.Wires {
		if len(a.Wires[i].Pins) != len(b.Wires[i].Pins) {
			t.Fatalf("wire %d pin counts differ", i)
		}
		for j := range a.Wires[i].Pins {
			if a.Wires[i].Pins[j] != b.Wires[i].Pins[j] {
				t.Fatalf("wire %d pin %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(BnrELike(1))
	b := MustGenerate(BnrELike(2))
	same := true
	for i := range a.Wires {
		if a.Wires[i].Pins[0] != b.Wires[i].Pins[0] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should produce different circuits")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(GenParams{Channels: 0, Grids: 10, Wires: 5}); err == nil {
		t.Errorf("zero channels must fail")
	}
	if _, err := Generate(GenParams{Channels: 4, Grids: 10, Wires: 0}); err == nil {
		t.Errorf("zero wires must fail")
	}
}

func TestGenerateNoDegenerateWires(t *testing.T) {
	for _, params := range []GenParams{BnrELike(3), MDCLike(3)} {
		c := MustGenerate(params)
		for i := range c.Wires {
			w := &c.Wires[i]
			if allSame(w.Pins) {
				t.Errorf("%s wire %d has all-coincident pins", c.Name, w.ID)
			}
		}
	}
}

func TestGenerateSmallGrid(t *testing.T) {
	// Tiny circuits for unit tests elsewhere must generate cleanly.
	c, err := Generate(GenParams{
		Name: "tiny", Channels: 4, Grids: 16, Wires: 10, MeanSpan: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	c := MustGenerate(GenParams{
		Name: "span", Channels: 6, Grids: 200, Wires: 2000,
		MeanSpan: 10, LongFrac: 0, MaxChanSpan: 0, Seed: 5,
	})
	s := ComputeStats(c)
	// Mean span should be near MeanSpan (geometric with mean 10, +1).
	if s.MeanSpanX < 6 || s.MeanSpanX > 15 {
		t.Errorf("mean span %f not near configured 10", s.MeanSpanX)
	}
}

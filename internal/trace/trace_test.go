package trace

import (
	"testing"

	"locusroute/internal/sim"
)

func TestSortByTime(t *testing.T) {
	tr := &Trace{}
	tr.Append(Ref{T: 30, Proc: 0, Addr: 1, Op: Read})
	tr.Append(Ref{T: 10, Proc: 1, Addr: 2, Op: Write})
	tr.Append(Ref{T: 20, Proc: 2, Addr: 3, Op: Read})
	tr.Sort()
	if tr.Refs[0].T != 10 || tr.Refs[1].T != 20 || tr.Refs[2].T != 30 {
		t.Errorf("not sorted: %+v", tr.Refs)
	}
}

func TestSortStableTieBreak(t *testing.T) {
	tr := &Trace{}
	tr.Append(Ref{T: 5, Proc: 2, Addr: 1})
	tr.Append(Ref{T: 5, Proc: 0, Addr: 2})
	tr.Append(Ref{T: 5, Proc: 1, Addr: 3})
	tr.Sort()
	for i, want := range []int{0, 1, 2} {
		if tr.Refs[i].Proc != want {
			t.Errorf("tie-break by proc failed: %+v", tr.Refs)
			break
		}
	}
}

func TestCounts(t *testing.T) {
	tr := &Trace{}
	tr.Append(Ref{Op: Read})
	tr.Append(Ref{Op: Write})
	tr.Append(Ref{Op: Write})
	r, w := tr.Counts()
	if r != 1 || w != 2 {
		t.Errorf("Counts = %d, %d", r, w)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	tr.Sort()
	r, w := tr.Counts()
	if r != 0 || w != 0 || tr.Len() != 0 {
		t.Errorf("empty trace not empty")
	}
	_ = sim.Time(0)
}

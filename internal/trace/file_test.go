package trace

import (
	"bytes"
	"strings"
	"testing"

	"locusroute/internal/sim"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Append(Ref{T: 10, Proc: 0, Addr: 0x40, Op: Read})
	t.Append(Ref{T: 20, Proc: 3, Addr: 0x44, Op: Write})
	t.Append(Ref{T: 30, Proc: 1, Addr: 1 << 40, Op: Read})
	return t
}

func TestFileRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteFile(&buf, orig, 4); err != nil {
		t.Fatal(err)
	}
	got, procs, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if procs != 4 {
		t.Errorf("procs = %d, want 4", procs)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("lengths differ")
	}
	for i := range orig.Refs {
		if got.Refs[i] != orig.Refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got.Refs[i], orig.Refs[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, &Trace{}, 2); err != nil {
		t.Fatal(err)
	}
	got, procs, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || procs != 2 {
		t.Errorf("empty round trip wrong: %d refs, %d procs", got.Len(), procs)
	}
}

func TestWriteFileValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, sampleTrace(), 0); err == nil {
		t.Errorf("zero procs must fail")
	}
	// A ref from processor 3 cannot be written as a 2-processor trace.
	if err := WriteFile(&buf, sampleTrace(), 2); err == nil {
		t.Errorf("out-of-range processor must fail")
	}
}

func TestReadFileErrors(t *testing.T) {
	// Bad magic.
	if _, _, err := ReadFile(strings.NewReader("XXXX0000000000000000")); err == nil {
		t.Errorf("bad magic must fail")
	}
	// Truncated records.
	var buf bytes.Buffer
	if err := WriteFile(&buf, sampleTrace(), 4); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := ReadFile(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Errorf("truncated file must fail")
	}
	// Corrupt op byte.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] = 9
	if _, _, err := ReadFile(bytes.NewReader(corrupt)); err == nil {
		t.Errorf("bad op must fail")
	}
	// Short header.
	if _, _, err := ReadFile(strings.NewReader("LR")); err == nil {
		t.Errorf("short header must fail")
	}
}

func TestFileTimePreserved(t *testing.T) {
	tr := &Trace{}
	tr.Append(Ref{T: sim.Time(123456789), Proc: 0, Addr: 8, Op: Write})
	var buf bytes.Buffer
	if err := WriteFile(&buf, tr, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Refs[0].T != sim.Time(123456789) {
		t.Errorf("time = %v", got.Refs[0].T)
	}
}

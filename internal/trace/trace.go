// Package trace represents shared-data reference traces, the role Tango
// played for the paper (Section 2.2): for each shared reference the time,
// address and referencing processor are recorded. Traces are produced by
// the traced shared memory router (internal/sm) and consumed by the cache
// coherence simulator (internal/cache).
package trace

import (
	"sort"

	"locusroute/internal/sim"
)

// Op is the reference type.
type Op uint8

const (
	// Read is a load from shared memory.
	Read Op = iota
	// Write is a store to shared memory.
	Write
)

// Ref is one shared-data reference.
type Ref struct {
	T    sim.Time
	Proc int
	Addr uint64 // byte address of the referenced word
	Op   Op
}

// Trace is a time-ordered sequence of references.
type Trace struct {
	Refs []Ref
}

// Append adds a reference (not necessarily in order; call Sort before
// consuming).
func (t *Trace) Append(r Ref) { t.Refs = append(t.Refs, r) }

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// Sort orders references by time, breaking ties by processor then
// sequence, making consumption deterministic.
func (t *Trace) Sort() {
	sort.SliceStable(t.Refs, func(i, j int) bool {
		if t.Refs[i].T != t.Refs[j].T {
			return t.Refs[i].T < t.Refs[j].T
		}
		return t.Refs[i].Proc < t.Refs[j].Proc
	})
}

// Counts returns the number of reads and writes.
func (t *Trace) Counts() (reads, writes int) {
	for _, r := range t.Refs {
		if r.Op == Read {
			reads++
		} else {
			writes++
		}
	}
	return reads, writes
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"locusroute/internal/sim"
)

// Binary trace file format, so traces can be collected once (the
// expensive multiplexed execution) and replayed through many coherence
// configurations, the way Tango traces were used:
//
//	magic "LRTR" | version u16 | procs u16 | count u64
//	count records of: time i64 | addr u64 | proc u16 | op u8
//
// All fields little-endian.

const (
	fileMagic   = "LRTR"
	fileVersion = 1
	recordSize  = 8 + 8 + 2 + 1
	headerSize  = 4 + 2 + 2 + 8
	maxRecords  = 1 << 32 // sanity bound on read
)

// WriteFile serialises the trace. procs records how many processors the
// trace was collected from (needed to replay it).
func WriteFile(w io.Writer, t *Trace, procs int) error {
	if procs <= 0 || procs > 1<<16-1 {
		return fmt.Errorf("trace: processor count %d out of range", procs)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	header := make([]byte, headerSize)
	copy(header, fileMagic)
	binary.LittleEndian.PutUint16(header[4:], fileVersion)
	binary.LittleEndian.PutUint16(header[6:], uint16(procs))
	binary.LittleEndian.PutUint64(header[8:], uint64(len(t.Refs)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	rec := make([]byte, recordSize)
	for _, r := range t.Refs {
		if r.Proc < 0 || r.Proc >= procs {
			return fmt.Errorf("trace: ref from processor %d but trace has %d", r.Proc, procs)
		}
		binary.LittleEndian.PutUint64(rec, uint64(r.T))
		binary.LittleEndian.PutUint64(rec[8:], r.Addr)
		binary.LittleEndian.PutUint16(rec[16:], uint16(r.Proc))
		rec[18] = byte(r.Op)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile parses a trace file, returning the trace and the processor
// count it was collected from.
func ReadFile(r io.Reader) (*Trace, int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(header[:4]) != fileMagic {
		return nil, 0, fmt.Errorf("trace: bad magic %q", header[:4])
	}
	if v := binary.LittleEndian.Uint16(header[4:]); v != fileVersion {
		return nil, 0, fmt.Errorf("trace: unsupported version %d", v)
	}
	procs := int(binary.LittleEndian.Uint16(header[6:]))
	if procs == 0 {
		return nil, 0, fmt.Errorf("trace: zero processors")
	}
	count := binary.LittleEndian.Uint64(header[8:])
	if count > maxRecords {
		return nil, 0, fmt.Errorf("trace: implausible record count %d", count)
	}
	t := &Trace{Refs: make([]Ref, 0, count)}
	rec := make([]byte, recordSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, 0, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ref := Ref{
			T:    sim.Time(binary.LittleEndian.Uint64(rec)),
			Addr: binary.LittleEndian.Uint64(rec[8:]),
			Proc: int(binary.LittleEndian.Uint16(rec[16:])),
			Op:   Op(rec[18]),
		}
		if ref.Proc >= procs {
			return nil, 0, fmt.Errorf("trace: record %d from processor %d of %d", i, ref.Proc, procs)
		}
		if ref.Op != Read && ref.Op != Write {
			return nil, 0, fmt.Errorf("trace: record %d has bad op %d", i, ref.Op)
		}
		t.Refs = append(t.Refs, ref)
	}
	return t, procs, nil
}

package msg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"locusroute/internal/geom"
)

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSendLocData: "SendLocData",
		KindSendRmtData: "SendRmtData",
		KindReqRmtData:  "ReqRmtData",
		KindReqLocData:  "ReqLocData",
		KindRspRmtData:  "RspRmtData",
		KindRspLocData:  "RspLocData",
		KindDone:        "Done",
		KindContinue:    "Continue",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	// The paper's taxonomy: SendLocData and RspRmtData carry absolute
	// data (owner's view); SendRmtData and RspLocData carry deltas.
	if !KindSendLocData.IsAbsolute() || !KindRspRmtData.IsAbsolute() {
		t.Errorf("owner-view packets must be absolute")
	}
	if KindSendRmtData.IsAbsolute() || KindRspLocData.IsAbsolute() {
		t.Errorf("delta packets must not be absolute")
	}
	for _, k := range []Kind{KindReqLocData, KindReqRmtData, KindDone, KindContinue} {
		if k.IsData() {
			t.Errorf("%v must not be a data kind", k)
		}
	}
}

func TestEncodeDecodeDataRoundTrip(t *testing.T) {
	m := &Message{
		Kind:   KindSendLocData,
		Region: geom.R(3, 1, 6, 2), // 4x2
		Vals:   []int32{0, 1, 2, 3, -1, -2, 7, 0},
		Seq:    42,
	}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.EncodedSize() {
		t.Errorf("len = %d, EncodedSize = %d", len(buf), m.EncodedSize())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Region != m.Region || got.Seq != m.Seq {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range m.Vals {
		if got.Vals[i] != m.Vals[i] {
			t.Errorf("val %d = %d, want %d", i, got.Vals[i], m.Vals[i])
		}
	}
}

func TestEncodeDecodeRequestRoundTrip(t *testing.T) {
	m := &Message{Kind: KindReqRmtData, Region: geom.R(0, 0, 99, 9), Seq: 7}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 11 { // header only
		t.Errorf("request packet size = %d, want 11", len(buf))
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != m.Region || got.Vals != nil {
		t.Errorf("decoded request = %+v", got)
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []*Message{
		{Kind: KindSendLocData, Region: geom.R(0, 0, 1, 1), Vals: []int32{1}},                // wrong payload size
		{Kind: KindReqRmtData, Region: geom.R(0, 0, 1, 1), Vals: []int32{1}},                 // payload on request
		{Kind: KindSendLocData, Region: geom.R(0, 0, 0, 0), Vals: []int32{40000}},            // value overflow
		{Kind: KindDone, Region: geom.Rect{X0: -1, Y0: 0, X1: 1, Y1: 1}},                     // negative coord
		{Kind: KindDone, Region: geom.Rect{X0: 0, Y0: 0, X1: 70000, Y1: 1}, Vals: []int32{}}, // coord overflow
	}
	for i, m := range cases {
		if _, err := m.Encode(); err == nil {
			t.Errorf("case %d: expected encode error for %+v", i, m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Errorf("short packet must fail")
	}
	if _, err := Decode(make([]byte, 11)); err == nil {
		t.Errorf("kind 0 must fail")
	}
	// Valid header but ragged payload.
	m := &Message{Kind: KindDone, Seq: 1}
	buf, _ := m.Encode()
	if _, err := Decode(append(buf, 0x01)); err == nil {
		t.Errorf("ragged payload must fail")
	}
	// Data kind whose payload does not match the region area.
	d := &Message{Kind: KindSendRmtData, Region: geom.R(0, 0, 1, 0), Vals: []int32{1, 2}}
	buf, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0, 0) // extra cell
	if _, err := Decode(buf); err == nil {
		t.Errorf("area mismatch must fail")
	}
	// Request kind carrying payload bytes.
	r := &Message{Kind: KindReqLocData, Region: geom.R(0, 0, 1, 1)}
	buf, _ = r.Encode()
	if _, err := Decode(append(buf, 0, 0)); err == nil {
		t.Errorf("request with payload must fail")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, kindSel uint8, seq uint16) bool {
		r := rand.New(rand.NewSource(seed))
		kinds := []Kind{KindSendLocData, KindSendRmtData, KindRspRmtData, KindRspLocData}
		kind := kinds[int(kindSel)%len(kinds)]
		region := geom.R(r.Intn(100), r.Intn(20), r.Intn(100), r.Intn(20))
		vals := make([]int32, region.Area())
		for i := range vals {
			vals[i] = int32(r.Intn(200) - 100)
		}
		m := &Message{Kind: kind, Region: region, Vals: vals, Seq: seq}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.Kind != kind || got.Region != region || got.Seq != seq {
			return false
		}
		for i := range vals {
			if got.Vals[i] != vals[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNoChangeResponseRoundTrip(t *testing.T) {
	// A header-only data packet (empty region, no payload) means "no
	// changes since your last request".
	for _, kind := range []Kind{KindRspRmtData, KindRspLocData} {
		m := &Message{Kind: kind, Seq: 9}
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !got.Region.Empty() || got.Vals != nil || got.Seq != 9 {
			t.Errorf("%v round trip = %+v", kind, got)
		}
	}
}

func TestDecodeRejectsCorruptKindByte(t *testing.T) {
	m := &Message{Kind: KindContinue, Seq: 3}
	buf, _ := m.Encode()
	buf[0] = 99
	if _, err := Decode(buf); err == nil {
		t.Errorf("unknown kind must fail")
	}
}

// TestPackTaskBoundaries pins the task encoding's exact domain: the
// largest representable (wire, initiator) round-trips, and the first
// value past each limit is rejected instead of silently truncated.
func TestPackTaskBoundaries(t *testing.T) {
	valid := []struct{ wire, initiator int }{
		{0, 0},
		{TaskWireLimit - 1, 0},
		{0, TaskInitiatorLimit - 1},
		{TaskWireLimit - 1, TaskInitiatorLimit - 1},
	}
	for _, c := range valid {
		seq, err := PackTask(c.wire, c.initiator)
		if err != nil {
			t.Errorf("PackTask(%d, %d): unexpected error %v", c.wire, c.initiator, err)
			continue
		}
		wire, init := UnpackTask(seq)
		if wire != c.wire || init != c.initiator {
			t.Errorf("PackTask(%d, %d) round-tripped to (%d, %d)",
				c.wire, c.initiator, wire, init)
		}
	}
	invalid := []struct{ wire, initiator int }{
		{TaskWireLimit, 0},      // would alias (0, 1)
		{0, TaskInitiatorLimit}, // would alias (0, 0)
		{-1, 0},
		{0, -1},
		{1 << 20, 1 << 10},
	}
	for _, c := range invalid {
		if seq, err := PackTask(c.wire, c.initiator); err == nil {
			t.Errorf("PackTask(%d, %d) = %#x, want error", c.wire, c.initiator, seq)
		}
	}
}

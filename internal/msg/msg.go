// Package msg defines the wire format of the message passing LocusRoute's
// update packets (Section 4.3 of the paper) and their classification:
//
//	sender initiated:   SendLocData (absolute), SendRmtData (delta)
//	receiver initiated: ReqLocData/RspLocData (delta),
//	                    ReqRmtData/RspRmtData (absolute)
//
// Data packets carry the bounding box of all changes made within one owned
// region — the paper's third packet structure — as four coordinates plus a
// row-major payload of 16-bit cells. Packets are really encoded to bytes
// and decoded again, so the "MBytes transferred" numbers of the
// experiments count actual marshalled bytes, and the per-byte
// assembly/disassembly compute cost the paper observes (up to a quarter of
// processing time under frequent updates) has a concrete basis.
package msg

import (
	"encoding/binary"
	"fmt"

	"locusroute/internal/geom"
)

// Kind discriminates packet types (Figure 3 of the paper, plus the
// Done/Continue pair used for the inter-iteration barrier).
type Kind uint8

const (
	// KindSendLocData is a sender initiated update carrying the owner's
	// absolute view of (part of) its owned region. Receivers replace.
	KindSendLocData Kind = iota + 1
	// KindSendRmtData is a sender initiated update carrying the deltas a
	// non-owner has accumulated against someone else's region. The owner
	// adds them to its authoritative view.
	KindSendRmtData
	// KindReqRmtData asks the owner of a region for its absolute data.
	KindReqRmtData
	// KindReqLocData is sent by an owner asking a remote processor for
	// the deltas it has accumulated against the owner's region.
	KindReqLocData
	// KindRspRmtData answers ReqRmtData with absolute data.
	KindRspRmtData
	// KindRspLocData answers ReqLocData with delta data.
	KindRspLocData
	// KindDone tells the barrier coordinator a node finished an
	// iteration.
	KindDone
	// KindContinue releases nodes from the barrier into the next
	// iteration.
	KindContinue
	// KindReqWire asks the wire assignment processor for the next wire
	// (the dynamic distribution scheme of Section 4.2 the paper
	// describes and rejects; kept as an ablation).
	KindReqWire
	// KindWireGrant answers KindReqWire: Seq carries the granted wire
	// index, or WireGrantDone when the iteration's wires are exhausted.
	KindWireGrant
	// KindSendRmtWire is the wire-based update packet structure of
	// Section 4.3.1 (first alternative): one straight run of a routed or
	// ripped-up wire, header only — Region is the run, Seq is
	// WireFlagRoute or WireFlagRipUp. The receiver adds +1 or -1 to
	// every cell of the run.
	KindSendRmtWire
	// KindPassTask hands a routing task across a region boundary in the
	// strict-ownership scheme of Section 4.1 (the design the paper
	// rejects): Region carries the raw (current, target) point pair
	// (X0,Y0 = current cell, X1,Y1 = target cell — NOT a normalised
	// rectangle), Seq packs the wire index and the initiating processor
	// (see PackTask).
	KindPassTask
	// KindSegDone tells a wire's initiating processor that one of its
	// segments finished routing in a remote region; Seq as in
	// KindPassTask.
	KindSegDone
)

// TaskWireLimit and TaskInitiatorLimit bound what PackTask can encode:
// the 16-bit Seq field holds a 12-bit wire index and a 4-bit initiating
// processor.
const (
	TaskWireLimit      = 1 << 12
	TaskInitiatorLimit = 1 << 4
)

// PackTask packs a wire index and initiating processor into the Seq
// field of KindPassTask/KindSegDone messages. Values outside
// [0, TaskWireLimit) and [0, TaskInitiatorLimit) do not fit the 16-bit
// encoding and return an error rather than silently truncating — a
// truncated task would route the wrong wire or report completion to the
// wrong processor on circuits larger than the paper's presets.
func PackTask(wire, initiator int) (uint16, error) {
	if wire < 0 || wire >= TaskWireLimit {
		return 0, fmt.Errorf("msg: wire index %d outside task encoding range [0, %d)",
			wire, TaskWireLimit)
	}
	if initiator < 0 || initiator >= TaskInitiatorLimit {
		return 0, fmt.Errorf("msg: initiator %d outside task encoding range [0, %d)",
			initiator, TaskInitiatorLimit)
	}
	return uint16(wire) | uint16(initiator)<<12, nil
}

// UnpackTask reverses PackTask.
func UnpackTask(seq uint16) (wire, initiator int) {
	return int(seq & 0x0fff), int(seq >> 12)
}

// Seq values for KindSendRmtWire.
const (
	WireFlagRoute uint16 = 0
	WireFlagRipUp uint16 = 1
)

// WireGrantDone is the Seq value of a KindWireGrant marking the end of an
// iteration's wire supply.
const WireGrantDone = ^uint16(0)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case KindSendLocData:
		return "SendLocData"
	case KindSendRmtData:
		return "SendRmtData"
	case KindReqRmtData:
		return "ReqRmtData"
	case KindReqLocData:
		return "ReqLocData"
	case KindRspRmtData:
		return "RspRmtData"
	case KindRspLocData:
		return "RspLocData"
	case KindDone:
		return "Done"
	case KindContinue:
		return "Continue"
	case KindReqWire:
		return "ReqWire"
	case KindWireGrant:
		return "WireGrant"
	case KindSendRmtWire:
		return "SendRmtWire"
	case KindPassTask:
		return "PassTask"
	case KindSegDone:
		return "SegDone"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsData reports whether packets of this kind carry a cell payload.
func (k Kind) IsData() bool {
	switch k {
	case KindSendLocData, KindSendRmtData, KindRspRmtData, KindRspLocData:
		return true
	}
	return false
}

// IsAbsolute reports whether the payload replaces the receiver's cells
// (true) or is added to them (false). Only meaningful for data kinds.
func (k Kind) IsAbsolute() bool {
	return k == KindSendLocData || k == KindRspRmtData
}

// Message is one LocusRoute protocol packet.
type Message struct {
	Kind Kind
	// Region is the bounding box the payload covers (data kinds), the
	// region an update is requested for (request kinds), or unused
	// (barrier kinds).
	Region geom.Rect
	// Vals is the row-major cell payload for data kinds; nil otherwise.
	Vals []int32
	// Seq carries the iteration number for barrier kinds and a request
	// sequence number for request/response matching.
	Seq uint16
}

const (
	headerSize  = 1 + 2 + 4*2 // kind + seq + 4 coords
	maxCoord    = 1<<16 - 1
	maxCellVal  = 1<<15 - 1
	minCellVal  = -(1 << 15)
	maxPayload  = 1 << 20 // sanity bound on decode
	bytesPerVal = 2
)

// EncodedSize returns the exact number of bytes Encode will produce.
func (m *Message) EncodedSize() int { return headerSize + bytesPerVal*len(m.Vals) }

// Encode marshals the message. It returns an error if coordinates or cell
// values do not fit the wire format, or if the payload length does not
// match the region for data kinds.
func (m *Message) Encode() ([]byte, error) {
	if m.Kind.IsData() {
		// An empty region with no payload is a valid "no changes"
		// response (header only).
		if len(m.Vals) != m.Region.Area() {
			return nil, fmt.Errorf("msg: %v payload %d cells for region %v (want %d)",
				m.Kind, len(m.Vals), m.Region, m.Region.Area())
		}
	} else if len(m.Vals) != 0 {
		return nil, fmt.Errorf("msg: %v must not carry a payload", m.Kind)
	}
	for _, c := range []int{m.Region.X0, m.Region.Y0, m.Region.X1, m.Region.Y1} {
		if c < 0 || c > maxCoord {
			return nil, fmt.Errorf("msg: coordinate %d out of range", c)
		}
	}
	buf := make([]byte, m.EncodedSize())
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint16(buf[1:], m.Seq)
	binary.LittleEndian.PutUint16(buf[3:], uint16(m.Region.X0))
	binary.LittleEndian.PutUint16(buf[5:], uint16(m.Region.Y0))
	binary.LittleEndian.PutUint16(buf[7:], uint16(m.Region.X1))
	binary.LittleEndian.PutUint16(buf[9:], uint16(m.Region.Y1))
	at := headerSize
	for _, v := range m.Vals {
		if v < minCellVal || v > maxCellVal {
			return nil, fmt.Errorf("msg: cell value %d out of int16 range", v)
		}
		binary.LittleEndian.PutUint16(buf[at:], uint16(int16(v)))
		at += bytesPerVal
	}
	return buf, nil
}

// Decode unmarshals a message produced by Encode.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("msg: short packet (%d bytes)", len(buf))
	}
	m := &Message{Kind: Kind(buf[0])}
	if m.Kind < KindSendLocData || m.Kind > KindSegDone {
		return nil, fmt.Errorf("msg: unknown kind %d", buf[0])
	}
	m.Seq = binary.LittleEndian.Uint16(buf[1:])
	m.Region = geom.Rect{
		X0: int(binary.LittleEndian.Uint16(buf[3:])),
		Y0: int(binary.LittleEndian.Uint16(buf[5:])),
		X1: int(binary.LittleEndian.Uint16(buf[7:])),
		Y1: int(binary.LittleEndian.Uint16(buf[9:])),
	}
	payload := buf[headerSize:]
	if len(payload)%bytesPerVal != 0 {
		return nil, fmt.Errorf("msg: ragged payload (%d bytes)", len(payload))
	}
	nvals := len(payload) / bytesPerVal
	if nvals > maxPayload {
		return nil, fmt.Errorf("msg: payload too large (%d cells)", nvals)
	}
	if m.Kind.IsData() {
		if nvals != m.Region.Area() {
			return nil, fmt.Errorf("msg: %v payload %d cells for region %v (want %d)",
				m.Kind, nvals, m.Region, m.Region.Area())
		}
		if nvals > 0 {
			m.Vals = make([]int32, nvals)
			for i := range m.Vals {
				m.Vals[i] = int32(int16(binary.LittleEndian.Uint16(payload[i*bytesPerVal:])))
			}
		}
	} else if nvals != 0 {
		return nil, fmt.Errorf("msg: %v must not carry a payload", m.Kind)
	}
	return m, nil
}

package msg

import (
	"bytes"
	"testing"

	"locusroute/internal/geom"
)

// FuzzDecode feeds arbitrary bytes to the packet decoder: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (decode-encode round trip).
func FuzzDecode(f *testing.F) {
	// Seed with real packets of every kind.
	seeds := []*Message{
		{Kind: KindSendLocData, Region: geom.R(0, 0, 3, 1), Vals: []int32{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindSendRmtData, Region: geom.R(2, 2, 2, 2), Vals: []int32{-1}},
		{Kind: KindReqRmtData, Region: geom.R(0, 0, 85, 2)},
		{Kind: KindReqLocData, Region: geom.R(10, 0, 20, 4)},
		{Kind: KindRspRmtData},
		{Kind: KindRspLocData, Region: geom.R(5, 5, 6, 6), Vals: []int32{0, 0, 1, 0}},
		{Kind: KindDone, Seq: 2},
		{Kind: KindContinue, Seq: 7},
		{Kind: KindReqWire},
		{Kind: KindWireGrant, Seq: 321},
		{Kind: KindSendRmtWire, Region: geom.R(4, 1, 9, 1), Seq: WireFlagRipUp},
		{Kind: KindPassTask, Region: geom.Rect{X0: 9, Y0: 2, X1: 3, Y1: 1}, Seq: mustPackTask(f, 17, 3)},
		{Kind: KindSegDone, Seq: mustPackTask(f, 99, 15)},
	}
	for _, m := range seeds {
		buf, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%+v)", err, m)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, out)
		}
	})
}

func mustPackTask(f *testing.F, wire, initiator int) uint16 {
	seq, err := PackTask(wire, initiator)
	if err != nil {
		f.Fatal(err)
	}
	return seq
}

// FuzzPackTask checks the task Seq packing is a bijection over its
// domain.
func FuzzPackTask(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(0xffff))
	f.Add(mustPackTask(f, 4095, 15))
	f.Fuzz(func(t *testing.T, seq uint16) {
		wire, init := UnpackTask(seq)
		if wire < 0 || wire > 4095 || init < 0 || init > 15 {
			t.Fatalf("unpacked out of domain: wire=%d init=%d", wire, init)
		}
		packed, err := PackTask(wire, init)
		if err != nil {
			t.Fatalf("unpacked values rejected by PackTask: %v", err)
		}
		if packed != seq {
			t.Fatalf("pack/unpack not bijective for %d", seq)
		}
	})
}

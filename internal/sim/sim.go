// Package sim is a deterministic discrete-event simulation kernel with a
// process model: simulated processors run as goroutines that cooperate
// with the kernel, so node code reads sequentially (block on a receive,
// advance simulated time for computation) while the kernel keeps a single
// global virtual clock.
//
// Exactly one goroutine — the kernel or one process — runs at any moment;
// the baton is passed over unbuffered channels. Ties in the event queue
// are broken by schedule order, so a simulation is a pure function of its
// inputs. This package plays the role CBS played for the paper: the
// substrate on which the message passing LocusRoute executes.
//
// # Hot path
//
// The kernel dispatches one event per Wait, per channel wake, and per
// scheduled callback, so event dispatch dominates a routing simulation's
// wall clock. Three structural choices keep it cheap:
//
//   - events are pooled on a free list, and process resumes are a
//     dedicated event flavour (a *Process field instead of a closure), so
//     the steady state allocates nothing per event;
//   - events scheduled for the current instant bypass the time-ordered
//     heap into a FIFO: a new event always carries a larger seq than
//     everything already queued, so within the current instant append
//     order is exactly (time, seq) order and a plain list preserves the
//     heap's semantics at O(1) — this is the channel-wake fast path;
//   - Chan.Send wakes exactly one blocked receiver per item instead of
//     all of them, removing the O(waiters) spurious wake/re-park baton
//     round trips per item that a wake-all loop costs.
package sim

import (
	"fmt"

	"locusroute/internal/tracev"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time in seconds with nanosecond precision trimmed to
// microseconds, which is the resolution the experiments report.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback or process resume. proc-events resume
// the process directly, avoiding a closure allocation per Wait; next
// links events on the kernel's immediate FIFO and free list.
type event struct {
	at   Time
	seq  uint64 // tie-break: schedule order
	fn   func()
	proc *Process
	next *event
}

// before reports whether e runs before f: earlier time, or same time and
// scheduled earlier.
func (e *event) before(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// replaces container/heap to keep push/pop free of interface conversions
// on the kernel's hottest path.
type eventHeap []*event

func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() *event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q[l].before(q[least]) {
			least = l
		}
		if r < n && q[r].before(q[least]) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}

// Kernel is the simulation engine. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventHeap

	// immHead/immTail are the FIFO of events scheduled for the current
	// instant: each was appended with a seq larger than every event
	// already queued, so list order is (time, seq) order.
	immHead, immTail *event

	free *event // recycled events

	yield  chan struct{} // a running process signals it has blocked/finished
	procs  []*Process
	closed bool

	tracer *tracev.Tracer // nil: tracing disabled
}

// NewKernel returns an empty simulation.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer attaches an event tracer (nil detaches). The kernel counts
// event dispatches on it and channels record block/wake instants; a nil
// tracer costs one pointer test per site.
func (k *Kernel) SetTracer(tr *tracev.Tracer) { k.tracer = tr }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (k *Kernel) Tracer() *tracev.Tracer { return k.tracer }

// newEvent takes an event off the free list (or allocates) and stamps it.
func (k *Kernel) newEvent(at Time, fn func(), proc *Process) *event {
	e := k.free
	if e != nil {
		k.free = e.next
		e.next = nil
	} else {
		e = &event{}
	}
	k.seq++
	e.at, e.seq, e.fn, e.proc = at, k.seq, fn, proc
	return e
}

// release returns an executed event to the free list.
func (k *Kernel) release(e *event) {
	e.fn, e.proc = nil, nil
	e.next = k.free
	k.free = e
}

// schedule enqueues an event at time t (clamped to now). Events for the
// current instant go to the FIFO; future events go to the heap.
func (k *Kernel) schedule(t Time, fn func(), proc *Process) {
	if k.closed {
		return
	}
	if t <= k.now {
		e := k.newEvent(k.now, fn, proc)
		if k.immTail != nil {
			k.immTail.next = e
		} else {
			k.immHead = e
		}
		k.immTail = e
		return
	}
	k.queue.push(k.newEvent(t, fn, proc))
}

// At schedules fn to run in kernel context at time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, fn, nil) }

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// next pops the globally earliest event by (time, seq), or nil when both
// queues are empty. A FIFO event runs before the heap top unless the heap
// top is strictly earlier — possible only for same-time events pushed to
// the heap before time advanced onto them, which carry smaller seqs.
func (k *Kernel) next() *event {
	if k.immHead != nil {
		if len(k.queue) > 0 && k.queue[0].before(k.immHead) {
			return k.queue.pop()
		}
		e := k.immHead
		k.immHead = e.next
		if k.immHead == nil {
			k.immTail = nil
		}
		e.next = nil
		return e
	}
	if len(k.queue) > 0 {
		return k.queue.pop()
	}
	return nil
}

// killed is the panic sentinel used to unwind parked processes at
// shutdown.
type killed struct{}

// Process is a simulated thread of control. Its methods must only be
// called from within the process's own body function.
type Process struct {
	Name string
	// Track is the trace track the process's events land on; runtimes
	// that trace set it to their node id. Defaults to tracev.TrackKernel.
	Track    int32
	kernel   *Kernel
	resume   chan struct{}
	dead     bool
	panicked any // non-nil: the process body panicked with this value
}

// Spawn starts a new process whose body runs fn. The process begins
// parked; it first runs when the kernel reaches its start event (time
// Now). Spawn may be called before Run or from within a running process.
func (k *Kernel) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{Name: name, Track: tracev.TrackKernel, kernel: k, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			p.dead = true
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					// A real panic from node code: hand it to the kernel
					// goroutine, which re-panics in Run's context.
					p.panicked = r
				}
			}
			k.yield <- struct{}{}
		}()
		<-p.resume // wait for the start event
		fn(p)
	}()
	k.schedule(k.now, nil, p)
	return p
}

// runProcess hands the baton to p and waits until it parks again or
// finishes.
func (k *Kernel) runProcess(p *Process) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-k.yield
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, p.panicked))
	}
}

// Run processes events until the queue is empty, then returns the final
// simulated time. Processes still parked when the queue drains are
// considered blocked forever; Run unwinds them (their deferred functions
// run) and returns. The kernel cannot be reused after Run.
func (k *Kernel) Run() Time {
	for {
		e := k.next()
		if e == nil {
			break
		}
		k.tracer.CountDispatch()
		k.now = e.at
		if p := e.proc; p != nil {
			k.release(e)
			k.runProcess(p)
		} else {
			fn := e.fn
			k.release(e)
			fn()
		}
	}
	k.closed = true
	// Unwind any parked processes so goroutines are not leaked.
	for _, p := range k.procs {
		if !p.dead {
			p.kill()
		}
	}
	return k.now
}

// kill resumes a parked process in a mode that makes park panic with the
// killed sentinel, unwinding the process body.
func (p *Process) kill() {
	p.dead = true
	p.resume <- struct{}{}
	<-p.kernel.yield
}

// park blocks the process until the kernel resumes it. It must be called
// with a wake event already scheduled (or a waiter registration made);
// parking with no way to wake is a deadlock, which Run resolves by
// unwinding the process when the event queue drains.
func (p *Process) park() {
	p.kernel.yield <- struct{}{}
	<-p.resume
	if p.dead {
		panic(killed{})
	}
}

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.kernel.now }

// Wait advances the process's simulated time by d — the primitive that
// models computation taking time. Non-positive d returns immediately.
func (p *Process) Wait(d Time) {
	if d <= 0 {
		return
	}
	k := p.kernel
	k.schedule(k.now+d, nil, p)
	p.park()
}

// Kernel returns the kernel the process runs on, for scheduling events or
// constructing channels from within process code.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Chan is a simulated unbounded FIFO channel. Sends never block and take
// no simulated time (transport delay is modelled by scheduling the Send
// with Kernel.At); receives block the calling process until an item is
// available.
type Chan struct {
	kernel  *Kernel
	items   []any
	waiters []*Process

	// OnDequeue, when set, observes the queue depth at every successful
	// dequeue (Recv or TryRecv), counting the item being taken. It runs
	// before the item is removed and must not touch the channel.
	OnDequeue func(depth int)
}

// NewChan returns an empty channel on k.
func NewChan(k *Kernel) *Chan { return &Chan{kernel: k} }

// Len returns the number of queued items.
func (c *Chan) Len() int { return len(c.items) }

// Send enqueues item and, when receivers are blocked, wakes exactly one —
// the longest-waiting. One item can satisfy only one Recv, so waking the
// rest would buy nothing but a spurious wake/re-park round trip each;
// FIFO wake order keeps delivery deterministic and matches the order the
// wake-all loop delivered in. Send may be called from process context or
// from a kernel event. Recv still re-checks after waking (TryRecv can
// drain the item first), so the one-wake policy cannot lose items.
func (c *Chan) Send(item any) {
	c.items = append(c.items, item)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		// Wake via an event so the currently running process keeps the
		// baton until it parks.
		c.kernel.schedule(c.kernel.now, nil, w)
	}
}

// Recv blocks p until an item is available, then dequeues and returns it.
// Wakeups may be spurious (another receiver took the item first); Recv
// re-checks and re-parks.
func (c *Chan) Recv(p *Process) any {
	for len(c.items) == 0 {
		if tr := c.kernel.tracer; tr != nil {
			tr.Instant(p.Track, int64(c.kernel.now), tracev.KindChanBlock, 0)
		}
		c.waiters = append(c.waiters, p)
		p.park()
		if tr := c.kernel.tracer; tr != nil {
			tr.Instant(p.Track, int64(c.kernel.now), tracev.KindChanWake, int64(len(c.items)))
		}
	}
	if c.OnDequeue != nil {
		c.OnDequeue(len(c.items))
	}
	item := c.items[0]
	c.items = c.items[1:]
	return item
}

// TryRecv dequeues an item if one is available, without blocking.
func (c *Chan) TryRecv() (any, bool) {
	if len(c.items) == 0 {
		return nil, false
	}
	if c.OnDequeue != nil {
		c.OnDequeue(len(c.items))
	}
	item := c.items[0]
	c.items = c.items[1:]
	return item, true
}

// Package sim is a deterministic discrete-event simulation kernel with a
// process model: simulated processors run as goroutines that cooperate
// with the kernel, so node code reads sequentially (block on a receive,
// advance simulated time for computation) while the kernel keeps a single
// global virtual clock.
//
// Exactly one goroutine — the kernel or one process — runs at any moment;
// the baton is passed over unbuffered channels. Ties in the event queue
// are broken by schedule order, so a simulation is a pure function of its
// inputs. This package plays the role CBS played for the paper: the
// substrate on which the message passing LocusRoute executes.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time in seconds with nanosecond precision trimmed to
// microseconds, which is the resolution the experiments report.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: schedule order
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is the simulation engine. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventQueue
	yield  chan struct{} // a running process signals it has blocked/finished
	procs  []*Process
	closed bool
}

// NewKernel returns an empty simulation.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if k.closed {
		return
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// killed is the panic sentinel used to unwind parked processes at
// shutdown.
type killed struct{}

// Process is a simulated thread of control. Its methods must only be
// called from within the process's own body function.
type Process struct {
	Name     string
	kernel   *Kernel
	resume   chan struct{}
	dead     bool
	panicked any // non-nil: the process body panicked with this value
}

// Spawn starts a new process whose body runs fn. The process begins
// parked; it first runs when the kernel reaches its start event (time
// Now). Spawn may be called before Run or from within a running process.
func (k *Kernel) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{Name: name, kernel: k, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			p.dead = true
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					// A real panic from node code: hand it to the kernel
					// goroutine, which re-panics in Run's context.
					p.panicked = r
				}
			}
			k.yield <- struct{}{}
		}()
		<-p.resume // wait for the start event
		fn(p)
	}()
	k.At(k.now, func() { k.runProcess(p) })
	return p
}

// runProcess hands the baton to p and waits until it parks again or
// finishes.
func (k *Kernel) runProcess(p *Process) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-k.yield
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, p.panicked))
	}
}

// Run processes events until the queue is empty, then returns the final
// simulated time. Processes still parked when the queue drains are
// considered blocked forever; Run unwinds them (their deferred functions
// run) and returns. The kernel cannot be reused after Run.
func (k *Kernel) Run() Time {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		e.fn()
	}
	k.closed = true
	// Unwind any parked processes so goroutines are not leaked.
	for _, p := range k.procs {
		if !p.dead {
			p.kill()
		}
	}
	return k.now
}

// kill resumes a parked process in a mode that makes park panic with the
// killed sentinel, unwinding the process body.
func (p *Process) kill() {
	p.dead = true
	p.resume <- struct{}{}
	<-p.kernel.yield
}

// park blocks the process until the kernel resumes it. It must be called
// with a wake event already scheduled (or a waiter registration made);
// parking with no way to wake is a deadlock, which Run resolves by
// unwinding the process when the event queue drains.
func (p *Process) park() {
	p.kernel.yield <- struct{}{}
	<-p.resume
	if p.dead {
		panic(killed{})
	}
}

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.kernel.now }

// Wait advances the process's simulated time by d — the primitive that
// models computation taking time. Non-positive d returns immediately.
func (p *Process) Wait(d Time) {
	if d <= 0 {
		return
	}
	k := p.kernel
	k.At(k.now+d, func() { k.runProcess(p) })
	p.park()
}

// Kernel returns the kernel the process runs on, for scheduling events or
// constructing channels from within process code.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Chan is a simulated unbounded FIFO channel. Sends never block and take
// no simulated time (transport delay is modelled by scheduling the Send
// with Kernel.At); receives block the calling process until an item is
// available.
type Chan struct {
	kernel  *Kernel
	items   []any
	waiters []*Process

	// OnDequeue, when set, observes the queue depth at every successful
	// dequeue (Recv or TryRecv), counting the item being taken. It runs
	// before the item is removed and must not touch the channel.
	OnDequeue func(depth int)
}

// NewChan returns an empty channel on k.
func NewChan(k *Kernel) *Chan { return &Chan{kernel: k} }

// Len returns the number of queued items.
func (c *Chan) Len() int { return len(c.items) }

// Send enqueues item and wakes any blocked receivers. It may be called
// from process context or from a kernel event.
func (c *Chan) Send(item any) {
	c.items = append(c.items, item)
	if len(c.waiters) > 0 {
		ws := c.waiters
		c.waiters = nil
		for _, w := range ws {
			w := w
			// Wake via an event so the currently running process keeps
			// the baton until it parks.
			c.kernel.At(c.kernel.now, func() { c.kernel.runProcess(w) })
		}
	}
}

// Recv blocks p until an item is available, then dequeues and returns it.
// Wakeups may be spurious (another receiver took the item first); Recv
// re-checks and re-parks.
func (c *Chan) Recv(p *Process) any {
	for len(c.items) == 0 {
		c.waiters = append(c.waiters, p)
		p.park()
	}
	if c.OnDequeue != nil {
		c.OnDequeue(len(c.items))
	}
	item := c.items[0]
	c.items = c.items[1:]
	return item
}

// TryRecv dequeues an item if one is available, without blocking.
func (c *Chan) TryRecv() (any, bool) {
	if len(c.items) == 0 {
		return nil, false
	}
	if c.OnDequeue != nil {
		c.OnDequeue(len(c.items))
	}
	item := c.items[0]
	c.items = c.items[1:]
	return item, true
}

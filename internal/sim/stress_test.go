package sim

import "testing"

// TestManyProcessesDeterministic stresses the kernel with 50 processes
// passing tokens through a chain of channels; the result must be exactly
// reproducible.
func TestManyProcessesDeterministic(t *testing.T) {
	run := func() (Time, int) {
		k := NewKernel()
		const n = 50
		chans := make([]*Chan, n)
		for i := range chans {
			chans[i] = NewChan(k)
		}
		delivered := 0
		for i := 0; i < n; i++ {
			i := i
			k.Spawn("hop", func(p *Process) {
				for {
					v := chans[i].Recv(p).(int)
					p.Wait(Time(10 + i))
					if v <= 0 {
						continue // token exhausted; keep serving others
					}
					delivered++
					chans[(i+1)%n].Send(v - 1)
				}
			})
		}
		// Inject three tokens and enough stop markers.
		k.At(1, func() { chans[0].Send(200) })
		k.At(2, func() { chans[10].Send(150) })
		k.At(3, func() { chans[20].Send(100) })
		end := k.Run()
		return end, delivered
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("stress run not deterministic: (%v,%d) vs (%v,%d)", e1, d1, e2, d2)
	}
	if d1 != 200+150+100 {
		t.Errorf("delivered = %d, want 450", d1)
	}
}

// TestEventStorm pushes a large number of events through the queue.
func TestEventStorm(t *testing.T) {
	k := NewKernel()
	var count int
	const n = 100000
	for i := 0; i < n; i++ {
		k.At(Time(i%977), func() { count++ })
	}
	end := k.Run()
	if count != n {
		t.Errorf("ran %d events, want %d", count, n)
	}
	if end != 976 {
		t.Errorf("end = %v, want 976", end)
	}
}

// TestChainedWaits verifies long sequential Wait chains advance time
// exactly.
func TestChainedWaits(t *testing.T) {
	k := NewKernel()
	var final Time
	k.Spawn("w", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Wait(3)
		}
		final = p.Now()
	})
	k.Run()
	if final != 3000 {
		t.Errorf("final = %v, want 3000", final)
	}
}

// TestInterleavedSendRecvNoLoss pushes many items through one channel
// from several producers to several consumers.
func TestInterleavedSendRecvNoLoss(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	const producers, items = 5, 40
	received := 0
	for c := 0; c < 3; c++ {
		k.Spawn("consumer", func(p *Process) {
			for {
				v := ch.Recv(p)
				if v.(int) < 0 {
					return
				}
				received++
				p.Wait(7)
			}
		})
	}
	for pr := 0; pr < producers; pr++ {
		pr := pr
		k.Spawn("producer", func(p *Process) {
			for i := 0; i < items; i++ {
				p.Wait(Time(5 + pr))
				ch.Send(i)
			}
		})
	}
	// Poison pills after the producers are done.
	k.At(100000, func() {
		for c := 0; c < 3; c++ {
			ch.Send(-1)
		}
	})
	k.Run()
	if received != producers*items {
		t.Errorf("received %d, want %d", received, producers*items)
	}
}

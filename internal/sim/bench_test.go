package sim

import "testing"

// BenchmarkKernelEvents measures raw event throughput through the
// kernel's queue: a set of processes advancing simulated time in short
// steps, which is the dominant operation of a DES routing run (every
// compute charge, packet copy, and wire phase is one Wait). The
// per-iteration unit is one processed event.
func BenchmarkKernelEvents(b *testing.B) {
	const procs = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := NewKernel()
		steps := 1000
		for pn := 0; pn < procs; pn++ {
			pn := pn
			k.Spawn("p", func(p *Process) {
				for s := 0; s < steps; s++ {
					p.Wait(Time(1 + (s+pn)%7))
				}
			})
		}
		b.StartTimer()
		k.Run()
	}
	b.ReportMetric(float64(16*1000), "events/op")
}

// BenchmarkChanSendRecv measures the channel hot path: one producer
// feeding one consumer through a simulated channel, the shape of every
// mesh inbox in the message passing runtime.
func BenchmarkChanSendRecv(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := NewKernel()
		ch := NewChan(k)
		const items = 2000
		k.Spawn("recv", func(p *Process) {
			for j := 0; j < items; j++ {
				ch.Recv(p)
			}
		})
		k.Spawn("send", func(p *Process) {
			for j := 0; j < items; j++ {
				p.Wait(3)
				ch.Send(j)
			}
		})
		b.StartTimer()
		k.Run()
	}
	b.ReportMetric(2000, "items/op")
}

// BenchmarkChanManyReceivers measures a contended channel: many blocked
// receivers served by one producer. Before wake-one semantics, every
// Send woke every waiter (O(waiters) spurious re-parks per item); this
// benchmark is the regression guard for that storm.
func BenchmarkChanManyReceivers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := NewKernel()
		ch := NewChan(k)
		const receivers, items = 32, 1000
		for r := 0; r < receivers; r++ {
			k.Spawn("recv", func(p *Process) {
				for {
					if v := ch.Recv(p); v.(int) < 0 {
						return
					}
					p.Wait(5)
				}
			})
		}
		k.Spawn("send", func(p *Process) {
			for j := 0; j < items; j++ {
				p.Wait(1)
				ch.Send(j)
			}
			for r := 0; r < receivers; r++ {
				ch.Send(-1)
			}
		})
		b.StartTimer()
		k.Run()
	}
	b.ReportMetric(1000, "items/op")
}

package sim

import (
	"testing"
)

func TestKernelAtOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(20, func() { order = append(order, 2) })
	k.At(10, func() { order = append(order, 1) })
	k.At(30, func() { order = append(order, 3) })
	end := k.Run()
	if end != 30 {
		t.Errorf("end time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestKernelTieBreakBySchedule(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(5, func() { order = append(order, 1) })
	k.At(5, func() { order = append(order, 2) })
	k.At(5, func() { order = append(order, 3) })
	k.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("same-time events must run in schedule order: %v", order)
		}
	}
}

func TestKernelPastEventClamped(t *testing.T) {
	k := NewKernel()
	var when Time
	k.At(100, func() {
		k.At(50, func() { when = k.Now() }) // in the past: clamp to now
	})
	k.Run()
	if when != 100 {
		t.Errorf("past event ran at %v, want clamped to 100", when)
	}
}

func TestProcessWaitAdvancesTime(t *testing.T) {
	k := NewKernel()
	var t1, t2 Time
	k.Spawn("p", func(p *Process) {
		t1 = p.Now()
		p.Wait(5 * Microsecond)
		t2 = p.Now()
		p.Wait(0)  // no-op
		p.Wait(-3) // no-op
		if p.Now() != t2 {
			t.Errorf("non-positive Wait must not advance time")
		}
	})
	k.Run()
	if t1 != 0 || t2 != 5*Microsecond {
		t.Errorf("t1=%v t2=%v", t1, t2)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Wait(10)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Wait(15)
				log = append(log, "b")
			}
		})
		k.Run()
		return log
	}
	first := run()
	want := []string{"a", "b", "a", "a", "b", "b"} // 10,15,20,30,30(a before? a at30 scheduled earlier) ...
	_ = want
	for trial := 0; trial < 20; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, first, again)
			}
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	var got []int
	k.Spawn("recv", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p).(int))
		}
	})
	k.Spawn("send", func(p *Process) {
		for i := 1; i <= 3; i++ {
			p.Wait(10)
			ch.Send(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	var recvAt Time
	k.Spawn("recv", func(p *Process) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	k.At(42, func() { ch.Send("x") })
	k.Run()
	if recvAt != 42 {
		t.Errorf("receive completed at %v, want 42", recvAt)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	if _, ok := ch.TryRecv(); ok {
		t.Errorf("TryRecv on empty chan must fail")
	}
	ch.Send(7)
	if v, ok := ch.TryRecv(); !ok || v.(int) != 7 {
		t.Errorf("TryRecv = %v %v", v, ok)
	}
	if ch.Len() != 0 {
		t.Errorf("Len = %d after drain", ch.Len())
	}
}

func TestChanMultipleWaiters(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	var got []string
	mk := func(name string) {
		k.Spawn(name, func(p *Process) {
			v := ch.Recv(p)
			got = append(got, name+":"+v.(string))
		})
	}
	mk("r1")
	mk("r2")
	k.At(5, func() { ch.Send("a") })
	k.At(6, func() { ch.Send("b") })
	k.Run()
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// Spurious wakeups are allowed but every item must be delivered
	// exactly once.
	seen := map[string]bool{}
	for _, g := range got {
		seen[g[3:]] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("items lost: %v", got)
	}
}

func TestBlockedProcessUnwoundAtEnd(t *testing.T) {
	k := NewKernel()
	ch := NewChan(k)
	cleaned := false
	k.Spawn("stuck", func(p *Process) {
		defer func() { cleaned = true }()
		ch.Recv(p) // never satisfied
		t.Errorf("stuck process must not continue past Recv")
	})
	end := k.Run()
	if end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
	if !cleaned {
		t.Errorf("blocked process deferred cleanup must run at shutdown")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childRan bool
	k.Spawn("parent", func(p *Process) {
		p.Wait(10)
		p.Kernel().Spawn("child", func(c *Process) {
			c.Wait(5)
			childRan = true
		})
		p.Wait(20)
	})
	end := k.Run()
	if !childRan {
		t.Errorf("child process did not run")
	}
	if end != 30 {
		t.Errorf("end = %v, want 30", end)
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("String = %q", got)
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("Seconds = %f", s)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("node panic must propagate out of Run")
		}
	}()
	k := NewKernel()
	k.Spawn("bad", func(p *Process) {
		panic("real bug in node code")
	})
	k.Run()
}

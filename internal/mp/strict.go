package mp

import (
	"fmt"

	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/mesh"
	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/route"
	"locusroute/internal/sim"
	"locusroute/internal/tracev"
)

// Strict region ownership is the first cost array distribution the paper
// describes and rejects (Section 4.1): the array is divided into
// portions, each processor performs ALL routing within its own portion,
// and a routing task that extends into another region is passed to that
// region's owner. There is no replication and therefore no update
// traffic at all — every region is always consistent — but the paper
// predicts (and this implementation measures) two costs: load imbalance
// when many wires lie in one region, and task-passing message traffic
// because most wires span several regions and routing decisions become
// per-region greedy rather than globally minimal.
//
// A task carries (current cell, final target cell, wire, initiator). The
// owner of the current cell routes from it to the target clamped into
// its region — a region is rectangular, so the candidate routes between
// two in-region points stay inside it — then either reports completion
// to the initiator or steps one cell across the boundary toward the
// target and passes the task on.

// strictNode is one processor of the strict-ownership scheme.
type strictNode struct {
	id int
	r  *runner
	p  *sim.Process

	region  geom.Rect
	arr     *costarray.CostArray // authoritative for my region only
	wires   []int                // wires I initiate (leftmost pin in my region)
	scratch *route.Scratch       // reusable routing kernel state

	subPaths    map[int][]route.Path // my committed sub-paths per wire
	outstanding int                  // my initiated segments still routing somewhere

	dones, continues int

	// clock and inBarrier: observability time breakdown, as in node.
	clock     *obs.NodeClock
	inBarrier bool

	// tr and track: event tracing, as in node.
	tr    *tracev.Tracer
	track int32
}

func newStrictNode(id int, r *runner) *strictNode {
	return &strictNode{
		id:       id,
		r:        r,
		region:   r.part.Region(id),
		arr:      costarray.New(r.circ.Grid),
		wires:    r.asn.WiresOf(id),
		scratch:  route.NewScratch(r.circ.Grid),
		subPaths: make(map[int][]route.Path),
		clock:    r.cfg.Obs.NodeClock(id),
		tr:       r.cfg.Trace,
		track:    int32(id),
	}
}

// account stamps the interval ending now to cat on the obs clock and the
// trace, as node.account does.
func (n *strictNode) account(cat obs.TimeCategory) {
	now := n.p.Now()
	n.clock.Account(now, cat)
	n.tr.Account(n.track, int64(now), traceCat(cat))
}

// packTask encodes a task Seq; Config.Validate has already capped strict
// runs at the encoding's wire and processor limits, so failure here is a
// programming error.
func packTask(wire, initiator int) uint16 {
	seq, err := msg.PackTask(wire, initiator)
	if err != nil {
		panic(fmt.Sprintf("mp: %v", err))
	}
	return seq
}

// strictRouterParams restricts candidate routes to the region: both
// endpoints are inside the (rectangular) region and no detour channels
// are allowed, so every candidate stays inside.
func strictRouterParams(base route.Params) route.Params {
	base.Iterations = 1
	base.VHVDetourChannels = 0
	return base
}

func (n *strictNode) run(p *sim.Process) {
	n.p = p
	p.Track = n.track
	for iter := 0; iter < n.r.cfg.Router.Iterations; iter++ {
		n.tr.Begin(n.track, int64(p.Now()), tracev.KindIteration, int64(iter))
		if iter > 0 {
			n.ripAll()
		}
		for _, wi := range n.wires {
			n.drain()
			n.launchWire(wi)
		}
		if n.outstanding > 0 {
			n.tr.Begin(n.track, int64(p.Now()), tracev.KindBlocked, int64(n.outstanding))
			for n.outstanding > 0 {
				n.recvOne()
			}
			n.tr.End(n.track, int64(p.Now()), tracev.KindBlocked, 0)
		}
		n.barrier(iter)
		n.tr.End(n.track, int64(p.Now()), tracev.KindIteration, int64(iter))
	}
	n.r.finish[n.id] = p.Now()
}

// ripAll removes every sub-path this node committed in the previous
// iteration — the strict scheme's rip-up phase needs no messages because
// each region rips its own cells.
func (n *strictNode) ripAll() {
	view := route.ArrayView{A: n.arr}
	cells := 0
	for wi, paths := range n.subPaths {
		for _, path := range paths {
			route.RipUp(view, path)
			for _, c := range path.Cells {
				n.r.truth.Add(c.X, c.Y, -1)
			}
			cells += path.Len()
		}
		delete(n.subPaths, wi)
	}
	n.p.Wait(n.r.cfg.Perf.WriteTime(cells))
	n.account(obs.TimeCompute)
}

// launchWire decomposes a wire into two-pin segments and starts a task
// for each; segments beginning in other regions are passed immediately.
// The sorted pin order comes from the scratch's per-run cache.
func (n *strictNode) launchWire(wi int) {
	pins := n.scratch.SortedPins(&n.r.circ.Wires[wi])
	for i := 0; i+1 < len(pins); i++ {
		n.outstanding++
		n.dispatch(pins[i], pins[i+1], wi, n.id)
	}
}

// dispatch routes a task locally if the current cell is ours, or passes
// it to the owner.
func (n *strictNode) dispatch(cur, tgt geom.Point, wi, initiator int) {
	if owner := n.r.part.Owner(cur); owner != n.id {
		n.send(owner, &msg.Message{
			Kind:   msg.KindPassTask,
			Region: geom.Rect{X0: cur.X, Y0: cur.Y, X1: tgt.X, Y1: tgt.Y},
			Seq:    packTask(wi, initiator),
		})
		return
	}
	n.processTask(cur, tgt, wi, initiator)
}

// processTask routes from cur to the target clamped into this region,
// then completes or hands off.
func (n *strictNode) processTask(cur, tgt geom.Point, wi, initiator int) {
	clamped := clampInto(n.region, tgt)

	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindRouteWire, int64(wi))
	ev := n.scratch.RoutePair(route.ArrayView{A: n.arr}, cur, clamped, strictRouterParams(n.r.cfg.Router))
	n.p.Wait(n.r.cfg.Perf.WireOverhead + n.r.cfg.Perf.EvalTime(ev.CellsExamined))
	n.account(obs.TimeCompute)
	var trueCost int64
	for _, c := range ev.Path.Cells {
		trueCost += int64(n.r.truth.At(c.X, c.Y))
	}
	route.Commit(route.ArrayView{A: n.arr}, ev.Path)
	for _, c := range ev.Path.Cells {
		n.r.truth.Add(c.X, c.Y, 1)
	}
	n.p.Wait(n.r.cfg.Perf.WriteTime(ev.Path.Len()))
	n.account(obs.TimeCompute)
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindRouteWire, int64(wi))
	n.subPaths[wi] = append(n.subPaths[wi], ev.Path)
	n.r.lastCost[wi] += trueCost
	n.r.cells += int64(ev.CellsExamined)

	if clamped == tgt {
		n.completeSegment(wi, initiator)
		return
	}
	next := stepToward(clamped, tgt)
	n.dispatch(next, tgt, wi, initiator)
}

// completeSegment notifies the initiator (possibly ourselves).
func (n *strictNode) completeSegment(wi, initiator int) {
	if initiator == n.id {
		n.outstanding--
		return
	}
	n.send(initiator, &msg.Message{Kind: msg.KindSegDone, Seq: packTask(wi, initiator)})
}

// clampInto moves p to the nearest point inside the rectangle.
func clampInto(r geom.Rect, p geom.Point) geom.Point {
	if p.X < r.X0 {
		p.X = r.X0
	}
	if p.X >= r.X1 {
		p.X = r.X1 - 1
	}
	if p.Y < r.Y0 {
		p.Y = r.Y0
	}
	if p.Y >= r.Y1 {
		p.Y = r.Y1 - 1
	}
	return p
}

// stepToward moves one cell from p toward tgt, preferring the horizontal
// dimension; p != tgt is required.
func stepToward(p, tgt geom.Point) geom.Point {
	switch {
	case p.X < tgt.X:
		p.X++
	case p.X > tgt.X:
		p.X--
	case p.Y < tgt.Y:
		p.Y++
	case p.Y > tgt.Y:
		p.Y--
	}
	return p
}

func (n *strictNode) drain() {
	inbox := n.r.net.Inbox(n.id)
	for {
		item, ok := inbox.TryRecv()
		if !ok {
			return
		}
		n.handle(item.(*mesh.Packet))
	}
}

func (n *strictNode) recvOne() {
	item := n.r.net.Inbox(n.id).Recv(n.p)
	cat := obs.TimeBlocked
	if n.inBarrier {
		cat = obs.TimeBarrier
	}
	n.account(cat)
	n.handle(item.(*mesh.Packet))
}

func (n *strictNode) send(to int, m *msg.Message) {
	buf, err := m.Encode()
	if err != nil {
		panic(fmt.Sprintf("mp: strict node %d encoding %v: %v", n.id, m.Kind, err))
	}
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindSendPacket, int64(m.Kind))
	n.p.Wait(n.r.cfg.Perf.CopyTime(len(buf)))
	n.r.bytesByKind[m.Kind] += int64(len(buf))
	n.r.packetsByKind[m.Kind]++
	n.r.net.Send(n.p, n.id, to, buf, len(buf))
	n.account(obs.TimePacket)
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindSendPacket, int64(m.Kind))
}

func (n *strictNode) handle(pkt *mesh.Packet) {
	n.tr.FlowEnd(n.track, int64(n.p.Now()), pkt.Flow, int64(pkt.Size))
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindHandlePacket, int64(pkt.Size))
	n.r.net.ChargeReceive(n.p)
	buf := pkt.Payload.([]byte)
	n.p.Wait(n.r.cfg.Perf.CopyTime(len(buf)))
	n.account(obs.TimePacket)
	m, err := msg.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("mp: strict node %d decoding: %v", n.id, err))
	}
	switch m.Kind {
	case msg.KindDone:
		n.dones++
	case msg.KindContinue:
		n.continues++
	case msg.KindPassTask:
		wi, initiator := msg.UnpackTask(m.Seq)
		cur := geom.Pt(m.Region.X0, m.Region.Y0)
		tgt := geom.Pt(m.Region.X1, m.Region.Y1)
		n.processTask(cur, tgt, wi, initiator)
	case msg.KindSegDone:
		n.outstanding--
	default:
		panic(fmt.Sprintf("mp: strict node %d: unexpected kind %v", n.id, m.Kind))
	}
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindHandlePacket, int64(pkt.Size))
}

// barrier mirrors the Proto runtime's barrier; node 0 additionally zeros
// the per-wire occupancy accumulators for the next iteration.
func (n *strictNode) barrier(iter int) {
	n.inBarrier = true
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindBarrier, int64(iter))
	defer func() {
		n.inBarrier = false
		n.tr.End(n.track, int64(n.p.Now()), tracev.KindBarrier, int64(iter))
	}()
	if n.id == 0 {
		for n.dones < n.r.cfg.Procs-1 {
			n.recvOne()
		}
		n.dones = 0
		if iter+1 < n.r.cfg.Router.Iterations {
			for i := range n.r.lastCost {
				n.r.lastCost[i] = 0
			}
		}
		for proc := 1; proc < n.r.cfg.Procs; proc++ {
			n.send(proc, &msg.Message{Kind: msg.KindContinue, Seq: uint16(iter)})
		}
		return
	}
	n.send(0, &msg.Message{Kind: msg.KindDone, Seq: uint16(iter)})
	for n.continues <= iter {
		n.recvOne()
	}
}

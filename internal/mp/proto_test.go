package mp

import (
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/route"
)

// protoFixture builds a 2x2-processor protocol pair (ids 0 and 1 are mesh
// neighbours) over a small circuit with a shared ground truth.
type protoFixture struct {
	circ  *circuit.Circuit
	part  geom.Partition
	truth plainTruth
	ps    []*Proto
}

func newProtoFixture(t *testing.T, st Strategy) *protoFixture {
	t.Helper()
	c := smallCircuit(3)
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := &protoFixture{
		circ:  c,
		part:  part,
		truth: plainTruth{a: costarray.New(c.Grid)},
	}
	for id := 0; id < 4; id++ {
		p := NewProto(id, c, part, st, route.Params{Iterations: 2})
		p.SetTruth(f.truth)
		f.ps = append(f.ps, p)
	}
	return f
}

// deliver routes outbound messages to their target protos, collecting any
// cascaded responses until quiescence.
func (f *protoFixture) deliver(from int, outs []Outbound) {
	type env struct {
		from int
		out  Outbound
	}
	queue := make([]env, 0, len(outs))
	for _, o := range outs {
		queue = append(queue, env{from: from, out: o})
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		target := f.ps[e.out.To]
		for _, rsp := range target.Handle(e.from, e.out.Msg) {
			queue = append(queue, env{from: e.out.To, out: rsp})
		}
	}
}

// wireIn returns a wire index whose bounding box lies inside proc's
// region, or -1.
func (f *protoFixture) wireIn(proc int) int {
	region := f.part.Region(proc)
	for i := range f.circ.Wires {
		if region.ContainsRect(f.circ.Wires[i].Bounds()) {
			return i
		}
	}
	return -1
}

// wireCrossing returns a wire routed by `by` whose bounding box touches a
// region not owned by `by`, or -1.
func (f *protoFixture) wireCrossing(by int) int {
	for i := range f.circ.Wires {
		for _, owner := range f.part.RegionsTouching(f.circ.Wires[i].Bounds()) {
			if owner != by {
				return i
			}
		}
	}
	return -1
}

func TestProtoCommitUpdatesViewAndTruth(t *testing.T) {
	f := newProtoFixture(t, Strategy{})
	p := f.ps[0]
	stats := p.RouteWire(0, 0)
	if stats.CellsCommitted == 0 {
		t.Fatalf("no cells committed")
	}
	// Every committed cell is visible in the router's view and in the
	// ground truth.
	var viewSum, truthSum int64
	g := f.circ.Grid
	for y := 0; y < g.Channels; y++ {
		for x := 0; x < g.Grids; x++ {
			viewSum += int64(p.View().At(x, y))
			truthSum += int64(f.truth.At(x, y))
		}
	}
	if viewSum != int64(stats.CellsCommitted) || truthSum != viewSum {
		t.Errorf("view sum %d, truth sum %d, committed %d", viewSum, truthSum, stats.CellsCommitted)
	}
}

func TestProtoRipUpRestoresEmpty(t *testing.T) {
	f := newProtoFixture(t, Strategy{})
	p := f.ps[0]
	p.RouteWire(5, 0)
	ripped := p.RipUpWire(5, 1)
	if ripped == 0 {
		t.Fatalf("nothing ripped")
	}
	if p.View().NonZeroCells() != 0 || f.truth.a.NonZeroCells() != 0 {
		t.Errorf("rip-up must restore the empty array")
	}
}

func TestProtoSendRmtDataDeliversDeltasToOwner(t *testing.T) {
	f := newProtoFixture(t, SenderInitiated(1, 0))
	// Find a wire routed by 0 crossing another region.
	wi := f.wireCrossing(0)
	if wi < 0 {
		t.Skip("no crossing wire in this circuit")
	}
	p0 := f.ps[0]
	p0.RouteWire(wi, 0)
	outs := p0.AfterWire()
	if len(outs) == 0 {
		t.Fatalf("SendRmtData=1 must push deltas after one wire")
	}
	f.deliver(0, outs)
	// After delivery, every owner's view agrees with the truth on its
	// own region.
	for id, p := range f.ps {
		r := f.part.Region(id)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				if p.View().At(x, y) != f.truth.At(x, y) {
					t.Fatalf("owner %d cell (%d,%d): view %d truth %d",
						id, x, y, p.View().At(x, y), f.truth.At(x, y))
				}
			}
		}
	}
}

func TestProtoSendLocDataReachesNeighborsOnly(t *testing.T) {
	f := newProtoFixture(t, SenderInitiated(0, 1))
	wi := f.wireIn(0)
	if wi < 0 {
		t.Skip("no in-region wire")
	}
	p0 := f.ps[0]
	p0.RouteWire(wi, 0)
	outs := p0.AfterWire()
	if len(outs) == 0 {
		t.Fatalf("SendLocData=1 must broadcast after one wire")
	}
	neighbors := map[int]bool{}
	for _, nb := range f.part.Neighbors(0) {
		neighbors[nb] = true
	}
	for _, o := range outs {
		if o.Msg.Kind != msg.KindSendLocData {
			t.Errorf("unexpected kind %v", o.Msg.Kind)
		}
		if !neighbors[o.To] {
			t.Errorf("SendLocData sent to non-neighbor %d", o.To)
		}
	}
	// Second AfterWire without routing: nothing changed, nothing sent.
	if outs := p0.AfterWire(); len(outs) != 0 {
		t.Errorf("no changes must mean no broadcast, got %d packets", len(outs))
	}
}

func TestProtoReqRmtDataRequestResponse(t *testing.T) {
	f := newProtoFixture(t, ReceiverInitiated(0, 1, false))
	// Owner 1 routes a wire in its own region so it has data to serve.
	wi := f.wireIn(1)
	if wi < 0 {
		t.Skip("no in-region wire for processor 1")
	}
	f.ps[1].RouteWire(wi, 0)

	// Processor 0 notes an upcoming wire crossing region 1.
	cross := -1
	for i := range f.circ.Wires {
		for _, owner := range f.part.RegionsTouching(f.circ.Wires[i].Bounds()) {
			if owner == 1 {
				cross = i
			}
		}
	}
	if cross < 0 {
		t.Skip("no wire crossing region 1")
	}
	outs := f.ps[0].NoteUpcoming(cross)
	if len(outs) == 0 {
		t.Fatalf("ReqRmtData=1 must request on first touch")
	}
	if f.ps[0].Outstanding == 0 {
		t.Fatalf("outstanding must count pending responses")
	}
	f.deliver(0, outs)
	if f.ps[0].Outstanding != 0 {
		t.Errorf("responses must clear outstanding, still %d", f.ps[0].Outstanding)
	}
	// Processor 0's view of region 1 now matches the owner's.
	r1 := f.part.Region(1)
	for y := r1.Y0; y < r1.Y1; y++ {
		for x := r1.X0; x < r1.X1; x++ {
			if f.ps[0].View().At(x, y) != f.ps[1].View().At(x, y) {
				t.Fatalf("view divergence at (%d,%d) after response", x, y)
			}
		}
	}
}

func TestProtoSecondRequestGetsNoChange(t *testing.T) {
	f := newProtoFixture(t, ReceiverInitiated(0, 1, false))
	wi := f.wireIn(1)
	if wi < 0 {
		t.Skip("no in-region wire")
	}
	f.ps[1].RouteWire(wi, 0)
	// Two identical requests from 0: first carries data, second is a
	// header-only "no changes" response.
	rsp1 := f.ps[1].Handle(0, &msg.Message{Kind: msg.KindReqRmtData, Region: f.part.Region(1)})
	rsp2 := f.ps[1].Handle(0, &msg.Message{Kind: msg.KindReqRmtData, Region: f.part.Region(1)})
	if len(rsp1) == 0 || rsp1[0].Msg.Region.Empty() {
		t.Fatalf("first response must carry data")
	}
	if len(rsp2) == 0 || !rsp2[0].Msg.Region.Empty() {
		t.Errorf("second response must be a no-change header")
	}
}

func TestProtoReqLocDataPullsDeltasHome(t *testing.T) {
	f := newProtoFixture(t, ReceiverInitiated(1, 1, false))
	wi := f.wireCrossing(0)
	if wi < 0 {
		t.Skip("no crossing wire")
	}
	f.ps[0].RouteWire(wi, 0)
	// Owner of a crossed region asks 0 for its deltas.
	var owner int = -1
	for _, o := range f.part.RegionsTouching(f.circ.Wires[wi].Bounds()) {
		if o != 0 {
			owner = o
		}
	}
	if owner < 0 {
		t.Skip("no remote owner")
	}
	outs := f.ps[0].Handle(owner, &msg.Message{Kind: msg.KindReqLocData, Region: f.part.Region(owner)})
	if len(outs) != 1 || outs[0].Msg.Kind != msg.KindRspLocData {
		t.Fatalf("ReqLocData must produce one RspLocData, got %v", outs)
	}
	f.deliver(0, outs)
	// The owner's view of its region now matches the truth there.
	r := f.part.Region(owner)
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if f.ps[owner].View().At(x, y) != f.truth.At(x, y) {
				t.Fatalf("owner view diverges from truth at (%d,%d)", x, y)
			}
		}
	}
	// And 0's deltas for that region are cleared: a second pull is empty.
	outs = f.ps[0].Handle(owner, &msg.Message{Kind: msg.KindReqLocData, Region: f.part.Region(owner)})
	if !outs[0].Msg.Region.Empty() {
		t.Errorf("second pull must be empty (deltas already taken)")
	}
}

func TestProtoHandleRejectsBarrierKinds(t *testing.T) {
	f := newProtoFixture(t, Strategy{})
	defer func() {
		if recover() == nil {
			t.Errorf("barrier kinds must panic in Proto.Handle")
		}
	}()
	f.ps[0].Handle(1, &msg.Message{Kind: msg.KindDone})
}

func TestProtoScanWorkAccumulates(t *testing.T) {
	f := newProtoFixture(t, SenderInitiated(1, 1))
	wi := f.wireCrossing(0)
	if wi < 0 {
		t.Skip("no crossing wire")
	}
	f.ps[0].RouteWire(wi, 0)
	f.ps[0].AfterWire()
	if f.ps[0].TakeScanWork() == 0 {
		t.Errorf("update construction must report scan work")
	}
	if f.ps[0].TakeScanWork() != 0 {
		t.Errorf("TakeScanWork must reset")
	}
}

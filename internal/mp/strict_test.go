package mp

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
)

func runStrict(t *testing.T, procs int) Result {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(Strategy{})
	cfg.Procs = procs
	cfg.Router.Iterations = 2
	cfg.StrictOwnership = true
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, assign.ThresholdInfinity)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStrictCompletesAndRoutesEverything(t *testing.T) {
	res := runStrict(t, 4)
	if res.CircuitHeight <= 0 {
		t.Fatalf("strict run produced no routing: %+v", res)
	}
	if res.Occupancy <= 0 {
		t.Errorf("occupancy = %d", res.Occupancy)
	}
	// Cross-region tasks must have moved.
	if res.PacketsByKind[msg.KindPassTask] == 0 {
		t.Errorf("no tasks crossed region boundaries")
	}
	if res.PacketsByKind[msg.KindSegDone] == 0 {
		t.Errorf("no remote segment completions reported")
	}
}

func TestStrictHasNoUpdateKinds(t *testing.T) {
	res := runStrict(t, 4)
	for _, k := range []msg.Kind{
		msg.KindSendLocData, msg.KindSendRmtData,
		msg.KindReqRmtData, msg.KindReqLocData,
		msg.KindRspRmtData, msg.KindRspLocData,
	} {
		if res.PacketsByKind[k] != 0 {
			t.Errorf("strict ownership must not produce %v packets", k)
		}
	}
}

func TestStrictDeterministic(t *testing.T) {
	a := runStrict(t, 4)
	b := runStrict(t, 4)
	if a.CircuitHeight != b.CircuitHeight || a.Occupancy != b.Occupancy || a.Time != b.Time {
		t.Errorf("strict runs differ: %+v vs %+v", a, b)
	}
}

func TestStrictQualityWorseThanReplicatedViews(t *testing.T) {
	// Per-region greedy routing cannot beat globally evaluated routes;
	// the scheme's quality should be no better than the paper's chosen
	// design under a comparable configuration.
	strict := runStrict(t, 4)
	chosen := runSmall(t, 4, SenderInitiated(2, 10))
	if strict.CircuitHeight < chosen.CircuitHeight-2 {
		t.Errorf("strict quality %d should not beat replicated views %d",
			strict.CircuitHeight, chosen.CircuitHeight)
	}
}

func TestStrictSingleProcessorNoMessages(t *testing.T) {
	res := runStrict(t, 1)
	if res.Net.Packets != 0 {
		t.Errorf("1-processor strict run moved %d packets", res.Net.Packets)
	}
	if res.CircuitHeight <= 0 {
		t.Errorf("no routing happened")
	}
}

func TestStrictValidation(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignThreshold(c, part, assign.ThresholdInfinity)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.StrictOwnership = true
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("strict with an update strategy must fail")
	}
	cfg = DefaultConfig(Strategy{})
	cfg.Procs = 4
	cfg.StrictOwnership = true
	if _, err := RunLive(c, asn, cfg); err == nil {
		t.Errorf("live runtime must reject strict ownership")
	}
}

func TestStepToward(t *testing.T) {
	cases := []struct{ p, tgt, want geom.Point }{
		{geom.Pt(3, 3), geom.Pt(5, 3), geom.Pt(4, 3)},
		{geom.Pt(3, 3), geom.Pt(1, 3), geom.Pt(2, 3)},
		{geom.Pt(3, 3), geom.Pt(3, 7), geom.Pt(3, 4)},
		{geom.Pt(3, 3), geom.Pt(3, 0), geom.Pt(3, 2)},
		{geom.Pt(3, 3), geom.Pt(5, 9), geom.Pt(4, 3)}, // x preferred
	}
	for _, cse := range cases {
		if got := stepToward(cse.p, cse.tgt); got != cse.want {
			t.Errorf("stepToward(%v,%v) = %v, want %v", cse.p, cse.tgt, got, cse.want)
		}
	}
}

func TestClampInto(t *testing.T) {
	r := geom.R(2, 2, 6, 5)
	cases := []struct{ p, want geom.Point }{
		{geom.Pt(0, 0), geom.Pt(2, 2)},
		{geom.Pt(9, 9), geom.Pt(6, 5)},
		{geom.Pt(4, 3), geom.Pt(4, 3)},
		{geom.Pt(0, 4), geom.Pt(2, 4)},
	}
	for _, cse := range cases {
		if got := clampInto(r, cse.p); got != cse.want {
			t.Errorf("clampInto(%v) = %v, want %v", cse.p, got, cse.want)
		}
		if !clampInto(r, cse.p).In(r) {
			t.Errorf("clamped point must be inside the region")
		}
	}
}

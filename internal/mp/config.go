// Package mp implements the message passing version of LocusRoute
// (Section 4 of the paper) on the simulated mesh: the cost array is
// divided into owned regions, every processor keeps a full (possibly
// stale) view plus a delta array, and consistency is maintained only
// through explicit update packets.
//
// Update strategies follow the paper's taxonomy (Figure 3):
//
//   - sender initiated: SendLocData broadcasts the owner's absolute view
//     of its region to its mesh neighbours every SendLocData wires;
//     SendRmtData forwards accumulated deltas to the owning processor
//     every SendRmtData wires.
//   - receiver initiated: ReqRmtData asks a region's owner for fresh
//     absolute data when the processor's upcoming wires have touched the
//     region often enough, requested RequestAhead wires in advance;
//     ReqLocData is sent by an owner to a remote processor that has been
//     requesting (and therefore routing) in the owner's region a lot,
//     pulling that processor's deltas home.
//   - receiver initiated requests are either non-blocking (the processor
//     keeps routing and applies the response whenever it arrives) or
//     blocking (it waits for all outstanding responses before routing).
//
// Mixed schedules simply enable several mechanisms at once.
package mp

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/mesh"
	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/perf"
	"locusroute/internal/route"
	"locusroute/internal/sim"
	"locusroute/internal/tracev"
)

// Strategy selects which update mechanisms run and how often. A zero
// value for a field disables that mechanism. At least one mechanism
// should be enabled for multi-processor runs or views never synchronise.
type Strategy struct {
	// SendLocData: wires routed between absolute-view broadcasts to the
	// mesh neighbours (paper Table 1 column "SendLocData").
	SendLocData int
	// SendRmtData: wires routed between delta pushes to remote owners
	// (paper Table 1 column "SendRmtData").
	SendRmtData int
	// ReqRmtData: number of upcoming-wire touches of a region that
	// trigger a request to its owner (paper Table 2).
	ReqRmtData int
	// ReqLocData: number of ReqRmtData packets received from one remote
	// processor that trigger pulling that processor's deltas home.
	ReqLocData int
	// Blocking makes a processor wait for all outstanding ReqRmtData
	// responses before routing its next wire (Section 4.3.3 / 5.1.3).
	Blocking bool
}

// SenderInitiated returns the pure sender initiated schedule of Table 1.
func SenderInitiated(sendRmt, sendLoc int) Strategy {
	return Strategy{SendLocData: sendLoc, SendRmtData: sendRmt}
}

// ReceiverInitiated returns the pure receiver initiated schedule of
// Table 2 (non-blocking) or the blocking variant of Section 5.1.3.
func ReceiverInitiated(reqLoc, reqRmt int, blocking bool) Strategy {
	return Strategy{ReqLocData: reqLoc, ReqRmtData: reqRmt, Blocking: blocking}
}

// String renders the schedule compactly for table rows.
func (s Strategy) String() string {
	out := fmt.Sprintf("SLD=%d SRD=%d RLD=%d RRD=%d", s.SendLocData, s.SendRmtData, s.ReqLocData, s.ReqRmtData)
	if s.Blocking {
		out += " blocking"
	}
	return out
}

// DefaultRequestAhead is how many wires in advance update requests are
// ordered (the paper's compromise: five wires at a time).
const DefaultRequestAhead = 5

// Config assembles a full message passing run.
type Config struct {
	// Procs is the processor count; the mesh uses the squarest px x py
	// factorisation (16 -> 4x4 as in the paper).
	Procs int
	// Router parameters (iterations, candidate bounds).
	Router route.Params
	// Strategy is the update schedule.
	Strategy Strategy
	// RequestAhead is the receiver initiated lookahead in wires
	// (default DefaultRequestAhead).
	RequestAhead int
	// Perf is the node compute-cost model (default perf.Default).
	Perf perf.Model
	// Net holds the network timing constants (default mesh.DefaultParams).
	Net mesh.Params
	// Packets selects the update packet structure (Section 4.3.1); the
	// default StructureBbox is the paper's choice, the alternatives are
	// ablations valid only for pure sender initiated schedules.
	Packets PacketStructure
	// DynamicWires enables the dynamic wire assignment ablation
	// (Section 4.2): instead of a static assignment, processors request
	// wires from the assignment processor (node 0) over the network.
	// Only the DES runtime supports it, with sender initiated schedules
	// (receiver initiated lookahead needs the wire list in advance).
	DynamicWires bool
	// Topology optionally replaces the default squarest 2-D mesh with a
	// general k-ary n-cube shape (e.g. [2, 2, 2, 2] runs 16 processors
	// on a binary hypercube). The product of the dimensions must equal
	// Procs. The cost array partition stays two-dimensional; only the
	// interconnect shape changes, as in CBS.
	Topology []int
	// Obs, when non-nil, collects the run's observability data: per-node
	// simulated-time breakdown and interconnect histograms in the DES
	// runtime, wall-clock phases in the live runtime. The DES runtime
	// resets it at run start, so one observer serves one run. Nil (the
	// default) disables all collection; the run is byte-identical either
	// way.
	Obs *obs.MP
	// Trace, when non-nil, records an event-level timeline of the run:
	// spans for wire routing, packet sends/handling, blocking waits and
	// barriers; flow arrows joining each packet's injection to its
	// dequeue; and Account stamps tiling each node's simulated time.
	// Consumers export it as Chrome trace-event JSON (tracev.WriteChrome)
	// or extract the simulated-time critical path (tracev.Analyze). DES
	// runtime only. A tracer is confined to one run — never share one
	// across concurrent simulations. Nil (the default) disables tracing;
	// the run is byte-identical either way.
	Trace *tracev.Tracer
	// StrictOwnership enables the strict region ownership ablation
	// (Section 4.1): no replicated views, no update traffic — routing
	// tasks are passed across region boundaries instead. DES runtime
	// only; the update Strategy must be zero (there is nothing to
	// update), and the assignment must be the pure-locality one
	// (leftmost pin) because tasks start at the initiating region.
	StrictOwnership bool
}

// DefaultConfig returns the 16-processor configuration used by most paper
// experiments, with the given update strategy.
func DefaultConfig(strategy Strategy) Config {
	return Config{
		Procs:        16,
		Router:       route.DefaultParams(),
		Strategy:     strategy,
		RequestAhead: DefaultRequestAhead,
		Perf:         perf.Default(),
		Net:          mesh.DefaultParams(),
	}
}

func (c Config) withDefaults() Config {
	if c.RequestAhead <= 0 {
		c.RequestAhead = DefaultRequestAhead
	}
	if c.Perf == (perf.Model{}) {
		c.Perf = perf.Default()
	}
	if c.Net == (mesh.Params{}) {
		c.Net = mesh.DefaultParams()
	}
	return c
}

// Validate checks the configuration against a circuit and assignment.
func (c Config) Validate(circ *circuit.Circuit, asn *assign.Assignment) error {
	if c.Procs <= 0 {
		return fmt.Errorf("mp: processor count %d must be positive", c.Procs)
	}
	if asn.NumProcs != c.Procs {
		return fmt.Errorf("mp: assignment built for %d processors, config has %d",
			asn.NumProcs, c.Procs)
	}
	if err := asn.Validate(circ); err != nil {
		return err
	}
	if c.Packets != StructureBbox && (c.Strategy.ReqRmtData > 0 || c.Strategy.ReqLocData > 0) {
		return fmt.Errorf("mp: packet structure %v requires a pure sender initiated schedule", c.Packets)
	}
	if c.DynamicWires && c.Strategy.ReqRmtData > 0 {
		return fmt.Errorf("mp: dynamic wire assignment cannot look ahead for ReqRmtData")
	}
	if len(circ.Wires) >= int(msg.WireGrantDone) {
		return fmt.Errorf("mp: circuit has %d wires, grant encoding caps at %d",
			len(circ.Wires), msg.WireGrantDone-1)
	}
	if c.StrictOwnership {
		if c.Strategy != (Strategy{}) {
			return fmt.Errorf("mp: strict ownership has no replicated views to update; strategy must be zero")
		}
		if c.DynamicWires {
			return fmt.Errorf("mp: strict ownership assigns wires by region, not dynamically")
		}
		if c.Procs > 16 || len(circ.Wires) >= 1<<12 {
			return fmt.Errorf("mp: strict ownership task encoding caps at 16 processors and 4095 wires")
		}
	}
	return nil
}

// Result reports a message passing run in the units of the paper's
// tables.
type Result struct {
	// CircuitHeight and Occupancy are the quality measures (Section 3);
	// lower is better. CircuitHeight is measured on the ground-truth
	// array after the final barrier; Occupancy sums path costs as each
	// node saw them when routing (the paper's definition).
	CircuitHeight int64
	Occupancy     int64
	// Time is the simulated execution time: when the last processor
	// finished its final iteration.
	Time sim.Time
	// Net aggregates network statistics, including total bytes (the
	// "MBytes Xfrd." column).
	Net mesh.Stats
	// BytesByKind and PacketsByKind break traffic down by packet type.
	BytesByKind   map[msg.Kind]int64
	PacketsByKind map[msg.Kind]int64
	// CellsExamined is total route-evaluation work across processors.
	CellsExamined int64
	// BusyTime is the summed per-processor busy time (compute and
	// message handling), used for utilisation and overhead analysis.
	BusyTime sim.Time
	// RouteTime and MessageTime break the processors' busy time into
	// wire routing work and update machinery (packet assembly,
	// disassembly, scans, application, network copies). The paper
	// observes message handling reaching about a quarter of processing
	// time under the most frequent update schedules.
	RouteTime   sim.Time
	MessageTime sim.Time
	// UpdateBytes is Net.Bytes minus barrier traffic: the consistency
	// traffic the paper's tables report.
	UpdateBytes int64
	// Final is the ground-truth cost array after the last barrier — the
	// routed congestion state the quality measures were taken from.
	// Service layers seed incremental serving replicas from it.
	Final *costarray.CostArray
}

// MBytes returns the consistency traffic in megabytes, as the tables
// report.
func (r Result) MBytes() float64 { return float64(r.UpdateBytes) / 1e6 }

// MessageFraction returns the share of busy time spent on the update
// machinery rather than routing.
func (r Result) MessageFraction() float64 {
	total := r.RouteTime + r.MessageTime
	if total == 0 {
		return 0
	}
	return float64(r.MessageTime) / float64(total)
}

package mp

import (
	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/tracev"
)

// ObsRun renders a finished run into its observability document. The
// per-node breakdown, network histograms and wall-clock phases come from
// cfg.Obs (all empty when observability was off); the counters come from
// the Result. backend names the runtime: "mp-des" or "mp-live".
func ObsRun(name, backend, circuitName string, cfg Config, res Result) obs.Run {
	r := obs.Run{
		Name:      name,
		Backend:   backend,
		Circuit:   circuitName,
		Procs:     cfg.Procs,
		Quality:   &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
		SimTimeNs: int64(res.Time),
		Nodes:     cfg.Obs.NodeTimes(),
		Messages:  kindCounts(res),
		Phases:    cfg.Obs.PhaseDocs(),
	}
	net := &obs.NetworkDoc{
		Bytes:             res.Net.Bytes,
		Packets:           res.Net.Packets,
		HopBytes:          res.Net.HopBytes,
		SelfPackets:       res.Net.SelfPackets,
		SelfBytes:         res.Net.SelfBytes,
		ContentionDelayNs: int64(res.Net.ContentionDelay),
		TotalLatencyNs:    int64(res.Net.TotalLatency),
	}
	cfg.Obs.NetRecorder().Doc(net)
	r.Network = net
	if cfg.Trace != nil {
		if cp, err := tracev.Analyze(cfg.Trace.Events()); err == nil {
			r.CritPath = CritPathDoc(cp)
		}
	}
	return r
}

// kindCounts lists per-kind traffic in kind order, skipping kinds with
// no packets, so the JSON is stable (maps would marshal key-sorted by
// string, and kind order reads better).
func kindCounts(res Result) []obs.KindCount {
	var out []obs.KindCount
	for k := msg.KindSendLocData; k <= msg.KindSegDone; k++ {
		if res.PacketsByKind[k] == 0 && res.BytesByKind[k] == 0 {
			continue
		}
		out = append(out, obs.KindCount{
			Kind:    k.String(),
			Packets: res.PacketsByKind[k],
			Bytes:   res.BytesByKind[k],
		})
	}
	return out
}

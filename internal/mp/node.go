package mp

import (
	"fmt"

	"locusroute/internal/mesh"
	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/sim"
	"locusroute/internal/tracev"
)

// node is one simulated processor of the message passing router: the
// discrete-event runtime around a Proto. It charges the compute model
// for every operation, transports packets over the simulated mesh, and
// implements the inter-iteration barrier (Done to node 0, Continue back).
// Routing scratch state lives inside the Proto (one route.Scratch per
// processor for the whole run), so both this runtime and the live one get
// the allocation-free kernel without owning it themselves.
type node struct {
	id    int
	r     *runner
	p     *sim.Process
	proto *Proto
	wires []int

	dones     int // barrier coordinator only: Done packets this iteration
	continues int // Continue packets received so far

	// grant holds a received wire grant not yet consumed (dynamic wire
	// assignment only); granted distinguishes a pending zero grant.
	grant   uint16
	granted bool

	// routeTime and msgTime split this node's charged busy time between
	// wire routing and the update machinery.
	routeTime, msgTime sim.Time

	// clock is the observability breakdown of this node's simulated time
	// (nil when observability is off). Every time-advancing call below is
	// followed by exactly one Account stamp, so the four categories
	// partition the node's whole life. inBarrier steers Recv park time
	// between the blocked and barrier categories.
	clock     *obs.NodeClock
	inBarrier bool

	// tr is the event tracer (nil when tracing is off); track is this
	// node's trace track id.
	tr    *tracev.Tracer
	track int32
}

func newNode(id int, r *runner) *node {
	proto := NewProto(id, r.circ, r.part, r.cfg.Strategy, r.cfg.Router)
	proto.Structure = r.cfg.Packets
	proto.SetTruth(r.truth)
	if r.pathStore != nil {
		proto.SetPathStore(r.pathStore)
	}
	return &node{
		id:    id,
		r:     r,
		proto: proto,
		wires: r.asn.WiresOf(id),
		clock: r.cfg.Obs.NodeClock(id),
		tr:    r.cfg.Trace,
		track: int32(id),
	}
}

// account stamps the interval ending now to cat on the obs clock and, in
// lockstep, on the trace — the invariant both consumers rely on.
func (n *node) account(cat obs.TimeCategory) {
	now := n.p.Now()
	n.clock.Account(now, cat)
	n.tr.Account(n.track, int64(now), traceCat(cat))
}

// run is the node's process body: Iterations rounds of routing all
// assigned wires with a global barrier between rounds.
func (n *node) run(p *sim.Process) {
	n.p = p
	p.Track = n.track
	if n.r.cfg.DynamicWires {
		n.runDynamic()
		return
	}
	st := n.r.cfg.Strategy
	ahead := n.r.cfg.RequestAhead
	for iter := 0; iter < n.r.cfg.Router.Iterations; iter++ {
		n.tr.Begin(n.track, int64(p.Now()), tracev.KindIteration, int64(iter))
		// Prefill the receiver initiated lookahead window.
		if st.ReqRmtData > 0 {
			for k := 0; k < ahead && k < len(n.wires); k++ {
				n.transmit(n.proto.NoteUpcoming(n.wires[k]))
			}
		}
		for i, wi := range n.wires {
			n.drain()
			if st.ReqRmtData > 0 && i+ahead < len(n.wires) {
				n.transmit(n.proto.NoteUpcoming(n.wires[i+ahead]))
			}
			if st.Blocking && n.proto.Outstanding > 0 {
				n.tr.Begin(n.track, int64(p.Now()), tracev.KindBlocked, int64(n.proto.Outstanding))
				for n.proto.Outstanding > 0 {
					n.recvOne()
				}
				n.tr.End(n.track, int64(p.Now()), tracev.KindBlocked, 0)
			}
			n.routeWire(wi, iter)
			n.transmit(n.proto.AfterWire())
		}
		n.barrier(iter)
		n.tr.End(n.track, int64(p.Now()), tracev.KindIteration, int64(iter))
	}
	n.r.finish[n.id] = p.Now()
	n.r.routeTime += n.routeTime
	n.r.msgTime += n.msgTime
}

// runDynamic is the dynamic wire assignment ablation (Section 4.2, first
// scheme): processors request wires from node 0 over the network; node 0
// services requests only when it checks its queue between its own wires,
// which is exactly the latency problem the paper describes.
func (n *node) runDynamic() {
	for iter := 0; iter < n.r.cfg.Router.Iterations; iter++ {
		n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindIteration, int64(iter))
		for {
			n.drain()
			wi := n.fetchDynamicWire()
			if wi < 0 {
				break
			}
			n.routeWire(wi, iter)
			n.transmit(n.proto.AfterWire())
		}
		n.barrier(iter)
		n.tr.End(n.track, int64(n.p.Now()), tracev.KindIteration, int64(iter))
	}
	n.r.finish[n.id] = n.p.Now()
	n.r.routeTime += n.routeTime
	n.r.msgTime += n.msgTime
}

// fetchDynamicWire obtains the next wire: node 0 takes from the shared
// counter locally; everyone else asks node 0 and blocks for the grant.
func (n *node) fetchDynamicWire() int {
	if n.id == 0 {
		return n.r.takeWire()
	}
	n.send(0, &msg.Message{Kind: msg.KindReqWire})
	if !n.granted {
		n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindBlocked, 1)
		for !n.granted {
			n.recvOne()
		}
		n.tr.End(n.track, int64(n.p.Now()), tracev.KindBlocked, 0)
	}
	n.granted = false
	if n.grant == msg.WireGrantDone {
		return -1
	}
	return int(n.grant)
}

// routeWire routes one wire through the protocol, charging the compute
// model between the phases so the commit becomes visible — and the
// occupancy contribution is measured — at the virtual time the routing
// computation completes.
func (n *node) routeWire(wi, iter int) {
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindRouteWire, int64(wi))
	perf := n.r.cfg.Perf
	ripped := n.proto.RipUpWire(wi, iter)
	n.waitRoute(perf.WriteTime(ripped))
	pw := n.proto.EvaluateWire(wi)
	n.waitRoute(perf.WireOverhead + perf.EvalTime(pw.CellsExamined))
	n.r.lastCost[wi] = n.proto.CommitWire(wi, pw)
	n.waitRoute(perf.WriteTime(pw.Path.Len()))
	n.r.cells += int64(pw.CellsExamined)
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindRouteWire, int64(wi))
}

// waitRoute charges d as routing work.
func (n *node) waitRoute(d sim.Time) {
	n.routeTime += d
	n.p.Wait(d)
	n.account(obs.TimeCompute)
}

// waitMsg charges d as update machinery work.
func (n *node) waitMsg(d sim.Time) {
	n.msgTime += d
	n.p.Wait(d)
	n.account(obs.TimePacket)
}

// transmit charges scan and assembly time and sends each outbound packet.
func (n *node) transmit(outs []Outbound) {
	n.waitMsg(n.r.cfg.Perf.ScanTime(n.proto.TakeScanWork()))
	for _, out := range outs {
		n.send(out.To, out.Msg)
	}
}

// drain handles every message already queued without blocking.
func (n *node) drain() {
	inbox := n.r.net.Inbox(n.id)
	for {
		item, ok := inbox.TryRecv()
		if !ok {
			return
		}
		n.handle(item.(*mesh.Packet))
	}
}

// recvOne blocks for one message and handles it. Time parked in Recv is
// blocked-on-receive, or barrier wait when inside the barrier.
func (n *node) recvOne() {
	item := n.r.net.Inbox(n.id).Recv(n.p)
	cat := obs.TimeBlocked
	if n.inBarrier {
		cat = obs.TimeBarrier
	}
	n.account(cat)
	n.handle(item.(*mesh.Packet))
}

// send encodes and transmits one protocol message, charging assembly time
// and recording per-kind traffic.
func (n *node) send(to int, m *msg.Message) {
	buf, err := m.Encode()
	if err != nil {
		panic(fmt.Sprintf("mp: node %d encoding %v: %v", n.id, m.Kind, err))
	}
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindSendPacket, int64(m.Kind))
	n.waitMsg(n.r.cfg.Perf.CopyTime(len(buf)))
	n.r.bytesByKind[m.Kind] += int64(len(buf))
	n.r.packetsByKind[m.Kind]++
	n.msgTime += n.r.cfg.Net.ProcessTime // the network copy inside Send
	n.r.net.Send(n.p, n.id, to, buf, len(buf))
	n.account(obs.TimePacket)
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindSendPacket, int64(m.Kind))
}

// handle dispatches one received packet: barrier kinds are the runtime's
// own; everything else goes to the protocol, whose responses are sent
// back out. Reception, disassembly and application costs are charged.
func (n *node) handle(pkt *mesh.Packet) {
	n.tr.FlowEnd(n.track, int64(n.p.Now()), pkt.Flow, int64(pkt.Size))
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindHandlePacket, int64(pkt.Size))
	n.msgTime += n.r.cfg.Net.ProcessTime
	n.r.net.ChargeReceive(n.p)
	n.account(obs.TimePacket)
	buf := pkt.Payload.([]byte)
	n.waitMsg(n.r.cfg.Perf.CopyTime(len(buf)))
	m, err := msg.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("mp: node %d decoding packet from %d: %v", n.id, pkt.From, err))
	}
	switch m.Kind {
	case msg.KindDone:
		n.dones++
	case msg.KindContinue:
		n.continues++
	case msg.KindReqWire:
		wi := n.r.takeWire()
		grant := msg.WireGrantDone
		if wi >= 0 {
			grant = uint16(wi)
		}
		n.send(pkt.From, &msg.Message{Kind: msg.KindWireGrant, Seq: grant})
	case msg.KindWireGrant:
		n.grant = m.Seq
		n.granted = true
	default:
		outs := n.proto.Handle(pkt.From, m)
		if m.Kind.IsData() {
			n.waitMsg(n.r.cfg.Perf.WriteTime(len(m.Vals)))
		} else if m.Kind == msg.KindSendRmtWire {
			n.waitMsg(n.r.cfg.Perf.WriteTime(m.Region.Area()))
		}
		n.transmit(outs)
	}
	n.tr.End(n.track, int64(n.p.Now()), tracev.KindHandlePacket, int64(pkt.Size))
}

// barrier synchronises all nodes between iterations: everyone reports
// Done to node 0, which broadcasts Continue. While waiting, nodes keep
// servicing requests so no processor deadlocks behind the barrier.
func (n *node) barrier(iter int) {
	n.inBarrier = true
	n.tr.Begin(n.track, int64(n.p.Now()), tracev.KindBarrier, int64(iter))
	defer func() {
		n.inBarrier = false
		n.tr.End(n.track, int64(n.p.Now()), tracev.KindBarrier, int64(iter))
	}()
	if n.id == 0 {
		for n.dones < n.r.cfg.Procs-1 {
			n.recvOne()
		}
		n.dones = 0
		n.r.wireCounter = 0 // refill the dynamic wire supply
		for proc := 1; proc < n.r.cfg.Procs; proc++ {
			n.send(proc, &msg.Message{Kind: msg.KindContinue, Seq: uint16(iter)})
		}
		return
	}
	n.send(0, &msg.Message{Kind: msg.KindDone, Seq: uint16(iter)})
	for n.continues <= iter {
		n.recvOne()
	}
}

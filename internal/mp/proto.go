package mp

import (
	"fmt"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/route"
)

// Outbound is a protocol message the runtime must transmit.
type Outbound struct {
	To  int
	Msg *msg.Message
}

// WireStats reports the work of one wire routing, for the runtime's
// compute-time accounting.
type WireStats struct {
	CellsExamined  int
	CellsRipped    int
	CellsCommitted int
	// TrueCost is the path cost against the ground-truth array at commit
	// time (the occupancy contribution).
	TrueCost int64
}

// PacketStructure selects the update packet layout (Section 4.3.1 of the
// paper). The paper chooses the bounding-box structure; the two
// alternatives it discusses are kept as ablations, valid for pure sender
// initiated schedules.
type PacketStructure int

const (
	// StructureBbox (the paper's choice): the bounding box of all
	// changes in an owned region, scanned from the delta array.
	StructureBbox PacketStructure = iota
	// StructureWireBased: one header-only packet per straight run of
	// each routed or ripped-up wire. Compact per segment but performs no
	// cancellation — every rip-up and reroute is transmitted.
	StructureWireBased
	// StructureWholeRegion: the entire owned region's delta values,
	// zeros included. Trivial to assemble and disassemble but wasteful
	// on the network.
	StructureWholeRegion
)

// String names the structure.
func (s PacketStructure) String() string {
	switch s {
	case StructureBbox:
		return "bbox"
	case StructureWireBased:
		return "wire-based"
	case StructureWholeRegion:
		return "whole-region"
	}
	return fmt.Sprintf("PacketStructure(%d)", int(s))
}

// Proto is the runtime-independent protocol state of one message passing
// LocusRoute processor: the full (possibly stale) view of the cost array,
// the delta array of unsent changes, the dirty bounds that drive
// SendLocData broadcasts and ReqRmtData responses, and the counters of
// every update mechanism. Both runtimes — the discrete-event simulation
// (node.go) and the real goroutine-and-channel runtime (live.go) — drive
// the same Proto, so strategy behaviour is identical across them by
// construction.
//
// Proto is not safe for concurrent use; each runtime confines a Proto to
// one processor's thread of control.
type Proto struct {
	ID       int
	Strategy Strategy
	Part     geom.Partition
	// Structure selects the SendRmtData packet layout.
	Structure PacketStructure

	circ  *circuit.Circuit
	truth Truth
	view  *costarray.CostArray
	delta *costarray.Delta

	router route.Params
	paths  PathStore
	// scratch is this processor's reusable routing kernel state. Proto is
	// confined to one thread of control, so the scratch is too; both
	// runtimes (DES and live) inherit allocation-free routing through it.
	scratch *route.Scratch

	ownDirty geom.Rect
	reqDirty []geom.Rect

	touch       []int
	reqFrom     []int
	Outstanding int // ReqRmtData responses not yet received

	sinceSLD, sinceSRD int

	// wireOps holds, per remote region, the straight runs of paths
	// committed or ripped since the last update — the wire-based packet
	// structure's send queue (StructureWireBased only).
	wireOps [][]wireOp

	// Scan work accumulated by the most recent operation, for runtimes
	// that charge compute time (reset by TakeScanWork).
	scanWork int
}

// wireOp is one straight run of a path inside one remote region.
type wireOp struct {
	run   geom.Rect
	ripUp bool
}

// Truth is where commits and rip-ups land immediately, regardless of any
// view staleness: the real circuit state. The DES runtime passes a plain
// array (single-threaded by construction); the live runtime passes an
// atomically synchronised one.
type Truth interface {
	Add(x, y int, d int32)
	At(x, y int) int32
}

// PathStore records the most recent routing of each wire, consulted at
// rip-up time. With static assignment each processor owns its wires'
// entries, so the default per-processor map suffices; the dynamic wire
// assignment ablation shares one store across processors because a wire
// may be rerouted by a different processor each iteration.
type PathStore interface {
	Get(wi int) route.Path
	Set(wi int, p route.Path)
}

// mapPathStore is the default private store.
type mapPathStore map[int]route.Path

// Get implements PathStore.
func (s mapPathStore) Get(wi int) route.Path { return s[wi] }

// Set implements PathStore.
func (s mapPathStore) Set(wi int, p route.Path) { s[wi] = p }

// NewProto builds the protocol state for processor id.
func NewProto(id int, circ *circuit.Circuit, part geom.Partition, st Strategy, router route.Params) *Proto {
	return &Proto{
		ID:       id,
		Strategy: st,
		Part:     part,
		circ:     circ,
		view:     costarray.New(circ.Grid),
		delta:    costarray.NewDelta(part),
		router:   router,
		paths:    make(mapPathStore),
		scratch:  route.NewScratch(circ.Grid),
		reqDirty: make([]geom.Rect, part.Procs()),
		touch:    make([]int, part.Procs()),
		reqFrom:  make([]int, part.Procs()),
	}
}

// SetTruth installs the ground-truth sink. Must be called before routing.
func (pr *Proto) SetTruth(t Truth) { pr.truth = t }

// SetPathStore replaces the private path store (dynamic wire assignment
// shares one across processors). Must be called before routing.
func (pr *Proto) SetPathStore(ps PathStore) { pr.paths = ps }

// View exposes the processor's current view (for tests and inspection).
func (pr *Proto) View() *costarray.CostArray { return pr.view }

// TakeScanWork returns and resets the delta/extract scan work since the
// last call.
func (pr *Proto) TakeScanWork() int {
	w := pr.scanWork
	pr.scanWork = 0
	return w
}

// protoCommitView writes through to the view, the ground truth, and the
// dirty/delta tracking.
type protoCommitView struct{ pr *Proto }

func (v protoCommitView) Grid() geom.Grid     { return v.pr.view.Grid() }
func (v protoCommitView) Cost(x, y int) int32 { return v.pr.view.At(x, y) }

func (v protoCommitView) AddCost(x, y int, d int32) {
	pr := v.pr
	pr.view.Add(x, y, d)
	pr.truth.Add(x, y, d)
	if pr.Part.Owner(geom.Pt(x, y)) == pr.ID {
		pr.markOwn(geom.Rect{X0: x, Y0: y, X1: x + 1, Y1: y + 1})
	} else if pr.Structure != StructureWireBased {
		// The wire-based structure transmits whole runs (recorded by
		// recordWireOps), so remote changes bypass the delta array.
		pr.delta.Add(x, y, d)
	}
}

// recordWireOps splits a committed or ripped path into straight runs per
// remote region, queueing them for the wire-based packet structure.
func (pr *Proto) recordWireOps(path route.Path, ripUp bool) {
	if pr.wireOps == nil {
		pr.wireOps = make([][]wireOp, pr.Part.Procs())
	}
	flush := func(owner int, run geom.Rect) {
		if owner != pr.ID && !run.Empty() {
			pr.wireOps[owner] = append(pr.wireOps[owner], wireOp{run: run, ripUp: ripUp})
		}
	}
	var run geom.Rect
	owner := -1
	var prev geom.Point
	for i, c := range path.Cells {
		o := pr.Part.Owner(c)
		extends := i > 0 && o == owner && adjacentCollinear(run, prev, c)
		if !extends {
			flush(owner, run)
			run = geom.Rect{}
			owner = o
		}
		run = run.AddPoint(c)
		prev = c
	}
	flush(owner, run)
}

// adjacentCollinear reports whether adding c after prev keeps the run a
// straight horizontal or vertical segment.
func adjacentCollinear(run geom.Rect, prev, c geom.Point) bool {
	if prev.Manhattan(c) != 1 {
		return false
	}
	ext := run.AddPoint(c)
	return ext.Dx() == 1 || ext.Dy() == 1
}

func (pr *Proto) markOwn(bb geom.Rect) {
	pr.ownDirty = pr.ownDirty.Union(bb)
	for i := range pr.reqDirty {
		if i != pr.ID {
			pr.reqDirty[i] = pr.reqDirty[i].Union(bb)
		}
	}
}

// PendingWire is an evaluated-but-not-yet-committed wire routing, carried
// between EvaluateWire and CommitWire so the runtime can charge
// evaluation time before the commit becomes visible.
type PendingWire struct {
	Path          route.Path
	CellsExamined int
}

// RipUpWire removes the previous routing of wire wi (iterations after the
// first) and returns the number of cells decremented. It must precede
// EvaluateWire for the same wire.
func (pr *Proto) RipUpWire(wi, iter int) int {
	if iter == 0 {
		return 0
	}
	prev := pr.paths.Get(wi)
	route.RipUp(protoCommitView{pr: pr}, prev)
	if pr.Structure == StructureWireBased {
		pr.recordWireOps(prev, true)
	}
	return prev.Len()
}

// EvaluateWire routes wire wi against the current view without committing.
func (pr *Proto) EvaluateWire(wi int) PendingWire {
	w := &pr.circ.Wires[wi]
	ev := pr.scratch.RouteWire(route.ArrayView{A: pr.view}, w, pr.router)
	return PendingWire{Path: ev.Path, CellsExamined: ev.CellsExamined}
}

// CommitWire places the evaluated path, returning its cost against the
// ground truth at commit time (the wire's occupancy contribution).
func (pr *Proto) CommitWire(wi int, pw PendingWire) int64 {
	var trueCost int64
	for _, cell := range pw.Path.Cells {
		trueCost += int64(pr.truth.At(cell.X, cell.Y))
	}
	route.Commit(protoCommitView{pr: pr}, pw.Path)
	if pr.Structure == StructureWireBased {
		pr.recordWireOps(pw.Path, false)
	}
	pr.paths.Set(wi, pw.Path)
	return trueCost
}

// RouteWire is the single-shot form of RipUpWire + EvaluateWire +
// CommitWire for runtimes that do not charge time between phases.
func (pr *Proto) RouteWire(wi, iter int) WireStats {
	var st WireStats
	st.CellsRipped = pr.RipUpWire(wi, iter)
	pw := pr.EvaluateWire(wi)
	st.CellsExamined = pw.CellsExamined
	st.TrueCost = pr.CommitWire(wi, pw)
	st.CellsCommitted = pw.Path.Len()
	return st
}

// AfterWire advances the sender initiated schedule and returns the
// updates due.
func (pr *Proto) AfterWire() []Outbound {
	var outs []Outbound
	if pr.Strategy.SendRmtData > 0 {
		pr.sinceSRD++
		if pr.sinceSRD >= pr.Strategy.SendRmtData {
			pr.sinceSRD = 0
			outs = append(outs, pr.pushDeltas()...)
		}
	}
	if pr.Strategy.SendLocData > 0 {
		pr.sinceSLD++
		if pr.sinceSLD >= pr.Strategy.SendLocData {
			pr.sinceSLD = 0
			outs = append(outs, pr.broadcastOwnRegion()...)
		}
	}
	return outs
}

func (pr *Proto) pushDeltas() []Outbound {
	if pr.Structure == StructureWireBased {
		return pr.pushWireOps()
	}
	var outs []Outbound
	for proc := 0; proc < pr.Part.Procs(); proc++ {
		if proc == pr.ID || !pr.delta.HasChanges(proc) {
			continue
		}
		var bb geom.Rect
		var vals []int32
		var scanned int
		if pr.Structure == StructureWholeRegion {
			bb, vals, scanned = pr.delta.TakeWholeRegion(proc)
		} else {
			bb, vals, scanned = pr.delta.TakeRegion(proc)
		}
		pr.scanWork += scanned
		if bb.Empty() {
			continue // full cancellation: nothing to send
		}
		outs = append(outs, Outbound{
			To:  proc,
			Msg: &msg.Message{Kind: msg.KindSendRmtData, Region: bb, Vals: vals},
		})
	}
	return outs
}

// pushWireOps drains the wire-based send queues: one header-only packet
// per straight run, no cancellation.
func (pr *Proto) pushWireOps() []Outbound {
	var outs []Outbound
	for proc := range pr.wireOps {
		for _, op := range pr.wireOps[proc] {
			flag := msg.WireFlagRoute
			if op.ripUp {
				flag = msg.WireFlagRipUp
			}
			outs = append(outs, Outbound{
				To:  proc,
				Msg: &msg.Message{Kind: msg.KindSendRmtWire, Region: op.run, Seq: flag},
			})
		}
		pr.wireOps[proc] = pr.wireOps[proc][:0]
	}
	return outs
}

func (pr *Proto) broadcastOwnRegion() []Outbound {
	if pr.ownDirty.Empty() {
		return nil
	}
	bb, vals := pr.view.ExtractRect(pr.ownDirty)
	pr.scanWork += bb.Area()
	pr.ownDirty = geom.Rect{}
	if bb.Empty() {
		return nil
	}
	outs := make([]Outbound, 0, 4)
	for _, nb := range pr.Part.Neighbors(pr.ID) {
		outs = append(outs, Outbound{
			To:  nb,
			Msg: &msg.Message{Kind: msg.KindSendLocData, Region: bb, Vals: vals},
		})
	}
	return outs
}

// NoteUpcoming counts the regions an upcoming wire will touch and returns
// the ReqRmtData requests due at the configured threshold, incrementing
// Outstanding for each.
func (pr *Proto) NoteUpcoming(wi int) []Outbound {
	if pr.Strategy.ReqRmtData <= 0 {
		return nil
	}
	w := &pr.circ.Wires[wi]
	var outs []Outbound
	for _, proc := range pr.Part.RegionsTouching(w.Bounds()) {
		if proc == pr.ID {
			continue
		}
		pr.touch[proc]++
		if pr.touch[proc] >= pr.Strategy.ReqRmtData {
			pr.touch[proc] = 0
			pr.Outstanding++
			outs = append(outs, Outbound{
				To:  proc,
				Msg: &msg.Message{Kind: msg.KindReqRmtData, Region: pr.Part.Region(proc)},
			})
		}
	}
	return outs
}

// Handle processes one incoming protocol message, updating state and
// returning any responses due. Barrier kinds (Done/Continue) are the
// runtime's business and are rejected here.
func (pr *Proto) Handle(from int, m *msg.Message) []Outbound {
	switch m.Kind {
	case msg.KindSendLocData:
		pr.applyAbsolute(m)
		return nil
	case msg.KindSendRmtData:
		pr.applyDeltaToOwn(m)
		return nil
	case msg.KindReqRmtData:
		return pr.handleReqRmt(from)
	case msg.KindReqLocData:
		return pr.handleReqLoc(from)
	case msg.KindRspRmtData:
		pr.Outstanding--
		if !m.Region.Empty() {
			pr.applyAbsolute(m)
		}
		return nil
	case msg.KindRspLocData:
		if !m.Region.Empty() {
			pr.applyDeltaToOwn(m)
		}
		return nil
	case msg.KindSendRmtWire:
		d := int32(1)
		if m.Seq == msg.WireFlagRipUp {
			d = -1
		}
		r := m.Region.Intersect(pr.view.Grid().Bounds())
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				pr.view.Add(x, y, d)
			}
		}
		// Only the part of the run inside our own region becomes own-dirty
		// state to rebroadcast; marking cells we don't own would let a
		// later SendLocData push stale non-owned values as absolute data.
		// (recordWireOps splits runs per owner, so today the whole run is
		// in-region; the intersection makes that a guarantee, not a habit
		// of the sender.)
		if own := r.Intersect(pr.Part.Region(pr.ID)); !own.Empty() {
			pr.markOwn(own)
		}
		return nil
	}
	panic(fmt.Sprintf("mp: proto %d: unexpected kind %v", pr.ID, m.Kind))
}

func (pr *Proto) applyAbsolute(m *msg.Message) {
	if err := pr.view.ApplyAbsolute(m.Region, m.Vals); err != nil {
		panic(fmt.Sprintf("mp: proto %d applying %v: %v", pr.ID, m.Kind, err))
	}
}

func (pr *Proto) applyDeltaToOwn(m *msg.Message) {
	if err := pr.view.ApplyDelta(m.Region, m.Vals); err != nil {
		panic(fmt.Sprintf("mp: proto %d applying %v: %v", pr.ID, m.Kind, err))
	}
	pr.markOwn(m.Region)
}

func (pr *Proto) handleReqRmt(from int) []Outbound {
	bb := pr.reqDirty[from]
	pr.reqDirty[from] = geom.Rect{}
	rsp := &msg.Message{Kind: msg.KindRspRmtData}
	if !bb.Empty() {
		region, vals := pr.view.ExtractRect(bb)
		pr.scanWork += region.Area()
		rsp.Region, rsp.Vals = region, vals
	}
	outs := []Outbound{{To: from, Msg: rsp}}

	if pr.Strategy.ReqLocData > 0 {
		pr.reqFrom[from]++
		if pr.reqFrom[from] >= pr.Strategy.ReqLocData {
			pr.reqFrom[from] = 0
			outs = append(outs, Outbound{
				To:  from,
				Msg: &msg.Message{Kind: msg.KindReqLocData, Region: pr.Part.Region(pr.ID)},
			})
		}
	}
	return outs
}

func (pr *Proto) handleReqLoc(owner int) []Outbound {
	bb, vals, scanned := pr.delta.TakeRegion(owner)
	pr.scanWork += scanned
	rsp := &msg.Message{Kind: msg.KindRspLocData}
	if !bb.Empty() {
		rsp.Region, rsp.Vals = bb, vals
	}
	return []Outbound{{To: owner, Msg: rsp}}
}

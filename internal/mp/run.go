package mp

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/mesh"
	"locusroute/internal/msg"
	"locusroute/internal/sim"
)

// plainTruth adapts a plain cost array to the Truth interface for the
// discrete-event runtime, where the kernel serialises all node execution.
type plainTruth struct{ a *costarray.CostArray }

// Add implements Truth.
func (t plainTruth) Add(x, y int, d int32) { t.a.Add(x, y, d) }

// At implements Truth.
func (t plainTruth) At(x, y int) int32 { return t.a.At(x, y) }

// runner holds the state shared by all nodes of one simulated run. The
// discrete-event kernel serialises node execution, so plain fields are
// safe.
type runner struct {
	cfg  Config
	circ *circuit.Circuit
	asn  *assign.Assignment
	part geom.Partition
	net  mesh.Interconnect

	// truth is the ground-truth cost array: every commit and rip-up by
	// any node lands here immediately, so final quality is measured on
	// the real circuit state, not on any node's (stale) view.
	truth plainTruth

	lastCost      []int64 // per wire: path cost at its most recent routing
	bytesByKind   map[msg.Kind]int64
	packetsByKind map[msg.Kind]int64
	cells         int64
	finish        []sim.Time
	routeTime     sim.Time
	msgTime       sim.Time

	// Dynamic wire assignment state (DynamicWires only): the shared
	// wire counter node 0 serves from, and the cross-processor path
	// store (a wire may be rerouted by a different processor each
	// iteration).
	wireCounter int
	pathStore   PathStore
}

// takeWire hands out the next wire of the current iteration, or -1.
func (r *runner) takeWire() int {
	if r.wireCounter >= len(r.circ.Wires) {
		return -1
	}
	wi := r.wireCounter
	r.wireCounter++
	return wi
}

// Run executes the message passing LocusRoute on the simulated mesh and
// reports quality, simulated time and traffic.
func Run(circ *circuit.Circuit, asn *assign.Assignment, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(circ, asn); err != nil {
		return Result{}, err
	}
	px, py := geom.SquarestFactors(cfg.Procs)
	part, err := geom.NewPartition(circ.Grid, px, py)
	if err != nil {
		return Result{}, fmt.Errorf("mp: partitioning: %w", err)
	}

	kernel := sim.NewKernel()
	var net mesh.Interconnect
	if len(cfg.Topology) > 0 {
		nodes := 1
		for _, d := range cfg.Topology {
			nodes *= d
		}
		if nodes != cfg.Procs {
			return Result{}, fmt.Errorf("mp: topology %v has %d nodes for %d processors",
				cfg.Topology, nodes, cfg.Procs)
		}
		net, err = mesh.NewCube(kernel, cfg.Topology, cfg.Net)
	} else {
		net, err = mesh.New(kernel, px, py, cfg.Net)
	}
	if err != nil {
		return Result{}, err
	}
	cfg.Obs.Prepare(cfg.Procs)
	net.SetRecorder(cfg.Obs.NetRecorder())
	if cfg.Trace != nil {
		kernel.SetTracer(cfg.Trace)
		net.SetTracer(cfg.Trace)
	}
	r := &runner{
		cfg:           cfg,
		circ:          circ,
		asn:           asn,
		part:          part,
		net:           net,
		truth:         plainTruth{a: costarray.New(circ.Grid)},
		lastCost:      make([]int64, len(circ.Wires)),
		bytesByKind:   make(map[msg.Kind]int64),
		packetsByKind: make(map[msg.Kind]int64),
		finish:        make([]sim.Time, cfg.Procs),
	}
	if cfg.DynamicWires {
		r.pathStore = make(mapPathStore)
	}

	for id := 0; id < cfg.Procs; id++ {
		if cfg.StrictOwnership {
			n := newStrictNode(id, r)
			kernel.Spawn(fmt.Sprintf("node%d", id), n.run)
		} else {
			n := newNode(id, r)
			kernel.Spawn(fmt.Sprintf("node%d", id), n.run)
		}
	}
	kernel.Run()

	var res Result
	res.Final = r.truth.a
	res.CircuitHeight = r.truth.a.CircuitHeight()
	for _, c := range r.lastCost {
		res.Occupancy += c
	}
	for _, f := range r.finish {
		if f > res.Time {
			res.Time = f
		}
		res.BusyTime += f
	}
	res.Net = net.Stats()
	res.RouteTime = r.routeTime
	res.MessageTime = r.msgTime
	res.BytesByKind = r.bytesByKind
	res.PacketsByKind = r.packetsByKind
	res.CellsExamined = r.cells
	// Update traffic excludes the barrier and the dynamic wire
	// distribution: the paper's "MBytes Xfrd." measures consistency
	// traffic.
	res.UpdateBytes = res.Net.Bytes -
		r.bytesByKind[msg.KindDone] - r.bytesByKind[msg.KindContinue] -
		r.bytesByKind[msg.KindReqWire] - r.bytesByKind[msg.KindWireGrant]
	return res, nil
}

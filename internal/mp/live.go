package mp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/sim"
)

// RunLive executes the message passing LocusRoute on real goroutines with
// real Go channels as the interconnect — the same Proto state machine the
// discrete-event runtime drives, so update-strategy behaviour is
// identical by construction. Packets are still marshalled to bytes, so
// traffic accounting matches the simulated runtime; there is no network
// or compute model, so Result.Time is host wall-clock and Result.Net is
// empty.
//
// The channel transport is the natural Go shape of the paper's message
// passing machine: one buffered channel per processor is its receive
// queue, sends never block in practice (the buffer exceeds the protocol's
// bounded in-flight packet count), and the inter-iteration barrier rides
// the same channels as Done/Continue packets.
func RunLive(circ *circuit.Circuit, asn *assign.Assignment, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(circ, asn); err != nil {
		return Result{}, err
	}
	if cfg.DynamicWires {
		return Result{}, fmt.Errorf("mp: dynamic wire assignment is a DES-only ablation")
	}
	if cfg.StrictOwnership {
		return Result{}, fmt.Errorf("mp: strict ownership is a DES-only ablation")
	}
	if cfg.Trace != nil {
		return Result{}, fmt.Errorf("mp: event tracing records simulated time; DES runtime only")
	}
	px, py := geom.SquarestFactors(cfg.Procs)
	part, err := geom.NewPartition(circ.Grid, px, py)
	if err != nil {
		return Result{}, fmt.Errorf("mp: partitioning: %w", err)
	}

	lr := &liveRun{
		cfg:      cfg,
		circ:     circ,
		asn:      asn,
		part:     part,
		truth:    newAtomicTruth(circ.Grid),
		lastCost: make([]int64, len(circ.Wires)),
		inboxes:  make([]chan livePacket, cfg.Procs),
	}
	for i := range lr.inboxes {
		lr.inboxes[i] = make(chan livePacket, liveInboxDepth)
	}

	start := time.Now()
	stopRoute := cfg.Obs.Phase("route")
	var wg sync.WaitGroup
	nodes := make([]*liveNode, cfg.Procs)
	for id := 0; id < cfg.Procs; id++ {
		nodes[id] = newLiveNode(id, lr)
		wg.Add(1)
		go func(n *liveNode) {
			defer wg.Done()
			n.run()
		}(nodes[id])
	}
	wg.Wait()
	stopRoute()
	elapsed := time.Since(start)

	stopReduce := cfg.Obs.Phase("reduce")
	defer stopReduce()
	var res Result
	res.Final = lr.truth.snapshot()
	res.CircuitHeight = res.Final.CircuitHeight()
	for _, c := range lr.lastCost {
		res.Occupancy += c
	}
	res.Time = sim.Time(elapsed.Nanoseconds())
	res.BytesByKind = make(map[msg.Kind]int64)
	res.PacketsByKind = make(map[msg.Kind]int64)
	for _, n := range nodes {
		for k, v := range n.bytesByKind {
			res.BytesByKind[k] += v
		}
		for k, v := range n.packetsByKind {
			res.PacketsByKind[k] += v
		}
		res.CellsExamined += n.cells
	}
	for k, v := range res.BytesByKind {
		res.Net.Bytes += v
		res.Net.Packets += res.PacketsByKind[k]
		if k != msg.KindDone && k != msg.KindContinue {
			res.UpdateBytes += v
		}
	}
	return res, nil
}

// liveInboxDepth sizes the per-node receive buffer; it comfortably
// exceeds the protocol's bounded in-flight packet count so sends do not
// block in practice.
const liveInboxDepth = 4096

// livePacket is one marshalled protocol message on the channel transport.
type livePacket struct {
	From int
	Buf  []byte
}

// liveRun is the state shared by the goroutine nodes.
type liveRun struct {
	cfg      Config
	circ     *circuit.Circuit
	asn      *assign.Assignment
	part     geom.Partition
	truth    *atomicTruth
	lastCost []int64 // per wire; each slot written only by the wire's owner
	inboxes  []chan livePacket
}

// atomicTruth is the ground-truth cost array shared by concurrently
// routing goroutines: per-cell atomic adds, like the shared memory
// version's unlocked array.
type atomicTruth struct {
	grid  geom.Grid
	cells []atomic.Int32
}

func newAtomicTruth(g geom.Grid) *atomicTruth {
	return &atomicTruth{grid: g, cells: make([]atomic.Int32, g.Cells())}
}

// Add implements Truth.
func (t *atomicTruth) Add(x, y int, d int32) { t.cells[y*t.grid.Grids+x].Add(d) }

// At implements Truth.
func (t *atomicTruth) At(x, y int) int32 { return t.cells[y*t.grid.Grids+x].Load() }

// snapshot copies the current state into a plain cost array.
func (t *atomicTruth) snapshot() *costarray.CostArray {
	arr := costarray.New(t.grid)
	for y := 0; y < t.grid.Channels; y++ {
		for x := 0; x < t.grid.Grids; x++ {
			arr.Set(x, y, t.At(x, y))
		}
	}
	return arr
}

// liveNode is one goroutine processor.
type liveNode struct {
	id    int
	lr    *liveRun
	proto *Proto
	wires []int

	bytesByKind   map[msg.Kind]int64
	packetsByKind map[msg.Kind]int64
	cells         int64

	dones     int
	continues int
}

func newLiveNode(id int, lr *liveRun) *liveNode {
	proto := NewProto(id, lr.circ, lr.part, lr.cfg.Strategy, lr.cfg.Router)
	proto.Structure = lr.cfg.Packets
	proto.SetTruth(lr.truth)
	return &liveNode{
		id:            id,
		lr:            lr,
		proto:         proto,
		wires:         lr.asn.WiresOf(id),
		bytesByKind:   make(map[msg.Kind]int64),
		packetsByKind: make(map[msg.Kind]int64),
	}
}

func (n *liveNode) run() {
	st := n.lr.cfg.Strategy
	ahead := n.lr.cfg.RequestAhead
	for iter := 0; iter < n.lr.cfg.Router.Iterations; iter++ {
		if st.ReqRmtData > 0 {
			for k := 0; k < ahead && k < len(n.wires); k++ {
				n.transmit(n.proto.NoteUpcoming(n.wires[k]))
			}
		}
		for i, wi := range n.wires {
			n.drain()
			if st.ReqRmtData > 0 && i+ahead < len(n.wires) {
				n.transmit(n.proto.NoteUpcoming(n.wires[i+ahead]))
			}
			if st.Blocking {
				for n.proto.Outstanding > 0 {
					n.handle(<-n.lr.inboxes[n.id])
				}
			}
			stats := n.proto.RouteWire(wi, iter)
			n.lr.lastCost[wi] = stats.TrueCost
			n.cells += int64(stats.CellsExamined)
			n.transmit(n.proto.AfterWire())
		}
		n.barrier(iter)
	}
}

func (n *liveNode) drain() {
	for {
		select {
		case pkt := <-n.lr.inboxes[n.id]:
			n.handle(pkt)
		default:
			return
		}
	}
}

func (n *liveNode) transmit(outs []Outbound) {
	n.proto.TakeScanWork() // no compute model in the live runtime
	for _, out := range outs {
		n.send(out.To, out.Msg)
	}
}

func (n *liveNode) send(to int, m *msg.Message) {
	buf, err := m.Encode()
	if err != nil {
		panic(fmt.Sprintf("mp: live node %d encoding %v: %v", n.id, m.Kind, err))
	}
	n.bytesByKind[m.Kind] += int64(len(buf))
	n.packetsByKind[m.Kind]++
	n.lr.inboxes[to] <- livePacket{From: n.id, Buf: buf}
}

func (n *liveNode) handle(pkt livePacket) {
	m, err := msg.Decode(pkt.Buf)
	if err != nil {
		panic(fmt.Sprintf("mp: live node %d decoding packet from %d: %v", n.id, pkt.From, err))
	}
	switch m.Kind {
	case msg.KindDone:
		n.dones++
	case msg.KindContinue:
		n.continues++
	default:
		n.transmit(n.proto.Handle(pkt.From, m))
	}
}

func (n *liveNode) barrier(iter int) {
	if n.id == 0 {
		for n.dones < n.lr.cfg.Procs-1 {
			n.handle(<-n.lr.inboxes[n.id])
		}
		n.dones = 0
		for proc := 1; proc < n.lr.cfg.Procs; proc++ {
			n.send(proc, &msg.Message{Kind: msg.KindContinue, Seq: uint16(iter)})
		}
		return
	}
	n.send(0, &msg.Message{Kind: msg.KindDone, Seq: uint16(iter)})
	for n.continues <= iter {
		n.handle(<-n.lr.inboxes[n.id])
	}
}

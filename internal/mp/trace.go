package mp

import (
	"fmt"

	"locusroute/internal/msg"
	"locusroute/internal/obs"
	"locusroute/internal/tracev"
)

// ChromeOptions returns the Chrome-export options for an MP run's
// trace: a process label naming the run, and protocol-kind labels on
// send spans (tracev cannot name msg.Kind itself — it sits below msg in
// the import graph).
func ChromeOptions(circuitName string, procs int) tracev.ChromeOptions {
	return tracev.ChromeOptions{
		Process: fmt.Sprintf("mp-des %s x%d", circuitName, procs),
		ArgName: func(k tracev.Kind, arg int64) string {
			if k == tracev.KindSendPacket {
				return msg.Kind(arg).String()
			}
			return ""
		},
	}
}

// traceCat maps the obs.NodeClock taxonomy onto the trace category
// vocabulary. The node runtimes stamp a tracev Account at the exact call
// sites that drive the clock, so a trace's per-track Account stamps tile
// each node's life with the same partition the obs document aggregates —
// which is what lets the critical-path walk attribute every nanosecond.
func traceCat(cat obs.TimeCategory) tracev.Category {
	switch cat {
	case obs.TimeCompute:
		return tracev.CatCompute
	case obs.TimePacket:
		return tracev.CatPacket
	case obs.TimeBlocked:
		return tracev.CatBlocked
	default:
		return tracev.CatBarrier
	}
}

// CritPathDoc renders an analyzed critical path into its observability
// document section.
func CritPathDoc(cp *tracev.CriticalPath) *obs.CritPathDoc {
	doc := &obs.CritPathDoc{
		TotalNs:    cp.TotalNs,
		ComputeNs:  cp.ByCat[tracev.CatCompute],
		PacketNs:   cp.ByCat[tracev.CatPacket],
		BlockedNs:  cp.ByCat[tracev.CatBlocked],
		BarrierNs:  cp.ByCat[tracev.CatBarrier],
		NetworkNs:  cp.ByCat[tracev.CatNetwork],
		UntracedNs: cp.ByCat[tracev.CatUntraced],
		Hops:       cp.Hops,
		EndNode:    int(cp.EndTrack),
	}
	for _, s := range cp.Steps {
		doc.Steps = append(doc.Steps, obs.CritPathStep{
			Node:     int(s.Track),
			Category: s.Cat.String(),
			FromNs:   s.FromNs,
			ToNs:     s.ToNs,
			Wire:     s.Wire,
			FromNode: int(s.FromTrack),
			Bytes:    s.Bytes,
		})
	}
	return doc
}

package mp

import (
	"bytes"
	"encoding/json"
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/geom"
	"locusroute/internal/tracev"
)

// runTraced runs the small circuit on a 2x2 mesh with tracing enabled
// and returns the run result plus its tracer.
func runTraced(t *testing.T, st Strategy, strict bool) (Result, *tracev.Tracer) {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(st)
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	cfg.StrictOwnership = strict
	cfg.Trace = tracev.New(0)
	px, py := geom.SquarestFactors(cfg.Procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	if strict {
		asn = assign.AssignThreshold(c, part, assign.ThresholdInfinity)
	}
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.Trace
}

// TestTraceChromeDocumentStructure is the golden structural test: a tiny
// 2x2 mesh run must produce a Chrome trace-event document that parses,
// balances every span, resolves every flow arrow, and keeps per-track
// timestamps monotonic.
func TestTraceChromeDocumentStructure(t *testing.T) {
	_, tr := runTraced(t, SenderInitiated(2, 10), false)
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("small run overflowed the default ring (%d dropped)", tr.Dropped())
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, ChromeOptions("small", 4)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   json.Number     `json:"ts"`
			Tid  int32           `json:"tid"`
			ID   uint64          `json:"id"`
			Args map[string]any  `json:"args"`
			Raw  json.RawMessage `json:"-"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	depth := map[int32]int{}
	lastTS := map[int32]float64{}
	flowStarts := map[uint64]bool{}
	var spans, flows int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		ts, err := e.Ts.Float64()
		if err != nil {
			t.Fatalf("bad ts %q: %v", e.Ts, err)
		}
		if prev, ok := lastTS[e.Tid]; ok && ts < prev {
			t.Fatalf("track %d timestamps not monotonic: %v after %v", e.Tid, ts, prev)
		}
		lastTS[e.Tid] = ts
		switch e.Ph {
		case "B":
			depth[e.Tid]++
			spans++
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				t.Fatalf("track %d closes a span it never opened", e.Tid)
			}
		case "s":
			flowStarts[e.ID] = true
			flows++
		case "f":
			if !flowStarts[e.ID] {
				t.Fatalf("flow %d finishes without a start", e.ID)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("track %d has %d unclosed spans", tid, d)
		}
	}
	if spans == 0 {
		t.Error("no spans recorded")
	}
	if flows == 0 {
		t.Error("no packet flows recorded")
	}
}

// TestCriticalPathTotalEqualsSimTime checks the analyzer's core
// invariant on a real run: the walk attributes exactly the run's
// simulated time, and the category sums partition it.
func TestCriticalPathTotalEqualsSimTime(t *testing.T) {
	for _, tc := range []struct {
		name   string
		st     Strategy
		strict bool
	}{
		{"sender-initiated", SenderInitiated(2, 10), false},
		{"receiver-blocking", ReceiverInitiated(1, 5, true), false},
		{"strict-ownership", Strategy{}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, tr := runTraced(t, tc.st, tc.strict)
			cp, err := tracev.Analyze(tr.Events())
			if err != nil {
				t.Fatal(err)
			}
			if cp.TotalNs != int64(res.Time) {
				t.Errorf("critical path total %d != simulated time %d", cp.TotalNs, int64(res.Time))
			}
			var sum int64
			for _, ns := range cp.ByCat {
				sum += ns
			}
			if sum != cp.TotalNs {
				t.Errorf("categories sum to %d, want %d", sum, cp.TotalNs)
			}
			if len(cp.Steps) == 0 {
				t.Error("critical path has no steps")
			}
			if cp.ByCat[tracev.CatUntraced] != 0 {
				t.Errorf("untraced time %d on a fully retained trace", cp.ByCat[tracev.CatUntraced])
			}
		})
	}
}

// TestCriticalPathBlockingVsNonBlocking mirrors the paper's Section
// 5.1.3: a blocking schedule's critical path carries blocked time, a
// non-blocking schedule's carries exactly none (a non-blocking node
// never parks outside the barrier, so no blocked interval can exist on
// any path).
func TestCriticalPathBlockingVsNonBlocking(t *testing.T) {
	_, blockingTr := runTraced(t, ReceiverInitiated(1, 5, true), false)
	bp, err := tracev.Analyze(blockingTr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if bp.ByCat[tracev.CatBlocked] == 0 {
		t.Error("blocking schedule's critical path reports zero blocked time")
	}

	_, nonBlockingTr := runTraced(t, ReceiverInitiated(1, 5, false), false)
	np, err := tracev.Analyze(nonBlockingTr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if np.ByCat[tracev.CatBlocked] != 0 {
		t.Errorf("non-blocking schedule's critical path reports %d ns blocked", np.ByCat[tracev.CatBlocked])
	}
}

// TestTraceIsOutputNeutral: enabling tracing must not change the
// simulation by a single nanosecond or byte — the guarantee behind the
// byte-identical `paper -all` acceptance bar.
func TestTraceIsOutputNeutral(t *testing.T) {
	plain := runSmall(t, 4, ReceiverInitiated(1, 5, true))
	traced, _ := runTraced(t, ReceiverInitiated(1, 5, true), false)
	if plain.Time != traced.Time {
		t.Errorf("tracing changed simulated time: %v vs %v", plain.Time, traced.Time)
	}
	if plain.CircuitHeight != traced.CircuitHeight || plain.Occupancy != traced.Occupancy {
		t.Error("tracing changed routing quality")
	}
	if plain.Net.Bytes != traced.Net.Bytes || plain.Net.Packets != traced.Net.Packets {
		t.Error("tracing changed network traffic")
	}
}

// TestObsRunIncludesCritPath: the v2 schema's crit_path section appears
// when a run was traced and its totals match the analyzer.
func TestObsRunIncludesCritPath(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	cfg.Trace = tracev.New(0)
	px, py := geom.SquarestFactors(cfg.Procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := ObsRun("traced", "mp-des", "small", cfg, res)
	if run.CritPath == nil {
		t.Fatal("traced run document has no crit_path section")
	}
	if run.CritPath.TotalNs != int64(res.Time) {
		t.Errorf("crit_path total %d != sim time %d", run.CritPath.TotalNs, int64(res.Time))
	}
	if got := run.CritPath.ComputeNs + run.CritPath.PacketNs + run.CritPath.BlockedNs +
		run.CritPath.BarrierNs + run.CritPath.NetworkNs + run.CritPath.UntracedNs; got != run.CritPath.TotalNs {
		t.Errorf("crit_path categories sum to %d, want %d", got, run.CritPath.TotalNs)
	}
	if len(run.CritPath.Steps) == 0 {
		t.Error("crit_path has no steps")
	}

	// Untraced runs must not grow the section.
	cfg.Trace = nil
	if plain := ObsRun("plain", "mp-des", "small", cfg, res); plain.CritPath != nil {
		t.Error("untraced run document has a crit_path section")
	}
}

// TestRunLiveRejectsTrace: tracing records simulated time; the live
// runtime must refuse it rather than emit a meaningless trace.
func TestRunLiveRejectsTrace(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.Router.Iterations = 1
	cfg.Trace = tracev.New(0)
	px, py := geom.SquarestFactors(cfg.Procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	if _, err := RunLive(c, asn, cfg); err == nil {
		t.Fatal("RunLive accepted a tracer")
	}
}

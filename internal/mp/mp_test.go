package mp

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/route"
)

// smallCircuit builds a quick circuit for unit tests.
func smallCircuit(seed int64) *circuit.Circuit {
	return circuit.MustGenerate(circuit.GenParams{
		Name: "small", Channels: 8, Grids: 64, Wires: 60, MeanSpan: 10,
		LongFrac: 0.1, Seed: seed,
	})
}

func runSmall(t *testing.T, procs int, st Strategy) Result {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(st)
	cfg.Procs = procs
	cfg.Router.Iterations = 2
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSingleProcessorMatchesSequentialQuality(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig(Strategy{})
	cfg.Procs = 1
	cfg.Router.Iterations = 2
	part, _ := geom.NewPartition(c.Grid, 1, 1)
	asn := assign.AssignRoundRobin(c, part)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := route.Sequential(c, cfg.Router)
	if res.CircuitHeight != seq.CircuitHeight {
		t.Errorf("1-proc MP height %d != sequential %d", res.CircuitHeight, seq.CircuitHeight)
	}
	if res.Occupancy != seq.Occupancy {
		t.Errorf("1-proc MP occupancy %d != sequential %d", res.Occupancy, seq.Occupancy)
	}
	if res.UpdateBytes != 0 {
		t.Errorf("1-proc run moved %d update bytes", res.UpdateBytes)
	}
}

func TestRunSenderInitiated(t *testing.T) {
	res := runSmall(t, 4, SenderInitiated(2, 5))
	if res.CircuitHeight <= 0 {
		t.Errorf("height = %d", res.CircuitHeight)
	}
	if res.Time <= 0 {
		t.Errorf("time = %v", res.Time)
	}
	if res.BytesByKind[msg.KindSendRmtData] == 0 {
		t.Errorf("sender initiated run produced no SendRmtData traffic")
	}
	if res.BytesByKind[msg.KindSendLocData] == 0 {
		t.Errorf("sender initiated run produced no SendLocData traffic")
	}
	if res.BytesByKind[msg.KindReqRmtData] != 0 {
		t.Errorf("pure sender initiated run produced request traffic")
	}
}

func TestRunReceiverInitiated(t *testing.T) {
	res := runSmall(t, 4, ReceiverInitiated(2, 3, false))
	if res.BytesByKind[msg.KindReqRmtData] == 0 {
		t.Errorf("no ReqRmtData traffic")
	}
	if res.PacketsByKind[msg.KindRspRmtData] != res.PacketsByKind[msg.KindReqRmtData] {
		t.Errorf("every request must be answered: req=%d rsp=%d",
			res.PacketsByKind[msg.KindReqRmtData], res.PacketsByKind[msg.KindRspRmtData])
	}
	if res.BytesByKind[msg.KindSendLocData] != 0 {
		t.Errorf("pure receiver initiated run produced SendLocData traffic")
	}
	// ReqLocData enabled: some pull-home traffic should exist.
	if res.PacketsByKind[msg.KindReqLocData] == 0 {
		t.Errorf("ReqLocData=2 produced no pull requests")
	}
}

func TestRunBlockingCompletesAndIsSlower(t *testing.T) {
	nb := runSmall(t, 4, ReceiverInitiated(0, 2, false))
	bl := runSmall(t, 4, ReceiverInitiated(0, 2, true))
	if bl.Time < nb.Time {
		t.Errorf("blocking (%v) should not be faster than non-blocking (%v)", bl.Time, nb.Time)
	}
}

func TestRunMixedStrategy(t *testing.T) {
	res := runSmall(t, 4, Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5})
	for _, k := range []msg.Kind{msg.KindSendLocData, msg.KindSendRmtData, msg.KindReqRmtData} {
		if res.PacketsByKind[k] == 0 {
			t.Errorf("mixed strategy produced no %v packets", k)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, 4, SenderInitiated(2, 5))
	b := runSmall(t, 4, SenderInitiated(2, 5))
	if a.CircuitHeight != b.CircuitHeight || a.Occupancy != b.Occupancy ||
		a.Time != b.Time || a.Net.Bytes != b.Net.Bytes {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunNoUpdatesStillTerminates(t *testing.T) {
	// With every mechanism disabled, nodes route on permanently stale
	// views; the run must still terminate with only barrier traffic.
	res := runSmall(t, 4, Strategy{})
	if res.UpdateBytes != 0 {
		t.Errorf("no-update run moved %d update bytes", res.UpdateBytes)
	}
	if res.Net.Bytes == 0 {
		t.Errorf("barrier traffic must exist on 4 processors")
	}
	if res.CircuitHeight <= 0 {
		t.Errorf("routing must still complete")
	}
}

func TestMoreFrequentSenderUpdatesMoreTraffic(t *testing.T) {
	frequent := runSmall(t, 4, SenderInitiated(1, 1))
	rare := runSmall(t, 4, SenderInitiated(10, 20))
	if frequent.UpdateBytes <= rare.UpdateBytes {
		t.Errorf("frequent updates (%d B) must outweigh rare updates (%d B)",
			frequent.UpdateBytes, rare.UpdateBytes)
	}
}

func TestSenderTrafficExceedsReceiverTraffic(t *testing.T) {
	// The paper's headline shape: sender initiated traffic is roughly an
	// order of magnitude above receiver initiated traffic.
	snd := runSmall(t, 4, SenderInitiated(2, 5))
	rcv := runSmall(t, 4, ReceiverInitiated(1, 5, false))
	if snd.UpdateBytes <= rcv.UpdateBytes {
		t.Errorf("sender traffic (%d B) must exceed receiver traffic (%d B)",
			snd.UpdateBytes, rcv.UpdateBytes)
	}
}

func TestRunValidation(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignRoundRobin(c, part)
	cfg := DefaultConfig(Strategy{})
	cfg.Procs = 9 // mismatch with the 4-processor assignment
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("processor-count mismatch must fail")
	}
	cfg.Procs = 0
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("zero processors must fail")
	}
}

func TestQualityDegradesWithMoreProcessors(t *testing.T) {
	// Section 5.4: more simultaneous routing means less accurate
	// information and poorer quality. Compare 1 vs 16 processors on a
	// moderate schedule; allow equality for small circuits but not
	// improvement beyond noise.
	one := runSmall(t, 1, SenderInitiated(10, 10))
	sixteen := runSmall(t, 16, SenderInitiated(10, 10))
	if sixteen.CircuitHeight < one.CircuitHeight-2 {
		t.Errorf("16-proc height %d markedly better than 1-proc %d — staleness model broken",
			sixteen.CircuitHeight, one.CircuitHeight)
	}
	if sixteen.Time >= one.Time {
		t.Errorf("16 processors (%v) must be faster than 1 (%v)", sixteen.Time, one.Time)
	}
}

func TestBusyAndFinishTimesConsistent(t *testing.T) {
	res := runSmall(t, 4, SenderInitiated(5, 5))
	if res.BusyTime < res.Time {
		t.Errorf("summed finish times (%v) must be at least the makespan (%v)",
			res.BusyTime, res.Time)
	}
}

func TestMessageFractionGrowsWithUpdateFrequency(t *testing.T) {
	// The paper observes packet assembly/disassembly reaching about a
	// quarter of processing time under the most frequent schedules.
	frequent := runSmall(t, 4, SenderInitiated(1, 1))
	rare := runSmall(t, 4, SenderInitiated(10, 20))
	if frequent.MessageFraction() <= rare.MessageFraction() {
		t.Errorf("frequent updates fraction %.3f must exceed rare %.3f",
			frequent.MessageFraction(), rare.MessageFraction())
	}
	if frequent.MessageFraction() <= 0 || frequent.MessageFraction() >= 1 {
		t.Errorf("message fraction %.3f out of range", frequent.MessageFraction())
	}
	if frequent.RouteTime <= 0 {
		t.Errorf("route time must be accounted")
	}
}

package mp

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/route"
)

func runLiveSmall(t *testing.T, procs int, st Strategy) Result {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(st)
	cfg.Procs = procs
	cfg.Router.Iterations = 2
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	res, err := RunLive(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLiveSingleProcessorMatchesSequential(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig(Strategy{})
	cfg.Procs = 1
	cfg.Router.Iterations = 2
	part, _ := geom.NewPartition(c.Grid, 1, 1)
	asn := assign.AssignRoundRobin(c, part)
	res, err := RunLive(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := route.Sequential(c, cfg.Router)
	if res.CircuitHeight != seq.CircuitHeight {
		t.Errorf("1-proc live height %d != sequential %d", res.CircuitHeight, seq.CircuitHeight)
	}
	if res.Occupancy != seq.Occupancy {
		t.Errorf("1-proc live occupancy %d != sequential %d", res.Occupancy, seq.Occupancy)
	}
}

func TestLiveSenderInitiatedCompletes(t *testing.T) {
	res := runLiveSmall(t, 4, SenderInitiated(2, 5))
	if res.CircuitHeight <= 0 {
		t.Errorf("height = %d", res.CircuitHeight)
	}
	if res.BytesByKind[msg.KindSendRmtData] == 0 || res.BytesByKind[msg.KindSendLocData] == 0 {
		t.Errorf("sender traffic missing: %v", res.BytesByKind)
	}
}

func TestLiveReceiverInitiatedCompletes(t *testing.T) {
	res := runLiveSmall(t, 4, ReceiverInitiated(1, 5, false))
	if res.PacketsByKind[msg.KindRspRmtData] != res.PacketsByKind[msg.KindReqRmtData] {
		t.Errorf("requests %d != responses %d",
			res.PacketsByKind[msg.KindReqRmtData], res.PacketsByKind[msg.KindRspRmtData])
	}
}

func TestLiveBlockingCompletes(t *testing.T) {
	res := runLiveSmall(t, 4, ReceiverInitiated(1, 3, true))
	if res.CircuitHeight <= 0 {
		t.Errorf("blocking live run failed to complete")
	}
}

func TestLiveMixedCompletes(t *testing.T) {
	res := runLiveSmall(t, 9, Strategy{SendLocData: 5, SendRmtData: 2, ReqLocData: 1, ReqRmtData: 5})
	if res.CircuitHeight <= 0 {
		t.Errorf("mixed live run failed to complete")
	}
	if res.UpdateBytes <= 0 {
		t.Errorf("mixed live run moved no update bytes")
	}
}

func TestLiveQualityComparableToDES(t *testing.T) {
	// The live runtime drives the same protocol; scheduling differs
	// (real concurrency vs virtual time), so quality will not be
	// identical, but it must be in the same band.
	st := SenderInitiated(2, 5)
	des := runSmall(t, 4, st)
	live := runLiveSmall(t, 4, st)
	lo, hi := float64(des.CircuitHeight)*0.8, float64(des.CircuitHeight)*1.2
	if float64(live.CircuitHeight) < lo || float64(live.CircuitHeight) > hi {
		t.Errorf("live height %d far from DES height %d", live.CircuitHeight, des.CircuitHeight)
	}
}

func TestLiveTrafficOrderingMatchesDES(t *testing.T) {
	snd := runLiveSmall(t, 4, SenderInitiated(2, 5))
	rcv := runLiveSmall(t, 4, ReceiverInitiated(1, 5, false))
	if snd.UpdateBytes <= rcv.UpdateBytes {
		t.Errorf("live sender traffic %d must exceed receiver traffic %d",
			snd.UpdateBytes, rcv.UpdateBytes)
	}
}

func TestLiveValidation(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignRoundRobin(c, part)
	cfg := DefaultConfig(Strategy{})
	cfg.Procs = 16 // mismatch
	if _, err := RunLive(c, asn, cfg); err == nil {
		t.Errorf("processor-count mismatch must fail")
	}
}

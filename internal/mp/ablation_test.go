package mp

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
)

func runAblation(t *testing.T, mutate func(*Config)) Result {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	mutate(&cfg)
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, 1000)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPacketStructureWholeRegionCostsMore(t *testing.T) {
	bbox := runAblation(t, func(cfg *Config) { cfg.Packets = StructureBbox })
	whole := runAblation(t, func(cfg *Config) { cfg.Packets = StructureWholeRegion })
	// The paper: the whole-region structure "uses a large number of
	// bytes" compared to the bounding box of changes.
	if whole.UpdateBytes <= bbox.UpdateBytes {
		t.Errorf("whole-region traffic %d must exceed bbox traffic %d",
			whole.UpdateBytes, bbox.UpdateBytes)
	}
	// Quality is unaffected: both deliver the same information.
	lo, hi := bbox.CircuitHeight-3, bbox.CircuitHeight+3
	if whole.CircuitHeight < lo || whole.CircuitHeight > hi {
		t.Errorf("whole-region quality %d far from bbox quality %d",
			whole.CircuitHeight, bbox.CircuitHeight)
	}
}

func TestPacketStructureWireBasedLosesCancellation(t *testing.T) {
	bbox := runAblation(t, func(cfg *Config) { cfg.Packets = StructureBbox })
	wires := runAblation(t, func(cfg *Config) { cfg.Packets = StructureWireBased })
	if wires.PacketsByKind[msg.KindSendRmtWire] == 0 {
		t.Fatalf("wire-based run produced no wire packets")
	}
	if wires.PacketsByKind[msg.KindSendRmtData] != 0 {
		t.Errorf("wire-based run must not produce bbox delta packets")
	}
	// Wire-based sends every rip-up and reroute separately: far more
	// packets than the cancelling bbox structure.
	if wires.Net.Packets <= bbox.Net.Packets {
		t.Errorf("wire-based packets %d must exceed bbox packets %d",
			wires.Net.Packets, bbox.Net.Packets)
	}
	if wires.CircuitHeight <= 0 {
		t.Errorf("wire-based run must still complete")
	}
}

func TestPacketStructureValidation(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignRoundRobin(c, part)
	cfg := DefaultConfig(ReceiverInitiated(1, 5, false))
	cfg.Procs = 4
	cfg.Packets = StructureWireBased
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("non-bbox structures must reject receiver initiated schedules")
	}
}

func TestDynamicWiresCompletes(t *testing.T) {
	res := runAblation(t, func(cfg *Config) { cfg.DynamicWires = true })
	if res.CircuitHeight <= 0 {
		t.Fatalf("dynamic run did not complete: %+v", res)
	}
	if res.PacketsByKind[msg.KindReqWire] == 0 || res.PacketsByKind[msg.KindWireGrant] == 0 {
		t.Errorf("dynamic run must move wire distribution packets: %v", res.PacketsByKind)
	}
	// Every request is answered.
	if res.PacketsByKind[msg.KindReqWire] != res.PacketsByKind[msg.KindWireGrant] {
		t.Errorf("requests %d != grants %d",
			res.PacketsByKind[msg.KindReqWire], res.PacketsByKind[msg.KindWireGrant])
	}
}

func TestDynamicWiresTradeoffs(t *testing.T) {
	static := runAblation(t, func(cfg *Config) {})
	dynamic := runAblation(t, func(cfg *Config) { cfg.DynamicWires = true })
	// Dynamic distribution abandons locality (and a wire may be ripped
	// up by a processor that never saw it routed), so quality must not
	// beat the locality-assigned static run.
	if dynamic.CircuitHeight < static.CircuitHeight-2 {
		t.Errorf("dynamic quality %d should not beat static %d",
			dynamic.CircuitHeight, static.CircuitHeight)
	}
	// The distribution itself costs network traffic the static scheme
	// does not pay.
	reqBytes := dynamic.BytesByKind[msg.KindReqWire] + dynamic.BytesByKind[msg.KindWireGrant]
	if reqBytes == 0 {
		t.Errorf("dynamic distribution must pay request/grant traffic")
	}
}

func TestDynamicWiresRoutesEveryWire(t *testing.T) {
	res := runAblation(t, func(cfg *Config) { cfg.DynamicWires = true })
	// 60 wires x 2 iterations; every wire's occupancy slot must be set.
	if res.Occupancy <= 0 {
		t.Errorf("occupancy = %d", res.Occupancy)
	}
}

func TestDynamicWiresRejectedByLiveRuntime(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignRoundRobin(c, part)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.DynamicWires = true
	if _, err := RunLive(c, asn, cfg); err == nil {
		t.Errorf("live runtime must reject dynamic wire assignment")
	}
}

func TestDynamicWiresRejectsReceiverInitiated(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignRoundRobin(c, part)
	cfg := DefaultConfig(ReceiverInitiated(1, 5, false))
	cfg.Procs = 4
	cfg.DynamicWires = true
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("dynamic assignment cannot support lookahead requests")
	}
}

func TestTopologyHypercube(t *testing.T) {
	mesh2d := runAblation(t, func(cfg *Config) {})
	cube := runAblation(t, func(cfg *Config) { cfg.Topology = []int{2, 2} })
	hyper := runAblation(t, func(cfg *Config) { cfg.Topology = []int{2, 2} })
	// [2,2] cube must agree exactly with the 2x2 mesh (same topology).
	if cube.Time != mesh2d.Time || cube.Net.Bytes != mesh2d.Net.Bytes {
		t.Errorf("2x2 cube differs from 2x2 mesh: %v/%d vs %v/%d",
			cube.Time, cube.Net.Bytes, mesh2d.Time, mesh2d.Net.Bytes)
	}
	if hyper.CircuitHeight != cube.CircuitHeight {
		t.Errorf("same topology must give identical quality")
	}
	// Mismatched topology product must fail.
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := DefaultConfig(SenderInitiated(2, 10))
	cfg.Procs = 4
	cfg.Topology = []int{3, 3}
	if _, err := Run(c, asn, cfg); err == nil {
		t.Errorf("topology/procs mismatch must fail")
	}
}

package mp

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/geom"
	"locusroute/internal/msg"
	"locusroute/internal/obs"
)

// runObserved executes a small observed DES run and returns the config
// (with its observer) and the result.
func runObserved(t *testing.T, procs int, st Strategy, threshold int, mutate func(*Config)) (Config, Result) {
	t.Helper()
	c := smallCircuit(1)
	cfg := DefaultConfig(st)
	cfg.Procs = procs
	cfg.Router.Iterations = 2
	cfg.Obs = obs.NewMP(procs)
	if mutate != nil {
		mutate(&cfg)
	}
	px, py := geom.SquarestFactors(procs)
	part, err := geom.NewPartition(c.Grid, px, py)
	if err != nil {
		t.Fatal(err)
	}
	asn := assign.AssignThreshold(c, part, threshold)
	res, err := Run(c, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, res
}

func TestNodeTimeBreakdownSums(t *testing.T) {
	// The four categories must partition each node's simulated life: they
	// sum to the node's total, and the slowest node's total is exactly
	// the run's simulated time (nothing unaccounted at either end).
	cases := []struct {
		name   string
		st     Strategy
		thresh int
		mutate func(*Config)
	}{
		{"sender initiated", SenderInitiated(2, 5), 1000, nil},
		{"receiver blocking", ReceiverInitiated(1, 5, true), 1000, nil},
		{"strict ownership", Strategy{}, assign.ThresholdInfinity,
			func(c *Config) { c.StrictOwnership = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, res := runObserved(t, 4, tc.st, tc.thresh, tc.mutate)
			times := cfg.Obs.NodeTimes()
			if len(times) != 4 {
				t.Fatalf("NodeTimes returned %d entries, want 4", len(times))
			}
			var maxTotal int64
			for _, nt := range times {
				sum := nt.ComputeNs + nt.PacketNs + nt.BlockedNs + nt.BarrierNs
				if sum != nt.TotalNs {
					t.Errorf("node %d: categories sum to %d, total %d", nt.Node, sum, nt.TotalNs)
				}
				if nt.TotalNs <= 0 {
					t.Errorf("node %d: no simulated time accounted", nt.Node)
				}
				if nt.ComputeNs <= 0 {
					t.Errorf("node %d: no compute time — every node routes wires", nt.Node)
				}
				if nt.TotalNs > maxTotal {
					maxTotal = nt.TotalNs
				}
			}
			if maxTotal != int64(res.Time) {
				t.Errorf("slowest node accounted %d ns, run finished at %d ns — time leaked",
					maxTotal, int64(res.Time))
			}
		})
	}
}

func TestBlockedTimeOnlyWhenBlocking(t *testing.T) {
	// Blocking receiver initiated runs park on outstanding responses
	// (TimeBlocked); non-blocking ones only ever park at the barrier.
	blocked := func(cfg Config) int64 {
		var total int64
		for _, nt := range cfg.Obs.NodeTimes() {
			total += nt.BlockedNs
		}
		return total
	}
	cfgNB, _ := runObserved(t, 4, ReceiverInitiated(1, 5, false), 1000, nil)
	if b := blocked(cfgNB); b != 0 {
		t.Errorf("non-blocking run accounted %d ns blocked outside the barrier", b)
	}
	cfgBL, _ := runObserved(t, 4, ReceiverInitiated(1, 5, true), 1000, nil)
	if b := blocked(cfgBL); b == 0 {
		t.Errorf("blocking run accounted no blocked time")
	}
}

func TestObserverRecordsNetworkHistograms(t *testing.T) {
	cfg, res := runObserved(t, 4, SenderInitiated(2, 5), 1000, nil)
	rec := cfg.Obs.NetRecorder()
	if rec.Latency.Count() != res.Net.Packets {
		t.Errorf("latency observations %d != link-crossing packets %d",
			rec.Latency.Count(), res.Net.Packets)
	}
	if rec.QueueDepth.Count() == 0 {
		t.Errorf("no queue depths observed")
	}
	doc := ObsRun("test", "mp-des", "small", cfg, res)
	if doc.Network == nil || doc.Network.Latency == nil {
		t.Fatalf("ObsRun must carry the latency histogram")
	}
	if doc.Network.Packets != res.Net.Packets {
		t.Errorf("network doc packets %d != result %d", doc.Network.Packets, res.Net.Packets)
	}
	if len(doc.Messages) == 0 {
		t.Errorf("sender initiated run must report per-kind message counts")
	}
}

func TestNoRuntimeSelfSends(t *testing.T) {
	// The mesh now accounts from==to deliveries separately (SelfPackets);
	// no protocol or runtime path should ever send to itself, so the
	// self counters pin at zero across every configuration family.
	cases := []struct {
		name   string
		st     Strategy
		thresh int
		mutate func(*Config)
	}{
		{"sender initiated", SenderInitiated(2, 5), 1000, nil},
		{"receiver blocking", ReceiverInitiated(1, 5, true), 1000, nil},
		{"dynamic wires", SenderInitiated(2, 5), 1000,
			func(c *Config) { c.DynamicWires = true }},
		{"wire-based packets", SenderInitiated(2, 5), 1000,
			func(c *Config) { c.Packets = StructureWireBased }},
		{"whole-region packets", SenderInitiated(2, 5), 1000,
			func(c *Config) { c.Packets = StructureWholeRegion }},
		{"strict ownership", Strategy{}, assign.ThresholdInfinity,
			func(c *Config) { c.StrictOwnership = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, res := runObserved(t, 4, tc.st, tc.thresh, tc.mutate)
			if res.Net.SelfPackets != 0 || res.Net.SelfBytes != 0 {
				t.Errorf("runtime self-sent %d packets / %d bytes — these would have inflated link stats before the split",
					res.Net.SelfPackets, res.Net.SelfBytes)
			}
		})
	}
}

func TestLiveRunRecordsPhases(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig(SenderInitiated(2, 5))
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	cfg.Obs = obs.NewMP(cfg.Procs)
	part, err := geom.NewPartition(c.Grid, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(c, assign.AssignThreshold(c, part, 1000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	phases := cfg.Obs.PhaseDocs()
	if len(phases) != 2 || phases[0].Name != "route" || phases[1].Name != "reduce" {
		t.Fatalf("live phases = %+v, want route then reduce", phases)
	}
	doc := ObsRun("test", "mp-live", c.Name, cfg, res)
	if len(doc.Phases) != 2 {
		t.Errorf("ObsRun dropped the phases")
	}
}

func TestSendRmtWireMarksOnlyOwnedRegion(t *testing.T) {
	// Regression: a SendRmtWire run that strays outside the receiver's
	// region must only mark the in-region part as own-dirty. Marking
	// non-owned cells would make a later SendLocData broadcast push the
	// receiver's (stale) values for cells it does not own as absolute
	// data, corrupting neighbours' views.
	f := newProtoFixture(t, SenderInitiated(2, 1))
	p := f.ps[0]
	p.Structure = StructureWireBased
	own := f.part.Region(0)
	// A horizontal run starting inside region 0 and continuing into the
	// neighbouring region.
	run := geom.Rect{X0: own.X1 - 2, Y0: own.Y0, X1: own.X1 + 2, Y1: own.Y0 + 1}
	if run.Intersect(own).Empty() {
		t.Fatalf("test run %v must overlap own region %v", run, own)
	}
	p.Handle(1, &msg.Message{Kind: msg.KindSendRmtWire, Region: run, Seq: msg.WireFlagRoute})
	if p.ownDirty.Empty() {
		t.Fatalf("the in-region part of the run must become own-dirty")
	}
	if got := p.ownDirty.Intersect(own); got != p.ownDirty {
		t.Errorf("ownDirty %v leaks outside own region %v", p.ownDirty, own)
	}
	// Any broadcast the mark triggers must stay within the own region.
	for _, o := range p.broadcastOwnRegion() {
		if !own.ContainsRect(o.Msg.Region) {
			t.Errorf("SendLocData region %v escapes own region %v", o.Msg.Region, own)
		}
	}
}

func TestSendRmtWireFullyRemoteRunMarksNothing(t *testing.T) {
	// A run entirely outside the receiver's region updates the view but
	// must not create own-dirty state.
	f := newProtoFixture(t, SenderInitiated(2, 1))
	p := f.ps[0]
	p.Structure = StructureWireBased
	remote := f.part.Region(3)
	run := geom.Rect{X0: remote.X0, Y0: remote.Y0, X1: remote.X0 + 3, Y1: remote.Y0 + 1}
	p.Handle(3, &msg.Message{Kind: msg.KindSendRmtWire, Region: run, Seq: msg.WireFlagRoute})
	if !p.ownDirty.Empty() {
		t.Errorf("fully remote run marked ownDirty %v", p.ownDirty)
	}
	if p.View().At(run.X0, run.Y0) != 1 {
		t.Errorf("view must still apply the remote run")
	}
}

// Package par is the parallel experiment driver's concurrency substrate:
// a bounded worker pool plus a submission-ordered fan-out primitive.
//
// The design separates structure from capacity. Gather expresses the
// shape of a fan-out — one goroutine per independent unit of work, with
// results merged in submission order, never completion order — and is
// deliberately unbounded: structural goroutines are cheap and may nest
// (a table fans out rows; a robustness sweep fans out seeds that fan out
// tables). Pool bounds how many heavy leaf computations (DES runs,
// traced routings, cache replays) execute at once; only leaves acquire
// slots, so nested fan-outs cannot deadlock on a full pool.
//
// Determinism: because Gather writes result i from exactly one goroutine
// into slot i and reports the smallest-index error, a fan-out's outcome
// is a pure function of its inputs regardless of the pool's capacity or
// the scheduler's interleaving. This is what keeps `paper -all` byte-
// identical between -par 1 and -par N.
package par

import (
	"runtime"
	"sync"
)

// Pool bounds the number of concurrently executing heavy tasks. A nil
// *Pool applies no bound (every Run executes immediately), which callers
// use for "unlimited" rather than as a serial mode: serial execution is
// New(1).
type Pool struct {
	sem chan struct{}
}

// New returns a pool allowing n concurrent tasks; n < 1 means
// GOMAXPROCS.
func New(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Workers returns the pool's capacity (0 for a nil pool: unbounded).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// Run executes fn while holding one worker slot, blocking until one is
// free. Only leaf computations may call Run: holding a slot while
// waiting on another Run (directly or through a Gather of gated tasks)
// can deadlock a full pool.
func (p *Pool) Run(fn func()) {
	if p == nil {
		fn()
		return
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// A Gate bounds how many branches of a structural fan-out are in flight
// at once. It exists for memory, not CPU: Gather goroutines are cheap,
// but a branch that has *started* pins its intermediate state (reference
// traces, cache simulators, partially gathered rows) until it finishes.
// When every branch starts immediately and a small pool interleaves
// their leaves, no branch finishes until near the end of the run, and
// peak live heap becomes the sum over all branches rather than a rolling
// window of pool-many. Entering heavy branches through a Gate sized to
// the pool restores the rolling window.
//
// Acquisition must be strictly hierarchical: each fan-out level uses its
// own Gate, taken once around the whole branch. Nesting distinct Gates
// is fine; re-entering the same Gate from inside a held branch can
// deadlock, exactly like Pool.Run.
type Gate chan struct{}

// NewGate returns a gate admitting n concurrent branches. n < 1 returns
// a nil gate, which admits everything — the right behaviour when the
// pool itself is nil/unbounded.
func NewGate(n int) Gate {
	if n < 1 {
		return nil
	}
	return make(Gate, n)
}

// Enter blocks until the gate admits another branch.
func (g Gate) Enter() {
	if g != nil {
		g <- struct{}{}
	}
}

// TryEnter admits a branch only if the gate has a free slot, returning
// whether it was admitted. Servers use it as the non-blocking admission
// check: a full gate means shed the request instead of queueing it.
func (g Gate) TryEnter() bool {
	if g == nil {
		return true
	}
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

// InFlight returns the number of currently admitted branches (0 for a
// nil gate), a gauge for admission metrics.
func (g Gate) InFlight() int { return len(g) }

// Leave releases a branch admitted by Enter.
func (g Gate) Leave() {
	if g != nil {
		<-g
	}
}

// Gather runs fn(i, items[i]) for every item on its own goroutine and
// returns the results in item order. All tasks run to completion even
// when some fail; the returned error is the one with the smallest index,
// so error selection is as deterministic as the results. Gather itself
// is unbounded — bound the heavy inner work with Pool.Run.
func Gather[T, R any](items []T, fn func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = fn(i, items[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestGatherPreservesSubmissionOrder checks results land in item order no
// matter how the scheduler interleaves the tasks.
func TestGatherPreservesSubmissionOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for trial := 0; trial < 10; trial++ {
		out, err := Gather(items, func(i, v int) (string, error) {
			return fmt.Sprintf("%d*2=%d", v, v*2), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d*2=%d", i, i*2); s != want {
				t.Fatalf("trial %d slot %d = %q, want %q", trial, i, s, want)
			}
		}
	}
}

// TestGatherReturnsSmallestIndexError checks error selection is
// deterministic: the error of the smallest failing index wins, not the
// first to complete.
func TestGatherReturnsSmallestIndexError(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	var completed atomic.Int32
	_, err := Gather(make([]struct{}, 10), func(i int, _ struct{}) (int, error) {
		defer completed.Add(1)
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if err != e3 {
		t.Errorf("err = %v, want the smallest-index error %v", err, e3)
	}
	if completed.Load() != 10 {
		t.Errorf("only %d tasks completed; all must run even when some fail", completed.Load())
	}
}

// TestPoolBoundsConcurrency checks no more than Workers() gated tasks run
// at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	const limit, tasks = 3, 50
	p := New(limit)
	if p.Workers() != limit {
		t.Fatalf("Workers = %d, want %d", p.Workers(), limit)
	}
	var running, peak atomic.Int32
	_, err := Gather(make([]struct{}, tasks), func(i int, _ struct{}) (struct{}, error) {
		p.Run(func() {
			now := running.Add(1)
			for {
				old := peak.Load()
				if now <= old || peak.CompareAndSwap(old, now) {
					break
				}
			}
			running.Add(-1)
		})
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Errorf("peak concurrency %d exceeds pool limit %d", got, limit)
	}
}

// TestNilPoolRunsUnbounded checks a nil pool executes without gating.
func TestNilPoolRunsUnbounded(t *testing.T) {
	var p *Pool
	if p.Workers() != 0 {
		t.Errorf("nil pool Workers = %d, want 0", p.Workers())
	}
	ran := false
	p.Run(func() { ran = true })
	if !ran {
		t.Errorf("nil pool must still run the task")
	}
}

// TestNewDefaultsToGOMAXPROCS checks the n<1 default.
func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Errorf("New(0) must default to at least one worker")
	}
	if New(-5).Workers() < 1 {
		t.Errorf("New(-5) must default to at least one worker")
	}
}

// TestGateBoundsBranches checks no more than n entered branches are in
// flight, and that a nil gate (n < 1) admits everything.
func TestGateBoundsBranches(t *testing.T) {
	const limit, branches = 2, 40
	g := NewGate(limit)
	var inFlight, peak atomic.Int32
	_, err := Gather(make([]struct{}, branches), func(i int, _ struct{}) (struct{}, error) {
		g.Enter()
		defer g.Leave()
		now := inFlight.Add(1)
		for {
			old := peak.Load()
			if now <= old || peak.CompareAndSwap(old, now) {
				break
			}
		}
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Errorf("peak in-flight branches %d exceeds gate limit %d", got, limit)
	}

	nilGate := NewGate(0)
	if nilGate != nil {
		t.Errorf("NewGate(0) = %v, want nil (unbounded)", nilGate)
	}
	nilGate.Enter() // must not block or panic
	nilGate.Leave()
}

// TestGatherEmpty checks the degenerate fan-out.
func TestGatherEmpty(t *testing.T) {
	out, err := Gather(nil, func(i int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty gather = %v, %v", out, err)
	}
}

// TestGateTryEnter checks the non-blocking admission path: a full gate
// refuses instead of queueing, and the in-flight gauge tracks entries.
func TestGateTryEnter(t *testing.T) {
	g := NewGate(2)
	if !g.TryEnter() || !g.TryEnter() {
		t.Fatal("empty gate refused admission")
	}
	if g.InFlight() != 2 {
		t.Errorf("in-flight = %d, want 2", g.InFlight())
	}
	if g.TryEnter() {
		t.Error("full gate admitted a branch")
	}
	g.Leave()
	if !g.TryEnter() {
		t.Error("gate with a free slot refused admission")
	}

	var nilGate Gate
	if !nilGate.TryEnter() {
		t.Error("nil gate must admit everything")
	}
	if nilGate.InFlight() != 0 {
		t.Errorf("nil gate in-flight = %d, want 0", nilGate.InFlight())
	}
}

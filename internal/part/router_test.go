package part

import (
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/par"
	"locusroute/internal/route"
)

func genCircuit(t testing.TB, gen func(int64) circuit.GenParams, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(gen(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPartitionsOneMatchesSequential is the equivalence pin of the
// issue: with one partition the tree is a single leaf holding every
// wire in ID order, so the driver must reproduce route.Sequential's
// result and final cost array byte-for-byte — across multiple seeds and
// both benchmark shapes.
func TestPartitionsOneMatchesSequential(t *testing.T) {
	for _, gen := range []struct {
		name string
		fn   func(int64) circuit.GenParams
	}{{"bnrE", circuit.BnrELike}, {"MDC", circuit.MDCLike}} {
		for _, seed := range []int64{1, 2, 3} {
			c := genCircuit(t, gen.fn, seed)
			params := route.DefaultParams()
			wantRes, wantArr := route.Sequential(c, params)
			gotRes, gotArr, st, err := Route(c, params, Config{Partitions: 1})
			if err != nil {
				t.Fatalf("%s seed %d: %v", gen.name, seed, err)
			}
			if gotRes != wantRes {
				t.Errorf("%s seed %d: result %+v, sequential %+v", gen.name, seed, gotRes, wantRes)
			}
			if !gotArr.Equal(wantArr) {
				t.Errorf("%s seed %d: cost arrays differ", gen.name, seed)
			}
			if st.Partitions != 1 || st.BoundaryWires != 0 || st.Depth != 0 {
				t.Errorf("%s seed %d: single-leaf stats %+v", gen.name, seed, st)
			}
		}
	}
}

// TestDeterministicAcrossWorkers pins the scheduling-independence
// argument: the routing is a pure function of (circuit, params,
// partitions), so any worker-pool capacity — including none — must
// produce identical results and identical cost arrays.
func TestDeterministicAcrossWorkers(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 1)
	params := route.DefaultParams()
	type out struct {
		res route.Result
		arr *costarray.CostArray
	}
	var runs []out
	for _, pool := range []*par.Pool{nil, par.New(1), par.New(4), par.New(4)} {
		res, arr, _, err := Route(c, params, Config{Partitions: 4, Workers: pool})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, out{res, arr})
	}
	for i, r := range runs[1:] {
		if r.res != runs[0].res {
			t.Errorf("run %d result %+v != run 0 %+v", i+1, r.res, runs[0].res)
		}
		if !r.arr.Equal(runs[0].arr) {
			t.Errorf("run %d cost array differs from run 0", i+1)
		}
	}
}

func TestPartitionedStats(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 1)
	params := route.DefaultParams()
	res, arr, st, err := Route(c, params, Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 4 {
		t.Errorf("realised %d partitions, want 4", st.Partitions)
	}
	if st.TotalWires != len(c.Wires) {
		t.Errorf("TotalWires %d, want %d", st.TotalWires, len(c.Wires))
	}
	sum := 0
	for _, n := range st.LevelWires {
		sum += n
	}
	if sum != st.TotalWires {
		t.Errorf("LevelWires sums to %d, want %d", sum, st.TotalWires)
	}
	leafWires := st.LevelWires[len(st.LevelWires)-1]
	if st.BoundaryWires != st.TotalWires-leafWires {
		t.Errorf("BoundaryWires %d inconsistent with levels %v", st.BoundaryWires, st.LevelWires)
	}
	if st.BoundaryWires == 0 || st.BoundaryWires == st.TotalWires {
		t.Errorf("bnrE at 4 partitions should mix region and boundary wires, got %d/%d",
			st.BoundaryWires, st.TotalWires)
	}
	if len(st.RegionWallNs) != st.Partitions {
		t.Errorf("RegionWallNs has %d entries, want %d", len(st.RegionWallNs), st.Partitions)
	}
	if f := st.BoundaryFrac(); f <= 0 || f >= 1 {
		t.Errorf("BoundaryFrac %v out of (0,1)", f)
	}
	if res.WiresRouted != len(c.Wires)*params.Iterations {
		t.Errorf("WiresRouted %d, want %d", res.WiresRouted, len(c.Wires)*params.Iterations)
	}
	if res.CircuitHeight <= 0 || res.Occupancy <= 0 {
		t.Errorf("degenerate quality metrics %+v", res)
	}
	// The committed wire mass must match: sum of cells equals the sum of
	// final path lengths, independent of partitioning.
	var mass int64
	for _, v := range arr.Cells() {
		mass += int64(v)
	}
	if mass <= 0 {
		t.Error("empty cost array after routing")
	}
}

// TestPartitionQualityClose checks partitioning does not wreck routing
// quality: the partitioned circuit height stays within a modest factor
// of sequential (the wires are the same; only the order differs).
func TestPartitionQualityClose(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 1)
	params := route.DefaultParams()
	seqRes, _ := route.Sequential(c, params)
	partRes, _, _, err := Route(c, params, Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if partRes.CircuitHeight > seqRes.CircuitHeight*3/2 {
		t.Errorf("partitioned height %d vs sequential %d: more than 1.5x worse",
			partRes.CircuitHeight, seqRes.CircuitHeight)
	}
}

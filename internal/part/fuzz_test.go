package part

import (
	"testing"

	"locusroute/internal/geom"
)

// FuzzClassify drives random grids, leaf counts, and footprint boxes
// through the tree and checks the classifier's contract:
//
//   - the leaves tile the grid exactly (every cell in exactly one region),
//   - Classify returns the deepest node containing the footprint,
//   - a footprint classified onto an internal node straddles that node's
//     cut — it overlaps both children (symmetric boundary detection).
func FuzzClassify(f *testing.F) {
	f.Add(uint8(10), uint8(100), uint8(4), int16(3), int16(2), int16(40), int16(8))
	f.Add(uint8(1), uint8(1), uint8(8), int16(0), int16(0), int16(0), int16(0))
	f.Add(uint8(16), uint8(16), uint8(7), int16(-5), int16(-5), int16(40), int16(40))
	f.Add(uint8(12), uint8(200), uint8(32), int16(100), int16(0), int16(100), int16(11))
	f.Fuzz(func(t *testing.T, channels, grids, leaves uint8, x0, y0, x1, y1 int16) {
		g := geom.Grid{Channels: int(channels%64) + 1, Grids: int(grids%128) + 1}
		want := int(leaves%32) + 1
		tr, err := NewTree(g, want)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Leaves() < 1 || tr.Leaves() > want {
			t.Fatalf("realised %d leaves for request %d", tr.Leaves(), want)
		}

		// Leaf tiling: every grid cell is in exactly one leaf region.
		nodes := tr.Nodes()
		area := 0
		for i, li := range tr.LeafIndices() {
			r := nodes[li].Rect
			if !g.Bounds().ContainsRect(r) {
				t.Fatalf("leaf %d rect %v escapes grid %v", li, r, g.Bounds())
			}
			area += r.Area()
			for _, lj := range tr.LeafIndices()[:i] {
				if r.Overlaps(nodes[lj].Rect) {
					t.Fatalf("leaves %d and %d overlap", li, lj)
				}
			}
		}
		if area != g.Cells() {
			t.Fatalf("leaves cover %d cells of %d", area, g.Cells())
		}

		// Classify an arbitrary box clipped to the grid, the way
		// Footprint produces them.
		fp := geom.Rect{X0: int(x0), Y0: int(y0), X1: int(x1), Y1: int(y1)}
		if fp.X0 > fp.X1 {
			fp.X0, fp.X1 = fp.X1, fp.X0
		}
		if fp.Y0 > fp.Y1 {
			fp.Y0, fp.Y1 = fp.Y1, fp.Y0
		}
		fp = fp.Intersect(g.Bounds())
		n := tr.Classify(fp)
		if n < 0 || n >= len(nodes) {
			t.Fatalf("classified to node %d of %d", n, len(nodes))
		}
		if fp.Empty() {
			if n != 0 {
				t.Fatalf("empty footprint classified to %d, want root", n)
			}
			return
		}
		node := nodes[n]
		if !node.Rect.ContainsRect(fp) {
			t.Fatalf("node %d rect %v does not contain footprint %v", n, node.Rect, fp)
		}
		if !node.Leaf() {
			l, r := nodes[node.Left], nodes[node.Right]
			if l.Rect.ContainsRect(fp) || r.Rect.ContainsRect(fp) {
				t.Fatalf("node %d is not deepest: a child also contains %v", n, fp)
			}
			// Straddling is symmetric: not contained by either child of a
			// binary partition means overlapping both.
			if !fp.Overlaps(l.Rect) || !fp.Overlaps(r.Rect) {
				t.Fatalf("boundary footprint %v does not overlap both children %v / %v",
					fp, l.Rect, r.Rect)
			}
		}

		// Classification is a function: same footprint, same node.
		if again := tr.Classify(fp); again != n {
			t.Fatalf("Classify not deterministic: %d then %d", n, again)
		}
	})
}

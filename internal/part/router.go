package part

import (
	"sync"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/par"
	"locusroute/internal/route"
)

// DefaultPartitions is the leaf-region count used when Config.Partitions
// is unset. It is a fixed constant (not GOMAXPROCS-derived) so that the
// routing produced by the partitioned backend is a pure function of its
// inputs, independent of the machine it runs on.
const DefaultPartitions = 4

// Config tunes a partition-parallel routing run.
type Config struct {
	// Partitions is the requested number of leaf regions (<= 0 means
	// DefaultPartitions). 1 reproduces route.Sequential bit-for-bit.
	Partitions int
	// Workers bounds how many regions route concurrently; nil applies no
	// bound beyond the tree's own sibling structure.
	Workers *par.Pool
	// Negotiated switches the run to the negotiated-congestion schedule
	// (escalating pres_fac, history costs, rip-up of overused wires
	// only). Nil routes with the paper's fixed cost function.
	Negotiated *Negotiated
}

// Stats describes how the partition schedule decomposed a run; it feeds
// the obs partition document and the paper's partition table.
type Stats struct {
	// Partitions is the number of leaf regions actually realised.
	Partitions int
	// Depth is the tree depth (0 for a single leaf).
	Depth int
	// TotalWires and BoundaryWires count the circuit's wires and the
	// subset classified onto internal nodes (crossing some cut).
	TotalWires    int
	BoundaryWires int
	// LevelWires[d] is the number of wires classified at depth d; the
	// leaves' wires are the concurrent work, everything shallower routes
	// serially at its level.
	LevelWires []int
	// RegionWallNs is the wall-clock time spent routing each leaf region
	// (left-to-right leaf order), summed over iterations.
	RegionWallNs []int64
	// NegotiatedIters, OverusedCells, and PresFacFinal describe the
	// negotiated-congestion schedule when Config.Negotiated was set:
	// iterations consumed, overused cells remaining at exit (0 means the
	// schedule converged), and the final pres_fac value.
	NegotiatedIters int
	OverusedCells   int
	PresFacFinal    float64
}

// BoundaryFrac returns the fraction of wires that crossed a cut.
func (s *Stats) BoundaryFrac() float64 {
	if s.TotalWires == 0 {
		return 0
	}
	return float64(s.BoundaryWires) / float64(s.TotalWires)
}

// Route routes c with the partition-parallel schedule: wires are
// classified by footprint into the deepest tree region containing them,
// sibling subtrees route concurrently against disjoint slices of one
// shared cost array, and each internal node's boundary wires route
// serially once both children have finished. The schedule is a pure
// function of (circuit, params, Partitions): worker count and goroutine
// interleaving cannot change which cost states each wire observes,
// because a wire only ever races with wires whose footprints are
// disjoint from its own. With Partitions == 1 the tree is one leaf and
// the wire-by-wire operation sequence equals route.Sequential's exactly.
func Route(c *circuit.Circuit, params route.Params, cfg Config) (route.Result, *costarray.CostArray, *Stats, error) {
	params = params.Normalized()
	parts := cfg.Partitions
	if parts <= 0 {
		parts = DefaultPartitions
	}
	tree, err := NewTree(c.Grid, parts)
	if err != nil {
		return route.Result{}, nil, nil, err
	}

	r := &runner{
		c:       c,
		params:  params,
		tree:    tree,
		pool:    cfg.Workers,
		arr:     costarray.New(c.Grid),
		paths:   make([]route.Path, len(c.Wires)),
		last:    make([]int64, len(c.Wires)),
		wires:   make([][]int, len(tree.nodes)),
		cells:   make([]int64, len(tree.nodes)),
		routed:  make([]int, len(tree.nodes)),
		wallNs:  make([]int64, len(tree.nodes)),
		scratch: make([]*route.Scratch, len(tree.nodes)),
	}
	st := &Stats{
		Partitions: tree.Leaves(),
		Depth:      tree.Depth(),
		TotalWires: len(c.Wires),
		LevelWires: make([]int, tree.Depth()+1),
	}
	for i := range c.Wires {
		n := tree.Classify(Footprint(&c.Wires[i], params, c.Grid))
		r.wires[n] = append(r.wires[n], i) // ascending i keeps ID order per node
		st.LevelWires[tree.nodes[n].Depth]++
		if !tree.nodes[n].Leaf() {
			st.BoundaryWires++
		}
	}

	var res route.Result
	if cfg.Negotiated != nil {
		res = r.routeNegotiated(cfg.Negotiated, st)
	} else {
		for iter := 0; iter < params.Iterations; iter++ {
			r.walk(0, func(n int) { r.routeNode(n, iter > 0, r.wires[n]) })
		}
		res = r.result()
	}
	st.RegionWallNs = make([]int64, len(tree.leaves))
	for k, n := range tree.leaves {
		st.RegionWallNs[k] = r.wallNs[n]
	}
	return res, r.arr, st, nil
}

// runner holds the shared state of one partition-parallel run. Slices
// indexed by wire are written race-free because each wire belongs to
// exactly one tree node; slices indexed by node are written race-free
// because each node is routed by exactly one goroutine at a time.
type runner struct {
	c      *circuit.Circuit
	params route.Params
	tree   *Tree
	pool   *par.Pool
	arr    *costarray.CostArray
	view   route.CostView // non-nil overrides ArrayView{arr} (negotiated)

	paths []route.Path
	last  []int64 // occupancy contribution per wire

	wires   [][]int // per node: wire indices in ID order
	cells   []int64 // per node: cost reads performed
	routed  []int   // per node: wire routings performed
	wallNs  []int64 // per node: routing wall time
	scratch []*route.Scratch
}

// walk runs fn over the subtree at n in post order with sibling
// concurrency: both children execute concurrently, and n's own (boundary)
// wires route only after both have finished — the merged cost state of
// the subtree. Recursion goroutines are structural (par.Gather style);
// only routeNode acquires pool slots.
func (r *runner) walk(n int, fn func(n int)) {
	node := r.tree.nodes[n]
	if !node.Leaf() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.walk(node.Left, fn)
		}()
		r.walk(node.Right, fn)
		wg.Wait()
	}
	fn(n)
}

// routeNode routes the listed wires of node n in ID order against the
// shared array, replicating route.Sequential's per-wire operation
// sequence: rip-up the previous path (when ripUp), evaluate, measure
// path cost against the authoritative array, commit. ws must be a
// subset of r.wires[n] in ID order; callers pass r.wires[n] itself for
// a full pass. A nil or empty list routes nothing — there is no
// "no filter" sentinel, so a reroute pass with nothing to do at this
// node cannot accidentally rip up the node's whole wire set.
func (r *runner) routeNode(n int, ripUp bool, ws []int) {
	if len(ws) == 0 {
		return
	}
	r.pool.Run(func() {
		start := time.Now()
		if r.scratch[n] == nil {
			r.scratch[n] = route.NewScratch(r.c.Grid)
		}
		s := r.scratch[n]
		view := r.view
		if view == nil {
			view = route.ArrayView{A: r.arr}
		}
		raw := route.ArrayView{A: r.arr}
		for _, i := range ws {
			w := &r.c.Wires[i]
			if ripUp {
				route.RipUp(view, r.paths[i])
			}
			ev := s.RouteWire(view, w, r.params)
			cost := route.PathCost(raw, ev.Path)
			route.Commit(view, ev.Path)
			r.paths[i] = ev.Path
			r.last[i] = cost
			r.cells[n] += int64(ev.CellsExamined)
			r.routed[n]++
		}
		r.wallNs[n] += time.Since(start).Nanoseconds()
	})
}

// result assembles the route.Result from the per-node tallies; the sums
// are order-independent, so the result is deterministic even though the
// tallies accrued concurrently.
func (r *runner) result() route.Result {
	var res route.Result
	for n := range r.tree.nodes {
		res.CellsExamined += r.cells[n]
		res.WiresRouted += r.routed[n]
	}
	for _, c := range r.last {
		res.Occupancy += c
	}
	res.CircuitHeight = r.arr.CircuitHeight()
	return res
}

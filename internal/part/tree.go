// Package part implements partition-parallel routing inside one
// circuit: a recursive bisection tree over the routing grid whose leaf
// regions route concurrently, with boundary-crossing wires reconciled
// serially at each tree level against the merged cost state.
//
// Everything the LocusRoute kernel reads or writes while routing one
// wire stays inside the wire's *footprint* — its pin bounding box
// expanded vertically by the VHV detour allowance (see Footprint). A
// wire classified into the deepest tree region that fully contains its
// footprint therefore touches only cells owned by that region, so
// sibling subtrees operate on provably disjoint slices of one shared
// cost array: no locks, no merge step, and a result that is a pure
// function of the tree shape and the wire order. With one partition the
// tree is a single leaf holding every wire in ID order, which makes the
// driver bit-identical to the sequential reference router.
//
// The package also provides the negotiated-congestion cost schedule
// (VPR/PathFinder style): an escalating present-congestion factor, a
// per-cell history term, and rip-up restricted to wires crossing
// overused cells. It is orthogonal to partitioning — both the
// sequential and partitioned backends can route under it.
package part

import (
	"fmt"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// Node is one region of the bisection tree. Leaves have Left == -1.
type Node struct {
	// Rect is the region of the grid this node owns. A node's children
	// partition its rect exactly.
	Rect geom.Rect
	// Left and Right are child indices into Tree.Nodes (-1 for leaves).
	Left, Right int
	// Depth is the distance from the root (root = 0).
	Depth int
}

// Leaf reports whether the node has no children.
func (n Node) Leaf() bool { return n.Left < 0 }

// Tree is a recursive bisection of a grid into leaf regions. Each split
// divides a node's rectangle along its longer dimension, proportionally
// to the number of leaves each side must hold, so any leaf count >= 1 is
// representable (not just powers of two).
type Tree struct {
	grid   geom.Grid
	nodes  []Node
	leaves []int // indices of leaf nodes, left-to-right build order
}

// NewTree bisects g into (up to) leaves regions. Rectangles that cannot
// split further (single cell) stop early, so the realised leaf count can
// be lower than requested on degenerate grids; Leaves reports the truth.
func NewTree(g geom.Grid, leaves int) (*Tree, error) {
	if !g.Valid() {
		return nil, fmt.Errorf("part: invalid grid %+v", g)
	}
	if leaves < 1 {
		return nil, fmt.Errorf("part: leaf count %d must be positive", leaves)
	}
	t := &Tree{grid: g}
	t.build(g.Bounds(), leaves, 0)
	return t, nil
}

// build appends the subtree covering rect with want leaves and returns
// its root index.
func (t *Tree) build(rect geom.Rect, want, depth int) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, Node{Rect: rect, Left: -1, Right: -1, Depth: depth})
	if want < 2 || rect.Area() < 2 {
		t.leaves = append(t.leaves, idx)
		return idx
	}
	left, right, ok := bisect(rect, want)
	if !ok {
		t.leaves = append(t.leaves, idx)
		return idx
	}
	nl := (want + 1) / 2
	l := t.build(left, nl, depth+1)
	r := t.build(right, want-nl, depth+1)
	t.nodes[idx].Left = l
	t.nodes[idx].Right = r
	return idx
}

// bisect splits rect along its longer dimension, placing the cut so the
// two sides' areas are proportional to the leaf counts they must hold
// ((want+1)/2 vs want/2). Returns ok=false when the rect cannot split.
func bisect(rect geom.Rect, want int) (left, right geom.Rect, ok bool) {
	nl := (want + 1) / 2
	if rect.Dx() >= rect.Dy() {
		if rect.Dx() < 2 {
			return geom.Rect{}, geom.Rect{}, false
		}
		xm := rect.X0 + rect.Dx()*nl/want
		if xm <= rect.X0 {
			xm = rect.X0 + 1
		}
		if xm >= rect.X1 {
			xm = rect.X1 - 1
		}
		left = geom.Rect{X0: rect.X0, Y0: rect.Y0, X1: xm, Y1: rect.Y1}
		right = geom.Rect{X0: xm, Y0: rect.Y0, X1: rect.X1, Y1: rect.Y1}
		return left, right, true
	}
	if rect.Dy() < 2 {
		return geom.Rect{}, geom.Rect{}, false
	}
	ym := rect.Y0 + rect.Dy()*nl/want
	if ym <= rect.Y0 {
		ym = rect.Y0 + 1
	}
	if ym >= rect.Y1 {
		ym = rect.Y1 - 1
	}
	left = geom.Rect{X0: rect.X0, Y0: rect.Y0, X1: rect.X1, Y1: ym}
	right = geom.Rect{X0: rect.X0, Y0: ym, X1: rect.X1, Y1: rect.Y1}
	return left, right, true
}

// Grid returns the partitioned grid.
func (t *Tree) Grid() geom.Grid { return t.grid }

// Nodes returns the tree's nodes; index 0 is the root. The slice is the
// tree's own storage — treat it as read-only.
func (t *Tree) Nodes() []Node { return t.nodes }

// Leaves returns the number of leaf regions actually realised.
func (t *Tree) Leaves() int { return len(t.leaves) }

// LeafIndices returns the node indices of the leaves in left-to-right
// order. Read-only.
func (t *Tree) LeafIndices() []int { return t.leaves }

// Depth returns the maximum node depth.
func (t *Tree) Depth() int {
	d := 0
	for _, n := range t.nodes {
		if n.Depth > d {
			d = n.Depth
		}
	}
	return d
}

// Classify returns the index of the deepest node whose rectangle fully
// contains fp. Wires landing on a leaf are region wires; wires stopping
// at an internal node cross the cut below it and are that level's
// boundary wires. An empty fp classifies to the root.
func (t *Tree) Classify(fp geom.Rect) int {
	if fp.Empty() {
		return 0
	}
	n := 0
	for {
		node := t.nodes[n]
		if node.Leaf() {
			return n
		}
		if t.nodes[node.Left].Rect.ContainsRect(fp) {
			n = node.Left
			continue
		}
		if t.nodes[node.Right].Rect.ContainsRect(fp) {
			n = node.Right
			continue
		}
		return n
	}
}

// Footprint returns the set of cells the kernel can read or write while
// routing w under params: the pin bounding box expanded vertically by
// the VHV detour allowance, clamped to the grid. HVH candidates keep
// every cell within the pin columns; VHV candidates may detour up to
// VHVDetourChannels channels beyond the pin band (internal/route
// clamps the band to the grid exactly as this does).
func Footprint(w *circuit.Wire, params route.Params, g geom.Grid) geom.Rect {
	var bb geom.Rect
	for _, p := range w.Pins {
		bb = bb.AddPoint(p)
	}
	if bb.Empty() {
		return bb
	}
	detour := params.VHVDetourChannels
	if detour < 0 {
		detour = 0
	}
	bb.Y0 -= detour
	bb.Y1 += detour
	return bb.Intersect(g.Bounds())
}

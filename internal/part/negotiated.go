package part

import (
	"math"

	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// Negotiated configures the negotiated-congestion cost schedule
// (PathFinder/VPR style). The first pass routes every wire by length
// alone; each later pass escalates the present-congestion factor,
// charges history for cells that stayed overused, and rips up only the
// wires crossing an overused cell. The schedule stops as soon as no cell
// exceeds its capacity, or after MaxIters passes.
//
// The zero value of every field selects its default, so &Negotiated{}
// enables the mode with the standard schedule.
type Negotiated struct {
	// PresFacStart is the initial present-congestion factor (default 0.5).
	PresFacStart float64
	// PresFacMult multiplies the factor each pass (default 1.8).
	PresFacMult float64
	// PresFacCap bounds the factor's growth (default 1e6).
	PresFacCap float64
	// HistoryIncr is added to a cell's history cost each pass the cell
	// remains overused (default 1).
	HistoryIncr int32
	// Capacity is the wire count a cell may hold without being overused.
	// <= 0 means auto: after the initial pass, the average committed
	// occupancy per grid cell, rounded up (minimum 1).
	Capacity int32
	// MaxIters bounds the total number of passes including the initial
	// one (default 16).
	MaxIters int
}

func (n Negotiated) withDefaults() Negotiated {
	if n.PresFacStart <= 0 {
		n.PresFacStart = 0.5
	}
	if n.PresFacMult <= 1 {
		n.PresFacMult = 1.8
	}
	if n.PresFacCap <= 0 {
		n.PresFacCap = 1e6
	}
	if n.HistoryIncr <= 0 {
		n.HistoryIncr = 1
	}
	if n.MaxIters <= 0 {
		n.MaxIters = 16
	}
	return n
}

// negView is the negotiated cost function as a route.CostView over the
// shared occupancy array:
//
//	cost(x,y) = 1 + history(x,y) + trunc(presFac * overuse(x,y))
//
// where overuse = max(0, occ - capacity + 1) — a cell at capacity
// already charges one unit of pressure, so the router starts avoiding
// cells *before* they tip over. capacity <= 0 (the auto placeholder
// during the initial pass) disables the pressure term entirely, which is
// PathFinder's first iteration: route by length, discover congestion.
//
// Writes delegate straight to the occupancy array, so Commit/RipUp
// through this view maintain the same wire counts as the fixed schedule.
// presFac, hist, and capacity are only mutated between passes, while no
// routing goroutine is running.
type negView struct {
	arr      *costarray.CostArray
	hist     []int32
	capacity int32
	presFac  float64
}

func (v *negView) Grid() geom.Grid { return v.arr.Grid() }

func (v *negView) Cost(x, y int) int32 {
	c := int64(1) + int64(v.hist[v.arr.Index(x, y)])
	if v.capacity > 0 {
		if over := v.arr.At(x, y) - v.capacity + 1; over > 0 {
			p := v.presFac * float64(over)
			if p > math.MaxInt32/2 {
				p = math.MaxInt32 / 2
			}
			c += int64(p)
		}
	}
	if c > math.MaxInt32 {
		c = math.MaxInt32
	}
	return int32(c)
}

func (v *negView) AddCost(x, y int, d int32) { v.arr.Add(x, y, d) }

// routeNegotiated drives the negotiated-congestion schedule over the
// partition tree. Every pass uses the same deterministic partition
// schedule as the fixed mode; the reroute set and all schedule state
// (history, presFac, capacity) are computed serially between passes, so
// the run remains a pure function of (circuit, params, partitions,
// schedule parameters).
func (r *runner) routeNegotiated(neg *Negotiated, st *Stats) route.Result {
	cfg := neg.withDefaults()
	nv := &negView{
		arr:      r.arr,
		hist:     make([]int32, r.c.Grid.Cells()),
		capacity: cfg.Capacity,
		presFac:  cfg.PresFacStart,
	}
	r.view = nv

	// Initial pass: all wires, no rip-up; with auto capacity the
	// pressure term is off, so wires route by length and expose where
	// congestion actually lands.
	r.walk(0, func(n int) { r.routeNode(n, false, r.wires[n]) })
	if nv.capacity <= 0 {
		nv.capacity = autoCapacity(r.arr)
	}
	st.NegotiatedIters = 1
	st.PresFacFinal = nv.presFac

	for it := 1; it < cfg.MaxIters; it++ {
		if countOverused(r.arr, nv.capacity) == 0 {
			break
		}
		nv.presFac *= cfg.PresFacMult
		if nv.presFac > cfg.PresFacCap {
			nv.presFac = cfg.PresFacCap
		}
		bumpHistory(nv, cfg.HistoryIncr)
		active := r.activeWires(nv.capacity)
		if active == nil {
			break
		}
		r.walk(0, func(n int) { r.routeNode(n, true, active[n]) })
		st.NegotiatedIters++
		st.PresFacFinal = nv.presFac
	}
	st.OverusedCells = countOverused(r.arr, nv.capacity)
	return r.result()
}

// autoCapacity is the auto capacity rule: average committed occupancy
// per grid cell, rounded up, at least 1.
func autoCapacity(a *costarray.CostArray) int32 {
	var sum int64
	cells := a.Cells()
	for _, v := range cells {
		sum += int64(v)
	}
	c := (sum + int64(len(cells)) - 1) / int64(len(cells))
	if c < 1 {
		c = 1
	}
	return int32(c)
}

// countOverused returns how many cells exceed cap.
func countOverused(a *costarray.CostArray, cap int32) int {
	n := 0
	for _, v := range a.Cells() {
		if v > cap {
			n++
		}
	}
	return n
}

// bumpHistory charges incr to every currently overused cell.
func bumpHistory(v *negView, incr int32) {
	for i, occ := range v.arr.Cells() {
		if occ > v.capacity {
			v.hist[i] += incr
		}
	}
}

// activeWires returns, per tree node, the node's wires (ID order) whose
// committed path crosses an overused cell — the rip-up set of the next
// pass. Returns nil when no wire qualifies.
func (r *runner) activeWires(cap int32) [][]int {
	act := make([][]int, len(r.tree.nodes))
	any := false
	for n, ws := range r.wires {
		for _, i := range ws {
			for _, c := range r.paths[i].Cells {
				if r.arr.At(c.X, c.Y) > cap {
					act[n] = append(act[n], i)
					any = true
					break
				}
			}
		}
	}
	if !any {
		return nil
	}
	return act
}

package part

import (
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// TestNegotiatedConvergedWhenUncongested: with a capacity no cell can
// exceed, the schedule finishes after the initial pass with zero
// overuse and no reroutes.
func TestNegotiatedConvergedWhenUncongested(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 1)
	res, _, st, err := Route(c, route.DefaultParams(), Config{
		Partitions: 1,
		Negotiated: &Negotiated{Capacity: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NegotiatedIters != 1 {
		t.Errorf("NegotiatedIters %d, want 1", st.NegotiatedIters)
	}
	if st.OverusedCells != 0 {
		t.Errorf("OverusedCells %d, want 0", st.OverusedCells)
	}
	if res.WiresRouted != len(c.Wires) {
		t.Errorf("WiresRouted %d, want one pass over %d wires", res.WiresRouted, len(c.Wires))
	}
	if st.PresFacFinal != 0.5 {
		t.Errorf("PresFacFinal %v, want unescalated default 0.5", st.PresFacFinal)
	}
}

// TestNegotiatedReroutesUnderPressure: with a tight capacity the
// schedule must run extra passes, escalate pres_fac, and reduce the
// total overflow (sum of occupancy above capacity) relative to the
// congestion-blind initial pass. The overused-*cell* count may rise —
// spreading a badly over-capacity cell across several slightly-over
// cells is exactly the negotiation working — so the assertion is on the
// overflow mass, the quantity PathFinder actually minimises.
func TestNegotiatedReroutesUnderPressure(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 1)
	params := route.DefaultParams()

	// Reference: the initial pass alone (MaxIters 1) at the same capacity.
	const capacity = 4
	first, arr1, st1, err := Route(c, params, Config{
		Partitions: 1,
		Negotiated: &Negotiated{Capacity: capacity, MaxIters: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, arr, st, err := Route(c, params, Config{
		Partitions: 1,
		Negotiated: &Negotiated{Capacity: capacity},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st1.OverusedCells == 0 {
		t.Fatalf("capacity %d leaves no overuse on bnrE; test needs a tighter bound", capacity)
	}
	if st.NegotiatedIters <= 1 {
		t.Errorf("NegotiatedIters %d, want reroute passes beyond the initial one", st.NegotiatedIters)
	}
	if st.NegotiatedIters > 16 {
		t.Errorf("NegotiatedIters %d exceeds the default bound", st.NegotiatedIters)
	}
	if o1, o := overflowSum(arr1, capacity), overflowSum(arr, capacity); o >= o1 {
		t.Errorf("negotiation did not reduce overflow: %d -> %d", o1, o)
	}
	if st.PresFacFinal <= st1.PresFacFinal {
		t.Errorf("pres_fac did not escalate: %v -> %v", st1.PresFacFinal, st.PresFacFinal)
	}
	if full.WiresRouted <= first.WiresRouted {
		t.Errorf("no rerouting happened: %d vs %d wire routings", full.WiresRouted, first.WiresRouted)
	}
}

// TestNegotiatedRipUpLimitedToCongestedRegion pins the advertised
// rip-up discipline under partitioning: reroute passes touch only wires
// crossing overused cells, so tree nodes with no such wires route
// nothing. The circuit is built by hand so congestion is provably
// confined to one leaf: a 40x8 grid bisects at x=20; five identical
// flat wires stack on channel 1 of the left region (overused at
// capacity 1, and with zero detour allowance they have no alternative
// path, so the schedule never converges and runs every pass), while
// three wires in the right region occupy disjoint channels and never
// cross an overused cell. Every reroute pass must therefore route
// exactly the five congested wires — a regression guard against
// treating an absent per-node reroute set as "reroute everything".
func TestNegotiatedRipUpLimitedToCongestedRegion(t *testing.T) {
	g := geom.Grid{Grids: 40, Channels: 8}
	c := &circuit.Circuit{Name: "confined-congestion", Grid: g}
	add := func(x0, y0, x1, y1 int) {
		c.Wires = append(c.Wires, circuit.Wire{
			ID:   len(c.Wires),
			Pins: []circuit.Pin{geom.Pt(x0, y0), geom.Pt(x1, y1)},
		})
	}
	const congested = 5
	for k := 0; k < congested; k++ {
		add(2, 1, 8, 1)
	}
	add(25, 2, 30, 2)
	add(25, 4, 30, 4)
	add(25, 6, 30, 6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	params := route.Params{Iterations: 1, VHVDetourChannels: 0}
	res, _, st, err := Route(c, params, Config{
		Partitions: 2,
		Negotiated: &Negotiated{Capacity: 1, MaxIters: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 2 || st.BoundaryWires != 0 {
		t.Fatalf("test premise broken: want 2 leaves and no boundary wires, got %+v", st)
	}
	if st.NegotiatedIters <= 1 {
		t.Fatalf("NegotiatedIters %d: expected reroute passes (left region is overused)", st.NegotiatedIters)
	}
	if st.OverusedCells == 0 {
		t.Fatal("expected the stacked wires to stay overused (they have no alternative path)")
	}
	want := len(c.Wires) + (st.NegotiatedIters-1)*congested
	if res.WiresRouted != want {
		t.Errorf("WiresRouted %d, want %d (initial pass over %d wires + %d reroute passes over the %d congested wires only)",
			res.WiresRouted, want, len(c.Wires), st.NegotiatedIters-1, congested)
	}
}

// overflowSum is the total occupancy above capacity across the array.
func overflowSum(a *costarray.CostArray, capacity int32) int64 {
	var s int64
	for _, v := range a.Cells() {
		if v > capacity {
			s += int64(v - capacity)
		}
	}
	return s
}

// TestNegotiatedDeterministic: both the sequential-shaped and the
// partitioned negotiated runs must be pure functions of their inputs.
func TestNegotiatedDeterministic(t *testing.T) {
	c := genCircuit(t, circuit.BnrELike, 2)
	params := route.DefaultParams()
	for _, parts := range []int{1, 4} {
		res1, arr1, st1, err := Route(c, params, Config{Partitions: parts, Negotiated: &Negotiated{}})
		if err != nil {
			t.Fatal(err)
		}
		res2, arr2, st2, err := Route(c, params, Config{Partitions: parts, Negotiated: &Negotiated{}})
		if err != nil {
			t.Fatal(err)
		}
		if res1 != res2 {
			t.Errorf("partitions %d: results differ: %+v vs %+v", parts, res1, res2)
		}
		if !arr1.Equal(arr2) {
			t.Errorf("partitions %d: cost arrays differ between identical runs", parts)
		}
		if st1.NegotiatedIters != st2.NegotiatedIters || st1.OverusedCells != st2.OverusedCells {
			t.Errorf("partitions %d: schedule stats differ: %+v vs %+v", parts, st1, st2)
		}
	}
}

// TestNegotiatedAutoCapacity: the auto rule is the ceiling of average
// committed occupancy, at least 1, computed after the initial pass.
func TestNegotiatedAutoCapacity(t *testing.T) {
	c := genCircuit(t, circuit.MDCLike, 1)
	_, arr, st, err := Route(c, route.DefaultParams(), Config{Partitions: 1, Negotiated: &Negotiated{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NegotiatedIters < 1 {
		t.Errorf("NegotiatedIters %d", st.NegotiatedIters)
	}
	// After the full schedule, overuse is measured against the auto
	// capacity; it must be no greater than the total number of occupied
	// cells (sanity) and the run must have committed every wire.
	if st.OverusedCells > arr.NonZeroCells() {
		t.Errorf("OverusedCells %d exceeds occupied cells %d", st.OverusedCells, arr.NonZeroCells())
	}
}

package part

import (
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// checkTree verifies the structural invariants every tree must satisfy:
// children partition their parent exactly, leaves tile the grid with no
// overlap, and depths are consistent.
func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	nodes := tr.Nodes()
	if nodes[0].Rect != tr.Grid().Bounds() {
		t.Fatalf("root rect %v != grid bounds %v", nodes[0].Rect, tr.Grid().Bounds())
	}
	for i, n := range nodes {
		if n.Leaf() {
			continue
		}
		l, r := nodes[n.Left], nodes[n.Right]
		if l.Depth != n.Depth+1 || r.Depth != n.Depth+1 {
			t.Fatalf("node %d depth %d: children depths %d/%d", i, n.Depth, l.Depth, r.Depth)
		}
		if l.Rect.Overlaps(r.Rect) {
			t.Fatalf("node %d: children overlap: %v and %v", i, l.Rect, r.Rect)
		}
		if l.Rect.Area()+r.Rect.Area() != n.Rect.Area() {
			t.Fatalf("node %d: children %v+%v do not partition %v", i, l.Rect, r.Rect, n.Rect)
		}
		if !n.Rect.ContainsRect(l.Rect) || !n.Rect.ContainsRect(r.Rect) {
			t.Fatalf("node %d: child escapes parent %v", i, n.Rect)
		}
	}
	area := 0
	leaves := tr.LeafIndices()
	for i, li := range leaves {
		area += nodes[li].Rect.Area()
		for _, lj := range leaves[:i] {
			if nodes[li].Rect.Overlaps(nodes[lj].Rect) {
				t.Fatalf("leaves %d and %d overlap", li, lj)
			}
		}
	}
	if area != tr.Grid().Cells() {
		t.Fatalf("leaf union covers %d cells, grid has %d", area, tr.Grid().Cells())
	}
}

func TestTreeShapes(t *testing.T) {
	g := geom.Grid{Channels: 10, Grids: 341}
	for _, leaves := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		tr, err := NewTree(g, leaves)
		if err != nil {
			t.Fatalf("NewTree(%d): %v", leaves, err)
		}
		if tr.Leaves() != leaves {
			t.Errorf("NewTree(%d): realised %d leaves", leaves, tr.Leaves())
		}
		checkTree(t, tr)
	}
	if tr, err := NewTree(g, 1); err != nil || tr.Depth() != 0 || len(tr.Nodes()) != 1 {
		t.Errorf("single-leaf tree should be one root node, got %d nodes (err %v)", len(tr.Nodes()), err)
	}
}

func TestTreeDegenerate(t *testing.T) {
	// A 1x1 grid cannot split at all; a 1xN grid only splits along X.
	tr, err := NewTree(geom.Grid{Channels: 1, Grids: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("1x1 grid: want 1 leaf, got %d", tr.Leaves())
	}
	tr, err = NewTree(geom.Grid{Channels: 1, Grids: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 4 {
		t.Errorf("1x4 grid: want 4 leaves, got %d", tr.Leaves())
	}
	checkTree(t, tr)
	if _, err := NewTree(geom.Grid{}, 2); err == nil {
		t.Error("invalid grid accepted")
	}
	if _, err := NewTree(geom.Grid{Channels: 2, Grids: 2}, 0); err == nil {
		t.Error("zero leaves accepted")
	}
}

func TestClassifyDeepest(t *testing.T) {
	g := geom.Grid{Channels: 16, Grids: 64}
	tr, err := NewTree(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tr.Nodes()
	for _, li := range tr.LeafIndices() {
		r := nodes[li].Rect
		// A footprint strictly inside a leaf classifies to that leaf.
		fp := geom.Rect{X0: r.X0, Y0: r.Y0, X1: r.X0 + 1, Y1: r.Y0 + 1}
		if got := tr.Classify(fp); got != li {
			t.Errorf("footprint %v in leaf %v classified to node %d", fp, r, got)
		}
	}
	// The whole grid classifies to the root.
	if got := tr.Classify(g.Bounds()); got != 0 {
		t.Errorf("grid-wide footprint classified to node %d, want root", got)
	}
	// An empty footprint classifies to the root.
	if got := tr.Classify(geom.Rect{}); got != 0 {
		t.Errorf("empty footprint classified to node %d, want root", got)
	}
	// A footprint straddling the root cut classifies to the root and
	// overlaps both children — the symmetric boundary condition.
	root := nodes[0]
	l, r := nodes[root.Left], nodes[root.Right]
	var fp geom.Rect
	if l.Rect.X1 == r.Rect.X0 { // vertical cut
		fp = geom.Rect{X0: l.Rect.X1 - 1, Y0: 0, X1: r.Rect.X0 + 1, Y1: 1}
	} else {
		fp = geom.Rect{X0: 0, Y0: l.Rect.Y1 - 1, X1: 1, Y1: r.Rect.Y0 + 1}
	}
	if got := tr.Classify(fp); got != 0 {
		t.Errorf("cut-straddling footprint %v classified to node %d, want root", fp, got)
	}
	if !fp.Overlaps(l.Rect) || !fp.Overlaps(r.Rect) {
		t.Errorf("straddling footprint %v should overlap both children", fp)
	}
}

func TestFootprint(t *testing.T) {
	g := geom.Grid{Channels: 10, Grids: 100}
	w := &circuit.Wire{ID: 0, Pins: []geom.Point{geom.Pt(10, 3), geom.Pt(40, 6)}}
	fp := Footprint(w, route.Params{VHVDetourChannels: 2}, g)
	want := geom.Rect{X0: 10, Y0: 1, X1: 41, Y1: 9}
	if fp != want {
		t.Errorf("footprint %v, want %v", fp, want)
	}
	// Detour clamps to the grid.
	w2 := &circuit.Wire{ID: 1, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(5, 9)}}
	fp2 := Footprint(w2, route.Params{VHVDetourChannels: 5}, g)
	want2 := geom.Rect{X0: 0, Y0: 0, X1: 6, Y1: 10}
	if fp2 != want2 {
		t.Errorf("clamped footprint %v, want %v", fp2, want2)
	}
	// Zero detour is the pin bounding box; negative is treated as zero.
	fp3 := Footprint(w, route.Params{VHVDetourChannels: -1}, g)
	want3 := geom.Rect{X0: 10, Y0: 3, X1: 41, Y1: 7}
	if fp3 != want3 {
		t.Errorf("no-detour footprint %v, want %v", fp3, want3)
	}
	if fp := Footprint(&circuit.Wire{ID: 2}, route.Params{}, g); !fp.Empty() {
		t.Errorf("pinless wire footprint %v, want empty", fp)
	}
}

// TestFootprintCoversKernel pins the containment theorem the whole
// package rests on: every cell the kernel reads or writes while routing
// a wire lies inside Footprint. A tracking view records all touched
// cells; any escape is a soundness bug in partition-parallel routing.
func TestFootprintCoversKernel(t *testing.T) {
	c, err := circuit.Generate(circuit.BnrELike(7))
	if err != nil {
		t.Fatal(err)
	}
	params := route.DefaultParams()
	tv := &touchView{grid: c.Grid, cost: make([]int32, c.Grid.Cells())}
	s := route.NewScratch(c.Grid)
	for i := range c.Wires {
		w := &c.Wires[i]
		fp := Footprint(w, params, c.Grid)
		tv.reset()
		ev := s.RouteWire(tv, w, params)
		route.Commit(tv, ev.Path)
		route.RipUp(tv, ev.Path)
		for _, p := range tv.touched {
			if !p.In(fp) {
				t.Fatalf("wire %d touched %v outside footprint %v", w.ID, p, fp)
			}
		}
	}
}

// touchView records every cell the kernel reads or writes.
type touchView struct {
	grid    geom.Grid
	cost    []int32
	touched []geom.Point
}

func (v *touchView) reset() { v.touched = v.touched[:0] }

func (v *touchView) Grid() geom.Grid { return v.grid }

func (v *touchView) Cost(x, y int) int32 {
	v.touched = append(v.touched, geom.Pt(x, y))
	return v.cost[y*v.grid.Grids+x]
}

func (v *touchView) AddCost(x, y int, d int32) {
	v.touched = append(v.touched, geom.Pt(x, y))
	v.cost[y*v.grid.Grids+x] += d
}

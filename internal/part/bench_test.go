package part

import (
	"strconv"
	"sync"
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/route"
)

// ScaledFactor is the preset used by BENCH_partition.json and `make
// bench-partition`: 10x bnrE, big enough that region routing dominates
// tree overhead.
const ScaledFactor = 10

var (
	scaledOnce sync.Once
	scaledCirc *circuit.Circuit
)

func scaledCircuit(b testing.TB) *circuit.Circuit {
	scaledOnce.Do(func() {
		c, err := circuit.Generate(circuit.Scaled(circuit.BnrELike(1), ScaledFactor))
		if err != nil {
			b.Fatal(err)
		}
		scaledCirc = c
	})
	return scaledCirc
}

func BenchmarkSequentialScaled(b *testing.B) {
	c := scaledCircuit(b)
	params := route.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.Sequential(c, params)
	}
}

func BenchmarkPartitionedScaled(b *testing.B) {
	c := scaledCircuit(b)
	params := route.DefaultParams()
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(benchName(parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := Route(c, params, Config{Partitions: parts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNegotiatedScaled(b *testing.B) {
	c := scaledCircuit(b)
	params := route.DefaultParams()
	for _, parts := range []int{1, 4} {
		b.Run(benchName(parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := Route(c, params, Config{Partitions: parts, Negotiated: &Negotiated{}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(parts int) string {
	return "parts-" + strconv.Itoa(parts)
}

package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/part"
	"locusroute/internal/route"
)

func genCircuit(t *testing.T, name string, seed int64) *circuit.Circuit {
	t.Helper()
	p := circuit.BnrELike(seed)
	p.Name = name
	c, err := circuit.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func smallCircuit(t *testing.T, name string, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.GenParams{
		Name: name, Channels: 4, Grids: 40, Wires: 12, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

// sumOfPaths rebuilds a cost array by committing every held path — the
// canonical-array invariant, applied from scratch.
func sumOfPaths(g geom.Grid, paths map[int]route.Path) *costarray.CostArray {
	arr := costarray.New(g)
	view := route.ArrayView{A: arr}
	for _, p := range paths {
		route.Commit(view, p)
	}
	return arr
}

func checkInvariant(t *testing.T, s *Store, name string) {
	t.Helper()
	e := s.lookup(name)
	if e == nil {
		t.Fatalf("circuit %q missing", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.paths) != len(e.circ.Wires) {
		t.Fatalf("%q: %d paths for %d wires", name, len(e.paths), len(e.circ.Wires))
	}
	if !sumOfPaths(e.circ.Grid, e.paths).Equal(e.arr) {
		t.Fatalf("%q: canonical array is not the sum of its committed paths", name)
	}
}

// TestBaselineMatchesSequential pins routeBaseline to route.Sequential:
// identical result, bit-identical array, and the retained paths sum to
// that array.
func TestBaselineMatchesSequential(t *testing.T) {
	c := genCircuit(t, "base", 11)
	params := route.DefaultParams()
	wantRes, wantArr := route.Sequential(c, params)
	gotRes, gotArr, paths := routeBaseline(c, params)
	if gotRes != wantRes {
		t.Errorf("result mismatch:\n got %+v\nwant %+v", gotRes, wantRes)
	}
	if !gotArr.Equal(wantArr) {
		t.Error("baseline array differs from route.Sequential's")
	}
	if len(paths) != len(c.Wires) {
		t.Fatalf("retained %d paths for %d wires", len(paths), len(c.Wires))
	}
	if !sumOfPaths(c.Grid, paths).Equal(wantArr) {
		t.Error("retained paths do not sum to the canonical array")
	}
}

func TestUploadMutateEvictSemantics(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c := smallCircuit(t, "dyn", 3)
	info, err := s.Upload(c)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if info.Wires != len(c.Wires) || info.Epoch != 0 {
		t.Errorf("upload info = %+v, want %d wires at epoch 0", info, len(c.Wires))
	}
	if _, err := s.Upload(c); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate upload error = %v, want ErrExists", err)
	}
	if _, err := s.Mutate("ghost", []Op{{Kind: OpReroute, WireID: 0}}); !errors.Is(err, ErrUnknown) {
		t.Errorf("mutate of unknown circuit error = %v, want ErrUnknown", err)
	}
	checkInvariant(t, s, "dyn")

	newID := 500
	res, err := s.Mutate("dyn", []Op{
		{Kind: OpAdd, WireID: newID, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(30, 3)}},
		{Kind: OpReroute, WireID: c.Wires[0].ID},
		{Kind: OpRemove, WireID: c.Wires[1].ID},
	})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if res.Epoch != 3 {
		t.Errorf("epoch after 3 ops = %d, want 3", res.Epoch)
	}
	if res.Wires != len(c.Wires) {
		t.Errorf("wires after add+remove = %d, want %d", res.Wires, len(c.Wires))
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(res.Results))
	}
	if r := res.Results[0]; r.Kind != OpAdd || r.Routed.Len() == 0 || r.Ripped.Len() != 0 {
		t.Errorf("add result = %+v, want routed path and no ripped path", r)
	}
	if r := res.Results[1]; r.Kind != OpReroute || r.Routed.Len() == 0 || r.Ripped.Len() == 0 {
		t.Errorf("reroute result = %+v, want both paths", r)
	}
	if r := res.Results[2]; r.Kind != OpRemove || r.Routed.Len() != 0 || r.Ripped.Len() == 0 {
		t.Errorf("remove result = %+v, want ripped path only", r)
	}
	checkInvariant(t, s, "dyn")

	// Invalid batches are rejected atomically: the valid prefix must not
	// have been applied.
	before, _ := s.Get("dyn")
	bad := [][]Op{
		nil,
		{{Kind: OpAdd, WireID: 501, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}},
			{Kind: OpRemove, WireID: 999999}},
		{{Kind: OpAdd, WireID: newID, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}}},
		{{Kind: OpReroute, WireID: 999999}},
		{{Kind: OpAdd, WireID: 502, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(400, 1)}}},
		{{Kind: OpKind(9), WireID: 0}},
		{{Kind: OpAdd, WireID: -1, Pins: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}}},
	}
	for i, ops := range bad {
		if _, err := s.Mutate("dyn", ops); !errors.Is(err, ErrBadOp) {
			t.Errorf("bad batch %d error = %v, want ErrBadOp", i, err)
		}
	}
	after, _ := s.Get("dyn")
	if after != before {
		t.Errorf("rejected batches changed state:\nbefore %+v\nafter  %+v", before, after)
	}
	checkInvariant(t, s, "dyn")

	if _, ok := s.CloneArray("dyn"); !ok {
		t.Error("CloneArray failed for resident circuit")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "dyn" {
		t.Errorf("Names() = %v, want [dyn]", got)
	}
	if err := s.Evict("dyn"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if _, ok := s.Get("dyn"); ok {
		t.Error("Get succeeded after eviction")
	}
	if err := s.Evict("dyn"); !errors.Is(err, ErrUnknown) {
		t.Errorf("second evict error = %v, want ErrUnknown", err)
	}
}

// TestRestartSnapshotIdentity pins the snapshot path: Close writes a
// snapshot, reopen rebuilds byte-identical arrays without routing.
func TestRestartSnapshotIdentity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a := smallCircuit(t, "a", 1)
	b := smallCircuit(t, "b", 2)
	for _, c := range []*circuit.Circuit{a, b} {
		if _, err := s.Upload(c); err != nil {
			t.Fatalf("Upload(%s): %v", c.Name, err)
		}
	}
	if _, err := s.Mutate("a", []Op{
		{Kind: OpReroute, WireID: a.Wires[0].ID},
		{Kind: OpRemove, WireID: a.Wires[1].ID},
	}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	wantA, _ := s.Get("a")
	wantB, _ := s.Get("b")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.SnapshotCircuits != 2 || rec.ReplayedRecords != 0 || rec.Truncated {
		t.Errorf("recovery = %+v, want 2 snapshot circuits, 0 replays, no truncation", rec)
	}
	gotA, _ := s2.Get("a")
	gotB, _ := s2.Get("b")
	if gotA != wantA {
		t.Errorf("circuit a after restart:\n got %+v\nwant %+v", gotA, wantA)
	}
	if gotB != wantB {
		t.Errorf("circuit b after restart:\n got %+v\nwant %+v", gotB, wantB)
	}
	checkInvariant(t, s2, "a")
	checkInvariant(t, s2, "b")

	// Recovered circuits stay mutable and log correctly.
	if _, err := s2.Mutate("b", []Op{{Kind: OpReroute, WireID: b.Wires[2].ID}}); err != nil {
		t.Fatalf("Mutate after restart: %v", err)
	}
	checkInvariant(t, s2, "b")
}

// TestRestartWALReplayIdentity pins the crash path: no snapshot is
// written (the WAL handle is dropped as a crash would), and replay alone
// reconstructs the exact state — including an eviction.
func TestRestartWALReplayIdentity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a := smallCircuit(t, "a", 5)
	b := smallCircuit(t, "b", 6)
	for _, c := range []*circuit.Circuit{a, b} {
		if _, err := s.Upload(c); err != nil {
			t.Fatalf("Upload(%s): %v", c.Name, err)
		}
	}
	if _, err := s.Mutate("a", []Op{
		{Kind: OpAdd, WireID: 900, Pins: []geom.Point{geom.Pt(1, 1), geom.Pt(20, 2)}},
		{Kind: OpReroute, WireID: a.Wires[3].ID},
	}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if err := s.Evict("b"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	want, _ := s.Get("a")
	s.wal.close() // crash: no snapshot

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.SnapshotCircuits != 0 || rec.ReplayedRecords != 4 || rec.Truncated {
		t.Errorf("recovery = %+v, want 0 snapshot circuits, 4 replays, no truncation", rec)
	}
	if got := s2.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Names() after replay = %v, want [a]", got)
	}
	got, _ := s2.Get("a")
	if got != want {
		t.Errorf("circuit a after replay:\n got %+v\nwant %+v", got, want)
	}
	checkInvariant(t, s2, "a")
}

// TestTornWALTailTruncated pins crash-mid-append recovery: a torn final
// record is cut back cleanly and the state equals the intact prefix.
func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c := smallCircuit(t, "dyn", 7)
	if _, err := s.Upload(c); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if _, err := s.Mutate("dyn", []Op{{Kind: OpReroute, WireID: c.Wires[0].ID}}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	want, _ := s.Get("dyn")
	s.wal.close() // crash

	walPath := filepath.Join(dir, walFile)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// A torn record: a length prefix promising 64 bytes, then only 5.
	torn := binary.LittleEndian.AppendUint32(nil, 64)
	torn = append(torn, 1, 2, 3, 4, 5)
	if err := os.WriteFile(walPath, append(append([]byte(nil), intact...), torn...), 0o644); err != nil {
		t.Fatalf("write torn wal: %v", err)
	}

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if rec := s2.Recovery(); !rec.Truncated || rec.ReplayedRecords != 2 {
		t.Errorf("recovery = %+v, want Truncated with 2 replays", rec)
	}
	got, _ := s2.Get("dyn")
	if got != want {
		t.Errorf("state after torn-tail recovery:\n got %+v\nwant %+v", got, want)
	}
	if data, _ := os.ReadFile(walPath); len(data) != len(intact) {
		t.Errorf("wal is %d bytes after truncation, want %d", len(data), len(intact))
	}
	// The truncated log must still be appendable: mutate, crash again,
	// recover cleanly.
	if _, err := s2.Mutate("dyn", []Op{{Kind: OpReroute, WireID: c.Wires[2].ID}}); err != nil {
		t.Fatalf("Mutate after truncation: %v", err)
	}
	want2, _ := s2.Get("dyn")
	s2.wal.close()
	s3, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if rec := s3.Recovery(); rec.Truncated || rec.ReplayedRecords != 3 {
		t.Errorf("third recovery = %+v, want clean 3 replays", rec)
	}
	if got, _ := s3.Get("dyn"); got != want2 {
		t.Errorf("state after second recovery:\n got %+v\nwant %+v", got, want2)
	}
}

// TestTornWALDecodeFailure: a record that frames but does not decode is
// the same torn-tail class, not a fatal error.
func TestTornWALDecodeFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c := smallCircuit(t, "dyn", 8)
	if _, err := s.Upload(c); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	want, _ := s.Get("dyn")
	s.wal.close()

	walPath := filepath.Join(dir, walFile)
	intact, _ := os.ReadFile(walPath)
	// A well-framed record whose payload names an unknown frame kind:
	// seq byte 0x7F, then version 1, kind 99.
	junk := binary.LittleEndian.AppendUint32(nil, 3)
	junk = append(junk, 0x7F, 1, 99)
	if err := os.WriteFile(walPath, append(append([]byte(nil), intact...), junk...), 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); !rec.Truncated || rec.ReplayedRecords != 1 {
		t.Errorf("recovery = %+v, want Truncated with 1 replay", rec)
	}
	if got, _ := s2.Get("dyn"); got != want {
		t.Errorf("state after decode-failure recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestMemoryBudget pins gate accounting: a full store rejects uploads
// with ErrStoreFull, and eviction frees the budget.
func TestMemoryBudget(t *testing.T) {
	s, err := Open(Config{MemBudget: slotBytes})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a := smallCircuit(t, "a", 21)
	b := smallCircuit(t, "b", 22)
	if _, err := s.Upload(a); err != nil {
		t.Fatalf("Upload(a): %v", err)
	}
	if _, err := s.Upload(b); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("Upload(b) into full store error = %v, want ErrStoreFull", err)
	}
	if err := s.Evict("a"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if _, err := s.Upload(b); err != nil {
		t.Errorf("Upload(b) after eviction: %v", err)
	}
}

// TestMutationIncrementality pins the tentpole's cost bound: a
// single-wire mutation's work is bounded by that wire's footprint, not
// the circuit size, and its routed path stays inside the footprint.
func TestMutationIncrementality(t *testing.T) {
	c := genCircuit(t, "big", 31)
	params := route.DefaultParams().Normalized()
	s, err := Open(Config{Router: params})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	info, err := s.Upload(c)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	w := c.Wires[5]
	fp := part.Footprint(&w, params, c.Grid)
	res, err := s.Mutate("big", []Op{{Kind: OpReroute, WireID: w.ID}})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	r := res.Results[0]
	for _, cell := range r.Routed.Cells {
		if !cell.In(fp) {
			t.Fatalf("rerouted cell %v outside footprint %v", cell, fp)
		}
	}
	// Work bound: per two-pin segment the kernel walks at most
	// (MaxHVHCandidates + band height + detour slack) candidates, each
	// reading at most one footprint half-perimeter of cells.
	segs := len(w.Pins) - 1
	candidates := params.MaxHVHCandidates + fp.Dy() + 3
	walk := 2 * (fp.Dx() + fp.Dy() + 2)
	bound := segs * candidates * walk
	if r.CellsExamined > bound {
		t.Errorf("reroute examined %d cells, footprint bound is %d (footprint %v)",
			r.CellsExamined, bound, fp)
	}
	// And the macro claim: one mutation is far cheaper than the upload's
	// full routing.
	if int64(r.CellsExamined) > info.Baseline.CellsExamined/10 {
		t.Errorf("reroute examined %d cells vs %d for the full baseline — not incremental",
			r.CellsExamined, info.Baseline.CellsExamined)
	}
}

// TestConcurrentLifecycle is the store-level race smoke: uploads,
// mutations, reads and evictions of overlapping names under -race.
func TestConcurrentLifecycle(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	circs := make([]*circuit.Circuit, 4)
	for i := range circs {
		circs[i] = smallCircuit(t, string(rune('a'+i)), int64(40+i))
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			c := circs[g%len(circs)]
			for i := 0; i < 30; i++ {
				s.Upload(c)
				s.Get(c.Name)
				s.Mutate(c.Name, []Op{{Kind: OpReroute, WireID: c.Wires[i%len(c.Wires)].ID}})
				s.CloneArray(c.Name)
				if i%7 == 6 {
					s.Evict(c.Name)
				}
				s.Names()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	for _, c := range circs {
		if _, ok := s.Get(c.Name); ok {
			checkInvariant(t, s, c.Name)
		}
	}
}

package store

// The write-ahead log. One record per committed lifecycle operation:
//
//	uint32 LE record length | uvarint seq | lifecycle frame payload
//
// The payload after the sequence number is exactly an internal/wire
// upload (kind 5), mutate (kind 6) or evict (kind 7) frame payload —
// the WAL replays through the same decoders the binary transport uses,
// and the framing reuses wire.ReadFrame. Records are fsynced on append.
//
// The sequence number is what makes snapshot+WAL composition safe: a
// snapshot stores the last sequence it covers, and replay skips records
// at or below it. A crash between writing a snapshot and truncating the
// log therefore cannot double-apply a mutation.
//
// Replay stops at the first record that fails to frame or decode —
// a torn tail from a crash mid-append — and truncates the file back to
// the last intact record (RecoveryStats.Truncated). A record that
// frames and decodes but fails to apply is different: it means the log
// and the snapshot disagree semantically, and Open fails loudly rather
// than guessing.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/wire"
)

const (
	walFile  = "wal.bin"
	snapFile = "snapshot.bin"
)

// walState is the log writer: a mutex-guarded appender over one file.
// Nested strictly inside entry locks — log calls happen while holding
// the mutated entry's mu, so log order equals apply order per circuit.
type walState struct {
	mu  sync.Mutex
	f   *os.File
	seq uint64
	buf []byte
}

// append writes one fsynced record. A nil file (in-memory store) is a
// no-op.
func (w *walState) append(enc func([]byte) ([]byte, error)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	buf := append(w.buf[:0], 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, w.seq+1)
	buf, err := enc(buf)
	if err != nil {
		return fmt.Errorf("store: wal encode: %w", err)
	}
	n := len(buf) - 4
	if n > wire.MaxFrame {
		return fmt.Errorf("store: wal record %d bytes (max %d)", n, wire.MaxFrame)
	}
	binary.LittleEndian.PutUint32(buf, uint32(n))
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.seq++
	return nil
}

func (w *walState) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// logUpload records a committed upload (the store's private circuit
// copy, so later caller mutations of the argument cannot corrupt it).
func (s *Store) logUpload(c *circuit.Circuit) error {
	if s.dir == "" {
		return nil
	}
	u := uploadFromCircuit(c)
	return s.wal.append(func(dst []byte) ([]byte, error) { return wire.AppendUpload(dst, u) })
}

// logMutate records a validated batch, before it is applied — the
// classic write-ahead order; apply is infallible after validation.
func (s *Store) logMutate(name string, ops []Op) error {
	if s.dir == "" {
		return nil
	}
	m := &wire.Mutate{Circuit: name, Ops: ToWireOps(ops)}
	return s.wal.append(func(dst []byte) ([]byte, error) { return wire.AppendMutate(dst, m) })
}

// logEvict records a committed eviction.
func (s *Store) logEvict(name string) error {
	if s.dir == "" {
		return nil
	}
	e := &wire.Evict{Circuit: name}
	return s.wal.append(func(dst []byte) ([]byte, error) { return wire.AppendEvict(dst, e) })
}

// recover loads the snapshot, replays the WAL past it, and truncates
// any torn tail. Runs before the store is shared; no locking.
func (s *Store) recover() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir: %w", err)
	}
	snapSeq, err := s.loadSnapshot()
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: open wal: %w", err)
	}
	s.wal.f = f
	if err := s.replayWAL(snapSeq); err != nil {
		f.Close()
		s.wal.f = nil
		return err
	}
	return nil
}

// replayWAL applies every record with seq > snapSeq. Framing or decode
// failures mark the torn tail; semantic apply failures abort recovery.
func (s *Store) replayWAL(snapSeq uint64) error {
	f := s.wal.f
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal seek: %w", err)
	}
	br := bufio.NewReader(f)
	var off, lastGood int64
	var rbuf []byte
	maxSeq := snapSeq
	torn := false
scan:
	for {
		payload, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			torn = true
			break
		}
		rbuf = payload
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			torn = true
			break
		}
		if seq > snapSeq {
			switch aerr := s.applyRecord(payload[n:]); {
			case aerr == nil:
				s.recovery.ReplayedRecords++
			case errors.Is(aerr, errCorruptRecord):
				torn = true
				break scan
			default:
				return fmt.Errorf("store: wal replay (seq %d): %w", seq, aerr)
			}
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		off += int64(4 + len(payload))
		lastGood = off
	}
	if torn {
		s.recovery.Truncated = true
		if err := f.Truncate(lastGood); err != nil {
			return fmt.Errorf("store: wal truncate: %w", err)
		}
	}
	s.wal.seq = maxSeq
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: wal seek: %w", err)
	}
	return nil
}

// errCorruptRecord classifies a record whose bytes do not decode — the
// torn-tail case replayWAL truncates, as opposed to a well-formed
// record the state rejects.
var errCorruptRecord = errors.New("store: corrupt wal record")

// applyRecord replays one decoded lifecycle operation against the
// recovering store.
func (s *Store) applyRecord(payload []byte) error {
	switch wire.PayloadKind(payload) {
	case wire.KindUpload:
		u, err := wire.DecodeUpload(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", errCorruptRecord, err)
		}
		c := CircuitFromUpload(u)
		if err := validateUpload(c); err != nil {
			return err
		}
		if _, dup := s.entries[c.Name]; dup {
			return fmt.Errorf("%w: replayed upload of resident circuit %q", ErrExists, c.Name)
		}
		e := s.buildEntry(c)
		if !s.acquire(e.slots) {
			return fmt.Errorf("%w: recovered circuit %q needs %d bytes", ErrStoreFull, c.Name, e.bytes)
		}
		s.entries[c.Name] = e
	case wire.KindMutate:
		m, err := wire.DecodeMutate(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", errCorruptRecord, err)
		}
		e := s.entries[m.Circuit]
		if e == nil {
			return fmt.Errorf("%w %q in replayed mutation", ErrUnknown, m.Circuit)
		}
		ops := FromWireOps(m.Ops)
		if err := e.validateOps(ops); err != nil {
			return err
		}
		e.apply(s.params, ops)
	case wire.KindEvict:
		v, err := wire.DecodeEvict(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", errCorruptRecord, err)
		}
		e := s.entries[v.Circuit]
		if e == nil {
			return fmt.Errorf("%w %q in replayed eviction", ErrUnknown, v.Circuit)
		}
		delete(s.entries, v.Circuit)
		s.release(e.slots)
	default:
		return fmt.Errorf("%w: unknown record kind %d", errCorruptRecord, wire.PayloadKind(payload))
	}
	return nil
}

// uploadFromCircuit renders a circuit as the wire protocol's upload
// frame — the WAL and snapshot representation.
func uploadFromCircuit(c *circuit.Circuit) *wire.Upload {
	u := &wire.Upload{Name: c.Name, Channels: c.Grid.Channels, Grids: c.Grid.Grids}
	for i := range c.Wires {
		u.Wires = append(u.Wires, wire.UploadWire{
			ID:   c.Wires[i].ID,
			Pins: append([]geom.Point(nil), c.Wires[i].Pins...),
		})
	}
	return u
}

// CircuitFromUpload builds a circuit from an upload frame. Validation
// is the caller's step (validateUpload / Store.Upload).
func CircuitFromUpload(u *wire.Upload) *circuit.Circuit {
	c := &circuit.Circuit{
		Name: u.Name,
		Grid: geom.Grid{Channels: u.Channels, Grids: u.Grids},
	}
	for i := range u.Wires {
		c.Wires = append(c.Wires, circuit.Wire{
			ID:   u.Wires[i].ID,
			Pins: append([]geom.Point(nil), u.Wires[i].Pins...),
		})
	}
	return c
}

// FromWireOps converts protocol mutation ops to store ops (the op-code
// values are shared, so kinds map by identity).
func FromWireOps(ws []wire.MutateOp) []Op {
	ops := make([]Op, len(ws))
	for i := range ws {
		ops[i] = Op{
			Kind:   OpKind(ws[i].Op),
			WireID: ws[i].WireID,
			Pins:   append([]geom.Point(nil), ws[i].Pins...),
		}
	}
	return ops
}

// ToWireOps is FromWireOps' inverse.
func ToWireOps(ops []Op) []wire.MutateOp {
	ws := make([]wire.MutateOp, len(ops))
	for i := range ops {
		ws[i] = wire.MutateOp{
			Op:     uint8(ops[i].Kind),
			WireID: ops[i].WireID,
			Pins:   append([]geom.Point(nil), ops[i].Pins...),
		}
	}
	return ws
}

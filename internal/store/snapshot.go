package store

// The snapshot: a point-in-time encoding of every resident circuit from
// which the canonical cost arrays are reconstructed exactly — not by
// re-routing, but by re-committing the stored per-wire paths, which is
// the canonical-array invariant applied in reverse. Layout:
//
//	8 bytes  magic "LRSTORE1"
//	uvarint  WAL sequence the snapshot covers
//	uvarint  circuit count
//	then per circuit, sorted by name:
//	  uvarint  n, then n bytes: wire upload-frame payload of the
//	           current circuit (Client "")
//	  uvarint  mutation epoch
//	  uvarint  baseline CircuitHeight, Occupancy, CellsExamined,
//	           WiresRouted (upload-time result; mutations don't revise it)
//	  uvarint  wire count, then per wire in circuit order:
//	             uvarint id, uvarint cell count, cells as u16 LE x,y
//	  32 bytes sha256 of the canonical array's cells — load rebuilds the
//	           array from the paths and refuses a mismatch
//
// The file is written to a temp name and renamed into place, so a crash
// mid-snapshot leaves the previous snapshot intact; the stored sequence
// number keeps the (then stale) WAL consistent with it.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
	"locusroute/internal/wire"
)

var snapMagic = []byte("LRSTORE1")

// maxSnapCells bounds one path's cell count during load — a plain
// sanity cap (a 16-bit grid has < 1<<32 cells but no sane path nears
// 1<<24) so a corrupt length cannot drive a giant allocation.
const maxSnapCells = 1 << 24

// Snapshot writes the current state to disk and truncates the WAL. It
// quiesces the store: the registry lock blocks uploads and evictions,
// and every entry lock is held (in sorted name order, the global lock
// order) so no mutation is mid-flight while encoding.
func (s *Store) Snapshot() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.entries[name].mu.Lock()
	}
	defer func() {
		for _, name := range names {
			s.entries[name].mu.Unlock()
		}
	}()
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()

	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, s.wal.seq)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		var err error
		buf, err = s.entries[name].appendSnapshotLocked(buf)
		if err != nil {
			return fmt.Errorf("store: snapshot %q: %w", name, err)
		}
	}

	tmp := filepath.Join(s.dir, snapFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapFile)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// The snapshot covers everything logged; start the WAL over.
	if s.wal.f != nil {
		if err := s.wal.f.Truncate(0); err != nil {
			return fmt.Errorf("store: wal reset: %w", err)
		}
		if _, err := s.wal.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("store: wal seek: %w", err)
		}
	}
	return nil
}

// appendSnapshotLocked encodes one entry; caller holds e.mu.
func (e *entry) appendSnapshotLocked(buf []byte) ([]byte, error) {
	payload, err := wire.AppendUpload(nil, uploadFromCircuit(e.circ))
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.AppendUvarint(buf, e.epoch)
	buf = binary.AppendUvarint(buf, uint64(e.baseline.CircuitHeight))
	buf = binary.AppendUvarint(buf, uint64(e.baseline.Occupancy))
	buf = binary.AppendUvarint(buf, uint64(e.baseline.CellsExamined))
	buf = binary.AppendUvarint(buf, uint64(e.baseline.WiresRouted))
	buf = binary.AppendUvarint(buf, uint64(len(e.circ.Wires)))
	for i := range e.circ.Wires {
		id := e.circ.Wires[i].ID
		p := e.paths[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(len(p.Cells)))
		for _, c := range p.Cells {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c.X))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Y))
		}
	}
	sum := sha256.New()
	var b [4]byte
	for _, c := range e.arr.Cells() {
		binary.LittleEndian.PutUint32(b[:], uint32(c))
		sum.Write(b[:])
	}
	buf = sum.Sum(buf)
	return buf, nil
}

// snapCursor is a minimal byte reader for the snapshot body.
type snapCursor struct {
	b []byte
}

func (c *snapCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("store: snapshot: bad uvarint")
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *snapCursor) take(n int) ([]byte, error) {
	if n < 0 || n > len(c.b) {
		return nil, fmt.Errorf("store: snapshot: truncated (%d bytes wanted, %d left)", n, len(c.b))
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

// loadSnapshot reads the snapshot (if any) and reconstructs every
// circuit's canonical array by committing its stored paths — no routing
// runs during recovery. Returns the WAL sequence the snapshot covers.
func (s *Store) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic) || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return 0, fmt.Errorf("store: snapshot: bad magic")
	}
	c := &snapCursor{b: data[len(snapMagic):]}
	seq, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	n, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < n; i++ {
		if err := s.loadSnapshotCircuit(c); err != nil {
			return 0, err
		}
		s.recovery.SnapshotCircuits++
	}
	return seq, nil
}

// loadSnapshotCircuit decodes one circuit record and installs its
// entry.
func (s *Store) loadSnapshotCircuit(c *snapCursor) error {
	plen, err := c.uvarint()
	if err != nil {
		return err
	}
	payload, err := c.take(int(plen))
	if err != nil {
		return err
	}
	u, err := wire.DecodeUpload(payload)
	if err != nil {
		return fmt.Errorf("store: snapshot circuit: %w", err)
	}
	circ := CircuitFromUpload(u)
	if err := validateUpload(circ); err != nil {
		return fmt.Errorf("store: snapshot circuit %q: %w", circ.Name, err)
	}
	if _, dup := s.entries[circ.Name]; dup {
		return fmt.Errorf("store: snapshot repeats circuit %q", circ.Name)
	}
	epoch, err := c.uvarint()
	if err != nil {
		return err
	}
	ch, err := c.uvarint()
	if err != nil {
		return err
	}
	occ, err := c.uvarint()
	if err != nil {
		return err
	}
	ce, err := c.uvarint()
	if err != nil {
		return err
	}
	wr, err := c.uvarint()
	if err != nil {
		return err
	}
	baseline := route.Result{
		CircuitHeight: int64(ch),
		Occupancy:     int64(occ),
		CellsExamined: int64(ce),
		WiresRouted:   int(wr),
	}
	nwires, err := c.uvarint()
	if err != nil {
		return err
	}
	if int(nwires) != len(circ.Wires) {
		return fmt.Errorf("store: snapshot circuit %q: %d paths for %d wires",
			circ.Name, nwires, len(circ.Wires))
	}
	arr := costarray.New(circ.Grid)
	view := route.ArrayView{A: arr}
	bounds := circ.Grid.Bounds()
	paths := make(map[int]route.Path, nwires)
	for i := uint64(0); i < nwires; i++ {
		id64, err := c.uvarint()
		if err != nil {
			return err
		}
		ncells, err := c.uvarint()
		if err != nil {
			return err
		}
		if ncells > maxSnapCells {
			return fmt.Errorf("store: snapshot circuit %q: path of %d cells", circ.Name, ncells)
		}
		raw, err := c.take(int(ncells) * 4)
		if err != nil {
			return err
		}
		cells := make([]geom.Point, ncells)
		for j := range cells {
			x := int(binary.LittleEndian.Uint16(raw[j*4:]))
			y := int(binary.LittleEndian.Uint16(raw[j*4+2:]))
			p := geom.Pt(x, y)
			if !p.In(bounds) {
				return fmt.Errorf("store: snapshot circuit %q: path cell %v outside grid", circ.Name, p)
			}
			cells[j] = p
		}
		id := int(id64)
		if _, dup := paths[id]; dup {
			return fmt.Errorf("store: snapshot circuit %q: duplicate path for wire %d", circ.Name, id)
		}
		p := route.Path{Cells: cells}
		route.Commit(view, p)
		paths[id] = p
	}
	for i := range circ.Wires {
		if _, ok := paths[circ.Wires[i].ID]; !ok {
			return fmt.Errorf("store: snapshot circuit %q: no path for wire %d",
				circ.Name, circ.Wires[i].ID)
		}
	}
	want, err := c.take(sha256.Size)
	if err != nil {
		return err
	}
	sum := sha256.New()
	var b [4]byte
	for _, cell := range arr.Cells() {
		binary.LittleEndian.PutUint32(b[:], uint32(cell))
		sum.Write(b[:])
	}
	if !bytes.Equal(sum.Sum(nil), want) {
		return fmt.Errorf("store: snapshot circuit %q: rebuilt array hash mismatch", circ.Name)
	}
	e := &entry{
		circ:     circ,
		arr:      arr,
		paths:    paths,
		epoch:    epoch,
		baseline: baseline,
		scratch:  route.NewScratch(circ.Grid),
	}
	e.bytes = e.estimateBytes()
	e.slots = int((e.bytes + slotBytes - 1) / slotBytes)
	if !s.acquire(e.slots) {
		return fmt.Errorf("%w: recovered circuit %q needs %d bytes", ErrStoreFull, circ.Name, e.bytes)
	}
	s.entries[circ.Name] = e
	return nil
}

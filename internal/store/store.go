// Package store owns the circuit lifecycle behind locusd's dynamic
// serving surface: upload, mutation, eviction, and crash-safe
// persistence. It is the paper's rip-up-and-reroute loop recast as a
// long-lived resource manager — every circuit holds one canonical cost
// array that is, invariantly, the sum of its committed per-wire paths,
// so the array can always be reconstructed exactly by replaying those
// paths. That invariant is what makes snapshot+WAL recovery byte-exact.
//
// Mutations are incremental: an add or reroute routes exactly one wire
// against the current congestion state through the same route.Scratch
// kernel the serving path uses, so its cost is bounded by the wire's
// footprint (part.Footprint), not the circuit size. A remove rips up
// one committed path. A mutation batch is atomic — validated wholly
// up front, then applied without a fallible step — and every applied
// batch is logged before the store's locks release.
//
// Persistence is a snapshot plus a write-ahead log of committed
// operations. Both reuse internal/wire's frame encoders: a WAL record
// is a length-prefixed (uvarint seq || lifecycle frame payload), so the
// log replays through the exact decoders the live transport uses.
// Memory is accounted through a par.Gate in fixed-size slots, the same
// admission primitive the serving layer bounds requests with.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/internal/wire"
)

// Config sizes a store. The zero value is a fully in-memory store with
// default router parameters and no memory bound.
type Config struct {
	// Dir is the persistence directory ("" = in-memory only). Open
	// creates it, loads any snapshot, and replays the WAL.
	Dir string
	// Router tunes the routing kernel for baselines and mutations (zero
	// value = route.DefaultParams). Must match the serving layer's
	// parameters for replicas to stay consistent with the canonical
	// array.
	Router route.Params
	// MemBudget bounds the bytes the store admits across all circuits
	// (0 = unlimited). Accounting is in 64 KiB slots through a
	// par.Gate; an upload that would exceed the budget fails with
	// ErrStoreFull.
	MemBudget int64
}

// Sentinel errors.
var (
	// ErrExists rejects an upload naming a circuit already present.
	ErrExists = errors.New("store: circuit already exists")
	// ErrUnknown reports an operation on a circuit the store does not
	// hold.
	ErrUnknown = errors.New("store: unknown circuit")
	// ErrStoreFull rejects an upload the memory budget cannot admit.
	ErrStoreFull = errors.New("store: memory budget exhausted")
	// ErrBadOp rejects an invalid mutation batch; the batch is atomic,
	// so nothing was applied.
	ErrBadOp = errors.New("store: invalid mutation")
)

// slotBytes is the memory-accounting granule: one par.Gate slot per
// 64 KiB of estimated circuit state.
const slotBytes = 64 << 10

// OpKind selects a mutation verb. The values are the wire protocol's
// op codes (wire.OpAdd etc.), so conversion is the identity.
type OpKind uint8

const (
	// OpAdd routes and commits a new wire (pins required).
	OpAdd = OpKind(wire.OpAdd)
	// OpRemove rips up and deletes a wire (pins ignored).
	OpRemove = OpKind(wire.OpRemove)
	// OpReroute rips up a wire and re-routes it against current
	// congestion; empty pins keep the wire's existing pins, non-empty
	// pins replace them.
	OpReroute = OpKind(wire.OpReroute)
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReroute:
		return "reroute"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one mutation in a batch.
type Op struct {
	Kind   OpKind
	WireID int
	Pins   []geom.Point
}

// OpResult reports one applied mutation. Ripped and Routed are the
// paths removed from and committed to the canonical array — the deltas
// the serving layer replicates onto its shard replicas.
type OpResult struct {
	Kind          OpKind
	WireID        int
	Cost          int64
	PathCells     int
	CellsExamined int
	Ripped        route.Path
	Routed        route.Path
}

// MutateResult reports an applied batch.
type MutateResult struct {
	// Epoch is the circuit's mutation epoch after the batch (one bump
	// per op).
	Epoch uint64
	// Wires is the circuit's wire count after the batch.
	Wires int
	// Results has one entry per op, in batch order.
	Results []OpResult
}

// Info is a circuit's lifecycle summary.
type Info struct {
	Name  string
	Grid  geom.Grid
	Wires int
	// Epoch is the mutation epoch (0 for a freshly uploaded circuit).
	Epoch uint64
	// Bytes is the estimated resident size the memory budget charges.
	Bytes int64
	// Baseline is the upload-time full routing result.
	Baseline route.Result
	// ArrayHash is the sha256 of the canonical cost array's cells
	// (little-endian int32s) — the restart-identity fingerprint.
	ArrayHash string
}

// RecoveryStats reports what Open reconstructed.
type RecoveryStats struct {
	// SnapshotCircuits counts circuits loaded from the snapshot.
	SnapshotCircuits int
	// ReplayedRecords counts WAL records applied after the snapshot.
	ReplayedRecords int
	// Truncated reports that a torn or corrupt WAL tail was cut back to
	// the last intact record.
	Truncated bool
}

// entry is one resident circuit. All mutable state is guarded by mu;
// the canonical invariant is arr == sum of Commit(paths[id]) for every
// held id.
type entry struct {
	mu    sync.Mutex
	dead  bool
	circ  *circuit.Circuit
	arr   *costarray.CostArray
	paths map[int]route.Path
	epoch uint64
	// baseline is the upload-time full routing result; mutations do not
	// revise it.
	baseline route.Result
	scratch  *route.Scratch
	slots    int
	bytes    int64
}

// Store is the circuit lifecycle owner. Safe for concurrent use.
type Store struct {
	dir    string
	params route.Params
	gate   par.Gate

	mu      sync.RWMutex
	entries map[string]*entry

	wal walState

	recovery RecoveryStats
}

// Open creates (or recovers) a store. With a persistence directory it
// loads the snapshot, replays the WAL, and truncates any torn tail; the
// recovered state is exactly the pre-crash canonical arrays, which
// Recovery() and the per-circuit ArrayHash let callers verify.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		dir:     cfg.Dir,
		params:  cfg.Router.Normalized(),
		entries: make(map[string]*entry),
	}
	if cfg.MemBudget > 0 {
		slots := int(cfg.MemBudget / slotBytes)
		if slots < 1 {
			slots = 1
		}
		s.gate = par.NewGate(slots)
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Recovery reports what Open reconstructed from disk (zero value for
// in-memory stores and fresh directories).
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Names returns the held circuit names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns a circuit's lifecycle summary.
func (s *Store) Get(name string) (Info, bool) {
	e := s.lookup(name)
	if e == nil {
		return Info{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return Info{}, false
	}
	return e.infoLocked(name), true
}

// CloneArray returns a private copy of the canonical cost array — what
// the serving layer seeds shard replicas from.
func (s *Store) CloneArray(name string) (*costarray.CostArray, bool) {
	e := s.lookup(name)
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return nil, false
	}
	return e.arr.Clone(), true
}

// Upload validates, routes and installs a new circuit. The baseline
// routing runs outside the store's locks (it is the expensive step) and
// reproduces route.Sequential exactly while retaining the final
// per-wire paths — the canonical-array invariant starts here.
func (s *Store) Upload(c *circuit.Circuit) (Info, error) {
	if err := validateUpload(c); err != nil {
		return Info{}, err
	}
	// Cheap duplicate pre-check so a doomed upload does not pay for a
	// full baseline route; the install below re-checks under the lock.
	if s.lookup(c.Name) != nil {
		return Info{}, fmt.Errorf("%w: %q", ErrExists, c.Name)
	}
	e := s.buildEntry(c)
	if !s.acquire(e.slots) {
		return Info{}, fmt.Errorf("%w: circuit %q needs %d bytes", ErrStoreFull, c.Name, e.bytes)
	}
	s.mu.Lock()
	if _, dup := s.entries[c.Name]; dup {
		s.mu.Unlock()
		s.release(e.slots)
		return Info{}, fmt.Errorf("%w: %q", ErrExists, c.Name)
	}
	s.entries[c.Name] = e
	s.mu.Unlock()
	// Log under the fresh entry's lock so a racing evict of this name
	// cannot write its record before ours.
	e.mu.Lock()
	if err := s.logUpload(e.circ); err != nil {
		// Roll the install back: an unlogged circuit must not survive a
		// restart-shaped divergence between memory and disk.
		e.dead = true
		e.mu.Unlock()
		s.mu.Lock()
		if s.entries[c.Name] == e {
			delete(s.entries, c.Name)
		}
		s.mu.Unlock()
		s.release(e.slots)
		return Info{}, err
	}
	info := e.infoLocked(c.Name)
	e.mu.Unlock()
	return info, nil
}

// Mutate validates and applies one atomic batch. Validation simulates
// the whole batch against the circuit's wire set first, so apply cannot
// fail halfway; the WAL record is written before application, under the
// same entry lock, so log order equals apply order.
func (s *Store) Mutate(name string, ops []Op) (*MutateResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadOp)
	}
	if len(ops) > wire.MaxOps {
		return nil, fmt.Errorf("%w: %d ops (max %d)", ErrBadOp, len(ops), wire.MaxOps)
	}
	e := s.lookup(name)
	if e == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return nil, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	if err := e.validateOps(ops); err != nil {
		return nil, err
	}
	if err := s.logMutate(name, ops); err != nil {
		return nil, err
	}
	results := e.apply(s.params, ops)
	return &MutateResult{Epoch: e.epoch, Wires: len(e.circ.Wires), Results: results}, nil
}

// Evict removes a circuit and releases its memory slots. Concurrent
// mutations either complete before the eviction's entry lock or observe
// the dead mark and fail with ErrUnknown.
func (s *Store) Evict(name string) error {
	s.mu.Lock()
	e, ok := s.entries[name]
	if ok {
		delete(s.entries, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknown, name)
	}
	e.mu.Lock()
	e.dead = true
	err := s.logEvict(name)
	e.mu.Unlock()
	s.release(e.slots)
	return err
}

// Close flushes a snapshot (persistent stores) and releases the WAL.
func (s *Store) Close() error {
	if s.dir == "" {
		return nil
	}
	err := s.Snapshot()
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// lookup fetches a live entry under the read lock.
func (s *Store) lookup(name string) *entry {
	s.mu.RLock()
	e := s.entries[name]
	s.mu.RUnlock()
	return e
}

// buildEntry routes c's baseline and assembles its resident state.
func (s *Store) buildEntry(c *circuit.Circuit) *entry {
	res, arr, paths := routeBaseline(c, s.params)
	// The store owns a private copy: the caller keeps its circuit, and
	// mutations must not alias the upload's backing arrays.
	cc := &circuit.Circuit{Name: c.Name, Grid: c.Grid, Wires: make([]circuit.Wire, len(c.Wires))}
	for i := range c.Wires {
		cc.Wires[i] = circuit.Wire{ID: c.Wires[i].ID, Pins: append([]geom.Point(nil), c.Wires[i].Pins...)}
	}
	e := &entry{
		circ:     cc,
		arr:      arr,
		paths:    paths,
		baseline: res,
		scratch:  route.NewScratch(c.Grid),
	}
	e.bytes = e.estimateBytes()
	e.slots = int((e.bytes + slotBytes - 1) / slotBytes)
	return e
}

// routeBaseline mirrors route.Sequential exactly — same iteration
// structure, same commit order, bit-identical final array — while
// retaining the final per-wire paths keyed by wire id.
// TestBaselineMatchesSequential pins the equivalence.
func routeBaseline(c *circuit.Circuit, params route.Params) (route.Result, *costarray.CostArray, map[int]route.Path) {
	params = params.Normalized()
	arr := costarray.New(c.Grid)
	view := route.ArrayView{A: arr}
	scratch := route.NewScratch(c.Grid)
	paths := make([]route.Path, len(c.Wires))
	lastCost := make([]int64, len(c.Wires))
	var res route.Result
	for iter := 0; iter < params.Iterations; iter++ {
		for i := range c.Wires {
			w := &c.Wires[i]
			if iter > 0 {
				route.RipUp(view, paths[i])
			}
			ev := scratch.RouteWire(view, w, params)
			cost := route.PathCost(view, ev.Path)
			route.Commit(view, ev.Path)
			paths[i] = ev.Path
			lastCost[i] = cost
			res.CellsExamined += int64(ev.CellsExamined)
			res.WiresRouted++
		}
	}
	res.CircuitHeight = arr.CircuitHeight()
	for _, c := range lastCost {
		res.Occupancy += c
	}
	byID := make(map[int]route.Path, len(c.Wires))
	for i := range c.Wires {
		byID[c.Wires[i].ID] = paths[i]
	}
	return res, arr, byID
}

// validateUpload checks semantic validity plus the wire protocol's
// encodability bounds — every accepted circuit must be expressible as a
// WAL record.
func validateUpload(c *circuit.Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(c.Name) > wire.MaxName {
		return fmt.Errorf("store: circuit name %d bytes (max %d)", len(c.Name), wire.MaxName)
	}
	if len(c.Wires) > wire.MaxWires {
		return fmt.Errorf("store: %d wires (max %d)", len(c.Wires), wire.MaxWires)
	}
	if c.Grid.Channels > 1<<16-1 || c.Grid.Grids > 1<<16-1 {
		return fmt.Errorf("store: grid %dx%d outside the wire protocol's 16-bit domain",
			c.Grid.Channels, c.Grid.Grids)
	}
	for i := range c.Wires {
		w := &c.Wires[i]
		if w.ID < 0 || w.ID > 1<<31-1 {
			return fmt.Errorf("store: wire id %d outside [0, %d]", w.ID, 1<<31-1)
		}
		if len(w.Pins) > wire.MaxPins {
			return fmt.Errorf("store: wire %d has %d pins (max %d)", w.ID, len(w.Pins), wire.MaxPins)
		}
	}
	return nil
}

// validateOps simulates the batch against the entry's wire set so apply
// cannot fail. Present tracks ids the batch itself adds or removes.
func (e *entry) validateOps(ops []Op) error {
	present := make(map[int]bool)
	has := func(id int) bool {
		if v, ok := present[id]; ok {
			return v
		}
		_, ok := e.paths[id]
		return ok
	}
	for i := range ops {
		op := &ops[i]
		if op.WireID < 0 || op.WireID > 1<<31-1 {
			return fmt.Errorf("%w: op %d: wire id %d outside [0, %d]", ErrBadOp, i, op.WireID, 1<<31-1)
		}
		switch op.Kind {
		case OpAdd:
			if has(op.WireID) {
				return fmt.Errorf("%w: op %d: add duplicates wire %d", ErrBadOp, i, op.WireID)
			}
			if err := e.checkPins(i, op); err != nil {
				return err
			}
			present[op.WireID] = true
		case OpRemove:
			if !has(op.WireID) {
				return fmt.Errorf("%w: op %d: remove of unknown wire %d", ErrBadOp, i, op.WireID)
			}
			present[op.WireID] = false
		case OpReroute:
			if !has(op.WireID) {
				return fmt.Errorf("%w: op %d: reroute of unknown wire %d", ErrBadOp, i, op.WireID)
			}
			if len(op.Pins) > 0 {
				if err := e.checkPins(i, op); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("%w: op %d: unknown kind %d", ErrBadOp, i, uint8(op.Kind))
		}
	}
	return nil
}

// checkPins validates an op's pin list as a wire of this circuit.
func (e *entry) checkPins(i int, op *Op) error {
	if len(op.Pins) > wire.MaxPins {
		return fmt.Errorf("%w: op %d: %d pins (max %d)", ErrBadOp, i, len(op.Pins), wire.MaxPins)
	}
	w := circuit.Wire{ID: op.WireID, Pins: op.Pins}
	if err := w.Validate(e.circ.Grid); err != nil {
		return fmt.Errorf("%w: op %d: %v", ErrBadOp, i, err)
	}
	return nil
}

// apply executes a validated batch against the canonical array. Each
// add/reroute is one incremental rip-up-and-reroute: only the op's own
// wire is ripped up and re-routed, so the work is bounded by that
// wire's footprint.
func (e *entry) apply(params route.Params, ops []Op) []OpResult {
	view := route.ArrayView{A: e.arr}
	results := make([]OpResult, len(ops))
	for i := range ops {
		op := &ops[i]
		r := OpResult{Kind: op.Kind, WireID: op.WireID}
		switch op.Kind {
		case OpAdd:
			w := circuit.Wire{ID: op.WireID, Pins: append([]geom.Point(nil), op.Pins...)}
			e.routeInto(view, params, &w, &r)
			e.circ.Wires = append(e.circ.Wires, w)
		case OpRemove:
			r.Ripped = e.paths[op.WireID]
			route.RipUp(view, r.Ripped)
			delete(e.paths, op.WireID)
			e.removeWire(op.WireID)
		case OpReroute:
			r.Ripped = e.paths[op.WireID]
			route.RipUp(view, r.Ripped)
			w := &e.circ.Wires[e.wireIndex(op.WireID)]
			if len(op.Pins) > 0 {
				w.Pins = append([]geom.Point(nil), op.Pins...)
			}
			e.routeInto(view, params, w, &r)
		}
		e.epoch++
		results[i] = r
	}
	e.bytes = e.estimateBytes()
	return results
}

// routeInto routes one wire against current congestion and commits it,
// filling the result's evaluation fields.
func (e *entry) routeInto(view route.ArrayView, params route.Params, w *circuit.Wire, r *OpResult) {
	ev := e.scratch.RouteWire(view, w, params)
	r.Cost = route.PathCost(view, ev.Path)
	route.Commit(view, ev.Path)
	r.Routed = ev.Path
	r.PathCells = ev.Path.Len()
	r.CellsExamined = ev.CellsExamined
	e.paths[w.ID] = ev.Path
}

// wireIndex finds a wire's slice index; validation guarantees presence.
func (e *entry) wireIndex(id int) int {
	for i := range e.circ.Wires {
		if e.circ.Wires[i].ID == id {
			return i
		}
	}
	panic(fmt.Sprintf("store: wire %d vanished after validation", id))
}

// removeWire splices a wire out preserving order, so snapshot encoding
// stays deterministic.
func (e *entry) removeWire(id int) {
	i := e.wireIndex(id)
	e.circ.Wires = append(e.circ.Wires[:i], e.circ.Wires[i+1:]...)
}

// estimateBytes is the memory-budget charge: array cells plus wire and
// path headers. An estimate, not an allocator census — the budget is an
// admission bound, not an accounting ledger.
func (e *entry) estimateBytes() int64 {
	b := int64(e.circ.Grid.Cells()) * 4
	for i := range e.circ.Wires {
		b += 48 + 16*int64(len(e.circ.Wires[i].Pins))
	}
	for _, p := range e.paths {
		b += 16 * int64(len(p.Cells))
	}
	return b
}

// infoLocked assembles the summary; caller holds e.mu.
func (e *entry) infoLocked(name string) Info {
	return Info{
		Name:      name,
		Grid:      e.circ.Grid,
		Wires:     len(e.circ.Wires),
		Epoch:     e.epoch,
		Bytes:     e.bytes,
		Baseline:  e.baseline,
		ArrayHash: hashArray(e.arr),
	}
}

// hashArray fingerprints a cost array: sha256 over its cells as
// little-endian int32s. Equal hashes mean byte-identical arrays.
func hashArray(arr *costarray.CostArray) string {
	h := sha256.New()
	var b [4]byte
	for _, c := range arr.Cells() {
		binary.LittleEndian.PutUint32(b[:], uint32(c))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// acquire takes n gate slots or none (nil gate admits everything).
func (s *Store) acquire(n int) bool {
	if s.gate == nil {
		return true
	}
	for i := 0; i < n; i++ {
		if !s.gate.TryEnter() {
			for ; i > 0; i-- {
				s.gate.Leave()
			}
			return false
		}
	}
	return true
}

// release gives back n gate slots.
func (s *Store) release(n int) {
	if s.gate == nil {
		return
	}
	for i := 0; i < n; i++ {
		s.gate.Leave()
	}
}

// Package tracev is the event-level tracing layer of the DES runtimes:
// where internal/obs aggregates simulated time into per-node counters,
// tracev records the *sequence* — begin/end spans, instant events, and
// cross-node packet flows — so a run can be replayed as a timeline
// (Chrome trace-event JSON, openable in ui.perfetto.dev) and mined for
// the chain of dependent events that bounds the run's simulated time
// (the critical path, critpath.go).
//
// tracev sits below internal/sim in the import graph, so timestamps are
// plain int64 simulated nanoseconds rather than sim.Time; callers
// convert at the instrumentation site.
//
// # Cost model
//
// A nil *Tracer is the disabled state: every method returns after one
// pointer test and allocates nothing, so instrumented hot paths (kernel
// event dispatch, channel wakes, per-wire routing) pay nothing
// measurable when tracing is off. An enabled tracer records into a ring
// of flat Event structs — no per-event allocation once the ring has
// grown to capacity; when the ring is full the oldest events are
// overwritten (Dropped reports how many), which is exactly the right
// retention policy for the critical-path walk: it runs backward from
// the end of the run, so the most recent events are the valuable ones.
//
// # Event model
//
// Events carry a stable integer Kind (never reorder these constants: a
// written trace's kinds must stay decodable across versions), a Track
// (the simulated node id; TrackKernel for kernel-context events), a
// timestamp, and one Arg whose meaning the Kind defines. Five record
// types exist:
//
//   - TypeBegin/TypeEnd bracket a span on one track (B/E in the Chrome
//     format); they must balance and nest per track.
//   - TypeInstant marks a point (channel block/wake, packet delivery).
//   - TypeFlowBegin/TypeFlowEnd are the two ends of a cross-track
//     arrow: a packet leaving its sender and being dequeued by its
//     receiver, joined by a Flow id unique within the run.
//   - An Account instant (KindAccount) is the analyzer's backbone: it
//     stamps that the interval since the previous Account on the same
//     track belongs to Category(Arg). The MP runtimes emit one at every
//     point simulated time advances — the same sites that drive
//     obs.NodeClock — so each track's Account stamps tile the node's
//     whole life.
package tracev

// Type discriminates the record layouts.
type Type uint8

const (
	// TypeBegin opens a span on Track at At.
	TypeBegin Type = iota
	// TypeEnd closes the most recent open span on Track.
	TypeEnd
	// TypeInstant marks a point event on Track.
	TypeInstant
	// TypeFlowBegin starts a cross-track flow (a packet leaving Track).
	TypeFlowBegin
	// TypeFlowEnd finishes a flow (the packet dequeued on Track).
	TypeFlowEnd
)

// Kind is the stable event vocabulary. Integer values are part of the
// trace format: append new kinds, never renumber.
type Kind uint8

const (
	// KindNone is the zero kind.
	KindNone Kind = iota
	// KindRouteWire spans one wire routing (rip-up, evaluation,
	// commit); Arg is the wire index.
	KindRouteWire
	// KindSendPacket spans one protocol send (assembly copy, network
	// injection); Arg is the protocol message kind (msg.Kind).
	KindSendPacket
	// KindHandlePacket spans one packet reception (receive copy,
	// disassembly, application, responses); Arg is the packet size in
	// bytes.
	KindHandlePacket
	// KindBlocked spans a wait for outstanding update responses
	// (blocking schedules) or task completions; Arg is the number
	// outstanding at entry.
	KindBlocked
	// KindBarrier spans the inter-iteration barrier; Arg is the
	// iteration index.
	KindBarrier
	// KindPacketFlow is the flow pair of one packet crossing the mesh:
	// FlowBegin on the sender at injection (Arg = size in bytes),
	// FlowEnd on the receiver at dequeue (Arg = size in bytes).
	KindPacketFlow
	// KindDeliver is the instant a packet's tail arrives in the
	// destination inbox (before the receiver dequeues it); Arg is the
	// packet size in bytes.
	KindDeliver
	// KindChanBlock is the instant a process parks on an empty
	// simulated channel; Arg is unused.
	KindChanBlock
	// KindChanWake is the instant a parked process resumes with an item
	// available; Arg is the queue depth seen on waking.
	KindChanWake
	// KindAccount stamps that the interval since the previous
	// KindAccount on the same track belongs to Category(Arg). The
	// stamps on one track tile the node's life from 0 to its finish.
	KindAccount
	// KindIteration spans one routing iteration on a track; Arg is the
	// iteration index.
	KindIteration

	// Request-lifecycle kinds: the serving path's reqtrace export renders
	// each locusd request as one KindRequest span tiled by stage
	// sub-spans on a synthetic lane track. Arg is the process-unique
	// request id on every one of them.

	// KindRequest spans one serving-path request end to end.
	KindRequest
	// KindReqAdmit spans validation + the policy admission chain.
	KindReqAdmit
	// KindReqQueue spans the wait from dispatch to batch pickup.
	KindReqQueue
	// KindReqBatch spans the in-batch wait before this wire's evaluation.
	KindReqBatch
	// KindReqRoute spans the kernel evaluation of the request's wire.
	KindReqRoute
	// KindReqCommit spans the commit onto the serving replica.
	KindReqCommit
	// KindReqRespond spans the handoff back to the waiting caller.
	KindReqRespond
)

// String names the kind for export and debugging.
func (k Kind) String() string {
	switch k {
	case KindRouteWire:
		return "route wire"
	case KindSendPacket:
		return "send"
	case KindHandlePacket:
		return "handle"
	case KindBlocked:
		return "blocked"
	case KindBarrier:
		return "barrier"
	case KindPacketFlow:
		return "packet"
	case KindDeliver:
		return "deliver"
	case KindChanBlock:
		return "chan block"
	case KindChanWake:
		return "chan wake"
	case KindAccount:
		return "account"
	case KindIteration:
		return "iteration"
	case KindRequest:
		return "request"
	case KindReqAdmit:
		return "admit"
	case KindReqQueue:
		return "queue"
	case KindReqBatch:
		return "batch"
	case KindReqRoute:
		return "route"
	case KindReqCommit:
		return "commit"
	case KindReqRespond:
		return "respond"
	}
	return "event"
}

// Category is the time charge an Account stamp assigns, mirroring the
// obs.NodeClock taxonomy plus the two charges only a path walk can
// attribute: network flight and untraced (ring-truncated) time.
type Category uint8

const (
	// CatCompute is routing work: rip-up, evaluation, commit.
	CatCompute Category = iota
	// CatPacket is update machinery: packet assembly, disassembly,
	// scans, application, network interface copies.
	CatPacket
	// CatBlocked is time parked on an empty receive queue outside the
	// barrier (blocking schedules, strict-ownership segment waits).
	CatBlocked
	// CatBarrier is time parked at the inter-iteration barrier.
	CatBarrier
	// CatNetwork is packet flight time preceding a wait — attributed
	// only by the critical-path walk, never by Account stamps.
	CatNetwork
	// CatUntraced is path time before the oldest retained event when
	// the ring wrapped — attributed only by the critical-path walk.
	CatUntraced

	// NumCategories bounds Category for array indexing.
	NumCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatPacket:
		return "packet"
	case CatBlocked:
		return "blocked"
	case CatBarrier:
		return "barrier"
	case CatNetwork:
		return "network"
	case CatUntraced:
		return "untraced"
	}
	return "category"
}

// TrackKernel is the track of events recorded in kernel context or by a
// process that never declared a track.
const TrackKernel int32 = -1

// Event is one flat trace record. 40 bytes, no pointers: a full ring is
// one allocation and invisible to the garbage collector's scan phase.
type Event struct {
	// At is the simulated time in nanoseconds.
	At int64
	// Arg is kind-specific (wire index, packet size, category, ...).
	Arg int64
	// Flow joins TypeFlowBegin/TypeFlowEnd pairs; 0 means no flow.
	Flow uint64
	// Track is the node id the event belongs to (TrackKernel for
	// kernel-context events).
	Track int32
	// Type is the record layout.
	Type Type
	// Kind is the event vocabulary entry.
	Kind Kind
}

// DefaultCapacity is the default ring size (events). At 40 bytes per
// event this is ~40 MB when full — sized so every paper-scale run fits
// without wrapping; small runs only allocate what they record, because
// the ring grows lazily up to the capacity.
const DefaultCapacity = 1 << 20

// Tracer records events into a bounded ring. A nil *Tracer ignores
// every call (the disabled state). A Tracer is confined to one
// simulation: the DES kernel serialises all node execution, so no
// internal locking is needed — do not share one Tracer across
// concurrent runs (the parallel experiment driver gives each traced run
// its own).
type Tracer struct {
	events  []Event
	cap     int
	next    int    // write index once the ring is full
	dropped uint64 // events overwritten after wrap

	dispatches int64  // kernel events dispatched (counter, not events)
	lastFlow   uint64 // flow id allocator
}

// New returns an enabled tracer retaining up to capacity events
// (capacity < 1 selects DefaultCapacity). The ring grows lazily: a run
// recording fewer events never allocates the full capacity.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Tracer{cap: capacity}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// record appends one event, overwriting the oldest when full.
func (t *Tracer) record(e Event) {
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next++
	if t.next == t.cap {
		t.next = 0
	}
	t.dropped++
}

// Begin opens a span of kind k on track at time at.
func (t *Tracer) Begin(track int32, at int64, k Kind, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Arg: arg, Track: track, Type: TypeBegin, Kind: k})
}

// End closes the most recent open span of kind k on track.
func (t *Tracer) End(track int32, at int64, k Kind, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Arg: arg, Track: track, Type: TypeEnd, Kind: k})
}

// Instant records a point event.
func (t *Tracer) Instant(track int32, at int64, k Kind, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Arg: arg, Track: track, Type: TypeInstant, Kind: k})
}

// Account stamps that the interval since the previous Account on track
// belongs to cat.
func (t *Tracer) Account(track int32, at int64, cat Category) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Arg: int64(cat), Track: track, Type: TypeInstant, Kind: KindAccount})
}

// NewFlow allocates the next flow id (flow ids start at 1; 0 marks "no
// flow"). Returns 0 on a nil tracer so disabled runs carry no flow ids.
func (t *Tracer) NewFlow() uint64 {
	if t == nil {
		return 0
	}
	t.lastFlow++
	return t.lastFlow
}

// FlowBegin records flow leaving track (a packet injected into the
// mesh).
func (t *Tracer) FlowBegin(track int32, at int64, flow uint64, arg int64) {
	if t == nil || flow == 0 {
		return
	}
	t.record(Event{At: at, Arg: arg, Flow: flow, Track: track, Type: TypeFlowBegin, Kind: KindPacketFlow})
}

// FlowEnd records flow terminating on track (the packet dequeued by the
// receiving node).
func (t *Tracer) FlowEnd(track int32, at int64, flow uint64, arg int64) {
	if t == nil || flow == 0 {
		return
	}
	t.record(Event{At: at, Arg: arg, Flow: flow, Track: track, Type: TypeFlowEnd, Kind: KindPacketFlow})
}

// CountDispatch counts one kernel event dispatch. Dispatches are far
// too frequent to record individually; the total is exported as trace
// metadata.
func (t *Tracer) CountDispatch() {
	if t == nil {
		return
	}
	t.dispatches++
}

// Dispatches returns the kernel event dispatch count.
func (t *Tracer) Dispatches() int64 {
	if t == nil {
		return 0
	}
	return t.dispatches
}

// Dropped returns how many events were overwritten after the ring
// wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the retained events oldest-first. The kernel's clock
// never runs backward, so the returned slice is sorted by At. The slice
// is freshly assembled when the ring has wrapped; otherwise it aliases
// the tracer's storage — callers must not record while holding it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.dropped == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

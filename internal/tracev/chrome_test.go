package tracev

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the JSON layout for decoding in tests.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Dispatches    int64  `json:"dispatches"`
		DroppedEvents uint64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []map[string]any `json:"traceEvents"`
}

func writeAndParse(t *testing.T, tr *Tracer, opts ChromeOptions) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome document is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestWriteChromeStructure(t *testing.T) {
	tr := New(64)
	tr.CountDispatch()
	tr.Begin(0, 1000, KindRouteWire, 5)
	tr.End(0, 3000, KindRouteWire, 5)
	f := tr.NewFlow()
	tr.FlowBegin(0, 3000, f, 16)
	tr.Instant(1, 4000, KindDeliver, 16)
	tr.FlowEnd(1, 4000, f, 16)
	tr.Account(1, 4500, CatPacket)
	tr.Instant(TrackKernel, 100, KindChanBlock, 0)

	doc := writeAndParse(t, tr, ChromeOptions{Process: "test run"})
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData.Dispatches != 1 {
		t.Errorf("dispatches = %d", doc.OtherData.Dispatches)
	}

	var begins, ends, flowS, flowF int
	var procName string
	kernelTid := -1.0
	maxNodeTid := -1.0
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		case "s":
			flowS++
		case "f":
			flowF++
			if e["bp"] != "e" {
				t.Error("flow-end event missing bp:e (arrow would bind to enclosing slice start)")
			}
		case "M":
			if e["name"] == "process_name" {
				procName = e["args"].(map[string]any)["name"].(string)
			}
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				tid := e["tid"].(float64)
				if args["name"] == "kernel" {
					kernelTid = tid
				} else if tid > maxNodeTid {
					maxNodeTid = tid
				}
			}
		}
	}
	if begins != ends {
		t.Errorf("unbalanced spans: %d B vs %d E", begins, ends)
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events: %d s, %d f", flowS, flowF)
	}
	if procName != "test run" {
		t.Errorf("process name = %q", procName)
	}
	if kernelTid <= maxNodeTid {
		t.Errorf("kernel tid %v does not sort after node tids (max %v)", kernelTid, maxNodeTid)
	}
}

func TestWriteChromeArgAndTrackNames(t *testing.T) {
	tr := New(16)
	tr.Begin(2, 0, KindSendPacket, 3)
	tr.End(2, 10, KindSendPacket, 3)
	var buf bytes.Buffer
	err := tr.WriteChrome(&buf, ChromeOptions{
		TrackName: func(track int32) string { return "proc-2" },
		ArgName: func(k Kind, arg int64) string {
			if k == KindSendPacket {
				return "ReqRmtData"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"proc-2"`) {
		t.Error("custom track name missing")
	}
	if !strings.Contains(out, `"label":"ReqRmtData"`) {
		t.Error("arg label missing")
	}
	if !strings.Contains(out, `"msg_kind":3`) {
		t.Error("per-kind arg key missing")
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(64)
		tr.Begin(0, 1234567, KindRouteWire, 1)
		tr.End(0, 2345678, KindRouteWire, 1)
		tr.Account(0, 2345678, CatCompute)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChrome(&a, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChrome(&b, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same trace produced different documents")
	}
	// Timestamps are exact microsecond strings, never floats.
	if !strings.Contains(a.String(), `"ts":1234.567`) {
		t.Errorf("timestamp formatting drifted:\n%s", a.String())
	}
}

func TestFormatTS(t *testing.T) {
	cases := map[int64]string{
		0:          "0.000",
		999:        "0.999",
		1000:       "1.000",
		1234567:    "1234.567",
		-1500:      "-1.500",
		1000000000: "1000000.000",
	}
	for ns, want := range cases {
		if got := formatTS(ns); got != want {
			t.Errorf("formatTS(%d) = %q, want %q", ns, got, want)
		}
	}
}

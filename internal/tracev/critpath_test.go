package tracev

import "testing"

// stamp builds the Account event the runtimes record.
func stamp(track int32, at int64, cat Category) Event {
	return Event{At: at, Arg: int64(cat), Track: track, Type: TypeInstant, Kind: KindAccount}
}

func sumByCat(p *CriticalPath) int64 {
	var total int64
	for _, ns := range p.ByCat {
		total += ns
	}
	return total
}

func TestAnalyzeSingleTrack(t *testing.T) {
	// One node: compute to 100, packet work to 130, compute to 200.
	events := []Event{
		stamp(0, 100, CatCompute),
		stamp(0, 130, CatPacket),
		stamp(0, 200, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalNs != 200 {
		t.Fatalf("total = %d, want 200", p.TotalNs)
	}
	if p.ByCat[CatCompute] != 170 || p.ByCat[CatPacket] != 30 {
		t.Fatalf("breakdown = %v", p.ByCat)
	}
	if sumByCat(p) != p.TotalNs {
		t.Fatalf("categories sum to %d, want %d", sumByCat(p), p.TotalNs)
	}
	if p.Hops != 0 || p.EndTrack != 0 {
		t.Fatalf("hops = %d endTrack = %d", p.Hops, p.EndTrack)
	}
}

func TestAnalyzeJumpsToSenderAcrossFlow(t *testing.T) {
	// Node 1 computes to 50, then blocks until 150 waiting for a packet
	// node 0 injected at 60 (node 0 computed to 60). The path must be:
	// node 0 compute [0,60] → wait on node 1 [60,150] → node 1 compute
	// [150,200].
	events := []Event{
		stamp(1, 50, CatCompute),
		stamp(0, 60, CatCompute),
		{At: 60, Arg: 16, Flow: 7, Track: 0, Type: TypeFlowBegin, Kind: KindPacketFlow},
		{At: 150, Arg: 16, Flow: 7, Track: 1, Type: TypeFlowEnd, Kind: KindPacketFlow},
		stamp(1, 150, CatBlocked),
		stamp(1, 200, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalNs != 200 {
		t.Fatalf("total = %d", p.TotalNs)
	}
	if p.Hops != 1 {
		t.Fatalf("hops = %d, want 1", p.Hops)
	}
	// Blocked on path: 150-60 = 90; compute: 60 (node 0) + 50 (node 1) = 110.
	if p.ByCat[CatBlocked] != 90 {
		t.Fatalf("blocked = %d, want 90", p.ByCat[CatBlocked])
	}
	if p.ByCat[CatCompute] != 110 {
		t.Fatalf("compute = %d, want 110", p.ByCat[CatCompute])
	}
	if sumByCat(p) != p.TotalNs {
		t.Fatalf("categories sum to %d, want %d", sumByCat(p), p.TotalNs)
	}
	// First step must be node 0's compute, last node 1's compute.
	if len(p.Steps) < 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if first := p.Steps[0]; first.Track != 0 || first.Cat != CatCompute {
		t.Fatalf("first step = %+v", first)
	}
	if last := p.Steps[len(p.Steps)-1]; last.Track != 1 || last.Cat != CatCompute {
		t.Fatalf("last step = %+v", last)
	}
	// The wait step names its causal sender.
	var hop *Step
	for i := range p.Steps {
		if p.Steps[i].Flow != 0 {
			hop = &p.Steps[i]
		}
	}
	if hop == nil || hop.FromTrack != 0 || hop.Bytes != 16 {
		t.Fatalf("hop step = %+v", hop)
	}
}

func TestAnalyzeChargesPreWaitFlightToNetwork(t *testing.T) {
	// The packet was injected at 20 while node 1 was still computing
	// (until 100): flight [20,100] is network time on the path, the wait
	// [100,150] is blocked time, and the walk lands on node 0 at 20.
	events := []Event{
		stamp(0, 20, CatCompute),
		{At: 20, Arg: 8, Flow: 3, Track: 0, Type: TypeFlowBegin, Kind: KindPacketFlow},
		stamp(1, 100, CatCompute),
		{At: 150, Arg: 8, Flow: 3, Track: 1, Type: TypeFlowEnd, Kind: KindPacketFlow},
		stamp(1, 150, CatBlocked),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalNs != 150 {
		t.Fatalf("total = %d", p.TotalNs)
	}
	if p.ByCat[CatBlocked] != 50 {
		t.Fatalf("blocked = %d, want 50", p.ByCat[CatBlocked])
	}
	if p.ByCat[CatNetwork] != 80 {
		t.Fatalf("network = %d, want 80", p.ByCat[CatNetwork])
	}
	if p.ByCat[CatCompute] != 20 {
		t.Fatalf("compute = %d, want 20", p.ByCat[CatCompute])
	}
	if sumByCat(p) != p.TotalNs {
		t.Fatalf("categories sum to %d, want %d", sumByCat(p), p.TotalNs)
	}
}

func TestAnalyzeUnresolvableWaitFallsBackSameTrack(t *testing.T) {
	// A blocked span with no flow end (the ring dropped it): the wait is
	// charged as blocked and the walk continues on the same track.
	events := []Event{
		stamp(0, 40, CatCompute),
		stamp(0, 100, CatBlocked),
		stamp(0, 120, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.ByCat[CatBlocked] != 60 || p.ByCat[CatCompute] != 60 {
		t.Fatalf("breakdown = %v", p.ByCat)
	}
	if p.Hops != 0 {
		t.Fatalf("hops = %d", p.Hops)
	}
}

func TestAnalyzeAttributesMissingPrefixToUntraced(t *testing.T) {
	// The track's stamps start at 100 with nothing covering [0,100) on a
	// *jump target* track. Simulate: node 1 blocked wait resolved by a
	// flow from node 0, but node 0 has no stamps at the injection time.
	events := []Event{
		{At: 10, Arg: 4, Flow: 9, Track: 0, Type: TypeFlowBegin, Kind: KindPacketFlow},
		{At: 80, Arg: 4, Flow: 9, Track: 1, Type: TypeFlowEnd, Kind: KindPacketFlow},
		stamp(1, 80, CatBlocked),
		stamp(1, 100, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.ByCat[CatUntraced] != 10 {
		t.Fatalf("untraced = %d, want 10 (node 0's life before the trace)", p.ByCat[CatUntraced])
	}
	if sumByCat(p) != p.TotalNs {
		t.Fatalf("categories sum to %d, want %d", sumByCat(p), p.TotalNs)
	}
}

func TestAnalyzeEmptyTraceFails(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("no error for an empty trace")
	}
	// Flows alone are not a timeline either.
	events := []Event{
		{At: 10, Flow: 1, Track: 0, Type: TypeFlowBegin, Kind: KindPacketFlow},
	}
	if _, err := Analyze(events); err == nil {
		t.Fatal("no error for a trace without account stamps")
	}
}

func TestAnalyzeTieBreaksTowardLowestTrack(t *testing.T) {
	events := []Event{
		stamp(2, 100, CatCompute),
		stamp(0, 100, CatCompute),
		stamp(1, 100, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndTrack != 0 {
		t.Fatalf("endTrack = %d, want 0 (deterministic tie-break)", p.EndTrack)
	}
}

func TestAnalyzeMergesAdjacentSteps(t *testing.T) {
	// Three consecutive compute tiles on one track collapse to one step.
	events := []Event{
		stamp(0, 10, CatCompute),
		stamp(0, 20, CatCompute),
		stamp(0, 30, CatCompute),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (merge broken)", len(p.Steps))
	}
	if s := p.Steps[0]; s.FromNs != 0 || s.ToNs != 30 {
		t.Fatalf("merged step = %+v", s)
	}
}

func TestAnalyzeWireAnnotation(t *testing.T) {
	events := []Event{
		{At: 0, Arg: 42, Track: 0, Type: TypeBegin, Kind: KindRouteWire},
		stamp(0, 50, CatCompute),
		{At: 50, Arg: 42, Track: 0, Type: TypeEnd, Kind: KindRouteWire},
		stamp(0, 60, CatPacket),
	}
	p, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	var computeStep *Step
	for i := range p.Steps {
		if p.Steps[i].Cat == CatCompute {
			computeStep = &p.Steps[i]
		}
	}
	if computeStep == nil || computeStep.Wire != 42 {
		t.Fatalf("compute step = %+v, want wire 42", computeStep)
	}
}

package tracev

import (
	"fmt"
	"sort"
)

// This file extracts the critical path of a traced DES run: the single
// chain of dependent events that sets the run's simulated time. The
// aggregate per-node breakdown (internal/obs) answers "how much time
// went where in total"; the critical path answers the sharper question
// the paper's Section 5.1.3 blocking analysis poses — which waits
// actually bound execution, and which packet (from which node) ended
// each one.
//
// # How the walk works
//
// The MP runtimes stamp a KindAccount event at every point a node's
// simulated time advances, so each track's stamps tile its life into
// contiguous category intervals — the same partition obs.NodeClock
// accumulates, kept as a sequence instead of four sums. Packet flows
// tie the tracks together: a FlowBegin on the sender at injection and a
// FlowEnd on the receiver at dequeue share a flow id.
//
// The walk starts at the run's end — the last stamp of the
// last-finishing node — and moves a global time cursor backward to
// zero, attributing every covered interval to exactly one category:
//
//   - A busy interval (compute or packet) lies on the path as itself:
//     attribute it and continue on the same track at its start.
//   - An idle interval (blocked or barrier) was ended by a packet
//     dequeue. The wait existed because that packet had not yet
//     arrived, so the wait back to the packet's injection is charged to
//     the idle category, and the walk jumps to the *sender's* track at
//     injection time — the causal predecessor. If the packet was
//     already in flight when the receiver started waiting, the flight
//     portion before the wait began is charged to CatNetwork.
//
// Because each step moves the cursor strictly downward and attributes
// the skipped interval to exactly one category, the per-category sums
// add up to the run's simulated time by construction. If the ring
// wrapped and the oldest events are gone, the unreachable prefix is
// charged to CatUntraced — the identity still holds.
type span struct {
	from, to int64
	cat      Category
}

type flowEndRec struct {
	at   int64
	flow uint64
	arg  int64
}

type flowRef struct {
	at    int64
	track int32
}

type wireSpan struct {
	from, to int64
	wire     int64
}

// Step is one interval of the critical path.
type Step struct {
	// Track is the node whose activity (or wait) covers the interval.
	Track int32
	// Cat is the time category the interval is charged to.
	Cat Category
	// FromNs and ToNs bound the interval in simulated nanoseconds.
	FromNs, ToNs int64
	// Wire is the wire being routed during a compute interval (-1 when
	// no wire span covers it).
	Wire int64
	// Flow, when non-zero, is the packet whose arrival ended this wait;
	// FromTrack is the node that sent it and Bytes its size.
	Flow      uint64
	FromTrack int32
	Bytes     int64
}

// DurNs returns the step's length.
func (s Step) DurNs() int64 { return s.ToNs - s.FromNs }

// CriticalPath is the extracted chain and its per-category breakdown.
type CriticalPath struct {
	// TotalNs is the run's simulated end time; the ByCat entries sum to
	// it exactly.
	TotalNs int64
	// ByCat attributes every path nanosecond to one category.
	ByCat [NumCategories]int64
	// Steps is the chain in forward time order; adjacent intervals with
	// identical attribution are merged.
	Steps []Step
	// Hops counts the cross-track jumps (waits ended by a packet from
	// another node).
	Hops int
	// EndTrack is the last-finishing node the walk started from.
	EndTrack int32
}

// Seconds converts a ByCat entry to floating-point seconds.
func (p *CriticalPath) Seconds(cat Category) float64 {
	return float64(p.ByCat[cat]) / 1e9
}

// Analyze extracts the critical path from a trace's events (as returned
// by Tracer.Events: oldest first). It fails only when the trace holds
// no account stamps at all — there is no timeline to walk.
func Analyze(events []Event) (*CriticalPath, error) {
	spans := map[int32][]span{}
	last := map[int32]int64{}
	flowEnds := map[int32][]flowEndRec{}
	flowBegins := map[uint64]flowRef{}
	wires := map[int32][]wireSpan{}
	wireOpen := map[int32][]wireSpan{}

	for _, e := range events {
		switch {
		case e.Kind == KindAccount:
			prev := last[e.Track]
			if e.At > prev {
				spans[e.Track] = append(spans[e.Track], span{from: prev, to: e.At, cat: Category(e.Arg)})
			}
			last[e.Track] = e.At
		case e.Type == TypeFlowBegin:
			flowBegins[e.Flow] = flowRef{at: e.At, track: e.Track}
		case e.Type == TypeFlowEnd:
			flowEnds[e.Track] = append(flowEnds[e.Track], flowEndRec{at: e.At, flow: e.Flow, arg: e.Arg})
		case e.Kind == KindRouteWire && e.Type == TypeBegin:
			wireOpen[e.Track] = append(wireOpen[e.Track], wireSpan{from: e.At, wire: e.Arg})
		case e.Kind == KindRouteWire && e.Type == TypeEnd:
			if open := wireOpen[e.Track]; len(open) > 0 {
				ws := open[len(open)-1]
				wireOpen[e.Track] = open[:len(open)-1]
				ws.to = e.At
				wires[e.Track] = append(wires[e.Track], ws)
			}
		}
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("tracev: no account stamps in trace (was the run instrumented?)")
	}

	// The walk starts at the maximum finish time; ties break toward the
	// smallest track id so the result is deterministic.
	var start int32
	var total int64 = -1
	tracks := make([]int32, 0, len(last))
	for tr := range last {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, tr := range tracks {
		if last[tr] > total {
			total, start = last[tr], tr
		}
	}

	p := &CriticalPath{TotalNs: total, EndTrack: start}
	track, t := start, total
	// Each iteration either attributes a positive interval or falls
	// back to CatUntraced and stops, so 2x the span count bounds the
	// walk against malformed input.
	for guard := 0; t > 0; guard++ {
		if guard > 2*len(events)+16 {
			p.attribute(Step{Track: track, Cat: CatUntraced, FromNs: 0, ToNs: t, Wire: -1, FromTrack: -1})
			break
		}
		s, ok := findSpan(spans[track], t)
		if !ok {
			// The ring dropped this track's early stamps (or the jump
			// target predates the trace): the remaining prefix is
			// unattributable.
			p.attribute(Step{Track: track, Cat: CatUntraced, FromNs: 0, ToNs: t, Wire: -1, FromTrack: -1})
			break
		}
		switch s.cat {
		case CatCompute, CatPacket:
			p.attribute(Step{Track: track, Cat: s.cat, FromNs: s.from, ToNs: t,
				Wire: findWire(wires[track], s.from, t), FromTrack: -1})
			t = s.from
		default: // CatBlocked, CatBarrier
			fe, feOK := findFlowEnd(flowEnds[track], t)
			fb, fbOK := flowBegins[fe.flow]
			if !feOK || !fbOK || fb.at >= t {
				// No resolvable cause (dropped events): charge the wait
				// itself and keep walking the same track.
				p.attribute(Step{Track: track, Cat: s.cat, FromNs: s.from, ToNs: t, Wire: -1, FromTrack: -1})
				t = s.from
				break
			}
			waitFrom := fb.at
			if fb.at < s.from {
				// The packet was already in flight when the wait began:
				// the pre-wait flight is network time on the path.
				waitFrom = s.from
			}
			p.attribute(Step{Track: track, Cat: s.cat, FromNs: waitFrom, ToNs: t, Wire: -1,
				Flow: fe.flow, FromTrack: fb.track, Bytes: fe.arg})
			if fb.at < waitFrom {
				p.attribute(Step{Track: track, Cat: CatNetwork, FromNs: fb.at, ToNs: waitFrom, Wire: -1,
					Flow: fe.flow, FromTrack: fb.track, Bytes: fe.arg})
			}
			p.Hops++
			track, t = fb.track, fb.at
		}
	}

	// The walk appended backward; present the chain forward.
	for i, j := 0, len(p.Steps)-1; i < j; i, j = i+1, j-1 {
		p.Steps[i], p.Steps[j] = p.Steps[j], p.Steps[i]
	}
	return p, nil
}

// attribute charges one interval and appends it to the (backward) step
// chain, merging into the previous step when the attribution matches.
func (p *CriticalPath) attribute(s Step) {
	if s.ToNs <= s.FromNs {
		return
	}
	p.ByCat[s.Cat] += s.ToNs - s.FromNs
	if n := len(p.Steps); n > 0 {
		prev := &p.Steps[n-1]
		if prev.Track == s.Track && prev.Cat == s.Cat && prev.Wire == s.Wire &&
			prev.Flow == 0 && s.Flow == 0 && prev.FromNs == s.ToNs {
			prev.FromNs = s.FromNs
			return
		}
	}
	p.Steps = append(p.Steps, s)
}

// findSpan returns the tile containing (from, t]: the earliest span
// with to >= t and from < t.
func findSpan(spans []span, t int64) (span, bool) {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].to >= t })
	if i == len(spans) || spans[i].from >= t {
		return span{}, false
	}
	return spans[i], true
}

// findFlowEnd returns the earliest dequeue at or after t on the track —
// the packet whose arrival ended a wait that finished at t.
func findFlowEnd(ends []flowEndRec, t int64) (flowEndRec, bool) {
	i := sort.Search(len(ends), func(i int) bool { return ends[i].at >= t })
	if i == len(ends) {
		return flowEndRec{}, false
	}
	return ends[i], true
}

// findWire returns the wire whose routing span covers the interval
// midpoint, or -1.
func findWire(ws []wireSpan, from, to int64) int64 {
	mid := from + (to-from)/2
	i := sort.Search(len(ws), func(i int) bool { return ws[i].to >= mid })
	if i == len(ws) || ws[i].from > mid {
		return -1
	}
	return ws[i].wire
}

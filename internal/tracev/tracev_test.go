package tracev

import (
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Begin(0, 1, KindRouteWire, 7)
	tr.End(0, 2, KindRouteWire, 7)
	tr.Instant(0, 3, KindDeliver, 9)
	tr.Account(0, 4, CatCompute)
	tr.CountDispatch()
	if f := tr.NewFlow(); f != 0 {
		t.Fatalf("nil tracer allocated flow %d", f)
	}
	tr.FlowBegin(0, 5, 1, 0)
	tr.FlowEnd(0, 6, 1, 0)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Dispatches() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained state")
	}
}

func TestZeroFlowIsNotRecorded(t *testing.T) {
	tr := New(8)
	tr.FlowBegin(0, 1, 0, 0)
	tr.FlowEnd(0, 2, 0, 0)
	if tr.Len() != 0 {
		t.Fatalf("flow id 0 recorded %d events", tr.Len())
	}
}

func TestFlowIDsStartAtOne(t *testing.T) {
	tr := New(8)
	if f := tr.NewFlow(); f != 1 {
		t.Fatalf("first flow id = %d, want 1", f)
	}
	if f := tr.NewFlow(); f != 2 {
		t.Fatalf("second flow id = %d, want 2", f)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(4)
	for i := int64(1); i <= 6; i++ {
		tr.Instant(0, i, KindDeliver, i)
	}
	if tr.Len() != 4 {
		t.Fatalf("retained %d events, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped %d events, want 2", tr.Dropped())
	}
	ev := tr.Events()
	for i, want := range []int64{3, 4, 5, 6} {
		if ev[i].At != want {
			t.Fatalf("event %d at %d, want %d (oldest-first unwrap broken)", i, ev[i].At, want)
		}
	}
}

func TestEventsSortedWithoutWrap(t *testing.T) {
	tr := New(16)
	for i := int64(1); i <= 5; i++ {
		tr.Instant(0, i, KindDeliver, 0)
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("len = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestDispatchCounterDoesNotRecordEvents(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.CountDispatch()
	}
	if tr.Dispatches() != 100 {
		t.Fatalf("dispatches = %d", tr.Dispatches())
	}
	if tr.Len() != 0 {
		t.Fatalf("dispatch counting recorded %d events", tr.Len())
	}
}

func TestKindAndCategoryNamesAreStable(t *testing.T) {
	// The trace format's vocabulary: renaming is fine, renumbering is not.
	kinds := map[Kind]string{
		KindRouteWire: "route wire", KindSendPacket: "send",
		KindHandlePacket: "handle", KindBlocked: "blocked",
		KindBarrier: "barrier", KindPacketFlow: "packet",
		KindDeliver: "deliver", KindChanBlock: "chan block",
		KindChanWake: "chan wake", KindAccount: "account",
		KindIteration: "iteration",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if KindRouteWire != 1 || KindAccount != 10 {
		t.Error("kind integer values changed; written traces are no longer decodable")
	}
	cats := map[Category]string{
		CatCompute: "compute", CatPacket: "packet", CatBlocked: "blocked",
		CatBarrier: "barrier", CatNetwork: "network", CatUntraced: "untraced",
	}
	for c, want := range cats {
		if c.String() != want {
			t.Errorf("category %d = %q, want %q", c, c.String(), want)
		}
	}
}

func BenchmarkRecordInstant(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(3, int64(i), KindAccount, int64(CatCompute))
	}
}

func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(3, int64(i), KindAccount, int64(CatCompute))
		tr.CountDispatch()
	}
}

package tracev

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeOptions configures WriteChrome. The zero value is usable.
type ChromeOptions struct {
	// Process names the single trace process (e.g. "mp-des bnrE x16");
	// empty defaults to "simulation".
	Process string
	// TrackName names a track for the thread list (e.g. "node 3"); nil
	// or an empty result falls back to "node N" / "kernel".
	TrackName func(track int32) string
	// ArgName renders an event's Arg as a human label attached to the
	// event's args (e.g. msg.Kind names for KindSendPacket). Nil or an
	// empty result omits the label.
	ArgName func(k Kind, arg int64) string
}

// chromeCat groups kinds into Perfetto filter categories.
func chromeCat(k Kind) string {
	switch k {
	case KindRouteWire, KindIteration:
		return "route"
	case KindSendPacket, KindHandlePacket, KindPacketFlow, KindDeliver:
		return "net"
	case KindBlocked, KindBarrier, KindChanBlock, KindChanWake:
		return "sync"
	case KindRequest, KindReqAdmit, KindReqQueue, KindReqBatch,
		KindReqRoute, KindReqCommit, KindReqRespond:
		return "request"
	}
	return "meta"
}

// argKey names the Arg field per kind in the exported args object.
func argKey(k Kind) string {
	switch k {
	case KindRouteWire:
		return "wire"
	case KindSendPacket:
		return "msg_kind"
	case KindHandlePacket, KindPacketFlow, KindDeliver:
		return "bytes"
	case KindBlocked:
		return "outstanding"
	case KindBarrier, KindIteration:
		return "iteration"
	case KindChanWake:
		return "queue_depth"
	case KindAccount:
		return "category"
	case KindRequest, KindReqAdmit, KindReqQueue, KindReqBatch,
		KindReqRoute, KindReqCommit, KindReqRespond:
		return "request_id"
	}
	return "arg"
}

// WriteChrome renders the retained events as a Chrome trace-event JSON
// document (the format ui.perfetto.dev and chrome://tracing open): one
// thread per track, B/E spans, thread-scoped instants, and s/f flow
// arrows joining packet injection to packet dequeue. Timestamps are
// simulated nanoseconds rendered as the format's microsecond doubles
// with three decimals, so the document is byte-stable for a given
// trace. Account stamps are exported as instants on their track; the
// heavyweight consumers of those are Analyze and the obs document, but
// keeping them in the export makes every analyzer input auditable in
// the UI.
func (t *Tracer) WriteChrome(w io.Writer, opts ChromeOptions) error {
	bw := bufio.NewWriter(w)
	events := t.Events()

	process := opts.Process
	if process == "" {
		process = "simulation"
	}

	// Collect the tracks present, in first-appearance order of their
	// ids, so thread metadata is stable.
	present := map[int32]bool{}
	var tracks []int32
	for _, e := range events {
		if !present[e.Track] {
			present[e.Track] = true
			tracks = append(tracks, e.Track)
		}
	}
	for i := 1; i < len(tracks); i++ {
		for j := i; j > 0 && tracks[j] < tracks[j-1]; j-- {
			tracks[j], tracks[j-1] = tracks[j-1], tracks[j]
		}
	}
	// The kernel track (-1) renders after every node track.
	tid := func(track int32) int32 {
		if track == TrackKernel {
			maxTrack := int32(0)
			if n := len(tracks); n > 0 {
				maxTrack = tracks[n-1]
			}
			return maxTrack + 1
		}
		return track
	}
	name := func(track int32) string {
		if opts.TrackName != nil {
			if n := opts.TrackName(track); n != "" {
				return n
			}
		}
		if track == TrackKernel {
			return "kernel"
		}
		return fmt.Sprintf("node %d", track)
	}

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dispatches\":%d,\"droppedEvents\":%d},\"traceEvents\":[\n",
		t.Dispatches(), t.Dropped())
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":%s}}", strconv.Quote(process))
	for _, track := range tracks {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%s}}",
			tid(track), strconv.Quote(name(track)))
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
			tid(track), tid(track))
	}

	for _, e := range events {
		ts := formatTS(e.At)
		switch e.Type {
		case TypeBegin, TypeInstant:
			ph := "B"
			scope := ""
			if e.Type == TypeInstant {
				ph = "i"
				scope = ",\"s\":\"t\""
			}
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":%s,\"ph\":%q,\"ts\":%s,\"pid\":0,\"tid\":%d%s,\"args\":{%q:%d",
				strconv.Quote(e.Kind.String()), strconv.Quote(chromeCat(e.Kind)), ph, ts, tid(e.Track), scope, argKey(e.Kind), e.Arg)
			if opts.ArgName != nil {
				if label := opts.ArgName(e.Kind, e.Arg); label != "" {
					fmt.Fprintf(bw, ",\"label\":%s", strconv.Quote(label))
				}
			}
			fmt.Fprint(bw, "}}")
		case TypeEnd:
			fmt.Fprintf(bw, ",\n{\"ph\":\"E\",\"ts\":%s,\"pid\":0,\"tid\":%d}", ts, tid(e.Track))
		case TypeFlowBegin:
			fmt.Fprintf(bw, ",\n{\"name\":\"packet\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}",
				e.Flow, ts, tid(e.Track))
		case TypeFlowEnd:
			fmt.Fprintf(bw, ",\n{\"name\":\"packet\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}",
				e.Flow, ts, tid(e.Track))
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// formatTS renders simulated nanoseconds as the Chrome format's
// microsecond timestamp with exact nanosecond precision (three
// decimals), avoiding floating-point drift entirely.
func formatTS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

package locusd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"locusroute/internal/backend"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/policy"
	"locusroute/internal/store"
	"locusroute/internal/wire"
)

// dynCircuit generates a small circuit for lifecycle tests.
func dynCircuit(t testing.TB, name string, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.GenParams{
		Name: name, Channels: 5, Grids: 60, Wires: 16, MeanSpan: 8, LongFrac: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// uploadDoc renders a circuit as the POST /v1/circuits/{name} body.
func uploadDoc(t testing.TB, c *circuit.Circuit) string {
	t.Helper()
	body := uploadBody{Channels: c.Grid.Channels, Grids: c.Grid.Grids}
	for _, w := range c.Wires {
		uw := uploadWire{ID: w.ID}
		for _, p := range w.Pins {
			uw.Pins = append(uw.Pins, [2]int{p.X, p.Y})
		}
		body.Wires = append(body.Wires, uw)
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// doReq fires one request and returns status, headers and the raw body.
func doReq(t testing.TB, ts *httptest.Server, method, path, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// TestV1LegacyEquivalence pins the versioning contract: every legacy
// path answers byte-identical bodies to its /v1 spelling (modulo uptime,
// the only wall-clock field), carries the Deprecation + Link headers,
// and the /v1 spelling carries neither.
func TestV1LegacyEquivalence(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	volatile := regexp.MustCompile(`"uptime_ms": \d+|locusd_uptime_seconds \d+`)
	for _, path := range []string{"/route", "/circuits", "/healthz", "/metrics"} {
		// GET on /route is the deterministic 405 body; the rest are their
		// regular documents.
		legacyCode, legacyHdr, legacyBody := doReq(t, ts, http.MethodGet, path, "")
		v1Code, v1Hdr, v1Body := doReq(t, ts, http.MethodGet, "/v1"+path, "")
		if legacyCode != v1Code {
			t.Errorf("%s: legacy status %d, /v1 status %d", path, legacyCode, v1Code)
		}
		lb := volatile.ReplaceAllString(string(legacyBody), "T")
		vb := volatile.ReplaceAllString(string(v1Body), "T")
		if lb != vb {
			t.Errorf("%s: bodies diverge across prefixes:\nlegacy: %s\nv1:     %s", path, lb, vb)
		}
		if got := legacyHdr.Get("Deprecation"); got != "true" {
			t.Errorf("%s: legacy Deprecation header %q, want \"true\"", path, got)
		}
		if want := fmt.Sprintf("</v1%s>; rel=%q", path, "successor-version"); legacyHdr.Get("Link") != want {
			t.Errorf("%s: legacy Link header %q, want %q", path, legacyHdr.Get("Link"), want)
		}
		if v1Hdr.Get("Deprecation") != "" || v1Hdr.Get("Link") != "" {
			t.Errorf("%s: /v1 response carries deprecation headers", path)
		}
	}

	// The data plane is the same core: a route through either prefix
	// yields the same evaluation (wait_us is timing, everything else is
	// the contract).
	body := `{"circuit":"svc","wire":9,"pins":[[2,1],[40,4]]}`
	_, _, b1 := doReq(t, ts, http.MethodPost, "/route", body)
	_, _, b2 := doReq(t, ts, http.MethodPost, "/v1/route", body)
	var d1, d2 map[string]any
	if err := json.Unmarshal(b1, &d1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &d2); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"circuit", "wire", "cost", "path_cells", "committed"} {
		if d1[k] != d2[k] {
			t.Errorf("route %s diverges across prefixes: %v vs %v", k, d1[k], d2[k])
		}
	}
}

// TestHTTPLifecycle walks the whole dynamic lifecycle over JSON: upload,
// duplicate conflict, route, mutate (with its incremental results),
// store state on /v1/circuits, evict, and re-upload of the freed name.
func TestHTTPLifecycle(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dynCircuit(t, "dyn", 3)
	code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/dyn", uploadDoc(t, c))
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d (%s)", code, raw)
	}
	var created circuitDoc
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}
	if !created.Mutable || created.Wires != len(c.Wires) || created.ArraySHA256 == "" {
		t.Fatalf("upload doc %+v: want mutable, %d wires, an array hash", created, len(c.Wires))
	}

	// The lifecycle endpoints are /v1-only: no legacy spelling exists.
	if code, _, _ := doReq(t, ts, http.MethodPost, "/circuits/dyn", uploadDoc(t, c)); code != http.StatusNotFound {
		t.Errorf("legacy POST /circuits/dyn: status %d, want 404", code)
	}
	// Duplicate name: conflict.
	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/dyn", uploadDoc(t, c)); code != http.StatusConflict {
		t.Errorf("duplicate upload: status %d, want 409 (%s)", code, raw)
	}

	// The uploaded circuit serves immediately.
	if code, doc := postRoute(t, ts, `{"circuit":"dyn","wire":1,"pins":[[1,1],[20,2]]}`); code != http.StatusOK {
		t.Fatalf("route against upload: status %d (%v)", code, doc)
	}

	// One batch: add a wire, reroute an existing one.
	mutate := fmt.Sprintf(`{"circuit":"dyn","ops":[{"op":"add","wire":900,"pins":[[2,1],[30,3]]},{"op":"reroute","wire":%d}]}`, c.Wires[0].ID)
	code, _, raw = doReq(t, ts, http.MethodPost, "/v1/mutate", mutate)
	if code != http.StatusOK {
		t.Fatalf("mutate: status %d (%s)", code, raw)
	}
	var mres MutateResponse
	if err := json.Unmarshal(raw, &mres); err != nil {
		t.Fatal(err)
	}
	if mres.Epoch != 2 || mres.Wires != len(c.Wires)+1 || len(mres.Results) != 2 {
		t.Fatalf("mutate response %+v: want epoch 2, %d wires, 2 results", mres, len(c.Wires)+1)
	}
	if r := mres.Results[0]; r.Op != "add" || r.WireID != 900 || r.PathCells <= 0 {
		t.Errorf("add result %+v: want a routed path for wire 900", r)
	}
	if r := mres.Results[1]; r.Op != "reroute" || r.PathCells <= 0 {
		t.Errorf("reroute result %+v: want a routed path", r)
	}

	// /v1/circuits reflects the mutation: epoch, wire count, new hash.
	_, _, raw = doReq(t, ts, http.MethodGet, "/v1/circuits", "")
	var cdoc circuitsDoc
	if err := json.Unmarshal(raw, &cdoc); err != nil {
		t.Fatal(err)
	}
	var dyn *circuitDoc
	for i := range cdoc.Circuits {
		if cdoc.Circuits[i].Name == "dyn" {
			dyn = &cdoc.Circuits[i]
		}
	}
	if dyn == nil {
		t.Fatalf("/v1/circuits lost the upload: %s", raw)
	}
	if dyn.MutationEpoch != 2 || dyn.Wires != len(c.Wires)+1 {
		t.Errorf("post-mutation doc %+v: want mutation_epoch 2, %d wires", dyn, len(c.Wires)+1)
	}
	if dyn.ArraySHA256 == created.ArraySHA256 {
		t.Error("mutation left the canonical array hash unchanged")
	}

	// Bad batches: unknown op spelled out, unknown circuit, invalid op.
	if code, _, _ := doReq(t, ts, http.MethodPost, "/v1/mutate", `{"circuit":"dyn","ops":[{"op":"warp","wire":1}]}`); code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", code)
	}
	if code, _, _ := doReq(t, ts, http.MethodPost, "/v1/mutate", `{"circuit":"nope","ops":[{"op":"reroute","wire":1}]}`); code != http.StatusNotFound {
		t.Errorf("unknown circuit: status %d, want 404", code)
	}
	if code, _, _ := doReq(t, ts, http.MethodPost, "/v1/mutate", `{"circuit":"dyn","ops":[{"op":"remove","wire":424242}]}`); code != http.StatusBadRequest {
		t.Errorf("remove of unknown wire: status %d, want 400", code)
	}

	// Evict: gone from serving, name free for re-upload.
	if code, _, raw := doReq(t, ts, http.MethodDelete, "/v1/circuits/dyn", ""); code != http.StatusOK {
		t.Fatalf("evict: status %d (%s)", code, raw)
	}
	if code, _ := postRoute(t, ts, `{"circuit":"dyn","wire":1,"pins":[[1,1],[20,2]]}`); code != http.StatusNotFound {
		t.Errorf("route after evict: status %d, want 404", code)
	}
	if code, _, _ := doReq(t, ts, http.MethodDelete, "/v1/circuits/dyn", ""); code != http.StatusNotFound {
		t.Errorf("double evict: status %d, want 404", code)
	}
	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/dyn", uploadDoc(t, c)); code != http.StatusCreated {
		t.Errorf("re-upload of evicted name: status %d (%s)", code, raw)
	}

	v := s.vars()
	if v.Uploads != 2 || v.Evictions != 1 || v.Mutations != 2 {
		t.Errorf("lifecycle counters uploads=%d evictions=%d mutations=%d, want 2/1/2",
			v.Uploads, v.Evictions, v.Mutations)
	}
}

// TestImmutableStartupCircuit pins the mutability boundary: a startup
// circuit routed through a non-sequential backend has no store-held
// paths, so mutation and eviction are conflicts — while runtime uploads
// on the same server remain fully mutable.
func TestImmutableStartupCircuit(t *testing.T) {
	s, err := New(Config{Backend: backend.Partitioned, Shards: 1, BatchWindow: time.Millisecond}, testCircuit(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/mutate", `{"circuit":"svc","ops":[{"op":"reroute","wire":0}]}`); code != http.StatusConflict {
		t.Errorf("mutate immutable: status %d, want 409 (%s)", code, raw)
	}
	if code, _, _ := doReq(t, ts, http.MethodDelete, "/v1/circuits/svc", ""); code != http.StatusConflict {
		t.Errorf("evict immutable: status %d, want 409", code)
	}
	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/up", uploadDoc(t, dynCircuit(t, "up", 5))); code != http.StatusCreated {
		t.Fatalf("upload on immutable-baseline server: status %d (%s)", code, raw)
	}
	_, _, raw := doReq(t, ts, http.MethodGet, "/v1/circuits", "")
	var cdoc circuitsDoc
	if err := json.Unmarshal(raw, &cdoc); err != nil {
		t.Fatal(err)
	}
	mutable := map[string]bool{}
	for _, d := range cdoc.Circuits {
		mutable[d.Name] = d.Mutable
	}
	if mutable["svc"] || !mutable["up"] {
		t.Errorf("mutability flags %v: want svc immutable, up mutable", mutable)
	}
}

// wireUpload renders a circuit as its binary upload frame struct.
func wireUpload(c *circuit.Circuit) *wire.Upload {
	u := &wire.Upload{Name: c.Name, Channels: c.Grid.Channels, Grids: c.Grid.Grids}
	for _, w := range c.Wires {
		u.Wires = append(u.Wires, wire.UploadWire{ID: w.ID, Pins: append([]geom.Point(nil), w.Pins...)})
	}
	return u
}

// TestTCPLifecycle drives upload, mutate and evict over the binary
// protocol, interleaved with route frames on the same connection, and
// checks the result is visible over HTTP — one lifecycle, two wire
// formats.
func TestTCPLifecycle(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	addr, _ := startTCP(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	c := dynCircuit(t, "tdyn", 7)
	aresp, err := conn.DoUpload(wireUpload(c))
	if err != nil {
		t.Fatal(err)
	}
	if aresp.Status != wire.StatusOK || aresp.Wires != len(c.Wires) {
		t.Fatalf("upload response %+v: want OK with %d wires", aresp, len(c.Wires))
	}
	if aresp, err = conn.DoUpload(wireUpload(c)); err != nil || aresp.Status != wire.StatusConflict {
		t.Fatalf("duplicate upload: %+v, %v — want StatusConflict", aresp, err)
	}

	// Route frames interleave with lifecycle frames on one stream.
	rresp, err := conn.Do(&wire.Request{Circuit: "tdyn", WireID: 1,
		Pins: []geom.Point{geom.Pt(1, 1), geom.Pt(20, 2)}})
	if err != nil || rresp.Status != wire.StatusOK {
		t.Fatalf("route after upload: %+v, %v", rresp, err)
	}

	aresp, err = conn.DoMutate(&wire.Mutate{Circuit: "tdyn", Ops: []wire.MutateOp{
		{Op: wire.OpAdd, WireID: 901, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(25, 3)}},
		{Op: wire.OpReroute, WireID: c.Wires[0].ID},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if aresp.Status != wire.StatusOK || aresp.Epoch != 2 || aresp.Wires != len(c.Wires)+1 || len(aresp.Results) != 2 {
		t.Fatalf("mutate response %+v: want OK, epoch 2, %d wires, 2 results", aresp, len(c.Wires)+1)
	}
	if r := aresp.Results[0]; r.Op != wire.OpAdd || r.WireID != 901 || r.PathCells <= 0 {
		t.Errorf("add outcome %+v: want a routed path for wire 901", r)
	}
	if aresp, err = conn.DoMutate(&wire.Mutate{Circuit: "ghost", Ops: []wire.MutateOp{
		{Op: wire.OpReroute, WireID: 0},
	}}); err != nil || aresp.Status != wire.StatusUnknownCircuit {
		t.Fatalf("mutate of unknown circuit: %+v, %v — want StatusUnknownCircuit", aresp, err)
	}

	// The binary upload is the same circuit the JSON surface reports.
	_, _, raw := doReq(t, ts, http.MethodGet, "/v1/circuits", "")
	var cdoc circuitsDoc
	if err := json.Unmarshal(raw, &cdoc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range cdoc.Circuits {
		if d.Name == "tdyn" {
			found = true
			if d.MutationEpoch != 2 || d.Wires != len(c.Wires)+1 || !d.Mutable {
				t.Errorf("HTTP view of TCP lifecycle %+v: want mutation_epoch 2, %d wires, mutable", d, len(c.Wires)+1)
			}
		}
	}
	if !found {
		t.Fatalf("/v1/circuits does not list the TCP upload: %s", raw)
	}

	if aresp, err = conn.DoEvict(&wire.Evict{Circuit: "tdyn"}); err != nil || aresp.Status != wire.StatusOK {
		t.Fatalf("evict: %+v, %v", aresp, err)
	}
	if aresp, err = conn.DoEvict(&wire.Evict{Circuit: "tdyn"}); err != nil || aresp.Status != wire.StatusUnknownCircuit {
		t.Fatalf("double evict: %+v, %v — want StatusUnknownCircuit", aresp, err)
	}
	if rresp, err = conn.Do(&wire.Request{Circuit: "tdyn", WireID: 1,
		Pins: []geom.Point{geom.Pt(1, 1), geom.Pt(20, 2)}}); err != nil || rresp.Status != wire.StatusUnknownCircuit {
		t.Fatalf("route after evict: %+v, %v — want StatusUnknownCircuit", rresp, err)
	}
}

// TestMutationInvalidatesCache pins the cache-invalidation edge of the
// tentpole: a mutation bumps the cost epoch, so a result cached under
// the pre-mutation congestion state can never be served again.
func TestMutationInvalidatesCache(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy:      policy.Config{CacheEntries: 64},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"circuit":"svc","wire":5,"pins":[[2,1],[40,4]]}`
	if code, doc := postRoute(t, ts, body); code != http.StatusOK || doc["cached"] == true {
		t.Fatalf("first request: status %d cached %v", code, doc["cached"])
	}
	if _, doc := postRoute(t, ts, body); doc["cached"] != true {
		t.Fatal("repeat request not served from the cache")
	}

	w0 := testCircuit(t).Wires[0].ID
	if _, err := s.Mutate(MutateRequest{Circuit: "svc", Ops: []store.Op{{Kind: store.OpReroute, WireID: w0}}}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if _, doc := postRoute(t, ts, body); doc["cached"] == true {
		t.Error("request after a mutation served from the stale epoch")
	}
}

// TestEvictWhileCachedNoGhost pins the evict/cache interaction: results
// cached for an evicted circuit must never answer for a later upload
// reusing the name (the cache key carries a per-registration
// generation).
func TestEvictWhileCachedNoGhost(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy:      policy.Config{CacheEntries: 64},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dynCircuit(t, "ghost", 13)
	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/ghost", uploadDoc(t, c)); code != http.StatusCreated {
		t.Fatalf("upload: status %d (%s)", code, raw)
	}
	body := `{"circuit":"ghost","wire":4,"pins":[[1,1],[20,2]]}`
	postRoute(t, ts, body)
	if _, doc := postRoute(t, ts, body); doc["cached"] != true {
		t.Fatal("repeat request not cached before eviction")
	}

	if code, _, _ := doReq(t, ts, http.MethodDelete, "/v1/circuits/ghost", ""); code != http.StatusOK {
		t.Fatal("evict failed")
	}
	if code, _, raw := doReq(t, ts, http.MethodPost, "/v1/circuits/ghost", uploadDoc(t, c)); code != http.StatusCreated {
		t.Fatalf("re-upload: status %d (%s)", code, raw)
	}
	// Same name, same pins, fresh registration: the cache must miss.
	if code, doc := postRoute(t, ts, body); code != http.StatusOK || doc["cached"] == true {
		t.Fatalf("route after re-upload: status %d cached %v — ghost cache hit", code, doc["cached"])
	}
	// And the new registration's own cache works.
	if _, doc := postRoute(t, ts, body); doc["cached"] != true {
		t.Error("repeat request after re-upload not cached")
	}
}

// TestConcurrentLifecycleRace hammers upload/evict/route on one name
// from concurrent goroutines; meaningful under -race. Any error must be
// one of the lifecycle's defined outcomes — never a panic, deadlock or
// torn state.
func TestConcurrentLifecycleRace(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})

	const iters = 20
	circs := make([]*circuit.Circuit, iters)
	for i := range circs {
		circs[i] = dynCircuit(t, "race", int64(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g {
				case 0:
					if _, err := s.UploadCircuit(circs[i]); err != nil &&
						!errors.Is(err, ErrCircuitExists) && !errors.Is(err, ErrUnknownCircuit) {
						t.Errorf("upload %d: %v", i, err)
					}
				case 1:
					if err := s.EvictCircuit("race"); err != nil && !errors.Is(err, ErrUnknownCircuit) {
						t.Errorf("evict %d: %v", i, err)
					}
				case 2:
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					_, err := s.Route(ctx, RouteRequest{Circuit: "race",
						Wire: circuit.Wire{ID: i, Pins: []geom.Point{geom.Pt(1, 1), geom.Pt(20, 2)}}})
					cancel()
					if err != nil && !errors.Is(err, ErrUnknownCircuit) && !errors.Is(err, ErrDeadline) {
						t.Errorf("route %d: %v", i, err)
					}
				case 3:
					if _, err := s.Mutate(MutateRequest{Circuit: "race",
						Ops: []store.Op{{Kind: store.OpReroute, WireID: 0}}}); err != nil &&
						!errors.Is(err, ErrUnknownCircuit) && !errors.Is(err, store.ErrBadOp) {
						t.Errorf("mutate %d: %v", i, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The untouched startup circuit still serves.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Route(ctx, RouteRequest{Circuit: "svc",
		Wire: circuit.Wire{ID: 1, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}}}); err != nil {
		t.Fatalf("route after lifecycle storm: %v", err)
	}
}

// TestDrainLosesNothingWithMutation pins the drain contract with a
// mutation mid-batch: every queued request is answered, the mutation is
// applied, and the epoch accounts for both.
func TestDrainLosesNothingWithMutation(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := postRoute(t, ts, fmt.Sprintf(
				`{"circuit":"svc","wire":%d,"pins":[[2,1],[40,4]],"commit":true}`, i))
			codes <- code
		}(i)
	}
	for i := 0; s.InFlight() < n && i < 400; i++ {
		time.Sleep(2 * time.Millisecond)
	}

	w0 := testCircuit(t).Wires[0].ID
	if _, err := s.Mutate(MutateRequest{Circuit: "svc",
		Ops: []store.Op{{Kind: store.OpReroute, WireID: w0}}}); err != nil {
		t.Fatalf("mutation mid-batch: %v", err)
	}
	s.BeginDrain()
	wg.Wait()
	s.Close()

	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("request finished %d during drain, want 200", code)
		}
	}
	v := s.vars()
	if v.Served != n || v.Committed != n || v.Mutations != 1 {
		t.Errorf("served=%d committed=%d mutations=%d, want %d/%d/1", v.Served, v.Committed, v.Mutations, n, n)
	}
	// Epoch: n commits + 1 mutation result.
	if got := s.Epoch("svc"); got != n+1 {
		t.Errorf("epoch after drain = %d, want %d", got, n+1)
	}
	// The mutation reached the store before the drain finished.
	if info, ok := s.Store().Get("svc"); !ok || info.Epoch != 1 {
		t.Errorf("store epoch = %+v ok=%v, want epoch 1", info, ok)
	}
}

package locusd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locusroute/internal/backend"
	"locusroute/internal/circuit"
	"locusroute/internal/par"
)

// testCircuit generates the small circuit the service tests route
// against.
func testCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.GenParams{
		Name: "svc", Channels: 6, Grids: 80, Wires: 40, MeanSpan: 10, LongFrac: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newServer stands up a Server over the test circuit and registers
// cleanup.
func newServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg, testCircuit(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// postRoute fires one /route request and decodes the response.
func postRoute(t testing.TB, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/route", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("status %d: undecodable body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, doc
}

// TestRouteBasic covers the happy path: route one wire, get its cost and
// serving shard back.
func TestRouteBasic(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, doc := postRoute(t, ts, `{"circuit":"svc","wire":7,"pins":[[2,1],[40,4]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %v", code, doc)
	}
	if doc["wire"] != float64(7) || doc["circuit"] != "svc" {
		t.Errorf("response echoes wrong identity: %v", doc)
	}
	if doc["cost"] == nil || doc["path_cells"].(float64) <= 0 {
		t.Errorf("degenerate evaluation: %v", doc)
	}
}

// TestValidationErrors pins the HTTP codes of the failure modes: unknown
// circuit 404, out-of-grid pin 400 (rejected, not clamped), single pin
// 400, bad JSON 400.
func TestValidationErrors(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		code       int
		errPart    string
	}{
		{"unknown circuit", `{"circuit":"nope","pins":[[0,0],[1,1]]}`, http.StatusNotFound, "unknown circuit"},
		{"outside grid", `{"circuit":"svc","wire":3,"pins":[[2,1],[999,42]]}`, http.StatusBadRequest, "not clamped"},
		{"single pin", `{"circuit":"svc","pins":[[2,1]]}`, http.StatusBadRequest, "need at least 2"},
		{"bad json", `{"circuit":`, http.StatusBadRequest, "bad request body"},
	}
	for _, cse := range cases {
		code, doc := postRoute(t, ts, cse.body)
		if code != cse.code {
			t.Errorf("%s: status %d, want %d (%v)", cse.name, code, cse.code, doc)
		}
		if msg, _ := doc["error"].(string); !strings.Contains(msg, cse.errPart) {
			t.Errorf("%s: error %q, want substring %q", cse.name, msg, cse.errPart)
		}
	}
	if s.vars().Rejected == 0 {
		t.Error("validation failures not counted")
	}
}

// TestBatchingWindow checks that requests arriving within one window are
// evaluated as one batch: with a single shard and a wide window, the
// reported batch_size must exceed one.
func TestBatchingWindow(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: 150 * time.Millisecond, MaxBatch: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	var maxBatch int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, doc := postRoute(t, ts, fmt.Sprintf(`{"circuit":"svc","wire":%d,"pins":[[2,1],[40,4]]}`, i))
			if code != http.StatusOK {
				t.Errorf("wire %d: status %d", i, code)
				return
			}
			bs := int64(doc["batch_size"].(float64))
			for {
				cur := atomic.LoadInt64(&maxBatch)
				if bs <= cur || atomic.CompareAndSwapInt64(&maxBatch, cur, bs) {
					break
				}
			}
		}(i)
	}
	wg.Wait()
	if maxBatch < 2 {
		t.Errorf("max batch size %d; a 150ms window over one shard should have grouped the %d requests", maxBatch, n)
	}
	if got := s.vars().BatchSize.Max; got != maxBatch {
		t.Errorf("histogram max batch %d != observed %d", got, maxBatch)
	}
}

// TestDeadlineExpiry checks a request whose deadline lands inside the
// batching window fails with 504 and is counted as expired.
func TestDeadlineExpiry(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: 400 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, doc := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":30}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%v)", code, doc)
	}
	if s.vars().Expired == 0 {
		t.Error("expired request not counted")
	}
}

// TestBackpressure sheds load with 429 + Retry-After when the admission
// gate is full: one slot, occupied by a request parked in a wide batch
// window.
func TestBackpressure(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: 500 * time.Millisecond, MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int)
	go func() {
		code, _ := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]]}`)
		first <- code
	}()
	// Wait until the first request holds the gate slot.
	for i := 0; s.InFlight() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := ts.Client().Post(ts.URL+"/route", "application/json",
		strings.NewReader(`{"circuit":"svc","pins":[[3,2],[30,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	if code := <-first; code != http.StatusOK {
		t.Errorf("occupying request finished %d, want 200", code)
	}
	if s.vars().Shed == 0 {
		t.Error("shed request not counted")
	}
}

// TestGracefulDrain checks the drain contract: a request in flight when
// the drain begins completes with 200, a request after it is refused
// with 503, /healthz flips to 503, and Close returns.
func TestGracefulDrain(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: 300 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inFlight := make(chan int)
	go func() {
		code, _ := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]]}`)
		inFlight <- code
	}()
	for i := 0; s.InFlight() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	s.BeginDrain()
	if code, doc := postRoute(t, ts, `{"circuit":"svc","pins":[[3,2],[30,5]]}`); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503 (%v)", code, doc)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz: status %d, want 503", resp.StatusCode)
	}

	if code := <-inFlight; code != http.StatusOK {
		t.Errorf("in-flight request during drain finished %d, want 200", code)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}
}

// TestCommitVisibleOnShard checks a committed path raises congestion for
// the next evaluation on the same (single) shard: same wire, higher or
// equal cost, strictly higher once the path cells carry the commit.
func TestCommitVisibleOnShard(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"circuit":"svc","pins":[[2,1],[40,4]],"commit":true}`
	_, doc1 := postRoute(t, ts, body)
	_, doc2 := postRoute(t, ts, body)
	c1, c2 := int64(doc1["cost"].(float64)), int64(doc2["cost"].(float64))
	if c2 <= c1 {
		t.Errorf("second routing of a committed wire cost %d, want > %d (commit must be visible)", c2, c1)
	}
	if s.vars().Committed != 2 {
		t.Errorf("committed count %d, want 2", s.vars().Committed)
	}
}

// TestEndpoints covers /circuits, /metrics and /debug/vars shape.
func TestEndpoints(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]]}`)

	var cs circuitsDoc
	getJSON(t, ts, "/circuits", &cs)
	if len(cs.Circuits) != 1 || cs.Circuits[0].Name != "svc" || cs.Circuits[0].Shards != 2 {
		t.Errorf("circuits doc %+v", cs)
	}
	if cs.Circuits[0].CircuitHeight <= 0 {
		t.Errorf("baseline quality missing: %+v", cs.Circuits[0])
	}

	var vars varsDoc
	getJSON(t, ts, "/debug/vars", &vars)
	if vars.Served != 1 || vars.Capacity == 0 || vars.BatchSize == nil {
		t.Errorf("vars doc %+v", vars)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"locusd_requests_served_total 1",
		"# TYPE locusd_batch_size histogram",
		`locusd_batch_size_bucket{le="+Inf"} 1`,
		"locusd_in_flight 0",
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// getJSON decodes one GET endpoint.
func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentLoad is the -race smoke: at least 64 concurrent
// in-flight requests, every one completing 200, none dropped, then a
// clean drain. The gate is sized above the offered load so nothing
// sheds.
func TestConcurrentLoad(t *testing.T) {
	// A wide batching window parks the first wave of requests inside
	// their shards' windows, so all 64 are provably in flight at once
	// before any completes; later waves run at a normal window cadence.
	s := newServer(t, Config{
		Shards:      4,
		BatchWindow: 250 * time.Millisecond,
		MaxBatch:    64,
		MaxInFlight: 1024,
		Pool:        par.New(4),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 128

	const workers = 64
	const perWorker = 4
	var ok, bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, doc := postRoute(t, ts, fmt.Sprintf(
					`{"circuit":"svc","wire":%d,"pins":[[2,1],[40,4]],"commit":%v}`,
					w*perWorker+i, i%2 == 0))
				if code == http.StatusOK {
					ok.Add(1)
				} else {
					bad.Add(1)
					t.Errorf("worker %d: status %d (%v)", w, code, doc)
				}
			}
		}(w)
	}
	// The first request per worker cannot complete before its shard's
	// 250ms window closes, so in-flight must climb to all 64 workers.
	peak := 0
	deadline := time.Now().Add(10 * time.Second)
	for peak < workers && time.Now().Before(deadline) {
		if fl := s.InFlight(); fl > peak {
			peak = fl
		}
		time.Sleep(time.Millisecond)
	}
	if peak < workers {
		t.Errorf("peak in-flight %d, want %d simultaneous requests", peak, workers)
	}
	wg.Wait()
	if got := ok.Load(); got != workers*perWorker {
		t.Errorf("completed responses %d, want %d (dropped %d)", got, workers*perWorker, bad.Load())
	}
	if v := s.vars(); v.Served != workers*perWorker {
		t.Errorf("served counter %d, want %d", v.Served, workers*perWorker)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return under load drain")
	}
}

// TestPartitionedBaseline stands the service up on the partitioned
// backend: the baseline routing at startup uses intra-request
// parallelism, and serving behaves exactly as with the sequential
// baseline.
func TestPartitionedBaseline(t *testing.T) {
	s := newServer(t, Config{
		Backend:     backend.Partitioned,
		Partitions:  4,
		Shards:      1,
		BatchWindow: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, doc := postRoute(t, ts, `{"circuit":"svc","wire":7,"pins":[[2,1],[40,4]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %v", code, doc)
	}
	if doc["cost"] == nil || doc["path_cells"].(float64) <= 0 {
		t.Errorf("degenerate evaluation: %v", doc)
	}
}

// Package locusd is the routing service behind cmd/locusd: a sharded
// batch-serving layer that answers route-request traffic against
// preloaded circuits.
//
// At startup each circuit is routed once through a pkg/locusroute
// backend; the resulting cost array is the baseline congestion state.
// Each circuit is then served by a set of shards, each owning a private
// clone of that array plus a reusable route.Scratch — the service-layer
// echo of the paper's replicated views: requests never contend on a
// shared array, and a committed wire lands only on the replica that
// served it.
//
// Requests that arrive at a shard within one batching window are grouped
// and evaluated back to back through the shard's scratch space (one
// Scratch per shard is what makes the steady state allocation-free). A
// par.Gate bounds admitted requests — a full gate sheds load with HTTP
// 429 rather than queueing without bound — and a par.Pool bounds how
// many shards evaluate batches at once.
package locusd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/route"
	"locusroute/pkg/locusroute"
)

// Config sizes the service. The zero value of every field has a sensible
// default applied by New.
type Config struct {
	// Backend selects the pkg/locusroute implementation that routes each
	// circuit at startup to produce the baseline congestion state
	// (default Sequential, the reference router).
	Backend locusroute.Kind
	// Procs is the processor count for the baseline backend (ignored for
	// Sequential; default 16, the paper's machine size).
	Procs int
	// Shards is the number of serving replicas per circuit (default 4).
	Shards int
	// BatchWindow is how long a shard waits for more requests after the
	// first of a batch arrives (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps the wires evaluated in one batch (default 64).
	MaxBatch int
	// MaxInFlight bounds admitted requests across all circuits; arrivals
	// beyond it are shed with 429 (default 256).
	MaxInFlight int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 5s).
	DefaultDeadline time.Duration
	// Pool bounds concurrent batch evaluations (nil = one worker per
	// GOMAXPROCS via par.New(0) semantics is NOT applied here; nil means
	// unbounded, matching par.Pool).
	Pool *par.Pool
	// Router tunes the route kernel (zero value = route.DefaultParams).
	Router route.Params
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = locusroute.Sequential
	}
	if c.Procs < 1 {
		c.Procs = 16
	}
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 64
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.Router.Iterations == 0 {
		c.Router = route.DefaultParams()
	}
	return c
}

// ErrDeadline is the service-level deadline failure: the request's
// deadline expired while it was queued or mid-batch.
var ErrDeadline = errors.New("locusd: request deadline expired before routing")

// ErrDraining rejects new work during graceful shutdown.
var ErrDraining = errors.New("locusd: server is draining")

// ErrShed rejects work when the admission gate is full.
var ErrShed = errors.New("locusd: at capacity, retry later")

// ErrUnknownCircuit reports a request naming a circuit the server does
// not serve.
var ErrUnknownCircuit = errors.New("locusd: unknown circuit")

// RouteRequest is one wire evaluation against a served circuit.
type RouteRequest struct {
	// Circuit names a preloaded circuit.
	Circuit string
	// Wire is the wire to evaluate (>= 2 pins, all inside the circuit's
	// grid — out-of-grid pins are rejected, never clamped).
	Wire circuit.Wire
	// Commit places the evaluated path on the serving shard's replica,
	// making it visible to later requests on the same shard.
	Commit bool
}

// RouteResponse reports one evaluation.
type RouteResponse struct {
	Circuit       string `json:"circuit"`
	Shard         int    `json:"shard"`
	WireID        int    `json:"wire"`
	Cost          int64  `json:"cost"`
	PathCells     int    `json:"path_cells"`
	CellsExamined int    `json:"cells_examined"`
	BatchSize     int    `json:"batch_size"`
	Committed     bool   `json:"committed"`
	WaitMicros    int64  `json:"wait_us"`
}

// pending is one admitted request waiting for its shard.
type pending struct {
	req      RouteRequest
	ctx      context.Context
	enqueued time.Time
	done     chan outcome
}

type outcome struct {
	resp RouteResponse
	err  error
}

// shard is one serving replica: a private cost array, a private scratch,
// and a queue drained by its batching loop.
type shard struct {
	id      int
	arr     *costarray.CostArray
	scratch *route.Scratch
	queue   chan *pending
}

// servedCircuit is one preloaded circuit and its replicas.
type servedCircuit struct {
	circ     *circuit.Circuit
	baseline locusroute.Result
	shards   []*shard
	next     atomic.Uint64 // round-robin dispatch cursor
}

// metrics aggregates service counters and latency/batch histograms.
// obs.Histogram is single-writer; the mutex makes it safe under
// concurrent handlers.
type metrics struct {
	mu        sync.Mutex
	served    int64
	shed      int64
	expired   int64
	rejected  int64 // validation failures
	committed int64
	batchSize obs.Histogram
	waitUs    obs.Histogram
	routeCost obs.Histogram
}

// Server is the routing service. Create with New, serve its Handler,
// then BeginDrain + Close on shutdown.
type Server struct {
	cfg      Config
	gate     par.Gate
	circuits map[string]*servedCircuit
	names    []string // stable iteration order for /circuits and /debug/vars

	met      metrics
	draining atomic.Bool
	closing  sync.Once
	stop     chan struct{}
	loops    sync.WaitGroup
	inflight sync.WaitGroup
	started  time.Time
}

// New routes every circuit once through the configured backend and
// stands up the serving shards.
func New(cfg Config, circuits ...*circuit.Circuit) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(circuits) == 0 {
		return nil, errors.New("locusd: no circuits to serve")
	}
	opts := []locusroute.Option{locusroute.WithRouter(cfg.Router)}
	if cfg.Backend != locusroute.Sequential {
		opts = append(opts, locusroute.WithProcs(cfg.Procs))
	}
	backend, err := locusroute.New(cfg.Backend, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		gate:     par.NewGate(cfg.MaxInFlight),
		circuits: make(map[string]*servedCircuit, len(circuits)),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	for _, c := range circuits {
		if _, dup := s.circuits[c.Name]; dup {
			return nil, fmt.Errorf("locusd: duplicate circuit name %q", c.Name)
		}
		base, err := backend.Route(context.Background(), locusroute.Request{Circuit: c})
		if err != nil {
			return nil, fmt.Errorf("locusd: baseline routing of %q: %w", c.Name, err)
		}
		sc := &servedCircuit{circ: c, baseline: base}
		for i := 0; i < cfg.Shards; i++ {
			sh := &shard{
				id:      i,
				arr:     base.Final.Clone(),
				scratch: route.NewScratch(c.Grid),
				queue:   make(chan *pending, cfg.MaxInFlight),
			}
			sc.shards = append(sc.shards, sh)
			s.loops.Add(1)
			go s.batchLoop(sh)
		}
		s.circuits[c.Name] = sc
		s.names = append(s.names, c.Name)
	}
	sort.Strings(s.names)
	return s, nil
}

// Route admits, dispatches and awaits one request. It is the
// transport-independent core the HTTP handler wraps.
func (s *Server) Route(ctx context.Context, req RouteRequest) (RouteResponse, error) {
	// Register with the drain group before checking the flag: a request
	// that sees draining=false here is guaranteed to be covered by
	// Close's inflight.Wait, so its shard loop is still running.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		return RouteResponse{}, ErrDraining
	}
	sc, ok := s.circuits[req.Circuit]
	if !ok {
		return RouteResponse{}, fmt.Errorf("%w %q (serving %v)", ErrUnknownCircuit, req.Circuit, s.names)
	}
	if err := locusroute.ValidateWires(sc.circ.Grid, []circuit.Wire{req.Wire}); err != nil {
		s.count(&s.met.rejected)
		return RouteResponse{}, err
	}
	if !s.gate.TryEnter() {
		s.count(&s.met.shed)
		return RouteResponse{}, ErrShed
	}
	defer s.gate.Leave()

	p := &pending{req: req, ctx: ctx, enqueued: time.Now(), done: make(chan outcome, 1)}
	sh := sc.shards[sc.next.Add(1)%uint64(len(sc.shards))]
	select {
	case sh.queue <- p:
	case <-ctx.Done():
		s.count(&s.met.expired)
		return RouteResponse{}, ErrDeadline
	}
	select {
	case out := <-p.done:
		if out.err != nil {
			return RouteResponse{}, out.err
		}
		return out.resp, nil
	case <-ctx.Done():
		// The shard will still evaluate (or expire) the entry; its
		// buffered done send is discarded.
		s.count(&s.met.expired)
		return RouteResponse{}, ErrDeadline
	}
}

// batchLoop drains one shard's queue: the first arrival opens a batch,
// the window (or MaxBatch, or drain) closes it, and the batch is
// evaluated under the pool.
func (s *Server) batchLoop(sh *shard) {
	defer s.loops.Done()
	for {
		var first *pending
		select {
		case first = <-sh.queue:
		case <-s.stop:
			// Drain: evaluate whatever is still queued, then exit.
			for {
				select {
				case p := <-sh.queue:
					s.cfg.Pool.Run(func() { s.process(sh, []*pending{p}) })
				default:
					return
				}
			}
		}
		batch := []*pending{first}
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-sh.queue:
				batch = append(batch, p)
			case <-timer.C:
				break collect
			case <-s.stop:
				break collect
			}
		}
		timer.Stop()
		s.cfg.Pool.Run(func() { s.process(sh, batch) })
	}
}

// process evaluates one batch against the shard's replica. Only the
// owning batchLoop calls process for a given shard, so the array and
// scratch need no locks.
func (s *Server) process(sh *shard, batch []*pending) {
	view := route.ArrayView{A: sh.arr}
	for _, p := range batch {
		if p.ctx.Err() != nil {
			s.count(&s.met.expired)
			p.done <- outcome{err: ErrDeadline}
			continue
		}
		wait := time.Since(p.enqueued)
		ev := sh.scratch.RouteWire(view, &p.req.Wire, s.cfg.Router)
		committed := false
		if p.req.Commit {
			route.Commit(view, ev.Path)
			committed = true
		}
		s.met.mu.Lock()
		s.met.served++
		if committed {
			s.met.committed++
		}
		s.met.batchSize.Observe(int64(len(batch)))
		s.met.waitUs.Observe(wait.Microseconds())
		s.met.routeCost.Observe(ev.Cost)
		s.met.mu.Unlock()
		p.done <- outcome{resp: RouteResponse{
			Circuit:       p.req.Circuit,
			Shard:         sh.id,
			WireID:        p.req.Wire.ID,
			Cost:          ev.Cost,
			PathCells:     ev.Path.Len(),
			CellsExamined: ev.CellsExamined,
			BatchSize:     len(batch),
			Committed:     committed,
			WaitMicros:    wait.Microseconds(),
		}}
	}
}

// count bumps one plain counter under the metrics lock.
func (s *Server) count(field *int64) {
	s.met.mu.Lock()
	*field++
	s.met.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports currently admitted requests.
func (s *Server) InFlight() int { return s.gate.InFlight() }

// BeginDrain stops admitting new requests; in-flight requests keep
// running. Safe to call more than once.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close completes a drain: it waits for admitted requests to finish,
// stops the shard loops (which first evaluate anything still queued),
// and returns once every loop has exited. Call BeginDrain first;
// Close does it if the caller did not.
func (s *Server) Close() {
	s.BeginDrain()
	s.inflight.Wait()
	s.closing.Do(func() { close(s.stop) })
	s.loops.Wait()
}

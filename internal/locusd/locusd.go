// Package locusd is the routing service behind cmd/locusd: a sharded
// batch-serving layer that answers route-request traffic against
// preloaded circuits.
//
// At startup each circuit is routed once through a pkg/locusroute
// backend; the resulting cost array is the baseline congestion state.
// Each circuit is then served by a set of shards, each owning a private
// clone of that array — the service-layer echo of the paper's
// replicated views: requests never contend on a shared array, and a
// committed wire lands only on the replica that served it.
//
// The request path is a policy chain (internal/policy) around a batching
// core. Admission runs deadline feasibility, per-client rate limiting
// and a circuit breaker; a result cache keyed by (circuit, wire set,
// cost epoch) can answer repeats without routing; and the criticality
// scheduler replaces FIFO round-robin dispatch with earliest-deadline-
// first ordering inside the batch window plus least-critical-first
// shedding at the admission gate. Every element is nil when disabled —
// a fully disabled chain leaves the request path byte-for-byte on the
// original batching core at zero measurable cost (BENCH_policy.json).
//
// Requests that arrive at a shard within one batching window are grouped
// and evaluated back to back through a route.Scratch borrowed from a
// grid-keyed backend.ScratchPool for the batch (reused scratch space is
// what makes the steady state allocation-free). A
// par.Gate bounds admitted requests — a full gate sheds load with HTTP
// 429 rather than queueing without bound — and a par.Pool bounds how
// many shards evaluate batches at once.
package locusd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locusroute/internal/backend"
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/obs"
	"locusroute/internal/par"
	"locusroute/internal/policy"
	"locusroute/internal/reqtrace"
	"locusroute/internal/route"
	"locusroute/internal/store"
)

// Config sizes the service. The zero value of every field has a sensible
// default applied by New.
type Config struct {
	// Backend selects the pkg/locusroute implementation that routes each
	// circuit at startup to produce the baseline congestion state
	// (default Sequential, the reference router).
	Backend backend.Kind
	// Procs is the processor count for the baseline backend (ignored for
	// Sequential; default 16, the paper's machine size).
	Procs int
	// Partitions is the leaf-region count for the partitioned baseline
	// backend: big circuits route their baseline with intra-request
	// parallelism. Only meaningful when Backend is Partitioned (0 keeps
	// the backend's default of 4).
	Partitions int
	// Shards is the number of serving replicas per circuit (default 4).
	Shards int
	// BatchWindow is how long a shard waits for more requests after the
	// first of a batch arrives (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps the wires evaluated in one batch (default 64).
	MaxBatch int
	// MaxInFlight bounds admitted requests across all circuits; arrivals
	// beyond it are shed with 429 (default 256).
	MaxInFlight int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 5s).
	DefaultDeadline time.Duration
	// Pool bounds concurrent batch evaluations (nil = one worker per
	// GOMAXPROCS via par.New(0) semantics is NOT applied here; nil means
	// unbounded, matching par.Pool).
	Pool *par.Pool
	// Router tunes the route kernel (zero value = route.DefaultParams).
	Router route.Params
	// Policy configures the request-path chain; the zero value disables
	// every element, leaving the original FIFO round-robin path.
	Policy policy.Config
	// Tracer enables request-lifecycle tracing (internal/reqtrace):
	// request ids, per-stage spans, stage histograms, the slow-request
	// log, and /debug/trace live capture. Nil disables all of it — the
	// request path pays one pointer test and zero allocations.
	Tracer *reqtrace.Tracer
	// EnablePProf mounts net/http/pprof on the server's mux under
	// /debug/pprof/ (off by default: the profile endpoints can block and
	// expose symbol tables, so exposing them is an explicit decision).
	EnablePProf bool
	// Store owns the dynamic circuit lifecycle: runtime uploads,
	// mutations, evictions, and (when it has a persistence directory)
	// snapshot+WAL recovery. Circuits the store already holds at startup
	// are served automatically. Nil gets a private in-memory store, so
	// the lifecycle API always works; pass one explicitly for
	// persistence or a memory budget. The store's router parameters must
	// match Router — New enforces nothing, the arrays just diverge.
	Store *store.Store
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = backend.Sequential
	}
	if c.Procs < 1 {
		c.Procs = 16
	}
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 64
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.Router.Iterations == 0 {
		c.Router = route.DefaultParams()
	}
	return c
}

// ErrDeadline is the service-level deadline failure: the request's
// deadline expired while it was queued or mid-batch.
var ErrDeadline = errors.New("locusd: request deadline expired before routing")

// ErrDraining rejects new work during graceful shutdown.
var ErrDraining = errors.New("locusd: server is draining")

// ErrShed rejects work when the admission gate is full.
var ErrShed = errors.New("locusd: at capacity, retry later")

// ErrUnknownCircuit reports a request naming a circuit the server does
// not serve.
var ErrUnknownCircuit = errors.New("locusd: unknown circuit")

// ErrCircuitExists rejects an upload naming a circuit already served
// (store.ErrExists, re-surfaced at the service layer).
var ErrCircuitExists = store.ErrExists

// ErrImmutable rejects a mutation or eviction of a circuit served
// outside the store — a startup circuit whose baseline came from a
// non-sequential backend has no canonical per-wire paths to rip up.
var ErrImmutable = errors.New("locusd: circuit is immutable (not store-backed)")

// RouteRequest is one wire evaluation against a served circuit.
type RouteRequest struct {
	// Circuit names a preloaded circuit.
	Circuit string
	// Wire is the wire to evaluate (>= 2 pins, all inside the circuit's
	// grid — out-of-grid pins are rejected, never clamped).
	Wire circuit.Wire
	// Commit places the evaluated path on the serving shard's replica,
	// making it visible to later requests on the same shard.
	Commit bool
	// Client identifies the caller for per-client rate limiting (the
	// HTTP layer fills it from the X-Client header or the remote host).
	Client string
	// TraceID is a caller-supplied request id to adopt (HTTP carries it
	// as X-Locus-Request-Id, the binary protocol on traced frames).
	// Empty mints a server id; longer than reqtrace.MaxTraceID is
	// rejected, never clamped. Ignored when tracing is disabled.
	TraceID string
}

// RouteResponse reports one evaluation.
type RouteResponse struct {
	Circuit       string `json:"circuit"`
	Shard         int    `json:"shard"`
	WireID        int    `json:"wire"`
	Cost          int64  `json:"cost"`
	PathCells     int    `json:"path_cells"`
	CellsExamined int    `json:"cells_examined"`
	BatchSize     int    `json:"batch_size"`
	BatchIndex    int    `json:"batch_index"`
	Committed     bool   `json:"committed"`
	Cached        bool   `json:"cached"`
	WaitMicros    int64  `json:"wait_us"`

	// RequestID and Stages are present only when tracing is enabled: the
	// echoed request id and the per-stage breakdown whose durations sum
	// to the request's wall latency exactly.
	RequestID string        `json:"request_id,omitempty"`
	Stages    []StageSample `json:"stages,omitempty"`
}

// StageSample is one stage's share of a traced request's latency.
type StageSample struct {
	// Code is the reqtrace.Stage index, carried for the binary protocol;
	// the JSON layer names the stage instead.
	Code  uint8  `json:"-"`
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// ErrTraceID rejects an oversized caller-supplied trace id.
var ErrTraceID = fmt.Errorf("locusd: trace id exceeds %d bytes", reqtrace.MaxTraceID)

// pending is one admitted request waiting for its shard.
type pending struct {
	req      RouteRequest
	ctx      context.Context
	deadline time.Time // ctx deadline (zero = none); the EDF criticality
	enqueued time.Time
	done     chan outcome
	// gateHeld arbitrates the request's admission slot between its own
	// goroutine and a preempting one: whoever flips true->false releases
	// the gate, exactly once.
	gateHeld atomic.Bool
	// expired arbitrates the met.expired count the same way: the waiter
	// (ctx.Done) and the shard loop (stale entry in process) can both
	// notice the expiry, but only the first to flip it counts.
	expired atomic.Bool
	// span is the request's trace span; inert when tracing is disabled.
	// Only the waiter goroutine touches it — the shard loop reports its
	// stage stamps through the done channel (outcome.t) instead, so a
	// waiter that abandoned on ctx.Done never races a late stamp.
	span reqtrace.Span
	// traced mirrors span.Traced() for the shard loop, which must not
	// read the span itself: the waiter finishes it on ctx.Done while the
	// shard may still be processing this entry. Immutable once enqueued.
	traced bool
}

type outcome struct {
	resp RouteResponse
	err  error
	// t are the shard-side stage boundaries on the tracer clock — batch
	// start, eval start, eval end, commit end — valid when traced. The
	// channel handoff gives the waiter a happens-before copy.
	t      [4]int64
	traced bool
}

// shard is one serving replica: a private cost array and a queue
// drained by its batching loop. Routing scratch space is not owned by
// the shard — batches borrow it from the server's grid-keyed pool
// (backend.ScratchPool), so idle replicas hold no scratch memory and
// every circuit with the same grid shares one warm set.
type shard struct {
	id    int
	arr   *costarray.CostArray
	queue chan *pending // FIFO dispatch; unused under EDF
	// updates carries mutation deltas (ripped/committed canonical paths)
	// from Server.Mutate to this shard's loop, which applies them to its
	// replica between batches — the only goroutine that touches arr.
	updates chan shardUpdate
}

// shardUpdate is one mutation batch's effect on the canonical array:
// rip these paths, commit those. The slices are shared read-only across
// every shard of the circuit.
type shardUpdate struct {
	rip    []route.Path
	commit []route.Path
}

// servedCircuit is one served circuit and its replicas.
type servedCircuit struct {
	name     string
	grid     geom.Grid
	baseline backend.Result
	shards   []*shard
	next     atomic.Uint64 // round-robin dispatch cursor (FIFO mode)
	// queue is the circuit's deadline-ordered request queue; non-nil
	// only under the EDF scheduler, where shards pull batches from it
	// instead of owning FIFO queues.
	queue *policy.EDFQueue
	// epoch counts committed paths across all of the circuit's shards
	// plus applied store mutations: the result cache's invalidation
	// clock. Any commit or mutation advances it, so cache hits are only
	// served against unchanged congestion state.
	epoch atomic.Uint64
	// wireCount tracks the circuit's wire count (mutations move it).
	wireCount atomic.Int64
	// mutable marks a store-backed circuit: uploads at runtime, startup
	// circuits routed through the sequential baseline, and recovered
	// circuits. Only mutable circuits accept Mutate and EvictCircuit.
	mutable bool
	// cacheName is the policy-chain identity: the circuit name suffixed
	// with a server-unique generation, so cached results from an evicted
	// circuit can never answer for a later upload of the same name.
	cacheName string
	// stop ends the circuit's shard loops on eviction; inflight tracks
	// requests targeting this circuit, which EvictCircuit waits out
	// before stopping the loops.
	stop     chan struct{}
	inflight sync.WaitGroup
}

// metrics aggregates service counters and latency/batch histograms.
// obs.Histogram is single-writer; the mutex makes it safe under
// concurrent handlers.
type metrics struct {
	mu        sync.Mutex
	served    int64
	shed      int64
	evicted   int64 // shed by criticality preemption (subset of shed)
	expired   int64
	rejected  int64 // validation failures
	denied    int64 // policy-chain rejections (deadline/rate/breaker)
	cacheHits int64
	committed int64
	uploads   int64 // circuits uploaded at runtime
	evictions int64 // circuits evicted at runtime
	mutations int64 // mutation ops applied (not batches)
	batchSize obs.Histogram
	waitUs    obs.Histogram
	routeCost obs.Histogram
	// stageUs are the per-stage latency histograms (microseconds), fed
	// only for traced requests; a stage that did not run observes
	// nothing.
	stageUs [reqtrace.NumStages]obs.Histogram
}

// Server is the routing service. Create with New, serve its Handler,
// then BeginDrain + Close on shutdown.
type Server struct {
	cfg   Config
	chain *policy.Chain
	gate  par.Gate
	store *store.Store

	// mu guards the serving registry (circuits, names): runtime uploads
	// and evictions write it, every request path reads it.
	mu       sync.RWMutex
	circuits map[string]*servedCircuit
	names    []string // stable iteration order for /circuits and /debug/vars

	totalShards atomic.Int64
	// gen feeds servedCircuit.cacheName: each (re)registration of a name
	// gets a fresh generation, fencing the result cache across evict +
	// re-upload of the same name.
	gen atomic.Uint64

	// scratch pools routing scratch space per grid shape; batches borrow
	// a Scratch for their whole run and return it, keeping the serving
	// path at the reused-scratch allocation floor.
	scratch backend.ScratchPool

	met      metrics
	draining atomic.Bool
	closing  sync.Once
	stop     chan struct{}
	loops    sync.WaitGroup
	inflight sync.WaitGroup
	started  time.Time
}

// New stands up the serving layer. Startup circuits are routed once for
// their baseline congestion state: under the default Sequential backend
// they are uploaded into the store (making them mutable and, with a
// persistent store, durable); under any other backend they are routed
// through that backend and served immutably, since only the store's
// sequential baseline retains the per-wire paths incremental mutation
// needs. Circuits the store already holds — recovered from disk, or
// preloaded by the caller — are served automatically; a startup circuit
// whose name the store already holds defers to the store's copy.
func New(cfg Config, circuits ...*circuit.Circuit) (*Server, error) {
	cfg = cfg.withDefaults()
	st := cfg.Store
	if st == nil {
		if len(circuits) == 0 {
			return nil, errors.New("locusd: no circuits to serve")
		}
		var err error
		st, err = store.Open(store.Config{Router: cfg.Router})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:      cfg,
		chain:    policy.New(cfg.Policy),
		gate:     par.NewGate(cfg.MaxInFlight),
		store:    st,
		circuits: make(map[string]*servedCircuit, len(circuits)),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	seen := make(map[string]bool, len(circuits))
	for _, c := range circuits {
		if seen[c.Name] {
			return nil, fmt.Errorf("locusd: duplicate circuit name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if cfg.Backend == backend.Sequential {
		for _, c := range circuits {
			if _, err := st.Upload(c); err != nil && !errors.Is(err, store.ErrExists) {
				return nil, fmt.Errorf("locusd: baseline routing of %q: %w", c.Name, err)
			}
			// ErrExists: the store recovered this name from disk; its
			// durable copy wins over the startup argument.
		}
	} else {
		opts := []backend.Option{backend.WithRouter(cfg.Router), backend.WithProcs(cfg.Procs)}
		if cfg.Partitions > 0 && cfg.Backend == backend.Partitioned {
			opts = append(opts, backend.WithPartitions(cfg.Partitions))
		}
		be, err := backend.New(cfg.Backend, opts...)
		if err != nil {
			return nil, err
		}
		for _, c := range circuits {
			if _, held := st.Get(c.Name); held {
				continue // the store's recovered copy wins
			}
			base, err := be.Route(context.Background(), backend.Request{Circuit: c})
			if err != nil {
				return nil, fmt.Errorf("locusd: baseline routing of %q: %w", c.Name, err)
			}
			sc := s.newServedCircuit(c.Name, c.Grid, len(c.Wires), base, false)
			for i := 0; i < cfg.Shards; i++ {
				sc.shards = append(sc.shards, s.newShard(i, base.Final.Clone()))
			}
			s.register(sc)
		}
	}
	for _, name := range st.Names() {
		if _, dup := s.circuits[name]; dup {
			continue
		}
		sc, err := s.serveStored(name)
		if err != nil {
			return nil, err
		}
		s.register(sc)
	}
	return s, nil
}

// newServedCircuit assembles a circuit's serving state (no shards yet).
func (s *Server) newServedCircuit(name string, g geom.Grid, wires int, base backend.Result, mutable bool) *servedCircuit {
	sc := &servedCircuit{
		name:      name,
		grid:      g,
		baseline:  base,
		mutable:   mutable,
		cacheName: fmt.Sprintf("%s#%d", name, s.gen.Add(1)),
		stop:      make(chan struct{}),
	}
	sc.wireCount.Store(int64(wires))
	if s.chain.Sched() != nil {
		sc.queue = policy.NewEDFQueue()
	}
	return sc
}

// newShard builds one replica around its private array clone.
func (s *Server) newShard(id int, arr *costarray.CostArray) *shard {
	return &shard{
		id:      id,
		arr:     arr,
		queue:   make(chan *pending, s.cfg.MaxInFlight),
		updates: make(chan shardUpdate, 64),
	}
}

// serveStored builds serving state for a store-held circuit: shard
// replicas clone the canonical array, and the baseline is the store's
// upload-time sequential routing.
func (s *Server) serveStored(name string) (*servedCircuit, error) {
	info, ok := s.store.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w %q (store no longer holds it)", ErrUnknownCircuit, name)
	}
	base := backend.Result{
		Backend:       backend.Sequential,
		Circuit:       name,
		Procs:         1,
		CircuitHeight: info.Baseline.CircuitHeight,
		Occupancy:     info.Baseline.Occupancy,
		WiresRouted:   info.Baseline.WiresRouted,
		CellsExamined: info.Baseline.CellsExamined,
	}
	sc := s.newServedCircuit(name, info.Grid, info.Wires, base, true)
	for i := 0; i < s.cfg.Shards; i++ {
		arr, ok := s.store.CloneArray(name)
		if !ok {
			return nil, fmt.Errorf("%w %q (evicted during registration)", ErrUnknownCircuit, name)
		}
		sc.shards = append(sc.shards, s.newShard(i, arr))
	}
	return sc, nil
}

// register installs a circuit and starts its shard loops.
func (s *Server) register(sc *servedCircuit) {
	s.mu.Lock()
	s.circuits[sc.name] = sc
	s.names = append(s.names, sc.name)
	sort.Strings(s.names)
	s.mu.Unlock()
	s.totalShards.Add(int64(len(sc.shards)))
	edf := s.chain.Sched() != nil
	for _, sh := range sc.shards {
		s.loops.Add(1)
		if edf {
			go s.edfLoop(sc, sh)
		} else {
			go s.batchLoop(sc, sh)
		}
	}
}

// lookupServed fetches a circuit's serving state and registers the
// caller with its in-flight group, which EvictCircuit waits out. The
// caller must call sc.inflight.Done() when finished with the circuit.
func (s *Server) lookupServed(name string) *servedCircuit {
	s.mu.RLock()
	sc := s.circuits[name]
	if sc != nil {
		sc.inflight.Add(1)
	}
	s.mu.RUnlock()
	return sc
}

// servedNames copies the registry's name list.
func (s *Server) servedNames() []string {
	s.mu.RLock()
	names := make([]string, len(s.names))
	copy(names, s.names)
	s.mu.RUnlock()
	return names
}

// Route admits, dispatches and awaits one request. It is the
// transport-independent core the HTTP handler wraps.
func (s *Server) Route(ctx context.Context, req RouteRequest) (RouteResponse, error) {
	// Register with the drain group before checking the flag: a request
	// that sees draining=false here is guaranteed to be covered by
	// Close's inflight.Wait, so its shard loop is still running.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if len(req.TraceID) > reqtrace.MaxTraceID {
		s.count(&s.met.rejected)
		return RouteResponse{}, ErrTraceID
	}
	span := s.cfg.Tracer.Begin(req.TraceID, req.Circuit, req.Client, req.Wire.ID)
	if s.draining.Load() {
		return s.fail(&span, reqtrace.OutcomeDenied, ErrDraining)
	}
	sc := s.lookupServed(req.Circuit)
	if sc == nil {
		return s.fail(&span, reqtrace.OutcomeRejected,
			fmt.Errorf("%w %q (serving %v)", ErrUnknownCircuit, req.Circuit, s.servedNames()))
	}
	// The circuit's in-flight registration (made under the registry lock)
	// holds off EvictCircuit until this request's shard loop answers it.
	defer sc.inflight.Done()
	if err := backend.ValidateWires(sc.grid, []circuit.Wire{req.Wire}); err != nil {
		s.count(&s.met.rejected)
		return s.fail(&span, reqtrace.OutcomeRejected, err)
	}
	now := time.Now()
	// The default deadline is a service property, not a transport one:
	// an embedder calling Route with a plain context gets the same
	// criticality floor as an HTTP caller omitting deadline_ms. Without
	// it, EDF would sort plain-context requests least-critical forever
	// and evict them first at every full gate.
	if _, has := ctx.Deadline(); !has && s.cfg.DefaultDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		defer cancel()
	}
	deadline, _ := ctx.Deadline()

	// Policy chain: gatekeepers, then the result cache. The whole block
	// is skipped on the nil chain — the zero-cost disabled path.
	var preq policy.Request
	var epoch uint64
	if s.chain != nil {
		preq = policy.Request{
			Client: req.Client,
			// The cache and breaker key on the generation-suffixed name:
			// results cached for an evicted circuit can never answer for
			// a later upload reusing the name.
			Circuit:  sc.cacheName,
			Key:      policy.KeyPins(req.Wire.Pins),
			Deadline: deadline,
			Commit:   req.Commit,
		}
		var err error
		if span.Traced() {
			err = s.chain.AdmitTimed(now, &preq, span.Element)
		} else {
			err = s.chain.Admit(now, &preq)
		}
		if err != nil {
			s.count(&s.met.denied)
			return s.fail(&span, reqtrace.OutcomeDenied, err)
		}
		// The epoch is captured before dispatch: a result evaluated
		// while a commit lands is stored under the pre-commit epoch and
		// can never be served against the new congestion state.
		epoch = sc.epoch.Load()
		var lookT time.Time
		if span.Traced() {
			lookT = time.Now()
		}
		v, hit := s.chain.Lookup(&preq, epoch)
		if span.Traced() {
			span.Element("cache", time.Since(lookT))
		}
		if hit {
			resp := v.(RouteResponse)
			resp.WireID = req.Wire.ID
			resp.Cached = true
			resp.BatchSize = 0
			resp.BatchIndex = 0
			resp.WaitMicros = 0
			s.count(&s.met.cacheHits)
			// A cached answer exercised no evaluation path: it is
			// evidence of nothing. Observing it as success would let a
			// half-open breaker's single probe "confirm" recovery off a
			// stale stored result, so the admission is released
			// neutrally instead — the probe slot goes back unspent.
			s.chain.Release()
			span.Mark(reqtrace.StageAdmit)
			s.finishSpan(&span, reqtrace.OutcomeCached, &resp)
			return resp, nil
		}
	}

	p := &pending{req: req, ctx: ctx, deadline: deadline, enqueued: now, done: make(chan outcome, 1)}
	if !s.gate.TryEnter() {
		// Full gate: under the criticality scheduler, try to take the
		// slot of a strictly less critical queued request instead of
		// shedding the arrival.
		if !s.preempt(deadline) {
			s.count(&s.met.shed)
			// The chain already admitted this request; a shed is not an
			// outcome, so release the admission neutrally — a half-open
			// breaker gets its probe slot back instead of wedging open.
			s.chain.Release()
			return s.fail(&span, reqtrace.OutcomeShed, ErrShed)
		}
	}
	p.gateHeld.Store(true)
	defer s.releaseGate(p)

	// Everything up to dispatch — validation, policy, cache, the gate —
	// is the admit stage; the span moves into the pending entry so the
	// waiter arm below can merge the shard's stamps into it.
	span.Mark(reqtrace.StageAdmit)
	p.span = span
	p.traced = span.Traced()

	if sched := s.chain.Sched(); sched != nil {
		sched.NoteScheduled()
		sc.queue.Push(&policy.Item{Deadline: deadline, Value: p})
	} else {
		sh := sc.shards[sc.next.Add(1)%uint64(len(sc.shards))]
		select {
		case sh.queue <- p:
		case <-ctx.Done():
			s.countExpired(p)
			s.chain.Observe(time.Now(), true)
			p.span.Mark(reqtrace.StageQueue)
			return s.fail(&p.span, reqtrace.OutcomeExpired, ErrDeadline)
		}
	}
	select {
	case out := <-p.done:
		if errors.Is(out.err, policy.ErrEvicted) {
			// Eviction happens before any evaluation: no outcome exists
			// for the breaker, so an aborted half-open probe must
			// neither close it nor leak the probe slot.
			s.chain.Release()
		} else {
			s.chain.Observe(time.Now(), errors.Is(out.err, ErrDeadline))
		}
		if out.err != nil {
			oc := reqtrace.OutcomeExpired
			if errors.Is(out.err, policy.ErrEvicted) {
				oc = reqtrace.OutcomeEvicted
			}
			// The request died waiting: attribute the dead time to the
			// queue stage, not the respond tail.
			p.span.Mark(reqtrace.StageQueue)
			return s.fail(&p.span, oc, out.err)
		}
		if out.traced {
			p.span.MarkAt(reqtrace.StageQueue, out.t[0])
			p.span.MarkAt(reqtrace.StageBatch, out.t[1])
			p.span.MarkAt(reqtrace.StageRoute, out.t[2])
			p.span.MarkAt(reqtrace.StageCommit, out.t[3])
			p.span.SetShard(out.resp.Shard)
		}
		if s.chain != nil {
			// The cache stores the evaluation, not the trace: a hit is a
			// different request with its own id and breakdown.
			stored := out.resp
			stored.RequestID, stored.Stages = "", nil
			s.chain.Store(&preq, epoch, stored)
		}
		resp := out.resp
		s.finishSpan(&p.span, reqtrace.OutcomeOK, &resp)
		return resp, nil
	case <-ctx.Done():
		// The shard will still evaluate (or expire) the entry; its
		// buffered done send is discarded.
		s.countExpired(p)
		s.chain.Observe(time.Now(), true)
		p.span.Mark(reqtrace.StageQueue)
		return s.fail(&p.span, reqtrace.OutcomeExpired, ErrDeadline)
	}
}

// fail finishes sp for an error outcome. The returned response is empty
// except for the echoed request id, which transports still surface so a
// rejected or expired request remains attributable in client logs.
func (s *Server) fail(sp *reqtrace.Span, oc reqtrace.Outcome, err error) (RouteResponse, error) {
	var resp RouteResponse
	s.finishSpan(sp, oc, &resp)
	return resp, err
}

// finishSpan closes sp, feeds the per-stage histograms, and stamps resp
// with the request id and breakdown. No-op for untraced spans.
func (s *Server) finishSpan(sp *reqtrace.Span, oc reqtrace.Outcome, resp *RouteResponse) {
	var rec reqtrace.Rec
	if !sp.Finish(oc, &rec) {
		return
	}
	s.met.mu.Lock()
	for st := reqtrace.Stage(0); st < reqtrace.NumStages; st++ {
		if ns := rec.Stages[st]; ns > 0 {
			s.met.stageUs[st].Observe(ns / 1e3)
		}
	}
	s.met.mu.Unlock()
	resp.RequestID = rec.IDString()
	resp.Stages = stageSamples(&rec)
}

// stageSamples renders a record's non-zero stages in stage order; the
// nanosecond values sum to the record's wall latency exactly.
func stageSamples(rec *reqtrace.Rec) []StageSample {
	out := make([]StageSample, 0, 4)
	for st := reqtrace.Stage(0); st < reqtrace.NumStages; st++ {
		if ns := rec.Stages[st]; ns > 0 {
			out = append(out, StageSample{Code: uint8(st), Stage: st.String(), Ns: ns})
		}
	}
	return out
}

// countExpired counts p in met.expired exactly once, whichever of its
// waiter goroutine or its shard loop notices the expiry first.
func (s *Server) countExpired(p *pending) {
	if p.expired.CompareAndSwap(false, true) {
		s.count(&s.met.expired)
	}
}

// releaseGate frees p's admission slot exactly once, whether its own
// goroutine or a preempting arrival gets there first.
func (s *Server) releaseGate(p *pending) {
	if p.gateHeld.CompareAndSwap(true, false) {
		s.gate.Leave()
	}
}

// count bumps one plain counter under the metrics lock.
func (s *Server) count(field *int64) {
	s.met.mu.Lock()
	*field++
	s.met.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports currently admitted requests.
func (s *Server) InFlight() int { return s.gate.InFlight() }

// Chain exposes the policy chain (nil when fully disabled) for metrics
// surfaces and embedders.
func (s *Server) Chain() *policy.Chain { return s.chain }

// Epoch reports a served circuit's current cost epoch (its commit
// count), the result cache's invalidation clock. Unknown circuits
// report 0.
func (s *Server) Epoch(circuitName string) uint64 {
	s.mu.RLock()
	sc := s.circuits[circuitName]
	s.mu.RUnlock()
	if sc == nil {
		return 0
	}
	return sc.epoch.Load()
}

// BeginDrain stops admitting new requests; in-flight requests keep
// running. Safe to call more than once.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close completes a drain: it waits for admitted requests to finish,
// stops the shard loops (which first evaluate anything still queued),
// and returns once every loop has exited. Call BeginDrain first;
// Close does it if the caller did not.
func (s *Server) Close() {
	s.BeginDrain()
	s.inflight.Wait()
	s.closing.Do(func() { close(s.stop) })
	s.loops.Wait()
}

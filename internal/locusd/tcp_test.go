package locusd

import (
	"bufio"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"locusroute/internal/geom"
	"locusroute/internal/wire"
)

// startTCP stands up the binary transport over s on a loopback listener
// and registers cleanup; it returns the dial address and the TCPServer.
func startTCP(t testing.TB, s *Server) (string, *TCPServer) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcp := NewTCPServer(s)
	served := make(chan error, 1)
	go func() { served <- tcp.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := tcp.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrTCPServerClosed) {
			t.Errorf("Serve returned %v, want ErrTCPServerClosed", err)
		}
	})
	return l.Addr().String(), tcp
}

// TestTCPServeBasic routes wires over one binary connection: sequential
// exchanges reuse the stream, and concurrent clients each get their own.
func TestTCPServeBasic(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})
	addr, _ := startTCP(t, s)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Do(&wire.Request{Circuit: "svc", WireID: 7 + i,
			Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}})
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("Do %d: status %v (%s)", i, resp.Status, resp.Message)
		}
		if resp.WireID != 7+i || resp.Cost <= 0 || resp.PathCells <= 0 {
			t.Errorf("Do %d: degenerate evaluation %+v", i, resp)
		}
	}

	// Concurrent connections exercise the accept loop and per-conn
	// goroutines under -race.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				t.Errorf("Dial %d: %v", g, err)
				return
			}
			defer c.Close()
			for i := 0; i < 5; i++ {
				resp, err := c.Do(&wire.Request{Circuit: "svc", WireID: g*10 + i,
					Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}})
				if err != nil {
					t.Errorf("conn %d Do %d: %v", g, i, err)
					return
				}
				if resp.Status != wire.StatusOK {
					t.Errorf("conn %d Do %d: status %v", g, i, resp.Status)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTCPHTTPEquivalence pins the cross-transport contract: the same
// request through the binary listener and the JSON endpoint, against the
// same server, yields identical RouteResponse fields (shard, cost, path
// cells, batch shape, flags — everything but the timing-dependent
// wait_us).
func TestTCPHTTPEquivalence(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	addr, _ := startTCP(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bin, err := c.Do(&wire.Request{Circuit: "svc", WireID: 7,
		Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	if bin.Status != wire.StatusOK {
		t.Fatalf("bin status %v (%s)", bin.Status, bin.Message)
	}

	code, doc := postRoute(t, ts, `{"circuit":"svc","wire":7,"pins":[[2,1],[40,4]]}`)
	if code != http.StatusOK {
		t.Fatalf("http status %d: %v", code, doc)
	}
	for name, pair := range map[string][2]int64{
		"shard":          {int64(bin.Shard), int64(doc["shard"].(float64))},
		"wire":           {int64(bin.WireID), int64(doc["wire"].(float64))},
		"cost":           {bin.Cost, int64(doc["cost"].(float64))},
		"path_cells":     {int64(bin.PathCells), int64(doc["path_cells"].(float64))},
		"cells_examined": {int64(bin.CellsExamined), int64(doc["cells_examined"].(float64))},
		"batch_size":     {int64(bin.BatchSize), int64(doc["batch_size"].(float64))},
		"batch_index":    {int64(bin.BatchIndex), int64(doc["batch_index"].(float64))},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: bin %d != http %d", name, pair[0], pair[1])
		}
	}
	if bin.Committed != doc["committed"].(bool) || bin.Cached != doc["cached"].(bool) {
		t.Errorf("flag mismatch: bin %+v, http %v", bin, doc)
	}
}

// TestTCPErrorEquivalence pins the error vocabulary across transports:
// each failure mode's binary Status must map (via HTTPStatus) to exactly
// the code the JSON endpoint reports for the same request.
func TestTCPErrorEquivalence(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	addr, _ := startTCP(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cases := []struct {
		name string
		bin  wire.Request
		json string
		want wire.Status
	}{
		{"unknown circuit",
			wire.Request{Circuit: "nope", WireID: 1, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}},
			`{"circuit":"nope","wire":1,"pins":[[2,1],[40,4]]}`,
			wire.StatusUnknownCircuit},
		{"out-of-grid pin",
			wire.Request{Circuit: "svc", WireID: 1, Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(5000, 4)}},
			`{"circuit":"svc","wire":1,"pins":[[2,1],[5000,4]]}`,
			wire.StatusBadRequest},
		{"single pin",
			wire.Request{Circuit: "svc", WireID: 1, Pins: []geom.Point{geom.Pt(2, 1)}},
			`{"circuit":"svc","wire":1,"pins":[[2,1]]}`,
			wire.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := c.Do(&tc.bin)
		if err != nil {
			t.Fatalf("%s: Do: %v", tc.name, err)
		}
		if resp.Status != tc.want {
			t.Errorf("%s: bin status %v, want %v", tc.name, resp.Status, tc.want)
		}
		if resp.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		code, _ := postRoute(t, ts, tc.json)
		if got := resp.Status.HTTPStatus(); got != code {
			t.Errorf("%s: bin HTTPStatus %d != json code %d", tc.name, got, code)
		}
	}
}

// TestTCPShedRetryAfterEquivalence saturates a one-slot gate and checks
// a shed binary frame carries the same RetryAfterSeconds the JSON
// endpoint puts in its Retry-After header — both derived from the same
// backlog estimate at the same queue depth.
func TestTCPShedRetryAfterEquivalence(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 2 * time.Second,
		MaxBatch:    4,
		MaxInFlight: 1,
	})
	addr, _ := startTCP(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park one request in the batch window to hold the only gate slot.
	hold := make(chan error, 1)
	go func() {
		_, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(1)})
		hold <- err
	}()
	for i := 0; s.InFlight() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if s.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (holder not admitted)", s.InFlight())
	}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bin, err := c.Do(&wire.Request{Circuit: "svc", WireID: 9,
		Pins: []geom.Point{geom.Pt(3, 2), geom.Pt(30, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if bin.Status != wire.StatusShed {
		t.Fatalf("bin status %v (%s), want StatusShed", bin.Status, bin.Message)
	}
	if bin.RetryAfterSeconds < 1 {
		t.Errorf("shed frame RetryAfterSeconds = %d, want >= 1", bin.RetryAfterSeconds)
	}

	resp, err := ts.Client().Post(ts.URL+"/route", "application/json",
		strings.NewReader(`{"circuit":"svc","wire":9,"pins":[[3,2],[30,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("http status %d, want 429", resp.StatusCode)
	}
	hdr, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After header %q: %v", resp.Header.Get("Retry-After"), err)
	}
	if hdr != bin.RetryAfterSeconds {
		t.Errorf("Retry-After: http %d != bin %d", hdr, bin.RetryAfterSeconds)
	}
	if got := bin.Status.HTTPStatus(); got != resp.StatusCode {
		t.Errorf("bin HTTPStatus %d != http %d", got, resp.StatusCode)
	}

	if err := <-hold; err != nil {
		t.Fatalf("held request: %v", err)
	}
}

// TestTCPBadPayloadKeepsConn checks a well-framed but undecodable
// payload is answered with StatusBadRequest and the stream survives —
// the binary analog of HTTP's per-request 400.
func TestTCPBadPayloadKeepsConn(t *testing.T) {
	s := newServer(t, Config{Shards: 1, BatchWindow: time.Millisecond})
	addr, _ := startTCP(t, s)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	readResp := func() *wire.Response {
		t.Helper()
		payload, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			t.Fatalf("DecodeResponse: %v", err)
		}
		return resp
	}

	// A 3-byte garbage payload, framed correctly.
	if _, err := nc.Write([]byte{3, 0, 0, 0, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	resp := readResp()
	if resp.Status != wire.StatusBadRequest || resp.Message == "" {
		t.Fatalf("garbage payload: %+v, want StatusBadRequest with message", resp)
	}

	// The stream continues: a valid request still routes.
	frame, err := wire.AppendRequestFrame(nil, &wire.Request{Circuit: "svc", WireID: 1,
		Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(); resp.Status != wire.StatusOK {
		t.Errorf("status after bad payload %v, want StatusOK", resp.Status)
	}
}

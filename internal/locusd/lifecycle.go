package locusd

// The dynamic circuit lifecycle: runtime upload, incremental mutation,
// and eviction, layered over internal/store. The store owns the
// canonical cost array and the durable record; this file owns the
// serving consequences — standing shards up and down, invalidating the
// result cache by bumping the circuit's epoch, and fanning each
// mutation's path deltas out to every shard replica, where the shard's
// own loop folds them in between batches (the same single-writer
// discipline commits already follow).

import (
	"errors"
	"fmt"

	"locusroute/internal/circuit"
	"locusroute/internal/store"
)

// MutateRequest is one atomic mutation batch against a served circuit.
type MutateRequest struct {
	// Circuit names a served, store-backed circuit.
	Circuit string
	// Ops are applied in order; validation of the whole batch precedes
	// any application, so a rejected batch changed nothing.
	Ops []store.Op
	// Client identifies the caller (transport-filled, like RouteRequest).
	Client string
}

// MutateOpResult reports one applied mutation op.
type MutateOpResult struct {
	Op            string `json:"op"`
	WireID        int    `json:"wire"`
	Cost          int64  `json:"cost"`
	PathCells     int    `json:"path_cells"`
	CellsExamined int    `json:"cells_examined"`
}

// MutateResponse reports an applied batch.
type MutateResponse struct {
	Circuit string           `json:"circuit"`
	Epoch   uint64           `json:"epoch"`
	Wires   int              `json:"wires"`
	Results []MutateOpResult `json:"results"`
}

// UploadCircuit routes and serves a new circuit at runtime: the store
// validates, routes the sequential baseline (retaining per-wire paths),
// logs the upload, and then shards come up cloned from the canonical
// array. Runtime uploads are always mutable.
func (s *Server) UploadCircuit(c *circuit.Circuit) (store.Info, error) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		return store.Info{}, ErrDraining
	}
	// The serving registry can briefly trail the store (between these
	// two steps); reject names the server still serves up front so an
	// immutable startup circuit's name cannot be shadowed either.
	s.mu.RLock()
	_, served := s.circuits[c.Name]
	s.mu.RUnlock()
	if served {
		return store.Info{}, fmt.Errorf("%w: %q", ErrCircuitExists, c.Name)
	}
	info, err := s.store.Upload(c)
	if err != nil {
		return store.Info{}, err
	}
	sc, err := s.serveStored(c.Name)
	if err != nil {
		// Lost a race with an eviction of the name we just uploaded.
		return store.Info{}, err
	}
	s.register(sc)
	s.count(&s.met.uploads)
	return info, nil
}

// EvictCircuit stops serving a circuit and removes it from the store.
// In-flight requests against it complete first; once EvictCircuit
// returns, the name is free for re-upload and no cached result from the
// old circuit can be served (the cache keys on a per-registration
// generation).
func (s *Server) EvictCircuit(name string) error {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		return ErrDraining
	}
	s.mu.Lock()
	sc := s.circuits[name]
	if sc == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w %q", ErrUnknownCircuit, name)
	}
	if !sc.mutable {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrImmutable, name)
	}
	delete(s.circuits, name)
	for i, n := range s.names {
		if n == name {
			s.names = append(s.names[:i], s.names[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.totalShards.Add(-int64(len(sc.shards)))
	// New arrivals can no longer find the circuit; wait out the requests
	// and mutations that did, then stop its loops.
	sc.inflight.Wait()
	close(sc.stop)
	s.count(&s.met.evictions)
	if err := s.store.Evict(name); err != nil && !errors.Is(err, store.ErrUnknown) {
		return err
	}
	return nil
}

// Mutate applies one atomic batch to a served circuit: validate, log,
// apply on the canonical array (incrementally — each op rips up and
// re-routes only its own wire), bump the cost epoch so cached results
// stop answering, and fan the path deltas out to every shard replica.
// Shards fold deltas in between batches, so a response routed in the
// same instant may still see the pre-mutation replica — the same
// visibility contract as commits from sibling shards.
func (s *Server) Mutate(req MutateRequest) (*MutateResponse, error) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		return nil, ErrDraining
	}
	sc := s.lookupServed(req.Circuit)
	if sc == nil {
		return nil, fmt.Errorf("%w %q (serving %v)", ErrUnknownCircuit, req.Circuit, s.servedNames())
	}
	defer sc.inflight.Done()
	if !sc.mutable {
		return nil, fmt.Errorf("%w: %q", ErrImmutable, req.Circuit)
	}
	res, err := s.store.Mutate(req.Circuit, req.Ops)
	if err != nil {
		return nil, err
	}
	sc.wireCount.Store(int64(res.Wires))
	// Invalidate before fanning out: a request that raced the mutation
	// and cached under the old epoch can never be served again, even
	// though its shard may not have applied the delta yet.
	sc.epoch.Add(uint64(len(res.Results)))
	u := shardUpdate{}
	for i := range res.Results {
		r := &res.Results[i]
		if r.Ripped.Len() > 0 {
			u.rip = append(u.rip, r.Ripped)
		}
		if r.Routed.Len() > 0 {
			u.commit = append(u.commit, r.Routed)
		}
	}
	for _, sh := range sc.shards {
		sh.updates <- u
	}
	s.met.mu.Lock()
	s.met.mutations += int64(len(res.Results))
	s.met.mu.Unlock()
	out := &MutateResponse{Circuit: req.Circuit, Epoch: res.Epoch, Wires: res.Wires}
	for i := range res.Results {
		r := &res.Results[i]
		out.Results = append(out.Results, MutateOpResult{
			Op:            r.Kind.String(),
			WireID:        r.WireID,
			Cost:          r.Cost,
			PathCells:     r.PathCells,
			CellsExamined: r.CellsExamined,
		})
	}
	return out, nil
}

// Store exposes the circuit store for embedders and the HTTP layer.
func (s *Server) Store() *store.Store { return s.store }

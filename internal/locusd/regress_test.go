package locusd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/policy"
)

// testWireAt builds a wire with explicit pins inside the test circuit's
// grid, for requests that must not collide with testWire's cache key.
func testWireAt(id, x0, y0, x1, y1 int) circuit.Wire {
	return circuit.Wire{ID: id, Pins: []circuit.Pin{{X: x0, Y: y0}, {X: x1, Y: y1}}}
}

// TestExpiredCountedOnce pins the expired double-count regression: a
// request whose deadline expires while queued is noticed twice — by its
// own waiter (ctx.Done) and by the shard loop finding the stale entry —
// but must be counted in met.expired exactly once. Both dispatch
// disciplines share the counting path, so both are pinned.
func TestExpiredCountedOnce(t *testing.T) {
	for _, mode := range []struct {
		name   string
		policy policy.Config
	}{
		{"fifo", policy.Config{}},
		{"edf", policy.Config{EDF: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := newServer(t, Config{
				Shards:      1,
				BatchWindow: 200 * time.Millisecond,
				Policy:      mode.policy,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := s.Route(ctx, RouteRequest{Circuit: "svc", Wire: testWire(1)}); !errors.Is(err, ErrDeadline) {
				t.Fatalf("Route err = %v, want ErrDeadline", err)
			}
			// Let the batch window close: the shard loop now sees the
			// expired entry and, before the fix, counted it again.
			time.Sleep(600 * time.Millisecond)
			if got := s.vars().Expired; got != 1 {
				t.Errorf("expired = %d, want exactly 1 (waiter and shard loop double-counted)", got)
			}
		})
	}
}

// TestEDFFullBatchNoStall pins the full-batch stall regression: a burst
// of >= MaxBatch pushes coalesces into the EDF queue's single buffered
// wake, which the loop's empty-queue wait consumes — so the old window
// loop, waiting for a *new* signal before re-checking the depth, slept
// the whole BatchWindow with a full batch already queued. The fixed loop
// checks q.Len() >= MaxBatch before every wait, so dispatch latency must
// be far below the window.
func TestEDFFullBatchNoStall(t *testing.T) {
	const window = 3 * time.Second

	// MaxBatch 1 is the deterministic degenerate burst: the one Push
	// signal is always consumed by the empty-queue wait, so the old loop
	// always slept the full window before dispatching.
	t.Run("single-fills-batch", func(t *testing.T) {
		s := newServer(t, Config{
			Shards:      1,
			BatchWindow: window,
			MaxBatch:    1,
			Policy:      policy.Config{EDF: true},
		})
		// Let the shard loop park in its empty-queue wait first, so the
		// push's one wake signal is provably consumed there.
		time.Sleep(100 * time.Millisecond)
		start := time.Now()
		if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(1)}); err != nil {
			t.Fatalf("Route: %v", err)
		}
		if elapsed := time.Since(start); elapsed > window/3 {
			t.Errorf("full batch dispatched after %v, want << %v window", elapsed, window)
		}
	})

	t.Run("burst", func(t *testing.T) {
		const n = 4
		s := newServer(t, Config{
			Shards:      1,
			BatchWindow: window,
			MaxBatch:    n,
			Policy:      policy.Config{EDF: true},
		})
		time.Sleep(100 * time.Millisecond)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(i)}); err != nil {
					t.Errorf("Route %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		if elapsed := time.Since(start); elapsed > window/2 {
			t.Errorf("burst of %d (= MaxBatch) dispatched after %v, want << %v window", n, elapsed, window)
		}
	})
}

// TestDefaultDeadlineAppliedInRoute pins the embedder-bypass regression
// at the Server level (pkg/locusroute carries the Service-level pin): a
// Route call with a plain context must pick up Config.DefaultDeadline
// rather than riding a zero deadline — here the default expires the
// request inside a wide batch window instead of letting it wait the
// window out.
func TestDefaultDeadlineAppliedInRoute(t *testing.T) {
	s := newServer(t, Config{
		Shards:          1,
		BatchWindow:     2 * time.Second,
		DefaultDeadline: 100 * time.Millisecond,
		Policy:          policy.Config{EDF: true},
	})
	start := time.Now()
	_, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(1)})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("plain-context Route err = %v, want ErrDeadline from the default deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("default deadline fired after %v, want ~100ms (deadline not applied in Route)", elapsed)
	}
}

// TestCacheHitKeepsBreakerHalfOpen pins the fabricated-probe regression:
// a half-open breaker's single probe answered from the result cache
// exercised no evaluation path, so it must release the probe slot
// (staying half-open) rather than report success and close. The pin is
// behavioural: after the cached "probe", one real failure must re-open
// the breaker immediately — half-open state trips on a single failed
// probe, where a (wrongly) closed breaker would need the full
// consecutive-failure threshold again.
func TestCacheHitKeepsBreakerHalfOpen(t *testing.T) {
	const cooldown = 250 * time.Millisecond
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 30 * time.Millisecond,
		Policy: policy.Config{
			BreakerFailures: 3,
			BreakerCooldown: cooldown,
			CacheEntries:    8,
		},
	})

	// Warm the cache while the breaker is closed.
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(1)}); err != nil {
		t.Fatalf("warmup Route: %v", err)
	}

	// Trip the breaker with three guaranteed expiries on a different
	// wire set (the warm cache must not answer these).
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		if _, err := s.Route(ctx, RouteRequest{Circuit: "svc", Wire: testWireAt(10+i, 3, 2, 30, 5)}); !errors.Is(err, ErrDeadline) {
			t.Fatalf("expiry %d: err = %v, want ErrDeadline", i, err)
		}
		cancel()
	}
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(2)}); !errors.Is(err, policy.ErrBreakerOpen) {
		t.Fatalf("tripped breaker err = %v, want ErrBreakerOpen", err)
	}

	// After the cooldown, the first arrival is the half-open probe — and
	// it hits the warm cache.
	time.Sleep(cooldown + 100*time.Millisecond)
	resp, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(1)})
	if err != nil {
		t.Fatalf("cached probe err = %v, want nil", err)
	}
	if !resp.Cached {
		t.Fatal("probe request was not served from the cache; the regression path was not exercised")
	}

	// The breaker must still be half-open: a single real failure now
	// re-opens it. A breaker wrongly closed by the cached probe would
	// absorb this failure (streak 1 of 3) and keep admitting.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := s.Route(ctx, RouteRequest{Circuit: "svc", Wire: testWireAt(20, 3, 2, 30, 5)}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("post-probe failure err = %v, want ErrDeadline", err)
	}
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(3)}); !errors.Is(err, policy.ErrBreakerOpen) {
		t.Errorf("err after failed half-open probe = %v, want ErrBreakerOpen (cache hit closed the breaker on no evidence)", err)
	}
}

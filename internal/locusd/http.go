package locusd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"locusroute/internal/backend"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/obs"
	"locusroute/internal/policy"
	"locusroute/internal/reqtrace"
	"locusroute/internal/store"
)

// RequestIDHeader carries the request id on both directions of the HTTP
// transport: a client sets it to have the server adopt its id, and the
// server always echoes the effective id (adopted or minted) when tracing
// is enabled — on errors too, so a 429 remains attributable.
const RequestIDHeader = "X-Locus-Request-Id"

// routeBody is the POST /route request document.
type routeBody struct {
	// Circuit names a preloaded circuit (required).
	Circuit string `json:"circuit"`
	// Wire is the request wire's ID (optional label).
	Wire int `json:"wire"`
	// Pins are the wire's [x, y] terminals (>= 2, inside the grid).
	Pins [][2]int `json:"pins"`
	// Commit places the path on the serving replica.
	Commit bool `json:"commit"`
	// DeadlineMillis bounds queue wait + evaluation (0 = the server's
	// default deadline).
	DeadlineMillis int64 `json:"deadline_ms"`
}

// errorBody is every non-200 JSON response.
type errorBody struct {
	Error string `json:"error"`
	// RequestID is the traced request's echoed id; empty when tracing is
	// disabled or the failure happened before a span existed.
	RequestID string `json:"request_id,omitempty"`
}

// Handler returns the service's HTTP API. The canonical surface lives
// under the /v1 prefix:
//
//	POST   /v1/route           route one wire         -> RouteResponse
//	GET    /v1/circuits        served circuits        -> circuitsDoc
//	POST   /v1/circuits/{name} upload a circuit       -> circuitDoc (201)
//	DELETE /v1/circuits/{name} evict a circuit
//	POST   /v1/mutate          mutate a circuit       -> MutateResponse
//	GET    /v1/healthz         liveness + drain state -> healthDoc (503 draining)
//	GET    /v1/metrics         Prometheus text exposition
//
// The original unversioned paths (/route, /circuits, /healthz,
// /metrics) remain as aliases answering byte-identical bodies, marked
// with a Deprecation header and a Link to their successor; the
// lifecycle endpoints are /v1-only — they postdate the versioned
// surface, so no unversioned spelling ever existed. Debug endpoints
// stay unversioned (they are operator surface, not API):
//
//	GET  /debug/vars   counters + histograms as stable-order JSON
//	GET  /debug/trace  live request-trace capture (Chrome trace JSON)
//	GET  /debug/pprof/ net/http/pprof (only with Config.EnablePProf)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	versioned := func(path string, h http.HandlerFunc) {
		mux.HandleFunc("/v1"+path, h)
		mux.HandleFunc(path, deprecated("/v1"+path, h))
	}
	versioned("/route", s.handleRoute)
	versioned("/circuits", s.handleCircuits)
	versioned("/healthz", s.handleHealthz)
	versioned("/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/circuits/{name}", s.handleCircuitUpload)
	mux.HandleFunc("DELETE /v1/circuits/{name}", s.handleCircuitEvict)
	mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	if s.cfg.EnablePProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// deprecated wraps a legacy unversioned handler: same handler, same
// bytes, plus the deprecation headers (RFC 8594 style) pointing at the
// /v1 spelling.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		h(w, r)
	}
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST /route"})
		return
	}
	var body routeBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	wire := circuit.Wire{ID: body.Wire}
	for _, p := range body.Pins {
		wire.Pins = append(wire.Pins, geom.Pt(p[0], p[1]))
	}
	// An explicit deadline_ms bounds the request here; otherwise Route
	// applies the server's default, the same as for any embedder.
	ctx := r.Context()
	if body.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}

	resp, err := s.Route(ctx, RouteRequest{
		Circuit: body.Circuit,
		Wire:    wire,
		Commit:  body.Commit,
		Client:  clientIdentity(r),
		TraceID: r.Header.Get(RequestIDHeader),
	})
	if resp.RequestID != "" {
		w.Header().Set(RequestIDHeader, resp.RequestID)
	}
	if err != nil {
		s.writeError(w, err, resp.RequestID)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// clientIdentity is the rate limiter's caller key: the X-Client header
// when present, else the remote host.
func clientIdentity(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeError maps a service error to its HTTP response, attaching the
// Retry-After contract on backpressure codes: gate sheds and criticality
// evictions report the estimated backlog drain time (queue state, not a
// constant), rate limits report the client's token refill time, and an
// open breaker reports its cooldown remainder.
func (s *Server) writeError(w http.ResponseWriter, err error, requestID string) {
	code := statusFor(err)
	var rle *policy.RateLimitedError
	var boe *policy.BreakerOpenError
	switch {
	case errors.Is(err, ErrShed) || errors.Is(err, policy.ErrEvicted):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
	case errors.As(err, &rle):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(rle.RetryAfter)))
	case errors.As(err, &boe):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(boe.RetryAfter)))
	}
	writeJSON(w, code, errorBody{Error: err.Error(), RequestID: requestID})
}

// ceilSeconds rounds a duration up to whole seconds, minimum 1 — the
// Retry-After header's unit.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// statusFor maps service and policy errors to HTTP codes.
func statusFor(err error) int {
	var oge *backend.OutsideGridError
	switch {
	case errors.Is(err, ErrShed), errors.Is(err, policy.ErrEvicted), errors.Is(err, policy.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, policy.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline), errors.Is(err, policy.ErrDeadlineInfeasible):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownCircuit), errors.Is(err, store.ErrUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrCircuitExists), errors.Is(err, ErrImmutable):
		return http.StatusConflict
	case errors.Is(err, store.ErrStoreFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, store.ErrBadOp):
		return http.StatusBadRequest
	case errors.As(err, &oge):
		return http.StatusBadRequest
	}
	return http.StatusBadRequest
}

// handleTrace serves GET /debug/trace?sec=N: it opens a live capture
// window on the request tracer, blocks for the window (like pprof's
// /debug/pprof/profile), and writes every request that finished inside
// it as a Chrome/Perfetto trace document. 404 when tracing is disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Tracer
	if tr == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "request tracing disabled (enable it with -trace-sample/-slow-log-threshold or locusroute.WithRequestTracing)"})
		return
	}
	sec := 1.0
	if q := r.URL.Query().Get("sec"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad sec %q: want a positive number of seconds", q)})
			return
		}
		sec = v
	}
	// Cap below the drain grace period so a capture in flight at
	// shutdown cannot hold the HTTP server open indefinitely.
	if sec > 60 {
		sec = 60
	}
	dur := time.Duration(sec * float64(time.Second))
	from, to := tr.CaptureFor(dur)
	time.Sleep(dur)
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChrome(w, from, to)
}

// buildInfo resolves the binary's go version and VCS revision once, for
// the locusd_build_info gauge and /debug/vars — the correlation key
// between a trace capture and the binary that produced it.
var buildInfo = sync.OnceValue(func() buildInfoDoc {
	doc := buildInfoDoc{GoVersion: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return doc
	}
	doc.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			doc.Revision = s.Value
		}
	}
	return doc
})

type buildInfoDoc struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

// circuitDoc is one /circuits entry. The store fields (mutation_epoch,
// store_bytes, array_sha256) are present only for mutable circuits;
// array_sha256 is the canonical array's fingerprint, the value a
// restarted server must reproduce exactly.
type circuitDoc struct {
	Name          string `json:"name"`
	Channels      int    `json:"channels"`
	Grids         int    `json:"grids"`
	Wires         int    `json:"wires"`
	Shards        int    `json:"shards"`
	Backend       string `json:"baseline_backend"`
	CircuitHeight int64  `json:"baseline_circuit_height"`
	Occupancy     int64  `json:"baseline_occupancy"`
	CostEpoch     uint64 `json:"cost_epoch"`
	Mutable       bool   `json:"mutable"`
	MutationEpoch uint64 `json:"mutation_epoch,omitempty"`
	StoreBytes    int64  `json:"store_bytes,omitempty"`
	ArraySHA256   string `json:"array_sha256,omitempty"`
}

type circuitsDoc struct {
	Circuits []circuitDoc `json:"circuits"`
}

// circuitDocFor renders one served circuit, folding in the store's view
// for mutable ones.
func (s *Server) circuitDocFor(sc *servedCircuit) circuitDoc {
	doc := circuitDoc{
		Name:          sc.name,
		Channels:      sc.grid.Channels,
		Grids:         sc.grid.Grids,
		Wires:         int(sc.wireCount.Load()),
		Shards:        len(sc.shards),
		Backend:       string(sc.baseline.Backend),
		CircuitHeight: sc.baseline.CircuitHeight,
		Occupancy:     sc.baseline.Occupancy,
		CostEpoch:     sc.epoch.Load(),
		Mutable:       sc.mutable,
	}
	if sc.mutable {
		if info, ok := s.store.Get(sc.name); ok {
			doc.MutationEpoch = info.Epoch
			doc.StoreBytes = info.Bytes
			doc.ArraySHA256 = info.ArrayHash
		}
	}
	return doc
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	scs := make([]*servedCircuit, 0, len(s.names))
	for _, name := range s.names {
		scs = append(scs, s.circuits[name])
	}
	s.mu.RUnlock()
	doc := circuitsDoc{Circuits: []circuitDoc{}}
	for _, sc := range scs {
		doc.Circuits = append(doc.Circuits, s.circuitDocFor(sc))
	}
	writeJSON(w, http.StatusOK, doc)
}

// uploadBody is the POST /v1/circuits/{name} request document.
type uploadBody struct {
	Channels int          `json:"channels"`
	Grids    int          `json:"grids"`
	Wires    []uploadWire `json:"wires"`
}

type uploadWire struct {
	ID   int      `json:"id"`
	Pins [][2]int `json:"pins"`
}

func (s *Server) handleCircuitUpload(w http.ResponseWriter, r *http.Request) {
	var body uploadBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	c := &circuit.Circuit{
		Name: r.PathValue("name"),
		Grid: geom.Grid{Channels: body.Channels, Grids: body.Grids},
	}
	for _, uw := range body.Wires {
		wr := circuit.Wire{ID: uw.ID}
		for _, p := range uw.Pins {
			wr.Pins = append(wr.Pins, geom.Pt(p[0], p[1]))
		}
		c.Wires = append(c.Wires, wr)
	}
	if _, err := s.UploadCircuit(c); err != nil {
		s.writeError(w, err, "")
		return
	}
	sc := s.lookupServed(c.Name)
	if sc == nil {
		// Evicted between upload and render; the upload itself succeeded.
		writeJSON(w, http.StatusCreated, circuitDoc{Name: c.Name})
		return
	}
	defer sc.inflight.Done()
	writeJSON(w, http.StatusCreated, s.circuitDocFor(sc))
}

func (s *Server) handleCircuitEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.EvictCircuit(name); err != nil {
		s.writeError(w, err, "")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
}

// mutateBody is the POST /v1/mutate request document.
type mutateBody struct {
	Circuit string         `json:"circuit"`
	Ops     []mutateOpBody `json:"ops"`
}

type mutateOpBody struct {
	// Op is "add", "remove" or "reroute".
	Op   string   `json:"op"`
	Wire int      `json:"wire"`
	Pins [][2]int `json:"pins,omitempty"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var body mutateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	req := MutateRequest{Circuit: body.Circuit, Client: clientIdentity(r)}
	for _, ob := range body.Ops {
		op := store.Op{WireID: ob.Wire}
		switch ob.Op {
		case "add":
			op.Kind = store.OpAdd
		case "remove":
			op.Kind = store.OpRemove
		case "reroute":
			op.Kind = store.OpReroute
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("unknown op %q (want add, remove or reroute)", ob.Op)})
			return
		}
		for _, p := range ob.Pins {
			op.Pins = append(op.Pins, geom.Pt(p[0], p[1]))
		}
		req.Ops = append(req.Ops, op)
	}
	resp, err := s.Mutate(req)
	if err != nil {
		s.writeError(w, err, "")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthDoc struct {
	Status   string `json:"status"`
	InFlight int    `json:"in_flight"`
	UptimeMS int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthDoc{Status: "ok", InFlight: s.InFlight(), UptimeMS: time.Since(s.started).Milliseconds()}
	code := http.StatusOK
	if s.Draining() {
		doc.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, doc)
}

// counterDoc is one policy-element counter in /debug/vars.
type counterDoc struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// elementVarsDoc is one policy element's counters in /debug/vars.
type elementVarsDoc struct {
	Element  string       `json:"element"`
	Counters []counterDoc `json:"counters"`
}

// varsDoc is the /debug/vars document; field order is the struct order,
// so the rendering is stable.
type varsDoc struct {
	Build     buildInfoDoc      `json:"build"`
	StartUnix int64             `json:"start_unix"`
	UptimeMS  int64             `json:"uptime_ms"`
	Draining  bool              `json:"draining"`
	InFlight  int               `json:"in_flight"`
	Capacity  int               `json:"capacity"`
	Served    int64             `json:"served"`
	Committed int64             `json:"committed"`
	Shed      int64             `json:"shed"`
	Evicted   int64             `json:"evicted"`
	Expired   int64             `json:"expired"`
	Rejected  int64             `json:"rejected"`
	Denied    int64             `json:"denied"`
	CacheHits int64             `json:"cache_hits"`
	Uploads   int64             `json:"uploads"`
	Evictions int64             `json:"evictions"`
	Mutations int64             `json:"mutations"`
	Policy    []elementVarsDoc  `json:"policy,omitempty"`
	BatchSize *obs.HistogramDoc `json:"batch_size,omitempty"`
	WaitUs    *obs.HistogramDoc `json:"wait_us,omitempty"`
	RouteCost *obs.HistogramDoc `json:"route_cost,omitempty"`
	// Trace is present only when request tracing is enabled: the ring
	// counters and the per-stage latency histograms (µs), keyed by the
	// reqtrace stage names.
	Trace   *reqtrace.Stats              `json:"trace,omitempty"`
	StageUs map[string]*obs.HistogramDoc `json:"stage_us,omitempty"`
}

func (s *Server) vars() varsDoc {
	s.met.mu.Lock()
	doc := varsDoc{
		Build:     buildInfo(),
		StartUnix: s.started.Unix(),
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Draining:  s.Draining(),
		InFlight:  s.InFlight(),
		Capacity:  s.cfg.MaxInFlight,
		Served:    s.met.served,
		Committed: s.met.committed,
		Shed:      s.met.shed,
		Evicted:   s.met.evicted,
		Expired:   s.met.expired,
		Rejected:  s.met.rejected,
		Denied:    s.met.denied,
		CacheHits: s.met.cacheHits,
		Uploads:   s.met.uploads,
		Evictions: s.met.evictions,
		Mutations: s.met.mutations,
		BatchSize: s.met.batchSize.Doc(),
		WaitUs:    s.met.waitUs.Doc(),
		RouteCost: s.met.routeCost.Doc(),
	}
	if tr := s.cfg.Tracer; tr != nil {
		st := tr.Stats()
		doc.Trace = &st
		doc.StageUs = make(map[string]*obs.HistogramDoc, int(reqtrace.NumStages))
		for i := reqtrace.Stage(0); i < reqtrace.NumStages; i++ {
			if d := s.met.stageUs[i].Doc(); d != nil {
				doc.StageUs[i.String()] = d
			}
		}
	}
	s.met.mu.Unlock()
	for _, el := range s.chain.Elements() {
		ev := elementVarsDoc{Element: el.Name()}
		for _, c := range el.Counters() {
			ev.Counters = append(ev.Counters, counterDoc{Name: c.Name, Value: c.Value})
		}
		doc.Policy = append(doc.Policy, ev)
	}
	return doc
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.vars())
}

// handleMetrics renders the Prometheus text exposition format from the
// same numbers as /debug/vars, through the shared obs.PromText writer.
// Policy-element counters export as
// locusd_policy_<counter>{element="<name>"} series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.vars()
	var pt obs.PromText
	pt.Counter("locusd_requests_served_total", "wire evaluations completed", v.Served)
	pt.Counter("locusd_requests_committed_total", "evaluations committed to a serving replica", v.Committed)
	pt.Counter("locusd_requests_shed_total", "requests shed with 429 at the admission gate", v.Shed)
	pt.Counter("locusd_requests_evicted_total", "queued requests shed for more critical arrivals", v.Evicted)
	pt.Counter("locusd_requests_expired_total", "requests whose deadline expired before evaluation", v.Expired)
	pt.Counter("locusd_requests_rejected_total", "requests rejected by validation", v.Rejected)
	pt.Counter("locusd_requests_denied_total", "requests denied by the policy chain", v.Denied)
	pt.Counter("locusd_cache_hits_total", "requests answered from the result cache", v.CacheHits)
	pt.Counter("locusd_circuit_uploads_total", "circuits uploaded at runtime", v.Uploads)
	pt.Counter("locusd_circuit_evictions_total", "circuits evicted at runtime", v.Evictions)
	pt.Counter("locusd_mutations_total", "mutation ops applied to served circuits", v.Mutations)
	pt.Gauge("locusd_in_flight", "admitted requests currently in flight", int64(v.InFlight))
	pt.Gauge("locusd_capacity", "admission gate capacity", int64(v.Capacity))
	pt.Gauge("locusd_build_info", "build metadata as labels, value always 1", 1,
		obs.Label{Name: "go_version", Value: v.Build.GoVersion},
		obs.Label{Name: "revision", Value: v.Build.Revision})
	pt.Gauge("locusd_start_time_seconds", "unix time the process started serving", v.StartUnix)
	pt.Gauge("locusd_uptime_seconds", "seconds since the process started serving", v.UptimeMS/1000)
	draining := int64(0)
	if v.Draining {
		draining = 1
	}
	pt.Gauge("locusd_draining", "1 while the server is draining (refusing new work)", draining)
	if v.Trace != nil {
		pt.Counter("locusd_trace_finished_total", "requests that completed a trace span", int64(v.Trace.Finished))
		pt.Counter("locusd_trace_slow_total", "slow-request log lines emitted", int64(v.Trace.Slow))
		pt.Counter("locusd_trace_dropped_total", "trace records overwritten in the ring", int64(v.Trace.Dropped))
		pt.Gauge("locusd_trace_retained", "trace records currently retained", int64(v.Trace.Retained))
	}
	// Element counters share metric names across elements (the element
	// label distinguishes series), so the help text is the first
	// element's; PromText guarantees one HELP/TYPE pair per name.
	for _, el := range s.chain.Elements() {
		label := obs.Label{Name: "element", Value: el.Name()}
		for _, c := range el.Counters() {
			if strings.HasSuffix(c.Name, "_total") {
				pt.Counter("locusd_policy_"+c.Name, c.Help, c.Value, label)
			} else {
				pt.Gauge("locusd_policy_"+c.Name, c.Help, c.Value, label)
			}
		}
	}
	pt.Histogram("locusd_batch_size", "wires per evaluated batch", v.BatchSize)
	pt.Histogram("locusd_wait_us", "microseconds from admission to evaluation", v.WaitUs)
	pt.Histogram("locusd_route_cost", "chosen path cost per evaluation", v.RouteCost)
	// Stage histograms share one metric name; the stage label
	// distinguishes series. Microseconds rather than the conventional
	// seconds because obs.Histogram buckets are integer powers of two —
	// exact integer math, same convention as locusd_wait_us.
	for i := reqtrace.Stage(0); i < reqtrace.NumStages; i++ {
		if d := v.StageUs[i.String()]; d != nil {
			pt.Histogram("locusd_stage_us", "per-stage request latency in microseconds", d,
				obs.Label{Name: "stage", Value: i.String()})
		}
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(pt.Bytes())
}

// writeJSON writes one JSON document with the right headers; error paths
// that owe the client a Retry-After set it before calling (writeError).
func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

package locusd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/obs"
	"locusroute/pkg/locusroute"
)

// routeBody is the POST /route request document.
type routeBody struct {
	// Circuit names a preloaded circuit (required).
	Circuit string `json:"circuit"`
	// Wire is the request wire's ID (optional label).
	Wire int `json:"wire"`
	// Pins are the wire's [x, y] terminals (>= 2, inside the grid).
	Pins [][2]int `json:"pins"`
	// Commit places the path on the serving replica.
	Commit bool `json:"commit"`
	// DeadlineMillis bounds queue wait + evaluation (0 = the server's
	// default deadline).
	DeadlineMillis int64 `json:"deadline_ms"`
}

// errorBody is every non-200 JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /route       route one wire           -> RouteResponse
//	GET  /circuits    served circuits           -> circuitsDoc
//	GET  /healthz     liveness + drain state    -> healthDoc (503 draining)
//	GET  /metrics     Prometheus text exposition
//	GET  /debug/vars  counters + histograms as stable-order JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/circuits", s.handleCircuits)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	return mux
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST /route"})
		return
	}
	var body routeBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	wire := circuit.Wire{ID: body.Wire}
	for _, p := range body.Pins {
		wire.Pins = append(wire.Pins, geom.Pt(p[0], p[1]))
	}
	deadline := s.cfg.DefaultDeadline
	if body.DeadlineMillis > 0 {
		deadline = time.Duration(body.DeadlineMillis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	resp, err := s.Route(ctx, RouteRequest{Circuit: body.Circuit, Wire: wire, Commit: body.Commit})
	if err != nil {
		writeJSON(w, statusFor(err), errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps service errors to HTTP codes. writeJSON adds the
// Retry-After header on 429.
func statusFor(err error) int {
	var oge *locusroute.OutsideGridError
	switch {
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownCircuit):
		return http.StatusNotFound
	case errors.As(err, &oge):
		return http.StatusBadRequest
	}
	return http.StatusBadRequest
}

// circuitDoc is one /circuits entry.
type circuitDoc struct {
	Name          string `json:"name"`
	Channels      int    `json:"channels"`
	Grids         int    `json:"grids"`
	Wires         int    `json:"wires"`
	Shards        int    `json:"shards"`
	Backend       string `json:"baseline_backend"`
	CircuitHeight int64  `json:"baseline_circuit_height"`
	Occupancy     int64  `json:"baseline_occupancy"`
}

type circuitsDoc struct {
	Circuits []circuitDoc `json:"circuits"`
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	doc := circuitsDoc{Circuits: []circuitDoc{}}
	for _, name := range s.names {
		sc := s.circuits[name]
		doc.Circuits = append(doc.Circuits, circuitDoc{
			Name:          name,
			Channels:      sc.circ.Grid.Channels,
			Grids:         sc.circ.Grid.Grids,
			Wires:         len(sc.circ.Wires),
			Shards:        len(sc.shards),
			Backend:       string(sc.baseline.Backend),
			CircuitHeight: sc.baseline.CircuitHeight,
			Occupancy:     sc.baseline.Occupancy,
		})
	}
	writeJSON(w, http.StatusOK, doc)
}

type healthDoc struct {
	Status   string `json:"status"`
	InFlight int    `json:"in_flight"`
	UptimeMS int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthDoc{Status: "ok", InFlight: s.InFlight(), UptimeMS: time.Since(s.started).Milliseconds()}
	code := http.StatusOK
	if s.Draining() {
		doc.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, doc)
}

// varsDoc is the /debug/vars document; field order is the struct order,
// so the rendering is stable.
type varsDoc struct {
	UptimeMS  int64             `json:"uptime_ms"`
	Draining  bool              `json:"draining"`
	InFlight  int               `json:"in_flight"`
	Capacity  int               `json:"capacity"`
	Served    int64             `json:"served"`
	Committed int64             `json:"committed"`
	Shed      int64             `json:"shed"`
	Expired   int64             `json:"expired"`
	Rejected  int64             `json:"rejected"`
	BatchSize *obs.HistogramDoc `json:"batch_size,omitempty"`
	WaitUs    *obs.HistogramDoc `json:"wait_us,omitempty"`
	RouteCost *obs.HistogramDoc `json:"route_cost,omitempty"`
}

func (s *Server) vars() varsDoc {
	s.met.mu.Lock()
	defer s.met.mu.Unlock()
	return varsDoc{
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Draining:  s.Draining(),
		InFlight:  s.InFlight(),
		Capacity:  s.cfg.MaxInFlight,
		Served:    s.met.served,
		Committed: s.met.committed,
		Shed:      s.met.shed,
		Expired:   s.met.expired,
		Rejected:  s.met.rejected,
		BatchSize: s.met.batchSize.Doc(),
		WaitUs:    s.met.waitUs.Doc(),
		RouteCost: s.met.routeCost.Doc(),
	}
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.vars())
}

// handleMetrics renders the Prometheus text exposition format from the
// same numbers as /debug/vars. Histogram buckets are cumulative, as the
// format requires.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.vars()
	var b strings.Builder
	counter := func(name, help string, val int64) {
		fmt.Fprintf(&b, "# HELP locusd_%s %s\n# TYPE locusd_%s counter\nlocusd_%s %d\n", name, help, name, name, val)
	}
	gauge := func(name, help string, val int64) {
		fmt.Fprintf(&b, "# HELP locusd_%s %s\n# TYPE locusd_%s gauge\nlocusd_%s %d\n", name, help, name, name, val)
	}
	hist := func(name, help string, d *obs.HistogramDoc) {
		fmt.Fprintf(&b, "# HELP locusd_%s %s\n# TYPE locusd_%s histogram\n", name, help, name)
		var cum int64
		if d != nil {
			for _, bk := range d.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "locusd_%s_bucket{le=\"%d\"} %d\n", name, bk.Le, cum)
			}
			fmt.Fprintf(&b, "locusd_%s_bucket{le=\"+Inf\"} %d\n", name, d.Count)
			fmt.Fprintf(&b, "locusd_%s_sum %d\nlocusd_%s_count %d\n", name, d.Sum, name, d.Count)
		} else {
			fmt.Fprintf(&b, "locusd_%s_bucket{le=\"+Inf\"} 0\nlocusd_%s_sum 0\nlocusd_%s_count 0\n", name, name, name)
		}
	}
	counter("requests_served_total", "wire evaluations completed", v.Served)
	counter("requests_committed_total", "evaluations committed to a serving replica", v.Committed)
	counter("requests_shed_total", "requests shed with 429 at the admission gate", v.Shed)
	counter("requests_expired_total", "requests whose deadline expired before evaluation", v.Expired)
	counter("requests_rejected_total", "requests rejected by validation", v.Rejected)
	gauge("in_flight", "admitted requests currently in flight", int64(v.InFlight))
	gauge("capacity", "admission gate capacity", int64(v.Capacity))
	hist("batch_size", "wires per evaluated batch", v.BatchSize)
	hist("wait_us", "microseconds from admission to evaluation", v.WaitUs)
	hist("route_cost", "chosen path cost per evaluation", v.RouteCost)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// writeJSON writes one JSON document with the right headers. 429
// responses carry Retry-After, the contract the clients' backoff uses.
func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

package locusd

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"locusroute/internal/backend"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/policy"
	"locusroute/internal/store"
	"locusroute/internal/wire"
)

// TCPServer serves the binary route protocol (internal/wire) on raw TCP,
// funneling every frame into the same Server.Route core as the JSON
// endpoints — the two transports differ only in encoding cost, which is
// the point: cmd/locusload measures that difference, echoing the paper's
// finding that message packing, not compute, dominates the MP router.
//
// The lifecycle mirrors net/http.Server: Serve blocks on a listener,
// Shutdown stops accepting, interrupts idle connections, and waits for
// in-flight exchanges to write their responses.
type TCPServer struct {
	s *Server

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	handlers  sync.WaitGroup
	draining  atomic.Bool
}

// NewTCPServer wraps s with the binary transport.
func NewTCPServer(s *Server) *TCPServer {
	return &TCPServer{
		s:         s,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// ErrTCPServerClosed reports a Serve loop ended by Shutdown, the analog
// of http.ErrServerClosed.
var ErrTCPServerClosed = errors.New("locusd: tcp server closed")

// Serve accepts connections on l until Shutdown. Each connection is one
// sequential request/response stream (the client pipelines by pooling
// connections, not frames).
func (t *TCPServer) Serve(l net.Listener) error {
	t.mu.Lock()
	if t.draining.Load() {
		t.mu.Unlock()
		l.Close()
		return ErrTCPServerClosed
	}
	t.listeners[l] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.listeners, l)
		t.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			if t.draining.Load() {
				return ErrTCPServerClosed
			}
			return err
		}
		t.mu.Lock()
		if t.draining.Load() {
			t.mu.Unlock()
			nc.Close()
			return ErrTCPServerClosed
		}
		t.conns[nc] = struct{}{}
		t.handlers.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.handlers.Done()
			t.serveConn(nc)
			t.mu.Lock()
			delete(t.conns, nc)
			t.mu.Unlock()
			nc.Close()
		}()
	}
}

// Shutdown stops accepting, wakes connections blocked reading their next
// frame, and waits for in-flight exchanges to finish writing. If ctx
// expires first the remaining connections are force-closed.
func (t *TCPServer) Shutdown(ctx context.Context) error {
	t.draining.Store(true)
	t.mu.Lock()
	for l := range t.listeners {
		l.Close()
	}
	// A connection parked in ReadFrame holds no request; an expired read
	// deadline returns it an error, and the drain check in its loop exits
	// it cleanly. A connection mid-exchange ignores this until its next
	// read, after its response is written.
	for nc := range t.conns {
		nc.SetReadDeadline(time.Now())
	}
	t.mu.Unlock()

	done := make(chan struct{})
	go func() { t.handlers.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		for nc := range t.conns {
			nc.Close()
		}
		t.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// serveConn drains one connection's frame stream. Framing and transport
// errors end the stream; a payload that frames correctly but fails to
// decode is answered with StatusBadRequest and the stream continues, the
// TCP analog of HTTP's per-request 400.
func (t *TCPServer) serveConn(nc net.Conn) {
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	var rbuf, wbuf []byte
	client := ""
	if host, _, err := net.SplitHostPort(nc.RemoteAddr().String()); err == nil {
		client = host
	} else {
		client = nc.RemoteAddr().String()
	}
	for {
		payload, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			// io.EOF at a frame boundary is the clean goodbye; everything
			// else (torn frame, oversized prefix, read-deadline wake) just
			// ends the stream — there is no frame to answer.
			return
		}
		rbuf = payload
		// Lifecycle frames answer with the admin response kind; everything
		// else (route requests, and garbage the decoders will reject) stays
		// on the route response path.
		switch wire.PayloadKind(payload) {
		case wire.KindUpload, wire.KindMutate, wire.KindEvict:
			aresp := t.admin(payload, client)
			wbuf, err = wire.AppendAdminResponseFrame(wbuf[:0], &aresp)
		default:
			resp := t.exchange(payload, client)
			wbuf, err = wire.AppendResponseFrame(wbuf[:0], &resp)
		}
		if err != nil {
			// Response fields out of protocol domain (cannot happen for
			// Route outputs); nothing sane to send.
			return
		}
		if _, err := bw.Write(wbuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if t.draining.Load() {
			// In-flight response written; don't start another exchange
			// during drain.
			return
		}
	}
}

// exchange decodes one request payload, routes it, and builds the
// response frame's fields.
func (t *TCPServer) exchange(payload []byte, client string) wire.Response {
	req, err := wire.DecodeRequest(payload)
	if err != nil {
		return wire.Response{Status: wire.StatusBadRequest, Message: err.Error()}
	}
	if req.Client != "" {
		client = req.Client
	}
	w := circuit.Wire{ID: req.WireID}
	for _, p := range req.Pins {
		w.Pins = append(w.Pins, geom.Pt(p.X, p.Y))
	}
	// An explicit deadline bounds the request here; otherwise Route
	// applies the server's default, exactly as for JSON callers.
	ctx := context.Background()
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	resp, err := t.s.Route(ctx, RouteRequest{
		Circuit: req.Circuit,
		Wire:    w,
		Commit:  req.Commit,
		Client:  client,
		TraceID: req.TraceID,
	})
	if err != nil {
		wresp := t.s.wireError(err)
		// A traced request gets a traced response even on failure, so
		// the id the client correlates on is never dropped by an error.
		if req.Traced && resp.RequestID != "" {
			wresp.Traced = true
			wresp.RequestID = resp.RequestID
			wresp.Stages = wireStages(resp.Stages)
		}
		return wresp
	}
	wresp := wire.Response{
		Status:        wire.StatusOK,
		Shard:         resp.Shard,
		WireID:        resp.WireID,
		Cost:          resp.Cost,
		PathCells:     resp.PathCells,
		CellsExamined: resp.CellsExamined,
		BatchSize:     resp.BatchSize,
		BatchIndex:    resp.BatchIndex,
		Committed:     resp.Committed,
		Cached:        resp.Cached,
		WaitMicros:    resp.WaitMicros,
	}
	// The response frame kind follows the request frame kind: untraced
	// (kind 1) requests always get kind-2 responses, so pre-tracing
	// clients never see a frame they cannot decode. When tracing is
	// disabled server-side, a traced request gets an untraced response —
	// absence of the id tells the client tracing was off.
	if req.Traced && resp.RequestID != "" {
		wresp.Traced = true
		wresp.RequestID = resp.RequestID
		wresp.Stages = wireStages(resp.Stages)
	}
	return wresp
}

// admin decodes and serves one lifecycle frame. A payload that fails to
// decode is answered with StatusBadRequest and the stream continues,
// exactly like a malformed route request.
func (t *TCPServer) admin(payload []byte, client string) wire.AdminResponse {
	switch wire.PayloadKind(payload) {
	case wire.KindUpload:
		u, err := wire.DecodeUpload(payload)
		if err != nil {
			return wire.AdminResponse{Status: wire.StatusBadRequest, Message: err.Error()}
		}
		info, err := t.s.UploadCircuit(store.CircuitFromUpload(u))
		if err != nil {
			return t.s.wireAdminError(err)
		}
		return wire.AdminResponse{Status: wire.StatusOK, Epoch: info.Epoch, Wires: info.Wires}
	case wire.KindMutate:
		m, err := wire.DecodeMutate(payload)
		if err != nil {
			return wire.AdminResponse{Status: wire.StatusBadRequest, Message: err.Error()}
		}
		if m.Client != "" {
			client = m.Client
		}
		res, err := t.s.Mutate(MutateRequest{Circuit: m.Circuit, Ops: store.FromWireOps(m.Ops), Client: client})
		if err != nil {
			return t.s.wireAdminError(err)
		}
		aresp := wire.AdminResponse{Status: wire.StatusOK, Epoch: res.Epoch, Wires: res.Wires}
		for i := range res.Results {
			r := &res.Results[i]
			var op uint8
			switch r.Op {
			case "add":
				op = wire.OpAdd
			case "remove":
				op = wire.OpRemove
			default:
				op = wire.OpReroute
			}
			aresp.Results = append(aresp.Results, wire.OpOutcome{
				Op:            op,
				WireID:        r.WireID,
				Cost:          r.Cost,
				PathCells:     r.PathCells,
				CellsExamined: r.CellsExamined,
			})
		}
		return aresp
	default: // wire.KindEvict — the only other kind dispatched here
		e, err := wire.DecodeEvict(payload)
		if err != nil {
			return wire.AdminResponse{Status: wire.StatusBadRequest, Message: err.Error()}
		}
		if err := t.s.EvictCircuit(e.Circuit); err != nil {
			return t.s.wireAdminError(err)
		}
		return wire.AdminResponse{Status: wire.StatusOK}
	}
}

// wireAdminError maps a lifecycle error to its admin response, reusing
// wireError's status vocabulary so the binary and HTTP surfaces agree
// (wire.Status.HTTPStatus() == statusFor(err), same as the route path).
func (s *Server) wireAdminError(err error) wire.AdminResponse {
	we := s.wireError(err)
	return wire.AdminResponse{
		Status:            we.Status,
		RetryAfterSeconds: we.RetryAfterSeconds,
		Message:           we.Message,
	}
}

// wireStages converts a response's stage breakdown to protocol pairs.
func wireStages(stages []StageSample) []wire.StagePair {
	if len(stages) == 0 {
		return nil
	}
	out := make([]wire.StagePair, len(stages))
	for i, st := range stages {
		out[i] = wire.StagePair{Stage: st.Code, Ns: st.Ns}
	}
	return out
}

// wireError maps a service error to its binary response, carrying the
// same status vocabulary and Retry-After values as writeError does for
// HTTP — wire.Status.HTTPStatus() of the mapped code always equals
// statusFor(err), which TestTCPErrorEquivalence pins.
func (s *Server) wireError(err error) wire.Response {
	resp := wire.Response{Message: err.Error()}
	var rle *policy.RateLimitedError
	var boe *policy.BreakerOpenError
	var oge *backend.OutsideGridError
	switch {
	case errors.Is(err, ErrShed), errors.Is(err, policy.ErrEvicted):
		resp.Status = wire.StatusShed
		resp.RetryAfterSeconds = s.RetryAfterSeconds()
	case errors.As(err, &rle):
		resp.Status = wire.StatusRateLimited
		resp.RetryAfterSeconds = ceilSeconds(rle.RetryAfter)
	case errors.As(err, &boe):
		resp.Status = wire.StatusBreakerOpen
		resp.RetryAfterSeconds = ceilSeconds(boe.RetryAfter)
	case errors.Is(err, policy.ErrRateLimited):
		resp.Status = wire.StatusRateLimited
	case errors.Is(err, policy.ErrBreakerOpen):
		resp.Status = wire.StatusBreakerOpen
	case errors.Is(err, ErrDraining):
		resp.Status = wire.StatusDraining
	case errors.Is(err, ErrDeadline):
		resp.Status = wire.StatusDeadline
	case errors.Is(err, policy.ErrDeadlineInfeasible):
		resp.Status = wire.StatusInfeasible
	case errors.Is(err, ErrUnknownCircuit), errors.Is(err, store.ErrUnknown):
		resp.Status = wire.StatusUnknownCircuit
	case errors.Is(err, ErrCircuitExists), errors.Is(err, ErrImmutable):
		resp.Status = wire.StatusConflict
	case errors.Is(err, store.ErrStoreFull):
		resp.Status = wire.StatusStoreFull
	case errors.As(err, &oge):
		resp.Status = wire.StatusBadRequest
	default:
		resp.Status = wire.StatusBadRequest
	}
	return resp
}

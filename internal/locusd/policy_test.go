package locusd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/policy"
)

// postRouteAs fires one /route request under an X-Client identity.
func postRouteAs(t testing.TB, ts *httptest.Server, client, body string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/route", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("status %d: undecodable body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, resp.Header, doc
}

// TestEDFOrdering pins the tentpole scheduling property end to end:
// with one shard, one EDF queue and a batch window wide enough to
// collect every request, the batch is evaluated earliest-deadline-first
// — batch_index follows deadline tightness, not arrival order.
func TestEDFOrdering(t *testing.T) {
	const n = 4
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 400 * time.Millisecond,
		MaxBatch:    n, // the full wave closes the window early
		Policy:      policy.Config{EDF: true},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Deadlines seconds apart, so millisecond-scale arrival jitter can
	// never reorder them. Request i carries the (n-i)-th tightest
	// deadline: arrival order is the reverse of criticality order.
	var wg sync.WaitGroup
	indexByDeadline := make([]int, n) // tightness rank -> batch_index
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rank := n - 1 - i // request 0 has the slackest deadline
			deadlineMS := 10000 + 5000*rank
			code, doc := postRoute(t, ts, fmt.Sprintf(
				`{"circuit":"svc","wire":%d,"pins":[[2,1],[40,4]],"deadline_ms":%d}`, i, deadlineMS))
			if code != http.StatusOK {
				t.Errorf("request %d: status %d (%v)", i, code, doc)
				return
			}
			indexByDeadline[rank] = int(doc["batch_index"].(float64))
			sizes[rank] = int(doc["batch_size"].(float64))
		}(i)
		// Stagger arrivals so the slackest-deadline request opens the
		// window and the tightest arrives last.
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()

	for rank := 0; rank < n; rank++ {
		if sizes[rank] != n {
			t.Fatalf("batch_size[rank %d] = %d, want %d (requests split across batches; widen the window)",
				rank, sizes[rank], n)
		}
	}
	for rank := 0; rank < n; rank++ {
		if indexByDeadline[rank] != rank {
			t.Errorf("deadline rank %d evaluated at batch_index %d, want %d (EDF order): %v",
				rank, indexByDeadline[rank], rank, indexByDeadline)
		}
	}
}

// TestEDFShedsLeastCritical pins the criticality-aware shed: with the
// gate full, a tighter-deadline arrival preempts the slackest queued
// request, which gets 429 + Retry-After while the arrival gets 200.
func TestEDFShedsLeastCritical(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 500 * time.Millisecond,
		MaxInFlight: 1,
		Policy:      policy.Config{EDF: true},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		hdr  http.Header
		doc  map[string]any
	}
	slack := make(chan result, 1)
	go func() {
		code, hdr, doc := postRouteAs(t, ts, "slack-client",
			`{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":60000}`)
		slack <- result{code, hdr, doc}
	}()
	// Wait until the slack request holds the only gate slot.
	for i := 0; s.InFlight() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	code, _, doc := postRouteAs(t, ts, "tight-client",
		`{"circuit":"svc","wire":9,"pins":[[3,2],[30,5]],"deadline_ms":5000}`)
	if code != http.StatusOK {
		t.Fatalf("tight-deadline arrival: status %d, want 200 (%v)", code, doc)
	}

	r := <-slack
	if r.code != http.StatusTooManyRequests {
		t.Fatalf("preempted request: status %d, want 429 (%v)", r.code, r.doc)
	}
	if r.hdr.Get("Retry-After") == "" {
		t.Error("preempted 429 carries no Retry-After")
	}
	if msg, _ := r.doc["error"].(string); !strings.Contains(msg, "more critical") {
		t.Errorf("preempted error %q, want the eviction sentinel text", msg)
	}
	v := s.vars()
	if v.Evicted != 1 || v.Shed != 1 {
		t.Errorf("evicted %d shed %d, want 1 and 1", v.Evicted, v.Shed)
	}
}

// testWire builds a wire inside the test circuit's grid for direct
// (non-HTTP) Route calls.
func testWire(id int) circuit.Wire {
	return circuit.Wire{ID: id, Pins: []circuit.Pin{{X: 2, Y: 1}, {X: 40, Y: 4}}}
}

// TestShedReleasesBreakerProbe pins the probe-leak regression: a
// request admitted through a half-open breaker and then shed at a full
// gate produces no outcome, so the probe slot must be handed back.
// Without the release, the breaker stays half-open with its one probe
// slot occupied forever, rejecting every request until restart.
func TestShedReleasesBreakerProbe(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 50 * time.Millisecond,
		MaxInFlight: 1,
		Policy:      policy.Config{BreakerFailures: 1, BreakerCooldown: 300 * time.Millisecond},
	})

	// One guaranteed deadline expiry (1ms deadline inside a 50ms batch
	// window) trips the threshold-1 breaker.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	if _, err := s.Route(ctx, RouteRequest{Circuit: "svc", Wire: testWire(1)}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expiry request err = %v, want ErrDeadline", err)
	}
	cancel()
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(2)}); !errors.Is(err, policy.ErrBreakerOpen) {
		t.Fatalf("request on tripped breaker err = %v, want ErrBreakerOpen", err)
	}

	// Fill the gate, wait out the cooldown, and send the probe: the
	// breaker admits it half-open, the full gate sheds it.
	if !s.gate.TryEnter() {
		t.Fatal("gate refused below capacity")
	}
	time.Sleep(400 * time.Millisecond)
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(3)}); !errors.Is(err, ErrShed) {
		t.Fatalf("probe at full gate err = %v, want ErrShed", err)
	}
	s.gate.Leave()

	// The shed probe never produced an outcome; the slot must be free
	// for the next arrival, whose success closes the breaker.
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(4)}); err != nil {
		t.Fatalf("re-probe after shed err = %v, want nil (probe slot leaked: breaker wedged)", err)
	}
	if _, err := s.Route(context.Background(), RouteRequest{Circuit: "svc", Wire: testWire(5)}); err != nil {
		t.Errorf("request after closing probe err = %v, want nil", err)
	}
}

// TestPreemptExpiredVictimNotDoubleCounted pins the metrics split: a
// queued request whose caller already gave up is counted expired by its
// own goroutine; preemption finding its stale queue entry must not also
// count it shed/evicted.
func TestPreemptExpiredVictimNotDoubleCounted(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 10 * time.Second, // long window keeps entries queued
		MaxInFlight: 1,
		Policy:      policy.Config{EDF: true},
	})

	// Park a request in the EDF queue (a plain context picks up the 5s
	// default deadline), then cancel its caller: the request is counted
	// expired and releases its gate slot, but its entry stays queued
	// until a window closes.
	ctx, cancel := context.WithCancel(context.Background())
	routed := make(chan error, 1)
	go func() {
		_, err := s.Route(ctx, RouteRequest{Circuit: "svc", Wire: testWire(1)})
		routed <- err
	}()
	q := s.circuits["svc"].queue
	for i := 0; q.Len() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if q.Len() != 1 {
		t.Fatal("parked request never reached the EDF queue")
	}
	cancel()
	if err := <-routed; !errors.Is(err, ErrDeadline) {
		t.Fatalf("cancelled request err = %v, want ErrDeadline", err)
	}

	// Refill the gate so the next arrival must preempt; the only
	// candidate victim is the stale entry. The arrival's 2s deadline is
	// strictly tighter than the victim's defaulted 5s, so EvictSlackest
	// really hands back the stale entry.
	if !s.gate.TryEnter() {
		t.Fatal("gate refused after the cancelled request released it")
	}
	defer s.gate.Leave()
	tight, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer tcancel()
	if _, err := s.Route(tight, RouteRequest{Circuit: "svc", Wire: testWire(2)}); !errors.Is(err, ErrShed) {
		t.Fatalf("arrival err = %v, want ErrShed (stale victim yields no usable slot)", err)
	}

	v := s.vars()
	if v.Expired != 1 || v.Evicted != 0 || v.Shed != 1 {
		t.Errorf("expired %d evicted %d shed %d, want 1/0/1 (stale victim double-counted)",
			v.Expired, v.Evicted, v.Shed)
	}
}

// TestRetryAfterFromQueueState pins the Retry-After derivation: the
// estimate is ceil(in-flight / (shards*max-batch)) batch windows,
// rounded up to whole seconds — queue state, not a constant. The
// white-box part drives the gate directly so the multi-window division
// is exercised without parking real requests over many windows.
func TestRetryAfterFromQueueState(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 3 * time.Second,
		MaxBatch:    1,
		MaxInFlight: 8,
	})
	for i := 0; i < 4; i++ {
		if !s.gate.TryEnter() {
			t.Fatal("gate refused below capacity")
		}
	}
	// 4 in flight, 1 retired per 3s window: 4 windows = 12s.
	if got := s.RetryAfterSeconds(); got != 12 {
		t.Errorf("RetryAfterSeconds with backlog 4 = %d, want 12", got)
	}
	for i := 0; i < 4; i++ {
		s.gate.Leave()
	}
	// Empty backlog still advises one full window (3s), never below 1s.
	if got := s.RetryAfterSeconds(); got != 3 {
		t.Errorf("RetryAfterSeconds idle = %d, want 3 (one window)", got)
	}
}

// TestRetryAfterHeaderOnShed pins the header end to end: a 429 from a
// full gate carries Retry-After equal to the server's drain estimate —
// here one 3s window.
func TestRetryAfterHeaderOnShed(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 3 * time.Second,
		MaxInFlight: 1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park one request inside the window; its short deadline lets it
	// expire right after the assertion instead of holding the drain.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":700}`)
	}()
	for i := 0; s.InFlight() == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/route", "application/json",
		strings.NewReader(`{"circuit":"svc","pins":[[3,2],[30,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\" (one 3s window to drain)", got)
	}
	wg.Wait()
}

// TestCacheHitAndEpochInvalidation pins the result cache over HTTP: a
// repeat request is served cached, and a commit advances the cost epoch
// so the next repeat re-evaluates.
func TestCacheHitAndEpochInvalidation(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy:      policy.Config{CacheEntries: 64},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"circuit":"svc","wire":5,"pins":[[2,1],[40,4]]}`
	code, doc1 := postRoute(t, ts, body)
	if code != http.StatusOK || doc1["cached"] == true {
		t.Fatalf("first request: status %d cached %v", code, doc1["cached"])
	}
	code, doc2 := postRoute(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if doc2["cached"] != true {
		t.Error("repeat request not served from the cache")
	}
	if doc2["cost"] != doc1["cost"] || doc2["wire"] != doc1["wire"] {
		t.Errorf("cached response diverges: %v vs %v", doc2, doc1)
	}
	if s.vars().CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", s.vars().CacheHits)
	}

	// A commit bumps the epoch; the same wire set must re-evaluate.
	commitBody := `{"circuit":"svc","wire":5,"pins":[[2,1],[40,4]],"commit":true}`
	if code, doc := postRoute(t, ts, commitBody); code != http.StatusOK || doc["cached"] == true {
		t.Fatalf("commit request: status %d cached %v (commits must never hit the cache)", code, doc["cached"])
	}
	if got := s.Epoch("svc"); got != 1 {
		t.Fatalf("cost epoch after commit = %d, want 1", got)
	}
	if _, doc := postRoute(t, ts, body); doc["cached"] == true {
		t.Error("request after a commit served from the stale epoch")
	}
}

// TestBreakerOverHTTP drives the breaker through its lifecycle: expired
// deadlines trip it, open rejects with 503 + Retry-After, and a
// successful probe after the cooldown closes it.
func TestBreakerOverHTTP(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: 100 * time.Millisecond,
		Policy:      policy.Config{BreakerFailures: 2, BreakerCooldown: 300 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two guaranteed deadline expiries (1ms deadline inside a 100ms
	// window) trip the breaker.
	for i := 0; i < 2; i++ {
		code, doc := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":1}`)
		if code != http.StatusGatewayTimeout {
			t.Fatalf("expiry %d: status %d, want 504 (%v)", i, code, doc)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/route", "application/json",
		strings.NewReader(`{"circuit":"svc","pins":[[2,1],[40,4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 carries no Retry-After")
	}
	if s.vars().Denied == 0 {
		t.Error("breaker rejection not counted as denied")
	}

	// After the cooldown a healthy probe closes the breaker again.
	time.Sleep(350 * time.Millisecond)
	if code, doc := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]]}`); code != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d, want 200 (%v)", code, doc)
	}
	if code, _ := postRoute(t, ts, `{"circuit":"svc","pins":[[3,2],[30,5]]}`); code != http.StatusOK {
		t.Errorf("request after closing probe: status %d, want 200", code)
	}
}

// TestRateLimitOverHTTP pins per-client limiting: the second request
// under one X-Client identity breaks the burst-1 bucket and gets 429 +
// Retry-After, while another client is unaffected.
func TestRateLimitOverHTTP(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy:      policy.Config{RatePerSec: 0.01, Burst: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"circuit":"svc","pins":[[2,1],[40,4]]}`
	if code, _, doc := postRouteAs(t, ts, "alice", body); code != http.StatusOK {
		t.Fatalf("first request: status %d (%v)", code, doc)
	}
	code, hdr, doc := postRouteAs(t, ts, "alice", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (%v)", code, doc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("rate-limit 429 carries no Retry-After")
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "over rate limit") {
		t.Errorf("rate-limit error %q", msg)
	}
	if code, _, _ := postRouteAs(t, ts, "bob", body); code != http.StatusOK {
		t.Errorf("other client: status %d, want 200 (per-client buckets)", code)
	}
	if s.vars().Denied != 1 {
		t.Errorf("denied = %d, want 1", s.vars().Denied)
	}
}

// TestDeadlineAdmissionOverHTTP pins up-front infeasibility rejection:
// a deadline below the admission floor is refused with 504 before
// queueing.
func TestDeadlineAdmissionOverHTTP(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy:      policy.Config{AdmitFloor: 2 * time.Second},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, doc := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":100}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("infeasible deadline: status %d, want 504 (%v)", code, doc)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "infeasible") {
		t.Errorf("error %q, want the infeasibility sentinel text", msg)
	}
	if code, _ := postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]],"deadline_ms":30000}`); code != http.StatusOK {
		t.Errorf("feasible deadline: status %d, want 200", code)
	}
	if s.vars().Denied != 1 {
		t.Errorf("denied = %d, want 1", s.vars().Denied)
	}
}

// TestPolicyMetricsExposed pins the observability satellite: enabled
// elements surface per-element counters on /debug/vars and labelled
// locusd_policy_* series on /metrics.
func TestPolicyMetricsExposed(t *testing.T) {
	s := newServer(t, Config{
		Shards:      1,
		BatchWindow: time.Millisecond,
		Policy: policy.Config{
			AdmitFloor: time.Millisecond, RatePerSec: 100, Burst: 10,
			BreakerFailures: 5, CacheEntries: 8, EDF: true,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postRoute(t, ts, `{"circuit":"svc","pins":[[2,1],[40,4]]}`)

	var vars varsDoc
	getJSON(t, ts, "/debug/vars", &vars)
	if len(vars.Policy) != 5 {
		t.Fatalf("vars policy elements = %d, want 5 (%+v)", len(vars.Policy), vars.Policy)
	}
	byName := map[string][]counterDoc{}
	for _, el := range vars.Policy {
		byName[el.Element] = el.Counters
	}
	for _, want := range []string{"deadline", "ratelimit", "breaker", "cache", "edf"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("vars missing element %q", want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`locusd_policy_admitted_total{element="deadline"}`,
		`locusd_policy_admitted_total{element="ratelimit"}`,
		`locusd_policy_scheduled_total{element="edf"}`,
		`locusd_policy_misses_total{element="cache"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// One HELP/TYPE pair per metric name even with several elements
	// sharing the admitted_total suffix.
	if got := strings.Count(text, "# TYPE locusd_policy_admitted_total counter"); got != 1 {
		t.Errorf("locusd_policy_admitted_total TYPE lines = %d, want exactly 1", got)
	}
}

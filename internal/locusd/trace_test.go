package locusd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/policy"
	"locusroute/internal/reqtrace"
	"locusroute/internal/wire"
)

// tracedConfig is the base serving config with tracing fully on.
func tracedConfig() Config {
	return Config{
		Shards:      2,
		BatchWindow: time.Millisecond,
		Tracer:      reqtrace.New(reqtrace.Options{Sample: 1, Capacity: 64}),
	}
}

// TestTraceStagesSumToWall pins the accounting invariant end to end:
// the breakdown a real routed response carries sums to the wall
// latency the tracer recorded for that request, exactly.
func TestTraceStagesSumToWall(t *testing.T) {
	cfg := tracedConfig()
	s := newServer(t, cfg)

	for i := 0; i < 5; i++ {
		resp, err := s.Route(context.Background(), RouteRequest{
			Circuit: "svc",
			Wire:    wireReq(100+i, 2, 1, 40, 4),
			Commit:  i%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.RequestID == "" || len(resp.Stages) == 0 {
			t.Fatalf("traced response missing id/stages: %+v", resp)
		}
		var sum int64
		seen := map[string]bool{}
		for _, st := range resp.Stages {
			if st.Ns <= 0 {
				t.Fatalf("non-positive stage %+v", st)
			}
			if code, ok := reqtrace.StageByName(st.Stage); !ok || uint8(code) != st.Code {
				t.Fatalf("stage name/code mismatch: %+v", st)
			}
			if seen[st.Stage] {
				t.Fatalf("duplicate stage %q", st.Stage)
			}
			seen[st.Stage] = true
			sum += st.Ns
		}
		if !seen["route"] || !seen["respond"] {
			t.Fatalf("routed request missing route/respond stages: %+v", resp.Stages)
		}
		rec := findRec(t, cfg.Tracer, resp.RequestID)
		if sum != rec.Wall {
			t.Fatalf("response stages sum %dns != recorded wall %dns", sum, rec.Wall)
		}
		var recSum int64
		for _, ns := range rec.Stages {
			recSum += ns
		}
		if recSum != rec.Wall {
			t.Fatalf("record stages sum %dns != wall %dns", recSum, rec.Wall)
		}
		if rec.Outcome != reqtrace.OutcomeOK || rec.Shard != resp.Shard {
			t.Fatalf("record = %+v, response shard %d", rec, resp.Shard)
		}
	}
}

// wireReq builds the standard two-pin test wire.
func wireReq(id, x1, y1, x2, y2 int) circuit.Wire {
	return circuit.Wire{ID: id, Pins: []geom.Point{geom.Pt(x1, y1), geom.Pt(x2, y2)}}
}

// findRec locates a retained record by its echoed id.
func findRec(t testing.TB, tr *reqtrace.Tracer, id string) reqtrace.Rec {
	t.Helper()
	for _, r := range tr.Records() {
		if r.IDString() == id {
			return r
		}
	}
	t.Fatalf("no retained record for %q", id)
	return reqtrace.Rec{}
}

// TestTraceIDEquivalenceJSONBin pins request-id propagation across both
// transports: a supplied id is echoed verbatim, an absent one is minted,
// and both surfaces return the same stage vocabulary.
func TestTraceIDEquivalenceJSONBin(t *testing.T) {
	s := newServer(t, tracedConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	addr, _ := startTCP(t, s)

	// JSON: adopted id comes back in header and body.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/route",
		strings.NewReader(`{"circuit":"svc","wire":301,"pins":[[2,1],[40,4]]}`))
	req.Header.Set(RequestIDHeader, "same-id-both-ways")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jdoc struct {
		RequestID string `json:"request_id"`
		Stages    []struct {
			Stage string `json:"stage"`
			Ns    int64  `json:"ns"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&jdoc); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if got := hresp.Header.Get(RequestIDHeader); got != "same-id-both-ways" {
		t.Fatalf("header id = %q", got)
	}
	if jdoc.RequestID != "same-id-both-ways" || len(jdoc.Stages) == 0 {
		t.Fatalf("json doc = %+v", jdoc)
	}

	// Binary: the same adopted id on a traced frame.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bresp, err := c.Do(&wire.Request{Circuit: "svc", WireID: 302,
		Pins:   []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)},
		Traced: true, TraceID: "same-id-both-ways"})
	if err != nil {
		t.Fatal(err)
	}
	if !bresp.Traced || bresp.RequestID != "same-id-both-ways" {
		t.Fatalf("bin response = %+v", bresp)
	}
	if len(bresp.Stages) == 0 {
		t.Fatal("bin response has no stages")
	}
	jstages := map[string]bool{}
	for _, st := range jdoc.Stages {
		jstages[st.Stage] = true
	}
	for _, p := range bresp.Stages {
		name := reqtrace.Stage(p.Stage).String()
		if !jstages[name] && name != "queue" && name != "batch" && name != "commit" {
			t.Errorf("bin stage %q outside the JSON vocabulary %v", name, jstages)
		}
	}

	// Minted ids: both transports fall back to the r%08x form.
	code, doc := postRoute(t, ts, `{"circuit":"svc","wire":303,"pins":[[2,1],[40,4]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	minted, _ := doc["request_id"].(string)
	if !strings.HasPrefix(minted, "r") || len(minted) != 9 {
		t.Fatalf("json minted id = %q", minted)
	}
	bresp, err = c.Do(&wire.Request{Circuit: "svc", WireID: 304,
		Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bresp.RequestID, "r") || len(bresp.RequestID) != 9 {
		t.Fatalf("bin minted id = %q", bresp.RequestID)
	}

	// Untraced binary frames get untraced responses: old clients never
	// see the new frame kind.
	bresp, err = c.Do(&wire.Request{Circuit: "svc", WireID: 305,
		Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Traced || bresp.RequestID != "" || bresp.Stages != nil {
		t.Fatalf("untraced request got traced response: %+v", bresp)
	}
}

// TestTraceDisabled pins the off state: no ids anywhere, and a traced
// binary request degrades to an untraced response.
func TestTraceDisabled(t *testing.T) {
	s := newServer(t, Config{Shards: 2, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	addr, _ := startTCP(t, s)

	code, doc := postRoute(t, ts, `{"circuit":"svc","wire":311,"pins":[[2,1],[40,4]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if _, present := doc["request_id"]; present {
		t.Fatalf("request_id present with tracing off: %v", doc)
	}
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bresp, err := c.Do(&wire.Request{Circuit: "svc", WireID: 312,
		Pins: []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)}, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Traced || bresp.RequestID != "" {
		t.Fatalf("tracing-off server sent a traced response: %+v", bresp)
	}

	// /debug/trace is a 404 when tracing is off.
	tresp, err := ts.Client().Get(ts.URL + "/debug/trace?sec=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace status %d with tracing off", tresp.StatusCode)
	}
}

// TestTraceErrorPaths pins that failures still echo the id: the error
// body carries it on HTTP and the traced error frame on the binary
// protocol, and the record's outcome classifies the failure.
func TestTraceErrorPaths(t *testing.T) {
	cfg := tracedConfig()
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	addr, _ := startTCP(t, s)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/route",
		strings.NewReader(`{"circuit":"nope","wire":1,"pins":[[2,1],[40,4]]}`))
	req.Header.Set(RequestIDHeader, "err-id-1")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var errDoc struct {
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&errDoc); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", hresp.StatusCode)
	}
	if errDoc.RequestID != "err-id-1" {
		t.Fatalf("error body lost the id: %+v", errDoc)
	}
	rec := findRec(t, cfg.Tracer, "err-id-1")
	if rec.Outcome != reqtrace.OutcomeRejected {
		t.Fatalf("outcome = %v, want rejected", rec.Outcome)
	}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bresp, err := c.Do(&wire.Request{Circuit: "nope", WireID: 2,
		Pins:   []geom.Point{geom.Pt(2, 1), geom.Pt(40, 4)},
		Traced: true, TraceID: "err-id-2"})
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Status != wire.StatusUnknownCircuit || !bresp.Traced || bresp.RequestID != "err-id-2" {
		t.Fatalf("bin error response = %+v", bresp)
	}

	// An oversized trace id is rejected outright on both transports.
	long := strings.Repeat("x", reqtrace.MaxTraceID+1)
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/route",
		strings.NewReader(`{"circuit":"svc","wire":3,"pins":[[2,1],[40,4]]}`))
	req.Header.Set(RequestIDHeader, long)
	hresp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized id status %d", hresp.StatusCode)
	}
}

// TestTraceCachedResponse pins the cache/trace interaction: a hit gets
// its own fresh request id and an admit-only breakdown — the cache
// stores the evaluation, never the trace of whoever filled it.
func TestTraceCachedResponse(t *testing.T) {
	cfg := tracedConfig()
	cfg.Policy = policy.Config{CacheEntries: 16}
	s := newServer(t, cfg)

	first, err := s.Route(context.Background(), RouteRequest{
		Circuit: "svc", Wire: wireReq(320, 2, 1, 40, 4)})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Route(context.Background(), RouteRequest{
		Circuit: "svc", Wire: wireReq(320, 2, 1, 40, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("second response not cached: %+v", second)
	}
	if second.RequestID == "" || second.RequestID == first.RequestID {
		t.Fatalf("cached id %q vs first %q", second.RequestID, first.RequestID)
	}
	for _, st := range second.Stages {
		if st.Stage == "route" || st.Stage == "queue" {
			t.Fatalf("cached response charged %q: %+v", st.Stage, second.Stages)
		}
	}
	rec := findRec(t, cfg.Tracer, second.RequestID)
	if rec.Outcome != reqtrace.OutcomeCached {
		t.Fatalf("outcome = %v, want cached", rec.Outcome)
	}
}

// TestDebugTraceEndpoint pins the live capture: requests finishing
// inside the window come back as a structurally valid Chrome trace.
func TestDebugTraceEndpoint(t *testing.T) {
	s := newServer(t, tracedConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			postRoute(t, ts, fmt.Sprintf(`{"circuit":"svc","wire":%d,"pins":[[2,1],[40,4]]}`, 400+i))
			time.Sleep(5 * time.Millisecond)
		}
	}()
	resp, err := ts.Client().Get(ts.URL + "/debug/trace?sec=0.3")
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	depth := map[int]int{}
	lastTS := map[int]float64{}
	requests := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			depth[e.Tid]++
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				t.Fatalf("unbalanced E on tid %d", e.Tid)
			}
		default:
			continue
		}
		if e.Ts < lastTS[e.Tid] {
			t.Fatalf("timestamps regress on tid %d", e.Tid)
		}
		lastTS[e.Tid] = e.Ts
		if e.Ph == "B" && e.Name == "request" {
			requests++
			if _, ok := e.Args["request_id"]; !ok {
				t.Fatalf("request span missing request_id: %+v", e.Args)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d ends unbalanced at depth %d", tid, d)
		}
	}
	if requests == 0 {
		t.Fatal("capture contains no request spans")
	}

	// Bad windows are rejected.
	for _, q := range []string{"sec=0", "sec=-1", "sec=bogus"} {
		r, err := ts.Client().Get(ts.URL + "/debug/trace?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s → status %d, want 400", q, r.StatusCode)
		}
	}
}

// TestTracePolicyElementTiming pins the per-element admission detail: a
// traced request through a policy chain records element timings on its
// retained record.
func TestTracePolicyElementTiming(t *testing.T) {
	cfg := tracedConfig()
	cfg.Policy = policy.Config{AdmitFloor: time.Microsecond, RatePerSec: 1e6, Burst: 100, CacheEntries: 8}
	s := newServer(t, cfg)

	resp, err := s.Route(context.Background(), RouteRequest{
		Circuit: "svc", Wire: wireReq(330, 2, 1, 40, 4)})
	if err != nil {
		t.Fatal(err)
	}
	rec := findRec(t, cfg.Tracer, resp.RequestID)
	got := map[string]bool{}
	for _, e := range rec.Policy {
		got[e.Element] = true
	}
	for _, want := range []string{"deadline", "ratelimit", "cache"} {
		if !got[want] {
			t.Errorf("policy timing missing %q: %+v", want, rec.Policy)
		}
	}
}

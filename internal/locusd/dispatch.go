package locusd

import (
	"fmt"
	"time"

	"locusroute/internal/policy"
	"locusroute/internal/route"
)

// This file is the dispatch stage of the request path: how admitted
// requests become batches on a serving shard. Two disciplines exist
// side by side:
//
//   - batchLoop (default): each shard owns a FIFO queue fed round-robin;
//     the first arrival opens the batch window and arrivals are
//     evaluated in arrival order.
//   - edfLoop (policy.Sched enabled): shards pull from one deadline-
//     ordered queue per circuit; the window still bounds latency but
//     the batch is popped in earliest-deadline-first order, and a full
//     admission gate preempts the slackest queued request instead of
//     shedding the arrival (preempt).

// batchLoop drains one shard's FIFO queue: the first arrival opens a
// batch, the window (or MaxBatch, or drain) closes it, and the batch is
// evaluated under the pool.
func (s *Server) batchLoop(sc *servedCircuit, sh *shard) {
	defer s.loops.Done()
	for {
		var first *pending
		select {
		case first = <-sh.queue:
		case u := <-sh.updates:
			// Idle shard: fold the mutation delta into the replica now.
			// Only this loop touches sh.arr, so no lock is needed.
			sh.apply(u)
			continue
		case <-sc.stop:
			// Evicted: EvictCircuit waited out the circuit's in-flight
			// requests before closing stop, so the queue is empty.
			return
		case <-s.stop:
			// Drain: evaluate whatever is still queued, then exit.
			for {
				select {
				case p := <-sh.queue:
					s.cfg.Pool.Run(func() { s.process(sh, sc, []*pending{p}) })
				default:
					return
				}
			}
		}
		batch := []*pending{first}
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-sh.queue:
				batch = append(batch, p)
			case u := <-sh.updates:
				sh.apply(u)
			case <-timer.C:
				break collect
			case <-s.stop:
				break collect
			}
		}
		timer.Stop()
		sh.drainUpdates()
		s.cfg.Pool.Run(func() { s.process(sh, sc, batch) })
	}
}

// apply folds one mutation delta into the shard's replica. Must only be
// called from the shard's own loop goroutine.
func (sh *shard) apply(u shardUpdate) {
	view := route.ArrayView{A: sh.arr}
	for _, p := range u.rip {
		route.RipUp(view, p)
	}
	for _, p := range u.commit {
		route.Commit(view, p)
	}
}

// drainUpdates applies every queued mutation delta without blocking, so
// a batch evaluates against the freshest replica the loop has seen.
func (sh *shard) drainUpdates() {
	for {
		select {
		case u := <-sh.updates:
			sh.apply(u)
		default:
			return
		}
	}
}

// edfLoop pulls deadline-ordered batches from the circuit's shared
// queue. Requests stay in the queue until the window closes — that is
// what keeps them visible to preempt — and PopBatch hands them over
// already in earliest-deadline-first order, so the shard commits the
// most critical work first.
func (s *Server) edfLoop(sc *servedCircuit, sh *shard) {
	defer s.loops.Done()
	q := sc.queue
	for {
		if q.Len() == 0 {
			select {
			case <-q.C():
			case u := <-sh.updates:
				sh.apply(u)
				continue
			case <-sc.stop:
				// Evicted after the circuit's in-flight requests drained;
				// nothing is queued.
				return
			case <-s.stop:
				s.drainEDF(sc, sh)
				return
			}
		}
		// First arrival seen: open the window. More arrivals only bump
		// the wake channel; the queue orders them. The loop condition
		// re-checks the queue depth before every wait: a burst of >=
		// MaxBatch pushes coalesces into the single buffered wake (often
		// consumed by the empty-queue wait above), so waiting for another
		// signal would sleep the whole window with a full batch already
		// queued.
		timer := time.NewTimer(s.cfg.BatchWindow)
	window:
		for q.Len() < s.cfg.MaxBatch {
			select {
			case <-timer.C:
				break window
			case u := <-sh.updates:
				sh.apply(u)
			case <-s.stop:
				break window
			case <-q.C():
			}
		}
		timer.Stop()
		sh.drainUpdates()
		batch := q.PopBatch(s.cfg.MaxBatch)
		if q.Len() > 0 {
			// Partial drain: re-arm the wake channel so a sibling shard
			// (or the next lap) picks up the remainder.
			q.Signal()
		}
		if len(batch) == 0 {
			// The wave was consumed by a sibling or evicted by preempt.
			continue
		}
		s.chain.Sched().NoteBatch()
		pend := make([]*pending, len(batch))
		for i, it := range batch {
			pend[i] = it.Value.(*pending)
		}
		s.cfg.Pool.Run(func() { s.process(sh, sc, pend) })
	}
}

// drainEDF evaluates everything still queued at shutdown. Close waits
// for in-flight requests before closing stop, so the queue cannot grow
// underneath the drain.
func (s *Server) drainEDF(sc *servedCircuit, sh *shard) {
	for {
		batch := sc.queue.PopBatch(s.cfg.MaxBatch)
		if len(batch) == 0 {
			return
		}
		pend := make([]*pending, len(batch))
		for i, it := range batch {
			pend[i] = it.Value.(*pending)
		}
		s.cfg.Pool.Run(func() { s.process(sh, sc, pend) })
	}
}

// preempt implements least-critical-first shedding: with the gate full,
// find the queued request with the slackest deadline across all served
// circuits and, if it is strictly less critical than the arrival,
// shed it (429 to its caller) and take its admission slot. Returns
// whether a slot was obtained; false falls back to shedding the
// arrival, which is then itself the least critical request present.
func (s *Server) preempt(deadline time.Time) bool {
	sched := s.chain.Sched()
	if sched == nil {
		return false
	}
	// Two laps: when the victim's slot cannot be transferred directly
	// (its own goroutine released it already), the fallback TryEnter
	// races concurrent arrivals; one retry keeps the preemption useful
	// under that race without spinning.
	for lap := 0; lap < 2; lap++ {
		var victimQ *policy.EDFQueue
		var slackest time.Time
		s.mu.RLock()
		queues := make([]*policy.EDFQueue, 0, len(s.names))
		for _, name := range s.names {
			queues = append(queues, s.circuits[name].queue)
		}
		s.mu.RUnlock()
		for _, q := range queues {
			if d, ok := q.SlackestDeadline(); ok {
				if victimQ == nil || policy.DeadlineLess(slackest, d) {
					victimQ, slackest = q, d
				}
			}
		}
		if victimQ == nil {
			return false
		}
		it := victimQ.EvictSlackest(deadline)
		if it == nil {
			// The arrival is the least critical request present.
			return false
		}
		victim := it.Value.(*pending)
		// Winning the gateHeld CAS transfers the victim's admission slot
		// straight to the arrival: it never returns to the gate, so a
		// concurrent arrival cannot steal it in between and force a
		// second eviction for one capacity conflict.
		transferred := victim.gateHeld.CompareAndSwap(true, false)
		if victim.ctx.Err() == nil {
			sched.NoteEviction()
			s.met.mu.Lock()
			s.met.shed++
			s.met.evicted++
			s.met.mu.Unlock()
			victim.done <- outcome{err: fmt.Errorf("%w (slack %v lost to a tighter deadline)",
				policy.ErrEvicted, time.Until(it.Deadline).Round(time.Millisecond))}
		}
		// else: the victim's caller already gave up; its own goroutine
		// counts the request as expired, and bumping shed/evicted here
		// would double-count it.
		if transferred || s.gate.TryEnter() {
			return true
		}
	}
	return false
}

// process evaluates one batch against the shard's replica. Only one
// loop calls process for a given shard, so the array needs no lock;
// the routing scratch is borrowed from the server's grid-keyed pool
// for the batch and returned afterwards, so the per-request cost stays
// at the reused-scratch allocation floor (see backend.ScratchPool).
// EDF batches arrive deadline-ordered; FIFO batches arrive in arrival
// order — either way BatchIndex records the commit order.
func (s *Server) process(sh *shard, sc *servedCircuit, batch []*pending) {
	view := route.ArrayView{A: sh.arr}
	scratch := s.scratch.Get(sc.grid)
	defer s.scratch.Put(sc.grid, scratch)
	tr := s.cfg.Tracer
	batchStart := tr.Now() // 0 when tracing is disabled
	for i, p := range batch {
		if p.ctx.Err() != nil {
			// The waiter usually counted this expiry already (ctx.Done
			// fires for it too); countExpired keeps the tally at one.
			s.countExpired(p)
			p.done <- outcome{err: ErrDeadline}
			continue
		}
		wait := time.Since(p.enqueued)
		// Stage stamps ride the done channel back to the waiter; the
		// shard never touches p.span (the waiter may have abandoned or
		// finished it already — p.traced is the immutable mirror).
		// batchStart is shared by the whole batch — request i's batch
		// stage is the time earlier members spent routing.
		traced := p.traced
		var t [4]int64
		if traced {
			t[0] = batchStart
			t[1] = tr.Now()
		}
		ev := scratch.RouteWire(view, &p.req.Wire, s.cfg.Router)
		if traced {
			t[2] = tr.Now()
			t[3] = t[2] // no commit: the commit stage charges zero
		}
		committed := false
		if p.req.Commit {
			route.Commit(view, ev.Path)
			sc.epoch.Add(1)
			committed = true
			if traced {
				t[3] = tr.Now()
			}
		}
		s.met.mu.Lock()
		s.met.served++
		if committed {
			s.met.committed++
		}
		s.met.batchSize.Observe(int64(len(batch)))
		s.met.waitUs.Observe(wait.Microseconds())
		s.met.routeCost.Observe(ev.Cost)
		s.met.mu.Unlock()
		p.done <- outcome{resp: RouteResponse{
			Circuit:       p.req.Circuit,
			Shard:         sh.id,
			WireID:        p.req.Wire.ID,
			Cost:          ev.Cost,
			PathCells:     ev.Path.Len(),
			CellsExamined: ev.CellsExamined,
			BatchSize:     len(batch),
			BatchIndex:    i,
			Committed:     committed,
			WaitMicros:    wait.Microseconds(),
		}, t: t, traced: traced}
	}
}

// RetryAfterSeconds estimates the drain time of the current backlog —
// the Retry-After a 429 carries. The gate's in-flight count is the
// backlog; every batch window the shards can retire up to
// totalShards*MaxBatch of it. The estimate is rounded up to whole
// seconds (the header's unit), minimum 1.
func (s *Server) RetryAfterSeconds() int {
	perWindow := int(s.totalShards.Load()) * s.cfg.MaxBatch
	if perWindow < 1 {
		// An empty (store-only) server with nothing registered yet still
		// owes 429s a sane Retry-After.
		perWindow = s.cfg.MaxBatch
	}
	windows := (s.gate.InFlight() + perWindow - 1) / perWindow
	if windows < 1 {
		windows = 1
	}
	d := time.Duration(windows) * s.cfg.BatchWindow
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

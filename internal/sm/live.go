package sm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

// AtomicArray is a shared cost array safe for concurrent use without
// locks: each cell is accessed with atomic word operations, matching the
// paper's unlocked shared cost array (the probability of collisions is
// low and the algorithm tolerates them; atomics keep the Go program free
// of data races).
type AtomicArray struct {
	grid  geom.Grid
	cells []atomic.Int32
}

// NewAtomicArray returns a zeroed shared array.
func NewAtomicArray(g geom.Grid) *AtomicArray {
	return &AtomicArray{grid: g, cells: make([]atomic.Int32, g.Cells())}
}

// Grid returns the array dimensions.
func (a *AtomicArray) Grid() geom.Grid { return a.grid }

// At returns the value at (x, y).
func (a *AtomicArray) At(x, y int) int32 { return a.cells[y*a.grid.Grids+x].Load() }

// Add atomically adds d at (x, y).
func (a *AtomicArray) Add(x, y int, d int32) { a.cells[y*a.grid.Grids+x].Add(d) }

// Snapshot copies the current state into a plain cost array (for quality
// measurement after the run).
func (a *AtomicArray) Snapshot() *costarray.CostArray {
	out := costarray.New(a.grid)
	for y := 0; y < a.grid.Channels; y++ {
		for x := 0; x < a.grid.Grids; x++ {
			out.Set(x, y, a.At(x, y))
		}
	}
	return out
}

// liveView adapts the atomic array to the router's CostView.
type liveView struct{ a *AtomicArray }

func (v liveView) Grid() geom.Grid           { return v.a.Grid() }
func (v liveView) Cost(x, y int) int32       { return v.a.At(x, y) }
func (v liveView) AddCost(x, y int, d int32) { v.a.Add(x, y, d) }

// RunLive executes the shared memory router with real goroutines: a
// distributed loop hands out wires (or a static assignment fixes them), a
// WaitGroup barrier separates iterations. It returns the quality result;
// traffic is the traced mode's job.
func RunLive(circ *circuit.Circuit, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(circ); err != nil {
		return Result{}, err
	}
	shared := NewAtomicArray(circ.Grid)
	view := liveView{a: shared}

	nWires := len(circ.Wires)
	paths := make([]route.Path, nWires)
	lastCost := make([]int64, nWires)
	var cells atomic.Int64
	var routed atomic.Int64

	// One routing scratch per worker slot for the whole run: the slot-p
	// goroutines of successive iterations are separated by wg.Wait, so the
	// scratch (and its sorted-pin cache) hands off cleanly between them.
	scratches := make([]*route.Scratch, cfg.Procs)
	for i := range scratches {
		scratches[i] = route.NewScratch(circ.Grid)
	}

	iterations := cfg.Router.Iterations
	if iterations <= 0 {
		iterations = 1
	}
	for iter := 0; iter < iterations; iter++ {
		stopIter := cfg.Obs.Phase(fmt.Sprintf("iteration %d", iter))
		var counter atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < cfg.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				scratch := scratches[p]
				next := func() int {
					if cfg.Order == Static {
						return -1 // static work handled below
					}
					n := counter.Add(1) - 1
					if n >= int64(nWires) {
						return -1
					}
					return int(n)
				}
				var work []int
				if cfg.Order == Static {
					work = cfg.Assignment.WiresOf(p)
				}
				cursor := 0
				for {
					var wi int
					if cfg.Order == Static {
						if cursor >= len(work) {
							return
						}
						wi = work[cursor]
						cursor++
					} else {
						wi = next()
						if wi < 0 {
							return
						}
					}
					w := &circ.Wires[wi]
					if iter > 0 {
						route.RipUp(view, paths[wi])
					}
					ev := scratch.RouteWire(view, w, cfg.Router)
					cost := route.PathCost(view, ev.Path)
					route.Commit(view, ev.Path)
					// Each wire is routed by exactly one goroutine per
					// iteration, so these per-wire slots are not contended.
					paths[wi] = ev.Path
					lastCost[wi] = cost
					cells.Add(int64(ev.CellsExamined))
					routed.Add(1)
				}
			}(p)
		}
		wg.Wait() // the paper's barrier between iterations
		stopIter()
	}

	stopReduce := cfg.Obs.Phase("reduce")
	defer stopReduce()
	var res Result
	res.Final = shared.Snapshot()
	res.CircuitHeight = res.Final.CircuitHeight()
	for _, c := range lastCost {
		res.Occupancy += c
	}
	res.WiresRouted = int(routed.Load())
	res.CellsExamined = cells.Load()
	return res, nil
}

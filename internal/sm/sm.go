// Package sm implements the shared memory version of LocusRoute
// (Section 3 of the paper) in two execution modes:
//
//   - RunTraced: a deterministic, Tango-style multiplexed execution on
//     one OS thread. P logical processes route wires against one shared
//     cost array with per-process virtual clocks; the scheduler always
//     advances the process with the smallest clock, and every shared
//     reference (time, address, processor, read/write) is recorded. The
//     resulting trace feeds the Write-Back-with-Invalidate coherence
//     simulator (internal/cache) to obtain bus traffic, exactly the
//     paper's methodology. Commits become visible to other processes
//     when the routing of the wire completes in virtual time, so
//     processes routing simultaneously do not see each other's
//     in-flight work — the interference that degrades quality as the
//     processor count grows.
//
//   - RunLive: a real parallel execution with goroutines, an atomic
//     shared cost array, a distributed-loop wire counter and a barrier
//     per iteration. As in the paper, accesses to the cost array are
//     not locked (atomic word access stands in for the paper's ordinary
//     loads and stores, keeping the program race-detector clean).
package sm

import (
	"fmt"

	"locusroute/internal/assign"
	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/obs"
	"locusroute/internal/perf"
	"locusroute/internal/route"
	"locusroute/internal/sim"
)

// Order selects how wires are handed to processes.
type Order int

const (
	// Dynamic is the paper's distributed loop: processes repeatedly take
	// the next wire from a shared counter.
	Dynamic Order = iota
	// Static uses a precomputed assignment (for the locality experiments
	// of Table 5).
	Static
)

// String names the order.
func (o Order) String() string {
	if o == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Config configures a shared memory run.
type Config struct {
	// Procs is the number of (logical or real) processes.
	Procs int
	// Router carries iterations and candidate bounds.
	Router route.Params
	// Order selects dynamic (distributed loop) or static assignment.
	Order Order
	// Assignment is required when Order is Static and must cover the
	// circuit with exactly Procs processors.
	Assignment *assign.Assignment
	// Perf is the virtual-time cost model for the traced mode.
	Perf perf.Model
	// Obs, when non-nil, collects wall-clock phase timings of the live
	// runtime (one phase per iteration plus the quality reduction). Nil
	// disables collection; results are identical either way.
	Obs *obs.SM
}

// DefaultConfig is the 16-process dynamic configuration of the paper's
// shared memory baseline.
func DefaultConfig() Config {
	return Config{
		Procs:  16,
		Router: route.DefaultParams(),
		Order:  Dynamic,
		Perf:   perf.Default(),
	}
}

func (c Config) withDefaults() Config {
	if c.Perf == (perf.Model{}) {
		c.Perf = perf.Default()
	}
	return c
}

func (c Config) validate(circ *circuit.Circuit) error {
	if c.Procs <= 0 {
		return fmt.Errorf("sm: process count %d must be positive", c.Procs)
	}
	if c.Order == Static {
		if c.Assignment == nil {
			return fmt.Errorf("sm: static order requires an assignment")
		}
		if c.Assignment.NumProcs != c.Procs {
			return fmt.Errorf("sm: assignment built for %d processes, config has %d",
				c.Assignment.NumProcs, c.Procs)
		}
		if err := c.Assignment.Validate(circ); err != nil {
			return err
		}
	}
	return nil
}

// Result reports a shared memory run.
type Result struct {
	// CircuitHeight and Occupancy are the quality measures (Section 3).
	CircuitHeight int64
	Occupancy     int64
	// Span is the virtual makespan of the traced execution (zero for
	// RunLive, which measures wall-clock outside).
	Span sim.Time
	// Reads and Writes count the shared references of the traced
	// execution.
	Reads, Writes int
	// WiresRouted counts routings performed (wires x iterations).
	WiresRouted int
	// CellsExamined is the total route-evaluation work.
	CellsExamined int64
	// Final is the shared cost array after the last barrier (a snapshot
	// for RunLive, the array itself for RunTraced) — the routed
	// congestion state service layers seed serving replicas from.
	Final *costarray.CostArray
}

package sm

import "locusroute/internal/obs"

// ObsRun renders a finished shared memory run into its observability
// document. backend names the runtime: "sm-live" (phases from cfg.Obs,
// no virtual time) or "sm-traced" (virtual makespan and trace counters).
// Cache traffic documents are attached later by whoever replays the
// trace through the coherence simulator.
func ObsRun(name, backend, circuitName string, cfg Config, res Result) obs.Run {
	r := obs.Run{
		Name:      name,
		Backend:   backend,
		Circuit:   circuitName,
		Procs:     cfg.Procs,
		Quality:   &obs.Quality{CircuitHeight: res.CircuitHeight, Occupancy: res.Occupancy},
		SimTimeNs: int64(res.Span),
		Phases:    cfg.Obs.PhaseDocs(),
	}
	if res.Reads+res.Writes > 0 {
		r.Trace = &obs.TraceDoc{
			Reads:  int64(res.Reads),
			Writes: int64(res.Writes),
			Refs:   int64(res.Reads + res.Writes),
		}
	}
	return r
}

package sm

import (
	"testing"

	"locusroute/internal/assign"
	"locusroute/internal/cache"
	"locusroute/internal/circuit"
	"locusroute/internal/geom"
	"locusroute/internal/route"
)

func smallCircuit(seed int64) *circuit.Circuit {
	return circuit.MustGenerate(circuit.GenParams{
		Name: "small", Channels: 8, Grids: 64, Wires: 60, MeanSpan: 10,
		LongFrac: 0.1, Seed: seed,
	})
}

func TestTracedSingleProcMatchesSequential(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig()
	cfg.Procs = 1
	cfg.Router.Iterations = 2
	res, tr, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := route.Sequential(c, cfg.Router)
	if res.CircuitHeight != seq.CircuitHeight {
		t.Errorf("1-proc traced height %d != sequential %d", res.CircuitHeight, seq.CircuitHeight)
	}
	if res.Occupancy != seq.Occupancy {
		t.Errorf("1-proc traced occupancy %d != sequential %d", res.Occupancy, seq.Occupancy)
	}
	if tr.Len() == 0 {
		t.Errorf("trace must not be empty")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("reads/writes = %d/%d", res.Reads, res.Writes)
	}
}

func TestTracedDeterministic(t *testing.T) {
	c := smallCircuit(2)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	a, ta, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Final.Equal(b.Final) {
		t.Errorf("final cost arrays differ")
	}
	a.Final, b.Final = nil, nil
	if a != b {
		t.Errorf("results differ: %+v vs %+v", a, b)
	}
	if ta.Len() != tb.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", ta.Len(), tb.Len())
	}
	for i := range ta.Refs {
		if ta.Refs[i] != tb.Refs[i] {
			t.Fatalf("trace ref %d differs", i)
		}
	}
}

func TestTracedTraceIsSorted(t *testing.T) {
	c := smallCircuit(3)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 1
	_, tr, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Refs[i].T < tr.Refs[i-1].T {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func TestTracedDynamicRoutesEveryWireEachIteration(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 3
	res, _, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiresRouted != 3*len(c.Wires) {
		t.Errorf("WiresRouted = %d, want %d", res.WiresRouted, 3*len(c.Wires))
	}
}

func TestTracedStaticAssignment(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	asn := assign.AssignThreshold(c, part, 1000)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Order = Static
	cfg.Assignment = asn
	cfg.Router.Iterations = 2
	res, _, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiresRouted != 2*len(c.Wires) {
		t.Errorf("WiresRouted = %d", res.WiresRouted)
	}
}

func TestTracedValidation(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig()
	cfg.Procs = 0
	if _, _, err := RunTraced(c, cfg); err == nil {
		t.Errorf("zero procs must fail")
	}
	cfg = DefaultConfig()
	cfg.Order = Static
	if _, _, err := RunTraced(c, cfg); err == nil {
		t.Errorf("static without assignment must fail")
	}
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	cfg.Assignment = assign.AssignRoundRobin(c, part)
	cfg.Procs = 16 // mismatch
	if _, _, err := RunTraced(c, cfg); err == nil {
		t.Errorf("proc mismatch must fail")
	}
}

func TestTracedQualityDegradesWithProcs(t *testing.T) {
	// Section 5.4 for the shared memory version: quality degrades as
	// processors are added because in-flight work is invisible.
	c := circuit.MustGenerate(circuit.BnrELike(1))
	one := DefaultConfig()
	one.Procs = 1
	one.Router.Iterations = 2
	r1, _, err := RunTraced(c, one)
	if err != nil {
		t.Fatal(err)
	}
	sixteen := DefaultConfig()
	sixteen.Procs = 16
	sixteen.Router.Iterations = 2
	r16, _, err := RunTraced(c, sixteen)
	if err != nil {
		t.Fatal(err)
	}
	if r16.CircuitHeight < r1.CircuitHeight {
		t.Errorf("16-proc height %d better than uniprocessor %d — interference model broken",
			r16.CircuitHeight, r1.CircuitHeight)
	}
	if r16.Span >= r1.Span {
		t.Errorf("16 procs (%v) must have smaller makespan than 1 (%v)", r16.Span, r1.Span)
	}
}

func TestTracedFeedsCacheSimulator(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	_, tr, err := RunTraced(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	for _, ls := range []int{4, 8, 16, 32} {
		traffic, err := cache.Replay(tr, 4, ls)
		if err != nil {
			t.Fatal(err)
		}
		if traffic.Bytes() <= last {
			t.Errorf("line %d: traffic %d did not grow from %d (Table 3 shape)",
				ls, traffic.Bytes(), last)
		}
		last = traffic.Bytes()
	}
}

func TestLiveMatchesTracedWiresRouted(t *testing.T) {
	c := smallCircuit(1)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Router.Iterations = 2
	res, err := RunLive(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiresRouted != 2*len(c.Wires) {
		t.Errorf("WiresRouted = %d, want %d", res.WiresRouted, 2*len(c.Wires))
	}
	if res.CircuitHeight <= 0 || res.Occupancy <= 0 {
		t.Errorf("quality measures must be positive: %+v", res)
	}
}

func TestLiveStatic(t *testing.T) {
	c := smallCircuit(1)
	part, _ := geom.NewPartition(c.Grid, 2, 2)
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Order = Static
	cfg.Assignment = assign.AssignThreshold(c, part, 30)
	cfg.Router.Iterations = 1
	res, err := RunLive(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WiresRouted != len(c.Wires) {
		t.Errorf("WiresRouted = %d", res.WiresRouted)
	}
}

func TestLiveSingleProcMatchesSequentialHeight(t *testing.T) {
	c := smallCircuit(4)
	cfg := DefaultConfig()
	cfg.Procs = 1
	cfg.Router.Iterations = 2
	res, err := RunLive(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := route.Sequential(c, cfg.Router)
	if res.CircuitHeight != seq.CircuitHeight {
		t.Errorf("1-proc live height %d != sequential %d", res.CircuitHeight, seq.CircuitHeight)
	}
}

func TestAtomicArraySnapshot(t *testing.T) {
	a := NewAtomicArray(geom.Grid{Channels: 4, Grids: 8})
	a.Add(3, 2, 5)
	a.Add(3, 2, -2)
	snap := a.Snapshot()
	if snap.At(3, 2) != 3 {
		t.Errorf("snapshot = %d, want 3", snap.At(3, 2))
	}
	if a.At(0, 0) != 0 {
		t.Errorf("untouched cell nonzero")
	}
}

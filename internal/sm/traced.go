package sm

import (
	"container/heap"

	"locusroute/internal/circuit"
	"locusroute/internal/costarray"
	"locusroute/internal/geom"
	"locusroute/internal/route"
	"locusroute/internal/sim"
	"locusroute/internal/trace"
)

// wordBytes is the size of one cost array cell in shared memory.
const wordBytes = 4

// addrOf maps a cell to its shared memory byte address. The array is laid
// out column-major: the cost entries of all channels of one routing grid
// column are contiguous (Channels * 4 bytes per column). This is the
// natural layout for a channel router — choosing a jog column reads one
// column's channel occupancies together — and it is what gives the shared
// memory version the paper's strong traffic growth with cache line size:
// horizontal path runs stride a whole column apart in memory, so their
// writes and rereads never batch into one line, and every line brought in
// carries neighbouring-channel words that are often never used.
func addrOf(grid geom.Grid, x, y int) uint64 {
	return uint64(x*grid.Channels+y) * wordBytes
}

// counterAddr is the shared address of the distributed-loop wire counter,
// placed far above the cost array so it never shares a cache line with
// it.
const counterAddr = 1 << 40

// tracedView routes reads and writes of one logical process through the
// shared array, recording every reference and advancing the process's
// virtual clock per access. Writes performed through the view update the
// shared array immediately (rip-up) — commits use deferred application,
// see proc.commitWire.
type tracedView struct {
	p *proc
}

func (v tracedView) Grid() geom.Grid { return v.p.r.shared.Grid() }

func (v tracedView) Cost(x, y int) int32 {
	p := v.p
	p.clock += p.r.cfg.Perf.CellEval
	p.r.tr.Append(trace.Ref{
		T: p.clock, Proc: p.id,
		Addr: addrOf(p.r.shared.Grid(), x, y), Op: trace.Read,
	})
	return p.r.shared.At(x, y)
}

func (v tracedView) AddCost(x, y int, d int32) {
	p := v.p
	p.clock += p.r.cfg.Perf.CellWrite
	p.r.tr.Append(trace.Ref{
		T: p.clock, Proc: p.id,
		Addr: addrOf(p.r.shared.Grid(), x, y), Op: trace.Write,
	})
	p.r.shared.Add(x, y, d)
}

// pendingCommit is one commit increment that becomes visible to other
// processes at its write time: commits apply cell by cell, as the real
// program's increment loop does, so a process routing concurrently sees
// exactly the prefix of a neighbour's in-flight wire that has been
// written so far.
type pendingCommit struct {
	at   sim.Time
	seq  uint64
	cell geom.Point
}

type commitQueue []*pendingCommit

func (q commitQueue) Len() int { return len(q) }
func (q commitQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q commitQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *commitQueue) Push(x any)   { *q = append(*q, x.(*pendingCommit)) }
func (q *commitQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// tracedRunner is the shared state of one traced execution.
type tracedRunner struct {
	cfg    Config
	circ   *circuit.Circuit
	shared *costarray.CostArray
	tr     *trace.Trace
	pend   commitQueue
	seq    uint64
	// lastCost[w] is the path cost of wire w at its latest routing.
	lastCost []int64
	paths    []route.Path
	cells    int64
	wires    int
}

// proc is one logical process.
type proc struct {
	id    int
	r     *tracedRunner
	clock sim.Time
	// scratch is this process's reusable routing kernel state; the
	// multiplexer runs one process at a time, so it is never shared.
	scratch *route.Scratch
	// work is the wire list for static order; cursor indexes it.
	work   []int
	cursor int
}

// applyPending makes visible every commit write at or before t.
func (r *tracedRunner) applyPending(t sim.Time) {
	for r.pend.Len() > 0 && r.pend[0].at <= t {
		pc := heap.Pop(&r.pend).(*pendingCommit)
		r.shared.Add(pc.cell.X, pc.cell.Y, 1)
	}
}

// flushPending applies every outstanding commit.
func (r *tracedRunner) flushPending() {
	r.applyPending(sim.Time(1<<62 - 1))
}

// routeOneWire performs one complete wire routing for process p at its
// current clock: rip-up of the previous path (immediately visible, as in
// the real program where decrements happen in place), evaluation against
// the shared array (which excludes other processes' in-flight commits),
// and a commit that becomes visible when the routing completes.
func (p *proc) routeOneWire(wi int, iter int) {
	r := p.r
	w := &r.circ.Wires[wi]
	view := tracedView{p: p}
	p.clock += r.cfg.Perf.WireOverhead

	if iter > 0 {
		route.RipUp(view, r.paths[wi])
	}
	ev := p.scratch.RouteWire(view, w, r.cfg.Router)
	// Occupancy contribution: the deduplicated path cost against the
	// shared array at routing time (a metric computation, not program
	// memory traffic, so it is not traced).
	cost := route.PathCost(route.ArrayView{A: r.shared}, ev.Path)
	// Trace the commit writes at their natural times; each write becomes
	// visible to *other* processes at that time (per-cell pending
	// application), not retroactively before it happened.
	for _, c := range ev.Path.Cells {
		p.clock += r.cfg.Perf.CellWrite
		r.tr.Append(trace.Ref{
			T: p.clock, Proc: p.id,
			Addr: addrOf(r.shared.Grid(), c.X, c.Y), Op: trace.Write,
		})
		r.seq++
		heap.Push(&r.pend, &pendingCommit{at: p.clock, seq: r.seq, cell: c})
	}

	r.paths[wi] = ev.Path
	r.lastCost[wi] = cost
	r.cells += int64(ev.CellsExamined)
	r.wires++
}

// fetchWire returns the next wire for p in iteration iter, or -1 when the
// iteration's work is exhausted. In dynamic order it models the
// distributed loop: a read-modify-write of the shared counter.
func (p *proc) fetchWire(counter *int, limit int) int {
	r := p.r
	if r.cfg.Order == Static {
		if p.cursor >= len(p.work) {
			return -1
		}
		wi := p.work[p.cursor]
		p.cursor++
		return wi
	}
	// Distributed loop: the counter is a shared word.
	p.clock += r.cfg.Perf.CellEval
	r.tr.Append(trace.Ref{T: p.clock, Proc: p.id, Addr: counterAddr, Op: trace.Read})
	if *counter >= limit {
		return -1
	}
	wi := *counter
	*counter++
	p.clock += r.cfg.Perf.CellWrite
	r.tr.Append(trace.Ref{T: p.clock, Proc: p.id, Addr: counterAddr, Op: trace.Write})
	return wi
}

// RunTraced executes the multiplexed shared memory router and returns the
// result together with the time-sorted shared reference trace.
func RunTraced(circ *circuit.Circuit, cfg Config) (Result, *trace.Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(circ); err != nil {
		return Result{}, nil, err
	}
	r := &tracedRunner{
		cfg:      cfg,
		circ:     circ,
		shared:   costarray.New(circ.Grid),
		tr:       &trace.Trace{},
		lastCost: make([]int64, len(circ.Wires)),
		paths:    make([]route.Path, len(circ.Wires)),
	}
	procs := make([]*proc, cfg.Procs)
	for i := range procs {
		procs[i] = &proc{id: i, r: r, scratch: route.NewScratch(circ.Grid)}
		if cfg.Order == Static {
			procs[i].work = cfg.Assignment.WiresOf(i)
		}
	}

	iterations := cfg.Router.Iterations
	if iterations <= 0 {
		iterations = 1
	}
	for iter := 0; iter < iterations; iter++ {
		counter := 0
		for i := range procs {
			procs[i].cursor = 0
		}
		active := make([]bool, cfg.Procs)
		for i := range active {
			active[i] = true
		}
		remaining := cfg.Procs
		for remaining > 0 {
			// Pick the active process with the smallest clock (ties by
			// id): the fine-grain multiplexing of the tracer.
			best := -1
			for i, a := range active {
				if a && (best < 0 || procs[i].clock < procs[best].clock) {
					best = i
				}
			}
			p := procs[best]
			r.applyPending(p.clock)
			wi := p.fetchWire(&counter, len(circ.Wires))
			if wi < 0 {
				active[best] = false
				remaining--
				continue
			}
			p.routeOneWire(wi, iter)
		}
		// Barrier: everyone waits for the slowest process.
		var maxClock sim.Time
		for _, p := range procs {
			if p.clock > maxClock {
				maxClock = p.clock
			}
		}
		for _, p := range procs {
			p.clock = maxClock
		}
		r.flushPending()
	}

	var res Result
	res.Final = r.shared
	res.CircuitHeight = r.shared.CircuitHeight()
	for _, c := range r.lastCost {
		res.Occupancy += c
	}
	for _, p := range procs {
		if p.clock > res.Span {
			res.Span = p.clock
		}
	}
	res.Reads, res.Writes = r.tr.Counts()
	res.WiresRouted = r.wires
	res.CellsExamined = r.cells
	r.tr.Sort()
	return res, r.tr, nil
}

package geom

import "fmt"

// Partition divides a Grid into PX x PY rectangular owned regions, one per
// processor, mirroring Figure 2 of the paper. Region (i, j) is owned by the
// processor at mesh coordinate (i, j); regions differ in size by at most one
// row/column when the grid does not divide evenly.
type Partition struct {
	Grid   Grid
	PX, PY int // processors along X (grids) and Y (channels)
}

// NewPartition validates and constructs a partition. PX*PY is the total
// processor count.
func NewPartition(g Grid, px, py int) (Partition, error) {
	if !g.Valid() {
		return Partition{}, fmt.Errorf("geom: invalid grid %+v", g)
	}
	if px <= 0 || py <= 0 {
		return Partition{}, fmt.Errorf("geom: invalid partition %dx%d", px, py)
	}
	if px > g.Grids || py > g.Channels {
		return Partition{}, fmt.Errorf("geom: partition %dx%d exceeds grid %dx%d",
			px, py, g.Grids, g.Channels)
	}
	return Partition{Grid: g, PX: px, PY: py}, nil
}

// Procs returns the number of processors (= regions).
func (p Partition) Procs() int { return p.PX * p.PY }

// Region returns the owned region of processor proc (row-major over mesh
// coordinates: proc = my*PX + mx).
func (p Partition) Region(proc int) Rect {
	mx, my := p.Coord(proc)
	return Rect{
		X0: cut(p.Grid.Grids, p.PX, mx),
		X1: cut(p.Grid.Grids, p.PX, mx+1),
		Y0: cut(p.Grid.Channels, p.PY, my),
		Y1: cut(p.Grid.Channels, p.PY, my+1),
	}
}

// Coord returns the mesh coordinate (mx, my) of processor proc.
func (p Partition) Coord(proc int) (mx, my int) {
	return proc % p.PX, proc / p.PX
}

// Proc returns the processor index at mesh coordinate (mx, my).
func (p Partition) Proc(mx, my int) int { return my*p.PX + mx }

// Owner returns the processor whose owned region contains pt. The point is
// clamped to the grid first, so every point has an owner.
func (p Partition) Owner(pt Point) int {
	pt = p.Grid.Clamp(pt)
	mx := locate(p.Grid.Grids, p.PX, pt.X)
	my := locate(p.Grid.Channels, p.PY, pt.Y)
	return p.Proc(mx, my)
}

// MeshDistance returns the Manhattan distance between two processors on the
// mesh — the hop count of a deterministically routed packet.
func (p Partition) MeshDistance(a, b int) int {
	ax, ay := p.Coord(a)
	bx, by := p.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Neighbors returns the processors adjacent to proc on the mesh (N, S, E,
// W), in deterministic order, omitting off-mesh directions.
func (p Partition) Neighbors(proc int) []int {
	mx, my := p.Coord(proc)
	out := make([]int, 0, 4)
	if my > 0 {
		out = append(out, p.Proc(mx, my-1)) // north
	}
	if my < p.PY-1 {
		out = append(out, p.Proc(mx, my+1)) // south
	}
	if mx < p.PX-1 {
		out = append(out, p.Proc(mx+1, my)) // east
	}
	if mx > 0 {
		out = append(out, p.Proc(mx-1, my)) // west
	}
	return out
}

// RegionsTouching returns, in ascending processor order, every processor
// whose owned region overlaps r.
func (p Partition) RegionsTouching(r Rect) []int {
	r = r.Intersect(p.Grid.Bounds())
	if r.Empty() {
		return nil
	}
	mx0 := locate(p.Grid.Grids, p.PX, r.X0)
	mx1 := locate(p.Grid.Grids, p.PX, r.X1-1)
	my0 := locate(p.Grid.Channels, p.PY, r.Y0)
	my1 := locate(p.Grid.Channels, p.PY, r.Y1-1)
	out := make([]int, 0, (mx1-mx0+1)*(my1-my0+1))
	for my := my0; my <= my1; my++ {
		for mx := mx0; mx <= mx1; mx++ {
			out = append(out, p.Proc(mx, my))
		}
	}
	return out
}

// SquarestFactors returns the pair (px, py) with px*py = n that is as close
// to square as possible, preferring a wider-than-tall layout (px >= py),
// which matches the paper's 4x4 arrangement for 16 processors and its wide
// cost arrays.
func SquarestFactors(n int) (px, py int) {
	if n <= 0 {
		return 1, 1
	}
	px, py = n, 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			py, px = d, n/d
		}
	}
	return px, py
}

// cut returns the boundary index of the i-th of n nearly equal slices of
// length total: slice i spans [cut(i), cut(i+1)).
func cut(total, n, i int) int { return i * total / n }

// locate returns which of n nearly equal slices of length total contains
// index x. Inverse of cut.
func locate(total, n, x int) int {
	i := (x*n + n - 1) / total
	for i > 0 && cut(total, n, i) > x {
		i--
	}
	for i < n-1 && cut(total, n, i+1) <= x {
		i++
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointManhattan(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(3, 4), Pt(0, 0), 7},
		{Pt(-2, 5), Pt(2, -5), 14},
	}
	for _, c := range cases {
		if got := c.p.Manhattan(c.q); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestRConstructsNormalized(t *testing.T) {
	r := R(5, 7, 2, 3)
	want := Rect{X0: 2, Y0: 3, X1: 6, Y1: 8}
	if r != want {
		t.Fatalf("R(5,7,2,3) = %v, want %v", r, want)
	}
	if !Pt(5, 7).In(r) || !Pt(2, 3).In(r) {
		t.Errorf("corners must be inside rect built by R")
	}
}

func TestRectEmptyAndArea(t *testing.T) {
	var zero Rect
	if !zero.Empty() {
		t.Errorf("zero Rect must be empty")
	}
	if zero.Area() != 0 || zero.Dx() != 0 || zero.Dy() != 0 {
		t.Errorf("empty rect must have zero measures, got area=%d", zero.Area())
	}
	r := R(1, 1, 3, 4)
	if r.Area() != 12 {
		t.Errorf("Area = %d, want 12", r.Area())
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 9, 9)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	want := R(5, 5, 9, 9)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Errorf("Overlaps must be symmetric and true here")
	}
	c := R(20, 20, 25, 25)
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint rects must intersect to empty")
	}
	if a.Overlaps(c) {
		t.Errorf("disjoint rects must not overlap")
	}
}

func TestRectUnionIdentity(t *testing.T) {
	var zero Rect
	r := R(2, 3, 4, 5)
	if got := zero.Union(r); got != r {
		t.Errorf("empty.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(zero); got != r {
		t.Errorf("r.Union(empty) = %v, want %v", got, r)
	}
}

func TestRectAddPoint(t *testing.T) {
	var r Rect
	r = r.AddPoint(Pt(3, 4))
	if r.Area() != 1 || !Pt(3, 4).In(r) {
		t.Fatalf("AddPoint to empty should give unit rect at point, got %v", r)
	}
	r = r.AddPoint(Pt(1, 1))
	if !Pt(1, 1).In(r) || !Pt(3, 4).In(r) || !Pt(2, 2).In(r) {
		t.Errorf("AddPoint must expand to cover both points, got %v", r)
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := R(0, 0, 10, 10)
	if !outer.ContainsRect(R(2, 2, 5, 5)) {
		t.Errorf("inner rect should be contained")
	}
	if outer.ContainsRect(R(5, 5, 12, 12)) {
		t.Errorf("overflowing rect should not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Errorf("empty rect is contained in everything")
	}
}

func TestGridBasics(t *testing.T) {
	g := Grid{Channels: 10, Grids: 341}
	if !g.Valid() {
		t.Fatalf("grid should be valid")
	}
	if g.Cells() != 3410 {
		t.Errorf("Cells = %d, want 3410", g.Cells())
	}
	b := g.Bounds()
	if b.Dx() != 341 || b.Dy() != 10 {
		t.Errorf("Bounds = %v", b)
	}
	if got := g.Clamp(Pt(-5, 100)); got != Pt(0, 9) {
		t.Errorf("Clamp = %v, want (0,9)", got)
	}
	if got := g.Clamp(Pt(400, -1)); got != Pt(340, 0) {
		t.Errorf("Clamp = %v, want (340,0)", got)
	}
}

// Property: Intersect result is contained in both operands and Union
// contains both operands.
func TestRectIntersectUnionProperties(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 uint8) bool {
		a := R(int(x0), int(y0), int(x0)+int(w0%40), int(y0)+int(h0%40))
		b := R(int(x1), int(y1), int(x1)+int(w1%40), int(y1)+int(h1%40))
		i := a.Intersect(b)
		u := a.Union(b)
		return a.ContainsRect(i) && b.ContainsRect(i) &&
			u.ContainsRect(a) && u.ContainsRect(b) &&
			i == b.Intersect(a) && u == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a point is in Intersect(a,b) iff it is in both a and b.
func TestRectIntersectPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := R(rng.Intn(20), rng.Intn(20), rng.Intn(20), rng.Intn(20))
		b := R(rng.Intn(20), rng.Intn(20), rng.Intn(20), rng.Intn(20))
		i := a.Intersect(b)
		for x := 0; x < 22; x++ {
			for y := 0; y < 22; y++ {
				p := Pt(x, y)
				if p.In(i) != (p.In(a) && p.In(b)) {
					t.Fatalf("pointwise intersect mismatch at %v: a=%v b=%v i=%v", p, a, b, i)
				}
			}
		}
	}
}

func TestSquarestFactors(t *testing.T) {
	cases := []struct{ n, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {9, 3, 3},
		{12, 4, 3}, {16, 4, 4}, {7, 7, 1},
	}
	for _, c := range cases {
		px, py := SquarestFactors(c.n)
		if px != c.px || py != c.py {
			t.Errorf("SquarestFactors(%d) = (%d,%d), want (%d,%d)", c.n, px, py, c.px, c.py)
		}
		if px*py != c.n {
			t.Errorf("SquarestFactors(%d) does not multiply back", c.n)
		}
	}
}

// Package geom provides the small geometric vocabulary shared by the
// router and the simulators: grid points, half-open rectangles, and a
// regular partition of a grid into rectangular regions.
//
// Coordinates follow the cost array convention of the LocusRoute paper:
// Y ("channel") is the vertical dimension and indexes routing channels,
// X ("grid") is the horizontal dimension and indexes routing grid columns.
package geom

import "fmt"

// Point is a location on the routing grid. X is the routing grid column,
// Y is the channel row.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// String returns the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Rect is a half-open rectangle [X0,X1) x [Y0,Y1) on the routing grid.
// The zero Rect is empty.
type Rect struct {
	X0, Y0 int // inclusive
	X1, Y1 int // exclusive
}

// R constructs a rectangle from two corner points in any order. The
// resulting rectangle includes both corners.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{X0: x0, Y0: y0, X1: x1 + 1, Y1: y1 + 1}
}

// String returns the rectangle as "[x0,x1)x[y0,y1)".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Dx returns the width of r (0 if empty).
func (r Rect) Dx() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0
}

// Dy returns the height of r (0 if empty).
func (r Rect) Dy() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the number of grid points in r.
func (r Rect) Area() int { return r.Dx() * r.Dy() }

// Intersect returns the largest rectangle contained in both r and s.
// If the rectangles do not overlap the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0), Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1), Y1: max(r.Y1, s.Y1),
	}
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// AddPoint returns the smallest rectangle containing r and p.
func (r Rect) AddPoint(p Point) Rect {
	return r.Union(Rect{X0: p.X, Y0: p.Y, X1: p.X + 1, Y1: p.Y + 1})
}

// Grid describes the dimensions of a cost array: Channels rows by
// Grids columns.
type Grid struct {
	Channels int // number of routing channels (rows, Y)
	Grids    int // number of routing grid columns (X)
}

// Bounds returns the rectangle covering the whole grid.
func (g Grid) Bounds() Rect { return Rect{X0: 0, Y0: 0, X1: g.Grids, Y1: g.Channels} }

// Cells returns the total number of grid points.
func (g Grid) Cells() int { return g.Channels * g.Grids }

// Valid reports whether the grid has positive dimensions.
func (g Grid) Valid() bool { return g.Channels > 0 && g.Grids > 0 }

// Clamp returns p moved to the nearest point inside the grid.
func (g Grid) Clamp(p Point) Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= g.Grids {
		p.X = g.Grids - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= g.Channels {
		p.Y = g.Channels - 1
	}
	return p
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

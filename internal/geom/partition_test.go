package geom

import (
	"testing"
	"testing/quick"
)

func TestNewPartitionValidation(t *testing.T) {
	g := Grid{Channels: 10, Grids: 341}
	if _, err := NewPartition(g, 0, 1); err == nil {
		t.Errorf("expected error for zero px")
	}
	if _, err := NewPartition(g, 4, 40); err == nil {
		t.Errorf("expected error for py > channels")
	}
	if _, err := NewPartition(Grid{}, 1, 1); err == nil {
		t.Errorf("expected error for invalid grid")
	}
	if _, err := NewPartition(g, 4, 4); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPartitionRegionsTile(t *testing.T) {
	g := Grid{Channels: 10, Grids: 341}
	p, err := NewPartition(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell belongs to exactly one region, and regions match Owner.
	seen := make(map[Point]int)
	total := 0
	for proc := 0; proc < p.Procs(); proc++ {
		r := p.Region(proc)
		if r.Empty() {
			t.Fatalf("region %d is empty", proc)
		}
		total += r.Area()
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				pt := Pt(x, y)
				if prev, dup := seen[pt]; dup {
					t.Fatalf("cell %v in regions %d and %d", pt, prev, proc)
				}
				seen[pt] = proc
				if own := p.Owner(pt); own != proc {
					t.Fatalf("Owner(%v) = %d, want %d", pt, own, proc)
				}
			}
		}
	}
	if total != g.Cells() {
		t.Fatalf("regions cover %d cells, want %d", total, g.Cells())
	}
}

func TestPartitionRegionSizesBalanced(t *testing.T) {
	g := Grid{Channels: 12, Grids: 386}
	p, err := NewPartition(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	minA, maxA := g.Cells(), 0
	for proc := 0; proc < p.Procs(); proc++ {
		a := p.Region(proc).Area()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	// Rows and columns each differ by at most 1, so areas are close.
	if maxA-minA > (g.Grids/4+1)+(g.Channels/4+1)+1 {
		t.Errorf("region areas unbalanced: min=%d max=%d", minA, maxA)
	}
}

func TestPartitionCoordRoundTrip(t *testing.T) {
	g := Grid{Channels: 16, Grids: 64}
	p, _ := NewPartition(g, 4, 4)
	for proc := 0; proc < p.Procs(); proc++ {
		mx, my := p.Coord(proc)
		if got := p.Proc(mx, my); got != proc {
			t.Errorf("Proc(Coord(%d)) = %d", proc, got)
		}
	}
}

func TestPartitionMeshDistance(t *testing.T) {
	g := Grid{Channels: 16, Grids: 64}
	p, _ := NewPartition(g, 4, 4)
	if d := p.MeshDistance(0, 15); d != 6 {
		t.Errorf("distance corner-to-corner = %d, want 6", d)
	}
	if d := p.MeshDistance(5, 5); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if p.MeshDistance(2, 7) != p.MeshDistance(7, 2) {
		t.Errorf("mesh distance must be symmetric")
	}
}

func TestPartitionNeighbors(t *testing.T) {
	g := Grid{Channels: 16, Grids: 64}
	p, _ := NewPartition(g, 4, 4)
	// Corner has 2 neighbors, edge 3, interior 4.
	if n := p.Neighbors(0); len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	if n := p.Neighbors(1); len(n) != 3 {
		t.Errorf("edge neighbors = %v", n)
	}
	if n := p.Neighbors(5); len(n) != 4 {
		t.Errorf("interior neighbors = %v", n)
	}
	for _, nb := range p.Neighbors(5) {
		if p.MeshDistance(5, nb) != 1 {
			t.Errorf("neighbor %d not at distance 1", nb)
		}
	}
}

func TestRegionsTouching(t *testing.T) {
	g := Grid{Channels: 16, Grids: 64}
	p, _ := NewPartition(g, 4, 4)
	// A rect inside one region.
	r0 := p.Region(0)
	got := p.RegionsTouching(Rect{X0: r0.X0, Y0: r0.Y0, X1: r0.X0 + 1, Y1: r0.Y0 + 1})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("RegionsTouching single = %v", got)
	}
	// The whole grid touches everything.
	got = p.RegionsTouching(g.Bounds())
	if len(got) != 16 {
		t.Errorf("RegionsTouching all = %v", got)
	}
	for i, proc := range got {
		if proc != i {
			t.Errorf("RegionsTouching must be ascending, got %v", got)
		}
	}
	// Out-of-bounds rect yields nil.
	if got := p.RegionsTouching(R(1000, 1000, 1001, 1001)); got != nil {
		t.Errorf("off-grid rect should touch nothing, got %v", got)
	}
}

func TestRegionsTouchingMatchesOwnerScan(t *testing.T) {
	g := Grid{Channels: 10, Grids: 37} // awkward sizes on purpose
	p, _ := NewPartition(g, 3, 3)
	f := func(x0, y0, w, h uint8) bool {
		r := R(int(x0)%40, int(y0)%12, int(x0)%40+int(w)%10, int(y0)%12+int(h)%5)
		want := map[int]bool{}
		cl := r.Intersect(g.Bounds())
		for y := cl.Y0; y < cl.Y1; y++ {
			for x := cl.X0; x < cl.X1; x++ {
				want[p.Owner(Pt(x, y))] = true
			}
		}
		got := p.RegionsTouching(r)
		if len(got) != len(want) {
			return false
		}
		for _, proc := range got {
			if !want[proc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLocateCutInverse(t *testing.T) {
	for _, total := range []int{7, 10, 341, 386} {
		for _, n := range []int{1, 2, 3, 4, 5} {
			if n > total {
				continue
			}
			for x := 0; x < total; x++ {
				i := locate(total, n, x)
				if x < cut(total, n, i) || x >= cut(total, n, i+1) {
					t.Fatalf("locate(%d,%d,%d)=%d but slice is [%d,%d)",
						total, n, x, i, cut(total, n, i), cut(total, n, i+1))
				}
			}
		}
	}
}

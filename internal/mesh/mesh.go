// Package mesh simulates the interconnection network of the paper's CBS
// substrate: a k-ary 2-dimensional machine with deterministic wormhole
// routing, unidirectional channels (each processor has outgoing links to
// two of its four neighbours: +X and +Y, with wraparound), one-byte-wide
// channels, and network contention.
//
// With no contention, the total time for a packet of L bytes to travel D
// hops is
//
//	2*ProcessTime + HopTime*(D + L)
//
// exactly the paper's Section 2.1 formula. ProcessTime is charged to the
// sending processor when the message is copied onto the network and to the
// receiving processor when it is copied off (callers charge the receive
// side via ChargeReceive when they dequeue). Contention is modelled per
// unidirectional link: a wormhole packet holds each link on its path until
// its tail has passed, and a head that arrives at a busy link waits.
package mesh

import (
	"fmt"

	"locusroute/internal/obs"
	"locusroute/internal/sim"
	"locusroute/internal/tracev"
)

// Params holds the network timing constants.
type Params struct {
	// HopTime is the time for one byte to travel one hop (paper: 100 ns,
	// modelling the Ametek Series 2010).
	HopTime sim.Time
	// ProcessTime is the time for an entire message to be copied between
	// a processor node and the network (paper: 2000 ns).
	ProcessTime sim.Time
}

// DefaultParams returns the Ametek Series 2010 constants used throughout
// the paper.
func DefaultParams() Params {
	return Params{HopTime: 100 * sim.Nanosecond, ProcessTime: 2000 * sim.Nanosecond}
}

// Packet is a message in flight or delivered.
type Packet struct {
	From, To int
	Payload  any
	Size     int // bytes on the wire
	SentAt   sim.Time
	ArriveAt sim.Time
	// Flow is the trace flow id joining this packet's injection to its
	// dequeue; 0 when tracing is off.
	Flow uint64
}

// Stats accumulates network-level accounting for a run. Packets and
// Bytes count only traffic that actually crosses links: a self-send
// (from == to) traverses zero links, so it is tallied separately in
// SelfPackets/SelfBytes and never inflates interconnect traffic.
type Stats struct {
	Packets         int64
	Bytes           int64
	HopBytes        int64    // bytes x hops: total channel occupancy
	SelfPackets     int64    // local deliveries (from == to), zero links crossed
	SelfBytes       int64    // bytes of those local deliveries
	ContentionDelay sim.Time // total head blocking time across packets
	TotalLatency    sim.Time // sum of (arrive - sent) over link-crossing packets
}

// MBytes returns total traffic in megabytes (10^6 bytes, as the paper's
// tables report).
func (s Stats) MBytes() float64 { return float64(s.Bytes) / 1e6 }

// Interconnect is the transport surface node runtimes program against;
// both the 2-D Network and the general k-ary n-dimensional Cube satisfy
// it, so topology is a configuration choice.
type Interconnect interface {
	// Send transmits a packet of size bytes from the calling process's
	// node to another node.
	Send(p *sim.Process, from, to int, payload any, size int)
	// ChargeReceive charges the receive-side copy for one dequeued
	// packet.
	ChargeReceive(p *sim.Process)
	// Inbox returns node id's receive queue of *Packet items.
	Inbox(id int) *sim.Chan
	// Stats returns the accumulated network statistics.
	Stats() Stats
	// Nodes returns the node count.
	Nodes() int
	// Distance returns the deterministic-route hop count between nodes.
	Distance(a, b int) int
	// SetRecorder attaches an observability recorder that receives
	// packet latencies, per-link contention delays, and receive-queue
	// depths at dequeue. A nil recorder detaches (the default).
	SetRecorder(rec *obs.NetRecorder)
	// SetTracer attaches an event tracer: every packet (self-sends
	// included) gets a flow id, a flow-begin at injection on the
	// sender's track, and a delivery instant on the receiver's track
	// when the tail arrives. A nil tracer detaches (the default).
	SetTracer(tr *tracev.Tracer)
}

var (
	_ Interconnect = (*Network)(nil)
	_ Interconnect = (*Cube)(nil)
)

// Network is the simulated interconnect for PX x PY nodes.
type Network struct {
	kernel *sim.Kernel
	px, py int
	params Params
	// linkFree[node][dim] is the time the outgoing link of node in
	// dimension dim (0 = +X, 1 = +Y) becomes free.
	linkFree [][2]sim.Time
	inbox    []*sim.Chan
	stats    Stats
	rec      *obs.NetRecorder
	tracer   *tracev.Tracer
}

// New builds a network of px x py nodes on kernel k.
func New(k *sim.Kernel, px, py int, params Params) (*Network, error) {
	if px <= 0 || py <= 0 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", px, py)
	}
	n := &Network{
		kernel:   k,
		px:       px,
		py:       py,
		params:   params,
		linkFree: make([][2]sim.Time, px*py),
		inbox:    make([]*sim.Chan, px*py),
	}
	for i := range n.inbox {
		n.inbox[i] = sim.NewChan(k)
	}
	return n, nil
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.px * n.py }

// Stats returns the accumulated network statistics.
func (n *Network) Stats() Stats { return n.stats }

// SetRecorder attaches (or with nil detaches) an observability recorder.
// Queue-depth observation is hooked into every inbox's dequeue path.
func (n *Network) SetRecorder(rec *obs.NetRecorder) {
	n.rec = rec
	hookInboxes(n.inbox, rec)
}

// SetTracer attaches (or with nil detaches) an event tracer.
func (n *Network) SetTracer(tr *tracev.Tracer) { n.tracer = tr }

// hookInboxes points every inbox's OnDequeue at the recorder's
// queue-depth histogram (or unhooks on a nil recorder).
func hookInboxes(inboxes []*sim.Chan, rec *obs.NetRecorder) {
	for _, c := range inboxes {
		if rec == nil {
			c.OnDequeue = nil
			continue
		}
		c.OnDequeue = rec.ObserveQueueDepth
	}
}

// Inbox returns the receive queue of node id. Nodes block on it with
// Recv; every queued item is a *Packet.
func (n *Network) Inbox(id int) *sim.Chan { return n.inbox[id] }

// Distance returns the deterministic-route hop count from a to b on the
// unidirectional torus: X hops (wrapping in +X) plus Y hops (wrapping in
// +Y).
func (n *Network) Distance(a, b int) int {
	ax, ay := a%n.px, a/n.px
	bx, by := b%n.px, b/n.px
	return (bx-ax+n.px)%n.px + (by-ay+n.py)%n.py
}

// Send transmits a packet of size bytes from the process p (which must be
// running on node from) to node to. The sender is charged ProcessTime (the
// copy onto the network); the packet then worms through the +X links and
// +Y links of the route, contending for each, and is delivered into the
// destination inbox when its tail arrives. Self-sends traverse no links
// but still pay both ProcessTime charges and the L-byte serialisation;
// they count toward Stats.SelfPackets/SelfBytes, never interconnect
// traffic.
func (n *Network) Send(p *sim.Process, from, to int, payload any, size int) {
	if size <= 0 {
		size = 1
	}
	pkt := &Packet{From: from, To: to, Payload: payload, Size: size, SentAt: p.Now()}
	if tr := n.tracer; tr != nil {
		pkt.Flow = tr.NewFlow()
		tr.FlowBegin(int32(from), int64(pkt.SentAt), pkt.Flow, int64(size))
	}

	// Sender busy copying the message onto the network.
	p.Wait(n.params.ProcessTime)

	// Head traverses the deterministic route, waiting at busy links.
	cursor := p.Now()
	L := sim.Time(size)
	fx, fy := from%n.px, from/n.px
	tx, ty := to%n.px, to/n.px
	hops := 0
	step := func(node int, dim int) int {
		free := n.linkFree[node][dim]
		start := cursor
		if free > start {
			n.stats.ContentionDelay += free - start
			start = free
		}
		n.rec.ObserveLinkDelay(start - cursor)
		// Link is held until the tail (L bytes) has passed.
		n.linkFree[node][dim] = start + n.params.HopTime*(L+1)
		cursor = start + n.params.HopTime
		hops++
		if dim == 0 {
			return node - node%n.px + (node%n.px+1)%n.px // +X, same row
		}
		return ((node/n.px+1)%n.py)*n.px + node%n.px // +Y, same column
	}
	node := from
	for x := fx; x != tx; x = (x + 1) % n.px {
		node = step(node, 0)
	}
	for y := fy; y != ty; y = (y + 1) % n.py {
		node = step(node, 1)
	}

	// Tail streams in behind the head.
	arrive := cursor + n.params.HopTime*L
	pkt.ArriveAt = arrive

	if from == to {
		n.stats.SelfPackets++
		n.stats.SelfBytes += int64(size)
	} else {
		n.stats.Packets++
		n.stats.Bytes += int64(size)
		n.stats.HopBytes += int64(size) * int64(hops)
		n.stats.TotalLatency += arrive - pkt.SentAt
		n.rec.ObserveLatency(arrive - pkt.SentAt)
	}

	inbox := n.inbox[to]
	if tr := n.tracer; tr != nil {
		n.kernel.At(arrive, func() {
			tr.Instant(int32(to), int64(arrive), tracev.KindDeliver, int64(size))
			inbox.Send(pkt)
		})
		return
	}
	n.kernel.At(arrive, func() { inbox.Send(pkt) })
}

// ChargeReceive charges the receiving processor the ProcessTime copy cost
// for one dequeued packet. Node loops call it after taking a packet off
// their inbox, completing the 2*ProcessTime of the latency formula.
func (n *Network) ChargeReceive(p *sim.Process) {
	p.Wait(n.params.ProcessTime)
}

package mesh

import (
	"fmt"

	"locusroute/internal/obs"
	"locusroute/internal/sim"
	"locusroute/internal/tracev"
)

// CBS simulated a general k-ary n-dimensional machine; the paper's
// experiments configure it as a two-dimensional mesh (Network). Cube is
// the general form: nodes are points in a mixed-radix n-dimensional
// torus with one unidirectional (+1 with wraparound) channel per
// dimension per node, deterministic dimension-order wormhole routing and
// the same latency and contention model as Network. It exists for
// topology experiments — e.g. 16 processors as a 4-ary 2-cube versus a
// 2-ary 4-cube (binary hypercube).
type Cube struct {
	kernel *sim.Kernel
	dims   []int
	params Params
	// linkFree[node][dim] is when node's +1 link in dim becomes free.
	linkFree [][]sim.Time
	inbox    []*sim.Chan
	stats    Stats
	rec      *obs.NetRecorder
	tracer   *tracev.Tracer
}

// NewCube builds a network whose shape is the given dimension list
// (e.g. [4, 4] is the paper's mesh, [2, 2, 2, 2] a 16-node hypercube).
func NewCube(k *sim.Kernel, dims []int, params Params) (*Cube, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mesh: cube needs at least one dimension")
	}
	nodes := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mesh: invalid dimension %d", d)
		}
		nodes *= d
	}
	c := &Cube{
		kernel:   k,
		dims:     append([]int(nil), dims...),
		params:   params,
		linkFree: make([][]sim.Time, nodes),
		inbox:    make([]*sim.Chan, nodes),
	}
	for i := range c.inbox {
		c.inbox[i] = sim.NewChan(k)
		c.linkFree[i] = make([]sim.Time, len(dims))
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Cube) Nodes() int { return len(c.inbox) }

// Dims returns the cube's shape.
func (c *Cube) Dims() []int { return append([]int(nil), c.dims...) }

// Stats returns the accumulated statistics.
func (c *Cube) Stats() Stats { return c.stats }

// SetRecorder attaches (or with nil detaches) an observability recorder.
func (c *Cube) SetRecorder(rec *obs.NetRecorder) {
	c.rec = rec
	hookInboxes(c.inbox, rec)
}

// SetTracer attaches (or with nil detaches) an event tracer.
func (c *Cube) SetTracer(tr *tracev.Tracer) { c.tracer = tr }

// Inbox returns the receive queue of node id.
func (c *Cube) Inbox(id int) *sim.Chan { return c.inbox[id] }

// coord returns node id's position along dimension dim (mixed radix,
// dimension 0 varying fastest).
func (c *Cube) coord(id, dim int) int {
	for d := 0; d < dim; d++ {
		id /= c.dims[d]
	}
	return id % c.dims[dim]
}

// step returns the node one hop in +dim from id (with wraparound).
func (c *Cube) step(id, dim int) int {
	stride := 1
	for d := 0; d < dim; d++ {
		stride *= c.dims[d]
	}
	k := c.dims[dim]
	pos := c.coord(id, dim)
	next := (pos + 1) % k
	return id + (next-pos)*stride
}

// Distance returns the deterministic-route hop count from a to b:
// the sum over dimensions of the forward wrap distances.
func (c *Cube) Distance(a, b int) int {
	hops := 0
	for dim := range c.dims {
		k := c.dims[dim]
		hops += (c.coord(b, dim) - c.coord(a, dim) + k) % k
	}
	return hops
}

// Send transmits a packet exactly as Network.Send does, but routing in
// dimension order across all n dimensions.
func (c *Cube) Send(p *sim.Process, from, to int, payload any, size int) {
	if size <= 0 {
		size = 1
	}
	pkt := &Packet{From: from, To: to, Payload: payload, Size: size, SentAt: p.Now()}
	if tr := c.tracer; tr != nil {
		pkt.Flow = tr.NewFlow()
		tr.FlowBegin(int32(from), int64(pkt.SentAt), pkt.Flow, int64(size))
	}
	p.Wait(c.params.ProcessTime)

	cursor := p.Now()
	L := sim.Time(size)
	node := from
	hops := 0
	for dim := range c.dims {
		k := c.dims[dim]
		steps := (c.coord(to, dim) - c.coord(node, dim) + k) % k
		for s := 0; s < steps; s++ {
			free := c.linkFree[node][dim]
			start := cursor
			if free > start {
				c.stats.ContentionDelay += free - start
				start = free
			}
			c.rec.ObserveLinkDelay(start - cursor)
			c.linkFree[node][dim] = start + c.params.HopTime*(L+1)
			cursor = start + c.params.HopTime
			hops++
			node = c.step(node, dim)
		}
	}

	arrive := cursor + c.params.HopTime*L
	pkt.ArriveAt = arrive
	if from == to {
		c.stats.SelfPackets++
		c.stats.SelfBytes += int64(size)
	} else {
		c.stats.Packets++
		c.stats.Bytes += int64(size)
		c.stats.HopBytes += int64(size) * int64(hops)
		c.stats.TotalLatency += arrive - pkt.SentAt
		c.rec.ObserveLatency(arrive - pkt.SentAt)
	}

	inbox := c.inbox[to]
	if tr := c.tracer; tr != nil {
		c.kernel.At(arrive, func() {
			tr.Instant(int32(to), int64(arrive), tracev.KindDeliver, int64(size))
			inbox.Send(pkt)
		})
		return
	}
	c.kernel.At(arrive, func() { inbox.Send(pkt) })
}

// ChargeReceive charges the receive-side copy, as Network.ChargeReceive.
func (c *Cube) ChargeReceive(p *sim.Process) { p.Wait(c.params.ProcessTime) }

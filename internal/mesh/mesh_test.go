package mesh

import (
	"testing"

	"locusroute/internal/obs"
	"locusroute/internal/sim"
)

func newNet(t *testing.T, k *sim.Kernel, px, py int) *Network {
	t.Helper()
	n, err := New(k, px, py, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, 0, 4, DefaultParams()); err == nil {
		t.Errorf("zero px must fail")
	}
	if _, err := New(k, 4, -1, DefaultParams()); err == nil {
		t.Errorf("negative py must fail")
	}
}

func TestDistanceUnidirectionalTorus(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 4, 4)
	// Node ids are row-major: id = y*4 + x.
	if d := n.Distance(0, 3); d != 3 {
		t.Errorf("(0,0)->(3,0) = %d, want 3", d)
	}
	// Unidirectional: going "back" wraps around.
	if d := n.Distance(3, 0); d != 1 {
		t.Errorf("(3,0)->(0,0) = %d, want 1 (wrap)", d)
	}
	if d := n.Distance(0, 15); d != 6 {
		t.Errorf("corner to corner = %d, want 6", d)
	}
	if d := n.Distance(5, 5); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestLatencyFormulaNoContention(t *testing.T) {
	// The paper: 2*ProcessTime + HopTime*(D+L) with the receive-side
	// ProcessTime charged at dequeue.
	params := DefaultParams()
	k := sim.NewKernel()
	n := newNet(t, k, 4, 4)
	const L = 50
	var recvDone sim.Time
	k.Spawn("recv", func(p *sim.Process) {
		pkt := n.Inbox(3).Recv(p).(*Packet)
		n.ChargeReceive(p)
		recvDone = p.Now()
		if pkt.Size != L || pkt.From != 0 || pkt.To != 3 {
			t.Errorf("packet fields wrong: %+v", pkt)
		}
	})
	k.Spawn("send", func(p *sim.Process) {
		n.Send(p, 0, 3, "hello", L)
	})
	k.Run()
	D := sim.Time(3)
	want := 2*params.ProcessTime + params.HopTime*(D+L)
	if recvDone != want {
		t.Errorf("end-to-end = %v, want %v", recvDone, want)
	}
}

func TestSelfSendStillCosts(t *testing.T) {
	params := DefaultParams()
	k := sim.NewKernel()
	n := newNet(t, k, 2, 2)
	var done sim.Time
	k.Spawn("node0", func(p *sim.Process) {
		n.Send(p, 0, 0, "x", 10)
		pkt := n.Inbox(0).Recv(p).(*Packet)
		n.ChargeReceive(p)
		done = p.Now()
		_ = pkt
	})
	k.Run()
	want := 2*params.ProcessTime + params.HopTime*10
	if done != want {
		t.Errorf("self-send time = %v, want %v", done, want)
	}
}

func TestContentionDelaysSecondPacket(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 4, 1)
	var arrivals []sim.Time
	k.Spawn("recv", func(p *sim.Process) {
		for i := 0; i < 2; i++ {
			pkt := n.Inbox(2).Recv(p).(*Packet)
			arrivals = append(arrivals, pkt.ArriveAt)
		}
	})
	// Two senders push large packets over the shared 1->2 link region.
	k.Spawn("s0", func(p *sim.Process) {
		n.Send(p, 0, 2, "a", 100)
	})
	k.Spawn("s1", func(p *sim.Process) {
		n.Send(p, 1, 2, "b", 100)
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if n.Stats().ContentionDelay <= 0 {
		t.Errorf("expected contention delay > 0, got %v", n.Stats().ContentionDelay)
	}
}

func TestNoContentionOnDisjointLinks(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 2, 2)
	k.Spawn("s0", func(p *sim.Process) { n.Send(p, 0, 1, "a", 50) })
	k.Spawn("s1", func(p *sim.Process) { n.Send(p, 2, 3, "b", 50) })
	k.Run()
	if n.Stats().ContentionDelay != 0 {
		t.Errorf("disjoint routes must not contend, delay=%v", n.Stats().ContentionDelay)
	}
}

func TestStatsAccumulate(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 4, 4)
	k.Spawn("s", func(p *sim.Process) {
		n.Send(p, 0, 1, "a", 30) // 1 hop
		n.Send(p, 0, 2, "b", 70) // 2 hops
	})
	k.Run()
	st := n.Stats()
	if st.Packets != 2 {
		t.Errorf("Packets = %d", st.Packets)
	}
	if st.Bytes != 100 {
		t.Errorf("Bytes = %d", st.Bytes)
	}
	if st.HopBytes != 30+140 {
		t.Errorf("HopBytes = %d, want 170", st.HopBytes)
	}
	if st.MBytes() != 100e-6 {
		t.Errorf("MBytes = %f", st.MBytes())
	}
	if st.TotalLatency <= 0 {
		t.Errorf("TotalLatency must be positive")
	}
}

func TestZeroSizeClampedToOneByte(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 2, 1)
	k.Spawn("s", func(p *sim.Process) { n.Send(p, 0, 1, nil, 0) })
	k.Run()
	if n.Stats().Bytes != 1 {
		t.Errorf("zero-size packets must occupy at least one byte, got %d", n.Stats().Bytes)
	}
}

func TestDeliveryOrderOnSameRouteFIFO(t *testing.T) {
	// Deterministic wormhole routing on the same path must deliver in
	// send order.
	k := sim.NewKernel()
	n := newNet(t, k, 4, 1)
	var got []string
	k.Spawn("recv", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			pkt := n.Inbox(3).Recv(p).(*Packet)
			got = append(got, pkt.Payload.(string))
		}
	})
	k.Spawn("send", func(p *sim.Process) {
		for _, s := range []string{"1", "2", "3"} {
			n.Send(p, 0, 3, s, 20)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != "1" || got[1] != "2" || got[2] != "3" {
		t.Errorf("delivery order = %v", got)
	}
}

func TestLatencyMonotonicInDistance(t *testing.T) {
	// On an idle network, delivery latency strictly increases with hop
	// count for a fixed packet size.
	var last sim.Time = -1
	for _, dst := range []int{1, 2, 3, 7, 11, 15} {
		k := sim.NewKernel()
		n := newNet(t, k, 4, 4)
		var arrive sim.Time
		dst := dst
		k.Spawn("s", func(p *sim.Process) {
			n.Send(p, 0, dst, nil, 32)
		})
		k.Spawn("r", func(p *sim.Process) {
			pkt := n.Inbox(dst).Recv(p).(*Packet)
			arrive = pkt.ArriveAt
		})
		k.Run()
		if arrive <= last {
			t.Fatalf("dst %d: latency %v not greater than previous %v", dst, arrive, last)
		}
		last = arrive
	}
}

func TestLatencyScalesWithSize(t *testing.T) {
	measure := func(size int) sim.Time {
		k := sim.NewKernel()
		n := newNet(t, k, 4, 4)
		var arrive sim.Time
		k.Spawn("s", func(p *sim.Process) { n.Send(p, 0, 5, nil, size) })
		k.Spawn("r", func(p *sim.Process) {
			arrive = n.Inbox(5).Recv(p).(*Packet).ArriveAt
		})
		k.Run()
		return arrive
	}
	small, big := measure(10), measure(1000)
	// Wormhole: latency grows by HopTime per extra byte.
	want := small + 990*DefaultParams().HopTime
	if big != want {
		t.Errorf("1000B latency = %v, want %v", big, want)
	}
}

func TestAllPairsDeliver(t *testing.T) {
	// Every (src, dst) pair on a 3x3 mesh delivers exactly once.
	k := sim.NewKernel()
	n := newNet(t, k, 3, 3)
	got := make(map[[2]int]bool)
	for dst := 0; dst < 9; dst++ {
		dst := dst
		k.Spawn("recv", func(p *sim.Process) {
			for i := 0; i < 9; i++ {
				pkt := n.Inbox(dst).Recv(p).(*Packet)
				key := [2]int{pkt.From, pkt.To}
				if got[key] {
					t.Errorf("duplicate delivery %v", key)
				}
				got[key] = true
			}
		})
	}
	for src := 0; src < 9; src++ {
		src := src
		k.Spawn("send", func(p *sim.Process) {
			for dst := 0; dst < 9; dst++ {
				n.Send(p, src, dst, nil, 8)
			}
		})
	}
	k.Run()
	if len(got) != 81 {
		t.Errorf("delivered %d of 81 pairs", len(got))
	}
}

func TestHopBytesMatchesDistance(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 4, 4)
	k.Spawn("s", func(p *sim.Process) {
		n.Send(p, 0, 15, nil, 10) // distance 6
	})
	k.Run()
	if n.Stats().HopBytes != 60 {
		t.Errorf("HopBytes = %d, want 60", n.Stats().HopBytes)
	}
	if d := n.Distance(0, 15); d != 6 {
		t.Errorf("Distance = %d", d)
	}
}

func TestSelfSendExcludedFromLinkStats(t *testing.T) {
	// from==to deliveries cross no links: they are tallied separately so
	// Packets/Bytes/HopBytes count only real interconnect traffic.
	k := sim.NewKernel()
	n := newNet(t, k, 2, 2)
	k.Spawn("node0", func(p *sim.Process) {
		n.Send(p, 0, 0, "self", 10)
		n.Send(p, 0, 1, "link", 20)
	})
	k.Spawn("recv", func(p *sim.Process) { n.Inbox(1).Recv(p) })
	k.Run()
	st := n.Stats()
	if st.SelfPackets != 1 || st.SelfBytes != 10 {
		t.Errorf("self traffic = %d pkts / %d bytes, want 1 / 10", st.SelfPackets, st.SelfBytes)
	}
	if st.Packets != 1 || st.Bytes != 20 {
		t.Errorf("link traffic = %d pkts / %d bytes, want 1 / 20", st.Packets, st.Bytes)
	}
	if st.HopBytes != 20 {
		t.Errorf("HopBytes = %d, want 20 (self-sends cross no links)", st.HopBytes)
	}
}

func TestRecorderObservesTraffic(t *testing.T) {
	k := sim.NewKernel()
	n := newNet(t, k, 2, 2)
	rec := &obs.NetRecorder{}
	n.SetRecorder(rec)
	k.Spawn("r", func(p *sim.Process) { n.Inbox(1).Recv(p) })
	k.Spawn("s", func(p *sim.Process) { n.Send(p, 0, 1, "a", 30) })
	k.Run()
	if rec.Latency.Count() != 1 {
		t.Errorf("latency observations = %d, want 1", rec.Latency.Count())
	}
	if rec.QueueDepth.Count() != 1 {
		t.Errorf("queue depth observations = %d, want 1", rec.QueueDepth.Count())
	}
	if rec.QueueDepth.Max() != 1 {
		t.Errorf("queue depth at dequeue = %d, want 1 (the packet being taken)", rec.QueueDepth.Max())
	}
}

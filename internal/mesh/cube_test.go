package mesh

import (
	"testing"

	"locusroute/internal/sim"
)

func TestNewCubeValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewCube(k, nil, DefaultParams()); err == nil {
		t.Errorf("empty dims must fail")
	}
	if _, err := NewCube(k, []int{4, 0}, DefaultParams()); err == nil {
		t.Errorf("zero dim must fail")
	}
	c, err := NewCube(k, []int{2, 2, 2, 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 16 {
		t.Errorf("Nodes = %d, want 16", c.Nodes())
	}
}

func TestCubeMatchesMesh2D(t *testing.T) {
	// A [4,4] cube must agree with the dedicated 2-D Network on
	// distances and uncontended latency.
	k1 := sim.NewKernel()
	net := newNet(t, k1, 4, 4)
	k2 := sim.NewKernel()
	cube, err := NewCube(k2, []int{4, 4}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if net.Distance(a, b) != cube.Distance(a, b) {
				t.Fatalf("distance(%d,%d): mesh %d, cube %d",
					a, b, net.Distance(a, b), cube.Distance(a, b))
			}
		}
	}
	var meshArrive, cubeArrive sim.Time
	k1.Spawn("s", func(p *sim.Process) { net.Send(p, 0, 13, nil, 40) })
	k1.Spawn("r", func(p *sim.Process) {
		meshArrive = net.Inbox(13).Recv(p).(*Packet).ArriveAt
	})
	k1.Run()
	k2.Spawn("s", func(p *sim.Process) { cube.Send(p, 0, 13, nil, 40) })
	k2.Spawn("r", func(p *sim.Process) {
		cubeArrive = cube.Inbox(13).Recv(p).(*Packet).ArriveAt
	})
	k2.Run()
	if meshArrive != cubeArrive {
		t.Errorf("latency mismatch: mesh %v, cube %v", meshArrive, cubeArrive)
	}
}

func TestHypercubeShorterDiameter(t *testing.T) {
	// The binary 4-cube has diameter 4; the unidirectional 4x4 torus
	// mesh has diameter 6. Corner-to-corner routes are shorter on the
	// hypercube.
	k := sim.NewKernel()
	cube, err := NewCube(k, []int{2, 2, 2, 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if d := cube.Distance(a, b); d > maxHops {
				maxHops = d
			}
		}
	}
	if maxHops != 4 {
		t.Errorf("hypercube diameter = %d, want 4", maxHops)
	}
	k2 := sim.NewKernel()
	mesh2d := newNet(t, k2, 4, 4)
	meshMax := 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if d := mesh2d.Distance(a, b); d > meshMax {
				meshMax = d
			}
		}
	}
	if meshMax != 6 {
		t.Errorf("mesh diameter = %d, want 6", meshMax)
	}
}

func TestCubeLatencyFormula(t *testing.T) {
	params := DefaultParams()
	k := sim.NewKernel()
	cube, err := NewCube(k, []int{2, 2, 2}, params)
	if err != nil {
		t.Fatal(err)
	}
	const L = 30
	var done sim.Time
	k.Spawn("r", func(p *sim.Process) {
		cube.Inbox(7).Recv(p)
		cube.ChargeReceive(p)
		done = p.Now()
	})
	k.Spawn("s", func(p *sim.Process) { cube.Send(p, 0, 7, nil, L) })
	k.Run()
	D := sim.Time(cube.Distance(0, 7)) // 3 hops
	want := 2*params.ProcessTime + params.HopTime*(D+L)
	if done != want {
		t.Errorf("end-to-end = %v, want %v", done, want)
	}
}

func TestCubeAllPairsDeliver(t *testing.T) {
	k := sim.NewKernel()
	cube, err := NewCube(k, []int{2, 2, 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for dst := 0; dst < 8; dst++ {
		dst := dst
		k.Spawn("r", func(p *sim.Process) {
			for i := 0; i < 8; i++ {
				cube.Inbox(dst).Recv(p)
				count++
			}
		})
	}
	for src := 0; src < 8; src++ {
		src := src
		k.Spawn("s", func(p *sim.Process) {
			for dst := 0; dst < 8; dst++ {
				cube.Send(p, src, dst, nil, 4)
			}
		})
	}
	k.Run()
	if count != 64 {
		t.Errorf("delivered %d of 64", count)
	}
}

func TestCubeContention(t *testing.T) {
	// Two packets forced over the same +dim0 link must contend.
	k := sim.NewKernel()
	cube, err := NewCube(k, []int{4}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("s0", func(p *sim.Process) {
		cube.Send(p, 0, 2, nil, 200)
		cube.Send(p, 0, 2, nil, 200)
	})
	k.Run()
	if cube.Stats().ContentionDelay <= 0 {
		t.Errorf("expected contention, got none")
	}
}

func TestCubeSelfSendExcludedFromLinkStats(t *testing.T) {
	k := sim.NewKernel()
	c, err := NewCube(k, []int{2, 2}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("node0", func(p *sim.Process) {
		c.Send(p, 0, 0, "self", 10)
		c.Send(p, 0, 1, "link", 20)
	})
	k.Spawn("recv", func(p *sim.Process) { c.Inbox(1).Recv(p) })
	k.Run()
	st := c.Stats()
	if st.SelfPackets != 1 || st.SelfBytes != 10 {
		t.Errorf("self traffic = %d pkts / %d bytes, want 1 / 10", st.SelfPackets, st.SelfBytes)
	}
	if st.Packets != 1 || st.Bytes != 20 {
		t.Errorf("link traffic = %d pkts / %d bytes, want 1 / 20", st.Packets, st.Bytes)
	}
}

package perf

import (
	"testing"

	"locusroute/internal/sim"
)

func TestDefaultModelPositive(t *testing.T) {
	m := Default()
	if m.CellEval <= 0 || m.CellWrite <= 0 || m.CellScan <= 0 || m.ByteCopy <= 0 || m.WireOverhead <= 0 {
		t.Errorf("all default charges must be positive: %+v", m)
	}
}

func TestChargesScaleLinearly(t *testing.T) {
	m := Default()
	if m.EvalTime(10) != 10*m.CellEval {
		t.Errorf("EvalTime not linear")
	}
	if m.WriteTime(3) != 3*m.CellWrite {
		t.Errorf("WriteTime not linear")
	}
	if m.ScanTime(7) != 7*m.CellScan {
		t.Errorf("ScanTime not linear")
	}
	if m.CopyTime(100) != 100*m.ByteCopy {
		t.Errorf("CopyTime not linear")
	}
	if m.EvalTime(0) != 0 {
		t.Errorf("zero cells must cost nothing")
	}
}

func TestModelMagnitudes(t *testing.T) {
	// Sanity band: a cell evaluation is around a microsecond on a 2 MIPS
	// class node; a full bnrE routing (millions of cell evals) must land
	// in whole seconds, not milliseconds or hours.
	m := Default()
	perMillionCells := m.EvalTime(1_000_000)
	if perMillionCells < 100*sim.Millisecond || perMillionCells > 10*sim.Second {
		t.Errorf("1M cell evals = %v, outside plausible band", perMillionCells)
	}
}

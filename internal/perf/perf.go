// Package perf holds the compute-cost model for simulated processors.
//
// The paper ran on CBS nodes modelling the Ametek Series 2010's MC68020
// (roughly a 2 MIPS processor). We cannot rerun its binaries, so node
// computation is charged in units of the router's natural work measures:
//
//   - cost-array cells examined while evaluating candidate routes (the
//     dominant term; a cell evaluation is a couple of loads, an add and a
//     compare — order of 1 microsecond at 2 MIPS),
//   - cells touched by commits, rip-ups and update application,
//   - delta-array cells scanned when building bounding-box updates, and
//   - bytes marshalled/unmarshalled for update packets (the paper notes
//     packet assembly and disassembly reach about a quarter of processing
//     time under the most frequent update schedules, which calibrates the
//     per-byte charge).
//
// Absolute times are therefore calibrated estimates; the experiments
// compare *relative* execution times, speedups and crossovers, which is
// also all the paper's conclusions rest on.
package perf

import "locusroute/internal/sim"

// Model is a set of per-operation time charges.
type Model struct {
	// CellEval is charged per cost-array cell read during candidate
	// route evaluation.
	CellEval sim.Time
	// CellWrite is charged per cell incremented or decremented by a
	// commit, rip-up, or applied update.
	CellWrite sim.Time
	// CellScan is charged per delta-array cell scanned when building a
	// bounding-box update.
	CellScan sim.Time
	// ByteCopy is charged per byte when assembling or disassembling an
	// update packet.
	ByteCopy sim.Time
	// WireOverhead is the fixed per-wire-routing charge (queue handling,
	// segment setup).
	WireOverhead sim.Time
}

// Default returns the calibrated MC68020-class model used by all paper
// experiments.
func Default() Model {
	return Model{
		CellEval:     1200 * sim.Nanosecond,
		CellWrite:    1500 * sim.Nanosecond,
		CellScan:     500 * sim.Nanosecond,
		ByteCopy:     900 * sim.Nanosecond,
		WireOverhead: 40 * sim.Microsecond,
	}
}

// EvalTime returns the charge for examining n cells.
func (m Model) EvalTime(n int) sim.Time { return m.CellEval * sim.Time(n) }

// WriteTime returns the charge for writing n cells.
func (m Model) WriteTime(n int) sim.Time { return m.CellWrite * sim.Time(n) }

// ScanTime returns the charge for scanning n delta cells.
func (m Model) ScanTime(n int) sim.Time { return m.CellScan * sim.Time(n) }

// CopyTime returns the charge for marshalling or unmarshalling n bytes.
func (m Model) CopyTime(n int) sim.Time { return m.ByteCopy * sim.Time(n) }

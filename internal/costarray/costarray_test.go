package costarray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"locusroute/internal/geom"
)

func grid10x40() geom.Grid { return geom.Grid{Channels: 10, Grids: 40} }

func TestNewPanicsOnInvalidGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with invalid grid must panic")
		}
	}()
	New(geom.Grid{})
}

func TestAtSetAdd(t *testing.T) {
	a := New(grid10x40())
	a.Set(3, 4, 7)
	if got := a.At(3, 4); got != 7 {
		t.Errorf("At = %d, want 7", got)
	}
	if got := a.Add(3, 4, -2); got != 5 {
		t.Errorf("Add returned %d, want 5", got)
	}
	if got := a.At(3, 4); got != 5 {
		t.Errorf("At after Add = %d, want 5", got)
	}
	if got := a.At(4, 3); got != 0 {
		t.Errorf("untouched cell = %d, want 0", got)
	}
}

func TestIndexRowMajor(t *testing.T) {
	a := New(grid10x40())
	if a.Index(0, 0) != 0 || a.Index(39, 0) != 39 || a.Index(0, 1) != 40 {
		t.Errorf("Index not row-major: %d %d %d",
			a.Index(0, 0), a.Index(39, 0), a.Index(0, 1))
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(grid10x40())
	a.Set(1, 1, 9)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone must equal original")
	}
	b.Set(1, 1, 3)
	if a.At(1, 1) != 9 {
		t.Errorf("mutating clone must not affect original")
	}
}

func TestSumRect(t *testing.T) {
	a := New(grid10x40())
	for y := 0; y < 10; y++ {
		for x := 0; x < 40; x++ {
			a.Set(x, y, 1)
		}
	}
	if got := a.SumRect(geom.R(0, 0, 39, 9)); got != 400 {
		t.Errorf("full sum = %d, want 400", got)
	}
	if got := a.SumRect(geom.R(5, 5, 6, 6)); got != 4 {
		t.Errorf("2x2 sum = %d, want 4", got)
	}
	// Clipping: rect partly off grid.
	if got := a.SumRect(geom.R(38, 8, 100, 100)); got != 4 {
		t.Errorf("clipped sum = %d, want 4", got)
	}
}

func TestCopyAddZeroRect(t *testing.T) {
	g := grid10x40()
	a, b := New(g), New(g)
	for y := 0; y < 10; y++ {
		for x := 0; x < 40; x++ {
			b.Set(x, y, int32(x+y))
		}
	}
	r := geom.R(2, 2, 5, 5)
	a.CopyRect(b, r)
	for y := 0; y < 10; y++ {
		for x := 0; x < 40; x++ {
			want := int32(0)
			if geom.Pt(x, y).In(r) {
				want = int32(x + y)
			}
			if a.At(x, y) != want {
				t.Fatalf("CopyRect cell (%d,%d) = %d, want %d", x, y, a.At(x, y), want)
			}
		}
	}
	a.AddRect(b, r)
	if a.At(3, 3) != 12 {
		t.Errorf("AddRect cell = %d, want 12", a.At(3, 3))
	}
	a.ZeroRect(r)
	if a.SumRect(r) != 0 {
		t.Errorf("ZeroRect left nonzero cells")
	}
}

func TestChangedBounds(t *testing.T) {
	a := New(grid10x40())
	bb, scanned := a.ChangedBounds(a.Grid().Bounds())
	if !bb.Empty() {
		t.Errorf("empty array must have empty changed bounds, got %v", bb)
	}
	if scanned != 400 {
		t.Errorf("scanned = %d, want 400", scanned)
	}
	a.Set(5, 2, 1)
	a.Set(20, 7, -1)
	bb, _ = a.ChangedBounds(a.Grid().Bounds())
	want := geom.R(5, 2, 20, 7)
	if bb != want {
		t.Errorf("ChangedBounds = %v, want %v", bb, want)
	}
	// Restricted scan misses changes outside the window.
	bb, _ = a.ChangedBounds(geom.R(0, 0, 10, 9))
	if bb != geom.R(5, 2, 5, 2) {
		t.Errorf("restricted ChangedBounds = %v", bb)
	}
}

func TestExtractApplyAbsoluteRoundTrip(t *testing.T) {
	g := grid10x40()
	a := New(g)
	rng := rand.New(rand.NewSource(42))
	for y := 0; y < g.Channels; y++ {
		for x := 0; x < g.Grids; x++ {
			a.Set(x, y, int32(rng.Intn(8)))
		}
	}
	r, vals := a.ExtractRect(geom.R(3, 1, 30, 8))
	b := New(g)
	if err := b.ApplyAbsolute(r, vals); err != nil {
		t.Fatal(err)
	}
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if b.At(x, y) != a.At(x, y) {
				t.Fatalf("round trip mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestApplyErrors(t *testing.T) {
	a := New(grid10x40())
	if err := a.ApplyAbsolute(geom.R(0, 0, 100, 100), make([]int32, 4)); err == nil {
		t.Errorf("expected out-of-grid error")
	}
	if err := a.ApplyAbsolute(geom.R(0, 0, 1, 1), make([]int32, 3)); err == nil {
		t.Errorf("expected payload-size error")
	}
	if err := a.ApplyDelta(geom.R(0, 0, 1, 1), make([]int32, 5)); err == nil {
		t.Errorf("expected payload-size error for delta")
	}
}

func TestApplyDeltaAccumulates(t *testing.T) {
	a := New(grid10x40())
	r := geom.R(0, 0, 1, 1) // 2x2
	vals := []int32{1, 2, 3, 4}
	if err := a.ApplyDelta(r, vals); err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyDelta(r, vals); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 8 {
		t.Errorf("delta accumulate = %d, want 8", a.At(1, 1))
	}
}

func TestCircuitHeight(t *testing.T) {
	a := New(grid10x40())
	if a.CircuitHeight() != 0 {
		t.Errorf("empty array height must be 0")
	}
	a.Set(0, 0, 3)
	a.Set(39, 0, 5) // channel 0 max = 5
	a.Set(7, 4, 2)  // channel 4 max = 2
	if got := a.CircuitHeight(); got != 7 {
		t.Errorf("CircuitHeight = %d, want 7", got)
	}
}

func TestNonZeroCells(t *testing.T) {
	a := New(grid10x40())
	a.Set(0, 0, 1)
	a.Set(1, 0, -1)
	a.Set(1, 0, 0) // back to zero
	if got := a.NonZeroCells(); got != 1 {
		t.Errorf("NonZeroCells = %d, want 1", got)
	}
}

// Property: ExtractRect + ApplyAbsolute onto a zero array reproduces
// exactly the clipped window, and SumRect of the window matches the sum of
// the payload.
func TestExtractApplyProperty(t *testing.T) {
	g := geom.Grid{Channels: 8, Grids: 16}
	f := func(seed int64, x0, y0, w, h uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(g)
		for i := 0; i < 40; i++ {
			a.Add(rng.Intn(g.Grids), rng.Intn(g.Channels), int32(rng.Intn(5)-2))
		}
		r := geom.R(int(x0)%20, int(y0)%10, int(x0)%20+int(w)%8, int(y0)%10+int(h)%8)
		cl, vals := a.ExtractRect(r)
		b := New(g)
		if cl.Empty() {
			return vals == nil
		}
		if err := b.ApplyAbsolute(cl, vals); err != nil {
			return false
		}
		var sum int64
		for _, v := range vals {
			sum += int64(v)
		}
		return b.SumRect(cl) == a.SumRect(cl) && sum == a.SumRect(cl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeatmapDimensions(t *testing.T) {
	a := New(geom.Grid{Channels: 4, Grids: 200})
	a.Set(0, 0, 5)
	a.Set(199, 3, 10)
	out := a.Heatmap(50)
	lines := 0
	for _, line := range []byte(out) {
		if line == '\n' {
			lines++
		}
	}
	if lines != 4 {
		t.Errorf("heatmap must have one line per channel, got %d", lines)
	}
	// Width respected: each line at most 50 chars.
	for _, line := range splitLines(out) {
		if len(line) > 50 {
			t.Errorf("line too wide: %d", len(line))
		}
	}
	// The hottest cell renders the heaviest rune.
	if out[len(out)-2] != '@' {
		t.Errorf("peak cell must render '@', got %q", out[len(out)-2])
	}
}

func TestHeatmapEmptyArray(t *testing.T) {
	a := New(geom.Grid{Channels: 2, Grids: 10})
	out := a.Heatmap(80)
	for _, line := range splitLines(out) {
		for _, ch := range line {
			if ch != ' ' {
				t.Errorf("empty array must render blank, got %q", ch)
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

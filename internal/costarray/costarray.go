// Package costarray implements LocusRoute's central data structure: the
// cost array, which records the number of wires running through each
// routing grid cell of the circuit, and the delta array, which records
// changes made to the cost array since the last interprocessor update
// (Section 4.1 of the paper).
//
// The vertical dimension of the array is the number of routing channels;
// the horizontal dimension is the number of routing grids.
package costarray

import (
	"fmt"

	"locusroute/internal/geom"
)

// CostArray holds one wire-count per routing grid cell, stored row-major
// (channel-major). Entries are non-negative in a consistent array, but a
// processor's *view* in the message passing version may transiently hold
// any value.
type CostArray struct {
	grid  geom.Grid
	cells []int32
}

// New returns a zeroed cost array for the given grid. It panics if the
// grid is invalid, since a cost array without dimensions is a programming
// error rather than a runtime condition.
func New(g geom.Grid) *CostArray {
	if !g.Valid() {
		panic(fmt.Sprintf("costarray: invalid grid %+v", g))
	}
	return &CostArray{grid: g, cells: make([]int32, g.Cells())}
}

// Grid returns the array dimensions.
func (a *CostArray) Grid() geom.Grid { return a.grid }

// Index returns the flat row-major index of (x, y). It is exported so the
// shared memory tracer can map cells to byte addresses consistently.
func (a *CostArray) Index(x, y int) int { return y*a.grid.Grids + x }

// At returns the cost at (x, y).
func (a *CostArray) At(x, y int) int32 { return a.cells[a.Index(x, y)] }

// Set stores v at (x, y).
func (a *CostArray) Set(x, y int, v int32) { a.cells[a.Index(x, y)] = v }

// Add adds d to the cell at (x, y) and returns the new value.
func (a *CostArray) Add(x, y int, d int32) int32 {
	i := a.Index(x, y)
	a.cells[i] += d
	return a.cells[i]
}

// Clone returns a deep copy of the array.
func (a *CostArray) Clone() *CostArray {
	out := New(a.grid)
	copy(out.cells, a.cells)
	return out
}

// Reset zeroes every cell.
func (a *CostArray) Reset() {
	for i := range a.cells {
		a.cells[i] = 0
	}
}

// Row returns the slice of cells for channel y. The slice aliases the
// array's storage.
func (a *CostArray) Row(y int) []int32 {
	return a.cells[y*a.grid.Grids : (y+1)*a.grid.Grids]
}

// Cells returns the backing row-major cell slice. It aliases the array's
// storage and is intended for read-mostly consumers (metrics, encoders).
func (a *CostArray) Cells() []int32 { return a.cells }

// SumRect returns the sum of all cells inside r (clipped to the grid).
// This is the cost of covering the rectangle and the inner loop of route
// evaluation.
func (a *CostArray) SumRect(r geom.Rect) int64 {
	r = r.Intersect(a.grid.Bounds())
	var s int64
	for y := r.Y0; y < r.Y1; y++ {
		row := a.Row(y)
		for x := r.X0; x < r.X1; x++ {
			s += int64(row[x])
		}
	}
	return s
}

// CopyRect copies the cells of src inside r (clipped to both grids) into a,
// replacing a's values. Used to apply SendLocData-style absolute updates.
func (a *CostArray) CopyRect(src *CostArray, r geom.Rect) {
	r = r.Intersect(a.grid.Bounds()).Intersect(src.grid.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		copy(a.Row(y)[r.X0:r.X1], src.Row(y)[r.X0:r.X1])
	}
}

// AddRect adds the cells of src inside r (clipped) to a's values. Used to
// apply SendRmtData-style relative (delta) updates.
func (a *CostArray) AddRect(src *CostArray, r geom.Rect) {
	r = r.Intersect(a.grid.Bounds()).Intersect(src.grid.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		dst := a.Row(y)
		s := src.Row(y)
		for x := r.X0; x < r.X1; x++ {
			dst[x] += s[x]
		}
	}
}

// ZeroRect zeroes the cells inside r (clipped).
func (a *CostArray) ZeroRect(r geom.Rect) {
	r = r.Intersect(a.grid.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		row := a.Row(y)
		for x := r.X0; x < r.X1; x++ {
			row[x] = 0
		}
	}
}

// ChangedBounds returns the bounding box of all non-zero cells within r
// (clipped to the grid), or an empty rect if r holds only zeros. This is
// the scan the sending processor performs over the delta array to build
// the paper's bounding-box update packets (Section 4.3.1); the returned
// cellsScanned counts the work done, for the compute-time model.
func (a *CostArray) ChangedBounds(r geom.Rect) (bb geom.Rect, cellsScanned int) {
	r = r.Intersect(a.grid.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		row := a.Row(y)
		for x := r.X0; x < r.X1; x++ {
			cellsScanned++
			if row[x] != 0 {
				bb = bb.AddPoint(geom.Pt(x, y))
			}
		}
	}
	return bb, cellsScanned
}

// ExtractRect returns the cells inside r (clipped), row-major, along with
// the clipped rectangle. The result is a fresh slice safe to hand to a
// packet encoder.
func (a *CostArray) ExtractRect(r geom.Rect) (geom.Rect, []int32) {
	r = r.Intersect(a.grid.Bounds())
	if r.Empty() {
		return geom.Rect{}, nil
	}
	out := make([]int32, 0, r.Area())
	for y := r.Y0; y < r.Y1; y++ {
		out = append(out, a.Row(y)[r.X0:r.X1]...)
	}
	return r, out
}

// ApplyAbsolute replaces the cells inside r with vals (row-major, length
// r.Area()). It returns an error on a size mismatch or if r is not inside
// the grid.
func (a *CostArray) ApplyAbsolute(r geom.Rect, vals []int32) error {
	if err := a.checkPayload(r, vals); err != nil {
		return err
	}
	i := 0
	for y := r.Y0; y < r.Y1; y++ {
		copy(a.Row(y)[r.X0:r.X1], vals[i:i+r.Dx()])
		i += r.Dx()
	}
	return nil
}

// ApplyDelta adds vals (row-major, length r.Area()) to the cells inside r.
func (a *CostArray) ApplyDelta(r geom.Rect, vals []int32) error {
	if err := a.checkPayload(r, vals); err != nil {
		return err
	}
	i := 0
	for y := r.Y0; y < r.Y1; y++ {
		row := a.Row(y)
		for x := r.X0; x < r.X1; x++ {
			row[x] += vals[i]
			i++
		}
	}
	return nil
}

func (a *CostArray) checkPayload(r geom.Rect, vals []int32) error {
	if !a.grid.Bounds().ContainsRect(r) {
		return fmt.Errorf("costarray: rect %v outside grid %+v", r, a.grid)
	}
	if len(vals) != r.Area() {
		return fmt.Errorf("costarray: payload %d cells for rect %v (want %d)",
			len(vals), r, r.Area())
	}
	return nil
}

// Equal reports whether a and b have identical dimensions and contents.
func (a *CostArray) Equal(b *CostArray) bool {
	if a.grid != b.grid {
		return false
	}
	for i, v := range a.cells {
		if b.cells[i] != v {
			return false
		}
	}
	return true
}

// NonZeroCells returns the number of cells with non-zero value.
func (a *CostArray) NonZeroCells() int {
	n := 0
	for _, v := range a.cells {
		if v != 0 {
			n++
		}
	}
	return n
}

// MaxInRow returns the maximum cell value in channel y. Circuit height is
// the sum of this over all channels (Section 3 of the paper).
func (a *CostArray) MaxInRow(y int) int32 {
	var m int32
	for _, v := range a.Row(y) {
		if v > m {
			m = v
		}
	}
	return m
}

// CircuitHeight returns the total number of routing tracks required: the
// sum over channels of the maximum number of wires through any grid of
// the channel. Lower is better; it is proportional to circuit area.
func (a *CostArray) CircuitHeight() int64 {
	var h int64
	for y := 0; y < a.grid.Channels; y++ {
		h += int64(a.MaxInRow(y))
	}
	return h
}

package costarray

import (
	"math/rand"
	"testing"

	"locusroute/internal/geom"
)

func newTestDelta(t *testing.T) *Delta {
	t.Helper()
	part, err := geom.NewPartition(geom.Grid{Channels: 8, Grids: 32}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewDelta(part)
}

func TestDeltaAddAndTake(t *testing.T) {
	d := newTestDelta(t)
	r0 := d.Partition().Region(0)
	d.Add(r0.X0, r0.Y0, 2)
	d.Add(r0.X0+1, r0.Y0+1, -1)
	if !d.HasChanges(0) {
		t.Fatalf("region 0 must have changes")
	}
	if d.HasChanges(3) {
		t.Fatalf("region 3 must not have changes")
	}
	bb, vals, scanned := d.TakeRegion(0)
	if bb.Empty() || len(vals) != bb.Area() {
		t.Fatalf("TakeRegion bb=%v vals=%d", bb, len(vals))
	}
	if scanned == 0 {
		t.Errorf("scan work must be reported")
	}
	// Taking clears: second take is empty and cheap.
	bb2, vals2, _ := d.TakeRegion(0)
	if !bb2.Empty() || vals2 != nil {
		t.Errorf("second TakeRegion must be empty, got %v", bb2)
	}
	if d.HasChanges(0) {
		t.Errorf("dirty bound must be cleared after take")
	}
}

func TestDeltaCancellation(t *testing.T) {
	d := newTestDelta(t)
	r0 := d.Partition().Region(0)
	// Route then rip up the same cells: +1 then -1 cancels.
	for x := r0.X0; x < r0.X1; x++ {
		d.Add(x, r0.Y0, 1)
	}
	for x := r0.X0; x < r0.X1; x++ {
		d.Add(x, r0.Y0, -1)
	}
	if !d.HasChanges(0) {
		t.Fatalf("dirty bound is conservative, should still be set")
	}
	bb, vals, scanned := d.TakeRegion(0)
	if !bb.Empty() || vals != nil {
		t.Errorf("fully cancelled deltas must produce no update, got %v", bb)
	}
	if scanned == 0 {
		t.Errorf("the cancellation discovery scan must be accounted")
	}
}

func TestDeltaPeekDoesNotClear(t *testing.T) {
	d := newTestDelta(t)
	r1 := d.Partition().Region(1)
	d.Add(r1.X0, r1.Y0, 3)
	bb1, vals1, _ := d.PeekRegion(1)
	bb2, vals2, _ := d.PeekRegion(1)
	if bb1 != bb2 || len(vals1) != len(vals2) {
		t.Errorf("Peek must be idempotent")
	}
	if !d.HasChanges(1) {
		t.Errorf("Peek must not clear the dirty bound")
	}
	bb3, _, _ := d.TakeRegion(1)
	if bb3 != bb1 {
		t.Errorf("Take after Peek sees same bounds: %v vs %v", bb3, bb1)
	}
}

func TestDeltaRegionsIndependent(t *testing.T) {
	d := newTestDelta(t)
	part := d.Partition()
	for proc := 0; proc < part.Procs(); proc++ {
		r := part.Region(proc)
		d.Add(r.X0, r.Y0, int32(proc+1))
	}
	// Take one region; others must remain.
	d.TakeRegion(2)
	for proc := 0; proc < part.Procs(); proc++ {
		want := proc != 2
		if d.HasChanges(proc) != want {
			t.Errorf("region %d HasChanges = %v, want %v", proc, d.HasChanges(proc), want)
		}
	}
}

func TestDeltaReset(t *testing.T) {
	d := newTestDelta(t)
	d.Add(0, 0, 5)
	d.Reset()
	if d.HasChanges(0) || d.At(0, 0) != 0 {
		t.Errorf("Reset must clear deltas and dirty bounds")
	}
}

// Property-style: applying every taken region's deltas to a mirror array
// reconstructs the full accumulated change exactly, regardless of where
// changes landed.
func TestDeltaTakeReconstructs(t *testing.T) {
	part, _ := geom.NewPartition(geom.Grid{Channels: 8, Grids: 32}, 4, 2)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := NewDelta(part)
		truth := New(part.Grid)
		for i := 0; i < 100; i++ {
			x, y := rng.Intn(32), rng.Intn(8)
			v := int32(rng.Intn(5) - 2)
			d.Add(x, y, v)
			truth.Add(x, y, v)
		}
		mirror := New(part.Grid)
		for proc := 0; proc < part.Procs(); proc++ {
			bb, vals, _ := d.TakeRegion(proc)
			if bb.Empty() {
				continue
			}
			if err := mirror.ApplyDelta(bb, vals); err != nil {
				t.Fatal(err)
			}
		}
		if !mirror.Equal(truth) {
			t.Fatalf("trial %d: reconstructed deltas differ from truth", trial)
		}
		// After taking everything, delta array must be all zero.
		if d.Array().NonZeroCells() != 0 {
			t.Fatalf("trial %d: deltas remain after taking all regions", trial)
		}
	}
}

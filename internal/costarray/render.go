package costarray

import "strings"

// heatRamp maps relative congestion to characters, light to heavy.
const heatRamp = " .:-=+*#%@"

// Heatmap renders the cost array as ASCII art, one character per cell
// column (columns are downsampled to fit width). Congestion is scaled to
// the array's own maximum, so the picture shows relative hot spots —
// Figure 1 of the paper, in a terminal.
func (a *CostArray) Heatmap(width int) string {
	if width <= 0 {
		width = 80
	}
	g := a.grid
	step := 1
	if g.Grids > width {
		step = (g.Grids + width - 1) / width
	}

	// Downsample: bucket max per (row, column-group).
	cols := (g.Grids + step - 1) / step
	var peak int32 = 1
	buckets := make([][]int32, g.Channels)
	for y := 0; y < g.Channels; y++ {
		buckets[y] = make([]int32, cols)
		row := a.Row(y)
		for x, v := range row {
			b := x / step
			if v > buckets[y][b] {
				buckets[y][b] = v
			}
			if v > peak {
				peak = v
			}
		}
	}

	var sb strings.Builder
	ramp := []rune(heatRamp)
	for y := 0; y < g.Channels; y++ {
		for _, v := range buckets[y] {
			idx := int(int64(v) * int64(len(ramp)-1) / int64(peak))
			if idx < 0 {
				idx = 0
			}
			sb.WriteRune(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
